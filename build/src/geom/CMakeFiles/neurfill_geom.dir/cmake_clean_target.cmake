file(REMOVE_RECURSE
  "libneurfill_geom.a"
)
