# Empty dependencies file for neurfill_geom.
# This may be replaced when dependencies are built.
