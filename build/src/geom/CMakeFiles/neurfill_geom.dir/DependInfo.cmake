
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/designs.cpp" "src/geom/CMakeFiles/neurfill_geom.dir/designs.cpp.o" "gcc" "src/geom/CMakeFiles/neurfill_geom.dir/designs.cpp.o.d"
  "/root/repo/src/geom/glf_io.cpp" "src/geom/CMakeFiles/neurfill_geom.dir/glf_io.cpp.o" "gcc" "src/geom/CMakeFiles/neurfill_geom.dir/glf_io.cpp.o.d"
  "/root/repo/src/geom/layout.cpp" "src/geom/CMakeFiles/neurfill_geom.dir/layout.cpp.o" "gcc" "src/geom/CMakeFiles/neurfill_geom.dir/layout.cpp.o.d"
  "/root/repo/src/geom/rect.cpp" "src/geom/CMakeFiles/neurfill_geom.dir/rect.cpp.o" "gcc" "src/geom/CMakeFiles/neurfill_geom.dir/rect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neurfill_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
