file(REMOVE_RECURSE
  "CMakeFiles/neurfill_geom.dir/designs.cpp.o"
  "CMakeFiles/neurfill_geom.dir/designs.cpp.o.d"
  "CMakeFiles/neurfill_geom.dir/glf_io.cpp.o"
  "CMakeFiles/neurfill_geom.dir/glf_io.cpp.o.d"
  "CMakeFiles/neurfill_geom.dir/layout.cpp.o"
  "CMakeFiles/neurfill_geom.dir/layout.cpp.o.d"
  "CMakeFiles/neurfill_geom.dir/rect.cpp.o"
  "CMakeFiles/neurfill_geom.dir/rect.cpp.o.d"
  "libneurfill_geom.a"
  "libneurfill_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurfill_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
