file(REMOVE_RECURSE
  "libneurfill_surrogate.a"
)
