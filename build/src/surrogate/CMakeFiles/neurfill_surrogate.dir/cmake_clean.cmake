file(REMOVE_RECURSE
  "CMakeFiles/neurfill_surrogate.dir/cmp_network.cpp.o"
  "CMakeFiles/neurfill_surrogate.dir/cmp_network.cpp.o.d"
  "CMakeFiles/neurfill_surrogate.dir/datagen.cpp.o"
  "CMakeFiles/neurfill_surrogate.dir/datagen.cpp.o.d"
  "CMakeFiles/neurfill_surrogate.dir/eval.cpp.o"
  "CMakeFiles/neurfill_surrogate.dir/eval.cpp.o.d"
  "CMakeFiles/neurfill_surrogate.dir/features.cpp.o"
  "CMakeFiles/neurfill_surrogate.dir/features.cpp.o.d"
  "CMakeFiles/neurfill_surrogate.dir/trainer.cpp.o"
  "CMakeFiles/neurfill_surrogate.dir/trainer.cpp.o.d"
  "libneurfill_surrogate.a"
  "libneurfill_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurfill_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
