
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/surrogate/cmp_network.cpp" "src/surrogate/CMakeFiles/neurfill_surrogate.dir/cmp_network.cpp.o" "gcc" "src/surrogate/CMakeFiles/neurfill_surrogate.dir/cmp_network.cpp.o.d"
  "/root/repo/src/surrogate/datagen.cpp" "src/surrogate/CMakeFiles/neurfill_surrogate.dir/datagen.cpp.o" "gcc" "src/surrogate/CMakeFiles/neurfill_surrogate.dir/datagen.cpp.o.d"
  "/root/repo/src/surrogate/eval.cpp" "src/surrogate/CMakeFiles/neurfill_surrogate.dir/eval.cpp.o" "gcc" "src/surrogate/CMakeFiles/neurfill_surrogate.dir/eval.cpp.o.d"
  "/root/repo/src/surrogate/features.cpp" "src/surrogate/CMakeFiles/neurfill_surrogate.dir/features.cpp.o" "gcc" "src/surrogate/CMakeFiles/neurfill_surrogate.dir/features.cpp.o.d"
  "/root/repo/src/surrogate/trainer.cpp" "src/surrogate/CMakeFiles/neurfill_surrogate.dir/trainer.cpp.o" "gcc" "src/surrogate/CMakeFiles/neurfill_surrogate.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/neurfill_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/cmp/CMakeFiles/neurfill_cmp.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/neurfill_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neurfill_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/neurfill_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
