# Empty dependencies file for neurfill_surrogate.
# This may be replaced when dependencies are built.
