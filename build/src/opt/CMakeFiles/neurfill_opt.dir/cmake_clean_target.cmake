file(REMOVE_RECURSE
  "libneurfill_opt.a"
)
