file(REMOVE_RECURSE
  "CMakeFiles/neurfill_opt.dir/box_qp.cpp.o"
  "CMakeFiles/neurfill_opt.dir/box_qp.cpp.o.d"
  "CMakeFiles/neurfill_opt.dir/nmmso.cpp.o"
  "CMakeFiles/neurfill_opt.dir/nmmso.cpp.o.d"
  "CMakeFiles/neurfill_opt.dir/objective.cpp.o"
  "CMakeFiles/neurfill_opt.dir/objective.cpp.o.d"
  "CMakeFiles/neurfill_opt.dir/sqp.cpp.o"
  "CMakeFiles/neurfill_opt.dir/sqp.cpp.o.d"
  "libneurfill_opt.a"
  "libneurfill_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurfill_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
