# Empty dependencies file for neurfill_opt.
# This may be replaced when dependencies are built.
