
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/box_qp.cpp" "src/opt/CMakeFiles/neurfill_opt.dir/box_qp.cpp.o" "gcc" "src/opt/CMakeFiles/neurfill_opt.dir/box_qp.cpp.o.d"
  "/root/repo/src/opt/nmmso.cpp" "src/opt/CMakeFiles/neurfill_opt.dir/nmmso.cpp.o" "gcc" "src/opt/CMakeFiles/neurfill_opt.dir/nmmso.cpp.o.d"
  "/root/repo/src/opt/objective.cpp" "src/opt/CMakeFiles/neurfill_opt.dir/objective.cpp.o" "gcc" "src/opt/CMakeFiles/neurfill_opt.dir/objective.cpp.o.d"
  "/root/repo/src/opt/sqp.cpp" "src/opt/CMakeFiles/neurfill_opt.dir/sqp.cpp.o" "gcc" "src/opt/CMakeFiles/neurfill_opt.dir/sqp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neurfill_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
