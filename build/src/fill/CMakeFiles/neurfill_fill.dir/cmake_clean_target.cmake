file(REMOVE_RECURSE
  "libneurfill_fill.a"
)
