
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fill/baselines.cpp" "src/fill/CMakeFiles/neurfill_fill.dir/baselines.cpp.o" "gcc" "src/fill/CMakeFiles/neurfill_fill.dir/baselines.cpp.o.d"
  "/root/repo/src/fill/metrics.cpp" "src/fill/CMakeFiles/neurfill_fill.dir/metrics.cpp.o" "gcc" "src/fill/CMakeFiles/neurfill_fill.dir/metrics.cpp.o.d"
  "/root/repo/src/fill/neurfill.cpp" "src/fill/CMakeFiles/neurfill_fill.dir/neurfill.cpp.o" "gcc" "src/fill/CMakeFiles/neurfill_fill.dir/neurfill.cpp.o.d"
  "/root/repo/src/fill/pd_model.cpp" "src/fill/CMakeFiles/neurfill_fill.dir/pd_model.cpp.o" "gcc" "src/fill/CMakeFiles/neurfill_fill.dir/pd_model.cpp.o.d"
  "/root/repo/src/fill/problem.cpp" "src/fill/CMakeFiles/neurfill_fill.dir/problem.cpp.o" "gcc" "src/fill/CMakeFiles/neurfill_fill.dir/problem.cpp.o.d"
  "/root/repo/src/fill/report.cpp" "src/fill/CMakeFiles/neurfill_fill.dir/report.cpp.o" "gcc" "src/fill/CMakeFiles/neurfill_fill.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cmp/CMakeFiles/neurfill_cmp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/neurfill_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/surrogate/CMakeFiles/neurfill_surrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/neurfill_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/neurfill_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neurfill_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/neurfill_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
