# Empty dependencies file for neurfill_fill.
# This may be replaced when dependencies are built.
