file(REMOVE_RECURSE
  "CMakeFiles/neurfill_fill.dir/baselines.cpp.o"
  "CMakeFiles/neurfill_fill.dir/baselines.cpp.o.d"
  "CMakeFiles/neurfill_fill.dir/metrics.cpp.o"
  "CMakeFiles/neurfill_fill.dir/metrics.cpp.o.d"
  "CMakeFiles/neurfill_fill.dir/neurfill.cpp.o"
  "CMakeFiles/neurfill_fill.dir/neurfill.cpp.o.d"
  "CMakeFiles/neurfill_fill.dir/pd_model.cpp.o"
  "CMakeFiles/neurfill_fill.dir/pd_model.cpp.o.d"
  "CMakeFiles/neurfill_fill.dir/problem.cpp.o"
  "CMakeFiles/neurfill_fill.dir/problem.cpp.o.d"
  "CMakeFiles/neurfill_fill.dir/report.cpp.o"
  "CMakeFiles/neurfill_fill.dir/report.cpp.o.d"
  "libneurfill_fill.a"
  "libneurfill_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurfill_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
