# Empty dependencies file for neurfill_cmp.
# This may be replaced when dependencies are built.
