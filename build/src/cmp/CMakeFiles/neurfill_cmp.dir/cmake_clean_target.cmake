file(REMOVE_RECURSE
  "libneurfill_cmp.a"
)
