file(REMOVE_RECURSE
  "CMakeFiles/neurfill_cmp.dir/contact_solver.cpp.o"
  "CMakeFiles/neurfill_cmp.dir/contact_solver.cpp.o.d"
  "CMakeFiles/neurfill_cmp.dir/dsh_model.cpp.o"
  "CMakeFiles/neurfill_cmp.dir/dsh_model.cpp.o.d"
  "CMakeFiles/neurfill_cmp.dir/pad_model.cpp.o"
  "CMakeFiles/neurfill_cmp.dir/pad_model.cpp.o.d"
  "CMakeFiles/neurfill_cmp.dir/simulator.cpp.o"
  "CMakeFiles/neurfill_cmp.dir/simulator.cpp.o.d"
  "libneurfill_cmp.a"
  "libneurfill_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurfill_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
