
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cmp/contact_solver.cpp" "src/cmp/CMakeFiles/neurfill_cmp.dir/contact_solver.cpp.o" "gcc" "src/cmp/CMakeFiles/neurfill_cmp.dir/contact_solver.cpp.o.d"
  "/root/repo/src/cmp/dsh_model.cpp" "src/cmp/CMakeFiles/neurfill_cmp.dir/dsh_model.cpp.o" "gcc" "src/cmp/CMakeFiles/neurfill_cmp.dir/dsh_model.cpp.o.d"
  "/root/repo/src/cmp/pad_model.cpp" "src/cmp/CMakeFiles/neurfill_cmp.dir/pad_model.cpp.o" "gcc" "src/cmp/CMakeFiles/neurfill_cmp.dir/pad_model.cpp.o.d"
  "/root/repo/src/cmp/simulator.cpp" "src/cmp/CMakeFiles/neurfill_cmp.dir/simulator.cpp.o" "gcc" "src/cmp/CMakeFiles/neurfill_cmp.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/neurfill_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neurfill_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/neurfill_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
