file(REMOVE_RECURSE
  "CMakeFiles/neurfill_nn.dir/gemm.cpp.o"
  "CMakeFiles/neurfill_nn.dir/gemm.cpp.o.d"
  "CMakeFiles/neurfill_nn.dir/module.cpp.o"
  "CMakeFiles/neurfill_nn.dir/module.cpp.o.d"
  "CMakeFiles/neurfill_nn.dir/ops_conv.cpp.o"
  "CMakeFiles/neurfill_nn.dir/ops_conv.cpp.o.d"
  "CMakeFiles/neurfill_nn.dir/ops_elementwise.cpp.o"
  "CMakeFiles/neurfill_nn.dir/ops_elementwise.cpp.o.d"
  "CMakeFiles/neurfill_nn.dir/optim.cpp.o"
  "CMakeFiles/neurfill_nn.dir/optim.cpp.o.d"
  "CMakeFiles/neurfill_nn.dir/serialize.cpp.o"
  "CMakeFiles/neurfill_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/neurfill_nn.dir/tensor.cpp.o"
  "CMakeFiles/neurfill_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/neurfill_nn.dir/unet.cpp.o"
  "CMakeFiles/neurfill_nn.dir/unet.cpp.o.d"
  "libneurfill_nn.a"
  "libneurfill_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurfill_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
