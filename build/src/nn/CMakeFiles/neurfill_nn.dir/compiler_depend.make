# Empty compiler generated dependencies file for neurfill_nn.
# This may be replaced when dependencies are built.
