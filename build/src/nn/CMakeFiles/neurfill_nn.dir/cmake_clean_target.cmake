file(REMOVE_RECURSE
  "libneurfill_nn.a"
)
