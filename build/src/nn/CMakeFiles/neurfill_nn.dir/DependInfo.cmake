
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gemm.cpp" "src/nn/CMakeFiles/neurfill_nn.dir/gemm.cpp.o" "gcc" "src/nn/CMakeFiles/neurfill_nn.dir/gemm.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/neurfill_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/neurfill_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/ops_conv.cpp" "src/nn/CMakeFiles/neurfill_nn.dir/ops_conv.cpp.o" "gcc" "src/nn/CMakeFiles/neurfill_nn.dir/ops_conv.cpp.o.d"
  "/root/repo/src/nn/ops_elementwise.cpp" "src/nn/CMakeFiles/neurfill_nn.dir/ops_elementwise.cpp.o" "gcc" "src/nn/CMakeFiles/neurfill_nn.dir/ops_elementwise.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/nn/CMakeFiles/neurfill_nn.dir/optim.cpp.o" "gcc" "src/nn/CMakeFiles/neurfill_nn.dir/optim.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/neurfill_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/neurfill_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/neurfill_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/neurfill_nn.dir/tensor.cpp.o.d"
  "/root/repo/src/nn/unet.cpp" "src/nn/CMakeFiles/neurfill_nn.dir/unet.cpp.o" "gcc" "src/nn/CMakeFiles/neurfill_nn.dir/unet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neurfill_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
