
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/fill_insertion.cpp" "src/layout/CMakeFiles/neurfill_layout.dir/fill_insertion.cpp.o" "gcc" "src/layout/CMakeFiles/neurfill_layout.dir/fill_insertion.cpp.o.d"
  "/root/repo/src/layout/window_grid.cpp" "src/layout/CMakeFiles/neurfill_layout.dir/window_grid.cpp.o" "gcc" "src/layout/CMakeFiles/neurfill_layout.dir/window_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/neurfill_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neurfill_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
