file(REMOVE_RECURSE
  "libneurfill_layout.a"
)
