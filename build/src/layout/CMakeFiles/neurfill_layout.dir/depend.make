# Empty dependencies file for neurfill_layout.
# This may be replaced when dependencies are built.
