file(REMOVE_RECURSE
  "CMakeFiles/neurfill_layout.dir/fill_insertion.cpp.o"
  "CMakeFiles/neurfill_layout.dir/fill_insertion.cpp.o.d"
  "CMakeFiles/neurfill_layout.dir/window_grid.cpp.o"
  "CMakeFiles/neurfill_layout.dir/window_grid.cpp.o.d"
  "libneurfill_layout.a"
  "libneurfill_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurfill_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
