# Empty dependencies file for neurfill_common.
# This may be replaced when dependencies are built.
