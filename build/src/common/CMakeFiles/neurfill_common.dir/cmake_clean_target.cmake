file(REMOVE_RECURSE
  "libneurfill_common.a"
)
