file(REMOVE_RECURSE
  "CMakeFiles/neurfill_common.dir/fft.cpp.o"
  "CMakeFiles/neurfill_common.dir/fft.cpp.o.d"
  "CMakeFiles/neurfill_common.dir/log.cpp.o"
  "CMakeFiles/neurfill_common.dir/log.cpp.o.d"
  "CMakeFiles/neurfill_common.dir/resource.cpp.o"
  "CMakeFiles/neurfill_common.dir/resource.cpp.o.d"
  "CMakeFiles/neurfill_common.dir/rng.cpp.o"
  "CMakeFiles/neurfill_common.dir/rng.cpp.o.d"
  "CMakeFiles/neurfill_common.dir/stats.cpp.o"
  "CMakeFiles/neurfill_common.dir/stats.cpp.o.d"
  "libneurfill_common.a"
  "libneurfill_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neurfill_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
