file(REMOVE_RECURSE
  "CMakeFiles/fpga_fill.dir/fpga_fill.cpp.o"
  "CMakeFiles/fpga_fill.dir/fpga_fill.cpp.o.d"
  "fpga_fill"
  "fpga_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
