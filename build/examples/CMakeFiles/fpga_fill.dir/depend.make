# Empty dependencies file for fpga_fill.
# This may be replaced when dependencies are built.
