file(REMOVE_RECURSE
  "CMakeFiles/train_surrogate.dir/train_surrogate.cpp.o"
  "CMakeFiles/train_surrogate.dir/train_surrogate.cpp.o.d"
  "train_surrogate"
  "train_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
