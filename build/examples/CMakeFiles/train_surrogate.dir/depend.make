# Empty dependencies file for train_surrogate.
# This may be replaced when dependencies are built.
