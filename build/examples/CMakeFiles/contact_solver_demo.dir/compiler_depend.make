# Empty compiler generated dependencies file for contact_solver_demo.
# This may be replaced when dependencies are built.
