file(REMOVE_RECURSE
  "CMakeFiles/contact_solver_demo.dir/contact_solver_demo.cpp.o"
  "CMakeFiles/contact_solver_demo.dir/contact_solver_demo.cpp.o.d"
  "contact_solver_demo"
  "contact_solver_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contact_solver_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
