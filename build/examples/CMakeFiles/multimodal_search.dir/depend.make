# Empty dependencies file for multimodal_search.
# This may be replaced when dependencies are built.
