file(REMOVE_RECURSE
  "CMakeFiles/multimodal_search.dir/multimodal_search.cpp.o"
  "CMakeFiles/multimodal_search.dir/multimodal_search.cpp.o.d"
  "multimodal_search"
  "multimodal_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimodal_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
