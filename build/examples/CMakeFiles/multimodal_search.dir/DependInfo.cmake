
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/multimodal_search.cpp" "examples/CMakeFiles/multimodal_search.dir/multimodal_search.cpp.o" "gcc" "examples/CMakeFiles/multimodal_search.dir/multimodal_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fill/CMakeFiles/neurfill_fill.dir/DependInfo.cmake"
  "/root/repo/build/src/surrogate/CMakeFiles/neurfill_surrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/neurfill_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cmp/CMakeFiles/neurfill_cmp.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/neurfill_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/neurfill_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/neurfill_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neurfill_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
