file(REMOVE_RECURSE
  "CMakeFiles/test_fill.dir/test_fill.cpp.o"
  "CMakeFiles/test_fill.dir/test_fill.cpp.o.d"
  "test_fill"
  "test_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
