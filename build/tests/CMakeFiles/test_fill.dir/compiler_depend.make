# Empty compiler generated dependencies file for test_fill.
# This may be replaced when dependencies are built.
