# Empty compiler generated dependencies file for test_nmmso.
# This may be replaced when dependencies are built.
