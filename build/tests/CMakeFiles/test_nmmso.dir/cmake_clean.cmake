file(REMOVE_RECURSE
  "CMakeFiles/test_nmmso.dir/test_nmmso.cpp.o"
  "CMakeFiles/test_nmmso.dir/test_nmmso.cpp.o.d"
  "test_nmmso"
  "test_nmmso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nmmso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
