file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_report.dir/test_kernels_report.cpp.o"
  "CMakeFiles/test_kernels_report.dir/test_kernels_report.cpp.o.d"
  "test_kernels_report"
  "test_kernels_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
