# Empty dependencies file for test_kernels_report.
# This may be replaced when dependencies are built.
