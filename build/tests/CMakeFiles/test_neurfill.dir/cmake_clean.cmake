file(REMOVE_RECURSE
  "CMakeFiles/test_neurfill.dir/test_neurfill.cpp.o"
  "CMakeFiles/test_neurfill.dir/test_neurfill.cpp.o.d"
  "test_neurfill"
  "test_neurfill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neurfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
