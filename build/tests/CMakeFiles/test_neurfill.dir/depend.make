# Empty dependencies file for test_neurfill.
# This may be replaced when dependencies are built.
