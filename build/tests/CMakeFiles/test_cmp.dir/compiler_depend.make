# Empty compiler generated dependencies file for test_cmp.
# This may be replaced when dependencies are built.
