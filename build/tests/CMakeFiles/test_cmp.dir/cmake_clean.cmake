file(REMOVE_RECURSE
  "CMakeFiles/test_cmp.dir/test_cmp.cpp.o"
  "CMakeFiles/test_cmp.dir/test_cmp.cpp.o.d"
  "test_cmp"
  "test_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
