file(REMOVE_RECURSE
  "CMakeFiles/test_opt.dir/test_opt.cpp.o"
  "CMakeFiles/test_opt.dir/test_opt.cpp.o.d"
  "test_opt"
  "test_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
