# Empty dependencies file for test_window_grid.
# This may be replaced when dependencies are built.
