file(REMOVE_RECURSE
  "CMakeFiles/test_window_grid.dir/test_window_grid.cpp.o"
  "CMakeFiles/test_window_grid.dir/test_window_grid.cpp.o.d"
  "test_window_grid"
  "test_window_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_window_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
