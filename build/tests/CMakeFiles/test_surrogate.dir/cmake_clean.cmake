file(REMOVE_RECURSE
  "CMakeFiles/test_surrogate.dir/test_surrogate.cpp.o"
  "CMakeFiles/test_surrogate.dir/test_surrogate.cpp.o.d"
  "test_surrogate"
  "test_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
