# Empty compiler generated dependencies file for test_surrogate.
# This may be replaced when dependencies are built.
