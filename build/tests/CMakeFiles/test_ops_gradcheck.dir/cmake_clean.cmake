file(REMOVE_RECURSE
  "CMakeFiles/test_ops_gradcheck.dir/test_ops_gradcheck.cpp.o"
  "CMakeFiles/test_ops_gradcheck.dir/test_ops_gradcheck.cpp.o.d"
  "test_ops_gradcheck"
  "test_ops_gradcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops_gradcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
