# Empty dependencies file for test_ops_gradcheck.
# This may be replaced when dependencies are built.
