# Empty compiler generated dependencies file for test_fill_insertion.
# This may be replaced when dependencies are built.
