file(REMOVE_RECURSE
  "CMakeFiles/test_fill_insertion.dir/test_fill_insertion.cpp.o"
  "CMakeFiles/test_fill_insertion.dir/test_fill_insertion.cpp.o.d"
  "test_fill_insertion"
  "test_fill_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fill_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
