file(REMOVE_RECURSE
  "CMakeFiles/test_geom.dir/test_geom.cpp.o"
  "CMakeFiles/test_geom.dir/test_geom.cpp.o.d"
  "test_geom"
  "test_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
