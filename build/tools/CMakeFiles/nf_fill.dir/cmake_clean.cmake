file(REMOVE_RECURSE
  "CMakeFiles/nf_fill.dir/nf_fill.cpp.o"
  "CMakeFiles/nf_fill.dir/nf_fill.cpp.o.d"
  "nf_fill"
  "nf_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
