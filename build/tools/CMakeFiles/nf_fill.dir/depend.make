# Empty dependencies file for nf_fill.
# This may be replaced when dependencies are built.
