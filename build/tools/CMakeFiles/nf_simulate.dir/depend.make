# Empty dependencies file for nf_simulate.
# This may be replaced when dependencies are built.
