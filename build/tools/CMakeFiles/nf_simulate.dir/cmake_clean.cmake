file(REMOVE_RECURSE
  "CMakeFiles/nf_simulate.dir/nf_simulate.cpp.o"
  "CMakeFiles/nf_simulate.dir/nf_simulate.cpp.o.d"
  "nf_simulate"
  "nf_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
