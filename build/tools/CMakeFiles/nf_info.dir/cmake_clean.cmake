file(REMOVE_RECURSE
  "CMakeFiles/nf_info.dir/nf_info.cpp.o"
  "CMakeFiles/nf_info.dir/nf_info.cpp.o.d"
  "nf_info"
  "nf_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
