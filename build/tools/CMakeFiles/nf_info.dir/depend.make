# Empty dependencies file for nf_info.
# This may be replaced when dependencies are built.
