# Empty compiler generated dependencies file for nf_gen.
# This may be replaced when dependencies are built.
