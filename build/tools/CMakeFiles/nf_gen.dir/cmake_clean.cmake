file(REMOVE_RECURSE
  "CMakeFiles/nf_gen.dir/nf_gen.cpp.o"
  "CMakeFiles/nf_gen.dir/nf_gen.cpp.o.d"
  "nf_gen"
  "nf_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
