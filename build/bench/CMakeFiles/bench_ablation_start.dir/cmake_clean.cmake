file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_start.dir/bench_ablation_start.cpp.o"
  "CMakeFiles/bench_ablation_start.dir/bench_ablation_start.cpp.o.d"
  "bench_ablation_start"
  "bench_ablation_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
