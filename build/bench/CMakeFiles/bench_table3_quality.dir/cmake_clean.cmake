file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_quality.dir/bench_table3_quality.cpp.o"
  "CMakeFiles/bench_table3_quality.dir/bench_table3_quality.cpp.o.d"
  "bench_table3_quality"
  "bench_table3_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
