file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_topography.dir/bench_fig6_topography.cpp.o"
  "CMakeFiles/bench_fig6_topography.dir/bench_fig6_topography.cpp.o.d"
  "bench_fig6_topography"
  "bench_fig6_topography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_topography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
