file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_optimizer.dir/bench_ablation_optimizer.cpp.o"
  "CMakeFiles/bench_ablation_optimizer.dir/bench_ablation_optimizer.cpp.o.d"
  "bench_ablation_optimizer"
  "bench_ablation_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
