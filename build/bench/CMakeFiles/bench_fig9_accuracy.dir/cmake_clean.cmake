file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_accuracy.dir/bench_fig9_accuracy.cpp.o"
  "CMakeFiles/bench_fig9_accuracy.dir/bench_fig9_accuracy.cpp.o.d"
  "bench_fig9_accuracy"
  "bench_fig9_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
