#pragma once

// Shared internals between the nf_lint engine (file discovery, suppression,
// output) and the rule implementations.  Adding a rule: write a
// `void rule_x(const Project&, std::vector<Finding>&)` in rules.cpp and
// append one entry to rule_table() — docs/static_analysis.md walks through
// the process.

#include <string>
#include <vector>

#include "nf_lint/lint.hpp"

namespace neurfill::lint {

/// One row of the fault-site catalog table in docs/robustness.md.
struct CatalogEntry {
  std::string site;
  int line = 0;
};

/// Everything the rules see: the lexed tree plus cross-file context.
struct Project {
  std::string root;
  std::vector<SourceFile> files;
  std::string catalog_rel;             ///< rel path of the catalog document
  bool catalog_found = false;          ///< catalog document parsed OK
  std::vector<CatalogEntry> catalog;   ///< catalogued fault sites
  /// True when the scan covers the default tree (src/, tools/, tests/).
  /// Cross-file completeness checks (stale catalog entries) only make sense
  /// then — linting one file must not report every absent site as stale.
  bool full_scan = true;
};

using RuleFn = void (*)(const Project&, std::vector<Finding>&);

struct RuleEntry {
  const char* name;
  const char* description;
  RuleFn fn;
};

/// The registered rules, in execution order (rules.cpp).
const std::vector<RuleEntry>& rule_table();

}  // namespace neurfill::lint
