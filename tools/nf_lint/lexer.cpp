// Tokenizer for nf_lint (lint.hpp).
//
// Lexes just enough C++ for the rules: identifiers, numbers, string/char
// literals (with encoding prefixes and raw strings), single-character
// punctuation, and a separate comment channel.  Preprocessor directives are
// not special-cased — `#`, `pragma`, `include` come out as ordinary tokens,
// which is exactly what the pragma-once and determinism rules want (a
// banned `#include <unordered_map>` is caught at the include line).

#include <cstddef>
#include <string>
#include <vector>

#include "nf_lint/lint.hpp"

namespace neurfill::lint {

namespace {

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool is_ident_char(char c) { return is_ident_start(c) || (c >= '0' && c <= '9'); }
bool is_digit(char c) { return c >= '0' && c <= '9'; }

/// True when the identifier ending at position `i` (exclusive) is a string
/// or character literal encoding prefix (L, u, U, u8, R, LR, uR, UR, u8R).
bool is_literal_prefix(const std::string& s) {
  return s == "L" || s == "u" || s == "U" || s == "u8" || s == "R" ||
         s == "LR" || s == "uR" || s == "UR" || s == "u8R";
}

}  // namespace

std::vector<Token> tokenize(const std::string& source,
                            std::vector<Comment>* comments) {
  std::vector<Token> tokens;
  const std::size_t n = source.size();
  std::size_t i = 0;
  int line = 1;

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k) {
      if (source[i] == '\n') ++line;
      ++i;
    }
  };

  // Consumes a quoted literal starting at the opening quote; returns the
  // inner text.  Handles backslash escapes; unterminated literals end at
  // end-of-line (matching how a compiler would diagnose, good enough here).
  auto read_quoted = [&](char quote) {
    std::string inner;
    advance(1);  // opening quote
    while (i < n && source[i] != quote && source[i] != '\n') {
      if (source[i] == '\\' && i + 1 < n) {
        inner += source[i];
        inner += source[i + 1];
        advance(2);
        continue;
      }
      inner += source[i];
      advance(1);
    }
    if (i < n && source[i] == quote) advance(1);  // closing quote
    return inner;
  };

  // Consumes a raw string literal starting at the opening '"' (the R prefix
  // is already consumed); returns the inner text between the parentheses.
  auto read_raw_string = [&]() {
    advance(1);  // opening quote
    std::string delim;
    while (i < n && source[i] != '(') {
      delim += source[i];
      advance(1);
    }
    if (i < n) advance(1);  // '('
    const std::string closer = ")" + delim + "\"";
    std::string inner;
    while (i < n && source.compare(i, closer.size(), closer) != 0) {
      inner += source[i];
      advance(1);
    }
    if (i < n) advance(closer.size());
    return inner;
  };

  while (i < n) {
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      advance(1);
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const int start_line = line;
      advance(2);
      std::string body;
      while (i < n && source[i] != '\n') {
        body += source[i];
        advance(1);
      }
      if (comments) comments->push_back({body, start_line, start_line});
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int start_line = line;
      advance(2);
      std::string body;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        body += source[i];
        advance(1);
      }
      advance(2);  // closing */
      if (comments) comments->push_back({body, start_line, line});
      continue;
    }
    // Identifiers — possibly a literal prefix glued to a quote.
    if (is_ident_start(c)) {
      const int start_line = line;
      std::string text;
      while (i < n && is_ident_char(source[i])) {
        text += source[i];
        advance(1);
      }
      if (i < n && source[i] == '"' && is_literal_prefix(text)) {
        const bool raw = text.back() == 'R';
        const std::string inner = raw ? read_raw_string() : read_quoted('"');
        tokens.push_back({TokKind::kString, inner, start_line});
        continue;
      }
      if (i < n && source[i] == '\'' && is_literal_prefix(text)) {
        tokens.push_back({TokKind::kChar, read_quoted('\''), start_line});
        continue;
      }
      tokens.push_back({TokKind::kIdentifier, text, start_line});
      continue;
    }
    // Numbers (a leading '.' followed by a digit is a float).
    if (is_digit(c) || (c == '.' && i + 1 < n && is_digit(source[i + 1]))) {
      const int start_line = line;
      std::string text;
      char prev = 0;
      while (i < n) {
        const char d = source[i];
        const bool exponent_sign =
            (d == '+' || d == '-') &&
            (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P');
        if (!(is_ident_char(d) || d == '.' || d == '\'' || exponent_sign))
          break;
        text += d;
        prev = d;
        advance(1);
      }
      tokens.push_back({TokKind::kNumber, text, start_line});
      continue;
    }
    // String / char literals without a prefix.
    if (c == '"') {
      const int start_line = line;
      tokens.push_back({TokKind::kString, read_quoted('"'), start_line});
      continue;
    }
    if (c == '\'') {
      const int start_line = line;
      tokens.push_back({TokKind::kChar, read_quoted('\''), start_line});
      continue;
    }
    // Everything else: one punctuation character per token.  Rules match
    // multi-character operators ("::", "->") as short token sequences.
    tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    advance(1);
  }
  return tokens;
}

}  // namespace neurfill::lint
