// The nf_lint rules (rules_internal.hpp).  Each rule is a pure function of
// the lexed Project; docs/static_analysis.md documents every rule's
// rationale, scope, and suppression story.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "nf_lint/rules_internal.hpp"

namespace neurfill::lint {

namespace {

// ---------------------------------------------------------------------------
// Token helpers

bool is_id(const Token& t, const char* text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}
bool is_p(const Token& t, char c) {
  return t.kind == TokKind::kPunct && t.text.size() == 1 && t.text[0] == c;
}
bool any_id(const Token& t) { return t.kind == TokKind::kIdentifier; }

/// True when tokens[i] is immediately preceded by "::" (tokens are single
/// punctuation characters, so "::" is two ':' tokens).
bool after_scope_op(const std::vector<Token>& t, std::size_t i) {
  return i >= 2 && is_p(t[i - 1], ':') && is_p(t[i - 2], ':');
}

/// True when tokens[i] is `qual :: <tokens[i]>`.
bool qualified_by(const std::vector<Token>& t, std::size_t i,
                  const char* qual) {
  return i >= 3 && after_scope_op(t, i) && is_id(t[i - 3], qual);
}

/// True when tokens[i] is a member access (x.f or x->f), so a bare-name
/// match must not fire.
bool member_access(const std::vector<Token>& t, std::size_t i) {
  if (i >= 1 && is_p(t[i - 1], '.')) return true;
  return i >= 2 && is_p(t[i - 1], '>') && is_p(t[i - 2], '-');
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}
bool ends_with(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

/// Index of the ')' matching the '(' at `open`, or npos.
std::size_t matching_paren(const std::vector<Token>& t, std::size_t open) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_p(t[i], '(')) ++depth;
    if (is_p(t[i], ')') && --depth == 0) return i;
  }
  return std::string::npos;
}

void add(std::vector<Finding>& out, const char* rule, const SourceFile& f,
         int line, std::string message) {
  out.push_back({rule, f.rel_path, line, std::move(message)});
}

// ---------------------------------------------------------------------------
// Rule: determinism
//
// The numeric subsystems promise bitwise-identical results at any thread
// count (docs/runtime.md).  Wall-clock seeds, ambient randomness, raw
// threads outside the deterministic pool, and hash-ordered containers all
// break that promise silently, so they are banned outright in numeric code;
// src/runtime (the pool itself) and src/common/rng.* (the seeded RNG) are
// the sanctioned homes for the exceptions.

bool numeric_scope(const std::string& rel) {
  // src/nn/backend and src/nn/infer are subsumed by src/nn/, but they are
  // named explicitly: the backend primitives and the compiled inference
  // session carry the bitwise-at-any-thread-count contract directly
  // (docs/inference.md), and the scope list is the place that says so.
  static const char* kPrefixes[] = {"src/cmp/",  "src/nn/",     "src/opt/",
                                    "src/nn/backend/", "src/nn/infer/",
                                    "src/fill/", "src/surrogate/",
                                    "src/geom/", "src/layout/",
                                    "src/fullchip/", "src/serve/"};
  for (const char* p : kPrefixes)
    if (starts_with(rel, p)) return true;
  return starts_with(rel, "src/common/fft");
}

void rule_determinism(const Project& proj, std::vector<Finding>& out) {
  static const char* kBannedCalls[] = {"rand",  "srand",        "time",
                                       "clock", "gettimeofday", "timespec_get"};
  static const char* kBannedTypes[] = {
      "random_device", "mt19937",        "mt19937_64",
      "unordered_map", "unordered_set",  "unordered_multimap",
      "unordered_multiset"};
  static const char* kStdOnly[] = {"thread", "jthread", "async"};
  for (const SourceFile& f : proj.files) {
    if (!numeric_scope(f.rel_path)) continue;
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!any_id(t[i])) continue;
      for (const char* name : kBannedCalls) {
        if (t[i].text == name && i + 1 < t.size() && is_p(t[i + 1], '(') &&
            !member_access(t, i) &&
            (!after_scope_op(t, i) || qualified_by(t, i, "std"))) {
          add(out, "determinism", f, t[i].line,
              "call to '" + t[i].text +
                  "' in a numeric subsystem breaks run-to-run determinism; "
                  "seed neurfill::Rng explicitly instead");
        }
      }
      for (const char* name : kBannedTypes) {
        if (t[i].text == name) {
          add(out, "determinism", f, t[i].line,
              std::string("'") + name +
                  "' in a numeric subsystem: hash/entropy ordering is not "
                  "deterministic; use ordered containers or neurfill::Rng");
        }
      }
      for (const char* name : kStdOnly) {
        if (t[i].text == name && qualified_by(t, i, "std")) {
          add(out, "determinism", f, t[i].line,
              "raw 'std::" + t[i].text +
                  "' in a numeric subsystem bypasses the deterministic "
                  "runtime pool; use runtime::parallel_for/parallel_reduce");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: infer-no-autograd
//
// src/nn/infer is the tape-free inference fast path: a compiled graph that
// re-derives everything it needs from Module weights at build time and then
// runs pure Backend primitives.  Any autograd API appearing there — the
// tape-building Module::forward, TensorImpl, or the grad accessors —
// reintroduces per-op allocation and tape state behind the session's back,
// which is exactly the cost the subsystem exists to remove.  The rule bans
// the identifiers outright (comments are not tokenized, so prose may still
// explain the relationship to the autograd path).

void rule_infer_no_autograd(const Project& proj, std::vector<Finding>& out) {
  static const char* kBanned[] = {
      "forward",        "backward",  "backward_fn", "requires_grad",
      "set_requires_grad", "grad",   "grad_vector", "has_grad",
      "ensure_grad",    "zero_grad", "TensorImpl"};
  for (const SourceFile& f : proj.files) {
    if (!starts_with(f.rel_path, "src/nn/infer/")) continue;
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!any_id(t[i])) continue;
      for (const char* name : kBanned) {
        if (t[i].text == name) {
          add(out, "infer-no-autograd", f, t[i].line,
              "'" + t[i].text +
                  "' is autograd tape API; src/nn/infer is the tape-free "
                  "fast path — go through the Backend primitives instead");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: expected-discard
//
// Part 1: every function returning nf::Expected<T> must carry
// [[nodiscard]] — the class-level attribute already warns at call sites,
// but the function-level attribute survives wrappers (auto&&, macros) and
// documents the contract at the declaration.
// Part 2: a call to an Expected-returning function whose result is a bare
// expression statement silently drops the error channel; every such call
// site is flagged (cast through `(void)` to discard deliberately).

struct ExpectedFn {
  std::string name;
  std::string qualifier;  ///< enclosing/explicit class name, "" for free fns
};

/// Member names too generic to attribute from a call site (`file.open(...)`
/// is std::ofstream, not CheckpointReader).  For these, only explicitly
/// qualified calls (`CheckpointReader::open(...)`) are checked for discard.
bool too_common_for_member_match(const std::string& name) {
  static const std::set<std::string> kCommon = {
      "open", "close", "read", "write", "get", "set", "clear", "reset",
      "load", "save", "run",   "init"};
  return kCommon.count(name) > 0;
}

/// Walks the brace structure of one file, classifying each '{' as a scope
/// brace (namespace/class body — declarations continue inside) or a body
/// brace (function body, initializer, lambda).  Scope braces record the
/// class name when one is present.
class ScopeTracker {
 public:
  explicit ScopeTracker(const std::vector<Token>& tokens) : t_(tokens) {}

  /// Call for every token index, in order, *before* inspecting it.
  void observe(std::size_t i) {
    if (is_p(t_[i], '{')) {
      stack_.push_back(classify(i));
      if (!stack_.back().is_scope) ++body_depth_;
    } else if (is_p(t_[i], '}')) {
      if (!stack_.empty()) {
        if (!stack_.back().is_scope) --body_depth_;
        stack_.pop_back();
      }
    }
  }

  /// True at namespace/class scope — where declarations live.
  bool at_decl_scope() const { return body_depth_ == 0; }

  /// Innermost enclosing class/struct name, "" when none.
  std::string enclosing_class() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it)
      if (it->is_scope && !it->name.empty()) return it->name;
    return "";
  }

 private:
  struct Entry {
    bool is_scope = false;
    std::string name;  ///< class/struct name for scope entries
  };

  /// A '{' opens a scope when the tokens since the previous ';'/'{'/'}'
  /// start a namespace/class/struct/union/enum and the window is not an
  /// initializer (contains '=') or a function signature with a class-typed
  /// return (the keyword after '(' never classifies).
  Entry classify(std::size_t open) const {
    if (body_depth_ > 0) return {false, ""};
    Entry e;
    std::size_t begin = 0;
    for (std::size_t j = open; j-- > 0;) {
      if (is_p(t_[j], ';') || is_p(t_[j], '{') || is_p(t_[j], '}')) {
        begin = j + 1;
        break;
      }
    }
    bool saw_eq = false, saw_paren = false;
    std::size_t kw = std::string::npos;
    for (std::size_t j = begin; j < open; ++j) {
      if (is_p(t_[j], '=')) saw_eq = true;
      if (is_p(t_[j], '(')) saw_paren = true;
      if (kw == std::string::npos &&
          (is_id(t_[j], "namespace") || is_id(t_[j], "class") ||
           is_id(t_[j], "struct") || is_id(t_[j], "union") ||
           is_id(t_[j], "enum")))
        kw = j;
    }
    if (kw != std::string::npos && !saw_eq && !saw_paren) {
      e.is_scope = true;
      // namespace N { / class C final : Base { — name is the identifier
      // right after the keyword (skipping "class" of "enum class").
      std::size_t j = kw + 1;
      if (j < open && is_id(t_[j], "class")) ++j;
      if (j < open && any_id(t_[j]) && !is_id(t_[kw], "namespace"))
        e.name = t_[j].text;
    }
    return e;
  }

  const std::vector<Token>& t_;
  std::vector<Entry> stack_;
  int body_depth_ = 0;
};

/// Matches `[nf::|neurfill::] Expected < ... >` starting at token i (the
/// `Expected`).  Returns the index one past the closing '>', or npos.
std::size_t match_expected_type(const std::vector<Token>& t, std::size_t i) {
  if (!is_id(t[i], "Expected")) return std::string::npos;
  if (after_scope_op(t, i) && !qualified_by(t, i, "nf") &&
      !qualified_by(t, i, "neurfill"))
    return std::string::npos;
  if (i + 1 >= t.size() || !is_p(t[i + 1], '<')) return std::string::npos;
  std::size_t depth = 0;
  for (std::size_t j = i + 1; j < t.size(); ++j) {
    if (is_p(t[j], '<')) ++depth;
    if (is_p(t[j], '>') && --depth == 0) return j + 1;
    if (is_p(t[j], ';') || is_p(t[j], '{')) break;  // malformed
  }
  return std::string::npos;
}

/// True when the declaration-specifier run ending just before `type_begin`
/// contains a [[...nodiscard...]] attribute.
bool has_nodiscard_before(const std::vector<Token>& t, std::size_t type_begin) {
  std::size_t j = type_begin;
  for (int hops = 0; j > 0 && hops < 16; ++hops) {
    const Token& p = t[j - 1];
    if (is_id(p, "static") || is_id(p, "inline") || is_id(p, "constexpr") ||
        is_id(p, "extern") || is_id(p, "friend") || is_id(p, "virtual") ||
        is_id(p, "explicit") || is_id(p, "nodiscard") || is_p(p, '[') ||
        is_p(p, ']') || (p.kind == TokKind::kString)) {
      if (is_id(p, "nodiscard")) return true;
      --j;
      continue;
    }
    break;
  }
  return false;
}

void collect_expected_fns(const Project& proj, std::vector<ExpectedFn>* fns,
                          std::vector<Finding>* out) {
  for (const SourceFile& f : proj.files) {
    if (!starts_with(f.rel_path, "src/") && !starts_with(f.rel_path, "tools/"))
      continue;
    const auto& t = f.tokens;
    ScopeTracker scope(t);
    for (std::size_t i = 0; i < t.size(); ++i) {
      scope.observe(i);
      if (!scope.at_decl_scope()) continue;
      const std::size_t after = match_expected_type(t, i);
      if (after == std::string::npos) continue;
      // Name chain: ident (:: ident)* then '('.
      std::size_t j = after;
      std::string qualifier = scope.enclosing_class();
      std::string name;
      while (j < t.size() && any_id(t[j])) {
        name = t[j].text;
        if (j + 2 < t.size() && is_p(t[j + 1], ':') && is_p(t[j + 2], ':')) {
          qualifier = t[j].text;  // out-of-line member definition
          j += 3;
          continue;
        }
        ++j;
        break;
      }
      if (name.empty() || j >= t.size() || !is_p(t[j], '(')) continue;
      const std::size_t type_begin =
          qualified_by(t, i, "nf") || qualified_by(t, i, "neurfill") ? i - 3
                                                                     : i;
      if (out && !has_nodiscard_before(t, type_begin)) {
        out->push_back({"expected-discard", f.rel_path, t[i].line,
                        "function '" + name +
                            "' returns nf::Expected but is not declared "
                            "[[nodiscard]]"});
      }
      fns->push_back({name, qualifier});
    }
  }
}

void rule_expected_discard(const Project& proj, std::vector<Finding>& out) {
  std::vector<ExpectedFn> fns;
  collect_expected_fns(proj, &fns, &out);
  std::set<std::string> free_or_distinct;  // matchable by bare/member call
  std::map<std::string, std::set<std::string>> qualified;  // name -> classes
  for (const ExpectedFn& fn : fns) {
    if (!fn.qualifier.empty()) qualified[fn.name].insert(fn.qualifier);
    if (fn.qualifier.empty() || !too_common_for_member_match(fn.name))
      free_or_distinct.insert(fn.name);
  }
  for (const SourceFile& f : proj.files) {
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!any_id(t[i]) || i + 1 >= t.size() || !is_p(t[i + 1], '(')) continue;
      const std::string& name = t[i].text;
      bool candidate = false;
      if (free_or_distinct.count(name)) {
        candidate = true;
      } else if (qualified.count(name) && i >= 3 && after_scope_op(t, i) &&
                 any_id(t[i - 3]) && qualified[name].count(t[i - 3].text)) {
        candidate = true;  // Class::common_name(...) — explicit receiver
      }
      if (!candidate) continue;
      // Walk back over the qualifier/receiver chain to the statement start.
      std::size_t j = i;
      while (j >= 2) {
        if (is_p(t[j - 1], '.') && j >= 2 && any_id(t[j - 2])) {
          j -= 2;
        } else if (j >= 3 && is_p(t[j - 1], '>') && is_p(t[j - 2], '-') &&
                   any_id(t[j - 3])) {
          j -= 3;
        } else if (j >= 3 && after_scope_op(t, j) && any_id(t[j - 3])) {
          j -= 3;
        } else {
          break;
        }
      }
      bool stmt_start = j == 0;
      if (!stmt_start && (is_p(t[j - 1], ';') || is_p(t[j - 1], '{') ||
                          is_p(t[j - 1], '}'))) {
        stmt_start = true;
      }
      if (!stmt_start && is_p(t[j - 1], ')')) {
        // `if (...) call();` discards too — but `(void) call();` is the
        // sanctioned explicit discard.
        const bool void_cast = j >= 3 && is_id(t[j - 2], "void") &&
                               is_p(t[j - 3], '(');
        stmt_start = !void_cast;
      }
      if (!stmt_start) continue;
      const std::size_t close = matching_paren(t, i + 1);
      if (close == std::string::npos || close + 1 >= t.size()) continue;
      if (!is_p(t[close + 1], ';')) continue;  // result is consumed
      add(out, "expected-discard", f, t[i].line,
          "result of '" + name +
              "(...)' (nf::Expected) is silently discarded; handle the "
              "error or cast through (void) deliberately");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: fault-catalog
//
// Every NF_FAULT("site") literal must appear in the docs/robustness.md
// fault-site catalog, and every catalogued site must still exist in code —
// the catalog is the operator-facing contract for NEURFILL_FAULTS specs.

void rule_fault_catalog(const Project& proj, std::vector<Finding>& out) {
  std::set<std::string> catalogued;
  for (const CatalogEntry& e : proj.catalog) catalogued.insert(e.site);
  std::set<std::string> in_code;
  for (const SourceFile& f : proj.files) {
    if (!starts_with(f.rel_path, "src/") && !starts_with(f.rel_path, "tools/"))
      continue;
    const auto& t = f.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (!is_id(t[i], "NF_FAULT") || !is_p(t[i + 1], '(') ||
          t[i + 2].kind != TokKind::kString)
        continue;
      const std::string& site = t[i + 2].text;
      in_code.insert(site);
      if (!proj.catalog_found) {
        add(out, "fault-catalog", f, t[i].line,
            "NF_FAULT site '" + site + "' found but the catalog '" +
                proj.catalog_rel + "' is missing or has no catalog table");
      } else if (!catalogued.count(site)) {
        add(out, "fault-catalog", f, t[i].line,
            "NF_FAULT site '" + site + "' is not in the fault-site catalog (" +
                proj.catalog_rel + ")");
      }
    }
  }
  if (proj.catalog_found && proj.full_scan) {
    for (const CatalogEntry& e : proj.catalog) {
      if (!in_code.count(e.site)) {
        out.push_back({"fault-catalog", proj.catalog_rel, e.line,
                       "catalogued fault site '" + e.site +
                           "' has no NF_FAULT(\"" + e.site +
                           "\") in the code — remove the stale row or "
                           "restore the site"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: trace-hygiene
//
// Span/counter/gauge names must be single string literals — the obs macros
// cache the registry lookup in a per-site static, and SpanTimer stores the
// `const char*` it is given, so a runtime-built name defeats the cache and
// can dangle.  Span names must be unique across sites (two sites sharing a
// name make the chrome trace and the --metrics span table ambiguous), and
// one name must not be reused across instrument kinds.

struct TraceSite {
  std::string kind;  // "span", "counter", "gauge"
  std::string file;
  int line = 0;
};

void check_name_arg(const SourceFile& f, const std::vector<Token>& t,
                    std::size_t open, const std::string& kind,
                    std::map<std::string, TraceSite>& seen,
                    std::vector<Finding>& out) {
  std::size_t j = open + 1;
  std::string name;
  std::size_t literals = 0;
  while (j < t.size() && t[j].kind == TokKind::kString) {
    name += t[j].text;
    ++literals;
    ++j;
  }
  const int line = t[open].line;
  if (literals == 0 || j >= t.size() ||
      !(is_p(t[j], ',') || is_p(t[j], ')'))) {
    add(out, "trace-hygiene", f, line,
        "trace/metric name for this " + kind +
            " site is not a plain string literal; runtime-built names "
            "defeat the per-site registry cache (and dangle in SpanTimer)");
    return;
  }
  auto it = seen.find(name);
  if (it == seen.end()) {
    seen.emplace(name, TraceSite{kind, f.rel_path, line});
    return;
  }
  if (it->second.kind != kind) {
    add(out, "trace-hygiene", f, line,
        "name '" + name + "' is used both as a " + it->second.kind + " (" +
            it->second.file + ":" + std::to_string(it->second.line) +
            ") and as a " + kind);
  } else if (kind == "span") {
    add(out, "trace-hygiene", f, line,
        "duplicate span name '" + name + "' (also at " + it->second.file +
            ":" + std::to_string(it->second.line) +
            "); span names must be unique per site");
  }
}

void rule_trace_hygiene(const Project& proj, std::vector<Finding>& out) {
  std::map<std::string, TraceSite> seen;
  for (const SourceFile& f : proj.files) {
    const bool in_scope = (starts_with(f.rel_path, "src/") ||
                           starts_with(f.rel_path, "tools/")) &&
                          !starts_with(f.rel_path, "src/obs/");
    if (!in_scope) continue;
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!any_id(t[i])) continue;
      const std::string& id = t[i].text;
      std::string kind;
      std::size_t open = std::string::npos;
      if ((id == "NF_TRACE_SPAN" || id == "NF_COUNTER_ADD" ||
           id == "NF_GAUGE_SET") &&
          i + 1 < t.size() && is_p(t[i + 1], '(')) {
        kind = id == "NF_TRACE_SPAN"
                   ? "span"
                   : (id == "NF_COUNTER_ADD" ? "counter" : "gauge");
        open = i + 1;
      } else if (id == "SpanTimer" &&
                 (!after_scope_op(t, i) || qualified_by(t, i, "obs")) &&
                 i + 1 < t.size()) {
        // obs::SpanTimer timer("name")  /  obs::SpanTimer("name")
        kind = "span";
        if (is_p(t[i + 1], '(')) open = i + 1;
        else if (any_id(t[i + 1]) && i + 2 < t.size() && is_p(t[i + 2], '('))
          open = i + 2;
      } else if ((id == "span_stat" || id == "counter" || id == "gauge") &&
                 qualified_by(t, i, "obs") && i + 1 < t.size() &&
                 is_p(t[i + 1], '(')) {
        kind = id == "span_stat" ? "span"
                                 : (id == "counter" ? "counter" : "gauge");
        open = i + 1;
      }
      if (open == std::string::npos) continue;
      // SpanTimer qualified as obs::SpanTimer: skip the declaration in
      // trace.hpp (src/obs is already out of scope) and copy/assign
      // deletions — those have no '(' after an identifier + literal shape
      // and fall out naturally via the literal check only when a string
      // argument is plausible; a parameter list like (const SpanTimer&)
      // is flagged nowhere because declarations live in src/obs.
      check_name_arg(f, t, open, kind, seen, out);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: contract-style
//
// Library code (src/) aborts through NF_CHECK, reports through the log
// macros, and returns structured nf::Error values.  assert() silently
// compiles out under NDEBUG, bare abort/exit bypass the contract banner,
// and printf-family output bypasses both the log level gate and every
// caller that expects stderr to stay parseable.

void rule_contract_style(const Project& proj, std::vector<Finding>& out) {
  static const char* kBanned[] = {"assert",  "abort",    "exit",
                                  "_exit",   "_Exit",    "quick_exit",
                                  "printf",  "fprintf",  "vprintf",
                                  "vfprintf", "sprintf", "vsprintf",
                                  "puts",    "fputs",    "putchar",
                                  "fputc",   "perror"};
  for (const SourceFile& f : proj.files) {
    if (!starts_with(f.rel_path, "src/")) continue;
    const auto& t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!any_id(t[i]) || !is_p(t[i + 1], '(')) continue;
      if (member_access(t, i)) continue;
      if (after_scope_op(t, i) && !qualified_by(t, i, "std")) continue;
      for (const char* name : kBanned) {
        if (t[i].text == name) {
          add(out, "contract-style", f, t[i].line,
              "'" + t[i].text +
                  "' in library code — use NF_CHECK for contracts, the LOG_* "
                  "macros for output, and nf::Expected for recoverable "
                  "errors");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: pragma-once
//
// Every header must open with `#pragma once` (before any code) so the
// header self-containment target and out-of-order includes stay safe.

void rule_pragma_once(const Project& proj, std::vector<Finding>& out) {
  for (const SourceFile& f : proj.files) {
    if (!ends_with(f.rel_path, ".hpp")) continue;
    const auto& t = f.tokens;
    const bool ok = t.size() >= 3 && is_p(t[0], '#') && is_id(t[1], "pragma") &&
                    is_id(t[2], "once");
    if (!ok)
      add(out, "pragma-once", f, 1,
          "header does not start with '#pragma once'");
  }
}

}  // namespace

const std::vector<RuleEntry>& rule_table() {
  static const std::vector<RuleEntry> kRules = {
      {"determinism",
       "bans wall-clock/entropy/raw-thread/hash-ordered constructs in the "
       "numeric subsystems (bitwise-determinism contract)",
       &rule_determinism},
      {"expected-discard",
       "nf::Expected-returning functions must be [[nodiscard]] and their "
       "results must not be silently dropped",
       &rule_expected_discard},
      {"infer-no-autograd",
       "src/nn/infer must stay free of autograd tape APIs "
       "(Module::forward, TensorImpl, grad accessors)",
       &rule_infer_no_autograd},
      {"fault-catalog",
       "NF_FAULT(\"site\") literals and the docs/robustness.md catalog must "
       "match exactly, in both directions",
       &rule_fault_catalog},
      {"trace-hygiene",
       "trace span / counter / gauge names must be unique, stable string "
       "literals",
       &rule_trace_hygiene},
      {"contract-style",
       "no assert/abort/exit/printf-family in library code; NF_CHECK, LOG_* "
       "and nf::Expected only",
       &rule_contract_style},
      {"pragma-once",
       "every header starts with #pragma once (keeps the header "
       "self-containment target honest)",
       &rule_pragma_once},
  };
  return kRules;
}

}  // namespace neurfill::lint
