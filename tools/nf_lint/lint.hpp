#pragma once

// nf_lint — project-invariant static analyzer (docs/static_analysis.md).
//
// A deliberately small, dependency-free analyzer: its own tokenizer over the
// project's C++ sources (no libclang, so it builds and runs anywhere CI
// does), a table-driven rule engine, and per-line / per-file suppression
// comments.  The rules encode invariants the compiler cannot see — bitwise
// determinism of the numeric subsystems, the Expected<T> error contract,
// the fault-site catalog, trace-name hygiene — so violations fail the lint
// CI job instead of waiting for a test to happen to hit them.
//
// Suppression syntax (checked by tests/test_lint.cpp):
//   // nf-lint: allow(rule)            same line or the line directly above
//   // nf-lint: allow(rule1, rule2)    several rules at once
//   // nf-lint: allow-file(rule)       anywhere: whole file, one rule
//
// Exit-code convention (tools/nf_lint, PR 5 standard): 0 = clean,
// 1 = findings, 2 = usage/configuration error.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace neurfill::lint {

// ---------------------------------------------------------------------------
// Tokenizer

enum class TokKind {
  kIdentifier,  ///< identifiers and keywords
  kNumber,      ///< numeric literals (integer/float, any base)
  kString,      ///< string literal; text holds the *inner* characters
  kChar,        ///< character literal; text holds the inner characters
  kPunct,       ///< a single punctuation character
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character
};

/// One source comment (// or /* */), kept on a separate channel so rules see
/// pure code while the suppression pass still reads annotations.
struct Comment {
  std::string text;  ///< comment body without the delimiters
  int line = 0;      ///< 1-based line the comment starts on
  int end_line = 0;  ///< 1-based line the comment ends on
};

/// Tokenizes C++ source.  Comments go to `comments` when non-null; string
/// and char literals (including raw strings and encoding prefixes) become
/// single tokens so rule patterns never fire on quoted text.
std::vector<Token> tokenize(const std::string& source,
                            std::vector<Comment>* comments);

// ---------------------------------------------------------------------------
// Engine

/// One lexed translation unit or header, path-relative to the project root.
struct SourceFile {
  std::string rel_path;  ///< '/'-separated path relative to Options::root
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// One rule violation.
struct Finding {
  std::string rule;
  std::string file;  ///< rel_path (or the catalog doc for stale entries)
  int line = 0;
  std::string message;
};

struct Options {
  /// Project root; rel_paths and the fault catalog resolve against it.
  std::string root = ".";
  /// Files or directories to scan, relative to root (or absolute).  Empty
  /// means the default tree: src/, tools/, tests/.  Directories recurse over
  /// *.hpp / *.cpp; anything under a "lint_fixtures" or "build" directory is
  /// skipped so the linter's own test corpus never pollutes a tree run.
  std::vector<std::string> paths;
  /// Rule names to run; empty means every registered rule.
  std::vector<std::string> rules;
  /// Fault-site catalog document, relative to root.
  std::string catalog_path = "docs/robustness.md";
};

struct Report {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
};

struct RuleInfo {
  std::string name;
  std::string description;
};

/// The registered rules, in execution order.
std::vector<RuleInfo> rule_infos();

/// Runs the selected rules over the selected tree.  On a usage-level
/// failure (unreadable root, unknown rule name) returns false and sets
/// `*error`; findings are not usage failures.
bool run_lint(const Options& options, Report* report, std::string* error);

/// Machine-readable report for CI annotation (--json FILE).
std::string report_to_json(const Report& report);

/// Full CLI: parses argv, runs the lint, prints findings.  Returns the
/// process exit code (0 clean / 1 findings / 2 usage).
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

}  // namespace neurfill::lint
