// nf_lint entry point.  All behavior lives in the nf_lint_core library so
// tests can drive the CLI in-process (tests/test_lint.cpp).

#include <iostream>

#include "nf_lint/lint.hpp"

int main(int argc, char** argv) {
  return neurfill::lint::run_cli(argc, argv, std::cout, std::cerr);
}
