// nf_lint engine: file discovery, fault-catalog parsing, rule dispatch,
// suppression filtering, and report output (lint.hpp, rules_internal.hpp).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "nf_lint/rules_internal.hpp"

namespace neurfill::lint {

namespace fs = std::filesystem;

namespace {

bool has_lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

/// Directories never scanned, wherever they appear: build trees and the
/// linter's own deliberately-violating test corpus.
bool skipped_directory(const std::string& name) {
  return name == "build" || name == "lint_fixtures" || name == ".git";
}

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string to_rel(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  return (ec || rel.empty() ? path : rel).generic_string();
}

void collect_files(const fs::path& p, const fs::path& root,
                   std::vector<fs::path>* out) {
  if (fs::is_directory(p)) {
    for (fs::recursive_directory_iterator it(p), end; it != end; ++it) {
      if (it->is_directory()) {
        if (skipped_directory(it->path().filename().string()))
          it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && has_lintable_extension(it->path()))
        out->push_back(it->path());
    }
    return;
  }
  if (fs::is_regular_file(p)) out->push_back(p);
  (void)root;
}

/// Parses the fault-site catalog: markdown-table rows (`| \`site\` | ...`)
/// between the heading containing "Fault-site catalog" and the next
/// heading.  Only the first backticked span of each row counts, and it must
/// look like a site name ([a-z0-9_.] with at least one '.') — the document
/// has other tables whose cells must not be mistaken for sites.
void parse_catalog(const fs::path& doc, Project* proj) {
  std::string text;
  if (!read_file(doc, &text)) return;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool in_section = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line[0] == '#') {
      in_section = line.find("Fault-site catalog") != std::string::npos;
      continue;
    }
    if (!in_section) continue;
    const std::size_t bar = line.find_first_not_of(" \t");
    if (bar == std::string::npos || line[bar] != '|') continue;
    const std::size_t open = line.find('`');
    if (open == std::string::npos) continue;
    const std::size_t close = line.find('`', open + 1);
    if (close == std::string::npos) continue;
    const std::string site = line.substr(open + 1, close - open - 1);
    if (site.find('.') == std::string::npos) continue;
    if (site.find_first_not_of("abcdefghijklmnopqrstuvwxyz0123456789_.") !=
        std::string::npos)
      continue;
    proj->catalog.push_back({site, lineno});
    proj->catalog_found = true;
  }
}

/// Parses "nf-lint: allow(rule1, rule2)" / "nf-lint: allow-file(rule)" out
/// of one comment body; appends the named rules to `rules`.  Returns true
/// when the comment held an annotation of the requested flavor.
bool parse_allow(const std::string& comment, const char* flavor,
                 std::vector<std::string>* rules) {
  const std::string marker = std::string("nf-lint:");
  std::size_t pos = comment.find(marker);
  if (pos == std::string::npos) return false;
  pos = comment.find_first_not_of(" \t", pos + marker.size());
  if (pos == std::string::npos) return false;
  const std::string kw(flavor);
  if (comment.compare(pos, kw.size(), kw) != 0) return false;
  std::size_t open = comment.find('(', pos + kw.size());
  if (open == std::string::npos) return false;
  // "allow(" must directly follow the keyword — keeps "allow-file" from
  // matching the "allow" flavor.
  if (comment.find_first_not_of(" \t", pos + kw.size()) != open) return false;
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return false;
  std::string list = comment.substr(open + 1, close - open - 1);
  std::string item;
  std::istringstream items(list);
  bool any = false;
  while (std::getline(items, item, ',')) {
    const std::size_t b = item.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const std::size_t e = item.find_last_not_of(" \t");
    rules->push_back(item.substr(b, e - b + 1));
    any = true;
  }
  return any;
}

/// Drops findings covered by suppression comments: same line as the
/// finding, the line directly above it, or an allow-file annotation.
void apply_suppressions(const Project& proj, std::vector<Finding>* findings) {
  struct FileSuppressions {
    std::set<std::string> file_wide;
    std::map<int, std::set<std::string>> by_line;  // suppressed line -> rules
  };
  std::map<std::string, FileSuppressions> per_file;
  for (const SourceFile& f : proj.files) {
    FileSuppressions sup;
    for (const Comment& c : f.comments) {
      std::vector<std::string> rules;
      if (parse_allow(c.text, "allow-file", &rules)) {
        sup.file_wide.insert(rules.begin(), rules.end());
        continue;
      }
      rules.clear();
      if (parse_allow(c.text, "allow", &rules)) {
        for (const std::string& r : rules) {
          sup.by_line[c.line].insert(r);          // trailing comment
          sup.by_line[c.end_line + 1].insert(r);  // comment-above style
        }
      }
    }
    if (!sup.file_wide.empty() || !sup.by_line.empty())
      per_file.emplace(f.rel_path, std::move(sup));
  }
  auto suppressed = [&](const Finding& fd) {
    auto it = per_file.find(fd.file);
    if (it == per_file.end()) return false;
    if (it->second.file_wide.count(fd.rule)) return true;
    auto line_it = it->second.by_line.find(fd.line);
    return line_it != it->second.by_line.end() &&
           line_it->second.count(fd.rule) > 0;
  };
  findings->erase(
      std::remove_if(findings->begin(), findings->end(), suppressed),
      findings->end());
}

void json_escape(const std::string& s, std::string* out) {
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::vector<RuleInfo> rule_infos() {
  std::vector<RuleInfo> infos;
  for (const RuleEntry& r : rule_table()) infos.push_back({r.name, r.description});
  return infos;
}

bool run_lint(const Options& options, Report* report, std::string* error) {
  report->findings.clear();
  report->files_scanned = 0;

  const fs::path root(options.root);
  if (!fs::is_directory(root)) {
    *error = "root '" + options.root + "' is not a directory";
    return false;
  }
  // Resolve the rule selection first so an unknown name is a usage error.
  std::vector<const RuleEntry*> selected;
  for (const RuleEntry& r : rule_table()) {
    if (options.rules.empty() ||
        std::find(options.rules.begin(), options.rules.end(), r.name) !=
            options.rules.end())
      selected.push_back(&r);
  }
  for (const std::string& name : options.rules) {
    bool known = false;
    for (const RuleEntry& r : rule_table()) known = known || name == r.name;
    if (!known) {
      *error = "unknown rule '" + name + "' (see --list-rules)";
      return false;
    }
  }

  Project proj;
  proj.root = options.root;
  proj.catalog_rel = options.catalog_path;
  proj.full_scan = options.paths.empty();
  std::vector<std::string> scan = options.paths;
  if (scan.empty()) scan = {"src", "tools", "tests"};

  std::vector<fs::path> paths;
  for (const std::string& p : scan) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    if (!fs::exists(abs)) {
      // The default directories are optional (a tree may have no tests/);
      // an explicitly requested path that is missing is a usage error.
      if (options.paths.empty()) continue;
      *error = "path '" + abs.string() + "' does not exist";
      return false;
    }
    collect_files(abs, root, &paths);
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  for (const fs::path& p : paths) {
    std::string text;
    if (!read_file(p, &text)) {
      *error = "cannot read '" + p.string() + "'";
      return false;
    }
    SourceFile sf;
    sf.rel_path = to_rel(p, root);
    sf.tokens = tokenize(text, &sf.comments);
    proj.files.push_back(std::move(sf));
  }
  report->files_scanned = proj.files.size();

  parse_catalog(root / options.catalog_path, &proj);

  for (const RuleEntry* r : selected) r->fn(proj, report->findings);
  apply_suppressions(proj, &report->findings);
  std::sort(report->findings.begin(), report->findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return true;
}

std::string report_to_json(const Report& report) {
  std::string out = "{\"files_scanned\":";
  out += std::to_string(report.files_scanned);
  out += ",\"count\":";
  out += std::to_string(report.findings.size());
  out += ",\"findings\":[";
  bool first = true;
  for (const Finding& f : report.findings) {
    if (!first) out += ',';
    first = false;
    out += "{\"rule\":\"";
    json_escape(f.rule, &out);
    out += "\",\"file\":\"";
    json_escape(f.file, &out);
    out += "\",\"line\":";
    out += std::to_string(f.line);
    out += ",\"message\":\"";
    json_escape(f.message, &out);
    out += "\"}";
  }
  out += "]}\n";
  return out;
}

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  std::string root = ".";
  std::string only;
  std::string rules_csv;
  std::string json_path;
  std::string catalog = "docs/robustness.md";
  bool list_rules = false;

  ArgParser parser(
      "nf_lint",
      "Project-invariant static analyzer: lints src/, tools/, and tests/ "
      "against the rules in docs/static_analysis.md.  Exit codes: 0 clean, "
      "1 findings, 2 usage error.");
  parser.add_string("--root", "DIR",
                    "project root to lint (default: current directory)",
                    &root);
  parser.add_string("--only", "PATHS",
                    "comma-separated files/dirs relative to the root "
                    "(default: src,tools,tests)",
                    &only);
  parser.add_string("--rule", "NAMES",
                    "comma-separated rule names to run (default: all)",
                    &rules_csv);
  parser.add_string("--json", "FILE",
                    "also write a machine-readable findings report", &json_path);
  parser.add_string("--catalog", "PATH",
                    "fault-site catalog document, relative to the root",
                    &catalog);
  parser.add_flag("--list-rules", "print the registered rules and exit",
                  &list_rules);

  switch (parser.parse(argc, argv, out, err)) {
    case ArgParser::Result::kHelp: return 0;
    case ArgParser::Result::kError: return 2;
    case ArgParser::Result::kOk: break;
  }
  if (list_rules) {
    for (const RuleInfo& r : rule_infos())
      out << r.name << "\n    " << r.description << "\n";
    return 0;
  }

  Options options;
  options.root = root;
  options.catalog_path = catalog;
  auto split_csv = [](const std::string& csv, std::vector<std::string>* dst) {
    std::istringstream in(csv);
    std::string item;
    while (std::getline(in, item, ','))
      if (!item.empty()) dst->push_back(item);
  };
  split_csv(only, &options.paths);
  split_csv(rules_csv, &options.rules);

  Report report;
  std::string error;
  if (!run_lint(options, &report, &error)) {
    err << "nf_lint: " << error << "\n";
    return 2;
  }
  if (!json_path.empty()) {
    std::ofstream js(json_path, std::ios::binary);
    js << report_to_json(report);
    if (!js) {
      err << "nf_lint: cannot write '" << json_path << "'\n";
      return 2;
    }
  }
  for (const Finding& f : report.findings)
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  if (report.findings.empty()) {
    out << "nf_lint: " << report.files_scanned << " files clean\n";
    return 0;
  }
  out << "nf_lint: " << report.findings.size() << " finding(s) in "
      << report.files_scanned << " files\n";
  return 1;
}

}  // namespace neurfill::lint
