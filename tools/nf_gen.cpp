// nf_gen: generate one of the synthetic benchmark designs (Section V's
// Design A/B/C analogues) as a GLF file.
//
// Usage: nf_gen <a|b|c> <out.glf> [--windows N] [--seed S]

#include <cstdio>
#include <string>

#include "geom/designs.hpp"
#include "geom/glf_io.hpp"

using namespace neurfill;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: nf_gen <a|b|c> <out.glf> [--windows N] [--seed S]\n");
    return 2;
  }
  const char which = argv[1][0];
  const std::string out = argv[2];
  int windows = 32;
  std::uint64_t seed = 1;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--windows" && i + 1 < argc) {
      windows = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  try {
    const Layout layout = make_design(which, windows, 100.0, seed);
    write_glf_file(out, layout);
    std::fprintf(stderr, "wrote %s: %zu wires over %zu layers (%zu bytes)\n",
                 out.c_str(), layout.total_wire_count(), layout.num_layers(),
                 glf_encoded_size(layout));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
