// nf_gen: generate one of the synthetic benchmark designs (Section V's
// Design A/B/C analogues) as a GLF file.
//
// Run `nf_gen --help` for the full flag list.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "geom/designs.hpp"
#include "geom/glf_io.hpp"

using namespace neurfill;

int main(int argc, char** argv) {
  std::string design;
  std::string out;
  std::string windows_spec = "32";
  std::uint64_t seed = 1;
  CommonToolOptions common;

  ArgParser parser("nf_gen",
                   "Generate a synthetic benchmark design (a, b, or c) as a "
                   "GLF file.");
  parser.add_positional("a|b|c", "which design family to generate", &design);
  parser.add_positional("out.glf", "output GLF path", &out);
  parser.add_string("--windows", "N|WxH",
                    "design size in windows: N for an NxN die, or WxH for a "
                    "rectangular paper-scale die, e.g. 256x256 (default 32)",
                    &windows_spec);
  parser.add_uint64("--seed", "S", "random seed (default 1)", &seed);
  add_common_options(parser, &common);
  switch (parser.parse(argc, argv, std::cout, std::cerr)) {
    case ArgParser::Result::kHelp:
      return 0;
    case ArgParser::Result::kError:
      return 2;
    case ArgParser::Result::kOk:
      break;
  }
  if (design != "a" && design != "b" && design != "c") {
    std::fprintf(stderr, "nf_gen: unknown design '%s' (expected a, b, or c)\n",
                 design.c_str());
    return 2;
  }
  int windows_x = 0, windows_y = 0;
  {
    char extra = 0;
    const int fields = std::sscanf(windows_spec.c_str(), "%dx%d%c",
                                   &windows_x, &windows_y, &extra);
    if (fields == 1) {
      windows_y = windows_x;  // plain N: square die
    } else if (fields != 2) {
      std::fprintf(stderr,
                   "nf_gen: bad --windows '%s' (expected N or WxH, e.g. 32 "
                   "or 256x256)\n",
                   windows_spec.c_str());
      return 2;
    }
    if (windows_x <= 0 || windows_y <= 0) {
      std::fprintf(stderr, "nf_gen: --windows dimensions must be positive\n");
      return 2;
    }
  }
  if (!apply_common_options(common, std::cerr)) return 2;

  int rc = 0;
  try {
    const Layout layout =
        make_design_rect(design[0], windows_x, windows_y, 100.0, seed);
    write_glf_file(out, layout);
    std::fprintf(stderr, "wrote %s: %zu wires over %zu layers (%zu bytes)\n",
                 out.c_str(), layout.total_wire_count(), layout.num_layers(),
                 glf_encoded_size(layout));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!finish_common_options(common) && rc == 0) rc = 1;
  return rc;
}
