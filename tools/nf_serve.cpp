// nf_serve: long-lived fill-synthesis daemon (docs/serving.md).
//
// Accepts jobs over line-delimited JSON on a loopback TCP port (plus HTTP
// GET /metrics, /healthz, /jobs/<id>), runs them one at a time through the
// same solver path as nf_fill, and survives crashes: every job transition
// is journaled write-ahead to --journal, pkb/mm solves snapshot next to
// their record, and a restarted daemon resumes in-flight work to
// byte-identical artifacts (tests/serve_kill_restart_test.sh).
//
// SIGTERM/SIGINT starts a graceful drain: admission closes (submissions
// are rejected with code "overloaded"), the in-flight job finishes — or,
// past --drain-deadline-s, checkpoints and re-queues — and the process
// exits 0 with every accepted job completed or durably journaled.
//
// Exit codes: 0 clean exit (including a signal-initiated drain), 1 runtime
// failure, 2 usage error.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "runtime/parallel.hpp"
#include "serve/daemon.hpp"
#include "serve/server.hpp"

using namespace neurfill;

namespace {

std::atomic<bool> g_signal{false};
void handle_signal(int) { g_signal.store(true); }

}  // namespace

int main(int argc, char** argv) {
  std::string journal_dir = "nf_serve.journal";
  std::string port_file;
  int port = 0;
  serve::DaemonOptions dopt;
  int queue_cap = static_cast<int>(dopt.scheduler.queue_capacity);
  int max_records = static_cast<int>(dopt.scheduler.max_records);
  CommonToolOptions common;

  ArgParser parser("nf_serve",
                   "Fill-synthesis daemon: line-delimited JSON jobs over "
                   "loopback TCP, crash-safe job journal, graceful drain.");
  parser.add_string("--journal", "DIR",
                    "write-ahead job journal directory (default "
                    "nf_serve.journal); restart resumes from it",
                    &journal_dir);
  parser.add_int("--port", "N",
                 "TCP port on 127.0.0.1 (default 0 = ephemeral)", &port);
  parser.add_string("--port-file", "PATH",
                    "publish the bound port here (written atomically)",
                    &port_file);
  parser.add_int("--queue-cap", "N",
                 "waiting jobs before admission rejects with "
                 "\"overloaded\" (default 32)",
                 &queue_cap);
  parser.add_int("--max-records", "N",
                 "job records tracked before \"queue_full\" (default 4096)",
                 &max_records);
  parser.add_int("--max-attempts", "N",
                 "attempts per job before \"retry_exhausted\" (default 3)",
                 &dopt.scheduler.default_max_attempts);
  parser.add_double("--backoff-base-s", "SEC",
                    "first retry delay; doubles per attempt, no jitter "
                    "(default 0.25)",
                    &dopt.scheduler.backoff_base_s);
  parser.add_double("--backoff-cap-s", "SEC",
                    "retry delay ceiling (default 30)",
                    &dopt.scheduler.backoff_cap_s);
  parser.add_double("--admit-wait-cap-s", "SEC",
                    "shed submissions whose predicted queue wait exceeds "
                    "this (default 0 = off)",
                    &dopt.scheduler.admit_wait_cap_s);
  parser.add_double("--drain-deadline-s", "SEC",
                    "on SIGTERM, seconds the in-flight job may keep running "
                    "before it is asked to checkpoint (default 30)",
                    &dopt.drain_deadline_s);
  parser.add_string("--surrogate", "PREFIX",
                    "surrogate weight prefix for jobs that name none "
                    "(default data/unet_cmp)",
                    &dopt.runner.default_surrogate);
  parser.add_int("--snapshot-every", "N",
                 "SQP iterations between mid-start snapshots (default 1)",
                 &dopt.runner.snapshot_every);
  parser.add_int("--sqp-iters", "N",
                 "override SQP iteration budget, 0 = default (tests/bench)",
                 &dopt.runner.sqp_max_iterations);
  parser.add_int("--nmmso-evals", "N",
                 "override NMMSO evaluation budget, 0 = default",
                 &dopt.runner.nmmso_max_evaluations);
  add_common_options(parser, &common);
  switch (parser.parse(argc, argv, std::cout, std::cerr)) {
    case ArgParser::Result::kHelp:
      return 0;
    case ArgParser::Result::kError:
      return 2;
    case ArgParser::Result::kOk:
      break;
  }
  if (!apply_common_options(common, std::cerr)) return 2;
  if (queue_cap < 1 || max_records < 1 ||
      dopt.scheduler.default_max_attempts < 1 ||
      dopt.runner.snapshot_every < 1 ||
      !(dopt.scheduler.backoff_base_s >= 0.0) ||
      !(dopt.scheduler.backoff_cap_s >= 0.0)) {
    std::fprintf(stderr,
                 "nf_serve: --queue-cap/--max-records/--max-attempts/"
                 "--snapshot-every must be >= 1, backoff times >= 0\n");
    return 2;
  }
  dopt.scheduler.queue_capacity = static_cast<std::size_t>(queue_cap);
  dopt.scheduler.max_records = static_cast<std::size_t>(max_records);
  // /metrics is part of the daemon contract, so the instruments are live
  // regardless of the --metrics flags.
  obs::set_metrics_enabled(true);

  int rc = 0;
  try {
    Expected<std::unique_ptr<serve::Daemon>> daemon =
        serve::Daemon::create(dopt, journal_dir);
    if (!daemon.ok()) {
      std::fprintf(stderr, "error: %s\n", daemon.error().to_string().c_str());
      return 1;
    }
    Expected<serve::Server> server = serve::Server::listen(port, port_file);
    if (!server.ok()) {
      std::fprintf(stderr, "error: %s\n", server.error().to_string().c_str());
      return 1;
    }
    (*daemon)->watch_drain_flag(&g_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    std::fprintf(stderr, "nf_serve: listening on 127.0.0.1:%d (journal %s, "
                 "threads %d)\n",
                 server->port(), journal_dir.c_str(),
                 runtime::thread_count());

    serve::Daemon& d = **daemon;
    std::atomic<bool> transport_failed{false};
    std::thread transport([&] {
      Expected<void> ran = server->run(d);
      if (!ran.ok()) {
        std::fprintf(stderr, "error: %s\n", ran.error().to_string().c_str());
        transport_failed.store(true);
        d.stop();  // fatal transport failure: park the worker and exit 1
      }
    });
    d.run_worker();
    transport.join();
    if (transport_failed.load()) rc = 1;
    const serve::Scheduler::Stats stats = d.scheduler().stats();
    std::fprintf(stderr,
                 "nf_serve: drained; %zu job(s) left durably queued in %s\n",
                 stats.queued, journal_dir.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!finish_common_options(common) && rc == 0) rc = 1;
  return rc;
}
