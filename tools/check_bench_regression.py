#!/usr/bin/env python3
"""Perf-smoke gate: compare fresh bench JSON summaries against the
committed baseline and fail on meaningful regressions.

Usage: check_bench_regression.py BASELINE.json FRESH.json [FRESH2.json ...]
           [--tolerance 0.20]

Multiple fresh files are merged (later files win on key collisions), so the
kernel sweep (bench_runtime_scaling) and the full-chip smoke
(bench_fullchip) can each write their own summary.

Gated keys, higher is better:
  gemm_gflops_1t         -- single-thread packed-GEMM throughput
  gemm_speedup_4t        -- 4-thread scaling of the same kernel
  conv2d_fwd_speedup_4t  -- 4-thread conv2d forward: the serial-region
                            threshold keeps small layers never-slower
  infer_vs_autograd_speedup -- InferenceSession UNet forward vs the autograd
                            module path, single thread (the redesign's
                            acceptance floor is 2x; the gate keeps it there)
  fill_evals_per_s        -- fill-loop objective evaluations per second
                            through the batched candidate pipeline
                            (bench_fill_throughput; one session run per
                            layer for the whole NMMSO move batch)
  serve_jobs_per_s        -- end-to-end jobs per second through the
                            nf_serve daemon machinery (bench_serve: submit
                            -> journal -> worker -> artifact -> status,
                            cheap lin jobs so the daemon overhead dominates)

Gated keys, lower is better:
  fullchip_tile_ms        -- mean per-tile solve cost of the tiled driver
  fullchip_stitch_passes  -- stitch refinement passes executed (a jump
                             means the halo/stitch logic stopped converging)
  unet_infer_ms_1t        -- absolute single-thread latency of the compiled
                             inference session on the bench shape
  unet_infer_b8_ms_per_sample -- per-sample latency of a batch-8 session
                             run; keeps cross-candidate batching from ever
                             costing more per sample than batch-1
  serve_p99_ms            -- p99 ping round-trip latency against a live
                             daemon (bench_serve); what any client pays to
                             talk to the daemon at all

A higher-is-better value below (1 - tolerance) * baseline fails; a
lower-is-better value above (1 + tolerance) * baseline fails.  The default
20% tolerance absorbs CI-runner noise (shared cores, turbo variance); real
regressions from kernel or scheduler changes are far larger than that.
Keys missing from the baseline or from every fresh file fail loudly rather
than silently passing.
"""

import argparse
import json
import sys

GATED_KEYS_HIGHER = ("gemm_gflops_1t", "gemm_speedup_4t",
                     "conv2d_fwd_speedup_4t", "infer_vs_autograd_speedup",
                     "fill_evals_per_s", "serve_jobs_per_s")
GATED_KEYS_LOWER = ("fullchip_tile_ms", "fullchip_stitch_passes",
                    "unet_infer_ms_1t", "unet_infer_b8_ms_per_sample",
                    "serve_p99_ms")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh", nargs="+")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional drift vs baseline (default 0.20)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    fresh = {}
    for path in args.fresh:
        with open(path) as f:
            fresh.update(json.load(f))

    failures = []
    gated = [(key, True) for key in GATED_KEYS_HIGHER] + \
            [(key, False) for key in GATED_KEYS_LOWER]
    for key, higher_is_better in gated:
        if key not in baseline:
            failures.append(f"{key}: missing from baseline {args.baseline}")
            continue
        if key not in fresh:
            failures.append(
                f"{key}: missing from fresh run(s) {', '.join(args.fresh)}")
            continue
        base, got = float(baseline[key]), float(fresh[key])
        if higher_is_better:
            bound = (1.0 - args.tolerance) * base
            ok = got >= bound
            relation = "floor"
        else:
            bound = (1.0 + args.tolerance) * base
            ok = got <= bound
            relation = "ceiling"
        status = "ok" if ok else "REGRESSION"
        print(f"{key}: baseline {base:.3f}  fresh {got:.3f}  "
              f"{relation} {bound:.3f}  {status}")
        if not ok:
            failures.append(
                f"{key}: {got:.3f} vs {relation} {bound:.3f} "
                f"({args.tolerance:.0%} band around baseline {base:.3f})")

    if failures:
        print("\nperf smoke FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print("perf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
