#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh bench_runtime_scaling JSON summary
against the committed baseline and fail on meaningful regressions.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--tolerance 0.20]

Gated keys (higher is better):
  gemm_gflops_1t         -- single-thread packed-GEMM throughput
  gemm_speedup_4t        -- 4-thread scaling of the same kernel
  conv2d_fwd_speedup_4t  -- 4-thread conv2d forward: the serial-region
                            threshold keeps small layers never-slower

A fresh value below (1 - tolerance) * baseline fails the check.  The
default 20% tolerance absorbs CI-runner noise (shared cores, turbo
variance); real regressions from kernel or scheduler changes are far
larger than that.  Keys missing from either file fail loudly rather than
silently passing.
"""

import argparse
import json
import sys

GATED_KEYS = ("gemm_gflops_1t", "gemm_speedup_4t", "conv2d_fwd_speedup_4t")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional drop vs baseline (default 0.20)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    failures = []
    for key in GATED_KEYS:
        if key not in baseline:
            failures.append(f"{key}: missing from baseline {args.baseline}")
            continue
        if key not in fresh:
            failures.append(f"{key}: missing from fresh run {args.fresh}")
            continue
        base, got = float(baseline[key]), float(fresh[key])
        floor = (1.0 - args.tolerance) * base
        status = "ok" if got >= floor else "REGRESSION"
        print(f"{key}: baseline {base:.3f}  fresh {got:.3f}  "
              f"floor {floor:.3f}  {status}")
        if got < floor:
            failures.append(
                f"{key}: {got:.3f} < {floor:.3f} "
                f"({args.tolerance:.0%} below baseline {base:.3f})")

    if failures:
        print("\nperf smoke FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print("perf smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
