// nf_simulate: run the full-chip CMP simulator on a GLF layout and emit the
// per-layer post-CMP height/dishing/erosion profiles as CSV.
//
// Usage:
//   nf_simulate <layout.glf> [--window UM] [--out profile.csv]
//               [--pressure-model asperity|elastic] [--threads N]
//
// CSV columns: layer,row,col,height_A,dishing_A,erosion_A,step_A

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "cmp/simulator.hpp"
#include "fill/metrics.hpp"
#include "geom/glf_io.hpp"
#include "layout/window_grid.hpp"
#include "runtime/parallel.hpp"

using namespace neurfill;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: nf_simulate <layout.glf> [--window UM] [--out F] "
                 "[--pressure-model asperity|elastic] [--threads N]\n");
    return 2;
  }
  std::string path = argv[1];
  std::string out_path;
  ExtractOptions eopt;
  CmpProcessParams params;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--window" && i + 1 < argc) {
      eopt.window_um = std::atof(argv[++i]);
      params.window_um = eopt.window_um;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--pressure-model" && i + 1 < argc) {
      const std::string m = argv[++i];
      params.pressure_model =
          m == "elastic" ? PressureModel::kElastic : PressureModel::kAsperity;
    } else if (arg == "--threads" && i + 1 < argc) {
      runtime::set_thread_count(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  std::fprintf(stderr, "nf_simulate: threads=%d\n", runtime::thread_count());

  try {
    const Layout layout = read_glf_file(path);
    const WindowExtraction ext = extract_windows(layout, eopt);
    CmpSimulator sim(params);
    const auto results = sim.simulate(ext, {});

    std::ofstream file;
    std::ostream* os = &std::cout;
    if (!out_path.empty()) {
      file.open(out_path);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
      }
      os = &file;
    }
    *os << "layer,row,col,height_A,dishing_A,erosion_A,step_A\n";
    for (std::size_t l = 0; l < results.size(); ++l) {
      const auto& r = results[l];
      for (std::size_t i = 0; i < r.height.rows(); ++i)
        for (std::size_t j = 0; j < r.height.cols(); ++j)
          *os << l << ',' << i << ',' << j << ',' << r.height(i, j) << ','
              << r.dishing(i, j) << ',' << r.erosion(i, j) << ','
              << r.final_step(i, j) << '\n';
    }

    std::vector<GridD> heights;
    for (const auto& r : results) heights.push_back(r.height);
    const PlanarityMetrics m = compute_planarity(heights);
    std::fprintf(stderr,
                 "simulated %zu layers, %zux%zu windows: dH=%.1fA "
                 "sigma=%.1fA^2 sigma*=%.1fA outliers=%.2fA\n",
                 results.size(), ext.rows, ext.cols, m.delta_h, m.sigma,
                 m.sigma_star, m.outliers);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
