// nf_simulate: run the full-chip CMP simulator on a GLF layout and emit the
// per-layer post-CMP height/dishing/erosion profiles as CSV.
//
// Run `nf_simulate --help` for the full flag list.
// CSV columns: layer,row,col,height_A,dishing_A,erosion_A,step_A
//
// `--surrogate PREFIX` swaps the physical simulator for the pre-trained
// neural surrogate (heights only; dishing/erosion/step columns are 0) —
// the fast way to sanity-check a trained artifact against a known layout.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "cmp/simulator.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "fill/metrics.hpp"
#include "fill/score_coeffs.hpp"
#include "geom/glf_io.hpp"
#include "layout/window_grid.hpp"
#include "runtime/parallel.hpp"
#include "surrogate/cmp_network.hpp"

using namespace neurfill;

namespace {

/// Streams per-layer height grids as the standard CSV (the non-height
/// columns are zero when the producer does not model them).
void write_heights_csv(std::ostream& os, const std::vector<GridD>& heights) {
  os << "layer,row,col,height_A,dishing_A,erosion_A,step_A\n";
  for (std::size_t l = 0; l < heights.size(); ++l) {
    const GridD& h = heights[l];
    for (std::size_t i = 0; i < h.rows(); ++i)
      for (std::size_t j = 0; j < h.cols(); ++j)
        os << l << ',' << i << ',' << j << ',' << h(i, j) << ",0,0,0\n";
  }
}

int run_surrogate(const std::string& path, const std::string& out_path,
                  const ExtractOptions& eopt,
                  const std::string& surrogate_prefix,
                  bool no_fast_inference) {
  const Layout layout = read_glf_file(path);
  const WindowExtraction ext = extract_windows(layout, eopt);
  Expected<std::shared_ptr<CmpSurrogate>> loaded =
      load_surrogate(surrogate_prefix);
  if (!loaded.ok()) throw ErrorException(loaded.error());
  (*loaded)->set_fast_inference(!no_fast_inference);
  const CmpNetwork network(std::move(*loaded), ext, ScoreCoefficients{});

  // Heights of the unfilled design (zero fill everywhere) — the surrogate
  // analogue of sim.simulate(ext, {}).
  const std::vector<GridD> zero_fill(ext.num_layers(),
                                     GridD(ext.rows, ext.cols, 0.0));
  const std::vector<GridD> heights = network.predict_heights(zero_fill);

  std::ofstream file;
  std::ostream* os = &std::cout;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    os = &file;
  }
  write_heights_csv(*os, heights);

  const PlanarityMetrics m = compute_planarity(heights);
  std::fprintf(stderr,
               "surrogate-predicted %zu layers, %zux%zu windows: dH=%.1fA "
               "sigma=%.1fA^2 sigma*=%.1fA outliers=%.2fA\n",
               heights.size(), ext.rows, ext.cols, m.delta_h, m.sigma,
               m.sigma_star, m.outliers);
  return 0;
}

int run(const std::string& path, const std::string& out_path,
        const ExtractOptions& eopt, const CmpProcessParams& params,
        double deadline_s) {
  const Layout layout = read_glf_file(path);
  const WindowExtraction ext = extract_windows(layout, eopt);
  CmpSimulator sim(params);
  if (deadline_s > 0.0) sim.set_deadline(Deadline::after_seconds(deadline_s));
  const auto results = sim.simulate(ext, {});

  std::ofstream file;
  std::ostream* os = &std::cout;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    os = &file;
  }
  *os << "layer,row,col,height_A,dishing_A,erosion_A,step_A\n";
  for (std::size_t l = 0; l < results.size(); ++l) {
    const auto& r = results[l];
    for (std::size_t i = 0; i < r.height.rows(); ++i)
      for (std::size_t j = 0; j < r.height.cols(); ++j)
        *os << l << ',' << i << ',' << j << ',' << r.height(i, j) << ','
            << r.dishing(i, j) << ',' << r.erosion(i, j) << ','
            << r.final_step(i, j) << '\n';
  }

  std::vector<GridD> heights;
  for (const auto& r : results) heights.push_back(r.height);
  const PlanarityMetrics m = compute_planarity(heights);
  std::fprintf(stderr,
               "simulated %zu layers, %zux%zu windows: dH=%.1fA "
               "sigma=%.1fA^2 sigma*=%.1fA outliers=%.2fA\n",
               results.size(), ext.rows, ext.cols, m.delta_h, m.sigma,
               m.sigma_star, m.outliers);
  const SimulatorHealth& health = sim.health();
  if (health.any_degraded())
    std::fprintf(stderr,
                 "[degraded] contact solves: %ld retried, %ld fell back, "
                 "%ld poisoned (docs/robustness.md)\n",
                 health.contact_retries.load(),
                 health.contact_degraded.load(),
                 health.contact_poisoned.load());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string out_path;
  std::string pressure_model = "asperity";
  std::string surrogate_prefix;
  bool no_fast_inference = false;
  double deadline_s = 0.0;
  ExtractOptions eopt;
  double window_um = eopt.window_um;
  CommonToolOptions common;

  ArgParser parser("nf_simulate",
                   "Full-chip CMP simulation of a GLF layout; emits per-layer "
                   "height/dishing/erosion profiles as CSV.");
  parser.add_positional("layout.glf", "input GLF layout", &path);
  parser.add_double("--window", "UM", "window edge in um (default 100)",
                    &window_um);
  parser.add_string("--out", "FILE", "write the CSV here instead of stdout",
                    &out_path);
  parser.add_choice("--pressure-model", {"asperity", "elastic"},
                    "pad pressure model (default asperity)", &pressure_model);
  parser.add_string("--surrogate", "PREFIX",
                    "predict heights with the pre-trained neural surrogate "
                    "at PREFIX instead of simulating (dishing/erosion/step "
                    "columns are 0)",
                    &surrogate_prefix);
  parser.add_flag("--no-fast-inference",
                  "with --surrogate: use the autograd module path instead "
                  "of the compiled inference session (slower, "
                  "bitwise-identical; for diagnosis)",
                  &no_fast_inference);
  parser.add_double("--deadline-s", "SEC",
                    "wall-clock budget for the simulation; expiry is a "
                    "structured error, exit 1 (default: none)",
                    &deadline_s);
  add_common_options(parser, &common);
  switch (parser.parse(argc, argv, std::cout, std::cerr)) {
    case ArgParser::Result::kHelp:
      return 0;
    case ArgParser::Result::kError:
      return 2;
    case ArgParser::Result::kOk:
      break;
  }
  if (!apply_common_options(common, std::cerr)) return 2;
  eopt.window_um = window_um;
  CmpProcessParams params;
  params.window_um = window_um;
  params.pressure_model = pressure_model == "elastic"
                              ? PressureModel::kElastic
                              : PressureModel::kAsperity;
  std::fprintf(stderr, "nf_simulate: threads=%d\n", runtime::thread_count());

  int rc = 0;
  try {
    rc = surrogate_prefix.empty()
             ? run(path, out_path, eopt, params, deadline_s)
             : run_surrogate(path, out_path, eopt, surrogate_prefix,
                             no_fast_inference);
  } catch (const ErrorException& e) {
    std::fprintf(stderr, "error: %s\n", e.err.to_string().c_str());
    rc = 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!finish_common_options(common) && rc == 0) rc = 1;
  return rc;
}
