// nf_simulate: run the full-chip CMP simulator on a GLF layout and emit the
// per-layer post-CMP height/dishing/erosion profiles as CSV.
//
// Run `nf_simulate --help` for the full flag list.
// CSV columns: layer,row,col,height_A,dishing_A,erosion_A,step_A

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "cmp/simulator.hpp"
#include "common/cli.hpp"
#include "fill/metrics.hpp"
#include "geom/glf_io.hpp"
#include "layout/window_grid.hpp"
#include "runtime/parallel.hpp"

using namespace neurfill;

namespace {

int run(const std::string& path, const std::string& out_path,
        const ExtractOptions& eopt, const CmpProcessParams& params,
        double deadline_s) {
  const Layout layout = read_glf_file(path);
  const WindowExtraction ext = extract_windows(layout, eopt);
  CmpSimulator sim(params);
  if (deadline_s > 0.0) sim.set_deadline(Deadline::after_seconds(deadline_s));
  const auto results = sim.simulate(ext, {});

  std::ofstream file;
  std::ostream* os = &std::cout;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    os = &file;
  }
  *os << "layer,row,col,height_A,dishing_A,erosion_A,step_A\n";
  for (std::size_t l = 0; l < results.size(); ++l) {
    const auto& r = results[l];
    for (std::size_t i = 0; i < r.height.rows(); ++i)
      for (std::size_t j = 0; j < r.height.cols(); ++j)
        *os << l << ',' << i << ',' << j << ',' << r.height(i, j) << ','
            << r.dishing(i, j) << ',' << r.erosion(i, j) << ','
            << r.final_step(i, j) << '\n';
  }

  std::vector<GridD> heights;
  for (const auto& r : results) heights.push_back(r.height);
  const PlanarityMetrics m = compute_planarity(heights);
  std::fprintf(stderr,
               "simulated %zu layers, %zux%zu windows: dH=%.1fA "
               "sigma=%.1fA^2 sigma*=%.1fA outliers=%.2fA\n",
               results.size(), ext.rows, ext.cols, m.delta_h, m.sigma,
               m.sigma_star, m.outliers);
  const SimulatorHealth& health = sim.health();
  if (health.any_degraded())
    std::fprintf(stderr,
                 "[degraded] contact solves: %ld retried, %ld fell back, "
                 "%ld poisoned (docs/robustness.md)\n",
                 health.contact_retries.load(),
                 health.contact_degraded.load(),
                 health.contact_poisoned.load());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string out_path;
  std::string pressure_model = "asperity";
  double deadline_s = 0.0;
  ExtractOptions eopt;
  double window_um = eopt.window_um;
  CommonToolOptions common;

  ArgParser parser("nf_simulate",
                   "Full-chip CMP simulation of a GLF layout; emits per-layer "
                   "height/dishing/erosion profiles as CSV.");
  parser.add_positional("layout.glf", "input GLF layout", &path);
  parser.add_double("--window", "UM", "window edge in um (default 100)",
                    &window_um);
  parser.add_string("--out", "FILE", "write the CSV here instead of stdout",
                    &out_path);
  parser.add_choice("--pressure-model", {"asperity", "elastic"},
                    "pad pressure model (default asperity)", &pressure_model);
  parser.add_double("--deadline-s", "SEC",
                    "wall-clock budget for the simulation; expiry is a "
                    "structured error, exit 1 (default: none)",
                    &deadline_s);
  add_common_options(parser, &common);
  switch (parser.parse(argc, argv, std::cout, std::cerr)) {
    case ArgParser::Result::kHelp:
      return 0;
    case ArgParser::Result::kError:
      return 2;
    case ArgParser::Result::kOk:
      break;
  }
  if (!apply_common_options(common, std::cerr)) return 2;
  eopt.window_um = window_um;
  CmpProcessParams params;
  params.window_um = window_um;
  params.pressure_model = pressure_model == "elastic"
                              ? PressureModel::kElastic
                              : PressureModel::kAsperity;
  std::fprintf(stderr, "nf_simulate: threads=%d\n", runtime::thread_count());

  int rc = 0;
  try {
    rc = run(path, out_path, eopt, params, deadline_s);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!finish_common_options(common) && rc == 0) rc = 1;
  return rc;
}
