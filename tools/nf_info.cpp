// nf_info: inspect a GLF layout — extents, layers, rect counts, and the
// per-layer window density statistics the filling flow will see.
//
// Usage: nf_info <layout.glf> [--window UM] [--density-map]

#include <cstdio>
#include <string>

#include "common/stats.hpp"
#include "geom/glf_io.hpp"
#include "layout/window_grid.hpp"

using namespace neurfill;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: nf_info <layout.glf> [--window UM] "
                         "[--density-map]\n");
    return 2;
  }
  const std::string path = argv[1];
  ExtractOptions eopt;
  bool density_map = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--window" && i + 1 < argc) {
      eopt.window_um = std::atof(argv[++i]);
    } else if (arg == "--density-map") {
      density_map = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  try {
    const Layout layout = read_glf_file(path);
    std::printf("layout %s: %.1f x %.1f um, %zu layers, %zu wires, %zu "
                "dummies, %zu bytes as GLF\n",
                layout.name.c_str(), layout.width_um, layout.height_um,
                layout.num_layers(), layout.total_wire_count(),
                layout.total_dummy_count(), glf_encoded_size(layout));
    const WindowExtraction ext = extract_windows(layout, eopt);
    std::printf("windows: %zu x %zu at %.0f um\n", ext.rows, ext.cols,
                ext.window_um);
    for (std::size_t l = 0; l < ext.num_layers(); ++l) {
      const auto& d = ext.layers[l];
      std::vector<double> rho(d.wire_density.begin(), d.wire_density.end());
      const Summary s = summarize(rho);
      double total_slack = 0.0;
      for (const double v : d.slack) total_slack += v;
      std::printf("  layer %zu (%s): density mean %.3f std %.3f range "
                  "[%.3f, %.3f], total slack %.1f window-areas\n",
                  l, layout.layers[l].name.c_str(), s.mean, s.stddev, s.min,
                  s.max, total_slack);
      if (density_map) {
        for (std::size_t i = 0; i < ext.rows; ++i) {
          std::printf("    ");
          for (std::size_t j = 0; j < ext.cols; ++j) {
            const double v = d.wire_density(i, j) + d.dummy_density(i, j);
            std::printf("%c", " .:-=+*#%@"[static_cast<int>(
                                  std::min(v, 0.999) * 10.0)]);
          }
          std::printf("\n");
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
