// nf_info: inspect a GLF layout — extents, layers, rect counts, and the
// per-layer window density statistics the filling flow will see.
//
// Run `nf_info --help` for the full flag list.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "geom/glf_io.hpp"
#include "layout/window_grid.hpp"

using namespace neurfill;

namespace {

int run(const std::string& path, const ExtractOptions& eopt,
        bool density_map) {
  const Layout layout = read_glf_file(path);
  std::printf("layout %s: %.1f x %.1f um, %zu layers, %zu wires, %zu "
              "dummies, %zu bytes as GLF\n",
              layout.name.c_str(), layout.width_um, layout.height_um,
              layout.num_layers(), layout.total_wire_count(),
              layout.total_dummy_count(), glf_encoded_size(layout));
  const WindowExtraction ext = extract_windows(layout, eopt);
  std::printf("windows: %zu x %zu at %.0f um\n", ext.rows, ext.cols,
              ext.window_um);
  for (std::size_t l = 0; l < ext.num_layers(); ++l) {
    const auto& d = ext.layers[l];
    std::vector<double> rho(d.wire_density.begin(), d.wire_density.end());
    const Summary s = summarize(rho);
    double total_slack = 0.0;
    for (const double v : d.slack) total_slack += v;
    std::printf("  layer %zu (%s): density mean %.3f std %.3f range "
                "[%.3f, %.3f], total slack %.1f window-areas\n",
                l, layout.layers[l].name.c_str(), s.mean, s.stddev, s.min,
                s.max, total_slack);
    if (density_map) {
      for (std::size_t i = 0; i < ext.rows; ++i) {
        std::printf("    ");
        for (std::size_t j = 0; j < ext.cols; ++j) {
          const double v = d.wire_density(i, j) + d.dummy_density(i, j);
          std::printf("%c", " .:-=+*#%@"[static_cast<int>(
                                std::min(v, 0.999) * 10.0)]);
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool density_map = false;
  ExtractOptions eopt;
  double window_um = eopt.window_um;
  CommonToolOptions common;

  ArgParser parser("nf_info",
                   "Inspect a GLF layout: extents, layers, and per-layer "
                   "window density statistics.");
  parser.add_positional("layout.glf", "input GLF layout", &path);
  parser.add_double("--window", "UM", "window edge in um (default 100)",
                    &window_um);
  parser.add_flag("--density-map", "print an ASCII density map per layer",
                  &density_map);
  add_common_options(parser, &common);
  switch (parser.parse(argc, argv, std::cout, std::cerr)) {
    case ArgParser::Result::kHelp:
      return 0;
    case ArgParser::Result::kError:
      return 2;
    case ArgParser::Result::kOk:
      break;
  }
  if (!apply_common_options(common, std::cerr)) return 2;
  eopt.window_um = window_um;

  int rc = 0;
  try {
    rc = run(path, eopt, density_map);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!finish_common_options(common) && rc == 0) rc = 1;
  return rc;
}
