#!/usr/bin/env python3
"""Converts a legacy NFW1 weights file to the NFCP checkpoint container.

NFW1 (pre-robustness layout):
  "NFW1", u32 param_count,
  per param: u32 name_len, name, u32 ndim, u32 dims[ndim], f32 data[]

NFCP (src/common/checkpoint.hpp):
  "NFCP", u32 version=1, u32 section_count,
  per section: u32 name_len, name, u64 payload_len, u32 zlib-crc32(payload),
               payload = u32 ndim, u32 dims[ndim], f32 data[]

Usage: convert_weights_nfcp.py in.weights out.weights
"""
import struct
import sys
import zlib


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], "rb") as f:
        blob = f.read()
    if blob[:4] != b"NFW1":
        print("error: input is not an NFW1 file", file=sys.stderr)
        return 1
    pos = 4
    (count,) = struct.unpack_from("<I", blob, pos)
    pos += 4
    sections = []
    for _ in range(count):
        (name_len,) = struct.unpack_from("<I", blob, pos)
        pos += 4
        name = blob[pos : pos + name_len]
        pos += name_len
        (ndim,) = struct.unpack_from("<I", blob, pos)
        dims = struct.unpack_from(f"<{ndim}I", blob, pos + 4)
        n = 1
        for d in dims:
            n *= d
        payload_len = 4 + 4 * ndim + 4 * n
        payload = blob[pos : pos + payload_len]
        pos += payload_len
        sections.append((name, payload))
    if pos != len(blob):
        print(f"error: {len(blob) - pos} trailing bytes", file=sys.stderr)
        return 1
    out = [b"NFCP", struct.pack("<II", 1, len(sections))]
    for name, payload in sections:
        out.append(struct.pack("<I", len(name)))
        out.append(name)
        out.append(struct.pack("<QI", len(payload), zlib.crc32(payload)))
        out.append(payload)
    with open(sys.argv[2], "wb") as f:
        f.write(b"".join(out))
    print(f"converted {count} parameters -> {sys.argv[2]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
