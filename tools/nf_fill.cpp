// nf_fill: model-based dummy filling of a GLF layout from the command line.
//
// Usage:
//   nf_fill <layout.glf> <out.glf> [--method lin|tao|cai|pkb|mm]
//           [--surrogate PREFIX] [--window UM] [--report] [--threads N]
//
// pkb/mm need a pre-trained surrogate (see examples/train_surrogate); with
// none available a reduced surrogate is trained on the fly.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "fill/neurfill.hpp"
#include "layout/fill_insertion.hpp"
#include "fill/report.hpp"
#include "geom/glf_io.hpp"
#include "runtime/parallel.hpp"
#include "surrogate/trainer.hpp"

using namespace neurfill;

namespace {

std::shared_ptr<CmpSurrogate> obtain_surrogate(const std::string& prefix,
                                               const WindowExtraction& ext,
                                               const CmpSimulator& sim) {
  try {
    return load_surrogate(prefix);
  } catch (const std::exception&) {
    std::fprintf(stderr,
                 "nf_fill: no surrogate at '%s'; training a reduced one\n",
                 prefix.c_str());
    SurrogateConfig cfg;
    cfg.unet.base_channels = 8;
    cfg.unet.depth = 2;
    auto s = std::make_shared<CmpSurrogate>(cfg, 5);
    TrainingDataGenerator gen({ext}, sim, 17, 4);
    TrainOptions opt;
    opt.epochs = 6;
    opt.dataset_size = 60;
    opt.grid_rows = ext.rows;
    opt.grid_cols = ext.cols;
    train_surrogate(*s, gen, opt);
    return s;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: nf_fill <layout.glf> <out.glf> [--method "
                 "lin|tao|cai|pkb|mm] [--surrogate PREFIX] [--window UM] "
                 "[--report] [--drc] [--threads N]\n");
    return 2;
  }
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];
  std::string method = "pkb";
  std::string surrogate_prefix = "data/unet_cmp";
  bool report = false;
  bool drc = false;
  ExtractOptions eopt;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--method" && i + 1 < argc) {
      method = argv[++i];
    } else if (arg == "--surrogate" && i + 1 < argc) {
      surrogate_prefix = argv[++i];
    } else if (arg == "--window" && i + 1 < argc) {
      eopt.window_um = std::atof(argv[++i]);
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--drc") {
      drc = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      runtime::set_thread_count(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  std::fprintf(stderr, "nf_fill: method=%s threads=%d\n", method.c_str(),
               runtime::thread_count());

  try {
    Layout layout = read_glf_file(in_path);
    const WindowExtraction ext = extract_windows(layout, eopt);
    CmpProcessParams params;
    params.window_um = eopt.window_um;
    CmpSimulator sim(params);
    const ScoreCoefficients coeffs = make_coefficients(layout, ext, sim);
    FillProblem problem(ext, sim, coeffs);

    FillRunResult result;
    if (method == "lin") {
      result = lin_rule_fill(problem);
    } else if (method == "tao") {
      result = tao_rule_sqp(problem);
    } else if (method == "cai") {
      result = cai_model_fill(problem);
    } else if (method == "pkb" || method == "mm") {
      auto surrogate = obtain_surrogate(surrogate_prefix, ext, sim);
      CmpNetwork network(surrogate, ext, coeffs);
      calibrate_network(network, problem);
      result = method == "pkb" ? neurfill_pkb(problem, network)
                               : neurfill_mm(problem, network);
    } else {
      std::fprintf(stderr, "unknown method: %s\n", method.c_str());
      return 2;
    }

    const Layout original = layout;  // scoring must see the pre-fill design
    std::size_t dummies = 0;
    if (drc) {
      const DrcInsertStats stats = insert_dummies_drc(layout, ext, result.x);
      dummies = stats.placed;
      std::fprintf(stderr,
                   "DRC insertion: realized %.0f of %.0f um^2 (%zu sites "
                   "blocked)\n",
                   stats.realized_um2, stats.requested_um2,
                   stats.blocked_sites);
    } else {
      dummies = insert_dummies(layout, ext, result.x);
    }
    write_glf_file(out_path, layout);
    std::fprintf(stderr,
                 "%s: inserted %zu dummies in %.1fs (%ld evaluations)\n",
                 result.method.c_str(), dummies, result.runtime_s,
                 result.objective_evaluations);
    if (report) {
      const MethodReport rep = score_fill_result(problem, original, result);
      print_table3_header(std::cout);
      print_table3_row(std::cout, layout.name, rep);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
