// nf_fill: model-based dummy filling of a GLF layout from the command line.
//
// Run `nf_fill --help` for the full flag list.  pkb/mm need a pre-trained
// surrogate (see examples/train_surrogate); with none available a reduced
// surrogate is trained on the fly.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "common/cli.hpp"
#include "fill/neurfill.hpp"
#include "fill/report.hpp"
#include "geom/glf_io.hpp"
#include "layout/fill_insertion.hpp"
#include "runtime/parallel.hpp"
#include "surrogate/trainer.hpp"

using namespace neurfill;

namespace {

std::shared_ptr<CmpSurrogate> obtain_surrogate(const std::string& prefix,
                                               const WindowExtraction& ext,
                                               const CmpSimulator& sim) {
  try {
    return load_surrogate(prefix);
  } catch (const std::exception&) {
    std::fprintf(stderr,
                 "nf_fill: no surrogate at '%s'; training a reduced one\n",
                 prefix.c_str());
    SurrogateConfig cfg;
    cfg.unet.base_channels = 8;
    cfg.unet.depth = 2;
    auto s = std::make_shared<CmpSurrogate>(cfg, 5);
    TrainingDataGenerator gen({ext}, sim, 17, 4);
    TrainOptions opt;
    opt.epochs = 6;
    opt.dataset_size = 60;
    opt.grid_rows = ext.rows;
    opt.grid_cols = ext.cols;
    train_surrogate(*s, gen, opt);
    return s;
  }
}

int run(const std::string& in_path, const std::string& out_path,
        const std::string& method, const std::string& surrogate_prefix,
        const ExtractOptions& eopt, bool report, bool drc) {
  Layout layout = read_glf_file(in_path);
  const WindowExtraction ext = extract_windows(layout, eopt);
  CmpProcessParams params;
  params.window_um = eopt.window_um;
  CmpSimulator sim(params);
  const ScoreCoefficients coeffs = make_coefficients(layout, ext, sim);
  FillProblem problem(ext, sim, coeffs);

  FillRunResult result;
  if (method == "lin") {
    result = lin_rule_fill(problem);
  } else if (method == "tao") {
    result = tao_rule_sqp(problem);
  } else if (method == "cai") {
    result = cai_model_fill(problem);
  } else {  // pkb or mm: the parser only admits the five known methods
    auto surrogate = obtain_surrogate(surrogate_prefix, ext, sim);
    CmpNetwork network(surrogate, ext, coeffs);
    calibrate_network(network, problem);
    result = method == "pkb" ? neurfill_pkb(problem, network)
                             : neurfill_mm(problem, network);
  }

  const Layout original = layout;  // scoring must see the pre-fill design
  std::size_t dummies = 0;
  if (drc) {
    const DrcInsertStats stats = insert_dummies_drc(layout, ext, result.x);
    dummies = stats.placed;
    std::fprintf(stderr,
                 "DRC insertion: realized %.0f of %.0f um^2 (%zu sites "
                 "blocked)\n",
                 stats.realized_um2, stats.requested_um2, stats.blocked_sites);
  } else {
    dummies = insert_dummies(layout, ext, result.x);
  }
  write_glf_file(out_path, layout);
  std::fprintf(stderr, "%s: inserted %zu dummies in %.1fs (%ld evaluations)\n",
               result.method.c_str(), dummies, result.runtime_s,
               result.objective_evaluations);
  if (report) {
    const MethodReport rep = score_fill_result(problem, original, result);
    print_table3_header(std::cout);
    print_table3_row(std::cout, layout.name, rep);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path;
  std::string out_path;
  std::string method = "pkb";
  std::string surrogate_prefix = "data/unet_cmp";
  bool report = false;
  bool drc = false;
  ExtractOptions eopt;
  double window_um = eopt.window_um;
  CommonToolOptions common;

  ArgParser parser("nf_fill", "Model-based dummy filling of a GLF layout.");
  parser.add_positional("layout.glf", "input GLF layout", &in_path);
  parser.add_positional("out.glf", "output layout with dummies inserted",
                        &out_path);
  parser.add_choice("--method", {"lin", "tao", "cai", "pkb", "mm"},
                    "filling method (default pkb)", &method);
  parser.add_string("--surrogate", "PREFIX",
                    "surrogate weight prefix (default data/unet_cmp)",
                    &surrogate_prefix);
  parser.add_double("--window", "UM", "window edge in um (default 100)",
                    &window_um);
  parser.add_flag("--report", "print the Table-III score row for the result",
                  &report);
  parser.add_flag("--drc", "insert dummies with design-rule checking", &drc);
  add_common_options(parser, &common);
  switch (parser.parse(argc, argv, std::cout, std::cerr)) {
    case ArgParser::Result::kHelp:
      return 0;
    case ArgParser::Result::kError:
      return 2;
    case ArgParser::Result::kOk:
      break;
  }
  if (!apply_common_options(common, std::cerr)) return 2;
  eopt.window_um = window_um;
  std::fprintf(stderr, "nf_fill: method=%s threads=%d\n", method.c_str(),
               runtime::thread_count());

  int rc = 0;
  try {
    rc = run(in_path, out_path, method, surrogate_prefix, eopt, report, drc);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!finish_common_options(common) && rc == 0) rc = 1;
  return rc;
}
