// nf_fill: model-based dummy filling of a GLF layout from the command line.
//
// Run `nf_fill --help` for the full flag list.  pkb/mm need a pre-trained
// surrogate (see examples/train_surrogate); with none available a reduced
// surrogate is trained on the fly.
//
// Robustness (docs/robustness.md): `--deadline-s` bounds the wall clock and
// returns the best feasible fill with a [timed-out] report flag;
// `--snapshot` checkpoints the optimization periodically and `--resume`
// continues a killed run to a bitwise-identical result; SIGINT/SIGTERM
// write a final snapshot and exit 128+signal (130/143).  Exit codes: 0
// success, 1 runtime/input failure (structured one-line error, no stack
// trace), 2 usage error.

#include <sys/stat.h>

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "fill/neurfill.hpp"
#include "fill/report.hpp"
#include "fullchip/driver.hpp"
#include "geom/glf_io.hpp"
#include "layout/fill_insertion.hpp"
#include "runtime/parallel.hpp"
#include "surrogate/trainer.hpp"

using namespace neurfill;

namespace {

std::atomic<bool> g_interrupt{false};
std::atomic<int> g_signal{0};
void handle_signal(int sig) {
  g_signal.store(sig);
  g_interrupt.store(true);
}

std::shared_ptr<CmpSurrogate> obtain_surrogate(const std::string& prefix,
                                               const WindowExtraction& ext,
                                               const CmpSimulator& sim) {
  Expected<std::shared_ptr<CmpSurrogate>> loaded = load_surrogate(prefix);
  if (loaded.ok()) return std::move(*loaded);
  // A *missing* artifact has the documented quick-train fallback; a present
  // but corrupt/unreadable one is a hard input error (exit 1, no trace).
  if (loaded.error().code != ErrorCode::kNotFound)
    throw ErrorException(loaded.error());
  std::fprintf(stderr,
               "nf_fill: no surrogate at '%s'; training a reduced one\n",
               prefix.c_str());
  SurrogateConfig cfg;
  cfg.unet.base_channels = 8;
  cfg.unet.depth = 2;
  auto s = std::make_shared<CmpSurrogate>(cfg, 5);
  TrainingDataGenerator gen({ext}, sim, 17, 4);
  TrainOptions opt;
  opt.epochs = 6;
  opt.dataset_size = 60;
  opt.grid_rows = ext.rows;
  opt.grid_cols = ext.cols;
  train_surrogate(*s, gen, opt);
  return s;
}

struct RunFlags {
  bool report = false;
  bool drc = false;
  double deadline_s = 0.0;  ///< 0 = no deadline
  std::string snapshot_path;
  int snapshot_every = 1;
  bool resume = false;
  /// Diagnosis switch: route no-gradient surrogate evaluations through the
  /// autograd module path instead of the compiled InferenceSession.  Both
  /// paths are bitwise identical (docs/inference.md), so this only changes
  /// speed, never the fill.
  bool no_fast_inference = false;
};

struct TiledFlags {
  bool tiled = false;
  int tile_windows = 16;
  int halo_windows = -1;  ///< negative = derive from planarization length
  double stitch_tol = 0.02;
  int stitch_passes = 2;
  std::string store_dir;  ///< empty = out.glf + ".tiles"
};

int run(const std::string& in_path, const std::string& out_path,
        const std::string& method, const std::string& surrogate_prefix,
        const ExtractOptions& eopt, const RunFlags& flags) {
  Layout layout = read_glf_file(in_path);
  const WindowExtraction ext = extract_windows(layout, eopt);
  CmpProcessParams params;
  params.window_um = eopt.window_um;
  CmpSimulator sim(params);
  const ScoreCoefficients coeffs = make_coefficients(layout, ext, sim);
  FillProblem problem(ext, sim, coeffs);

  const Deadline deadline = flags.deadline_s > 0.0
                                ? Deadline::after_seconds(flags.deadline_s)
                                : Deadline();

  FillRunResult result;
  if (method == "lin") {
    result = lin_rule_fill(problem);
  } else if (method == "tao") {
    TaoOptions topt;
    topt.sqp.deadline = deadline;
    result = tao_rule_sqp(problem, topt);
  } else if (method == "cai") {
    CaiOptions copt;
    copt.sqp.deadline = deadline;
    result = cai_model_fill(problem, copt);
  } else {  // pkb or mm: the parser only admits the five known methods
    auto surrogate = obtain_surrogate(surrogate_prefix, ext, sim);
    surrogate->set_fast_inference(!flags.no_fast_inference);
    CmpNetwork network(surrogate, ext, coeffs);
    calibrate_network(network, problem);
    NeurFillOptions nopt;
    nopt.deadline = deadline;
    nopt.snapshot_path = flags.snapshot_path;
    nopt.snapshot_every = flags.snapshot_every;
    nopt.resume = flags.resume;
    nopt.interrupt = &g_interrupt;
    result = method == "pkb" ? neurfill_pkb(problem, network, nopt)
                             : neurfill_mm(problem, network, nopt);
  }

  const Layout original = layout;  // scoring must see the pre-fill design
  std::size_t dummies = 0;
  if (flags.drc) {
    const DrcInsertStats stats = insert_dummies_drc(layout, ext, result.x);
    dummies = stats.placed;
    std::fprintf(stderr,
                 "DRC insertion: realized %.0f of %.0f um^2 (%zu sites "
                 "blocked)\n",
                 stats.realized_um2, stats.requested_um2, stats.blocked_sites);
  } else {
    dummies = insert_dummies(layout, ext, result.x);
  }
  write_glf_file(out_path, layout);
  std::fprintf(stderr, "%s: inserted %zu dummies in %.1fs (%ld evaluations)%s%s\n",
               result.method.c_str(), dummies, result.runtime_s,
               result.objective_evaluations,
               result.timed_out ? " [timed-out]" : "",
               result.degraded ? " [degraded]" : "");
  if (flags.report) {
    const MethodReport rep = score_fill_result(problem, original, result);
    print_table3_header(std::cout);
    print_table3_row(std::cout, layout.name, rep);
  }
  return 0;
}

/// Resolves the surrogate the tile solves will load: the given prefix when
/// it exists, else a reduced surrogate quick-trained on tile (0,0)'s halo
/// region and saved inside the tile store, so every concurrent tile solve
/// can load its own instance from disk.
std::string prepare_tiled_surrogate(const std::string& prefix,
                                    const fullchip::FullChipOptions& fopt,
                                    const GlfRegionIndex& index) {
  Expected<std::shared_ptr<CmpSurrogate>> loaded = load_surrogate(prefix);
  if (loaded.ok()) return prefix;
  if (loaded.error().code != ErrorCode::kNotFound)
    throw ErrorException(loaded.error());

  const double w = fopt.extract.window_um;
  const std::size_t rows =
      static_cast<std::size_t>(std::ceil(index.height_um() / w));
  const std::size_t cols =
      static_cast<std::size_t>(std::ceil(index.width_um() / w));
  const int halo =
      fopt.halo_windows >= 0
          ? fopt.halo_windows
          : fullchip::auto_halo_windows(fopt.process.char_length_um, w);
  const fullchip::TileGrid grid(rows, cols, fopt.tile_windows, halo, w);
  const Layout local =
      fullchip::load_tile_layout(index, grid.tile(0, 0), w);
  const WindowExtraction ext = extract_windows(local, fopt.extract);
  CmpProcessParams params = fopt.process;
  params.window_um = w;
  const CmpSimulator sim(params);
  auto surrogate = obtain_surrogate(prefix, ext, sim);

  ::mkdir(fopt.store_dir.c_str(), 0755);  // store.open would create it later
  const std::string trained = fopt.store_dir + "/surrogate";
  Expected<void> saved = save_surrogate(*surrogate, trained);
  if (!saved.ok()) throw ErrorException(saved.error());
  return trained;
}

int run_tiled(const std::string& in_path, const std::string& out_path,
              const std::string& method, const std::string& surrogate_prefix,
              const ExtractOptions& eopt, const RunFlags& flags,
              const TiledFlags& tiled) {
  // Index, never parse: the full chip is only ever touched one tile region
  // at a time.  Buckets of a few windows keep region queries sharp without
  // inflating the index.
  const GlfRegionIndex index =
      GlfRegionIndex::build(in_path, 4.0 * eopt.window_um);

  fullchip::FullChipOptions fopt;
  fopt.method = method;
  fopt.extract = eopt;
  fopt.tile_windows = tiled.tile_windows;
  fopt.halo_windows = tiled.halo_windows;
  fopt.stitch_tol = tiled.stitch_tol;
  fopt.max_stitch_passes = tiled.stitch_passes;
  fopt.store_dir =
      tiled.store_dir.empty() ? out_path + ".tiles" : tiled.store_dir;
  fopt.resume = flags.resume;
  fopt.deadline = flags.deadline_s > 0.0
                      ? Deadline::after_seconds(flags.deadline_s)
                      : Deadline();
  fopt.interrupt = &g_interrupt;
  if (method == "pkb" || method == "mm") {
    const std::string prefix =
        prepare_tiled_surrogate(surrogate_prefix, fopt, index);
    const bool fast = !flags.no_fast_inference;
    fopt.surrogate_factory =
        [prefix, fast]() -> std::shared_ptr<const CmpSurrogate> {
      Expected<std::shared_ptr<CmpSurrogate>> s = load_surrogate(prefix);
      if (!s.ok()) throw ErrorException(s.error());
      (*s)->set_fast_inference(fast);
      return std::move(*s);
    };
  }

  const fullchip::FullChipResult result = fullchip::fullchip_fill(index, fopt);
  const std::size_t dummies = fullchip::write_fullchip_result(
      index, out_path, result, eopt.window_um);
  std::fprintf(stderr,
               "%s-tiled: %zu tiles (%zu solved, %zu loaded), %d stitch "
               "pass(es), seam %.4f; inserted %zu dummies in %.1fs "
               "(%ld evaluations)%s%s\n",
               method.c_str(), result.tiles_total, result.tiles_solved,
               result.tiles_loaded, result.stitch_passes + 1,
               result.final_seam, dummies, result.runtime_s,
               result.evaluations, result.timed_out ? " [timed-out]" : "",
               result.degraded ? " [degraded]" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path;
  std::string out_path;
  std::string method = "pkb";
  std::string surrogate_prefix = "data/unet_cmp";
  RunFlags flags;
  TiledFlags tiled;
  ExtractOptions eopt;
  double window_um = eopt.window_um;
  CommonToolOptions common;

  ArgParser parser("nf_fill", "Model-based dummy filling of a GLF layout.");
  parser.add_positional("layout.glf", "input GLF layout", &in_path);
  parser.add_positional("out.glf", "output layout with dummies inserted",
                        &out_path);
  parser.add_choice("--method", {"lin", "tao", "cai", "pkb", "mm"},
                    "filling method (default pkb)", &method);
  parser.add_string("--surrogate", "PREFIX",
                    "surrogate weight prefix (default data/unet_cmp)",
                    &surrogate_prefix);
  parser.add_double("--window", "UM", "window edge in um (default 100)",
                    &window_um);
  parser.add_flag("--report", "print the Table-III score row for the result",
                  &flags.report);
  parser.add_flag("--drc", "insert dummies with design-rule checking",
                  &flags.drc);
  parser.add_double("--deadline-s", "SEC",
                    "wall-clock budget; expiry returns the best feasible "
                    "fill flagged [timed-out] (default: none)",
                    &flags.deadline_s);
  parser.add_string("--snapshot", "PATH",
                    "checkpoint the pkb/mm optimization state to PATH "
                    "(atomic, CRC-checksummed)",
                    &flags.snapshot_path);
  parser.add_int("--snapshot-every", "N",
                 "SQP iterations between mid-start snapshots (default 1)",
                 &flags.snapshot_every);
  parser.add_flag("--resume",
                  "continue from --snapshot PATH; the resumed run's fill is "
                  "bitwise identical to an uninterrupted one",
                  &flags.resume);
  parser.add_flag("--no-fast-inference",
                  "evaluate the surrogate through the autograd module path "
                  "instead of the compiled inference session (slower, "
                  "bitwise-identical results; for diagnosis)",
                  &flags.no_fast_inference);
  parser.add_flag("--tiled",
                  "out-of-core full-chip mode: solve halo tiles through the "
                  "pool and stitch them (docs/fullchip.md)",
                  &tiled.tiled);
  parser.add_int("--tile-windows", "N",
                 "tile core edge in windows (default 16)",
                 &tiled.tile_windows);
  parser.add_int("--halo-windows", "H",
                 "halo ring width in windows (default: derived from the "
                 "planarization length)",
                 &tiled.halo_windows);
  parser.add_double("--stitch-tol", "T",
                    "stop stitching when the worst cross-tile seam falls "
                    "under T (default 0.02)",
                    &tiled.stitch_tol);
  parser.add_int("--stitch-passes", "N",
                 "max refinement passes after the initial tile pass "
                 "(default 2)",
                 &tiled.stitch_passes);
  parser.add_string("--tile-store", "DIR",
                    "spill directory for solved tiles (default: "
                    "out.glf + \".tiles\"); with --resume, completed tiles "
                    "are loaded instead of re-solved",
                    &tiled.store_dir);
  add_common_options(parser, &common);
  switch (parser.parse(argc, argv, std::cout, std::cerr)) {
    case ArgParser::Result::kHelp:
      return 0;
    case ArgParser::Result::kError:
      return 2;
    case ArgParser::Result::kOk:
      break;
  }
  if (!apply_common_options(common, std::cerr)) return 2;
  if (tiled.tiled) {
    if (method != "lin" && method != "pkb" && method != "mm") {
      std::fprintf(stderr,
                   "nf_fill: --tiled supports lin, pkb, mm (method '%s' "
                   "needs the monolithic path)\n",
                   method.c_str());
      return 2;
    }
    if (flags.report || flags.drc || !flags.snapshot_path.empty()) {
      std::fprintf(stderr,
                   "nf_fill: --tiled is incompatible with --report/--drc/"
                   "--snapshot (tile snapshots live in the tile store)\n");
      return 2;
    }
    if (tiled.tile_windows < 1 || tiled.stitch_passes < 0 ||
        !(tiled.stitch_tol > 0.0)) {
      std::fprintf(stderr,
                   "nf_fill: --tile-windows must be >= 1, --stitch-passes "
                   ">= 0, --stitch-tol > 0\n");
      return 2;
    }
  } else if (flags.resume && flags.snapshot_path.empty()) {
    std::fprintf(stderr, "nf_fill: --resume requires --snapshot PATH\n");
    return 2;
  }
  if (flags.snapshot_every < 1) {
    std::fprintf(stderr, "nf_fill: --snapshot-every must be >= 1\n");
    return 2;
  }
  if (!flags.snapshot_path.empty() && method != "pkb" && method != "mm")
    std::fprintf(stderr,
                 "nf_fill: note: --snapshot/--resume only apply to pkb/mm\n");
  eopt.window_um = window_um;
  // SIGTERM and SIGINT share one checkpoint-consistent handler: the solve
  // writes a final snapshot and the tool exits 128+signal (130 for SIGINT,
  // 143 for SIGTERM — docs/robustness.md).
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::fprintf(stderr, "nf_fill: method=%s threads=%d\n", method.c_str(),
               runtime::thread_count());

  int rc = 0;
  try {
    rc = tiled.tiled ? run_tiled(in_path, out_path, method, surrogate_prefix,
                                 eopt, flags, tiled)
                     : run(in_path, out_path, method, surrogate_prefix, eopt,
                           flags);
  } catch (const ErrorException& e) {
    if (e.err.code == ErrorCode::kInterrupted) {
      std::fprintf(stderr, "nf_fill: %s\n", e.err.message.c_str());
      const int sig = g_signal.load();
      rc = 128 + (sig > 0 ? sig : SIGINT);
    } else {
      std::fprintf(stderr, "error: %s\n", e.err.to_string().c_str());
      rc = 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!finish_common_options(common) && rc == 0) rc = 1;
  return rc;
}
