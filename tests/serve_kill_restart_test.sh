#!/usr/bin/env bash
# Daemon crash-restart acceptance test (docs/serving.md): SIGKILL an
# nf_serve daemon while a job is mid-solve, restart it on the same journal,
# and require the recovered job to finish with an artifact byte-identical
# to one produced by an uninterrupted daemon.  A final phase SIGTERMs a
# daemon under load and requires a clean exit 0 with the accepted job left
# durably journaled.
#
# Usage: serve_kill_restart_test.sh <nf_gen> <nf_serve> [workdir]
set -u

NF_GEN="${1:?usage: serve_kill_restart_test.sh <nf_gen> <nf_serve> [workdir]}"
NF_SERVE="${2:?usage: serve_kill_restart_test.sh <nf_gen> <nf_serve> [workdir]}"
WORK="${3:-$(mktemp -d)}"
mkdir -p "$WORK"

fail() { echo "FAIL: $*" >&2; exit 1; }

# One request line over a fresh loopback connection; prints the reply line.
req() {  # $1=port $2=json
  local reply
  exec 3<>"/dev/tcp/127.0.0.1/$1" || return 1
  printf '%s\n' "$2" >&3
  IFS= read -r -t 120 reply <&3
  local rc=$?
  exec 3<&- 3>&-
  printf '%s\n' "$reply"
  return $rc
}

# Waits (while the daemon is alive) until the port file exists; prints the
# port.  Boundedness comes from the CTest TIMEOUT.
wait_port() {  # $1=pid $2=port_file
  while kill -0 "$1" 2>/dev/null && ! [ -s "$2" ]; do sleep 0.05; done
  [ -s "$2" ] || fail "daemon died before publishing its port (see $WORK)"
  cat "$2"
}

# Polls job status until it reaches a terminal state; prints the last reply.
wait_job() {  # $1=port $2=job_id
  local reply=""
  while :; do
    reply="$(req "$1" "{\"op\":\"status\",\"id\":\"$2\"}")" \
      || fail "status query for $2 failed"
    case "$reply" in
      *'"state":"completed"'*|*'"state":"failed"'*) break ;;
    esac
    sleep 0.1
  done
  printf '%s\n' "$reply"
}

# A deterministic fixture; mm carries the most resumable state (NMMSO phase
# plus multi-start SQP).  Both daemons quick-train the same reduced
# surrogate from the same seeds, so their solves are bitwise comparable.
"$NF_GEN" b "$WORK/in.glf" --windows 10 --seed 3 >/dev/null 2>&1 \
  || fail "nf_gen could not write the fixture layout"
SERVE_ARGS=(--surrogate "$WORK/reduced" --threads 2)

# ---- Phase 1: reference artifact from an uninterrupted daemon. ----------
"$NF_SERVE" --journal "$WORK/ref.journal" --port-file "$WORK/ref.port" \
  "${SERVE_ARGS[@]}" >"$WORK/ref.log" 2>&1 &
REF_PID=$!
REF_PORT="$(wait_port "$REF_PID" "$WORK/ref.port")"
REPLY="$(req "$REF_PORT" "{\"op\":\"submit\",\"design\":\"$WORK/in.glf\",\"out\":\"$WORK/ref.glf\",\"method\":\"mm\"}")" \
  || fail "reference submit got no reply"
case "$REPLY" in *'"ok":true'*) ;; *) fail "reference submit rejected: $REPLY" ;; esac
JOB_ID="$(printf '%s' "$REPLY" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$JOB_ID" ] || fail "no job id in reply: $REPLY"
STATUS="$(wait_job "$REF_PORT" "$JOB_ID")"
case "$STATUS" in *'"state":"completed"'*) ;; *) fail "reference job did not complete: $STATUS" ;; esac
req "$REF_PORT" '{"op":"drain"}' >/dev/null || fail "reference drain failed"
wait "$REF_PID"
[ $? -eq 0 ] || fail "reference daemon did not exit 0 after drain"
[ -s "$WORK/ref.glf" ] || fail "reference artifact missing"

# ---- Phase 2: SIGKILL the daemon mid-solve, restart, resume. ------------
"$NF_SERVE" --journal "$WORK/kill.journal" --port-file "$WORK/kill.port" \
  "${SERVE_ARGS[@]}" >"$WORK/kill.log" 2>&1 &
VICTIM=$!
KILL_PORT="$(wait_port "$VICTIM" "$WORK/kill.port")"
REPLY="$(req "$KILL_PORT" "{\"op\":\"submit\",\"design\":\"$WORK/in.glf\",\"out\":\"$WORK/kill.glf\",\"method\":\"mm\"}")" \
  || fail "victim submit got no reply"
KILL_JOB="$(printf '%s' "$REPLY" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$KILL_JOB" ] || fail "victim submit rejected: $REPLY"
SNAP="$WORK/kill.journal/$KILL_JOB.snap"
# SIGKILL as soon as the first solve snapshot is durable — genuinely
# mid-attempt.  Wait only while the victim is alive (sanitizer builds are
# ~10x slower; boundedness comes from the CTest TIMEOUT).
while kill -0 "$VICTIM" 2>/dev/null && ! [ -s "$SNAP" ]; do sleep 0.05; done
kill -9 "$VICTIM" 2>/dev/null
wait "$VICTIM" 2>/dev/null
KILL_RC=$?
[ -s "$SNAP" ] || fail "no solve snapshot was written before the kill"
if [ "$KILL_RC" -ne 137 ]; then
  echo "note: victim exited rc=$KILL_RC before SIGKILL landed" >&2
fi
[ -s "$WORK/kill.journal/job_$KILL_JOB.nfcp" ] \
  || fail "journal record missing after SIGKILL"

# Restart on the same journal: the running record re-queues and the solve
# resumes from its snapshot with no client intervention.
rm -f "$WORK/kill.port"
"$NF_SERVE" --journal "$WORK/kill.journal" --port-file "$WORK/kill.port" \
  "${SERVE_ARGS[@]}" >"$WORK/restart.log" 2>&1 &
RESTART_PID=$!
RESTART_PORT="$(wait_port "$RESTART_PID" "$WORK/kill.port")"
STATUS="$(wait_job "$RESTART_PORT" "$KILL_JOB")"
case "$STATUS" in *'"state":"completed"'*) ;; *) fail "recovered job did not complete: $STATUS" ;; esac
req "$RESTART_PORT" '{"op":"drain"}' >/dev/null || fail "restart drain failed"
wait "$RESTART_PID"
[ $? -eq 0 ] || fail "restarted daemon did not exit 0 after drain"

cmp -s "$WORK/ref.glf" "$WORK/kill.glf" \
  || fail "artifact after SIGKILL+restart differs from the uninterrupted run"

# ---- Phase 3: SIGTERM under load drains to exit 0. ----------------------
"$NF_SERVE" --journal "$WORK/term.journal" --port-file "$WORK/term.port" \
  --drain-deadline-s 2 "${SERVE_ARGS[@]}" >"$WORK/term.log" 2>&1 &
TERM_PID=$!
TERM_PORT="$(wait_port "$TERM_PID" "$WORK/term.port")"
REPLY="$(req "$TERM_PORT" "{\"op\":\"submit\",\"design\":\"$WORK/in.glf\",\"out\":\"$WORK/term.glf\",\"method\":\"mm\"}")" \
  || fail "load submit got no reply"
TERM_JOB="$(printf '%s' "$REPLY" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$TERM_JOB" ] || fail "load submit rejected: $REPLY"
kill -TERM "$TERM_PID"
wait "$TERM_PID"
TERM_RC=$?
[ "$TERM_RC" -eq 0 ] \
  || fail "SIGTERM drain under load exited rc=$TERM_RC (want 0)"
# The accepted job must be completed or still durable in the journal.
[ -s "$WORK/term.journal/job_$TERM_JOB.nfcp" ] \
  || fail "accepted job's record is gone after the SIGTERM drain"

echo "PASS: restart resumed to a byte-identical artifact; SIGTERM drained to exit 0"
exit 0
