#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "nn/tensor.hpp"

namespace neurfill::nn::testing {

/// Finite-difference gradient check: `fn` maps the (single) input tensor to
/// a scalar tensor.  Verifies reverse-mode gradients against central
/// differences.  Tolerances are loose because storage is float32.
inline void expect_gradcheck(
    const std::function<Tensor(const Tensor&)>& fn, Tensor input,
    float eps = 1e-2f, float rtol = 3e-2f, float atol = 1e-3f) {
  input.set_requires_grad(true);
  input.zero_grad();
  Tensor out = fn(input);
  ASSERT_EQ(out.numel(), 1) << "gradcheck function must return a scalar";
  out.backward();
  std::vector<float> analytic(input.grad(), input.grad() + input.numel());

  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float orig = input.data()[i];
    input.data()[i] = orig + eps;
    const float fp = fn(input).item();
    input.data()[i] = orig - eps;
    const float fm = fn(input).item();
    input.data()[i] = orig;
    const float numeric = (fp - fm) / (2.0f * eps);
    const float tol = atol + rtol * std::max(std::fabs(numeric),
                                             std::fabs(analytic[static_cast<std::size_t>(i)]));
    EXPECT_NEAR(analytic[static_cast<std::size_t>(i)], numeric, tol)
        << "gradient mismatch at flat index " << i;
  }
}

/// Multi-input variant: checks the gradient w.r.t. `inputs[check_index]`
/// while the others stay fixed.
inline void expect_gradcheck_multi(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, std::size_t check_index, float eps = 1e-2f,
    float rtol = 3e-2f, float atol = 1e-3f) {
  for (auto& t : inputs) t.set_requires_grad(true);
  for (auto& t : inputs) t.zero_grad();
  Tensor out = fn(inputs);
  ASSERT_EQ(out.numel(), 1);
  out.backward();
  Tensor target = inputs[check_index];
  std::vector<float> analytic(target.grad(), target.grad() + target.numel());

  for (std::int64_t i = 0; i < target.numel(); ++i) {
    const float orig = target.data()[i];
    target.data()[i] = orig + eps;
    const float fp = fn(inputs).item();
    target.data()[i] = orig - eps;
    const float fm = fn(inputs).item();
    target.data()[i] = orig;
    const float numeric = (fp - fm) / (2.0f * eps);
    const float tol = atol + rtol * std::max(std::fabs(numeric),
                                             std::fabs(analytic[static_cast<std::size_t>(i)]));
    EXPECT_NEAR(analytic[static_cast<std::size_t>(i)], numeric, tol)
        << "gradient mismatch at input " << check_index << " flat index " << i;
  }
}

/// Deterministic pseudo-random tensor in [lo, hi).
inline Tensor random_tensor(std::vector<int> shape, unsigned seed,
                            float lo = -1.0f, float hi = 1.0f) {
  Tensor t(std::move(shape));
  unsigned state = seed * 2654435761u + 12345u;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    state = state * 1664525u + 1013904223u;
    const float u = static_cast<float>(state >> 8) /
                    static_cast<float>(1u << 24);
    t.data()[i] = lo + (hi - lo) * u;
  }
  return t;
}

}  // namespace neurfill::nn::testing
