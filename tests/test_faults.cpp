// Fault-injection tests (docs/robustness.md): the deterministic fault
// registry itself, plus one test per catalogued site asserting the
// *documented degradation* — the pipeline reports, retries, or degrades,
// and never aborts.
//
// Sites covered: contact.stall, contact.nan, sqp.poison, nmmso.poison,
// io.short_write, io.rename, io.short_read, checkpoint.alloc.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cmp/contact_solver.hpp"
#include "cmp/simulator.hpp"
#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "opt/nmmso.hpp"
#include "opt/sqp.hpp"

namespace neurfill {
namespace {

/// Every test starts and ends with a disarmed registry so armed sites can
/// never leak across tests (or into other suites in the same binary).  In a
/// NEURFILL_ENABLE_FAULTS=OFF build the NF_FAULT macro folds to false, so
/// nothing here can fire and the whole suite is skipped.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if defined(NEURFILL_DISABLE_FAULTS)
    GTEST_SKIP() << "fault injection compiled out (NEURFILL_ENABLE_FAULTS=OFF)";
#endif
    fault::disarm_all();
  }
  void TearDown() override { fault::disarm_all(); }
};

// ---------------------------------------------------------------- registry

TEST_F(FaultTest, UnarmedSiteNeverFires) {
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fault::should_inject("no.site"));
  EXPECT_FALSE(fault::any_armed());
}

TEST_F(FaultTest, HitFiresExactlyOnce) {
  fault::arm_hit("t.hit", 3);
  std::vector<bool> verdicts;
  for (int i = 0; i < 6; ++i) verdicts.push_back(fault::should_inject("t.hit"));
  const std::vector<bool> want = {false, false, true, false, false, false};
  EXPECT_EQ(verdicts, want);
  EXPECT_EQ(fault::hits("t.hit"), 6u);
  EXPECT_EQ(fault::fired("t.hit"), 1u);
}

TEST_F(FaultTest, AfterFiresPersistently) {
  fault::arm_after("t.after", 4);
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += fault::should_inject("t.after") ? 1 : 0;
  EXPECT_EQ(fired, 7);  // hits 4..10
  EXPECT_EQ(fault::fired("t.after"), 7u);
}

TEST_F(FaultTest, ProbVerdictIsAFunctionOfSeedSiteAndHitIndex) {
  fault::arm_prob("t.prob", 0.5, 42);
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) first.push_back(fault::should_inject("t.prob"));
  fault::disarm_all();
  fault::arm_prob("t.prob", 0.5, 42);
  std::vector<bool> second;
  for (int i = 0; i < 200; ++i)
    second.push_back(fault::should_inject("t.prob"));
  EXPECT_EQ(first, second);  // same seed -> identical firing set
  const long count = std::count(first.begin(), first.end(), true);
  EXPECT_GT(count, 50);  // p=0.5 over 200 draws
  EXPECT_LT(count, 150);
}

TEST_F(FaultTest, DifferentSeedsGiveDifferentFiringSets) {
  fault::arm_prob("t.seed", 0.5, 1);
  std::vector<bool> a;
  for (int i = 0; i < 200; ++i) a.push_back(fault::should_inject("t.seed"));
  fault::disarm_all();
  fault::arm_prob("t.seed", 0.5, 2);
  std::vector<bool> b;
  for (int i = 0; i < 200; ++i) b.push_back(fault::should_inject("t.seed"));
  EXPECT_NE(a, b);
}

TEST_F(FaultTest, ConfigureParsesSpecs) {
  EXPECT_TRUE(fault::configure("a.x=hit:1;b.y=after:2;c.z=prob:0.25"));
  EXPECT_TRUE(fault::should_inject("a.x"));
  EXPECT_FALSE(fault::should_inject("b.y"));
  EXPECT_TRUE(fault::should_inject("b.y"));
  fault::disarm_all();
  EXPECT_FALSE(fault::configure("a.x=banana:3"));
  EXPECT_FALSE(fault::configure("a.x"));
  EXPECT_FALSE(fault::configure("a.x=hit:notanumber"));
}

TEST_F(FaultTest, DisarmStopsFiringAndResetsCounters) {
  fault::arm_after("t.dis", 1);
  EXPECT_TRUE(fault::should_inject("t.dis"));
  fault::disarm("t.dis");
  EXPECT_FALSE(fault::should_inject("t.dis"));
  EXPECT_EQ(fault::hits("t.dis"), 0u);
}

// ---------------------------------------------------- contact solver sites

/// A gently varying surface the solver converges on in a few iterations
/// (the convergence threshold scales with the height contrast, so an exactly
/// flat surface can never formally "converge").
GridD bumpy_height() {
  GridD z(8, 8, 0.0);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      z(i, j) = 10.0 * std::sin(0.7 * static_cast<double>(i)) *
                std::cos(0.5 * static_cast<double>(j));
  return z;
}

TEST_F(FaultTest, ContactStallReportsNonConvergedWithDiagnostics) {
  ElasticContactSolver::Options opt;
  opt.max_iterations = 60;
  ElasticContactSolver solver(8, 8, opt);
  const GridD z = bumpy_height();

  fault::arm_after("contact.stall", 1);  // suppress every convergence accept
  ContactDiag diag;
  Expected<GridD> res = solver.try_solve(z, 2.0, &diag);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, ErrorCode::kNonConverged);
  EXPECT_FALSE(diag.converged);
  EXPECT_EQ(diag.iterations, opt.max_iterations);
  // The residual trail and best-iterate fields let the caller degrade.
  EXPECT_EQ(diag.residual_trail.size(),
            static_cast<std::size_t>(opt.max_iterations));
  ASSERT_GT(diag.best_pressure.size(), 0u);
  for (const double v : diag.best_pressure) EXPECT_TRUE(std::isfinite(v));

  fault::disarm_all();  // the same solve succeeds without the fault
  EXPECT_TRUE(solver.try_solve(z, 2.0).ok());
}

TEST_F(FaultTest, ContactNanReportsNumericPoison) {
  ElasticContactSolver solver(8, 8);
  fault::arm_hit("contact.nan", 1);
  ContactDiag diag;
  Expected<GridD> res = solver.try_solve(bumpy_height(), 2.0, &diag);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, ErrorCode::kNumericPoison);
}

/// A small elastic-model simulation input that exercises the contact solve.
LayerSimInput small_input() {
  LayerSimInput in;
  in.density = GridD(8, 8, 0.5);
  in.density(4, 4) = 0.1;
  in.avg_width_um = GridD(8, 8, 20.0);
  in.perimeter_um = GridD(8, 8, 1000.0);
  in.incoming_height = GridD(8, 8, 0.0);
  return in;
}

CmpProcessParams elastic_params() {
  CmpProcessParams p;
  p.pressure_model = PressureModel::kElastic;
  p.polish_time_s = 5.0;
  p.dt_s = 1.0;
  return p;
}

TEST_F(FaultTest, SimulatorDegradesToBestIterateOnStall) {
  CmpSimulator sim(elastic_params());
  fault::arm_after("contact.stall", 1);
  const LayerSimResult r = sim.simulate_layer(small_input());  // no throw
  for (const double v : r.height) EXPECT_TRUE(std::isfinite(v));
  // The health ledger records the retry and the degradation honestly.
  EXPECT_GT(sim.health().contact_retries.load(), 0);
  EXPECT_GT(sim.health().contact_degraded.load(), 0);
  EXPECT_TRUE(sim.health().any_degraded());
}

TEST_F(FaultTest, SimulatorSurvivesNanPoisonedSolve) {
  CmpSimulator sim(elastic_params());
  fault::arm_after("contact.nan", 1);  // poison every solve, incl. the retry
  const LayerSimResult r = sim.simulate_layer(small_input());
  for (const double v : r.height) EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(sim.health().contact_poisoned.load(), 0);
  EXPECT_TRUE(sim.health().any_degraded());
}

// -------------------------------------------------------- optimizer sites

/// Smooth strictly-convex bowl with minimum at (0.7, 0.3).
double bowl(const VecD& x, VecD* grad) {
  const double dx = x[0] - 0.7, dy = x[1] - 0.3;
  if (grad) {
    (*grad)[0] = 2.0 * dx;
    (*grad)[1] = 2.0 * dy;
  }
  return dx * dx + dy * dy;
}

TEST_F(FaultTest, SqpBacktracksThroughMidRunPoison) {
  const Box box{{0.0, 0.0}, {1.0, 1.0}};
  fault::arm_hit("sqp.poison", 3);  // poison one mid-run evaluation
  const SqpResult res = sqp_minimize(bowl, {0.1, 0.9}, box);
  EXPECT_GE(res.numeric_recoveries, 1);
  EXPECT_FALSE(res.poisoned);
  EXPECT_TRUE(std::isfinite(res.f));
  EXPECT_NEAR(res.x[0], 0.7, 1e-4);  // recovery did not derail convergence
  EXPECT_NEAR(res.x[1], 0.3, 1e-4);
}

TEST_F(FaultTest, SqpReportsUnrecoverablePoisonInsteadOfAborting) {
  const Box box{{0.0, 0.0}, {1.0, 1.0}};
  fault::arm_after("sqp.poison", 1);  // every evaluation is poisoned
  const SqpResult res = sqp_minimize(bowl, {0.1, 0.9}, box);
  EXPECT_TRUE(res.poisoned);
  // f = +inf marks the start as worthless so MSP sorting drops it; x is
  // still the (clamped) start, a valid point in the box.
  EXPECT_TRUE(box.contains(res.x));
}

TEST_F(FaultTest, NmmsoDropsPoisonedMembersNotTheBatch) {
  const Box box{{0.0, 0.0}, {1.0, 1.0}};
  const auto f = [](const VecD& x, VecD*) {
    return std::sin(7.0 * x[0]) + std::cos(5.0 * x[1]);  // multi-modal
  };
  NmmsoOptions opt;
  opt.max_evaluations = 400;
  opt.seed = 5;
  fault::arm_prob("nmmso.poison", 0.2, 11);
  Nmmso nmmso(f, box, opt);
  const std::vector<Mode> modes = nmmso.run();  // no throw
  EXPECT_GT(nmmso.poisoned_drops(), 0);
  ASSERT_FALSE(modes.empty());
  for (const Mode& m : modes) {
    EXPECT_TRUE(std::isfinite(m.value));  // poison never became a gbest
    EXPECT_TRUE(box.contains(m.x));
  }
}

// -------------------------------------------------------------- I/O sites

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

/// A one-section checkpoint whose payload is `tag`.
Expected<void> write_tagged(const std::string& path, const std::string& tag) {
  ByteWriter w;
  w.str(tag);
  CheckpointWriter ckpt;
  ckpt.add_section("tag", w.take());
  return ckpt.commit(path);
}

std::string read_tag(const std::string& path) {
  Expected<CheckpointReader> reader = CheckpointReader::open(path);
  if (!reader.ok()) return "<open failed: " + reader.error().to_string() + ">";
  Expected<const std::vector<char>*> payload = reader->section("tag");
  if (!payload.ok()) return "<no tag section>";
  ByteReader r(**payload);
  return r.str();
}

TEST_F(FaultTest, IoShortWriteFailsCommitAndKeepsOldFile) {
  const std::string path = temp_path("faults_short_write.nfcp");
  ASSERT_TRUE(write_tagged(path, "old").ok());
  fault::arm_hit("io.short_write", 1);
  Expected<void> res = write_tagged(path, "new");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, ErrorCode::kIo);
  // The torn image never reached `path`: the old checkpoint is intact.
  EXPECT_EQ(read_tag(path), "old");
  std::remove(path.c_str());
}

TEST_F(FaultTest, IoRenameFaultKeepsOldFileAndRemovesTemp) {
  const std::string path = temp_path("faults_rename.nfcp");
  ASSERT_TRUE(write_tagged(path, "old").ok());
  fault::arm_hit("io.rename", 1);
  Expected<void> res = write_tagged(path, "new");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, ErrorCode::kIo);
  EXPECT_EQ(read_tag(path), "old");
  // The temp image is cleaned up on the failure path.
  FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST_F(FaultTest, IoShortReadRejectedAtOpenAsCorrupt) {
  const std::string path = temp_path("faults_short_read.nfcp");
  ASSERT_TRUE(write_tagged(path, "payload").ok());
  fault::arm_hit("io.short_read", 1);
  Expected<CheckpointReader> reader = CheckpointReader::open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.error().code, ErrorCode::kCorrupt);
  // The structured error names the file.
  EXPECT_NE(reader.error().message.find(path), std::string::npos);
  fault::disarm_all();
  EXPECT_EQ(read_tag(path), "payload");  // the file itself was never damaged
  std::remove(path.c_str());
}

TEST_F(FaultTest, CheckpointAllocFailureIsResourceExhausted) {
  const std::string path = temp_path("faults_alloc.nfcp");
  ASSERT_TRUE(write_tagged(path, "payload").ok());
  fault::arm_hit("checkpoint.alloc", 1);
  Expected<CheckpointReader> reader = CheckpointReader::open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.error().code, ErrorCode::kResourceExhausted);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace neurfill
