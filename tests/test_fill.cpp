// Tests for the fill framework: metrics, PD estimation, PKB, problem
// plumbing, coefficients, and the rule-based baselines.

#include <cmath>

#include <gtest/gtest.h>

#include "fill/baselines.hpp"
#include "fill/metrics.hpp"
#include "fill/pd_model.hpp"
#include "fill/problem.hpp"
#include "geom/designs.hpp"

namespace neurfill {
namespace {

CmpProcessParams fast_params() {
  CmpProcessParams p;
  p.polish_time_s = 15.0;
  p.dt_s = 1.0;
  return p;
}

FillProblem make_problem(char design, int windows) {
  const Layout layout = make_design(design, windows, 100.0, 3);
  WindowExtraction ext = extract_windows(layout);
  CmpSimulator sim(fast_params());
  ScoreCoefficients coeffs = make_coefficients(layout, ext, sim);
  return FillProblem(std::move(ext), std::move(sim), std::move(coeffs));
}

TEST(Metrics, FlatProfileIsPerfect) {
  const std::vector<GridD> h{GridD(4, 4, 100.0), GridD(4, 4, 250.0)};
  const PlanarityMetrics m = compute_planarity(h);
  EXPECT_NEAR(m.sigma, 0.0, 1e-12);
  EXPECT_NEAR(m.sigma_star, 0.0, 1e-12);
  EXPECT_NEAR(m.outliers, 0.0, 1e-12);
  EXPECT_NEAR(m.delta_h, 150.0, 1e-12);  // across layers
}

TEST(Metrics, HandComputedVariance) {
  GridD h(1, 4, 0.0);
  h(0, 0) = 1.0;
  h(0, 1) = 3.0;
  h(0, 2) = 1.0;
  h(0, 3) = 3.0;
  const PlanarityMetrics m = compute_planarity({h});
  EXPECT_NEAR(m.sigma, 1.0, 1e-12);  // mean 2, deviations +-1
  // Column means equal the values themselves (single row): sigma* = 0.
  EXPECT_NEAR(m.sigma_star, 0.0, 1e-12);
  EXPECT_NEAR(m.delta_h, 2.0, 1e-12);
}

TEST(Metrics, LineDeviationCatchesRowStripes) {
  // Two rows offset by a constant: per-column mean splits the difference.
  GridD h(2, 3, 0.0);
  for (std::size_t j = 0; j < 3; ++j) {
    h(0, j) = 10.0;
    h(1, j) = 20.0;
  }
  const PlanarityMetrics m = compute_planarity({h});
  EXPECT_NEAR(m.sigma_star, 6 * 5.0, 1e-12);
}

TEST(Metrics, ScoreFunctionClamps) {
  EXPECT_DOUBLE_EQ(ScoreCoefficients::score(0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(ScoreCoefficients::score(5.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(ScoreCoefficients::score(15.0, 10.0), 0.0);
}

TEST(Metrics, QualityAssembly) {
  PlanarityMetrics pm;
  pm.sigma = 50.0;
  pm.sigma_star = 100.0;
  pm.outliers = 0.0;
  ScoreCoefficients c;
  c.beta_sigma = 100.0;
  c.beta_sigma_star = 200.0;
  c.beta_ol = 1.0;
  c.beta_ov = 1000.0;
  c.beta_fa = 1000.0;
  const QualityBreakdown q = assemble_quality(pm, 100.0, 200.0, c);
  EXPECT_NEAR(q.s_sigma, 0.5, 1e-12);
  EXPECT_NEAR(q.s_sigma_star, 0.5, 1e-12);
  EXPECT_NEAR(q.s_ol, 1.0, 1e-12);
  EXPECT_NEAR(q.s_plan, 0.2 * 0.5 + 0.2 * 0.5 + 0.15 * 1.0, 1e-12);
  EXPECT_NEAR(q.s_pd, 0.15 * 0.9 + 0.05 * 0.8, 1e-12);
  EXPECT_NEAR(q.s_qual, q.s_plan + q.s_pd, 1e-12);
}

TEST(PdModel, FourTypeSplitPriority) {
  const FourTypeSplit s = split_four_type(0.5, 0.2, 0.15, 0.1, 0.3);
  EXPECT_DOUBLE_EQ(s.x1, 0.2);
  EXPECT_DOUBLE_EQ(s.x2, 0.15);
  EXPECT_DOUBLE_EQ(s.x3, 0.1);
  EXPECT_DOUBLE_EQ(s.x4, 0.05);
  // Less fill fills only type 1.
  const FourTypeSplit t = split_four_type(0.1, 0.2, 0.15, 0.1, 0.3);
  EXPECT_DOUBLE_EQ(t.x1, 0.1);
  EXPECT_DOUBLE_EQ(t.x2 + t.x3 + t.x4, 0.0);
}

TEST(PdModel, OverlayZeroForType1OnlyFill) {
  const FillProblem p = make_problem('a', 8);
  // Fill each window with at most its type-1 capacity on the top layer
  // (no layer above -> no d-d overlay either).
  std::vector<GridD> x = p.zero_fill();
  const auto& top = p.extraction().layers.back();
  const std::size_t L = p.extraction().num_layers() - 1;
  for (std::size_t k = 0; k < top.slack.size(); ++k)
    x[L][k] = 0.5 * top.slack_type[0][k];
  const PdEstimate est = estimate_pd(p.extraction(), x);
  EXPECT_NEAR(est.overlay_um2, 0.0, 1e-9);
  EXPECT_GT(est.fill_um2, 0.0);
}

TEST(PdModel, OverlayGrowsWithSaturation) {
  const FillProblem p = make_problem('b', 8);
  std::vector<GridD> x_half = p.zero_fill();
  std::vector<GridD> x_full = p.zero_fill();
  for (std::size_t l = 0; l < x_half.size(); ++l)
    for (std::size_t k = 0; k < x_half[l].size(); ++k) {
      const double s = p.extraction().layers[l].slack[k];
      x_half[l][k] = 0.3 * s;
      x_full[l][k] = s;
    }
  const PdEstimate e1 = estimate_pd(p.extraction(), x_half);
  const PdEstimate e2 = estimate_pd(p.extraction(), x_full);
  EXPECT_GT(e2.overlay_um2, e1.overlay_um2);
  EXPECT_GT(e2.fill_um2, e1.fill_um2);
}

TEST(PdModel, GradientMatchesFiniteDifference) {
  const FillProblem p = make_problem('c', 6);
  std::vector<GridD> x = p.zero_fill();
  for (std::size_t l = 0; l < x.size(); ++l)
    for (std::size_t k = 0; k < x[l].size(); ++k)
      x[l][k] = 0.4 * p.extraction().layers[l].slack[k];
  const PdScore base = pd_score_and_gradient(p.extraction(), x,
                                             p.coefficients());
  // Probe a handful of windows.
  const double eps = 1e-7;
  for (const std::size_t k : {0UL, 7UL, 13UL, 20UL}) {
    for (std::size_t l = 0; l < x.size(); ++l) {
      if (p.extraction().layers[l].slack[k] < 1e-6) continue;
      std::vector<GridD> xp = x;
      xp[l][k] += eps;
      const PdScore up = pd_score_and_gradient(p.extraction(), xp,
                                               p.coefficients());
      const double numeric = (up.s_pd - base.s_pd) / eps;
      EXPECT_NEAR(base.grad[l][k], numeric, 1e-4 * std::fabs(numeric) + 1e-8)
          << "layer " << l << " window " << k;
    }
  }
}

TEST(Pkb, TargetDensityFillEq18) {
  const FillProblem p = make_problem('a', 8);
  const std::vector<double> td(p.extraction().num_layers(), 0.5);
  const std::vector<GridD> x = target_density_fill(p.extraction(), td);
  for (std::size_t l = 0; l < x.size(); ++l) {
    const auto& d = p.extraction().layers[l];
    for (std::size_t k = 0; k < x[l].size(); ++k) {
      const double rho = d.wire_density[k] + d.dummy_density[k];
      if (0.5 < rho) {
        EXPECT_DOUBLE_EQ(x[l][k], 0.0);
      } else if (0.5 > rho + d.slack[k]) {
        EXPECT_DOUBLE_EQ(x[l][k], d.slack[k]);
      } else {
        EXPECT_NEAR(x[l][k], 0.5 - rho, 1e-12);
      }
    }
  }
}

TEST(Pkb, PicksBestOfLinearSearch) {
  const FillProblem p = make_problem('a', 8);
  int calls = 0;
  const auto quality = [&](const std::vector<GridD>& x) {
    ++calls;
    double total = 0.0;
    for (const auto& g : x)
      for (const double v : g) total += v;
    return -std::fabs(total - 5.0);  // prefer ~5 window-areas of fill
  };
  const std::vector<GridD> best = pkb_starting_point(p.extraction(), quality, 7);
  EXPECT_EQ(calls, 7);
  double total = 0.0;
  for (const auto& g : best)
    for (const double v : g) total += v;
  // The chosen candidate must be at least as good as the extremes.
  EXPECT_LT(std::fabs(total - 5.0), 40.0);
}

TEST(Problem, FlattenRoundTrip) {
  const FillProblem p = make_problem('b', 8);
  std::vector<GridD> x = p.zero_fill();
  x[1](2, 3) = 0.25;
  x[2](0, 0) = 0.1;
  const VecD v = p.flatten(x);
  EXPECT_EQ(v.size(), p.num_vars());
  const std::vector<GridD> back = p.unflatten(v);
  EXPECT_EQ(back[1](2, 3), 0.25);
  EXPECT_EQ(back[2](0, 0), 0.1);
  EXPECT_EQ(back[0](5, 5), 0.0);
}

TEST(Problem, BoundsMatchSlack) {
  const FillProblem p = make_problem('c', 8);
  const Box b = p.bounds();
  EXPECT_EQ(b.lo.size(), p.num_vars());
  std::size_t k = 0;
  for (const auto& layer : p.extraction().layers)
    for (const double s : layer.slack) {
      EXPECT_DOUBLE_EQ(b.lo[k], 0.0);
      EXPECT_DOUBLE_EQ(b.hi[k], std::max(0.0, s));
      ++k;
    }
}

TEST(Problem, CoefficientsCalibratedToUnfilled) {
  const Layout layout = make_design('a', 8, 100.0, 3);
  const WindowExtraction ext = extract_windows(layout);
  const CmpSimulator sim(fast_params());
  const ScoreCoefficients c = make_coefficients(layout, ext, sim);
  // By construction the unfilled design scores ~0 on sigma.
  FillProblem p(ext, sim, c);
  const QualityBreakdown q0 = p.evaluate(p.zero_fill());
  EXPECT_NEAR(q0.s_sigma, 0.0, 1e-9);
  EXPECT_NEAR(q0.s_fa, 1.0, 1e-12);  // no fill -> full fill-amount score
  EXPECT_GT(c.beta_fs, 0.0);
}

TEST(Problem, SimulatorObjectiveNumericalGradientDirection) {
  // The black-box objective must report that filling a sparse window
  // improves quality (negative gradient entry).
  const FillProblem p = make_problem('a', 6);
  const ObjectiveFn obj = p.make_simulator_objective();
  VecD v(p.num_vars(), 0.0);
  const Box b = p.bounds();
  // Find the variable with the largest slack (sparsest window).
  std::size_t pick = 0;
  for (std::size_t i = 0; i < v.size(); ++i)
    if (b.hi[i] > b.hi[pick]) pick = i;
  VecD grad;
  obj(v, &grad);
  EXPECT_LT(grad[pick], 0.0);
}

TEST(Baselines, LinReducesDensityVariance) {
  const FillProblem p = make_problem('a', 8);
  const FillRunResult lin = lin_rule_fill(p);
  EXPECT_EQ(lin.method, "Lin");
  const Box b = p.bounds();
  const VecD v = p.flatten(lin.x);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_GE(v[i], -1e-12);
    EXPECT_LE(v[i], b.hi[i] + 1e-12);
  }
  // Density variance after fill < before, on every layer.
  for (std::size_t l = 0; l < p.extraction().num_layers(); ++l) {
    const auto& d = p.extraction().layers[l];
    double m0 = 0.0, m1 = 0.0;
    const std::size_t n = d.slack.size();
    for (std::size_t k = 0; k < n; ++k) {
      m0 += d.wire_density[k];
      m1 += d.wire_density[k] + lin.x[l][k];
    }
    m0 /= static_cast<double>(n);
    m1 /= static_cast<double>(n);
    double v0 = 0.0, v1 = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      v0 += std::pow(d.wire_density[k] - m0, 2);
      v1 += std::pow(d.wire_density[k] + lin.x[l][k] - m1, 2);
    }
    EXPECT_LT(v1, v0) << "layer " << l;
  }
}

TEST(Baselines, TaoImprovesOnLinRuleObjective) {
  const FillProblem p = make_problem('b', 8);
  const FillRunResult lin = lin_rule_fill(p);
  // With the variance term alone, Tao's SQP refinement can only improve on
  // Lin's density uniformity (SQP descends monotonically from Lin's start).
  TaoOptions topt;
  topt.weight_gradient = 0.0;
  topt.weight_fill = 0.0;
  topt.sqp.max_iterations = 25;
  const FillRunResult tao = tao_rule_sqp(p, topt);
  EXPECT_EQ(tao.method, "Tao");
  // Tao's result stays feasible.
  const Box b = p.bounds();
  const VecD v = p.flatten(tao.x);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_GE(v[i], -1e-9);
    EXPECT_LE(v[i], b.hi[i] + 1e-9);
  }
  double var_lin = 0.0, var_tao = 0.0;
  for (std::size_t l = 0; l < p.extraction().num_layers(); ++l) {
    const auto& d = p.extraction().layers[l];
    const std::size_t n = d.slack.size();
    double ml = 0.0, mt = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      ml += d.wire_density[k] + lin.x[l][k];
      mt += d.wire_density[k] + tao.x[l][k];
    }
    ml /= static_cast<double>(n);
    mt /= static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) {
      var_lin += std::pow(d.wire_density[k] + lin.x[l][k] - ml, 2);
      var_tao += std::pow(d.wire_density[k] + tao.x[l][k] - mt, 2);
    }
  }
  EXPECT_LE(var_tao, var_lin + 1e-9);
}

TEST(Baselines, CaiImprovesQualityOverNoFill) {
  const FillProblem p = make_problem('a', 6);
  CaiOptions copt;
  copt.pkb_steps = 4;
  copt.sqp.max_iterations = 2;  // numerical gradients are expensive
  const FillRunResult cai = cai_model_fill(p, copt);
  const double q0 = p.evaluate(p.zero_fill()).s_qual;
  const double q1 = p.evaluate(cai.x).s_qual;
  EXPECT_GT(q1, q0);
  EXPECT_GT(cai.objective_evaluations, 4);
}

}  // namespace
}  // namespace neurfill
