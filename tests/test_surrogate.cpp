// Tests for the surrogate package: feature extraction layer, CMP network
// forward/backward, training-data generation, trainer and checkpointing.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include <gtest/gtest.h>

#include "fill/problem.hpp"
#include "geom/designs.hpp"
#include "surrogate/cmp_network.hpp"
#include "surrogate/datagen.hpp"
#include "surrogate/eval.hpp"
#include "common/rng.hpp"
#include "surrogate/trainer.hpp"

namespace neurfill {
namespace {

CmpProcessParams fast_params() {
  CmpProcessParams p;
  p.polish_time_s = 10.0;
  p.dt_s = 1.0;
  return p;
}

SurrogateConfig tiny_config() {
  SurrogateConfig c;
  c.unet.base_channels = 4;
  c.unet.depth = 2;
  return c;
}

TEST(Features, PadReplicateEdges) {
  GridD g(2, 3, 0.0);
  g(0, 0) = 1.0;
  g(1, 2) = 5.0;
  const auto padded = pad_replicate(g, 4, 4);
  ASSERT_EQ(padded.size(), 16u);
  EXPECT_FLOAT_EQ(padded[0], 1.0f);
  // Column 3 replicates column 2; rows 2,3 replicate row 1.
  EXPECT_FLOAT_EQ(padded[1 * 4 + 3], 5.0f);
  EXPECT_FLOAT_EQ(padded[3 * 4 + 3], 5.0f);
  EXPECT_FLOAT_EQ(padded[3 * 4 + 0], static_cast<float>(g(1, 0)));
  EXPECT_THROW(pad_replicate(g, 1, 4), std::invalid_argument);
}

TEST(Features, CropRoundTrip) {
  GridD g(3, 3, 0.0);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) g(i, j) = static_cast<double>(i * 3 + j);
  const auto padded = pad_replicate(g, 4, 4);
  const nn::Tensor t = nn::Tensor::from_data({1, 1, 4, 4}, padded);
  const GridD back = crop_to_grid(t, 3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(back(i, j), g(i, j), 1e-6);
}

TEST(Features, StaticPlanesPaddedToDivisor) {
  const Layout layout = make_design_a(1000.0, 2, 2);
  const WindowExtraction ext = extract_windows(layout);
  FeatureConstants fc;
  const auto feats = build_static_features(ext, fc, 4);
  ASSERT_EQ(feats.size(), 2u);
  EXPECT_EQ(feats[0].rows, 10);
  EXPECT_EQ(feats[0].padded_rows, 12);  // next multiple of 4
  EXPECT_EQ(feats[0].wire_density.size(), 12u * 12u);
}

TEST(Features, AssembleLayerInputChannels) {
  const Layout layout = make_design('b', 8, 100.0, 2);
  const WindowExtraction ext = extract_windows(layout);
  FeatureConstants fc;
  const auto feats = build_static_features(ext, fc, 4);
  const int pr = feats[0].padded_rows, pc = feats[0].padded_cols;
  const nn::Tensor fill = nn::Tensor::zeros({1, 1, pr, pc});
  const nn::Tensor incoming = nn::Tensor::zeros({1, 1, pr, pc});
  const nn::Tensor in = assemble_layer_input(feats[0], fc, fill, incoming);
  EXPECT_EQ(in.shape(),
            (std::vector<int>{1, FeatureConstants::kInChannels, pr, pc}));
  // Channel 0 equals the static density when fill is zero.
  for (int k = 0; k < pr * pc; ++k)
    EXPECT_FLOAT_EQ(in.data()[k], feats[0].wire_density[static_cast<std::size_t>(k)]);
  // Last channel is the constant pressure plane.
  const std::int64_t off =
      static_cast<std::int64_t>(FeatureConstants::kInChannels - 1) * pr * pc;
  EXPECT_FLOAT_EQ(in.data()[off], 1.0f);
}

TEST(Features, FillRaisesDensityChannel) {
  const Layout layout = make_design('b', 8, 100.0, 2);
  const WindowExtraction ext = extract_windows(layout);
  FeatureConstants fc;
  const auto feats = build_static_features(ext, fc, 4);
  const int pr = feats[0].padded_rows, pc = feats[0].padded_cols;
  nn::Tensor fill = nn::Tensor::zeros({1, 1, pr, pc});
  fill.data()[5] = 0.2f;
  const nn::Tensor in = assemble_layer_input(
      feats[0], fc, fill, nn::Tensor::zeros({1, 1, pr, pc}));
  EXPECT_NEAR(in.data()[5], feats[0].wire_density[5] + 0.2f, 1e-6);
}

TEST(CmpNetworkTest, EvaluateShapesAndDeterminism) {
  const Layout layout = make_design('a', 8, 100.0, 3);
  const WindowExtraction ext = extract_windows(layout);
  auto surrogate = std::make_shared<CmpSurrogate>(tiny_config(), 1);
  ScoreCoefficients coeffs;
  coeffs.beta_sigma = 1000.0;
  coeffs.beta_sigma_star = 1e5;
  coeffs.beta_ol = 100.0;
  CmpNetwork net(surrogate, ext, coeffs);
  std::vector<GridD> x(3, GridD(8, 8, 0.0));
  const auto e1 = net.evaluate(x, false);
  const auto e2 = net.evaluate(x, false);
  EXPECT_EQ(e1.s_plan, e2.s_plan);
  ASSERT_EQ(e1.heights.size(), 3u);
  EXPECT_EQ(e1.heights[0].rows(), 8u);
  EXPECT_TRUE(e1.grad.empty());
  const auto e3 = net.evaluate(x, true);
  ASSERT_EQ(e3.grad.size(), 3u);
  EXPECT_EQ(e3.grad[0].rows(), 8u);
}

TEST(CmpNetworkTest, GradientMatchesFiniteDifference) {
  // The headline property: backward propagation through extraction layer +
  // UNet + objective layers equals the numerical gradient of S_plan.
  const Layout layout = make_design_a(800.0, 2, 3);
  const WindowExtraction ext = extract_windows(layout);
  auto surrogate = std::make_shared<CmpSurrogate>(tiny_config(), 3);
  ScoreCoefficients coeffs;
  coeffs.beta_sigma = 5e4;
  coeffs.beta_sigma_star = 5e5;
  coeffs.beta_ol = 5e3;
  CmpNetwork net(surrogate, ext, coeffs);

  std::vector<GridD> x(2, GridD(8, 8, 0.0));
  for (std::size_t l = 0; l < 2; ++l)
    for (std::size_t k = 0; k < 64; ++k)
      x[l][k] = 0.3 * ext.layers[l].slack[k];
  const auto base = net.evaluate(x, true);

  // A randomly initialized ReLU UNet is piecewise linear, so per-coordinate
  // finite differences land on kinks; the robust property is the
  // *directional* derivative along random directions, which averages the
  // kink noise out.
  // eps trades kink error (shrinks with eps) against float32 cancellation
  // (grows as eps -> 0); 5e-4 sits in the convergence window (verified by an
  // eps sweep: numeric crosses the analytic value there).
  Rng rng(99);
  const double eps = 5e-4;
  double rel_err_sum = 0.0;
  const int trials = 6;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<GridD> dir(2, GridD(8, 8, 0.0));
    double analytic_dd = 0.0;
    for (std::size_t l = 0; l < 2; ++l)
      for (std::size_t k = 0; k < 64; ++k) {
        dir[l][k] = rng.uniform(-1.0, 1.0);
        analytic_dd += base.grad[l][k] * dir[l][k];
      }
    std::vector<GridD> xp = x, xm = x;
    for (std::size_t l = 0; l < 2; ++l)
      for (std::size_t k = 0; k < 64; ++k) {
        xp[l][k] += eps * dir[l][k];
        xm[l][k] -= eps * dir[l][k];
      }
    const double numeric_dd =
        (net.evaluate(xp, false).s_plan - net.evaluate(xm, false).s_plan) /
        (2.0 * eps);
    // Individual directions can straddle kinks; the aggregate relative error
    // over several random directions is the trustworthy statistic.
    rel_err_sum += std::fabs(analytic_dd - numeric_dd) /
                   std::max({std::fabs(numeric_dd), std::fabs(analytic_dd),
                             1e-2});
    // Sign must always agree (a wrong-sign gradient would break SQP).
    EXPECT_GT(analytic_dd * numeric_dd, 0.0) << "direction trial " << trial;
  }
  EXPECT_LT(rel_err_sum / trials, 0.3);
}

TEST(Datagen, SampleShapesAndFeasibility) {
  const Layout a = make_design('a', 16, 100.0, 3);
  const Layout b = make_design('b', 16, 100.0, 3);
  std::vector<WindowExtraction> sources{extract_windows(a), extract_windows(b)};
  TrainingDataGenerator gen(std::move(sources), CmpSimulator(fast_params()), 5,
                            4);
  const TrainingSample s = gen.generate(8, 12);
  EXPECT_EQ(s.ext.rows, 8u);
  EXPECT_EQ(s.ext.cols, 12u);
  ASSERT_EQ(s.fill.size(), 3u);
  ASSERT_EQ(s.heights.size(), 3u);
  for (std::size_t l = 0; l < 3; ++l)
    for (std::size_t k = 0; k < s.fill[l].size(); ++k) {
      EXPECT_GE(s.fill[l][k], 0.0);
      EXPECT_LE(s.fill[l][k], s.ext.layers[l].slack[k] + 1e-12);
    }
}

TEST(Datagen, DeterministicForSeed) {
  const Layout a = make_design('a', 16, 100.0, 3);
  std::vector<WindowExtraction> s1{extract_windows(a)};
  std::vector<WindowExtraction> s2{extract_windows(a)};
  TrainingDataGenerator g1(std::move(s1), CmpSimulator(fast_params()), 9, 4);
  TrainingDataGenerator g2(std::move(s2), CmpSimulator(fast_params()), 9, 4);
  const TrainingSample x1 = g1.generate(8, 8);
  const TrainingSample x2 = g2.generate(8, 8);
  EXPECT_EQ(x1.ext.layers[0].wire_density, x2.ext.layers[0].wire_density);
  EXPECT_EQ(x1.fill[1], x2.fill[1]);
  EXPECT_EQ(x1.heights[2], x2.heights[2]);
}

TEST(Datagen, RejectsBadConfig) {
  EXPECT_THROW(TrainingDataGenerator({}, CmpSimulator(fast_params()), 1),
               std::invalid_argument);
  const Layout a = make_design_a(800.0, 2, 1);
  const Layout b3 = make_design_b(800.0, 3, 1);
  std::vector<WindowExtraction> mixed{extract_windows(a),
                                      extract_windows(b3)};
  EXPECT_THROW(
      TrainingDataGenerator(std::move(mixed), CmpSimulator(fast_params()), 1),
      std::invalid_argument);
}

TEST(Trainer, LossDecreases) {
  const Layout a = make_design('a', 16, 100.0, 3);
  TrainingDataGenerator gen({extract_windows(a)}, CmpSimulator(fast_params()),
                            11, 4);
  CmpSurrogate surrogate(tiny_config(), 7);
  TrainOptions opt;
  opt.epochs = 3;
  opt.samples_per_epoch = 12;
  opt.grid_rows = opt.grid_cols = 16;
  opt.learning_rate = 3e-3f;
  opt.seed = 2;
  const TrainStats stats = train_surrogate(surrogate, gen, opt);
  ASSERT_EQ(stats.epoch_loss.size(), 3u);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
  EXPECT_EQ(stats.samples_seen, 36);
}

// A run interrupted after epoch 2 and resumed must land on exactly the same
// weights as an uninterrupted run: the `.train` checkpoint carries the Adam
// moments, the shuffle-RNG state, and the in-place-permuted sample order
// (the RNG state alone cannot reproduce the composed shuffles).
TEST(Trainer, ResumeMatchesUninterruptedBitwise) {
  const Layout a = make_design('a', 16, 100.0, 3);
  TrainOptions opt;
  opt.dataset_size = 6;
  opt.grid_rows = opt.grid_cols = 16;
  opt.learning_rate = 3e-3f;
  opt.calibration_samples = 2;
  opt.seed = 2;
  const std::string full = ::testing::TempDir() + "nf_train_full";
  const std::string part = ::testing::TempDir() + "nf_train_part";
  const auto run = [&](const std::string& prefix, int epochs, bool resume) {
    TrainingDataGenerator gen({extract_windows(a)},
                              CmpSimulator(fast_params()), 11, 4);
    CmpSurrogate surrogate(tiny_config(), 7);
    opt.epochs = epochs;
    opt.checkpoint_prefix = prefix;
    opt.resume = resume;
    return train_surrogate(surrogate, gen, opt);
  };
  run(full, 4, false);                              // uninterrupted reference
  run(part, 2, false);                              // "interrupted" after 2
  const TrainStats resumed = run(part, 4, true);    // resume to 4
  EXPECT_EQ(resumed.start_epoch, 2);
  const auto slurp = [](const std::string& p) {
    std::ifstream f(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(f), {});
  };
  const std::string ref = slurp(full + ".weights");
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(ref, slurp(part + ".weights"));
  EXPECT_EQ(slurp(full + ".train"), slurp(part + ".train"));
  for (const char* ext : {".weights", ".meta", ".train"}) {
    std::remove((full + ext).c_str());
    std::remove((part + ext).c_str());
  }
}

TEST(SurrogateIo, SaveLoadRoundTrip) {
  CmpSurrogate s(tiny_config(), 13);
  s.mutable_config().features.height_offset = 123.5;
  s.mutable_config().features.height_scale = 456.25;
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "nf_surrogate_test").string();
  ASSERT_TRUE(save_surrogate(s, prefix).ok());
  auto loaded_res = load_surrogate(prefix);
  ASSERT_TRUE(loaded_res.ok());
  const std::shared_ptr<CmpSurrogate> loaded = *loaded_res;
  EXPECT_EQ(loaded->config().features.height_offset, 123.5);
  EXPECT_EQ(loaded->config().features.height_scale, 456.25);
  EXPECT_EQ(loaded->config().unet.base_channels, 4);
  // Identical forward behaviour.
  const Layout layout = make_design_a(800.0, 2, 1);
  const WindowExtraction ext = extract_windows(layout);
  ScoreCoefficients c;
  c.beta_sigma = c.beta_sigma_star = c.beta_ol = 1e6;
  CmpNetwork n1(std::make_shared<CmpSurrogate>(std::move(s)), ext, c);
  CmpNetwork n2(loaded, ext, c);
  const std::vector<GridD> x(2, GridD(8, 8, 0.05));
  EXPECT_EQ(n1.evaluate(x, false).s_plan, n2.evaluate(x, false).s_plan);
  std::remove((prefix + ".meta").c_str());
  std::remove((prefix + ".weights").c_str());
}

TEST(SurrogateEval, ReportFieldsConsistent) {
  const Layout a = make_design_a(1600.0, 2, 17);
  TrainingDataGenerator gen({extract_windows(a)}, CmpSimulator(fast_params()),
                            17, 4);
  SurrogateConfig cfg = tiny_config();
  CmpSurrogate surrogate(cfg, 23);
  const AccuracyReport rep =
      evaluate_surrogate_accuracy(surrogate, gen, 3, 8, 8);
  EXPECT_EQ(rep.samples, 3);
  EXPECT_GE(rep.mean_rel_error, 0.0);
  EXPECT_GE(rep.max_window_rel_error, rep.mean_rel_error * 0.5);
  EXPECT_GE(rep.frac_windows_below, 0.0);
  EXPECT_LE(rep.frac_windows_below, 1.0);
  EXPECT_EQ(rep.histogram.total(), 64u);
}

}  // namespace
}  // namespace neurfill
