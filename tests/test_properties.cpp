// Parameterized property sweeps (TEST_P) across the numerical substrates:
// convolution gradients over shape/stride/padding grids, DSH invariants over
// the process-parameter space, FFT round trips over sizes, box-QP KKT
// conditions over random problem instances, and simulator monotonicity over
// designs.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "cmp/dsh_model.hpp"
#include "cmp/simulator.hpp"
#include "common/fft.hpp"
#include "common/rng.hpp"
#include "fill/pd_model.hpp"
#include "fill/problem.hpp"
#include "geom/designs.hpp"
#include "nn/ops.hpp"
#include "opt/box_qp.hpp"

#include "gradcheck_util.hpp"

namespace neurfill {
namespace {

// ---------------------------------------------------------------- conv2d

struct ConvCase {
  int batch, cin, cout, hw, kernel, stride, pad;
};

class ConvGradP : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradP, AllInputsGradCheck) {
  const ConvCase c = GetParam();
  using nn::testing::expect_gradcheck_multi;
  using nn::testing::random_tensor;
  const auto fn = [&c](const std::vector<nn::Tensor>& in) {
    return nn::sum(nn::square(nn::conv2d(in[0], in[1], in[2], c.stride, c.pad)));
  };
  std::vector<nn::Tensor> in{
      random_tensor({c.batch, c.cin, c.hw, c.hw}, 11u + static_cast<unsigned>(c.hw)),
      random_tensor({c.cout, c.cin, c.kernel, c.kernel},
                    23u + static_cast<unsigned>(c.kernel)),
      random_tensor({c.cout}, 31u)};
  for (std::size_t i = 0; i < 3; ++i) expect_gradcheck_multi(fn, in, i);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvGradP,
    ::testing::Values(ConvCase{1, 1, 1, 4, 1, 1, 0},   // 1x1 conv
                      ConvCase{1, 2, 3, 5, 3, 1, 1},   // same-padding 3x3
                      ConvCase{2, 3, 2, 6, 3, 1, 0},   // valid conv, batch 2
                      ConvCase{1, 2, 2, 6, 3, 2, 1},   // strided
                      ConvCase{1, 1, 4, 7, 5, 1, 2},   // 5x5 kernel
                      ConvCase{3, 2, 1, 4, 2, 2, 0})); // even kernel, stride 2

// ---------------------------------------------------------------- DSH

class DshPropertyP
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(DshPropertyP, InvariantsHold) {
  const auto [rho, h, p] = GetParam();
  DshParams params;
  params.preston_k = 2.0;
  params.velocity = 1.5;
  const DshRates r = dsh_removal_rates(rho, h, p, params);
  // Rates are non-negative and up >= down (steps only shrink).
  EXPECT_GE(r.down, 0.0);
  EXPECT_GE(r.up, r.down - 1e-12);
  // Pressure scaling is exactly linear.
  const DshRates r2 = dsh_removal_rates(rho, h, 2.0 * p, params);
  EXPECT_NEAR(r2.up, 2.0 * r.up, 1e-9 * r.up);
  EXPECT_NEAR(r2.down, 2.0 * r.down, 1e-9 * std::max(r.down, 1e-12));
  // Monotone in density: denser windows polish slower (up rate).
  const DshRates denser =
      dsh_removal_rates(std::min(rho + 0.1, 1.0), h, p, params);
  EXPECT_LE(denser.up, r.up + 1e-12);
  // Monotone in step height: taller steps mean less down-area polishing.
  const DshRates taller = dsh_removal_rates(rho, h + 100.0, p, params);
  EXPECT_LE(taller.down, r.down + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, DshPropertyP,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.8),     // rho
                       ::testing::Values(0.0, 150.0, 2000.0), // h (A)
                       ::testing::Values(1.0, 5.0)));          // pressure

// ---------------------------------------------------------------- FFT

class FftSizeP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeP, RoundTripAndLinearity) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<std::complex<double>> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    b[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  // Round trip.
  auto ra = a;
  fft(ra, false);
  fft(ra, true);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(ra[i] - a[i]), 0.0, 1e-11);
  // Linearity: F(a + 2b) = F(a) + 2 F(b).
  std::vector<std::complex<double>> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = a[i] + 2.0 * b[i];
  auto fa = a, fb = b, fsum = sum;
  fft(fa, false);
  fft(fb, false);
  fft(fsum, false);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(fsum[i] - (fa[i] + 2.0 * fb[i])), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizeP,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 1024));

// ---------------------------------------------------------------- box QP

class BoxQpRandomP : public ::testing::TestWithParam<int> {};

TEST_P(BoxQpRandomP, KktResidualVanishes) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t n = 8 + static_cast<std::size_t>(rng.uniform_index(25));
  // Random SPD matrix A = M^T M + I.
  std::vector<double> M(n * n);
  for (auto& v : M) v = rng.uniform(-1, 1);
  std::vector<double> A(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) A[i * n + j] += M[k * n + i] * M[k * n + j];
      if (i == j) A[i * n + j] += 1.0;
    }
  const HessVec B = [&A, n](const VecD& v, VecD& out) {
    out.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) out[i] += A[i * n + j] * v[j];
  };
  VecD g(n);
  for (auto& v : g) v = rng.uniform(-3, 3);
  Box box;
  box.lo.assign(n, -0.4);
  box.hi.assign(n, 0.4);
  const BoxQpResult r = solve_box_qp(B, g, box);
  ASSERT_TRUE(box.contains(r.d, 1e-9));
  VecD Bd(n);
  B(r.d, Bd);
  for (std::size_t i = 0; i < n; ++i) {
    double pg = Bd[i] + g[i];
    if (r.d[i] <= box.lo[i] + 1e-9 && pg > 0.0) pg = 0.0;
    if (r.d[i] >= box.hi[i] - 1e-9 && pg < 0.0) pg = 0.0;
    EXPECT_NEAR(pg, 0.0, 2e-4) << "seed " << seed << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxQpRandomP, ::testing::Range(1, 9));

// ---------------------------------------------------------------- simulator

class SimMonotoneP : public ::testing::TestWithParam<char> {};

TEST_P(SimMonotoneP, FillNeverLowersFilledWindowHeight) {
  const char design = GetParam();
  const Layout layout = make_design(design, 10, 100.0, 3);
  const WindowExtraction ext = extract_windows(layout);
  CmpProcessParams pp;
  pp.polish_time_s = 20.0;
  CmpSimulator sim(pp);
  std::vector<GridD> x0(ext.num_layers(), GridD(ext.rows, ext.cols, 0.0));
  const auto h0 = sim.simulate_heights(ext, x0);
  // Fill the three windows with the largest slack on layer 1.
  std::vector<std::size_t> picks;
  for (int t = 0; t < 3; ++t) {
    std::size_t best = 0;
    double bs = -1.0;
    for (std::size_t k = 0; k < ext.layers[1].slack.size(); ++k) {
      bool used = false;
      for (const std::size_t p : picks) used = used || p == k;
      if (!used && ext.layers[1].slack[k] > bs) {
        bs = ext.layers[1].slack[k];
        best = k;
      }
    }
    picks.push_back(best);
  }
  std::vector<GridD> x1 = x0;
  for (const std::size_t k : picks) x1[1][k] = ext.layers[1].slack[k];
  const auto h1 = sim.simulate_heights(ext, x1);
  for (const std::size_t k : picks)
    EXPECT_GE(h1[1][k], h0[1][k] - 1e-9)
        << "design " << design << " window " << k;
}

TEST_P(SimMonotoneP, HeightsFiniteAndBounded) {
  const char design = GetParam();
  const Layout layout = make_design(design, 10, 100.0, 5);
  const WindowExtraction ext = extract_windows(layout);
  CmpSimulator sim;
  const auto res = sim.simulate(ext, {});
  for (const auto& r : res) {
    for (const double v : r.height) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_LT(std::fabs(v), 1e6);
    }
    for (const double v : r.dishing) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, sim.params().dish_coeff + 1e-9);
    }
    for (const double v : r.final_step) EXPECT_GE(v, -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Designs, SimMonotoneP,
                         ::testing::Values('a', 'b', 'c'));

// ---------------------------------------------------------------- PD model

class PdGradientP : public ::testing::TestWithParam<double> {};

TEST_P(PdGradientP, SubgradientMatchesForwardDifference) {
  const double fill_level = GetParam();
  const Layout layout = make_design('b', 8, 100.0, 7);
  const WindowExtraction ext = extract_windows(layout);
  CmpSimulator sim;
  const ScoreCoefficients coeffs = make_coefficients(layout, ext, sim);
  std::vector<GridD> x(ext.num_layers(), GridD(ext.rows, ext.cols, 0.0));
  for (std::size_t l = 0; l < x.size(); ++l)
    for (std::size_t k = 0; k < x[l].size(); ++k)
      x[l][k] = fill_level * ext.layers[l].slack[k];
  const PdScore base = pd_score_and_gradient(ext, x, coeffs);
  const double eps = 1e-7;
  for (const std::size_t k : {3UL, 17UL, 42UL}) {
    for (std::size_t l = 0; l < x.size(); ++l) {
      if (ext.layers[l].slack[k] < 1e-9) continue;
      std::vector<GridD> xp = x;
      xp[l][k] += eps;
      const PdScore up = pd_score_and_gradient(ext, xp, coeffs);
      const double numeric = (up.s_pd - base.s_pd) / eps;
      EXPECT_NEAR(base.grad[l][k], numeric,
                  1e-4 * std::fabs(numeric) + 1e-9)
          << "fill level " << fill_level << " l=" << l << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FillLevels, PdGradientP,
                         ::testing::Values(0.05, 0.3, 0.6, 0.95));

}  // namespace
}  // namespace neurfill
