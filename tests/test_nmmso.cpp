// Tests for the NMMSO multi-modal optimizer on functions with known peaks.

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "opt/nmmso.hpp"

namespace neurfill {
namespace {

Box box1d(double lo, double hi) {
  Box b;
  b.lo = {lo};
  b.hi = {hi};
  return b;
}

/// CEC niching benchmark F1: sin^6(5 pi x) on [0, 1] has five equal maxima
/// at x = 0.1, 0.3, 0.5, 0.7, 0.9.
double equal_maxima(double x) {
  const double s = std::sin(5.0 * M_PI * x);
  return std::pow(s, 6.0);
}

TEST(Nmmso, FindsAllFiveEqualMaxima) {
  const ObjectiveFn f = [](const VecD& x, VecD*) { return equal_maxima(x[0]); };
  NmmsoOptions opt;
  opt.max_evaluations = 6000;
  opt.merge_distance = 0.04;
  opt.seed = 42;
  Nmmso solver(f, box1d(0.0, 1.0), opt);
  const std::vector<Mode> modes = solver.run();
  // Count distinct true peaks hit to within 0.03 with near-optimal value.
  const double peaks[] = {0.1, 0.3, 0.5, 0.7, 0.9};
  int found = 0;
  for (const double p : peaks) {
    for (const Mode& m : modes) {
      if (std::fabs(m.x[0] - p) < 0.03 && m.value > 0.95) {
        ++found;
        break;
      }
    }
  }
  EXPECT_GE(found, 4) << "NMMSO must locate (nearly) all equal maxima";
}

TEST(Nmmso, TwoGaussianPeaks2d) {
  // Two unequal Gaussian bumps; both must be located.
  const ObjectiveFn f = [](const VecD& x, VecD*) {
    const double d1 = (x[0] - 0.25) * (x[0] - 0.25) +
                      (x[1] - 0.25) * (x[1] - 0.25);
    const double d2 = (x[0] - 0.75) * (x[0] - 0.75) +
                      (x[1] - 0.75) * (x[1] - 0.75);
    return std::exp(-d1 / 0.005) + 0.7 * std::exp(-d2 / 0.005);
  };
  Box b;
  b.lo = {0.0, 0.0};
  b.hi = {1.0, 1.0};
  NmmsoOptions opt;
  opt.max_evaluations = 8000;
  opt.merge_distance = 0.08;
  opt.seed = 7;
  Nmmso solver(f, b, opt);
  const auto modes = solver.run();
  bool found1 = false, found2 = false;
  for (const Mode& m : modes) {
    if (std::hypot(m.x[0] - 0.25, m.x[1] - 0.25) < 0.08 && m.value > 0.8)
      found1 = true;
    if (std::hypot(m.x[0] - 0.75, m.x[1] - 0.75) < 0.08 && m.value > 0.55)
      found2 = true;
  }
  EXPECT_TRUE(found1);
  EXPECT_TRUE(found2);
  // Best mode first, and it is the taller peak.
  EXPECT_GT(modes.front().value, 0.9);
}

TEST(Nmmso, RespectsEvaluationBudget) {
  int count = 0;
  const ObjectiveFn f = [&count](const VecD& x, VecD*) {
    ++count;
    return -x[0] * x[0];
  };
  NmmsoOptions opt;
  opt.max_evaluations = 300;
  Nmmso solver(f, box1d(-1.0, 1.0), opt);
  solver.run();
  // Budget may overshoot by at most one batch of swarm evolutions.
  EXPECT_LE(count, opt.max_evaluations + opt.max_evolutions + 2);
  EXPECT_EQ(count, solver.evaluations_used());
}

TEST(Nmmso, DeterministicForSeed) {
  const ObjectiveFn f = [](const VecD& x, VecD*) { return equal_maxima(x[0]); };
  NmmsoOptions opt;
  opt.max_evaluations = 1000;
  opt.seed = 11;
  const auto m1 = Nmmso(f, box1d(0.0, 1.0), opt).run();
  const auto m2 = Nmmso(f, box1d(0.0, 1.0), opt).run();
  ASSERT_EQ(m1.size(), m2.size());
  for (std::size_t i = 0; i < m1.size(); ++i) {
    EXPECT_EQ(m1[i].value, m2[i].value);
    EXPECT_EQ(m1[i].x[0], m2[i].x[0]);
  }
}

TEST(Nmmso, BatchObjectiveMatchesScalarRun) {
  // A batched objective that returns exactly the scalar values must leave
  // the search unchanged: same modes, same evaluation count, and every
  // planned move batch routed through the batch call.
  const ObjectiveFn f = [](const VecD& x, VecD*) { return equal_maxima(x[0]); };
  NmmsoOptions opt;
  opt.max_evaluations = 1000;
  opt.seed = 11;
  const auto scalar = Nmmso(f, box1d(0.0, 1.0), opt).run();

  int batch_calls = 0, batch_points = 0;
  Nmmso batched_solver(f, box1d(0.0, 1.0), opt);
  batched_solver.set_batch_objective(
      [&](const std::vector<VecD>& xs) -> std::vector<double> {
        ++batch_calls;
        batch_points += static_cast<int>(xs.size());
        std::vector<double> v(xs.size());
        for (std::size_t i = 0; i < xs.size(); ++i) v[i] = equal_maxima(xs[i][0]);
        return v;
      });
  const auto batched = batched_solver.run();

  EXPECT_GT(batch_calls, 0);
  EXPECT_GT(batch_points, batch_calls);  // real batches, not all singletons
  ASSERT_EQ(scalar.size(), batched.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i].value, batched[i].value);
    EXPECT_EQ(scalar[i].x[0], batched[i].x[0]);
  }
}

TEST(Nmmso, BatchObjectiveWrongCountThrows) {
  const ObjectiveFn f = [](const VecD& x, VecD*) { return equal_maxima(x[0]); };
  Nmmso solver(f, box1d(0.0, 1.0), NmmsoOptions());
  solver.set_batch_objective(
      [](const std::vector<VecD>&) { return std::vector<double>{}; });
  EXPECT_THROW(solver.run(), std::logic_error);
}

TEST(Nmmso, MergesDuplicateSwarmsOnUnimodal) {
  // On a single smooth peak the merge rules must keep the swarm count low.
  const ObjectiveFn f = [](const VecD& x, VecD*) {
    return -((x[0] - 0.4) * (x[0] - 0.4));
  };
  NmmsoOptions opt;
  opt.max_evaluations = 3000;
  opt.merge_distance = 0.05;
  opt.seed = 3;
  Nmmso solver(f, box1d(0.0, 1.0), opt);
  const auto modes = solver.run();
  EXPECT_NEAR(modes.front().x[0], 0.4, 0.02);
  // Immigrants continuously add swarms, but merging should prevent blowup.
  EXPECT_LE(modes.size(), 40u);
}

TEST(Nmmso, RejectsBadBox) {
  const ObjectiveFn f = [](const VecD&, VecD*) { return 0.0; };
  Box bad;
  bad.lo = {1.0};
  bad.hi = {0.0};
  EXPECT_THROW(Nmmso(f, bad, NmmsoOptions()), std::invalid_argument);
}

}  // namespace
}  // namespace neurfill
