#!/usr/bin/env bash
# Tiled crash-resume acceptance test (docs/fullchip.md): SIGKILL a tiled
# nf_fill run once the first tile record lands in the store, relaunch with
# --resume, and require the final full-chip GLF to be byte-identical to an
# uninterrupted run at the same seed/threads.
#
# Usage: fullchip_resume_kill_test.sh <nf_gen> <nf_fill> [workdir]
set -u

NF_GEN="${1:?usage: fullchip_resume_kill_test.sh <nf_gen> <nf_fill> [workdir]}"
NF_FILL="${2:?usage: fullchip_resume_kill_test.sh <nf_gen> <nf_fill> [workdir]}"
WORK="${3:-$(mktemp -d)}"
mkdir -p "$WORK"

fail() { echo "FAIL: $*" >&2; exit 1; }

# A rectangular multi-tile fixture: 18x12 windows over 3x2 tiles of 6.
"$NF_GEN" a "$WORK/in.glf" --windows 18x12 --seed 5 >/dev/null 2>&1 \
  || fail "nf_gen could not write the fixture layout"

COMMON_ARGS=(--method lin --tiled --tile-windows 6 --threads 2)

# Reference: one uninterrupted tiled run.
"$NF_FILL" "$WORK/in.glf" "$WORK/ref.glf" "${COMMON_ARGS[@]}" \
  --tile-store "$WORK/ref.tiles" >/dev/null 2>&1 \
  || fail "reference tiled run failed"

# Victim: same run, SIGKILLed as soon as the first durable tile record
# exists (i.e. the tile sweep is genuinely mid-flight).
rm -rf "$WORK/kill.tiles" "$WORK/kill.glf"
"$NF_FILL" "$WORK/in.glf" "$WORK/kill.glf" "${COMMON_ARGS[@]}" \
  --tile-store "$WORK/kill.tiles" >/dev/null 2>&1 &
VICTIM=$!
# Poll while the victim lives; boundedness comes from the CTest TIMEOUT.
while kill -0 "$VICTIM" 2>/dev/null; do
  if ls "$WORK/kill.tiles"/tile_*.nfcp >/dev/null 2>&1; then break; fi
  sleep 0.02
done
kill -9 "$VICTIM" 2>/dev/null
wait "$VICTIM" 2>/dev/null
KILL_RC=$?

[ -d "$WORK/kill.tiles" ] || fail "no tile store was created before the kill"
if [ "$KILL_RC" -ne 137 ]; then
  echo "note: victim finished (rc=$KILL_RC) before SIGKILL landed" >&2
fi

# Resume: completed tiles load from the store, the rest re-solve.
"$NF_FILL" "$WORK/in.glf" "$WORK/kill.glf" "${COMMON_ARGS[@]}" \
  --tile-store "$WORK/kill.tiles" --resume >/dev/null 2>&1 \
  || fail "tiled resume run failed"

cmp -s "$WORK/ref.glf" "$WORK/kill.glf" \
  || fail "resumed tiled fill differs from the uninterrupted run"

echo "PASS: resumed tiled fill is byte-identical to the uninterrupted run"
exit 0
