#!/usr/bin/env bash
# Crash-resume acceptance test (docs/robustness.md): SIGKILL an nf_fill run
# mid-optimization, relaunch it with --resume, and require the final fill to
# be byte-identical to an uninterrupted run at the same seed/threads.
#
# Usage: resume_kill_test.sh <nf_gen> <nf_fill> [workdir]
set -u

NF_GEN="${1:?usage: resume_kill_test.sh <nf_gen> <nf_fill> [workdir]}"
NF_FILL="${2:?usage: resume_kill_test.sh <nf_gen> <nf_fill> [workdir]}"
WORK="${3:-$(mktemp -d)}"
mkdir -p "$WORK"

fail() { echo "FAIL: $*" >&2; exit 1; }

# A deterministic fixture: mm is the method with the most resumable state
# (NMMSO phase + multi-start SQP), 2 threads exercises the deterministic
# parallel runtime.
"$NF_GEN" b "$WORK/in.glf" --windows 10 --seed 3 >/dev/null 2>&1 \
  || fail "nf_gen could not write the fixture layout"

COMMON_ARGS=(--method mm --threads 2 --surrogate "$WORK/reduced")

# Reference: one uninterrupted run.  (The first run also quick-trains the
# reduced surrogate into $WORK, so every later run loads identical weights.)
"$NF_FILL" "$WORK/in.glf" "$WORK/ref.glf" "${COMMON_ARGS[@]}" \
  --snapshot "$WORK/ref.snap" >/dev/null 2>&1 \
  || fail "reference run failed"

# Victim: same run, SIGKILLed as soon as the first snapshot lands (i.e. the
# optimization is genuinely mid-flight).
rm -f "$WORK/kill.snap" "$WORK/kill.glf"
"$NF_FILL" "$WORK/in.glf" "$WORK/kill.glf" "${COMMON_ARGS[@]}" \
  --snapshot "$WORK/kill.snap" >/dev/null 2>&1 &
VICTIM=$!
# Wait for the first snapshot as long as the victim is alive: under TSan the
# run is ~10x slower, so a fixed wall-clock cap here would give up too early.
# Boundedness comes from the CTest TIMEOUT on this test.
while kill -0 "$VICTIM" 2>/dev/null && ! [ -s "$WORK/kill.snap" ]; do
  sleep 0.05
done
kill -9 "$VICTIM" 2>/dev/null
wait "$VICTIM" 2>/dev/null
KILL_RC=$?

[ -s "$WORK/kill.snap" ] || fail "no snapshot was written before the kill"
if [ "$KILL_RC" -ne 137 ]; then
  # The run won the race and completed; the resume below still must
  # reproduce the reference, but note it for the log.
  echo "note: victim finished (rc=$KILL_RC) before SIGKILL landed" >&2
fi

# Resume from whatever the last durable snapshot was.
"$NF_FILL" "$WORK/in.glf" "$WORK/kill.glf" "${COMMON_ARGS[@]}" \
  --snapshot "$WORK/kill.snap" --resume >/dev/null 2>&1 \
  || fail "resume run failed"

cmp -s "$WORK/ref.glf" "$WORK/kill.glf" \
  || fail "resumed fill differs from the uninterrupted run"

echo "PASS: resumed fill is byte-identical to the uninterrupted run"
exit 0
