// Tests for the GEMM kernels (against a naive reference), the report/score
// assembly, fill-insertion area realization, and GLF round-trip fuzzing.

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fill/report.hpp"
#include "geom/designs.hpp"
#include "geom/glf_io.hpp"
#include "nn/gemm.hpp"

namespace neurfill {
namespace {

// ---------------------------------------------------------------- gemm

void naive_gemm(int M, int N, int K, const float* A, const float* B,
                float* C, bool ta, bool tb) {
  for (int i = 0; i < M; ++i)
    for (int j = 0; j < N; ++j) {
      double acc = 0.0;
      for (int k = 0; k < K; ++k) {
        const float a = ta ? A[k * M + i] : A[i * K + k];
        const float b = tb ? B[j * K + k] : B[k * N + j];
        acc += static_cast<double>(a) * static_cast<double>(b);
      }
      C[i * N + j] = static_cast<float>(acc);
    }
}

struct GemmCase {
  int M, N, K;
};

class GemmP : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmP, AllVariantsMatchNaive) {
  const auto [M, N, K] = GetParam();
  Rng rng(static_cast<std::uint64_t>(M * 73 + N * 7 + K));
  std::vector<float> A(static_cast<std::size_t>(std::max(M, K)) *
                       std::max(K, M));
  std::vector<float> B(static_cast<std::size_t>(std::max(K, N)) *
                       std::max(N, K));
  for (auto& v : A) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : B) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> C(static_cast<std::size_t>(M) * N),
      ref(static_cast<std::size_t>(M) * N);

  // nn: A (MxK) * B (KxN)
  nn::gemm_nn(M, N, K, A.data(), B.data(), C.data(), false);
  naive_gemm(M, N, K, A.data(), B.data(), ref.data(), false, false);
  for (std::size_t i = 0; i < C.size(); ++i) EXPECT_NEAR(C[i], ref[i], 1e-4);

  // nt: A (MxK) * B(NxK)^T
  nn::gemm_nt(M, N, K, A.data(), B.data(), C.data(), false);
  naive_gemm(M, N, K, A.data(), B.data(), ref.data(), false, true);
  for (std::size_t i = 0; i < C.size(); ++i) EXPECT_NEAR(C[i], ref[i], 1e-4);

  // tn: A (KxM)^T * B (KxN)
  nn::gemm_tn(M, N, K, A.data(), B.data(), C.data(), false);
  naive_gemm(M, N, K, A.data(), B.data(), ref.data(), true, false);
  for (std::size_t i = 0; i < C.size(); ++i) EXPECT_NEAR(C[i], ref[i], 1e-4);
}

TEST_P(GemmP, AccumulateAddsToExisting) {
  const auto [M, N, K] = GetParam();
  Rng rng(5);
  std::vector<float> A(static_cast<std::size_t>(M) * K),
      B(static_cast<std::size_t>(K) * N);
  for (auto& v : A) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : B) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> once(static_cast<std::size_t>(M) * N);
  nn::gemm_nn(M, N, K, A.data(), B.data(), once.data(), false);
  std::vector<float> twice = once;
  nn::gemm_nn(M, N, K, A.data(), B.data(), twice.data(), true);
  for (std::size_t i = 0; i < once.size(); ++i)
    EXPECT_NEAR(twice[i], 2.0f * once[i], 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmP,
                         ::testing::Values(GemmCase{1, 1, 1},
                                           GemmCase{3, 5, 2},
                                           GemmCase{8, 8, 8},
                                           GemmCase{16, 3, 9},
                                           GemmCase{2, 31, 17}));

// ---------------------------------------------------------------- report

TEST(Report, OverallScoreComposition) {
  PlanarityMetrics pm;
  pm.sigma = 25.0;
  pm.sigma_star = 100.0;
  pm.outliers = 0.5;
  ScoreCoefficients c;
  c.beta_sigma = 100.0;
  c.beta_sigma_star = 400.0;
  c.beta_ol = 1.0;
  c.beta_ov = 1000.0;
  c.beta_fa = 500.0;
  c.beta_fs = 1000.0;
  c.beta_t = 100.0;
  c.beta_m = 1e9;
  const QualityBreakdown q = assemble_quality(pm, 100.0, 50.0, c);
  const OverallScore o = assemble_overall(q, 250.0, 25.0, 5e8, c);
  EXPECT_NEAR(o.s_fs, 0.75, 1e-12);
  EXPECT_NEAR(o.s_t, 0.75, 1e-12);
  EXPECT_NEAR(o.s_m, 0.5, 1e-12);
  EXPECT_NEAR(o.overall,
              q.s_qual + 0.05 * 0.75 + 0.15 * 0.75 + 0.05 * 0.5, 1e-12);
}

TEST(Report, ScoreFillResultEndToEnd) {
  const Layout layout = make_design('a', 8, 100.0, 3);
  WindowExtraction ext = extract_windows(layout);
  CmpSimulator sim;
  const ScoreCoefficients coeffs = make_coefficients(layout, ext, sim);
  FillProblem problem(ext, sim, coeffs);
  FillRunResult run;
  run.method = "test";
  run.x = problem.zero_fill();
  run.runtime_s = 1.0;
  const MethodReport rep = score_fill_result(problem, layout, run);
  // Zero fill: fill-amount score 1, fill file nearly empty -> fs score ~1.
  EXPECT_NEAR(rep.score.quality.s_fa, 1.0, 1e-12);
  EXPECT_GT(rep.score.s_fs, 0.9);
  EXPECT_GT(rep.memory_bytes, 0.0);
  // Unfilled design scores 0 on sigma by coefficient construction.
  EXPECT_NEAR(rep.score.quality.s_sigma, 0.0, 1e-9);
}

TEST(Report, PrintersProduceAlignedRows) {
  std::ostringstream os;
  print_table3_header(os);
  MethodReport rep;
  rep.method = "X";
  print_table3_row(os, "A", rep);
  const std::string text = os.str();
  EXPECT_NE(text.find("Design"), std::string::npos);
  EXPECT_NE(text.find("Overall"), std::string::npos);
  // Two lines, same prefix width structure.
  const auto nl = text.find('\n');
  ASSERT_NE(nl, std::string::npos);
  EXPECT_GT(text.size(), nl + 10);
}

// ---------------------------------------------------------------- insertion

class InsertAreaP : public ::testing::TestWithParam<double> {};

TEST_P(InsertAreaP, RealizedAreaTracksRequest) {
  const double level = GetParam();
  Layout layout = make_design('b', 8, 100.0, 2);
  const WindowExtraction ext = extract_windows(layout);
  std::vector<GridD> x;
  double requested = 0.0;
  for (const auto& l : ext.layers) {
    GridD g(ext.rows, ext.cols, 0.0);
    for (std::size_t k = 0; k < g.size(); ++k) {
      g[k] = level * l.slack[k];
      requested += g[k] * ext.window_area_um2();
    }
    x.push_back(std::move(g));
  }
  const std::size_t before = layout.total_dummy_count();
  insert_dummies(layout, ext, x);
  EXPECT_GT(layout.total_dummy_count(), before);
  double realized = 0.0;
  for (const auto& l : layout.layers)
    for (const auto& d : l.dummies) realized += d.area();
  // Adaptive tiles realize the area to within ~12% (min-size windows are
  // skipped, saturated ones clamp).
  EXPECT_NEAR(realized, requested, 0.12 * requested + 1.0);
  // No dummy may leave its window or the die.
  for (const auto& l : layout.layers)
    for (const auto& d : l.dummies) {
      EXPECT_GE(d.x0, 0.0);
      EXPECT_LE(d.x1, layout.width_um + 1e-9);
      EXPECT_GE(d.y0, 0.0);
      EXPECT_LE(d.y1, layout.height_um + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(FillLevels, InsertAreaP,
                         ::testing::Values(0.1, 0.35, 0.7, 1.0));

// ---------------------------------------------------------------- GLF fuzz

class GlfFuzzP : public ::testing::TestWithParam<int> {};

TEST_P(GlfFuzzP, RandomLayoutRoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Layout l;
  l.name = "fuzz" + std::to_string(GetParam());
  l.width_um = rng.uniform(100.0, 5000.0);
  l.height_um = rng.uniform(100.0, 5000.0);
  l.layers.resize(1 + rng.uniform_index(4));
  for (auto& layer : l.layers) {
    layer.name = "m" + std::to_string(rng.uniform_index(9));
    const std::size_t nw = rng.uniform_index(200);
    for (std::size_t i = 0; i < nw; ++i) {
      const double x0 = rng.uniform(0.0, l.width_um - 1.0);
      const double y0 = rng.uniform(0.0, l.height_um - 1.0);
      layer.wires.emplace_back(x0, y0,
                               x0 + rng.uniform(0.01, l.width_um - x0),
                               y0 + rng.uniform(0.01, l.height_um - y0));
    }
    const std::size_t nd = rng.uniform_index(50);
    for (std::size_t i = 0; i < nd; ++i) {
      const double x0 = rng.uniform(0.0, l.width_um - 1.0);
      const double y0 = rng.uniform(0.0, l.height_um - 1.0);
      layer.dummies.emplace_back(x0, y0, x0 + 0.5, y0 + 0.5);
    }
  }
  std::stringstream ss;
  write_glf(ss, l);
  const Layout r = read_glf(ss);
  ASSERT_EQ(r.layers.size(), l.layers.size());
  for (std::size_t i = 0; i < l.layers.size(); ++i) {
    ASSERT_EQ(r.layers[i].wires.size(), l.layers[i].wires.size());
    ASSERT_EQ(r.layers[i].dummies.size(), l.layers[i].dummies.size());
    for (std::size_t k = 0; k < l.layers[i].wires.size(); ++k) {
      EXPECT_NEAR(r.layers[i].wires[k].x0, l.layers[i].wires[k].x0, 1e-6);
      EXPECT_NEAR(r.layers[i].wires[k].y1, l.layers[i].wires[k].y1, 1e-6);
    }
  }
  EXPECT_EQ(glf_encoded_size(l), ss.str().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlfFuzzP, ::testing::Range(1, 7));

}  // namespace
}  // namespace neurfill
