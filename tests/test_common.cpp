// Unit tests for the common substrate: Grid2D, Rng, FFT, statistics.

#include <cmath>
#include <complex>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/fft.hpp"
#include "common/grid2d.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace neurfill {
namespace {

TEST(Grid2D, IndexingRoundTrip) {
  Grid2D<int> g(3, 4, 0);
  int v = 0;
  for (std::size_t i = 0; i < g.rows(); ++i)
    for (std::size_t j = 0; j < g.cols(); ++j) g(i, j) = v++;
  // Flat order must be row major.
  for (std::size_t k = 0; k < g.size(); ++k)
    EXPECT_EQ(g[k], static_cast<int>(k));
}

TEST(Grid2D, FillAndEquality) {
  GridD a(2, 2, 1.5);
  GridD b(2, 2, 1.5);
  EXPECT_EQ(a, b);
  b(1, 1) = 2.0;
  EXPECT_FALSE(a == b);
  a.fill(0.0);
  for (const double v : a) EXPECT_EQ(v, 0.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexUnbiasedish) {
  Rng r(11);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_index(5)];
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = r.normal(3.0, 2.0);
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 3.0, 0.1);
  EXPECT_NEAR(s.stddev, 2.0, 0.1);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng a(5);
  Rng b = a.split();
  Rng c = a.split();
  EXPECT_NE(b.next_u64(), c.next_u64());
}

TEST(Fft, MatchesNaiveDft) {
  Rng rng(3);
  const std::size_t n = 16;
  std::vector<std::complex<double>> x(n);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto fx = x;
  fft(fx, false);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0, 0};
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * M_PI * static_cast<double>(k * t) / n;
      acc += x[t] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(std::abs(fx[k] - acc), 0.0, 1e-9);
  }
}

TEST(Fft, RoundTripIdentity) {
  Rng rng(4);
  std::vector<std::complex<double>> x(64);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto y = x;
  fft(y, false);
  fft(y, true);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-12);
}

TEST(Fft, ParsevalEnergyConservation) {
  Rng rng(5);
  std::vector<std::complex<double>> x(32);
  double e_time = 0.0;
  for (auto& v : x) {
    v = {rng.uniform(-1, 1), 0.0};
    e_time += std::norm(v);
  }
  auto fx = x;
  fft(fx, false);
  double e_freq = 0.0;
  for (const auto& v : fx) e_freq += std::norm(v);
  EXPECT_NEAR(e_time, e_freq / 32.0, 1e-10);
}

TEST(Fft2d, RoundTrip) {
  Rng rng(6);
  std::vector<std::complex<double>> x(8 * 16);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto y = x;
  fft2d(y, 8, 16, false);
  fft2d(y, 8, 16, true);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-12);
}

TEST(CircularConvolver, DeltaKernelIsIdentity) {
  GridD kernel(8, 8, 0.0);
  kernel(0, 0) = 1.0;
  CircularConvolver conv(kernel);
  Rng rng(8);
  GridD in(8, 8, 0.0);
  for (auto& v : in) v = rng.uniform(-1, 1);
  const GridD out = conv.apply(in);
  for (std::size_t k = 0; k < in.size(); ++k) EXPECT_NEAR(out[k], in[k], 1e-10);
}

TEST(CircularConvolver, ShiftKernelShiftsInput) {
  GridD kernel(8, 8, 0.0);
  kernel(1, 0) = 1.0;  // shift down by one row (wrap within padded grid)
  CircularConvolver conv(kernel);
  GridD in(8, 8, 0.0);
  in(2, 3) = 1.0;
  const GridD out = conv.apply(in);
  EXPECT_NEAR(out(3, 3), 1.0, 1e-10);
  EXPECT_NEAR(out(2, 3), 0.0, 1e-10);
}

TEST(ConvolveSmall, MatchesManualConvolution) {
  GridD in(4, 4, 0.0);
  in(1, 1) = 2.0;
  in(2, 3) = -1.0;
  GridD k(3, 3, 0.0);
  k(1, 1) = 0.5;
  k(0, 1) = 0.25;
  k(2, 1) = 0.25;
  const GridD out = convolve_small(in, k);
  EXPECT_NEAR(out(1, 1), 1.0, 1e-12);
  EXPECT_NEAR(out(2, 1), 0.5, 1e-12);   // from in(1,1) via k(0? ...)
  EXPECT_NEAR(out(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(out(2, 3), -0.5, 1e-12);
}

TEST(ConvolveSmall, SumPreservedByNormalizedKernelInterior) {
  // A normalized kernel on an all-ones grid returns ones in the interior.
  GridD in(6, 6, 1.0);
  GridD k(3, 3, 1.0 / 9.0);
  const GridD out = convolve_small(in, k);
  EXPECT_NEAR(out(3, 3), 1.0, 1e-12);
  // Corners lose mass to the zero boundary.
  EXPECT_LT(out(0, 0), 1.0);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_NEAR(s.mean, 2.5, 1e-12);
  EXPECT_NEAR(s.variance, 1.25, 1e-12);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_NEAR(percentile(xs, 50.0), 5.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 100.0), 10.0, 1e-12);
}

TEST(ErrorTaxonomy, EveryCodeHasADistinctStableName) {
  // Every ErrorCode must format to a distinct, machine-greppable name —
  // the serve protocol ships these strings to clients ("overloaded",
  // "queue_full", "retry_exhausted" are part of the wire contract).
  const ErrorCode codes[] = {
      ErrorCode::kNonConverged,      ErrorCode::kNumericPoison,
      ErrorCode::kIo,                ErrorCode::kNotFound,
      ErrorCode::kCorrupt,           ErrorCode::kDeadlineExceeded,
      ErrorCode::kInterrupted,       ErrorCode::kResourceExhausted,
      ErrorCode::kInvalidArgument,   ErrorCode::kOverloaded,
      ErrorCode::kQueueFull,         ErrorCode::kRetryExhausted,
  };
  std::set<std::string> names;
  for (const ErrorCode code : codes) {
    const std::string name = error_code_name(code);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
  }
  EXPECT_EQ(std::string(error_code_name(ErrorCode::kOverloaded)),
            "overloaded");
  EXPECT_EQ(std::string(error_code_name(ErrorCode::kQueueFull)),
            "queue_full");
  EXPECT_EQ(std::string(error_code_name(ErrorCode::kRetryExhausted)),
            "retry_exhausted");
}

TEST(ErrorTaxonomy, RoundTripsThroughWhatFormatting) {
  // An Error thrown as ErrorException must survive both ways: the typed
  // `err` carries the code, and the generic what() string embeds the
  // "[subsystem] code: message" rendering so a plain catch still logs the
  // full context.
  const ErrorCode codes[] = {
      ErrorCode::kOverloaded, ErrorCode::kQueueFull,
      ErrorCode::kRetryExhausted, ErrorCode::kIo, ErrorCode::kCorrupt,
  };
  for (const ErrorCode code : codes) {
    const Error err(code, "serve.test", "round trip");
    try {
      throw ErrorException(err);
    } catch (const ErrorException& e) {
      EXPECT_EQ(e.err.code, code);
      const std::string what = e.what();
      EXPECT_EQ(what, err.to_string());
      EXPECT_NE(what.find(error_code_name(code)), std::string::npos);
      EXPECT_NE(what.find("[serve.test]"), std::string::npos);
      EXPECT_NE(what.find("round trip"), std::string::npos);
    }
  }
}

TEST(Stats, HistogramClampsAndCounts) {
  Histogram h(0.0, 1.0, 10);
  h.add(-0.5);  // clamps into bucket 0
  h.add(0.05);
  h.add(0.95);
  h.add(2.0);  // clamps into last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts.front(), 2u);
  EXPECT_EQ(h.counts.back(), 2u);
  EXPECT_NEAR(h.fraction_below(0.5), 0.5, 1e-12);
}

}  // namespace
}  // namespace neurfill
