// End-to-end integration tests: the full NeurFill framework (Fig. 7) on a
// small synthetic design with a briefly pre-trained surrogate.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "fill/neurfill.hpp"
#include "fill/report.hpp"
#include "geom/designs.hpp"
#include "runtime/parallel.hpp"
#include "surrogate/trainer.hpp"

namespace neurfill {
namespace {

CmpProcessParams fast_params() {
  CmpProcessParams p;
  p.polish_time_s = 12.0;
  p.dt_s = 1.0;
  return p;
}

/// Shared fixture: one design, one briefly-trained surrogate.  Training a
/// tiny UNet on 16x16 assembled layouts takes well under a second per epoch
/// on one core.
class NeurFillPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    layout_ = new Layout(make_design('a', 16, 100.0, 3));
    WindowExtraction ext = extract_windows(*layout_);
    CmpSimulator sim(fast_params());
    ScoreCoefficients coeffs = make_coefficients(*layout_, ext, sim);
    problem_ = new FillProblem(ext, sim, coeffs);

    SurrogateConfig cfg;
    cfg.unet.base_channels = 4;
    cfg.unet.depth = 2;
    auto surrogate = std::make_shared<CmpSurrogate>(cfg, 21);
    TrainingDataGenerator gen({ext}, sim, 31, 4);
    TrainOptions topt;
    topt.epochs = 8;
    topt.dataset_size = 60;
    topt.grid_rows = topt.grid_cols = 16;
    topt.learning_rate = 3e-3f;
    train_surrogate(*surrogate, gen, topt);
    surrogate_ = new std::shared_ptr<CmpSurrogate>(surrogate);
    network_ = new CmpNetwork(surrogate, ext, coeffs);
    calibrate_network(*network_, *problem_);
  }
  static void TearDownTestSuite() {
    delete network_;
    delete surrogate_;
    delete problem_;
    delete layout_;
  }

  static Layout* layout_;
  static FillProblem* problem_;
  static std::shared_ptr<CmpSurrogate>* surrogate_;
  static CmpNetwork* network_;
};

Layout* NeurFillPipeline::layout_ = nullptr;
FillProblem* NeurFillPipeline::problem_ = nullptr;
std::shared_ptr<CmpSurrogate>* NeurFillPipeline::surrogate_ = nullptr;
CmpNetwork* NeurFillPipeline::network_ = nullptr;

TEST_F(NeurFillPipeline, TrainedSurrogateTracksSimulator) {
  // The surrogate regresses centered topography; after the short training
  // its mean absolute error on the design must stay well below the
  // simulator topography's peak-to-peak range.
  const std::vector<GridD> x = problem_->zero_fill();
  auto sim_h = problem_->simulator().simulate_heights(problem_->extraction(), x);
  double lo = 1e300, hi = -1e300;
  for (auto& h : sim_h) {
    double mean_h = 0.0;
    for (const double v : h) mean_h += v;
    mean_h /= static_cast<double>(h.size());
    for (auto& v : h) {
      v -= mean_h;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const auto net_h = network_->predict_heights(x);
  double err = 0.0;
  std::size_t n = 0;
  for (std::size_t l = 0; l < sim_h.size(); ++l)
    for (std::size_t k = 0; k < sim_h[l].size(); ++k) {
      err += std::fabs(net_h[l][k] - sim_h[l][k]);
      ++n;
    }
  const double mean_err = err / static_cast<double>(n);
  EXPECT_LT(mean_err / (hi - lo), 0.2);
}

TEST_F(NeurFillPipeline, NetworkObjectiveConsistent) {
  long evals = 0;
  const ObjectiveFn obj = make_network_objective(*problem_, *network_, &evals);
  const VecD v = problem_->flatten(problem_->zero_fill());
  const double f = obj(v, nullptr);
  const CmpNetwork::Eval net = network_->evaluate(problem_->zero_fill(), false);
  const PdScore pd = pd_score_and_gradient(problem_->extraction(),
                                           problem_->zero_fill(),
                                           problem_->coefficients());
  EXPECT_NEAR(f, -(net.s_plan + pd.s_pd), 1e-12);
  EXPECT_EQ(evals, 1);
  VecD g;
  obj(v, &g);
  EXPECT_EQ(g.size(), v.size());
  EXPECT_EQ(evals, 2);
}

TEST_F(NeurFillPipeline, PkbImprovesTrueQuality) {
  NeurFillOptions opt;
  opt.sqp.max_iterations = 15;
  opt.pkb_steps = 6;
  const FillRunResult res = neurfill_pkb(*problem_, *network_, opt);
  EXPECT_EQ(res.method, "NeurFill (PKB)");
  EXPECT_GT(res.objective_evaluations, 6);
  // Feasibility.
  const Box b = problem_->bounds();
  const VecD v = problem_->flatten(res.x);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_GE(v[i], -1e-9);
    EXPECT_LE(v[i], b.hi[i] + 1e-9);
  }
  // Ground-truth quality improves over no fill.
  const double q0 = problem_->evaluate(problem_->zero_fill()).s_qual;
  const double q1 = problem_->evaluate(res.x).s_qual;
  EXPECT_GT(q1, q0);
}

TEST_F(NeurFillPipeline, MmAtLeastMatchesSurrogateObjectiveOfPkb) {
  NeurFillOptions opt;
  opt.sqp.max_iterations = 10;
  opt.pkb_steps = 5;
  opt.nmmso.max_evaluations = 60;
  opt.mm_starts = 2;
  const FillRunResult pkb = neurfill_pkb(*problem_, *network_, opt);
  const FillRunResult mm = neurfill_mm(*problem_, *network_, opt);
  EXPECT_EQ(mm.method, "NeurFill (MM)");
  // MM's start pool includes the PKB start, so on the surrogate objective it
  // can only do at least as well as PKB (up to line-search wiggle).
  const ObjectiveFn obj = make_network_objective(*problem_, *network_);
  const double f_pkb = obj(problem_->flatten(pkb.x), nullptr);
  const double f_mm = obj(problem_->flatten(mm.x), nullptr);
  EXPECT_LE(f_mm, f_pkb + 1e-6);
}

TEST_F(NeurFillPipeline, BatchedMmMatchesAutogradPathAcrossThreadCounts) {
  // Full-drive determinism gate for cross-candidate batching: the MM flow
  // (batched NMMSO move evaluations, batched PKB sweep, prepacked session
  // weights) must produce byte-identical fills to the --no-fast-inference
  // autograd path, at 1, 2, and 8 threads.
  NeurFillOptions opt;
  opt.sqp.max_iterations = 4;
  opt.pkb_steps = 4;
  opt.nmmso.max_evaluations = 30;
  opt.mm_starts = 2;

  (*surrogate_)->set_fast_inference(false);
  CmpNetwork slow(*surrogate_, problem_->extraction(),
                  problem_->coefficients());
  (*surrogate_)->set_fast_inference(true);
  slow.set_calibration(network_->sigma_calibration(),
                       network_->sigma_star_calibration(),
                       network_->outlier_calibration());

  std::vector<VecD> fills;
  long fast_evals = 0, slow_evals = 0;
  for (const int threads : {1, 2, 8}) {
    runtime::set_thread_count(threads);
    const FillRunResult fast_res = neurfill_mm(*problem_, *network_, opt);
    const FillRunResult slow_res = neurfill_mm(*problem_, slow, opt);
    fast_evals = fast_res.objective_evaluations;
    slow_evals = slow_res.objective_evaluations;
    fills.push_back(problem_->flatten(fast_res.x));
    fills.push_back(problem_->flatten(slow_res.x));
  }
  runtime::set_thread_count(0);  // restore the environment default

  // Batched and serial paths must also agree on the evaluation count (the
  // batch accounts one evaluation per candidate).
  EXPECT_EQ(fast_evals, slow_evals);
  for (std::size_t r = 1; r < fills.size(); ++r) {
    ASSERT_EQ(fills[0].size(), fills[r].size());
    for (std::size_t i = 0; i < fills[0].size(); ++i)
      ASSERT_EQ(fills[0][i], fills[r][i]) << "run " << r << " var " << i;
  }
}

TEST_F(NeurFillPipeline, ReportScoresAreAssembled) {
  NeurFillOptions opt;
  opt.sqp.max_iterations = 5;
  opt.pkb_steps = 4;
  const FillRunResult res = neurfill_pkb(*problem_, *network_, opt);
  const MethodReport rep = score_fill_result(*problem_, *layout_, res);
  EXPECT_EQ(rep.method, "NeurFill (PKB)");
  EXPECT_GT(rep.score.overall, 0.0);
  EXPECT_LE(rep.score.quality.s_qual, 1.0 + 1e-9);
  EXPECT_GT(rep.file_size_bytes, 0.0);
  EXPECT_GT(rep.memory_bytes, 0.0);
  EXPECT_GE(rep.truth.delta_h, 0.0);
}

TEST_F(NeurFillPipeline, CalibrationAnchorsAndMonotonicity) {
  // The log-space power fit is exact at the zero-fill anchor whenever a
  // calibration was fitted; it is exact at the full-fill anchor too when
  // the exponent did not clamp (a weak surrogate can be nearly fill-blind,
  // needing an exponent beyond the guard).  In every case b > 0 preserves
  // the fill-improves-sigma direction the optimizer relies on.
  const WindowExtraction& ext = problem_->extraction();
  const std::vector<GridD> zero = problem_->zero_fill();
  std::vector<GridD> full;
  for (const auto& l : ext.layers) full.push_back(l.slack);

  const auto& cal = network_->sigma_calibration();
  EXPECT_GT(cal.b, 0.0);

  const PlanarityMetrics t0 = compute_planarity(
      problem_->simulator().simulate_heights(ext, zero));
  const CmpNetwork::Eval c0 = network_->evaluate(zero, false);
  const bool fitted = cal.b != 1.0 || cal.a != 0.0;
  if (fitted) {
    EXPECT_NEAR(c0.sigma, t0.sigma, 2e-2 * std::max(t0.sigma, 1.0));
  }

  const PlanarityMetrics t1 = compute_planarity(
      problem_->simulator().simulate_heights(ext, full));
  const CmpNetwork::Eval c1 = network_->evaluate(full, false);
  if (fitted && cal.b > 0.11 && cal.b < 9.9) {
    // Unclamped: both anchors exact.
    EXPECT_NEAR(c1.sigma, t1.sigma, 2e-2 * std::max(t1.sigma, 1.0));
  }
  // Monotonicity: the simulator says full fill flattens this design, and
  // the calibrated network must agree on the *direction*.
  ASSERT_LT(t1.sigma, t0.sigma);
  EXPECT_LT(c1.sigma, c0.sigma);
}

TEST_F(NeurFillPipeline, InterruptedPkbResumesByteIdentical) {
  // docs/robustness.md resume contract: interrupt a run at its very first
  // checkpoint opportunity, then --resume; the resumed run's fill must be
  // bitwise identical to an uninterrupted one.
  NeurFillOptions opt;
  opt.sqp.max_iterations = 12;
  opt.pkb_steps = 6;
  const FillRunResult full = neurfill_pkb(*problem_, *network_, opt);

  const std::string snap = ::testing::TempDir() + "neurfill_resume.nfcp";
  std::remove(snap.c_str());
  NeurFillOptions iopt = opt;
  iopt.snapshot_path = snap;
  std::atomic<bool> stop{true};  // pre-set: the first checkpoint hook throws
  iopt.interrupt = &stop;
  bool interrupted = false;
  try {
    neurfill_pkb(*problem_, *network_, iopt);
  } catch (const ErrorException& e) {
    interrupted = e.err.code == ErrorCode::kInterrupted;
  }
  ASSERT_TRUE(interrupted);

  NeurFillOptions ropt = opt;
  ropt.snapshot_path = snap;
  ropt.resume = true;
  const FillRunResult resumed = neurfill_pkb(*problem_, *network_, ropt);
  ASSERT_EQ(resumed.x.size(), full.x.size());
  for (std::size_t l = 0; l < full.x.size(); ++l)
    for (std::size_t k = 0; k < full.x[l].size(); ++k)
      EXPECT_EQ(resumed.x[l][k], full.x[l][k]);  // exact, not approximate
  EXPECT_EQ(resumed.objective_evaluations, full.objective_evaluations);
  EXPECT_EQ(resumed.iterations, full.iterations);
  std::remove(snap.c_str());
}

TEST_F(NeurFillPipeline, SnapshotRenameFaultsStillResumeFromLastGood) {
  // Random snapshot commits fail mid-write (rename fault): the run itself
  // must be unaffected, the snapshot on disk stays the last *good* image,
  // and resuming from it reproduces the identical fill.
  NeurFillOptions opt;
  opt.sqp.max_iterations = 12;
  opt.pkb_steps = 6;
  const FillRunResult full = neurfill_pkb(*problem_, *network_, opt);

  const std::string snap = ::testing::TempDir() + "neurfill_lastgood.nfcp";
  std::remove(snap.c_str());
  NeurFillOptions fopt = opt;
  fopt.snapshot_path = snap;
  fault::disarm_all();
  fault::arm_prob("io.rename", 0.5, 13);
  const FillRunResult faulted = neurfill_pkb(*problem_, *network_, fopt);
  fault::disarm_all();
  for (std::size_t l = 0; l < full.x.size(); ++l)
    for (std::size_t k = 0; k < full.x[l].size(); ++k)
      EXPECT_EQ(faulted.x[l][k], full.x[l][k]);

  // Whatever intermediate state survived on disk, resuming from it lands on
  // the same answer (a missing snapshot falls back to a clean fresh run).
  NeurFillOptions ropt = opt;
  ropt.snapshot_path = snap;
  ropt.resume = true;
  const FillRunResult resumed = neurfill_pkb(*problem_, *network_, ropt);
  for (std::size_t l = 0; l < full.x.size(); ++l)
    for (std::size_t k = 0; k < full.x[l].size(); ++k)
      EXPECT_EQ(resumed.x[l][k], full.x[l][k]);
  std::remove(snap.c_str());
}

TEST_F(NeurFillPipeline, CorruptSnapshotResumeIsStructuredError) {
  const std::string snap = ::testing::TempDir() + "neurfill_corrupt.nfcp";
  std::ofstream(snap, std::ios::binary) << "NFCPgarbage-not-a-checkpoint";
  NeurFillOptions opt;
  opt.snapshot_path = snap;
  opt.resume = true;
  bool corrupt = false;
  try {
    neurfill_pkb(*problem_, *network_, opt);
  } catch (const ErrorException& e) {
    corrupt = e.err.code == ErrorCode::kCorrupt;
  }
  EXPECT_TRUE(corrupt);
  std::remove(snap.c_str());
}

TEST_F(NeurFillPipeline, DeadlineExpiryReturnsBestFeasibleFlagged) {
  NeurFillOptions opt;
  opt.sqp.max_iterations = 12;
  opt.pkb_steps = 6;
  opt.deadline = Deadline::after_seconds(0.0);  // already expired
  const FillRunResult res = neurfill_pkb(*problem_, *network_, opt);
  EXPECT_TRUE(res.timed_out);
  const Box b = problem_->bounds();
  const VecD v = problem_->flatten(res.x);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_GE(v[i], -1e-9);
    EXPECT_LE(v[i], b.hi[i] + 1e-9);
  }
}

TEST_F(NeurFillPipeline, SurrogateGradientlessVsGradientAgreement) {
  // The surrogate objective used by SQP must be the same function NMMSO
  // explores (value path vs gradient path consistency).
  const ObjectiveFn obj = make_network_objective(*problem_, *network_);
  VecD v = problem_->flatten(problem_->zero_fill());
  for (std::size_t i = 0; i < v.size(); i += 7) v[i] = 0.01;
  VecD g;
  const double f1 = obj(v, nullptr);
  const double f2 = obj(v, &g);
  EXPECT_EQ(f1, f2);
}

}  // namespace
}  // namespace neurfill
