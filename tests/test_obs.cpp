// Tests for the observability subsystem: span recording across thread-pool
// workers, counter aggregation, exporter validity, and the disabled path.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

namespace neurfill {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax validator (recursive descent).  Exporter output must
// load in chrome://tracing, so the tests insist on strictly valid JSON, not
// just "looks like JSON".

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

// With -DNEURFILL_ENABLE_TRACING=OFF the NF_* macros evaluate nothing, so
// tests that assert on recorded data skip themselves (the exporters and
// SpanTimer still work and stay tested).
#if defined(NEURFILL_DISABLE_TRACING)
#define NF_TEST_NEEDS_MACROS() GTEST_SKIP() << "tracing macros compiled out"
#else
#define NF_TEST_NEEDS_MACROS() static_cast<void>(0)
#endif

/// Enables both obs gates for the test body and restores the disabled
/// default (with empty stores) afterwards, so tests are order-independent.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset_trace();
    obs::reset_metrics();
    obs::set_tracing_enabled(true);
    obs::set_metrics_enabled(true);
  }
  void TearDown() override {
    obs::set_tracing_enabled(false);
    obs::set_metrics_enabled(false);
    obs::reset_trace();
    obs::reset_metrics();
    runtime::set_thread_count(0);
  }

  static std::size_t total_events_named(const std::string& name) {
    std::size_t n = 0;
    for (const obs::ThreadTrace& t : obs::trace_snapshot())
      for (const obs::TraceEvent& e : t.events)
        if (name == e.name) ++n;
    return n;
  }
};

TEST_F(ObsTest, CounterAggregatesAcrossPoolThreads) {
  NF_TEST_NEEDS_MACROS();
  for (const int threads : {1, 4}) {
    runtime::set_thread_count(threads);
    obs::reset_metrics();
    runtime::parallel_for(1, 64, [](std::size_t b0, std::size_t b1) {
      for (std::size_t b = b0; b < b1; ++b) NF_COUNTER_ADD("test.units", 1);
    });
    EXPECT_EQ(obs::counter("test.units").value(), 64) << threads;
  }
}

TEST_F(ObsTest, SpansNestAcrossPoolTasks) {
  NF_TEST_NEEDS_MACROS();
  for (const int threads : {1, 4}) {
    runtime::set_thread_count(threads);
    obs::reset_trace();
    {
      NF_TRACE_SPAN("test.outer");
      runtime::parallel_for(4, 32, [](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
          NF_TRACE_SPAN("test.inner");
        }
      });
    }
    // Every item produced one inner span somewhere (main participates and
    // workers steal; the distribution is not fixed, the total is).
    EXPECT_EQ(total_events_named("test.inner"), 32u) << threads;
    EXPECT_EQ(total_events_named("test.outer"), 1u) << threads;

    // Proper nesting per track: spans on one thread never partially
    // overlap — for any two events one contains the other or they are
    // disjoint.  This is what lets chrome://tracing infer the hierarchy.
    for (const obs::ThreadTrace& t : obs::trace_snapshot()) {
      for (std::size_t i = 0; i < t.events.size(); ++i) {
        for (std::size_t j = i + 1; j < t.events.size(); ++j) {
          const obs::TraceEvent& a = t.events[i];
          const obs::TraceEvent& b = t.events[j];
          const bool disjoint =
              a.end_ns <= b.begin_ns || b.end_ns <= a.begin_ns;
          const bool a_in_b = b.begin_ns <= a.begin_ns && a.end_ns <= b.end_ns;
          const bool b_in_a = a.begin_ns <= b.begin_ns && b.end_ns <= a.end_ns;
          EXPECT_TRUE(disjoint || a_in_b || b_in_a)
              << t.thread_name << ": " << a.name << " vs " << b.name;
        }
      }
    }

    // The outer span contains every inner span recorded on the main track.
    for (const obs::ThreadTrace& t : obs::trace_snapshot()) {
      const obs::TraceEvent* outer = nullptr;
      for (const obs::TraceEvent& e : t.events)
        if (std::string("test.outer") == e.name) outer = &e;
      if (outer == nullptr) continue;
      for (const obs::TraceEvent& e : t.events)
        if (std::string("test.inner") == e.name) {
          EXPECT_GE(e.begin_ns, outer->begin_ns);
          EXPECT_LE(e.end_ns, outer->end_ns);
        }
    }
  }
}

TEST_F(ObsTest, WorkerTracksAreNamed) {
  NF_TEST_NEEDS_MACROS();
  runtime::set_thread_count(3);
  obs::reset_trace();
  runtime::parallel_for(1, 256, [](std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b) {
      NF_TRACE_SPAN("test.block");
    }
  });
  bool saw_main = false;
  for (const obs::ThreadTrace& t : obs::trace_snapshot()) {
    if (t.thread_name == "main") saw_main = true;
    EXPECT_TRUE(t.thread_name == "main" ||
                t.thread_name.rfind("pool-worker-", 0) == 0)
        << t.thread_name;
  }
  EXPECT_TRUE(saw_main);
}

TEST_F(ObsTest, GaugeKeepsLastValue) {
  NF_TEST_NEEDS_MACROS();
  NF_GAUGE_SET("test.level", 1.5);
  NF_GAUGE_SET("test.level", 2.5);
  EXPECT_EQ(obs::gauge("test.level").value(), 2.5);
}

TEST_F(ObsTest, SpanStatsAggregateDurations) {
  NF_TEST_NEEDS_MACROS();
  for (int i = 0; i < 5; ++i) {
    NF_TRACE_SPAN("test.work");
  }
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  bool found = false;
  for (const auto& s : snap.spans)
    if (s.name == "test.work") {
      found = true;
      EXPECT_EQ(s.count, 5);
    }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, ChromeTraceExportIsValidJson) {
  {
    NF_TRACE_SPAN("test.outer");
    NF_TRACE_SPAN("test.inner_with_\"quotes\"_and_\\slashes");
  }
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string text = os.str();
  EXPECT_TRUE(JsonValidator(text).valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
#if !defined(NEURFILL_DISABLE_TRACING)
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("test.outer"), std::string::npos);
#endif
}

TEST_F(ObsTest, MetricsJsonExportIsValidJson) {
  NF_COUNTER_ADD("test.count", 7);
  NF_GAUGE_SET("test.gauge", 0.25);
  {
    NF_TRACE_SPAN("test.span");
  }
  std::ostringstream os;
  obs::write_metrics_json(os);
  const std::string text = os.str();
  EXPECT_TRUE(JsonValidator(text).valid()) << text;
#if !defined(NEURFILL_DISABLE_TRACING)
  EXPECT_NE(text.find("\"test.count\":7"), std::string::npos) << text;
#endif
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"spans\""), std::string::npos);
}

TEST_F(ObsTest, SpanTimerMatchesTraceEvent) {
  obs::SpanTimer timer("test.timed");
  const double s1 = timer.stop_seconds();
  const double s2 = timer.stop_seconds();  // idempotent
  EXPECT_GE(s1, 0.0);
  EXPECT_EQ(s1, s2);
  // The recorded event spans exactly the reported duration.
  for (const obs::ThreadTrace& t : obs::trace_snapshot())
    for (const obs::TraceEvent& e : t.events)
      if (std::string("test.timed") == e.name) {
        EXPECT_DOUBLE_EQ(static_cast<double>(e.end_ns - e.begin_ns) * 1e-9,
                         s1);
      }
  EXPECT_EQ(total_events_named("test.timed"), 1u);
}

TEST_F(ObsTest, ResetClearsStores) {
  NF_COUNTER_ADD("test.count", 3);
  {
    NF_TRACE_SPAN("test.span");
  }
  obs::reset_metrics();
  obs::reset_trace();
  EXPECT_EQ(obs::counter("test.count").value(), 0);
  EXPECT_EQ(total_events_named("test.span"), 0u);
}

TEST(ObsDisabled, DisabledPathRecordsNothing) {
  obs::set_tracing_enabled(false);
  obs::set_metrics_enabled(false);
  obs::reset_trace();
  obs::reset_metrics();
  {
    NF_TRACE_SPAN("test.off_span");
    NF_COUNTER_ADD("test.off_count", 5);
    NF_GAUGE_SET("test.off_gauge", 1.0);
  }
  obs::SpanTimer timer("test.off_timer");
  EXPECT_GE(timer.stop_seconds(), 0.0);  // still a stopwatch when disabled

  std::size_t events = 0;
  for (const obs::ThreadTrace& t : obs::trace_snapshot())
    events += t.events.size();
  EXPECT_EQ(events, 0u);
  EXPECT_EQ(obs::counter("test.off_count").value(), 0);
  EXPECT_EQ(obs::gauge("test.off_gauge").value(), 0.0);
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  for (const auto& s : snap.spans) EXPECT_EQ(s.count, 0) << s.name;
}

}  // namespace
}  // namespace neurfill
