// Tests for the tensor/autograd core, modules, optimizers and checkpoints.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/module.hpp"
#include "nn/ops.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "nn/unet.hpp"

#include "gradcheck_util.hpp"

namespace neurfill::nn {
namespace {

using testing::random_tensor;

TEST(Tensor, FactoriesAndItem) {
  EXPECT_EQ(Tensor::zeros({2, 3}).numel(), 6);
  EXPECT_FLOAT_EQ(Tensor::ones({2}).data()[1], 1.0f);
  EXPECT_FLOAT_EQ(Tensor::full({3}, 2.5f).data()[2], 2.5f);
  EXPECT_FLOAT_EQ(Tensor::scalar(4.0f).item(), 4.0f);
  EXPECT_THROW(Tensor::ones({2}).item(), std::logic_error);
  EXPECT_THROW(Tensor({0, 2}), std::invalid_argument);
  EXPECT_THROW(Tensor::from_data({2}, {1.0f}), std::invalid_argument);
}

TEST(Tensor, BackwardSimpleChain) {
  Tensor x = Tensor::from_data({3}, {1.0f, 2.0f, 3.0f}, true);
  Tensor y = sum(mul_scalar(square(x), 2.0f));  // y = 2*sum(x^2)
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 8.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 12.0f);
}

TEST(Tensor, GradAccumulatesAcrossBackwards) {
  Tensor x = Tensor::from_data({1}, {3.0f}, true);
  sum(square(x)).backward();
  sum(square(x)).backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);  // 2*3 twice
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(Tensor, BackwardRequiresScalarRoot) {
  Tensor x = Tensor::ones({2}, true);
  Tensor y = mul_scalar(x, 2.0f);
  EXPECT_THROW(y.backward(), std::logic_error);
}

TEST(Tensor, DetachCutsTape) {
  Tensor x = Tensor::from_data({2}, {1.0f, 2.0f}, true);
  Tensor y = square(x).detach();
  EXPECT_FALSE(y.requires_grad());
  Tensor z = sum(mul(square(x), Tensor::from_data({2}, {1.0f, 1.0f})));
  z.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(Tensor, NoGradGraphWhenInputsDontRequire) {
  Tensor x = Tensor::ones({4});
  Tensor y = relu(x);
  EXPECT_FALSE(y.requires_grad());
}

TEST(Module, ParameterRegistryHierarchical) {
  Rng rng(1);
  DoubleConv block(3, 8, rng);
  const auto params = block.named_parameters();
  // 2 convs (w+b) + 2 norms (gamma+beta) = 8 parameters.
  EXPECT_EQ(params.size(), 8u);
  EXPECT_EQ(params[0].first, "conv1.weight");
  for (const auto& [name, t] : params) EXPECT_TRUE(t.requires_grad());
  EXPECT_GT(block.parameter_count(), 0);
}

TEST(Module, ZeroGradClearsAll) {
  Rng rng(2);
  Conv2d conv(2, 2, 3, 1, 1, rng);
  Tensor x = random_tensor({1, 2, 4, 4}, 3);
  sum(square(conv.forward(x))).backward();
  bool any_nonzero = false;
  for (auto t : conv.parameters())
    for (std::int64_t i = 0; i < t.numel(); ++i)
      if (t.grad()[i] != 0.0f) any_nonzero = true;
  EXPECT_TRUE(any_nonzero);
  conv.zero_grad();
  for (auto t : conv.parameters())
    for (std::int64_t i = 0; i < t.numel(); ++i)
      EXPECT_EQ(t.grad()[i], 0.0f);
}

TEST(UNet, OutputShapeMatchesInput) {
  Rng rng(4);
  UNetConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 1;
  cfg.base_channels = 4;
  cfg.depth = 2;
  UNet net(cfg, rng);
  Tensor x = random_tensor({2, 3, 16, 16}, 5);
  Tensor y = net.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 1, 16, 16}));
}

TEST(UNet, RejectsIndivisibleSize) {
  Rng rng(5);
  UNetConfig cfg;
  cfg.in_channels = 1;
  cfg.base_channels = 4;
  cfg.depth = 3;
  UNet net(cfg, rng);
  EXPECT_THROW(net.forward(random_tensor({1, 1, 12, 12}, 6)),
               std::invalid_argument);
}

TEST(Optim, SgdConvergesOnQuadratic) {
  // minimize ||x - c||^2
  Tensor x = Tensor::zeros({4}, true);
  Tensor c = Tensor::from_data({4}, {1.0f, -2.0f, 0.5f, 3.0f});
  Sgd opt({x}, 0.1f, 0.5f);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    mse_loss(x, c).backward();
    opt.step();
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(x.data()[i], c.data()[i], 1e-3);
}

TEST(Optim, AdamConvergesOnQuadratic) {
  Tensor x = Tensor::zeros({4}, true);
  Tensor c = Tensor::from_data({4}, {1.0f, -2.0f, 0.5f, 3.0f});
  Adam opt({x}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    mse_loss(x, c).backward();
    opt.step();
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(x.data()[i], c.data()[i], 1e-2);
}

TEST(Optim, TinyNetFitsLinearFunction) {
  // One conv layer must be able to learn a fixed 3x3 blur.
  Rng rng(6);
  Conv2d target(1, 1, 3, 1, 1, rng);
  Conv2d learner(1, 1, 3, 1, 1, rng);
  Adam opt(learner.parameters(), 0.05f);
  float last_loss = 0.0f;
  for (int step = 0; step < 300; ++step) {
    Tensor x = random_tensor({4, 1, 8, 8}, 100 + static_cast<unsigned>(step));
    Tensor y = target.forward(x).detach();
    opt.zero_grad();
    Tensor loss = mse_loss(learner.forward(x), y);
    loss.backward();
    opt.step();
    last_loss = loss.item();
  }
  EXPECT_LT(last_loss, 1e-3);
}

TEST(Serialize, RoundTripExact) {
  Rng rng(7);
  UNetConfig cfg;
  cfg.in_channels = 2;
  cfg.base_channels = 4;
  cfg.depth = 1;
  UNet a(cfg, rng);
  UNet b(cfg, rng);  // different weights (rng advanced)
  const std::string path =
      (std::filesystem::temp_directory_path() / "nf_ckpt_test.bin").string();
  ASSERT_TRUE(save_parameters(a, path).ok());
  ASSERT_TRUE(load_parameters(b, path).ok());
  const auto pa = a.named_parameters();
  const auto pb = b.named_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::int64_t k = 0; k < pa[i].second.numel(); ++k)
      EXPECT_EQ(pa[i].second.data()[k], pb[i].second.data()[k]);
  // Same input -> identical output.
  Tensor x = random_tensor({1, 2, 8, 8}, 8);
  Tensor ya = a.forward(x);
  Tensor yb = b.forward(x);
  for (std::int64_t k = 0; k < ya.numel(); ++k)
    EXPECT_EQ(ya.data()[k], yb.data()[k]);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsArchitectureMismatch) {
  Rng rng(9);
  UNetConfig small;
  small.in_channels = 2;
  small.base_channels = 4;
  small.depth = 1;
  UNetConfig big = small;
  big.base_channels = 8;
  UNet a(small, rng);
  UNet b(big, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "nf_ckpt_bad.bin").string();
  ASSERT_TRUE(save_parameters(a, path).ok());
  const Expected<void> res = load_parameters(b, path);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, ErrorCode::kCorrupt);
  // The structured error names the offending file.
  EXPECT_NE(res.error().message.find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileIsStructuredError) {
  Rng rng(10);
  UNetConfig cfg;
  cfg.in_channels = 1;
  cfg.base_channels = 4;
  cfg.depth = 1;
  UNet net(cfg, rng);
  const Expected<void> res = load_parameters(net, "/nonexistent/path.bin");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, ErrorCode::kNotFound);
}

}  // namespace
}  // namespace neurfill::nn
