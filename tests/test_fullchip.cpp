// Tiled out-of-core full-chip driver tests (docs/fullchip.md): tile/halo
// geometry, the streaming GLF index against brute force, stitcher
// invariants (single-tile exactness, monolithic proximity, bitwise
// determinism across thread counts), and store-based resume identity
// (including a corrupt-record re-solve through the fault site).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "fill/baselines.hpp"
#include "fullchip/driver.hpp"
#include "fullchip/tile_store.hpp"
#include "fullchip/tiling.hpp"
#include "geom/designs.hpp"
#include "geom/glf_io.hpp"
#include "runtime/parallel.hpp"

namespace neurfill::fullchip {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(TileGrid, DecomposesWithClippedEdges) {
  // 10x7 windows, tiles of 4, halo 2.
  const TileGrid grid(10, 7, 4, 2, 100.0);
  EXPECT_EQ(grid.tile_rows(), 3u);  // ceil(10/4)
  EXPECT_EQ(grid.tile_cols(), 2u);  // ceil(7/4)
  EXPECT_EQ(grid.num_tiles(), 6u);

  const TileRegion t00 = grid.tile(0, 0);
  EXPECT_EQ(t00.core_row0, 0u);
  EXPECT_EQ(t00.core_row1, 4u);
  EXPECT_EQ(t00.core_col1, 4u);
  EXPECT_EQ(t00.halo_row0, 0u);  // clipped at the chip edge
  EXPECT_EQ(t00.halo_row1, 6u);
  EXPECT_EQ(t00.halo_col1, 6u);

  const TileRegion t21 = grid.tile(2, 1);  // bottom-right, both edges short
  EXPECT_EQ(t21.core_row0, 8u);
  EXPECT_EQ(t21.core_row1, 10u);
  EXPECT_EQ(t21.core_col0, 4u);
  EXPECT_EQ(t21.core_col1, 7u);
  EXPECT_EQ(t21.halo_row0, 6u);
  EXPECT_EQ(t21.halo_row1, 10u);
  EXPECT_EQ(t21.halo_col0, 2u);
  EXPECT_EQ(t21.halo_col1, 7u);

  // Every chip window is in exactly one core.
  std::vector<int> owners(10 * 7, 0);
  for (std::size_t t = 0; t < grid.num_tiles(); ++t) {
    const TileRegion tile = grid.tile_by_index(t);
    for (std::size_t i = tile.core_row0; i < tile.core_row1; ++i)
      for (std::size_t j = tile.core_col0; j < tile.core_col1; ++j)
        owners[i * 7 + j] += 1;
  }
  for (const int n : owners) EXPECT_EQ(n, 1);
}

TEST(TileGrid, FringeIsHaloMinusCore) {
  const TileGrid grid(12, 12, 4, 1, 100.0);
  const TileRegion t = grid.tile(1, 1);
  EXPECT_FALSE(t.in_halo_fringe(t.core_row0, t.core_col0));
  EXPECT_TRUE(t.in_halo_fringe(t.core_row0 - 1, t.core_col0));
  EXPECT_TRUE(t.in_halo_fringe(t.core_row0, t.core_col0 - 1));
  EXPECT_FALSE(t.in_halo_fringe(0, 0));  // outside this tile's halo
}

TEST(TileGrid, AutoHaloFromPlanarizationLength) {
  EXPECT_EQ(auto_halo_windows(60.0, 100.0), 2);   // ceil(120/100)
  EXPECT_EQ(auto_halo_windows(100.0, 100.0), 2);
  EXPECT_EQ(auto_halo_windows(20.0, 100.0), 1);
  EXPECT_EQ(auto_halo_windows(0.0, 100.0), 1);    // never fully uncoupled
  EXPECT_EQ(auto_halo_windows(260.0, 100.0), 6);
}

class IndexedDesign : public ::testing::Test {
 protected:
  void SetUp() override {
    layout_ = make_design_rect('a', 9, 6, 100.0, 7);
    path_ = tmp_path("fullchip_design.glf");
    write_glf_file(path_, layout_);
    index_ = GlfRegionIndex::build(path_, 250.0);
  }

  Layout layout_;
  std::string path_;
  GlfRegionIndex index_;
};

TEST_F(IndexedDesign, HeaderMatchesLayout) {
  EXPECT_EQ(index_.name(), layout_.name);
  EXPECT_DOUBLE_EQ(index_.width_um(), layout_.width_um);
  EXPECT_DOUBLE_EQ(index_.height_um(), layout_.height_um);
  ASSERT_EQ(index_.num_layers(), layout_.layers.size());
  for (std::size_t l = 0; l < layout_.layers.size(); ++l) {
    EXPECT_EQ(index_.layer_name(l), layout_.layers[l].name);
    EXPECT_EQ(index_.wire_count(l), layout_.layers[l].wires.size());
    EXPECT_EQ(index_.dummy_count(l), layout_.layers[l].dummies.size());
  }
}

TEST_F(IndexedDesign, RegionLoadMatchesBruteForce) {
  const Rect regions[] = {Rect(0, 0, 300, 300), Rect(150, 250, 675, 380),
                          Rect(0, 0, 900, 600), Rect(880, 580, 900, 600)};
  for (const Rect& region : regions) {
    const Layout got = index_.load_region(region);
    ASSERT_EQ(got.layers.size(), layout_.layers.size());
    for (std::size_t l = 0; l < layout_.layers.size(); ++l) {
      std::vector<Rect> want;
      for (const Rect& r : layout_.layers[l].wires)
        if (r.intersects(region)) want.push_back(r);
      ASSERT_EQ(got.layers[l].wires.size(), want.size())
          << "layer " << l << " region " << region.x0 << "," << region.y0;
      // load_region returns rects in file order, which is layout order.
      for (std::size_t k = 0; k < want.size(); ++k) {
        EXPECT_DOUBLE_EQ(got.layers[l].wires[k].x0, want[k].x0);
        EXPECT_DOUBLE_EQ(got.layers[l].wires[k].y1, want[k].y1);
      }
    }
  }
}

TEST_F(IndexedDesign, StreamedDummyWriteRoundTrips) {
  std::vector<std::vector<Rect>> extra(layout_.layers.size());
  extra[0].push_back(Rect(10, 10, 14, 14));
  extra[0].push_back(Rect(20, 10, 24, 14));
  extra.back().push_back(Rect(100, 100, 108, 108));

  const std::string out = tmp_path("fullchip_streamed.glf");
  write_glf_with_dummies(index_, out, extra);

  const Layout back = read_glf_file(out);
  ASSERT_EQ(back.layers.size(), layout_.layers.size());
  for (std::size_t l = 0; l < layout_.layers.size(); ++l) {
    EXPECT_EQ(back.layers[l].wires.size(), layout_.layers[l].wires.size());
    ASSERT_EQ(back.layers[l].dummies.size(),
              layout_.layers[l].dummies.size() + extra[l].size());
    // Appended dummies follow the originals, values exact.
    const std::size_t base = layout_.layers[l].dummies.size();
    for (std::size_t k = 0; k < extra[l].size(); ++k) {
      EXPECT_DOUBLE_EQ(back.layers[l].dummies[base + k].x0, extra[l][k].x0);
      EXPECT_DOUBLE_EQ(back.layers[l].dummies[base + k].y1, extra[l][k].y1);
    }
  }
}

TEST_F(IndexedDesign, TileLayoutMatchesShiftedBruteForce) {
  const TileGrid grid(6, 9, 3, 2, 100.0);
  const TileRegion tile = grid.tile(1, 2);
  const Layout local = load_tile_layout(index_, tile, 100.0);
  EXPECT_DOUBLE_EQ(local.width_um,
                   static_cast<double>(tile.halo_cols()) * 100.0);
  EXPECT_DOUBLE_EQ(local.height_um,
                   static_cast<double>(tile.halo_rows()) * 100.0);
  const Rect halo = tile.halo_rect(100.0);
  for (std::size_t l = 0; l < layout_.layers.size(); ++l) {
    std::vector<Rect> want;
    for (const Rect& r : layout_.layers[l].wires)
      if (r.intersects(halo)) want.push_back(r);
    ASSERT_EQ(local.layers[l].wires.size(), want.size());
    for (std::size_t k = 0; k < want.size(); ++k) {
      EXPECT_DOUBLE_EQ(local.layers[l].wires[k].x0, want[k].x0 - halo.x0);
      EXPECT_DOUBLE_EQ(local.layers[l].wires[k].y0, want[k].y0 - halo.y0);
    }
  }
}

TEST(TileStoreTest, RoundTripsRecordsAndRejectsForeignManifest) {
  const std::string dir = tmp_path("fullchip_store");
  StoreManifest m;
  m.design_name = "d";
  m.method = "lin";
  m.chip_rows = 4;
  m.chip_cols = 4;
  m.num_layers = 2;
  m.tile_windows = 2;
  m.halo_windows = 1;
  m.window_um = 100.0;
  m.stitch_tol = 0.02;
  m.max_stitch_passes = 0;
  TileStore store(dir);
  ASSERT_TRUE(store.open(m, false).ok());

  TileRecord rec;
  rec.x.assign(2, GridD(3, 3, 0.0));
  rec.x[0](1, 2) = 0.25;
  rec.x[1](0, 0) = 0.5;
  rec.evaluations = 17;
  rec.degraded = true;
  ASSERT_TRUE(store.save_tile(0, 1, 1, rec).ok());

  Expected<TileRecord> back = store.load_tile(0, 1, 1, 3, 3, 2);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_DOUBLE_EQ(back->x[0](1, 2), 0.25);
  EXPECT_DOUBLE_EQ(back->x[1](0, 0), 0.5);
  EXPECT_EQ(back->evaluations, 17);
  EXPECT_TRUE(back->degraded);
  EXPECT_FALSE(back->timed_out);

  // Shape mismatch is kCorrupt (= re-solve), missing is kNotFound.
  EXPECT_EQ(store.load_tile(0, 1, 1, 4, 3, 2).error().code,
            ErrorCode::kCorrupt);
  EXPECT_EQ(store.load_tile(0, 0, 0, 3, 3, 2).error().code,
            ErrorCode::kNotFound);

  // Same-manifest resume keeps records; a foreign manifest is rejected.
  TileStore again(dir);
  ASSERT_TRUE(again.open(m, true).ok());
  EXPECT_TRUE(again.load_tile(0, 1, 1, 3, 3, 2).ok());
  StoreManifest other = m;
  other.tile_windows = 3;
  EXPECT_EQ(again.open(other, true).error().code,
            ErrorCode::kInvalidArgument);

  // A fresh open clears stale records.
  ASSERT_TRUE(again.open(other, false).ok());
  EXPECT_EQ(again.load_tile(0, 1, 1, 3, 3, 2).error().code,
            ErrorCode::kNotFound);
}

/// Fixture for driver runs: a 9x6-window design, indexed from disk.
class FullChipDriver : public ::testing::Test {
 protected:
  void SetUp() override {
    layout_ = make_design_rect('a', 9, 6, 100.0, 11);
    path_ = tmp_path("fullchip_drv.glf");
    write_glf_file(path_, layout_);
    index_ = GlfRegionIndex::build(path_, 400.0);
  }

  void TearDown() override { runtime::set_thread_count(0); }

  FullChipOptions options(const std::string& store) const {
    FullChipOptions opt;
    opt.method = "lin";
    opt.tile_windows = 3;
    opt.halo_windows = 2;
    opt.store_dir = tmp_path(store);
    return opt;
  }

  static void expect_bitwise_equal(const FullChipResult& a,
                                   const FullChipResult& b) {
    ASSERT_EQ(a.x.size(), b.x.size());
    for (std::size_t l = 0; l < a.x.size(); ++l) {
      ASSERT_EQ(a.x[l].rows(), b.x[l].rows());
      ASSERT_EQ(a.x[l].cols(), b.x[l].cols());
      for (std::size_t k = 0; k < a.x[l].size(); ++k)
        ASSERT_EQ(a.x[l][k], b.x[l][k]) << "layer " << l << " window " << k;
    }
  }

  Layout layout_;
  std::string path_;
  GlfRegionIndex index_;
};

TEST_F(FullChipDriver, SingleTileEqualsMonolithicExactly) {
  // One tile covering the whole chip is the monolithic problem verbatim.
  FullChipOptions opt = options("fc_single");
  opt.tile_windows = 64;
  const FullChipResult tiled = fullchip_fill(index_, opt);
  EXPECT_EQ(tiled.tiles_total, 1u);

  const WindowExtraction ext = extract_windows(layout_, opt.extract);
  CmpProcessParams params = opt.process;
  params.window_um = opt.extract.window_um;
  const CmpSimulator sim(params);
  const FillProblem problem(ext, sim,
                            make_coefficients(layout_, ext, sim));
  const FillRunResult mono = lin_rule_fill(problem);

  ASSERT_EQ(tiled.x.size(), mono.x.size());
  for (std::size_t l = 0; l < mono.x.size(); ++l)
    for (std::size_t k = 0; k < mono.x[l].size(); ++k)
      ASSERT_EQ(tiled.x[l][k], mono.x[l][k]);
}

TEST_F(FullChipDriver, TiledStaysNearMonolithic) {
  const FullChipResult tiled = fullchip_fill(index_, options("fc_near"));
  EXPECT_EQ(tiled.tiles_total, 6u);

  const WindowExtraction ext = extract_windows(layout_, ExtractOptions());
  CmpProcessParams params;
  const CmpSimulator sim(params);
  const FillProblem problem(ext, sim,
                            make_coefficients(layout_, ext, sim));
  const FillRunResult mono = lin_rule_fill(problem);

  // Lin picks its target densities per solve scope, so tile solves see
  // local statistics and exact equality is not expected — but with a
  // 2-window halo the committed fill must stay in the monolithic fill's
  // neighbourhood, not wander to a different regime.
  double max_diff = 0.0, sum_diff = 0.0;
  std::size_t n = 0;
  for (std::size_t l = 0; l < mono.x.size(); ++l)
    for (std::size_t k = 0; k < mono.x[l].size(); ++k) {
      const double d = std::abs(tiled.x[l][k] - mono.x[l][k]);
      max_diff = std::max(max_diff, d);
      sum_diff += d;
      ++n;
    }
  EXPECT_LT(max_diff, 0.35);
  EXPECT_LT(sum_diff / static_cast<double>(n), 0.12);
}

TEST_F(FullChipDriver, BitwiseDeterministicAcrossThreadCounts) {
  runtime::set_thread_count(1);
  const FullChipResult r1 = fullchip_fill(index_, options("fc_t1"));
  runtime::set_thread_count(2);
  const FullChipResult r2 = fullchip_fill(index_, options("fc_t2"));
  runtime::set_thread_count(8);
  const FullChipResult r8 = fullchip_fill(index_, options("fc_t8"));
  expect_bitwise_equal(r1, r2);
  expect_bitwise_equal(r1, r8);
}

TEST_F(FullChipDriver, ResumeLoadsTilesAndReproducesBitwise) {
  const FullChipOptions opt = options("fc_resume");
  const FullChipResult fresh = fullchip_fill(index_, opt);
  EXPECT_EQ(fresh.tiles_solved, 6u);

  FullChipOptions ropt = opt;
  ropt.resume = true;
  const FullChipResult resumed = fullchip_fill(index_, ropt);
  EXPECT_EQ(resumed.tiles_solved, 0u);
  EXPECT_EQ(resumed.tiles_loaded, 6u);
  expect_bitwise_equal(fresh, resumed);

  // A lost tile record is simply re-solved, to the identical result.
  const TileStore store(opt.store_dir);
  ASSERT_EQ(::unlink(store.tile_path(0, 0, 1).c_str()), 0);
  const FullChipResult partial = fullchip_fill(index_, ropt);
  EXPECT_EQ(partial.tiles_solved, 1u);
  EXPECT_EQ(partial.tiles_loaded, 5u);
  expect_bitwise_equal(fresh, partial);
}

TEST_F(FullChipDriver, CorruptTileRecordIsResolvedDeterministically) {
#if defined(NEURFILL_DISABLE_FAULTS)
  GTEST_SKIP() << "fault injection compiled out";
#endif
  const FullChipOptions opt = options("fc_corrupt");
  const FullChipResult fresh = fullchip_fill(index_, opt);

  FullChipOptions ropt = opt;
  ropt.resume = true;
  fault::arm_hit("fullchip.tile_read", 1);
  const FullChipResult resumed = fullchip_fill(index_, ropt);
  fault::disarm_all();
  EXPECT_EQ(resumed.tiles_solved, 1u);
  EXPECT_EQ(resumed.tiles_loaded, 5u);
  expect_bitwise_equal(fresh, resumed);
}

TEST_F(FullChipDriver, FailedTileSaveOnlyCostsResumeGranularity) {
#if defined(NEURFILL_DISABLE_FAULTS)
  GTEST_SKIP() << "fault injection compiled out";
#endif
  const FullChipOptions opt = options("fc_wfail");
  fault::arm_hit("fullchip.tile_write", 1);
  const FullChipResult fresh = fullchip_fill(index_, opt);
  fault::disarm_all();
  EXPECT_EQ(fresh.tiles_solved, 6u);
  EXPECT_FALSE(fresh.degraded);  // the fill itself is unaffected

  // One record is missing, so resume re-solves exactly that tile.
  FullChipOptions ropt = opt;
  ropt.resume = true;
  const FullChipResult resumed = fullchip_fill(index_, ropt);
  EXPECT_EQ(resumed.tiles_solved, 1u);
  EXPECT_EQ(resumed.tiles_loaded, 5u);
  expect_bitwise_equal(fresh, resumed);
}

TEST_F(FullChipDriver, WritesStreamedResultWithBoundedDummies) {
  const FullChipOptions opt = options("fc_out");
  const FullChipResult result = fullchip_fill(index_, opt);
  const std::string out = tmp_path("fullchip_out.glf");
  const std::size_t dummies =
      write_fullchip_result(index_, out, result, 100.0);
  EXPECT_GT(dummies, 0u);
  const Layout back = read_glf_file(out);
  std::size_t found = 0;
  for (std::size_t l = 0; l < back.layers.size(); ++l) {
    EXPECT_EQ(back.layers[l].wires.size(), layout_.layers[l].wires.size());
    found += back.layers[l].dummies.size() - layout_.layers[l].dummies.size();
  }
  EXPECT_EQ(found, dummies);
}

TEST_F(FullChipDriver, RejectsUnknownMethodAndMissingStore) {
  FullChipOptions opt = options("fc_bad");
  opt.method = "cai";
  EXPECT_THROW(fullchip_fill(index_, opt), ErrorException);
  opt = options("fc_bad2");
  opt.store_dir.clear();
  EXPECT_THROW(fullchip_fill(index_, opt), ErrorException);
}

}  // namespace
}  // namespace neurfill::fullchip
