// End-to-end flow tests mirroring the CLI tools: generate -> write GLF ->
// read back -> extract -> fill -> insert -> re-extract -> re-score, checking
// that every hand-off preserves what the next stage needs.  Plus simulator
// time-step convergence and extraction-consistency property sweeps.

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "fill/baselines.hpp"
#include "fill/report.hpp"
#include "geom/designs.hpp"
#include "geom/glf_io.hpp"
#include "layout/fill_insertion.hpp"

namespace neurfill {
namespace {

TEST(EndToEnd, GlfRoundTripPreservesExtraction) {
  // Writing a design to GLF and reading it back must produce an extraction
  // identical to within float-printing precision — the guarantee a
  // file-based tool flow (nf_gen | nf_fill) depends on.
  const Layout original = make_design('b', 12, 100.0, 9);
  std::stringstream ss;
  write_glf(ss, original);
  const Layout restored = read_glf(ss);
  const WindowExtraction e1 = extract_windows(original);
  const WindowExtraction e2 = extract_windows(restored);
  ASSERT_EQ(e1.num_layers(), e2.num_layers());
  for (std::size_t l = 0; l < e1.num_layers(); ++l)
    for (std::size_t k = 0; k < e1.layers[l].slack.size(); ++k) {
      EXPECT_NEAR(e1.layers[l].wire_density[k], e2.layers[l].wire_density[k],
                  1e-9);
      EXPECT_NEAR(e1.layers[l].slack[k], e2.layers[l].slack[k], 1e-9);
      EXPECT_NEAR(e1.layers[l].perimeter_um[k], e2.layers[l].perimeter_um[k],
                  1e-6);
    }
}

TEST(EndToEnd, InsertedFillSurvivesRescoring) {
  // fill -> insert -> re-extract: the dummy densities seen by a fresh
  // extraction must track the optimizer's x, so downstream tools measuring
  // the *file* agree with the synthesis result.
  Layout layout = make_design('a', 10, 100.0, 4);
  const WindowExtraction ext = extract_windows(layout);
  CmpSimulator sim;
  FillProblem problem(ext, sim, make_coefficients(layout, ext, sim));
  const FillRunResult lin = lin_rule_fill(problem);
  insert_dummies(layout, ext, lin.x);
  const WindowExtraction ext2 = extract_windows(layout);
  double err = 0.0, total = 0.0;
  for (std::size_t l = 0; l < ext.num_layers(); ++l)
    for (std::size_t k = 0; k < lin.x[l].size(); ++k) {
      err += std::fabs(ext2.layers[l].dummy_density[k] - lin.x[l][k]);
      total += lin.x[l][k];
    }
  // Mean absolute realization error below 15% of the mean fill level.
  EXPECT_LT(err, 0.15 * total + 0.05);
}

TEST(EndToEnd, DrcInsertionAlsoSurvivesRescoring) {
  Layout layout = make_design('c', 10, 100.0, 4);
  const WindowExtraction ext = extract_windows(layout);
  CmpSimulator sim;
  FillProblem problem(ext, sim, make_coefficients(layout, ext, sim));
  const FillRunResult lin = lin_rule_fill(problem);
  const DrcInsertStats stats = insert_dummies_drc(layout, ext, lin.x);
  EXPECT_TRUE(fill_is_drc_clean(layout, DrcRules().spacing_um * 0.999));
  // DRC placement realizes a substantial part of the request (blocked sites
  // near dense geometry are expected).
  EXPECT_GT(stats.realized_um2, 0.5 * stats.requested_um2);
}

TEST(EndToEnd, ScoredReportConsistentAcrossPaths) {
  // score_fill_result must agree with manually assembling the same pieces.
  const Layout layout = make_design('b', 10, 100.0, 6);
  const WindowExtraction ext = extract_windows(layout);
  CmpSimulator sim;
  const ScoreCoefficients coeffs = make_coefficients(layout, ext, sim);
  FillProblem problem(ext, sim, coeffs);
  FillRunResult run;
  run.method = "manual";
  run.x = problem.zero_fill();
  run.runtime_s = 2.0;
  const MethodReport rep = score_fill_result(problem, layout, run);
  const QualityBreakdown q = problem.evaluate(run.x);
  EXPECT_NEAR(rep.score.quality.s_qual, q.s_qual, 1e-12);
  EXPECT_NEAR(rep.score.s_t, ScoreCoefficients::score(2.0, coeffs.beta_t),
              1e-12);
}

class DtConvergenceP : public ::testing::TestWithParam<char> {};

TEST_P(DtConvergenceP, HalvingTimeStepBarelyMovesHeights) {
  // The explicit Preston integration must be converged at the default dt:
  // halving it changes the height profile by far less than the profile's
  // dynamic range.
  const Layout layout = make_design(GetParam(), 10, 100.0, 2);
  const WindowExtraction ext = extract_windows(layout);
  CmpProcessParams p1;  // default dt
  CmpProcessParams p2 = p1;
  p2.dt_s = p1.dt_s / 2.0;
  const auto h1 = CmpSimulator(p1).simulate_heights(ext, {});
  const auto h2 = CmpSimulator(p2).simulate_heights(ext, {});
  double diff = 0.0, range = 0.0;
  double lo = h1[0][0], hi = h1[0][0];
  std::size_t n = 0;
  for (std::size_t l = 0; l < h1.size(); ++l)
    for (std::size_t k = 0; k < h1[l].size(); ++k) {
      diff += std::fabs(h1[l][k] - h2[l][k]);
      lo = std::min(lo, h1[l][k]);
      hi = std::max(hi, h1[l][k]);
      ++n;
    }
  range = std::max(hi - lo, 1e-9);
  EXPECT_LT(diff / static_cast<double>(n) / range, 0.05)
      << "design " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Designs, DtConvergenceP,
                         ::testing::Values('a', 'b', 'c'));

class SlackConsistencyP : public ::testing::TestWithParam<char> {};

TEST_P(SlackConsistencyP, SlackNeverExceedsFreeAreaOrRule) {
  const Layout layout = make_design(GetParam(), 12, 100.0, 8);
  ExtractOptions opt;
  const WindowExtraction ext = extract_windows(layout, opt);
  for (const auto& l : ext.layers)
    for (std::size_t k = 0; k < l.slack.size(); ++k) {
      const double rho = l.wire_density[k] + l.dummy_density[k];
      EXPECT_GE(l.slack[k], 0.0);
      // Over-dense windows (rho beyond the rule) must have zero slack.
      EXPECT_LE(l.slack[k], std::max(0.0, opt.max_density - rho) + 1e-9);
      EXPECT_LE(l.slack[k],
                std::max(0.0, 1.0 - rho) * opt.fill_utilization + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Designs, SlackConsistencyP,
                         ::testing::Values('a', 'b', 'c'));

}  // namespace
}  // namespace neurfill
