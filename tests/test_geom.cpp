// Unit tests for geometry, GLF I/O and the synthetic design generators.

#include <sstream>

#include <gtest/gtest.h>

#include "geom/designs.hpp"
#include "geom/glf_io.hpp"
#include "geom/layout.hpp"
#include "geom/rect.hpp"

namespace neurfill {
namespace {

TEST(Rect, AreaPerimeterWidth) {
  const Rect r(1.0, 2.0, 4.0, 6.0);
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 4.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_DOUBLE_EQ(r.perimeter(), 14.0);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(Rect{}.empty());
}

TEST(Rect, IntersectionCases) {
  const Rect a(0, 0, 10, 10);
  const Rect b(5, 5, 15, 15);
  const Rect c(20, 20, 30, 30);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  const Rect i = a.intersect(b);
  EXPECT_EQ(i, Rect(5, 5, 10, 10));
  EXPECT_TRUE(a.intersect(c).empty());
  // Touching edges (closed-open) do not intersect.
  EXPECT_FALSE(a.intersects(Rect(10, 0, 20, 10)));
}

TEST(Rect, ContainsClosedOpen) {
  const Rect r(0, 0, 1, 1);
  EXPECT_TRUE(r.contains(0.0, 0.0));
  EXPECT_FALSE(r.contains(1.0, 0.5));
  EXPECT_FALSE(r.contains(0.5, 1.0));
}

TEST(PerimeterInside, FullyInsideIsFullPerimeter) {
  const Rect r(2, 2, 4, 5);
  const Rect clip(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(perimeter_inside(r, clip), r.perimeter());
}

TEST(PerimeterInside, StraddlingSplitsEdges) {
  // Rect straddles the boundary x=5 between two 5x10 windows.
  const Rect r(3, 2, 7, 4);
  const Rect left(0, 0, 5, 10), right(5, 0, 10, 10);
  const double pl = perimeter_inside(r, left);
  const double pr = perimeter_inside(r, right);
  // Left window: full left edge (2) + two horizontal pieces (2+2).
  EXPECT_DOUBLE_EQ(pl, 2.0 + 2.0 + 2.0);
  // Right window: right edge (2) + two horizontal pieces (2+2).
  EXPECT_DOUBLE_EQ(pr, 2.0 + 2.0 + 2.0);
  EXPECT_DOUBLE_EQ(pl + pr, r.perimeter());
}

TEST(Layout, Accounting) {
  Layout l;
  l.name = "t";
  l.width_um = 100;
  l.height_um = 100;
  l.layers.resize(2);
  l.layers[0].wires.emplace_back(0, 0, 10, 10);
  l.layers[1].wires.emplace_back(0, 0, 5, 5);
  l.layers[1].dummies.emplace_back(20, 20, 25, 25);
  EXPECT_EQ(l.total_wire_count(), 2u);
  EXPECT_EQ(l.total_dummy_count(), 1u);
  EXPECT_DOUBLE_EQ(l.total_wire_area(), 125.0);
}

TEST(GlfIo, RoundTrip) {
  Layout l;
  l.name = "roundtrip";
  l.width_um = 200;
  l.height_um = 300;
  l.layers.resize(2);
  l.layers[0].name = "m1";
  l.layers[0].wires.emplace_back(0.5, 1.5, 10.25, 20.75);
  l.layers[0].dummies.emplace_back(50, 50, 60, 60);
  l.layers[1].name = "m2";
  l.layers[1].wires.emplace_back(1, 2, 3, 4);

  std::stringstream ss;
  write_glf(ss, l);
  const Layout r = read_glf(ss);
  EXPECT_EQ(r.name, "roundtrip");
  EXPECT_DOUBLE_EQ(r.width_um, 200);
  EXPECT_DOUBLE_EQ(r.height_um, 300);
  ASSERT_EQ(r.layers.size(), 2u);
  ASSERT_EQ(r.layers[0].wires.size(), 1u);
  EXPECT_EQ(r.layers[0].wires[0], l.layers[0].wires[0]);
  ASSERT_EQ(r.layers[0].dummies.size(), 1u);
  EXPECT_EQ(r.layers[1].wires[0], l.layers[1].wires[0]);
}

TEST(GlfIo, RejectsBadMagic) {
  std::stringstream ss("XYZ 1\n");
  EXPECT_THROW(read_glf(ss), std::runtime_error);
}

TEST(GlfIo, RejectsTruncated) {
  std::stringstream ss("GLF 1\nname t\nsize 10 10\nlayers 1\nlayer m wires 2 dummies 0\nw 0 0 1 1\n");
  EXPECT_THROW(read_glf(ss), std::runtime_error);
}

TEST(GlfIo, EncodedSizeMatchesStream) {
  const Layout l = make_design('a', 8, 100.0, 3);
  std::stringstream ss;
  write_glf(ss, l);
  EXPECT_EQ(glf_encoded_size(l), ss.str().size());
}

TEST(Designs, DeterministicForSeed) {
  const Layout a1 = make_design('a', 8, 100.0, 5);
  const Layout a2 = make_design('a', 8, 100.0, 5);
  ASSERT_EQ(a1.total_wire_count(), a2.total_wire_count());
  EXPECT_EQ(a1.layers[0].wires[0], a2.layers[0].wires[0]);
  const Layout a3 = make_design('a', 8, 100.0, 6);
  EXPECT_NE(a1.total_wire_count(), a3.total_wire_count());
}

TEST(Designs, AllWithinBounds) {
  for (const char which : {'a', 'b', 'c'}) {
    const Layout l = make_design(which, 16, 100.0, 1);
    EXPECT_EQ(l.layers.size(), 3u);
    EXPECT_GT(l.total_wire_count(), 100u);
    for (const auto& layer : l.layers)
      for (const auto& r : layer.wires) {
        EXPECT_GE(r.x0, 0.0);
        EXPECT_GE(r.y0, 0.0);
        EXPECT_LE(r.x1, l.width_um + 1e-9);
        EXPECT_LE(r.y1, l.height_um + 1e-9);
        EXPECT_FALSE(r.empty());
      }
  }
}

TEST(Designs, DistinctDensityCharacter) {
  // Design B (FPGA) must have lower overall density than A's dense corner
  // and C must have strong heterogeneity; sanity-check total areas differ.
  const Layout a = make_design('a', 16, 100.0, 2);
  const Layout b = make_design('b', 16, 100.0, 2);
  const Layout c = make_design('c', 16, 100.0, 2);
  const double area = a.width_um * a.height_um * 3;
  const double da = a.total_wire_area() / area;
  const double db = b.total_wire_area() / area;
  const double dc = c.total_wire_area() / area;
  // All designs have plausible global densities.
  for (const double d : {da, db, dc}) {
    EXPECT_GT(d, 0.05);
    EXPECT_LT(d, 0.7);
  }
  EXPECT_NE(da, db);
  EXPECT_NE(db, dc);
}

TEST(Designs, UnknownIdThrows) {
  EXPECT_THROW(make_design('z', 8, 100.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace neurfill
