// Finite-difference gradient checks for every autodiff op.  These are the
// load-bearing tests of the neural-network substrate: if they pass, the
// surrogate's backward propagation (the paper's 8134x-speedup mechanism) is
// mathematically trustworthy.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/module.hpp"
#include "nn/ops.hpp"
#include "nn/unet.hpp"

#include "gradcheck_util.hpp"

namespace neurfill::nn {
namespace {

using testing::expect_gradcheck;
using testing::expect_gradcheck_multi;
using testing::random_tensor;

TEST(GradCheck, AddSameShape) {
  expect_gradcheck_multi(
      [](const std::vector<Tensor>& in) { return sum(add(in[0], in[1])); },
      {random_tensor({3, 4}, 1), random_tensor({3, 4}, 2)}, 0);
}

TEST(GradCheck, AddBroadcastRight) {
  expect_gradcheck_multi(
      [](const std::vector<Tensor>& in) {
        return sum(mul(add(in[0], in[1]), in[0]));
      },
      {random_tensor({3, 4}, 3), random_tensor({1, 4}, 4)}, 1);
}

TEST(GradCheck, SubBroadcastScalarOperand) {
  expect_gradcheck_multi(
      [](const std::vector<Tensor>& in) {
        return sum(square(sub(in[0], in[1])));
      },
      {random_tensor({2, 3, 4}, 5), random_tensor({1}, 6)}, 1);
}

TEST(GradCheck, MulBothOperands) {
  const auto fn = [](const std::vector<Tensor>& in) {
    return sum(mul(in[0], in[1]));
  };
  std::vector<Tensor> in{random_tensor({2, 5}, 7), random_tensor({2, 5}, 8)};
  expect_gradcheck_multi(fn, in, 0);
  expect_gradcheck_multi(fn, in, 1);
}

TEST(GradCheck, DivDenominatorAwayFromZero) {
  expect_gradcheck_multi(
      [](const std::vector<Tensor>& in) { return sum(div(in[0], in[1])); },
      {random_tensor({4, 3}, 9), random_tensor({4, 3}, 10, 1.0f, 2.0f)}, 1);
}

TEST(GradCheck, ScalarOps) {
  expect_gradcheck(
      [](const Tensor& x) { return sum(add_scalar(mul_scalar(x, 2.5f), 0.3f)); },
      random_tensor({6}, 11));
}

TEST(GradCheck, ReluAwayFromKink) {
  Tensor x = random_tensor({5, 5}, 12);
  // Keep values away from 0 so finite differences are valid.
  for (std::int64_t i = 0; i < x.numel(); ++i)
    if (std::fabs(x.data()[i]) < 0.1f) x.data()[i] = 0.2f;
  expect_gradcheck([](const Tensor& t) { return sum(relu(t)); }, x);
}

TEST(GradCheck, LeakyRelu) {
  Tensor x = random_tensor({5, 5}, 13);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    if (std::fabs(x.data()[i]) < 0.1f) x.data()[i] = -0.2f;
  expect_gradcheck([](const Tensor& t) { return sum(leaky_relu(t, 0.1f)); }, x);
}

TEST(GradCheck, Sigmoid) {
  expect_gradcheck([](const Tensor& t) { return sum(sigmoid(t)); },
                   random_tensor({3, 7}, 14, -3.0f, 3.0f));
}

TEST(GradCheck, Tanh) {
  expect_gradcheck([](const Tensor& t) { return sum(tanh_op(t)); },
                   random_tensor({3, 7}, 15, -2.0f, 2.0f));
}

TEST(GradCheck, ExpLog) {
  expect_gradcheck(
      [](const Tensor& t) { return sum(log_op(exp_op(t))); },
      random_tensor({4}, 16, -1.0f, 1.0f));
  expect_gradcheck([](const Tensor& t) { return sum(log_op(t)); },
                   random_tensor({4}, 17, 0.5f, 2.0f));
}

TEST(GradCheck, AbsAwayFromKink) {
  Tensor x = random_tensor({6}, 18);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    if (std::fabs(x.data()[i]) < 0.1f) x.data()[i] = 0.3f;
  expect_gradcheck([](const Tensor& t) { return sum(abs_op(t)); }, x);
}

TEST(GradCheck, SqrtSquare) {
  expect_gradcheck([](const Tensor& t) { return sum(sqrt_op(t)); },
                   random_tensor({5}, 19, 0.5f, 2.0f));
  expect_gradcheck([](const Tensor& t) { return sum(square(t)); },
                   random_tensor({5}, 20));
}

TEST(GradCheck, Softplus) {
  expect_gradcheck([](const Tensor& t) { return sum(softplus(t, 3.0f)); },
                   random_tensor({8}, 21, -2.0f, 2.0f));
}

TEST(GradCheck, MeanAndVariance) {
  expect_gradcheck([](const Tensor& t) { return mean(t); },
                   random_tensor({3, 4}, 22));
  expect_gradcheck([](const Tensor& t) { return variance(t); },
                   random_tensor({3, 4}, 23));
}

TEST(GradCheck, SumAxisKeepdim) {
  expect_gradcheck(
      [](const Tensor& t) { return sum(square(sum_axis(t, 0))); },
      random_tensor({3, 4}, 24));
  expect_gradcheck(
      [](const Tensor& t) { return sum(square(mean_axis(t, 1))); },
      random_tensor({3, 4}, 25));
}

TEST(GradCheck, Reshape) {
  expect_gradcheck(
      [](const Tensor& t) { return sum(square(reshape(t, {2, 6}))); },
      random_tensor({3, 4}, 26));
}

TEST(GradCheck, ConcatChannels) {
  const auto fn = [](const std::vector<Tensor>& in) {
    return sum(square(concat_channels(in[0], in[1])));
  };
  std::vector<Tensor> in{random_tensor({2, 2, 3, 3}, 27),
                         random_tensor({2, 3, 3, 3}, 28)};
  expect_gradcheck_multi(fn, in, 0);
  expect_gradcheck_multi(fn, in, 1);
}

TEST(GradCheck, Matmul) {
  const auto fn = [](const std::vector<Tensor>& in) {
    return sum(square(matmul(in[0], in[1])));
  };
  std::vector<Tensor> in{random_tensor({3, 4}, 29), random_tensor({4, 2}, 30)};
  expect_gradcheck_multi(fn, in, 0);
  expect_gradcheck_multi(fn, in, 1);
}

TEST(GradCheck, LinearAllInputs) {
  const auto fn = [](const std::vector<Tensor>& in) {
    return sum(square(linear(in[0], in[1], in[2])));
  };
  std::vector<Tensor> in{random_tensor({3, 5}, 31), random_tensor({2, 5}, 32),
                         random_tensor({2}, 33)};
  for (std::size_t i = 0; i < 3; ++i) expect_gradcheck_multi(fn, in, i);
}

TEST(GradCheck, Conv2dInputWeightBias) {
  const auto fn = [](const std::vector<Tensor>& in) {
    return sum(square(conv2d(in[0], in[1], in[2], 1, 1)));
  };
  std::vector<Tensor> in{random_tensor({2, 3, 5, 5}, 34),
                         random_tensor({4, 3, 3, 3}, 35),
                         random_tensor({4}, 36)};
  for (std::size_t i = 0; i < 3; ++i) expect_gradcheck_multi(fn, in, i);
}

TEST(GradCheck, Conv2dStride2) {
  const auto fn = [](const std::vector<Tensor>& in) {
    return sum(square(conv2d(in[0], in[1], in[2], 2, 1)));
  };
  std::vector<Tensor> in{random_tensor({1, 2, 6, 6}, 37),
                         random_tensor({3, 2, 3, 3}, 38),
                         random_tensor({3}, 39)};
  for (std::size_t i = 0; i < 3; ++i) expect_gradcheck_multi(fn, in, i);
}

TEST(GradCheck, MaxPoolAwayFromTies) {
  Tensor x = random_tensor({1, 2, 4, 4}, 40);
  // Spread values so the argmax does not flip under the probe step.
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x.data()[i] += 0.05f * static_cast<float>(i % 7);
  expect_gradcheck([](const Tensor& t) { return sum(square(maxpool2x2(t))); },
                   x);
}

TEST(GradCheck, UpsampleNearest) {
  expect_gradcheck(
      [](const Tensor& t) { return sum(square(upsample_nearest2x(t))); },
      random_tensor({1, 3, 3, 3}, 41));
}

TEST(GradCheck, GroupNormAllInputs) {
  const auto fn = [](const std::vector<Tensor>& in) {
    return sum(square(group_norm(in[0], 2, in[1], in[2])));
  };
  std::vector<Tensor> in{random_tensor({2, 4, 3, 3}, 42),
                         random_tensor({4}, 43, 0.5f, 1.5f),
                         random_tensor({4}, 44)};
  for (std::size_t i = 0; i < 3; ++i)
    expect_gradcheck_multi(fn, in, i, 1e-2f, 5e-2f, 2e-3f);
}

TEST(GradCheck, Losses) {
  expect_gradcheck_multi(
      [](const std::vector<Tensor>& in) { return mse_loss(in[0], in[1]); },
      {random_tensor({3, 3}, 45), random_tensor({3, 3}, 46)}, 0);
  Tensor p = random_tensor({3, 3}, 47);
  Tensor t = random_tensor({3, 3}, 48);
  // Keep |p - t| away from the kink.
  for (std::int64_t i = 0; i < p.numel(); ++i)
    if (std::fabs(p.data()[i] - t.data()[i]) < 0.1f) p.data()[i] += 0.3f;
  expect_gradcheck_multi(
      [](const std::vector<Tensor>& in) { return l1_loss(in[0], in[1]); },
      {p, t}, 0);
}

// A value used twice must receive gradient contributions from both paths.
TEST(GradCheck, DiamondReuse) {
  expect_gradcheck(
      [](const Tensor& t) {
        Tensor a = mul_scalar(t, 2.0f);
        return sum(mul(a, add(a, t)));
      },
      random_tensor({4}, 49));
}

// End-to-end: a tiny UNet composes nearly every op; check d loss / d input.
TEST(GradCheck, TinyUNetInputGradient) {
  Rng rng(7);
  UNetConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 1;
  cfg.base_channels = 4;
  cfg.depth = 1;
  UNet net(cfg, rng);
  Tensor x = random_tensor({1, 2, 4, 4}, 50, 0.0f, 1.0f);
  // Loose tolerances: ReLU/maxpool kinks inside the composition make finite
  // differences noisy; exact per-op correctness is covered above.
  expect_gradcheck(
      [&net](const Tensor& t) { return sum(square(net.forward(t))); }, x,
      5e-3f, 2e-1f, 2e-2f);
}

}  // namespace
}  // namespace neurfill::nn
