// Unit and property tests for the full-chip CMP simulator: pad model,
// elastic contact solver, DSH removal rates, and the time-stepped simulator.

#include <cmath>

#include <gtest/gtest.h>

#include "cmp/contact_solver.hpp"
#include "cmp/dsh_model.hpp"
#include "cmp/pad_model.hpp"
#include "cmp/simulator.hpp"
#include "common/rng.hpp"
#include "geom/designs.hpp"

namespace neurfill {
namespace {

TEST(PadModel, KernelNormalizedAndPeaked) {
  const GridD k = make_character_kernel(60.0, 100.0);
  double sum = 0.0;
  for (const double v : k) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  const std::size_t c = k.rows() / 2;
  EXPECT_GT(k(c, c), k(0, 0));
}

TEST(PadModel, LargerCharLengthWiderKernel) {
  const GridD k1 = make_character_kernel(30.0, 100.0);
  const GridD k2 = make_character_kernel(300.0, 100.0);
  EXPECT_GT(k2.rows(), k1.rows());
}

TEST(PadModel, AsperityPressureLoadBalance) {
  Rng rng(1);
  GridD z(8, 8, 0.0);
  for (auto& v : z) v = rng.uniform(0, 1000);
  const GridD p = asperity_pressure(z, 500.0, 5.0);
  double mean = 0.0;
  for (const double v : p) mean += v;
  mean /= static_cast<double>(p.size());
  EXPECT_NEAR(mean, 5.0, 1e-9);
}

TEST(PadModel, HigherRegionsCarryMorePressure) {
  GridD z(4, 4, 0.0);
  z(1, 1) = 800.0;
  const GridD p = asperity_pressure(z, 500.0, 5.0);
  for (std::size_t k = 0; k < p.size(); ++k) {
    if (k != 1 * 4 + 1) {
      EXPECT_LT(p[k], p(1, 1));
    }
  }
}

TEST(PadModel, FlatSurfaceUniformPressure) {
  GridD z(5, 5, 123.0);
  const GridD p = asperity_pressure(z, 500.0, 3.0);
  for (const double v : p) EXPECT_NEAR(v, 3.0, 1e-9);
}

TEST(ElasticContact, FlatPunchEdgeConcentration) {
  // A rigid flat punch on an elastic half-space concentrates pressure at
  // the punch edges (classic contact mechanics), with everything in contact
  // and the total load conserved.
  ElasticContactSolver solver(8, 8);
  GridD z(8, 8, 0.0);
  const GridD p = solver.solve(z, 2.0);
  double total = 0.0;
  for (const double v : p) {
    EXPECT_GT(v, 0.0);  // full contact on a flat surface
    total += v;
  }
  EXPECT_NEAR(total, 2.0 * 64.0, 1e-6);
  EXPECT_GT(p(0, 0), p(3, 3));  // corners load highest
  EXPECT_GT(p(0, 3), p(3, 3));  // edges above centre
  // Four-fold symmetry.
  EXPECT_NEAR(p(0, 0), p(7, 7), 0.02 * p(0, 0));
  EXPECT_NEAR(p(2, 3), p(5, 4), 0.02 * p(2, 3));
}

TEST(ElasticContact, DeflectionLinearity) {
  ElasticContactSolver solver(8, 8);
  GridD p1(8, 8, 0.0), p2(8, 8, 0.0);
  p1(2, 2) = 1.0;
  p2(5, 6) = 2.0;
  GridD ps(8, 8, 0.0);
  ps(2, 2) = 1.0;
  ps(5, 6) = 2.0;
  const GridD u1 = solver.deflection(p1);
  const GridD u2 = solver.deflection(p2);
  const GridD us = solver.deflection(ps);
  for (std::size_t k = 0; k < us.size(); ++k)
    EXPECT_NEAR(us[k], u1[k] + u2[k], 1e-9);
}

TEST(ElasticContact, DeflectionDecaysWithDistance) {
  ElasticContactSolver solver(16, 16);
  GridD p(16, 16, 0.0);
  p(8, 8) = 1.0;
  const GridD u = solver.deflection(p);
  EXPECT_GT(u(8, 8), u(8, 12));
  EXPECT_GT(u(8, 12), u(8, 15));
  EXPECT_GT(u(8, 15), 0.0);
}

TEST(ElasticContact, HighBumpConcentratesPressure) {
  ElasticContactSolver::Options opt;
  // Stiff pad: deflection under the full load (~64 * 1.12 * 100 / E*) stays
  // below the bump height, so only the bump can be in contact.
  opt.effective_modulus = 1e5;
  ElasticContactSolver solver(8, 8, opt);
  GridD z(8, 8, 0.0);
  z(3, 3) = 100.0;
  const GridD p = solver.solve(z, 1.0);
  double total = 0.0;
  for (const double v : p) total += v;
  EXPECT_GT(p(3, 3) / total, 0.5);
  // Load conserved.
  EXPECT_NEAR(total, 64.0, 1e-6);
}

TEST(ElasticContact, PressureNonNegative) {
  Rng rng(2);
  ElasticContactSolver solver(8, 8);
  GridD z(8, 8, 0.0);
  for (auto& v : z) v = rng.uniform(0, 500);
  const GridD p = solver.solve(z, 4.0);
  for (const double v : p) EXPECT_GE(v, 0.0);
}

TEST(Dsh, BlanketRateAtZeroStep) {
  DshParams params;
  params.preston_k = 2.0;
  params.velocity = 3.0;
  // h = 0: pad touches everything; total removal = Preston blanket rate.
  const DshRates r = dsh_removal_rates(0.5, 0.0, 4.0, params);
  EXPECT_NEAR(r.up, 2.0 * 3.0 * 4.0, 1e-9);
  EXPECT_NEAR(r.down, r.up, 1e-9);
}

TEST(Dsh, LargeStepPolishesOnlyUp) {
  DshParams params;
  const DshRates r = dsh_removal_rates(0.5, 100.0 * params.critical_step, 4.0,
                                       params);
  EXPECT_NEAR(r.down, 0.0, 1e-9);
  // All pressure borne by the up fraction: rate = blanket / rho.
  EXPECT_NEAR(r.up, params.preston_k * 4.0 / 0.5, 1e-6);
}

TEST(Dsh, LowerDensityPolishesFaster) {
  DshParams params;
  const DshRates sparse = dsh_removal_rates(0.2, 2000.0, 4.0, params);
  const DshRates dense = dsh_removal_rates(0.8, 2000.0, 4.0, params);
  EXPECT_GT(sparse.up, dense.up);
}

TEST(Dsh, MassBalanceEqualsPreston) {
  DshParams params;
  params.preston_k = 1.7;
  params.velocity = 1.3;
  // Densities above the model's effective-contact floor (0.15); below it the
  // clamp intentionally breaks exact balance (the floor models load shared
  // with the neighbourhood).
  for (const double rho : {0.2, 0.4, 0.9}) {
    for (const double h : {0.0, 200.0, 1000.0}) {
      const DshRates r = dsh_removal_rates(rho, h, 5.0, params);
      // The DSH partition redistributes removal between up and down areas
      // but conserves the Preston blanket rate exactly.
      const double total = rho * r.up + (1.0 - rho) * r.down;
      EXPECT_NEAR(total, params.preston_k * 5.0 * params.velocity, 1e-9);
    }
  }
}

TEST(Dsh, MonotoneDecreasingStepHeightGap) {
  // rr_up >= rr_down always: steps can only shrink.
  DshParams params;
  for (const double rho : {0.05, 0.5, 0.95})
    for (const double h : {0.0, 50.0, 500.0, 5000.0}) {
      const DshRates r = dsh_removal_rates(rho, h, 3.0, params);
      EXPECT_GE(r.up, r.down - 1e-12);
    }
}

CmpProcessParams fast_params() {
  CmpProcessParams p;
  p.polish_time_s = 20.0;
  p.dt_s = 1.0;
  return p;
}

TEST(Simulator, UniformDensityGivesFlatProfile) {
  CmpSimulator sim(fast_params());
  LayerSimInput in;
  in.density = GridD(16, 16, 0.5);
  in.avg_width_um = GridD(16, 16, 20.0);
  in.perimeter_um = GridD(16, 16, 1000.0);
  in.incoming_height = GridD(16, 16, 0.0);
  const LayerSimResult r = sim.simulate_layer(in);
  double lo = r.height[0], hi = r.height[0];
  for (const double v : r.height) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(hi - lo, 0.0, 1e-6);
}

TEST(Simulator, SparseRegionsEndLower) {
  // The planarization physics the whole paper rests on: low-density windows
  // polish faster and end lower, which is why dummies are added there.
  CmpSimulator sim(fast_params());
  GridD density(16, 16, 0.7);
  for (std::size_t i = 4; i < 12; ++i)
    for (std::size_t j = 4; j < 12; ++j) density(i, j) = 0.15;
  LayerSimInput in;
  in.density = density;
  in.avg_width_um = GridD(16, 16, 20.0);
  in.perimeter_um = GridD(16, 16, 1000.0);
  in.incoming_height = GridD(16, 16, 0.0);
  const LayerSimResult r = sim.simulate_layer(in);
  EXPECT_LT(r.height(8, 8), r.height(1, 1));
}

TEST(Simulator, FillImprovesUniformity) {
  const Layout layout = make_design('a', 16, 100.0, 3);
  const WindowExtraction ext = extract_windows(layout);
  CmpSimulator sim(fast_params());
  const auto h0 = sim.simulate_heights(ext, {});
  // Fill all slack: densities become much more uniform.
  std::vector<GridD> x;
  for (const auto& l : ext.layers) x.push_back(l.slack);
  const auto h1 = sim.simulate_heights(ext, x);
  double var0 = 0.0, var1 = 0.0;
  for (std::size_t l = 0; l < h0.size(); ++l) {
    double m0 = 0.0, m1 = 0.0;
    for (std::size_t k = 0; k < h0[l].size(); ++k) {
      m0 += h0[l][k];
      m1 += h1[l][k];
    }
    m0 /= static_cast<double>(h0[l].size());
    m1 /= static_cast<double>(h1[l].size());
    for (std::size_t k = 0; k < h0[l].size(); ++k) {
      var0 += (h0[l][k] - m0) * (h0[l][k] - m0);
      var1 += (h1[l][k] - m1) * (h1[l][k] - m1);
    }
  }
  EXPECT_LT(var1, var0);
}

TEST(Simulator, MoreFillRaisesHeight) {
  // Monotonicity: adding fill to a window raises (or keeps) its height.
  const Layout layout = make_design('b', 8, 100.0, 3);
  const WindowExtraction ext = extract_windows(layout);
  CmpSimulator sim(fast_params());
  std::vector<GridD> x0(ext.num_layers(), GridD(ext.rows, ext.cols, 0.0));
  std::vector<GridD> x1 = x0;
  // Pick a window with slack on layer 1.
  std::size_t pick = 0;
  for (std::size_t k = 0; k < ext.layers[1].slack.size(); ++k)
    if (ext.layers[1].slack[k] > 0.3) pick = k;
  x1[1][pick] = ext.layers[1].slack[pick];
  const auto h0 = sim.simulate_heights(ext, x0);
  const auto h1 = sim.simulate_heights(ext, x1);
  EXPECT_GT(h1[1][pick], h0[1][pick]);
}

TEST(Simulator, DishingGrowsWithWidth) {
  CmpSimulator sim(fast_params());
  LayerSimInput in;
  in.density = GridD(8, 8, 0.5);
  in.avg_width_um = GridD(8, 8, 10.0);
  in.perimeter_um = GridD(8, 8, 1000.0);
  in.incoming_height = GridD(8, 8, 0.0);
  in.avg_width_um(2, 2) = 80.0;
  const LayerSimResult r = sim.simulate_layer(in);
  EXPECT_GT(r.dishing(2, 2), r.dishing(0, 0));
}

TEST(Simulator, ErosionNonNegativeAndZeroSomewhere) {
  const Layout layout = make_design('c', 8, 100.0, 2);
  const WindowExtraction ext = extract_windows(layout);
  CmpSimulator sim(fast_params());
  const auto res = sim.simulate(ext, {});
  for (const auto& r : res) {
    double min_er = 1e300;
    for (const double v : r.erosion) {
      EXPECT_GE(v, -1e-9);
      min_er = std::min(min_er, v);
    }
    EXPECT_NEAR(min_er, 0.0, 1e-9);
  }
}

TEST(Simulator, ElasticModelAgreesOnDirection) {
  // Both pressure models must agree that sparse regions end lower.
  CmpProcessParams p = fast_params();
  p.pressure_model = PressureModel::kElastic;
  p.polish_time_s = 10.0;
  CmpSimulator sim(p);
  GridD density(8, 8, 0.7);
  density(4, 4) = 0.1;
  density(4, 5) = 0.1;
  LayerSimInput in;
  in.density = density;
  in.avg_width_um = GridD(8, 8, 20.0);
  in.perimeter_um = GridD(8, 8, 1000.0);
  in.incoming_height = GridD(8, 8, 0.0);
  const LayerSimResult r = sim.simulate_layer(in);
  EXPECT_LT(r.height(4, 4), r.height(0, 0));
}

TEST(Simulator, MultiLayerTopographyPropagates) {
  // A density depression on layer 0 must leave a visible imprint in layer 1
  // even when layer 1 itself is uniform.
  CmpSimulator sim(fast_params());
  const std::size_t n = 12;
  WindowExtraction ext;
  ext.window_um = 100.0;
  ext.rows = ext.cols = n;
  ext.layers.resize(2);
  for (auto& l : ext.layers) {
    l.wire_density = GridD(n, n, 0.6);
    l.dummy_density = GridD(n, n, 0.0);
    l.perimeter_um = GridD(n, n, 1000.0);
    l.avg_width_um = GridD(n, n, 20.0);
    l.slack = GridD(n, n, 0.2);
    for (auto& st : l.slack_type) st = GridD(n, n, 0.05);
    l.nonoverlap_slack = GridD(n, n, 0.3);
  }
  for (std::size_t i = 3; i < 9; ++i)
    for (std::size_t j = 3; j < 9; ++j)
      ext.layers[0].wire_density(i, j) = 0.1;
  const auto res = sim.simulate(ext, {});
  // Layer 1 is uniform; any height variation there comes from the inherited
  // topography.
  double lo = res[1].height[0], hi = res[1].height[0];
  for (const double v : res[1].height) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 1.0);
  EXPECT_LT(res[1].height(6, 6), res[1].height(0, 0));
}

TEST(Simulator, RejectsBadInputs) {
  CmpSimulator sim(fast_params());
  LayerSimInput in;
  in.density = GridD(4, 4, 0.5);
  in.avg_width_um = GridD(3, 3, 1.0);  // mismatched
  in.perimeter_um = GridD(4, 4, 0.0);
  in.incoming_height = GridD(4, 4, 0.0);
  EXPECT_THROW(sim.simulate_layer(in), std::invalid_argument);
  CmpProcessParams bad;
  bad.polish_time_s = -1.0;
  EXPECT_THROW(CmpSimulator{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace neurfill
