// nf_lint acceptance tests (tools/nf_lint/lint.hpp).
//
// The core contract: every `LINT[<rule>]` marker comment in the
// tests/lint_fixtures/proj tree corresponds to exactly one finding, and the
// linter produces nothing else — so each rule is proven live (a rule that
// stops firing fails the marker diff) and false positives are caught the
// moment they appear.  The suite also pins the CLI exit-code contract
// (0 clean / 1 findings / 2 usage), the JSON report shape, suppression
// behavior, and — most importantly — that the real source tree lints clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "nf_lint/lint.hpp"

namespace lint = neurfill::lint;
namespace fs = std::filesystem;

namespace {

const char* fixture_dir() { return NF_LINT_FIXTURE_DIR; }
const char* source_root() { return NF_LINT_SOURCE_ROOT; }

/// (file, line, rule) triple; the common currency of these tests.
using Key = std::tuple<std::string, int, std::string>;

std::set<Key> finding_keys(const lint::Report& report) {
  std::set<Key> keys;
  for (const lint::Finding& f : report.findings)
    keys.insert({f.file, f.line, f.rule});
  return keys;
}

/// Scans every file under `root` for LINT[<rule>] markers and returns the
/// expected finding set.  Paths come back relative to `root` with '/'
/// separators, matching the linter's rel_path convention.
std::set<Key> marker_keys(const fs::path& root) {
  static const std::regex kMarker(R"(LINT\[([a-z-]+)\])");
  std::set<Key> keys;
  for (fs::recursive_directory_iterator it(root), end; it != end; ++it) {
    if (!it->is_regular_file()) continue;
    std::ifstream in(it->path());
    std::string line;
    int lineno = 0;
    const std::string rel = fs::relative(it->path(), root).generic_string();
    while (std::getline(in, line)) {
      ++lineno;
      for (std::sregex_iterator m(line.begin(), line.end(), kMarker), done;
           m != done; ++m)
        keys.insert({rel, lineno, (*m)[1].str()});
    }
  }
  return keys;
}

lint::Report run_on(const std::string& root,
                    std::vector<std::string> rules = {}) {
  lint::Options options;
  options.root = root;
  options.rules = std::move(rules);
  lint::Report report;
  std::string error;
  EXPECT_TRUE(lint::run_lint(options, &report, &error)) << error;
  return report;
}

std::string describe(const std::set<Key>& keys) {
  std::ostringstream out;
  for (const auto& [file, line, rule] : keys)
    out << "  " << file << ":" << line << " [" << rule << "]\n";
  return out.str();
}

TEST(LintLexer, TokensAndCommentChannel) {
  std::vector<lint::Comment> comments;
  const std::string src =
      "int x = 42; // trailing note\n"
      "/* block\n   spanning */ const char* s = \"a\\\"b\";\n"
      "auto r = R\"(raw \"quoted\" text)\";\n"
      "char c = 'q';\n";
  const std::vector<lint::Token> toks = lint::tokenize(src, &comments);

  ASSERT_EQ(comments.size(), 2u);
  EXPECT_EQ(comments[0].text, " trailing note");
  EXPECT_EQ(comments[0].line, 1);
  EXPECT_EQ(comments[1].line, 2);
  EXPECT_EQ(comments[1].end_line, 3);

  auto find_string = [&](const std::string& text) {
    for (const lint::Token& t : toks)
      if (t.kind == lint::TokKind::kString && t.text == text) return true;
    return false;
  };
  EXPECT_TRUE(find_string("a\\\"b"));
  EXPECT_TRUE(find_string("raw \"quoted\" text"));
  bool saw_char = false;
  for (const lint::Token& t : toks)
    saw_char = saw_char || (t.kind == lint::TokKind::kChar && t.text == "q");
  EXPECT_TRUE(saw_char);
}

TEST(LintRules, FixtureFindingsMatchMarkersExactly) {
  const fs::path proj = fs::path(fixture_dir()) / "proj";
  const std::set<Key> expected = marker_keys(proj);
  ASSERT_FALSE(expected.empty()) << "marker scan found nothing — fixture "
                                    "tree missing?";
  const std::set<Key> actual = finding_keys(run_on(proj.string()));

  std::set<Key> missing, extra;
  std::set_difference(expected.begin(), expected.end(), actual.begin(),
                      actual.end(), std::inserter(missing, missing.end()));
  std::set_difference(actual.begin(), actual.end(), expected.begin(),
                      expected.end(), std::inserter(extra, extra.end()));
  EXPECT_TRUE(missing.empty())
      << "marked lines with no finding (rule went dead?):\n"
      << describe(missing);
  EXPECT_TRUE(extra.empty())
      << "findings with no marker (false positive or suppression broken):\n"
      << describe(extra);
}

TEST(LintRules, EveryRegisteredRuleFiresInFixtures) {
  const fs::path proj = fs::path(fixture_dir()) / "proj";
  const lint::Report report = run_on(proj.string());
  for (const lint::RuleInfo& rule : lint::rule_infos()) {
    bool fired = false;
    for (const lint::Finding& f : report.findings)
      fired = fired || f.rule == rule.name;
    EXPECT_TRUE(fired) << "rule '" << rule.name
                       << "' produced no fixture finding";
  }
}

TEST(LintRules, RuleSelectionRestrictsFindings) {
  const fs::path proj = fs::path(fixture_dir()) / "proj";
  const lint::Report report = run_on(proj.string(), {"pragma-once"});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "pragma-once");
  EXPECT_EQ(report.findings[0].file, "src/geom/missing_pragma.hpp");
}

TEST(LintRules, CleanFixtureTreeIsClean) {
  const fs::path clean = fs::path(fixture_dir()) / "clean";
  const lint::Report report = run_on(clean.string());
  EXPECT_TRUE(report.findings.empty()) << describe(finding_keys(report));
  EXPECT_EQ(report.files_scanned, 2u);
}

TEST(LintRules, UnknownRuleIsAnError) {
  lint::Options options;
  options.root = (fs::path(fixture_dir()) / "clean").string();
  options.rules = {"no-such-rule"};
  lint::Report report;
  std::string error;
  EXPECT_FALSE(lint::run_lint(options, &report, &error));
  EXPECT_NE(error.find("no-such-rule"), std::string::npos) << error;
}

int cli(std::vector<std::string> args, std::string* out_text = nullptr) {
  args.insert(args.begin(), "nf_lint");
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const std::string& a : args) argv.push_back(a.c_str());
  std::ostringstream out, err;
  const int code = lint::run_cli(static_cast<int>(argv.size()), argv.data(),
                                 out, err);
  if (out_text) *out_text = out.str() + err.str();
  return code;
}

TEST(LintCli, ExitCodeContract) {
  const std::string proj = (fs::path(fixture_dir()) / "proj").string();
  const std::string clean = (fs::path(fixture_dir()) / "clean").string();
  EXPECT_EQ(cli({"--root", clean}), 0);
  EXPECT_EQ(cli({"--root", proj}), 1);
  EXPECT_EQ(cli({"--no-such-flag"}), 2);
  EXPECT_EQ(cli({"--root", clean, "--rule", "no-such-rule"}), 2);
  EXPECT_EQ(cli({"--root", proj, "--only", "does/not/exist"}), 2);
  EXPECT_EQ(cli({"--help"}), 0);
}

TEST(LintCli, ListRulesNamesEveryRule) {
  std::string text;
  EXPECT_EQ(cli({"--list-rules"}), 0);
  cli({"--list-rules"}, &text);
  for (const lint::RuleInfo& rule : lint::rule_infos())
    EXPECT_NE(text.find(rule.name), std::string::npos) << rule.name;
}

TEST(LintCli, JsonReportIsWrittenAndWellFormed) {
  const std::string proj = (fs::path(fixture_dir()) / "proj").string();
  const fs::path json_path =
      fs::path(testing::TempDir()) / "nf_lint_report.json";
  EXPECT_EQ(cli({"--root", proj, "--json", json_path.string()}), 1);

  std::ifstream in(json_path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  const std::size_t n = run_on(proj).findings.size();
  EXPECT_NE(json.find("\"count\":" + std::to_string(n)), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"pragma-once\""), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/geom/missing_pragma.hpp\""),
            std::string::npos);
  fs::remove(json_path);
}

TEST(LintCli, JsonEscapesSpecialCharacters) {
  lint::Report report;
  report.files_scanned = 1;
  report.findings.push_back(
      {"demo", "a\"b.cpp", 3, "line1\nline2\ttabbed \\ backslash"});
  const std::string json = lint::report_to_json(report);
  EXPECT_NE(json.find("a\\\"b.cpp"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\ttabbed \\\\ backslash"),
            std::string::npos);
}

// The teeth of the whole exercise: the real tree must lint clean.  Any new
// violation needs either a fix or an explicit, justified suppression.
TEST(LintTree, RealSourceTreeIsClean) {
  const lint::Report report = run_on(source_root());
  EXPECT_GT(report.files_scanned, 50u);
  EXPECT_TRUE(report.findings.empty())
      << "the source tree no longer lints clean:\n"
      << describe(finding_keys(report));
}

}  // namespace
