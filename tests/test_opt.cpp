// Tests for the optimization substrate: box-QP, L-BFGS Hessian, SQP, MSP.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "opt/box_qp.hpp"
#include "opt/sqp.hpp"

namespace neurfill {
namespace {

Box make_box(std::size_t n, double lo, double hi) {
  Box b;
  b.lo.assign(n, lo);
  b.hi.assign(n, hi);
  return b;
}

TEST(BoxQp, UnconstrainedQuadratic) {
  // q(d) = 0.5*(d-c)'D(d-c) with diagonal D -> min at d = c when inside box.
  const VecD c{1.0, -2.0, 0.5};
  const VecD D{2.0, 1.0, 4.0};
  VecD g(3);
  for (int i = 0; i < 3; ++i) g[static_cast<std::size_t>(i)] =
      -D[static_cast<std::size_t>(i)] * c[static_cast<std::size_t>(i)];
  const HessVec B = [&D](const VecD& v, VecD& out) {
    out.resize(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = D[i] * v[i];
  };
  const BoxQpResult r = solve_box_qp(B, g, make_box(3, -10.0, 10.0));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(r.d[i], c[i], 1e-6);
}

TEST(BoxQp, ActiveBoundIsRespected) {
  // Minimum at c = (3, -3) but box is [-1, 1]^2: solution clamps to (1, -1)
  // for a diagonal Hessian.
  const VecD g{-3.0, 3.0};
  const HessVec B = [](const VecD& v, VecD& out) { out = v; };
  const BoxQpResult r = solve_box_qp(B, g, make_box(2, -1.0, 1.0));
  EXPECT_NEAR(r.d[0], 1.0, 1e-8);
  EXPECT_NEAR(r.d[1], -1.0, 1e-8);
}

TEST(BoxQp, CoupledHessian) {
  // B = [[2,1],[1,2]], g = [-3,-3]: unconstrained solution d = (1,1).
  const HessVec B = [](const VecD& v, VecD& out) {
    out.resize(2);
    out[0] = 2.0 * v[0] + v[1];
    out[1] = v[0] + 2.0 * v[1];
  };
  const BoxQpResult r = solve_box_qp(B, VecD{-3.0, -3.0},
                                     make_box(2, -5.0, 5.0));
  EXPECT_NEAR(r.d[0], 1.0, 1e-6);
  EXPECT_NEAR(r.d[1], 1.0, 1e-6);
  // Partially active: box [0, 0.5] x [0, 5] forces d0 = 0.5; then
  // d1 = (3 - 0.5) / 2 = 1.25.
  Box tight;
  tight.lo = {0.0, 0.0};
  tight.hi = {0.5, 5.0};
  const BoxQpResult r2 = solve_box_qp(B, VecD{-3.0, -3.0}, tight);
  EXPECT_NEAR(r2.d[0], 0.5, 1e-6);
  EXPECT_NEAR(r2.d[1], 1.25, 1e-6);
}

TEST(BoxQp, LargerRandomProblemKktHolds) {
  Rng rng(3);
  const std::size_t n = 40;
  // SPD tridiagonal-ish Hessian.
  const HessVec B = [n](const VecD& v, VecD& out) {
    out.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] += 3.0 * v[i];
      if (i > 0) out[i] += -1.0 * v[i - 1];
      if (i + 1 < n) out[i] += -1.0 * v[i + 1];
    }
  };
  VecD g(n);
  for (auto& v : g) v = rng.uniform(-2.0, 2.0);
  const Box box = make_box(n, -0.3, 0.3);
  const BoxQpResult r = solve_box_qp(B, g, box);
  // KKT: projected gradient ~ 0.
  VecD Bd(n);
  B(r.d, Bd);
  for (std::size_t i = 0; i < n; ++i) {
    double pg = Bd[i] + g[i];
    if (r.d[i] <= box.lo[i] + 1e-10 && pg > 0.0) pg = 0.0;
    if (r.d[i] >= box.hi[i] - 1e-10 && pg < 0.0) pg = 0.0;
    EXPECT_NEAR(pg, 0.0, 1e-5) << "KKT violated at " << i;
  }
}

TEST(LbfgsHessian, SecantConditionHolds) {
  // After update(s, y), BFGS guarantees B s = y.
  LbfgsHessian h(5);
  const VecD s{1.0, 2.0, -1.0};
  const VecD y{2.0, 1.0, 0.5};
  h.update(s, y);
  VecD Bs;
  h.apply(s, Bs);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(Bs[i], y[i], 1e-10);
}

TEST(LbfgsHessian, StaysPositiveDefinite) {
  Rng rng(5);
  LbfgsHessian h(6);
  for (int k = 0; k < 20; ++k) {
    VecD s(4), y(4);
    for (auto& v : s) v = rng.uniform(-1, 1);
    for (auto& v : y) v = rng.uniform(-1, 1);  // may violate curvature
    h.update(s, y);
    VecD v(4), Bv;
    for (auto& x : v) x = rng.uniform(-1, 1);
    h.apply(v, Bv);
    double vBv = 0.0;
    for (std::size_t i = 0; i < 4; ++i) vBv += v[i] * Bv[i];
    EXPECT_GT(vBv, 0.0) << "after update " << k;
  }
}

TEST(Sqp, ConvexQuadraticConverges) {
  const ObjectiveFn f = [](const VecD& x, VecD* grad) {
    double v = 0.0;
    if (grad) grad->assign(x.size(), 0.0);
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double c = static_cast<double>(i) - 1.0;
      v += (x[i] - c) * (x[i] - c);
      if (grad) (*grad)[i] = 2.0 * (x[i] - c);
    }
    return v;
  };
  const SqpResult r =
      sqp_minimize(f, VecD{5.0, 5.0, 5.0}, make_box(3, -10.0, 10.0));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], -1.0, 1e-4);
  EXPECT_NEAR(r.x[1], 0.0, 1e-4);
  EXPECT_NEAR(r.x[2], 1.0, 1e-4);
}

TEST(Sqp, RosenbrockWithinBox) {
  const ObjectiveFn f = [](const VecD& x, VecD* grad) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    if (grad) {
      (*grad).assign(2, 0.0);
      (*grad)[0] = -2.0 * a - 400.0 * x[0] * b;
      (*grad)[1] = 200.0 * b;
    }
    return a * a + 100.0 * b * b;
  };
  SqpOptions opt;
  opt.max_iterations = 300;
  const SqpResult r = sqp_minimize(f, VecD{-1.2, 1.0},
                                   make_box(2, -2.0, 2.0), opt);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(Sqp, BindingBoundSolution) {
  // min (x+2)^2 with x in [0, 1]: solution is at the lower bound 0.
  const ObjectiveFn f = [](const VecD& x, VecD* grad) {
    if (grad) (*grad) = {2.0 * (x[0] + 2.0)};
    return (x[0] + 2.0) * (x[0] + 2.0);
  };
  const SqpResult r = sqp_minimize(f, VecD{0.7}, make_box(1, 0.0, 1.0));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 0.0, 1e-8);
}

TEST(Sqp, StartOutsideBoxIsClamped) {
  const ObjectiveFn f = [](const VecD& x, VecD* grad) {
    if (grad) (*grad) = {2.0 * x[0]};
    return x[0] * x[0];
  };
  const SqpResult r = sqp_minimize(f, VecD{99.0}, make_box(1, -1.0, 1.0));
  EXPECT_NEAR(r.x[0], 0.0, 1e-6);
}

TEST(Sqp, HonorsIterationBudget) {
  const ObjectiveFn f = [](const VecD& x, VecD* grad) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    if (grad) {
      (*grad) = {-2.0 * a - 400.0 * x[0] * b, 200.0 * b};
    }
    return a * a + 100.0 * b * b;
  };
  SqpOptions opt;
  opt.max_iterations = 3;
  const SqpResult r =
      sqp_minimize(f, VecD{-1.2, 1.0}, make_box(2, -2.0, 2.0), opt);
  EXPECT_LE(r.iterations, 3);
}

TEST(MspSqp, PicksBestBasinOfMultimodal) {
  // f(x) = (x^2 - 1)^2 + 0.1*x has minima near -1 (lower) and +1.
  const ObjectiveFn f = [](const VecD& x, VecD* grad) {
    const double v = x[0] * x[0] - 1.0;
    if (grad) (*grad) = {4.0 * x[0] * v + 0.1};
    return v * v + 0.1 * x[0];
  };
  const std::vector<VecD> starts{{0.9}, {-0.9}, {1.5}};
  const auto results = msp_sqp_minimize(f, starts, make_box(1, -2.0, 2.0));
  ASSERT_EQ(results.size(), 3u);
  // Sorted best first; best basin is x ~ -1.
  EXPECT_LT(results[0].x[0], 0.0);
  EXPECT_LE(results[0].f, results[1].f);
  EXPECT_LE(results[1].f, results[2].f);
}

TEST(NumericalGradient, MatchesAnalytic) {
  const ObjectiveFn f = [](const VecD& x, VecD*) {
    return std::sin(x[0]) + x[1] * x[1];
  };
  const VecD x{0.3, -0.7};
  const VecD g = numerical_gradient(f, x, 1e-6);
  EXPECT_NEAR(g[0], std::cos(0.3), 1e-6);
  EXPECT_NEAR(g[1], -1.4, 1e-6);
}

}  // namespace
}  // namespace neurfill
