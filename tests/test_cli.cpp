// Tests for the shared tool CLI: typed parsing, generated usage, the strict
// numeric parsers, and the common-option helpers.  The malformed-numeric
// cases are regression tests for the std::atoi era, where "--threads
// garbage" silently became thread count 0.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace neurfill {
namespace {

ArgParser::Result run_parse(const ArgParser& parser,
                            std::vector<const char*> args,
                            std::string* out_text = nullptr,
                            std::string* err_text = nullptr) {
  args.insert(args.begin(), "prog");
  std::ostringstream out;
  std::ostringstream err;
  const ArgParser::Result r =
      parser.parse(static_cast<int>(args.size()), args.data(), out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return r;
}

TEST(StrictParse, Int) {
  int v = -1;
  EXPECT_TRUE(parse_int_strict("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int_strict("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(parse_int_strict("+3", &v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(parse_int_strict("", &v));
  EXPECT_FALSE(parse_int_strict("garbage", &v));
  EXPECT_FALSE(parse_int_strict("12abc", &v));
  EXPECT_FALSE(parse_int_strict("1.5", &v));
  EXPECT_FALSE(parse_int_strict(" 3", &v));
  EXPECT_FALSE(parse_int_strict("3 ", &v));
  EXPECT_FALSE(parse_int_strict("99999999999999999999", &v));
}

TEST(StrictParse, Uint64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_uint64_strict("18446744073709551615", &v));
  EXPECT_EQ(v, std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(parse_uint64_strict("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_FALSE(parse_uint64_strict("-1", &v));  // strtoull would wrap this
  EXPECT_FALSE(parse_uint64_strict("", &v));
  EXPECT_FALSE(parse_uint64_strict("1e3", &v));
  EXPECT_FALSE(parse_uint64_strict("18446744073709551616", &v));
}

TEST(StrictParse, Double) {
  double v = 0.0;
  EXPECT_TRUE(parse_double_strict("2.5", &v));
  EXPECT_EQ(v, 2.5);
  EXPECT_TRUE(parse_double_strict("-1e-3", &v));
  EXPECT_EQ(v, -1e-3);
  EXPECT_FALSE(parse_double_strict("", &v));
  EXPECT_FALSE(parse_double_strict("12abc", &v));
  EXPECT_FALSE(parse_double_strict("abc", &v));
  EXPECT_FALSE(parse_double_strict("1e999", &v));
  EXPECT_FALSE(parse_double_strict("nan", &v));
  EXPECT_FALSE(parse_double_strict("inf", &v));
}

TEST(ArgParserTest, ParsesPositionalsAndTypedOptions) {
  std::string in, out, method = "pkb";
  int threads = 0;
  double window = 100.0;
  bool report = false;
  ArgParser p("tool", "desc");
  p.add_positional("in", "input", &in);
  p.add_positional("out", "output", &out);
  p.add_choice("--method", {"lin", "pkb"}, "method", &method);
  p.add_int("--threads", "N", "threads", &threads);
  p.add_double("--window", "UM", "window", &window);
  p.add_flag("--report", "report", &report);

  EXPECT_EQ(run_parse(p, {"a.glf", "--threads", "4", "--method", "lin",
                          "b.glf", "--window", "50.5", "--report"}),
            ArgParser::Result::kOk);
  EXPECT_EQ(in, "a.glf");
  EXPECT_EQ(out, "b.glf");
  EXPECT_EQ(method, "lin");
  EXPECT_EQ(threads, 4);
  EXPECT_EQ(window, 50.5);
  EXPECT_TRUE(report);
}

TEST(ArgParserTest, EqualsFormAndDefaults) {
  std::string name = "default";
  int n = 7;
  ArgParser p("tool", "desc");
  p.add_string("--name", "S", "name", &name);
  p.add_int("--n", "N", "n", &n);
  EXPECT_EQ(run_parse(p, {"--name=x=y"}), ArgParser::Result::kOk);
  EXPECT_EQ(name, "x=y");  // only the first '=' splits
  EXPECT_EQ(n, 7);         // untouched options keep their defaults
  EXPECT_EQ(run_parse(p, {"--n=3"}), ArgParser::Result::kOk);
  EXPECT_EQ(n, 3);
}

TEST(ArgParserTest, RejectsMalformedNumerics) {
  int threads = 0;
  double window = 100.0;
  std::uint64_t seed = 1;
  ArgParser p("tool", "desc");
  p.add_int("--threads", "N", "threads", &threads);
  p.add_double("--window", "UM", "window", &window);
  p.add_uint64("--seed", "S", "seed", &seed);

  std::string err;
  EXPECT_EQ(run_parse(p, {"--threads", "garbage"}, nullptr, &err),
            ArgParser::Result::kError);
  EXPECT_NE(err.find("invalid value 'garbage' for --threads"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("usage:"), std::string::npos);
  EXPECT_EQ(threads, 0);  // untouched, not silently zeroed

  EXPECT_EQ(run_parse(p, {"--window", "12abc"}, nullptr, &err),
            ArgParser::Result::kError);
  EXPECT_EQ(window, 100.0);

  EXPECT_EQ(run_parse(p, {"--seed", "-1"}, nullptr, &err),
            ArgParser::Result::kError);
  EXPECT_EQ(seed, 1u);
}

TEST(ArgParserTest, RejectsUnknownAndMalformedShapes) {
  std::string in;
  int n = 0;
  bool flag = false;
  ArgParser p("tool", "desc");
  p.add_positional("in", "input", &in);
  p.add_int("--n", "N", "n", &n);
  p.add_flag("--flag", "flag", &flag);

  std::string err;
  EXPECT_EQ(run_parse(p, {"x", "--bogus"}, nullptr, &err),
            ArgParser::Result::kError);
  EXPECT_NE(err.find("unknown option '--bogus'"), std::string::npos);

  EXPECT_EQ(run_parse(p, {"x", "--n"}, nullptr, &err),
            ArgParser::Result::kError);
  EXPECT_NE(err.find("requires a value"), std::string::npos);

  EXPECT_EQ(run_parse(p, {}, nullptr, &err), ArgParser::Result::kError);
  EXPECT_NE(err.find("missing required argument <in>"), std::string::npos);

  EXPECT_EQ(run_parse(p, {"x", "y"}, nullptr, &err),
            ArgParser::Result::kError);
  EXPECT_NE(err.find("unexpected argument 'y'"), std::string::npos);

  EXPECT_EQ(run_parse(p, {"x", "--flag=1"}, nullptr, &err),
            ArgParser::Result::kError);
  EXPECT_NE(err.find("does not take a value"), std::string::npos);
}

TEST(ArgParserTest, RejectsBadChoice) {
  std::string model = "asperity";
  ArgParser p("tool", "desc");
  p.add_choice("--pressure-model", {"asperity", "elastic"}, "model", &model);
  std::string err;
  EXPECT_EQ(run_parse(p, {"--pressure-model", "rigid"}, nullptr, &err),
            ArgParser::Result::kError);
  EXPECT_NE(err.find("expected one of asperity|elastic"), std::string::npos)
      << err;
  EXPECT_EQ(model, "asperity");
}

TEST(ArgParserTest, HelpPrintsUsage) {
  std::string in;
  CommonToolOptions common;
  ArgParser p("tool", "does things");
  p.add_positional("in", "input", &in);
  add_common_options(p, &common);
  std::string out;
  EXPECT_EQ(run_parse(p, {"--help"}, &out), ArgParser::Result::kHelp);
  EXPECT_NE(out.find("usage: tool <in> [options]"), std::string::npos) << out;
  EXPECT_NE(out.find("does things"), std::string::npos);
  // The shared flags are all registered by add_common_options.
  for (const char* flag : {"--threads", "--trace", "--metrics",
                           "--metrics-json", "--log-level"})
    EXPECT_NE(out.find(flag), std::string::npos) << flag;
  std::string short_out;
  EXPECT_EQ(run_parse(p, {"-h"}, &short_out), ArgParser::Result::kHelp);
  EXPECT_EQ(out, short_out);
}

TEST(CommonOptionsTest, ParseAndApply) {
  CommonToolOptions common;
  ArgParser p("tool", "desc");
  add_common_options(p, &common);
  EXPECT_EQ(run_parse(p, {"--metrics", "--log-level", "debug", "--trace",
                          "/tmp/t.json", "--metrics-json", "m.json"}),
            ArgParser::Result::kOk);
  EXPECT_TRUE(common.metrics);
  EXPECT_EQ(common.log_level, "debug");
  EXPECT_EQ(common.trace_path, "/tmp/t.json");
  EXPECT_EQ(common.metrics_json_path, "m.json");

  const LogLevel saved = log_level();
  std::ostringstream err;
  EXPECT_TRUE(apply_common_options(common, err));
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  EXPECT_TRUE(obs::tracing_enabled());
  EXPECT_TRUE(obs::metrics_enabled());
  obs::set_tracing_enabled(false);
  obs::set_metrics_enabled(false);
  set_log_level(saved);
}

TEST(CommonOptionsTest, RejectsNegativeThreads) {
  CommonToolOptions common;
  common.threads = -2;
  std::ostringstream err;
  EXPECT_FALSE(apply_common_options(common, err));
  EXPECT_NE(err.str().find("--threads"), std::string::npos);
}

TEST(CommonOptionsTest, RejectsBadLogLevel) {
  CommonToolOptions common;
  common.log_level = "loud";
  std::ostringstream err;
  EXPECT_FALSE(apply_common_options(common, err));
  EXPECT_NE(err.str().find("--log-level"), std::string::npos);
}

}  // namespace
}  // namespace neurfill
