// Tests for DRC-aware fill insertion: geometric cleanliness against wires
// and dummies, area realization, blocking behaviour, and rule validation.

#include <gtest/gtest.h>

#include "geom/designs.hpp"
#include "layout/fill_insertion.hpp"

namespace neurfill {
namespace {

class DrcInsertP : public ::testing::TestWithParam<char> {};

TEST_P(DrcInsertP, PlacementIsDrcCleanOnDesigns) {
  Layout layout = make_design(GetParam(), 8, 100.0, 3);
  const WindowExtraction ext = extract_windows(layout);
  std::vector<GridD> x;
  for (const auto& l : ext.layers) {
    GridD g = l.slack;
    for (auto& v : g) v *= 0.5;
    x.push_back(std::move(g));
  }
  DrcRules rules;
  const DrcInsertStats stats = insert_dummies_drc(layout, ext, x, rules);
  EXPECT_GT(stats.placed, 0u);
  EXPECT_TRUE(fill_is_drc_clean(layout, rules.spacing_um * 0.999))
      << "design " << GetParam();
  // Realized area never exceeds requested and is positive.
  EXPECT_GT(stats.realized_um2, 0.0);
  EXPECT_LE(stats.realized_um2, stats.requested_um2 * 1.30 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Designs, DrcInsertP, ::testing::Values('a', 'b', 'c'));

TEST(DrcInsert, EmptyWindowRealizesRequestedArea) {
  // A window with no wires at all: nothing blocks, area tracks the request.
  Layout layout;
  layout.name = "empty";
  layout.width_um = layout.height_um = 300.0;
  layout.layers.resize(1);
  layout.layers[0].wires.emplace_back(0, 0, 10, 10);  // one corner wire
  const WindowExtraction ext = extract_windows(layout);
  std::vector<GridD> x{GridD(ext.rows, ext.cols, 0.0)};
  x[0](1, 1) = 0.3;  // center window, far from the wire
  const DrcInsertStats stats = insert_dummies_drc(layout, ext, x);
  EXPECT_NEAR(stats.realized_um2, 0.3 * ext.window_area_um2(),
              0.2 * 0.3 * ext.window_area_um2());
  EXPECT_EQ(stats.blocked_sites, 0u);
}

TEST(DrcInsert, FullyCoveredWindowBlocksEverything) {
  Layout layout;
  layout.name = "blocked";
  layout.width_um = layout.height_um = 100.0;
  layout.layers.resize(1);
  layout.layers[0].wires.emplace_back(0, 0, 100, 100);  // full coverage
  const WindowExtraction ext = extract_windows(layout);
  std::vector<GridD> x{GridD(1, 1, 0.3)};  // ask anyway
  const DrcInsertStats stats = insert_dummies_drc(layout, ext, x);
  EXPECT_EQ(stats.placed, 0u);
  EXPECT_GT(stats.blocked_sites, 0u);
  EXPECT_EQ(stats.realized_um2, 0.0);
}

TEST(DrcInsert, SpacingRespectedAroundSingleWire) {
  Layout layout;
  layout.name = "one_wire";
  layout.width_um = layout.height_um = 100.0;
  layout.layers.resize(1);
  // A wire crossing the middle of the single window.
  layout.layers[0].wires.emplace_back(0, 45, 100, 55);
  const WindowExtraction ext = extract_windows(layout);
  std::vector<GridD> x{GridD(1, 1, 0.4)};
  DrcRules rules;
  rules.spacing_um = 3.0;
  insert_dummies_drc(layout, ext, x, rules);
  for (const Rect& d : layout.layers[0].dummies) {
    // Every dummy keeps >= spacing to the wire band.
    const bool below = d.y1 <= 45.0 - rules.spacing_um + 1e-9;
    const bool above = d.y0 >= 55.0 + rules.spacing_um - 1e-9;
    EXPECT_TRUE(below || above) << "dummy at y [" << d.y0 << "," << d.y1 << "]";
  }
  EXPECT_TRUE(fill_is_drc_clean(layout, rules.spacing_um * 0.999));
}

TEST(DrcInsert, ValidatesArguments) {
  Layout layout = make_design('a', 8, 100.0, 3);
  const WindowExtraction ext = extract_windows(layout);
  std::vector<GridD> wrong;
  EXPECT_THROW(insert_dummies_drc(layout, ext, wrong), std::invalid_argument);
  std::vector<GridD> x(3, GridD(ext.rows, ext.cols, 0.0));
  DrcRules bad;
  bad.sites_per_axis = 0;
  EXPECT_THROW(insert_dummies_drc(layout, ext, x, bad), std::invalid_argument);
  bad = DrcRules();
  bad.max_edge_um = bad.min_edge_um - 1.0;
  EXPECT_THROW(insert_dummies_drc(layout, ext, x, bad), std::invalid_argument);
}

TEST(DrcClean, DetectsViolations) {
  Layout layout;
  layout.width_um = layout.height_um = 100.0;
  layout.layers.resize(1);
  layout.layers[0].wires.emplace_back(10, 10, 20, 20);
  layout.layers[0].dummies.emplace_back(30, 30, 40, 40);
  EXPECT_TRUE(fill_is_drc_clean(layout, 2.0));
  // A dummy hugging the wire violates spacing.
  layout.layers[0].dummies.emplace_back(20.5, 10, 30, 20);
  EXPECT_FALSE(fill_is_drc_clean(layout, 2.0));
}

}  // namespace
}  // namespace neurfill
