// Tests for the src/runtime atomic-claiming thread pool and its
// data-parallel primitives, plus the cross-layer determinism contract:
// parallel results must be bitwise identical to serial ones at every
// thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "cmp/contact_solver.hpp"
#include "common/rng.hpp"
#include "nn/gemm.hpp"
#include "nn/ops.hpp"
#include "nn/tensor.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

using namespace neurfill;

namespace {

/// Restores the environment/hardware default thread count on scope exit so
/// tests cannot leak a pool size into each other.
struct ThreadCountGuard {
  ~ThreadCountGuard() { runtime::set_thread_count(0); }
};

/// Runs `fn` once per requested thread count and returns the results.
template <typename Fn>
auto at_thread_counts(const std::vector<int>& counts, Fn&& fn)
    -> std::vector<decltype(fn())> {
  ThreadCountGuard guard;
  std::vector<decltype(fn())> results;
  results.reserve(counts.size());
  for (const int t : counts) {
    runtime::set_thread_count(t);
    EXPECT_EQ(runtime::thread_count(), t);
    results.push_back(fn());
  }
  return results;
}

}  // namespace

TEST(ThreadPool, ReportsRequestedConcurrency) {
  runtime::ThreadPool pool(3);
  EXPECT_EQ(pool.threads(), 3);
  runtime::ThreadPool serial(1);
  EXPECT_EQ(serial.threads(), 1);
}

TEST(ThreadPool, ExecutesEveryBlockExactlyOnce) {
  runtime::ThreadPool pool(4);
  constexpr std::size_t kBlocks = 1000;
  std::vector<std::atomic<int>> hits(kBlocks);
  pool.for_blocks(kBlocks, [&](std::size_t b) { ++hits[b]; });
  for (std::size_t b = 0; b < kBlocks; ++b) EXPECT_EQ(hits[b].load(), 1);
}

TEST(ThreadPool, ZeroBlocksIsANoOp) {
  runtime::ThreadPool pool(2);
  pool.for_blocks(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, NestedCallDegradesToSerialInline) {
  runtime::ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  std::atomic<bool> saw_worker_context{false};
  pool.for_blocks(16, [&](std::size_t) {
    if (runtime::ThreadPool::inside_worker()) saw_worker_context = true;
    // A nested call must not deadlock; it runs inline on this participant.
    pool.for_blocks(4, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_TRUE(saw_worker_context.load());
  EXPECT_EQ(inner_total.load(), 16 * 4);
}

TEST(ThreadPool, FirstExceptionPropagatesAndPoolSurvives) {
  runtime::ThreadPool pool(4);
  EXPECT_THROW(
      pool.for_blocks(64,
                      [&](std::size_t b) {
                        if (b == 7) throw std::runtime_error("block 7");
                      }),
      std::runtime_error);
  // The pool must be fully quiesced and reusable after an error.
  std::atomic<int> ran{0};
  pool.for_blocks(32, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 32);
}

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
  runtime::parallel_for(8, 0,
                        [](std::size_t, std::size_t) { FAIL() << "no body"; });
}

TEST(ParallelFor, GrainLargerThanRangeIsOneInlineBlock) {
  int calls = 0;
  runtime::parallel_for(100, 7, [&](std::size_t begin, std::size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 7u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, CoversEveryIterationExactlyOnce) {
  ThreadCountGuard guard;
  runtime::set_thread_count(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  runtime::parallel_for(7, kN, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "iteration " << i;
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ThreadCountGuard guard;
  runtime::set_thread_count(4);
  EXPECT_THROW(runtime::parallel_for(
                   1, 100,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 41) throw std::invalid_argument("bad block");
                   }),
               std::invalid_argument);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  const double r = runtime::parallel_reduce(
      4, 0, 42.0, [](std::size_t, std::size_t) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(r, 42.0);
}

TEST(ParallelReduce, BitwiseIdenticalAcrossThreadCounts) {
  // Summing many irrational-ish doubles is order-sensitive in floating
  // point, so bitwise equality here proves the combination order is fixed.
  constexpr std::size_t kN = 100000;
  std::vector<double> v(kN);
  Rng rng(123);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0) * 1e3;
  const auto sum = [&] {
    return runtime::parallel_reduce(
        97, kN, 0.0,
        [&](std::size_t b0, std::size_t b1) {
          double s = 0.0;
          for (std::size_t k = b0; k < b1; ++k) s += v[k];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const auto results = at_thread_counts({1, 2, 5}, sum);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(RuntimeConfig, SetThreadCountRebuildsPool) {
  ThreadCountGuard guard;
  runtime::set_thread_count(3);
  EXPECT_EQ(runtime::thread_count(), 3);
  runtime::set_thread_count(1);
  EXPECT_EQ(runtime::thread_count(), 1);
  runtime::set_thread_count(0);  // environment/hardware default
  EXPECT_GE(runtime::thread_count(), 1);
}

TEST(Determinism, GemmBitwiseIdenticalAcrossThreadCounts) {
  const int M = 37, N = 29, K = 53;
  std::vector<float> A(static_cast<std::size_t>(M) * K);
  std::vector<float> B(static_cast<std::size_t>(K) * N);
  Rng rng(7);
  for (auto& x : A) x = static_cast<float>(rng.normal());
  for (auto& x : B) x = static_cast<float>(rng.normal());
  const auto run = [&] {
    // All three kernels: A/B are reinterpreted with compatible element
    // counts (MxK == KxM, KxN == NxK) so one buffer pair drives them all.
    std::vector<float> C(static_cast<std::size_t>(M) * N, 0.5f);
    nn::gemm_nn(M, N, K, A.data(), B.data(), C.data(), /*accumulate=*/true);
    std::vector<float> Cnt(static_cast<std::size_t>(M) * N);
    nn::gemm_nt(M, N, K, A.data(), B.data(), Cnt.data(), /*accumulate=*/false);
    std::vector<float> Ctn(static_cast<std::size_t>(M) * N);
    nn::gemm_tn(M, N, K, A.data(), B.data(), Ctn.data(), /*accumulate=*/false);
    C.insert(C.end(), Cnt.begin(), Cnt.end());
    C.insert(C.end(), Ctn.begin(), Ctn.end());
    return C;
  };
  const auto results = at_thread_counts({1, 2, 8}, run);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Determinism, ConvForwardBackwardBitwiseIdentical) {
  Rng rng(11);
  const int C = 3, O = 5, H = 16, W = 16, k = 3;
  std::vector<float> xd(static_cast<std::size_t>(C) * H * W);
  std::vector<float> wd(static_cast<std::size_t>(O) * C * k * k);
  std::vector<float> bd(static_cast<std::size_t>(O));
  for (auto& v : xd) v = static_cast<float>(rng.normal());
  for (auto& v : wd) v = static_cast<float>(rng.normal(0.0, 0.1));
  for (auto& v : bd) v = static_cast<float>(rng.normal());
  const auto run = [&] {
    nn::Tensor x = nn::Tensor::from_data({1, C, H, W}, xd, true);
    nn::Tensor w = nn::Tensor::from_data({O, C, k, k}, wd, true);
    nn::Tensor b = nn::Tensor::from_data({O}, bd, true);
    nn::Tensor y = nn::conv2d(x, w, b, /*stride=*/1, /*padding=*/1);
    nn::Tensor loss = nn::mse_loss(y, nn::Tensor::zeros(y.shape()));
    loss.backward();
    std::vector<float> out(y.data(), y.data() + y.numel());
    out.insert(out.end(), x.grad(), x.grad() + x.numel());
    out.insert(out.end(), w.grad(), w.grad() + w.numel());
    out.insert(out.end(), b.grad(), b.grad() + b.numel());
    return out;
  };
  const auto results = at_thread_counts({1, 2, 8}, run);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Determinism, ContactSolverBitwiseIdentical) {
  const std::size_t R = 24, C = 24;
  GridD height(R, C, 0.0);
  Rng rng(19);
  for (auto& h : height) h = rng.uniform(0.0, 50.0);
  ElasticContactSolver::Options opt;
  opt.max_iterations = 60;
  const auto run = [&] {
    ElasticContactSolver solver(R, C, opt);
    return solver.solve(height, /*nominal_pressure=*/1.5);
  };
  const auto results = at_thread_counts({1, 2, 8}, run);
  ASSERT_EQ(results[0].size(), results[1].size());
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    ASSERT_EQ(results[0][i], results[1][i]) << "cell " << i;
    ASSERT_EQ(results[0][i], results[2][i]) << "cell " << i;
  }
}

namespace {

/// Double-precision reference for all three GEMM layouts, plus the running
/// sum of |a*b| used to bound the float kernel's rounding error.
void reference_gemm(int variant, int M, int N, int K, const float* A,
                    const float* B, std::vector<double>& C,
                    std::vector<double>& Cabs) {
  C.assign(static_cast<std::size_t>(M) * N, 0.0);
  Cabs.assign(static_cast<std::size_t>(M) * N, 0.0);
  for (int i = 0; i < M; ++i)
    for (int j = 0; j < N; ++j)
      for (int k = 0; k < K; ++k) {
        double a = 0.0, b = 0.0;
        switch (variant) {
          case 0:  // nn: A(M,K), B(K,N)
            a = A[i * K + k];
            b = B[k * N + j];
            break;
          case 1:  // nt: A(M,K), B(N,K)
            a = A[i * K + k];
            b = B[j * K + k];
            break;
          default:  // tn: A(K,M), B(K,N)
            a = A[k * M + i];
            b = B[k * N + j];
        }
        C[static_cast<std::size_t>(i) * N + j] += a * b;
        Cabs[static_cast<std::size_t>(i) * N + j] += std::abs(a * b);
      }
}

void run_variant(int variant, int M, int N, int K, const float* A,
                 const float* B, float* C, bool accumulate) {
  switch (variant) {
    case 0: nn::gemm_nn(M, N, K, A, B, C, accumulate); break;
    case 1: nn::gemm_nt(M, N, K, A, B, C, accumulate); break;
    default: nn::gemm_tn(M, N, K, A, B, C, accumulate);
  }
}

}  // namespace

// Shapes chosen to hit every edge of the packed kernel: degenerate dims,
// primes that divide none of the tile sizes, and the register/cache tile
// boundaries themselves off by one (Mr = 6, Nr = 16, Kc = 256, Mc = 96).
TEST(PackedGemm, EdgeShapesMatchDoubleReference) {
  const int shapes[][3] = {
      {1, 1, 1},   {1, 17, 5},  {7, 1, 9},    {11, 23, 1},  {13, 17, 19},
      {97, 101, 103}, {5, 15, 12}, {6, 16, 96}, {7, 17, 97},  {12, 32, 255},
      {96, 16, 256}, {97, 33, 257}, {191, 47, 64},
  };
  Rng rng(23);
  for (const auto& s : shapes) {
    const int M = s[0], N = s[1], K = s[2];
    std::vector<float> A(static_cast<std::size_t>(std::max(M * K, K * M)));
    std::vector<float> B(static_cast<std::size_t>(std::max(K * N, N * K)));
    for (auto& v : A) v = static_cast<float>(rng.normal());
    for (auto& v : B) v = static_cast<float>(rng.normal());
    for (int variant = 0; variant < 3; ++variant) {
      for (const bool accumulate : {false, true}) {
        std::vector<float> C(static_cast<std::size_t>(M) * N);
        for (std::size_t i = 0; i < C.size(); ++i)
          C[i] = accumulate ? 0.25f * static_cast<float>(i % 7) : -99.0f;
        std::vector<double> ref, ref_abs;
        reference_gemm(variant, M, N, K, A.data(), B.data(), ref, ref_abs);
        if (accumulate)
          for (std::size_t i = 0; i < ref.size(); ++i)
            ref[i] += static_cast<double>(C[i]);
        run_variant(variant, M, N, K, A.data(), B.data(), C.data(),
                    accumulate);
        for (std::size_t i = 0; i < C.size(); ++i) {
          const double tol = 1e-4 * ref_abs[i] + 1e-4;
          ASSERT_NEAR(static_cast<double>(C[i]), ref[i], tol)
              << "variant " << variant << " accumulate " << accumulate
              << " shape " << M << "x" << N << "x" << K << " elem " << i;
        }
      }
    }
  }
}

// K = 300 crosses the Kc = 256 slab boundary, so per-element sums span two
// packed slabs; the fixed slab order must keep results bitwise identical at
// every thread count, for both overwrite and accumulate epilogues.
TEST(PackedGemm, SlabCrossingBitwiseIdenticalAcrossThreadCounts) {
  const int M = 23, N = 31, K = 300;
  Rng rng(29);
  std::vector<float> A(static_cast<std::size_t>(M) * K);
  std::vector<float> B(static_cast<std::size_t>(K) * N);
  for (auto& v : A) v = static_cast<float>(rng.normal());
  for (auto& v : B) v = static_cast<float>(rng.normal());
  const auto run = [&] {
    std::vector<float> out;
    for (int variant = 0; variant < 3; ++variant) {
      std::vector<float> C(static_cast<std::size_t>(M) * N, 0.125f);
      run_variant(variant, M, N, K, A.data(), B.data(), C.data(),
                  /*accumulate=*/true);
      out.insert(out.end(), C.begin(), C.end());
    }
    return out;
  };
  const auto results = at_thread_counts({1, 2, 8}, run);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}
