// Corruption-matrix tests for the NFCP checkpoint container
// (docs/robustness.md): a checkpoint damaged in any way — truncated at any
// byte, one byte flipped anywhere — must be rejected as a structured error
// before any field is restored, never half-parsed or crashed on.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"

namespace neurfill {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

struct Section {
  std::string name;
  std::vector<char> payload;
};

std::vector<Section> reference_sections() {
  std::vector<Section> s;
  ByteWriter meta;
  meta.u32(1);
  meta.str("pkb");
  meta.u64(2048);
  s.push_back({"meta", meta.take()});
  ByteWriter vecs;
  vecs.f64_vec({1.0, 2.5, -3.125, 0.0});
  vecs.f32_vec({0.5f, -0.25f});
  s.push_back({"vectors", vecs.take()});
  ByteWriter tail;
  tail.i64(-7);
  tail.f64(3.14159);
  s.push_back({"tail", tail.take()});
  return s;
}

void write_reference(const std::string& path) {
  CheckpointWriter w;
  for (const Section& s : reference_sections()) w.add_section(s.name, s.payload);
  ASSERT_TRUE(w.commit(path).ok());
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// True when the damaged image can no longer silently impersonate the
/// original: open() rejects it, or the original sections are no longer all
/// present with their original payloads (a flipped *name* byte yields a
/// CRC-valid file whose sections simply do not match — the restore path
/// then rejects it on the missing-section lookup).
bool corruption_detected(const std::string& path) {
  Expected<CheckpointReader> reader = CheckpointReader::open(path);
  if (!reader.ok()) return true;
  for (const Section& want : reference_sections()) {
    Expected<const std::vector<char>*> got = reader->section(want.name);
    if (!got.ok()) return true;
    if (**got != want.payload) return true;
  }
  return false;
}

TEST(CheckpointContainer, RoundTripPreservesSectionsAndOrder) {
  const std::string path = temp_path("ckpt_roundtrip.nfcp");
  write_reference(path);
  Expected<CheckpointReader> reader = CheckpointReader::open(path);
  ASSERT_TRUE(reader.ok()) << reader.error().to_string();
  const std::vector<std::string> want_names = {"meta", "vectors", "tail"};
  EXPECT_EQ(reader->section_names(), want_names);
  for (const Section& s : reference_sections()) {
    ASSERT_TRUE(reader->has_section(s.name));
    Expected<const std::vector<char>*> payload = reader->section(s.name);
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ(**payload, s.payload);
  }
  // ByteReader round-trip of one payload.
  ByteReader r(**reader->section("vectors"));
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{1.0, 2.5, -3.125, 0.0}));
  EXPECT_EQ(r.f32_vec(), (std::vector<float>{0.5f, -0.25f}));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
  std::remove(path.c_str());
}

TEST(CheckpointContainer, MissingSectionIsStructuredCorruptError) {
  const std::string path = temp_path("ckpt_missing.nfcp");
  write_reference(path);
  Expected<CheckpointReader> reader = CheckpointReader::open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->has_section("nope"));
  Expected<const std::vector<char>*> payload = reader->section("nope");
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.error().code, ErrorCode::kCorrupt);
  EXPECT_NE(payload.error().message.find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointContainer, MissingFileIsNotFound) {
  Expected<CheckpointReader> reader =
      CheckpointReader::open(temp_path("ckpt_never_written.nfcp"));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.error().code, ErrorCode::kNotFound);
}

TEST(CheckpointContainer, TruncationMatrixEveryPrefixRejected) {
  // Truncate the image at *every* byte count shorter than the file —
  // covering every section boundary and every mid-field cut — and require
  // a structured rejection each time (never a crash, never a half-restore).
  const std::string ref = temp_path("ckpt_trunc_ref.nfcp");
  const std::string cut = temp_path("ckpt_trunc_cut.nfcp");
  write_reference(ref);
  const std::vector<char> bytes = slurp(ref);
  ASSERT_GT(bytes.size(), 12u);
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    spit(cut, std::vector<char>(bytes.begin(), bytes.begin() + n));
    Expected<CheckpointReader> reader = CheckpointReader::open(cut);
    ASSERT_FALSE(reader.ok()) << "truncation at byte " << n << " accepted";
    EXPECT_EQ(reader.error().code, ErrorCode::kCorrupt) << "at byte " << n;
    EXPECT_NE(reader.error().message.find(cut), std::string::npos);
  }
  std::remove(ref.c_str());
  std::remove(cut.c_str());
}

TEST(CheckpointContainer, BitFlipMatrixEveryByteDetected) {
  // Flip one byte at every offset (header fields, section names, lengths,
  // checksums, payloads) and require the damage to be *detected*: open()
  // rejects the image, or the original sections no longer all match.
  const std::string ref = temp_path("ckpt_flip_ref.nfcp");
  const std::string bad = temp_path("ckpt_flip_bad.nfcp");
  write_reference(ref);
  const std::vector<char> bytes = slurp(ref);
  for (std::size_t off = 0; off < bytes.size(); ++off) {
    std::vector<char> flipped = bytes;
    flipped[off] = static_cast<char>(flipped[off] ^ 0x5A);
    spit(bad, flipped);
    EXPECT_TRUE(corruption_detected(bad))
        << "byte flip at offset " << off << " went unnoticed";
  }
  std::remove(ref.c_str());
  std::remove(bad.c_str());
}

TEST(CheckpointContainer, AppendedGarbageRejected) {
  const std::string path = temp_path("ckpt_garbage.nfcp");
  write_reference(path);
  std::vector<char> bytes = slurp(path);
  bytes.push_back('x');
  spit(path, bytes);
  Expected<CheckpointReader> reader = CheckpointReader::open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.error().code, ErrorCode::kCorrupt);
  std::remove(path.c_str());
}

TEST(CheckpointContainer, FailedCommitLeavesLastGoodReadable) {
#if defined(NEURFILL_DISABLE_FAULTS)
  GTEST_SKIP() << "fault injection compiled out (NEURFILL_ENABLE_FAULTS=OFF)";
#endif
  // An interrupted commit (rename fault mid-write) must leave the previous
  // checkpoint fully readable — the resume path then restores from it.
  const std::string path = temp_path("ckpt_lastgood.nfcp");
  write_reference(path);
  const std::vector<char> before = slurp(path);

  fault::disarm_all();
  fault::arm_hit("io.rename", 1);
  CheckpointWriter w;
  ByteWriter b;
  b.str("newer state");
  w.add_section("meta", b.take());
  Expected<void> res = w.commit(path);
  fault::disarm_all();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, ErrorCode::kIo);

  EXPECT_EQ(slurp(path), before);  // bitwise-identical last-good image
  EXPECT_TRUE(CheckpointReader::open(path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointContainer, Crc32MatchesZlibVectors) {
  // Known zlib crc32 answers, so external tooling can interoperate.
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  const char* h = "hello world";
  EXPECT_EQ(crc32(h, 11), 0x0D4A1185u);
}

}  // namespace
}  // namespace neurfill
