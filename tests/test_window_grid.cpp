// Unit tests for window extraction and fill insertion.

#include <gtest/gtest.h>

#include "geom/designs.hpp"
#include "layout/window_grid.hpp"

namespace neurfill {
namespace {

Layout single_rect_layout(const Rect& r, int layers = 1, double chip = 200.0) {
  Layout l;
  l.name = "t";
  l.width_um = chip;
  l.height_um = chip;
  l.layers.resize(static_cast<std::size_t>(layers));
  l.layers[0].wires.push_back(r);
  return l;
}

TEST(WindowExtraction, GridDimensions) {
  const Layout l = single_rect_layout(Rect(0, 0, 10, 10), 2, 250.0);
  ExtractOptions opt;
  opt.window_um = 100.0;
  const WindowExtraction ext = extract_windows(l, opt);
  EXPECT_EQ(ext.rows, 3u);  // ceil(250/100)
  EXPECT_EQ(ext.cols, 3u);
  EXPECT_EQ(ext.num_layers(), 2u);
  EXPECT_EQ(ext.num_windows(), 18u);
}

TEST(WindowExtraction, DensityExactForAlignedRect) {
  // 50x100 rect inside one 100x100 window -> density 0.5 there.
  const Layout l = single_rect_layout(Rect(0, 0, 50, 100));
  const WindowExtraction ext = extract_windows(l);
  EXPECT_NEAR(ext.layers[0].wire_density(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(ext.layers[0].wire_density(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(ext.layers[0].wire_density(1, 0), 0.0, 1e-12);
}

TEST(WindowExtraction, DensitySplitsAcrossWindows) {
  // Rect straddling the x=100 boundary.
  const Layout l = single_rect_layout(Rect(50, 0, 150, 50));
  const WindowExtraction ext = extract_windows(l);
  EXPECT_NEAR(ext.layers[0].wire_density(0, 0), 0.25, 1e-12);
  EXPECT_NEAR(ext.layers[0].wire_density(0, 1), 0.25, 1e-12);
  // Total area is conserved.
  double total = 0.0;
  for (const double d : ext.layers[0].wire_density) total += d * 100.0 * 100.0;
  EXPECT_NEAR(total, 100.0 * 50.0, 1e-9);
}

TEST(WindowExtraction, PerimeterConservedAcrossWindows) {
  const Layout l = single_rect_layout(Rect(50, 30, 150, 70));
  const WindowExtraction ext = extract_windows(l);
  double total = 0.0;
  for (const double p : ext.layers[0].perimeter_um) total += p;
  EXPECT_NEAR(total, Rect(50, 30, 150, 70).perimeter(), 1e-9);
}

TEST(WindowExtraction, AvgWidthRecoversLineWidth) {
  // A long 10um-wide line: avg width ~ 2*A/P -> ~9.5um for 10x190.
  const Layout l = single_rect_layout(Rect(0, 0, 190, 10));
  const WindowExtraction ext = extract_windows(l);
  const double w = ext.layers[0].avg_width_um(0, 0);
  EXPECT_GT(w, 8.0);
  EXPECT_LT(w, 11.0);
}

TEST(WindowExtraction, SlackRespectsMaxDensity) {
  // Window already at 0.8 density with max 0.85 -> slack <= 0.05.
  const Layout l = single_rect_layout(Rect(0, 0, 80, 100));
  ExtractOptions opt;
  opt.max_density = 0.85;
  const WindowExtraction ext = extract_windows(l, opt);
  EXPECT_LE(ext.layers[0].slack(0, 0), 0.05 + 1e-12);
  EXPECT_GE(ext.layers[0].slack(0, 0), 0.0);
}

TEST(WindowExtraction, EmptyWindowHasLargeSlack) {
  const Layout l = single_rect_layout(Rect(0, 0, 10, 10));
  const WindowExtraction ext = extract_windows(l);
  EXPECT_GT(ext.layers[0].slack(1, 1), 0.8);
}

TEST(WindowExtraction, FourTypeSplitSumsToSlack) {
  const Layout l = make_design('a', 8, 100.0, 3);
  const WindowExtraction ext = extract_windows(l);
  for (std::size_t li = 0; li < ext.num_layers(); ++li) {
    const auto& d = ext.layers[li];
    for (std::size_t k = 0; k < d.slack.size(); ++k) {
      const double sum = d.slack_type[0][k] + d.slack_type[1][k] +
                         d.slack_type[2][k] + d.slack_type[3][k];
      EXPECT_NEAR(sum, d.slack[k], 1e-9);
      for (const auto& st : d.slack_type) EXPECT_GE(st[k], -1e-12);
    }
  }
}

TEST(WindowExtraction, BottomLayerHasNoLowerWireTypes) {
  // Layer 0 has no layer below, so type 3 and 4 (over lower wire) are zero.
  const Layout l = make_design('b', 8, 100.0, 3);
  const WindowExtraction ext = extract_windows(l);
  for (std::size_t k = 0; k < ext.layers[0].slack.size(); ++k) {
    EXPECT_NEAR(ext.layers[0].slack_type[2][k], 0.0, 1e-12);
    EXPECT_NEAR(ext.layers[0].slack_type[3][k], 0.0, 1e-12);
  }
}

TEST(WindowExtraction, TopLayerNonOverlapSlackIsOne) {
  const Layout l = make_design('c', 8, 100.0, 3);
  const WindowExtraction ext = extract_windows(l);
  const auto& top = ext.layers.back();
  for (std::size_t k = 0; k < top.nonoverlap_slack.size(); ++k)
    EXPECT_NEAR(top.nonoverlap_slack[k], 1.0, 1e-12);
}

TEST(WindowExtraction, DensityMethodAddsDummies) {
  Layout l = single_rect_layout(Rect(0, 0, 50, 100));
  l.layers[0].dummies.emplace_back(50, 0, 75, 100);
  const WindowExtraction ext = extract_windows(l);
  EXPECT_NEAR(ext.layers[0].dummy_density(0, 0), 0.25, 1e-12);
  EXPECT_NEAR(ext.layers[0].density()(0, 0), 0.75, 1e-12);
}

TEST(InsertDummies, RealizesRequestedArea) {
  Layout l = single_rect_layout(Rect(0, 0, 10, 10), 1, 300.0);
  const WindowExtraction ext = extract_windows(l);
  std::vector<GridD> x{GridD(ext.rows, ext.cols, 0.0)};
  x[0](1, 1) = 0.2;
  const std::size_t n = insert_dummies(l, ext, x);
  EXPECT_GT(n, 0u);
  // Re-extract: the dummy density in window (1,1) should be ~0.2.
  const WindowExtraction ext2 = extract_windows(l);
  EXPECT_NEAR(ext2.layers[0].dummy_density(1, 1), 0.2, 0.03);
  // No dummies elsewhere.
  EXPECT_NEAR(ext2.layers[0].dummy_density(0, 0), 0.0, 1e-12);
}

TEST(InsertDummies, ValidatesArguments) {
  Layout l = single_rect_layout(Rect(0, 0, 10, 10));
  const WindowExtraction ext = extract_windows(l);
  std::vector<GridD> wrong_layers;
  EXPECT_THROW(insert_dummies(l, ext, wrong_layers), std::invalid_argument);
  std::vector<GridD> wrong_shape{GridD(1, 1, 0.0)};
  EXPECT_THROW(insert_dummies(l, ext, wrong_shape), std::invalid_argument);
}

TEST(Grid2DRegion, CopyExtractsExactValues) {
  GridD g(4, 5, 0.0);
  for (std::size_t i = 0; i < g.rows(); ++i)
    for (std::size_t j = 0; j < g.cols(); ++j)
      g(i, j) = static_cast<double>(10 * i + j);
  const GridD sub = g.copy_region(1, 2, 2, 3);
  ASSERT_EQ(sub.rows(), 2u);
  ASSERT_EQ(sub.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(sub(i, j), g(1 + i, 2 + j));
}

TEST(Grid2DRegion, PasteRoundTripsAndLeavesRestUntouched) {
  GridD g(4, 5, -1.0);
  GridD patch(2, 2, 0.0);
  patch(0, 0) = 1.0;
  patch(0, 1) = 2.0;
  patch(1, 0) = 3.0;
  patch(1, 1) = 4.0;
  g.paste_region(2, 3, patch);
  EXPECT_DOUBLE_EQ(g(2, 3), 1.0);
  EXPECT_DOUBLE_EQ(g(3, 4), 4.0);
  EXPECT_DOUBLE_EQ(g(1, 3), -1.0);
  EXPECT_DOUBLE_EQ(g(2, 2), -1.0);
  const GridD back = g.copy_region(2, 3, 2, 2);
  for (std::size_t k = 0; k < patch.size(); ++k)
    EXPECT_DOUBLE_EQ(back[k], patch[k]);
}

TEST(Grid2DRegion, ClippedEdgeTileShapesWork) {
  // The fullchip tiler produces short edge tiles: a region flush against
  // the last row/column must copy and paste cleanly.
  GridD g(7, 9, 0.5);
  const GridD edge = g.copy_region(5, 7, 2, 2);  // touches both far edges
  EXPECT_EQ(edge.rows(), 2u);
  g.paste_region(5, 7, edge);
  const GridD row = g.copy_region(6, 0, 1, 9);  // full last row
  EXPECT_EQ(row.cols(), 9u);
}

TEST(Grid2DRegionDeathTest, BoundsViolationsAbort) {
  GridD g(3, 3, 0.0);
  EXPECT_DEATH(g.copy_region(2, 0, 2, 1), "copy_region");
  EXPECT_DEATH(g.copy_region(0, 3, 1, 1), "copy_region");
  const GridD patch(2, 2, 0.0);
  EXPECT_DEATH(g.paste_region(2, 0, patch), "paste_region");
  EXPECT_DEATH(g.paste_region(0, 2, patch), "paste_region");
}

TEST(WindowExtraction, RejectsBadOptions) {
  const Layout l = single_rect_layout(Rect(0, 0, 10, 10));
  ExtractOptions opt;
  opt.window_um = 0.0;
  EXPECT_THROW(extract_windows(l, opt), std::invalid_argument);
  Layout empty;
  EXPECT_THROW(extract_windows(empty), std::invalid_argument);
}

}  // namespace
}  // namespace neurfill
