// Tests of the nf_serve daemon subsystem (docs/serving.md):
//  * wire protocol — JSON parse/render round-trips, malformed-input and
//    depth-bound rejection, HTTP response shape;
//  * job records — serialize/deserialize round-trip, truncation and
//    range validation;
//  * write-ahead journal — recovery, and the corruption matrix: a record
//    file truncated at EVERY byte prefix and bit-flipped at EVERY byte
//    must either recover the identical record or quarantine, never yield
//    a different record;
//  * scheduler — admission control (kOverloaded/kQueueFull, sub-second
//    rejection), deterministic jitter-free backoff, retry-until-exhausted,
//    interrupt re-queue, drain;
//  * runner — artifact production, corrupt-snapshot quarantine with a
//    byte-identical re-solve, the surrogate cache, serve.worker_crash;
//  * daemon end-to-end over a real loopback socket, including the
//    serve.accept and serve.reply_short_write fault sites.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.hpp"
#include "common/log.hpp"
#include "geom/designs.hpp"
#include "geom/glf_io.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/job.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/runner.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"

namespace neurfill::serve {
namespace {

std::string test_dir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "nf_serve_" + leaf;
  std::error_code ignored;
  std::filesystem::remove_all(dir, ignored);  // hermetic across reruns
  return dir;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

JobRecord sample_record() {
  JobRecord rec;
  rec.id = "j000042";
  rec.spec.design = "in.glf";
  rec.spec.out = "out.glf";
  rec.spec.method = "pkb";
  rec.spec.surrogate = "w/unet";
  rec.spec.window_um = 50.0;
  rec.spec.deadline_s = 12.5;
  rec.spec.max_attempts = 3;
  rec.state = JobState::kFailed;
  JobAttempt a;
  a.ok = false;
  a.code = ErrorCode::kNonConverged;
  a.message = "[opt.sqp] non_converged: residual too high";
  a.runtime_s = 1.25;
  rec.attempts.push_back(a);
  a.ok = true;
  a.code = ErrorCode::kIo;
  a.message.clear();
  a.runtime_s = 2.5;
  rec.attempts.push_back(a);
  rec.outcome.dummies = 123;
  rec.outcome.runtime_s = 3.5;
  rec.outcome.evaluations = 77;
  rec.outcome.degraded = true;
  rec.final_error = "[serve.scheduler] retry_exhausted: 3 attempts failed";
  return rec;
}

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, ParseRenderRoundTrip) {
  const std::string text =
      R"({"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null},"f":"ué"})";
  Expected<JsonValue> v = json_parse(text);
  ASSERT_TRUE(v.ok()) << v.error().to_string();
  EXPECT_EQ(v->object.at("a").array.size(), 3u);
  EXPECT_DOUBLE_EQ(v->object.at("a").array[1].number, 2.5);
  EXPECT_EQ(v->object.at("b").object.at("c").string, "x\ny");
  EXPECT_TRUE(v->object.at("b").object.at("d").boolean);
  EXPECT_EQ(v->object.at("b").object.at("e").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v->object.at("f").string, "u\xc3\xa9");
  // Render -> parse -> render is a fixed point (sorted keys, stable
  // number formatting).
  const std::string once = json_render(*v);
  Expected<JsonValue> again = json_parse(once);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(json_render(*again), once);
}

TEST(ServeProtocol, TypedAccessorsFallBack) {
  Expected<JsonValue> v =
      json_parse(R"({"s":"x","n":4,"b":true,"wrong":"kind"})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->get_string("s"), "x");
  EXPECT_EQ(v->get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(v->get_number("n"), 4.0);
  EXPECT_EQ(v->get_number("wrong", -1.0), -1.0);
  EXPECT_TRUE(v->get_bool("b"));
  EXPECT_FALSE(v->get_bool("missing"));
}

TEST(ServeProtocol, MalformedInputIsStructuredError) {
  const char* bad[] = {
      "",           "{",       "[1,",      "\"unterminated", "{\"a\":}",
      "tru",        "1 2",     "{\"a\":1,}",                 "nul",
      "{\"a\" 1}",  "\x01",    "[1,2] []",
  };
  for (const char* text : bad) {
    Expected<JsonValue> v = json_parse(text);
    ASSERT_FALSE(v.ok()) << "accepted: " << text;
    EXPECT_EQ(v.error().code, ErrorCode::kInvalidArgument);
  }
}

TEST(ServeProtocol, DepthBoundStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "[";
  EXPECT_FALSE(json_parse(deep).ok());
  // 8 levels is comfortably inside the bound.
  EXPECT_TRUE(json_parse("[[[[[[[[1]]]]]]]]").ok());
}

TEST(ServeProtocol, ErrorReplyAndHttpShape) {
  const std::string reply = error_reply(
      Error(ErrorCode::kOverloaded, "serve.admission", "queue full"));
  Expected<JsonValue> v = json_parse(reply);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->get_bool("ok", true));
  EXPECT_EQ(v->get_string("code"), "overloaded");
  const std::string resp = http_response(200, "application/json", "{}\n");
  EXPECT_EQ(resp.rfind("HTTP/1.0 200", 0), 0u);
  EXPECT_NE(resp.find("Content-Length: 3"), std::string::npos);
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);
  EXPECT_NE(resp.find("\r\n\r\n{}\n"), std::string::npos);
}

// --------------------------------------------------------------- job model

TEST(ServeJob, SerializeRoundTrip) {
  const JobRecord rec = sample_record();
  const std::vector<char> bytes = rec.serialize();
  Expected<JobRecord> back = JobRecord::deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back->serialize(), bytes);
  EXPECT_EQ(back->id, rec.id);
  EXPECT_EQ(back->state, JobState::kFailed);
  ASSERT_EQ(back->attempts.size(), 2u);
  EXPECT_EQ(back->attempts[0].code, ErrorCode::kNonConverged);
  EXPECT_EQ(back->outcome.dummies, 123u);
  EXPECT_EQ(back->final_error, rec.final_error);
}

TEST(ServeJob, EveryTruncatedPrefixIsRejected) {
  const std::vector<char> bytes = sample_record().serialize();
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const std::vector<char> prefix(bytes.begin(),
                                   bytes.begin() + static_cast<long>(n));
    Expected<JobRecord> r = JobRecord::deserialize(prefix);
    EXPECT_FALSE(r.ok()) << "prefix of " << n << " bytes parsed";
    if (!r.ok()) {
      EXPECT_EQ(r.error().code, ErrorCode::kCorrupt);
    }
  }
}

TEST(ServeJob, OutOfRangeStateAndVersionAreRejected) {
  JobRecord rec = sample_record();
  std::vector<char> bytes = rec.serialize();
  bytes[0] = 9;  // format version (little-endian u32 low byte)
  EXPECT_FALSE(JobRecord::deserialize(bytes).ok());
  bytes = rec.serialize();
  std::vector<char> trailing = bytes;
  trailing.push_back('x');
  EXPECT_FALSE(JobRecord::deserialize(trailing).ok());
}

// ----------------------------------------------------------------- journal

TEST(ServeJournal, WriteRecoverRoundTrip) {
  const std::string dir = test_dir("journal_rt");
  Expected<JobJournal> j = JobJournal::open(dir);
  ASSERT_TRUE(j.ok()) << j.error().to_string();
  JobRecord a = sample_record();
  a.id = "j000002";
  JobRecord b = sample_record();
  b.id = "j000001";
  b.state = JobState::kQueued;
  ASSERT_TRUE(j->write(a).ok());
  ASSERT_TRUE(j->write(b).ok());
  Expected<JobJournal::Recovery> rec = j->recover();
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->quarantined, 0u);
  ASSERT_EQ(rec->records.size(), 2u);
  // Sorted by id regardless of write/readdir order.
  EXPECT_EQ(rec->records[0].id, "j000001");
  EXPECT_EQ(rec->records[1].id, "j000002");
  j->remove("j000001");
  j->remove("j000002");
  Expected<JobJournal::Recovery> empty = j->recover();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->records.empty());
}

// The crash-safety acceptance matrix: the on-disk record is truncated at
// every byte prefix and bit-flipped at every byte; recovery must either
// return the original record byte-for-byte or quarantine the file — a
// wrong-but-parseable record is the one outcome that may never happen.
TEST(ServeJournal, CorruptionMatrixNeverYieldsAWrongRecord) {
  const std::string dir = test_dir("journal_matrix");
  Expected<JobJournal> j = JobJournal::open(dir);
  ASSERT_TRUE(j.ok());
  JobRecord rec = sample_record();
  ASSERT_TRUE(j->write(rec).ok());
  const std::string path = j->record_path(rec.id);
  const std::vector<char> good = read_file(path);
  ASSERT_GT(good.size(), 32u);
  const std::vector<char> want = rec.serialize();

  std::size_t quarantined_total = 0;
  const auto check_variant = [&](const std::vector<char>& bytes,
                                 const std::string& what) {
    write_file(path, bytes);
    Expected<JobJournal::Recovery> r = j->recover();
    ASSERT_TRUE(r.ok()) << what;
    if (r->records.empty()) {
      EXPECT_EQ(r->quarantined, 1u) << what;
      quarantined_total++;
      std::remove((path + ".corrupt").c_str());
    } else {
      ASSERT_EQ(r->records.size(), 1u) << what;
      EXPECT_EQ(r->records[0].serialize(), want)
          << what << ": recovered a DIFFERENT record";
    }
  };

  for (std::size_t n = 0; n < good.size(); ++n) {
    check_variant(std::vector<char>(good.begin(),
                                    good.begin() + static_cast<long>(n)),
                  "truncation to " + std::to_string(n) + " bytes");
  }
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::vector<char> flipped = good;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x40);
    check_variant(flipped, "bit flip at byte " + std::to_string(i));
  }
  // The container CRC makes essentially every variant quarantine; if most
  // sailed through the matrix is not testing anything.
  EXPECT_GT(quarantined_total, good.size());
  write_file(path, good);
  Expected<JobJournal::Recovery> r = j->recover();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0].serialize(), want);
}

TEST(ServeJournal, RecordUnderWrongFilenameIsQuarantined) {
  const std::string dir = test_dir("journal_wrongname");
  Expected<JobJournal> j = JobJournal::open(dir);
  ASSERT_TRUE(j.ok());
  JobRecord rec = sample_record();
  ASSERT_TRUE(j->write(rec).ok());
  // A record copied over another job's file must not resurrect under the
  // wrong id.
  write_file(j->record_path("j000099"), read_file(j->record_path(rec.id)));
  Expected<JobJournal::Recovery> r = j->recover();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->quarantined, 1u);
  ASSERT_EQ(r->records.size(), 1u);
  EXPECT_EQ(r->records[0].id, rec.id);
}

TEST(ServeJournal, JournalWriteFaultFailsTheCommit) {
#if defined(NEURFILL_DISABLE_FAULTS)
  GTEST_SKIP() << "fault injection compiled out";
#endif
  fault::disarm_all();
  const std::string dir = test_dir("journal_fault");
  Expected<JobJournal> j = JobJournal::open(dir);
  ASSERT_TRUE(j.ok());
  fault::arm_hit("serve.journal_write", 1);
  Expected<void> w = j->write(sample_record());
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.error().code, ErrorCode::kIo);
  fault::disarm_all();
  EXPECT_TRUE(j->write(sample_record()).ok());
}

// --------------------------------------------------------------- scheduler

SchedulerOptions fast_sched_opts() {
  SchedulerOptions o;
  o.queue_capacity = 4;
  o.max_records = 16;
  o.default_max_attempts = 3;
  o.backoff_base_s = 0.001;  // keep retry tests fast
  o.backoff_cap_s = 0.004;
  return o;
}

Scheduler::PersistFn noop_persist() {
  return [](const JobRecord&) { return Expected<void>(); };
}
Scheduler::SnapshotPathFn no_snapshot() {
  return [](const std::string&) { return std::string(); };
}

JobSpec quick_spec() {
  JobSpec s;
  s.design = "d.glf";
  s.out = "o.glf";
  s.method = "lin";
  return s;
}

/// Runs the scheduler worker on a thread; stops and joins on destruction.
struct WorkerThread {
  explicit WorkerThread(Scheduler& s)
      : sched(s), t([&s] { s.run_worker(); }) {}
  ~WorkerThread() {
    sched.stop();
    t.join();
  }
  Scheduler& sched;
  std::thread t;
};

JobState wait_terminal(Scheduler& s, const std::string& id,
                       double timeout_s = 30.0) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(timeout_s);
  JobRecord rec;
  while (std::chrono::steady_clock::now() < until) {
    if (s.find(id, &rec) && (rec.state == JobState::kCompleted ||
                             rec.state == JobState::kFailed ||
                             rec.state == JobState::kCancelled))
      return rec.state;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return rec.state;
}

TEST(ServeScheduler, RetryDelayIsPureAndCapped) {
  EXPECT_DOUBLE_EQ(retry_delay_s(0, 0.25, 30.0), 0.0);
  EXPECT_DOUBLE_EQ(retry_delay_s(1, 0.25, 30.0), 0.25);
  EXPECT_DOUBLE_EQ(retry_delay_s(2, 0.25, 30.0), 0.5);
  EXPECT_DOUBLE_EQ(retry_delay_s(3, 0.25, 30.0), 1.0);
  EXPECT_DOUBLE_EQ(retry_delay_s(10, 0.25, 30.0), 30.0);
  EXPECT_DOUBLE_EQ(retry_delay_s(60, 0.25, 30.0), 30.0);  // no overflow
  // Identical inputs, identical schedule — there is no jitter to diff.
  for (int k = 1; k < 8; ++k)
    EXPECT_DOUBLE_EQ(retry_delay_s(k, 0.1, 5.0), retry_delay_s(k, 0.1, 5.0));
}

TEST(ServeScheduler, RecoverableCodePolicy) {
  EXPECT_TRUE(is_recoverable(ErrorCode::kIo));
  EXPECT_TRUE(is_recoverable(ErrorCode::kNonConverged));
  EXPECT_TRUE(is_recoverable(ErrorCode::kNumericPoison));
  EXPECT_TRUE(is_recoverable(ErrorCode::kResourceExhausted));
  EXPECT_FALSE(is_recoverable(ErrorCode::kInvalidArgument));
  EXPECT_FALSE(is_recoverable(ErrorCode::kNotFound));
  EXPECT_FALSE(is_recoverable(ErrorCode::kCorrupt));
  EXPECT_FALSE(is_recoverable(ErrorCode::kDeadlineExceeded));
  EXPECT_FALSE(is_recoverable(ErrorCode::kOverloaded));
}

TEST(ServeScheduler, FullQueueRejectsOverloadedWithoutWaiting) {
  std::atomic<bool> release{false};
  Scheduler s(
      fast_sched_opts(),
      [&](const JobRecord&, const Deadline&, const std::string&,
          const std::atomic<bool>*) -> Expected<JobOutcome> {
        while (!release.load()) std::this_thread::sleep_for(
            std::chrono::milliseconds(1));
        return JobOutcome{};
      },
      noop_persist(), no_snapshot());
  WorkerThread worker(s);
  // First job runs (and blocks on `release`); wait for the worker to pick
  // it up so the next 4 submissions deterministically fill the queue.
  std::vector<std::string> ids;
  Expected<std::string> first = s.submit(quick_spec());
  ASSERT_TRUE(first.ok());
  ids.push_back(*first);
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < until && !s.stats().running)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(s.stats().running);
  for (int i = 0; i < 4; ++i) {
    Expected<std::string> id = s.submit(quick_spec());
    ASSERT_TRUE(id.ok()) << i << ": " << id.error().message;
    ids.push_back(*id);
  }

  const auto t0 = std::chrono::steady_clock::now();
  Expected<std::string> rejected = s.submit(quick_spec());
  const double reject_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, ErrorCode::kOverloaded);
  // The acceptance bar is <10ms; allow slack for sanitizer builds while
  // still catching a deadline-long hang.
  EXPECT_LT(reject_s, 1.0);
  release.store(true);
  for (const std::string& id : ids)
    EXPECT_EQ(wait_terminal(s, id), JobState::kCompleted);
}

TEST(ServeScheduler, RecordTableFullRejectsQueueFull) {
  SchedulerOptions opts = fast_sched_opts();
  opts.max_records = 2;
  opts.queue_capacity = 8;
  Scheduler s(opts,
              [](const JobRecord&, const Deadline&, const std::string&,
                 const std::atomic<bool>*) -> Expected<JobOutcome> {
                return JobOutcome{};
              },
              noop_persist(), no_snapshot());
  ASSERT_TRUE(s.submit(quick_spec()).ok());
  ASSERT_TRUE(s.submit(quick_spec()).ok());
  Expected<std::string> third = s.submit(quick_spec());
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.error().code, ErrorCode::kQueueFull);
}

TEST(ServeScheduler, DrainingRejectsOverloaded) {
  Scheduler s(fast_sched_opts(),
              [](const JobRecord&, const Deadline&, const std::string&,
                 const std::atomic<bool>*) -> Expected<JobOutcome> {
                return JobOutcome{};
              },
              noop_persist(), no_snapshot());
  s.begin_drain();
  Expected<std::string> id = s.submit(quick_spec());
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.error().code, ErrorCode::kOverloaded);
}

TEST(ServeScheduler, PersistFailureRejectsAdmission) {
  Scheduler s(fast_sched_opts(),
              [](const JobRecord&, const Deadline&, const std::string&,
                 const std::atomic<bool>*) -> Expected<JobOutcome> {
                return JobOutcome{};
              },
              [](const JobRecord&) -> Expected<void> {
                return Error(ErrorCode::kIo, "test", "disk on fire");
              },
              no_snapshot());
  Expected<std::string> id = s.submit(quick_spec());
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.error().code, ErrorCode::kIo);
  EXPECT_EQ(s.stats().records, 0u);  // nothing retained
}

TEST(ServeScheduler, RecoverableFailuresRetryThenComplete) {
  std::atomic<int> calls{0};
  Scheduler s(fast_sched_opts(),
              [&](const JobRecord&, const Deadline&, const std::string&,
                  const std::atomic<bool>*) -> Expected<JobOutcome> {
                if (calls.fetch_add(1) < 2)
                  return Error(ErrorCode::kIo, "test", "transient");
                JobOutcome o;
                o.dummies = 7;
                return o;
              },
              noop_persist(), no_snapshot());
  WorkerThread worker(s);
  Expected<std::string> id = s.submit(quick_spec());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(wait_terminal(s, *id), JobState::kCompleted);
  JobRecord rec;
  ASSERT_TRUE(s.find(*id, &rec));
  ASSERT_EQ(rec.attempts.size(), 3u);
  EXPECT_FALSE(rec.attempts[0].ok);
  EXPECT_EQ(rec.attempts[0].code, ErrorCode::kIo);
  EXPECT_FALSE(rec.attempts[1].ok);
  EXPECT_TRUE(rec.attempts[2].ok);
  EXPECT_EQ(rec.outcome.dummies, 7u);
}

TEST(ServeScheduler, ExhaustedRetriesFailWithRetryExhausted) {
  Scheduler s(fast_sched_opts(),
              [](const JobRecord&, const Deadline&, const std::string&,
                 const std::atomic<bool>*) -> Expected<JobOutcome> {
                return Error(ErrorCode::kNonConverged, "test", "stuck");
              },
              noop_persist(), no_snapshot());
  WorkerThread worker(s);
  Expected<std::string> id = s.submit(quick_spec());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(wait_terminal(s, *id), JobState::kFailed);
  JobRecord rec;
  ASSERT_TRUE(s.find(*id, &rec));
  EXPECT_EQ(rec.attempts.size(), 3u);
  EXPECT_NE(rec.final_error.find("retry_exhausted"), std::string::npos);
  EXPECT_NE(rec.final_error.find("non_converged"), std::string::npos);
}

TEST(ServeScheduler, PermanentErrorFailsOnFirstAttempt) {
  Scheduler s(fast_sched_opts(),
              [](const JobRecord&, const Deadline&, const std::string&,
                 const std::atomic<bool>*) -> Expected<JobOutcome> {
                return Error(ErrorCode::kNotFound, "test", "no such design");
              },
              noop_persist(), no_snapshot());
  WorkerThread worker(s);
  Expected<std::string> id = s.submit(quick_spec());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(wait_terminal(s, *id), JobState::kFailed);
  JobRecord rec;
  ASSERT_TRUE(s.find(*id, &rec));
  EXPECT_EQ(rec.attempts.size(), 1u);
  EXPECT_NE(rec.final_error.find("not_found"), std::string::npos);
}

TEST(ServeScheduler, QueueExpiredDeadlineFailsCheaply) {
  std::atomic<int> executions{0};
  Scheduler s(fast_sched_opts(),
              [&](const JobRecord&, const Deadline&, const std::string&,
                  const std::atomic<bool>*) -> Expected<JobOutcome> {
                executions.fetch_add(1);
                return JobOutcome{};
              },
              noop_persist(), no_snapshot());
  JobSpec spec = quick_spec();
  spec.deadline_s = 1e-9;  // expires before the worker even starts
  Expected<std::string> id = s.submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  WorkerThread worker(s);
  EXPECT_EQ(wait_terminal(s, *id), JobState::kFailed);
  JobRecord rec;
  ASSERT_TRUE(s.find(*id, &rec));
  EXPECT_EQ(executions.load(), 0);  // never reached the solver
  EXPECT_TRUE(rec.attempts.empty());
  EXPECT_NE(rec.final_error.find("deadline_exceeded"), std::string::npos);
}

TEST(ServeScheduler, InterruptedSolveRequeuesWithoutConsumingAnAttempt) {
  std::atomic<int> calls{0};
  Scheduler s(fast_sched_opts(),
              [&](const JobRecord&, const Deadline&, const std::string&,
                  const std::atomic<bool>*) -> Expected<JobOutcome> {
                calls.fetch_add(1);
                return Error(ErrorCode::kInterrupted, "test",
                             "checkpointed and stopped");
              },
              noop_persist(), no_snapshot());
  std::thread t([&] { s.run_worker(); });
  Expected<std::string> id = s.submit(quick_spec());
  ASSERT_TRUE(id.ok());
  while (calls.load() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  s.begin_drain();  // worker parks once the re-queued job is all that's left
  t.join();
  JobRecord rec;
  ASSERT_TRUE(s.find(*id, &rec));
  EXPECT_EQ(rec.state, JobState::kQueued);  // durably queued for restart
  EXPECT_TRUE(rec.attempts.empty());        // no attempt consumed
}

TEST(ServeScheduler, CancelQueuedJob) {
  Scheduler s(fast_sched_opts(),
              [](const JobRecord&, const Deadline&, const std::string&,
                 const std::atomic<bool>*) -> Expected<JobOutcome> {
                return JobOutcome{};
              },
              noop_persist(), no_snapshot());
  Expected<std::string> id = s.submit(quick_spec());
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(s.cancel(*id));
  EXPECT_FALSE(s.cancel(*id));  // already cancelled
  EXPECT_FALSE(s.cancel("j999999"));
  JobRecord rec;
  ASSERT_TRUE(s.find(*id, &rec));
  EXPECT_EQ(rec.state, JobState::kCancelled);
}

TEST(ServeScheduler, RestoreRequeuesRunningRecordsAndKeepsIdsMonotonic) {
  std::atomic<int> calls{0};
  Scheduler s(fast_sched_opts(),
              [&](const JobRecord&, const Deadline&, const std::string&,
                  const std::atomic<bool>*) -> Expected<JobOutcome> {
                calls.fetch_add(1);
                return JobOutcome{};
              },
              noop_persist(), no_snapshot());
  JobRecord crashed;
  crashed.id = "j000007";
  crashed.spec = quick_spec();
  crashed.spec.max_attempts = 3;
  crashed.state = JobState::kRunning;  // the previous daemon died mid-attempt
  s.restore(crashed);
  JobRecord done = sample_record();  // terminal: stays queryable only
  done.id = "j000003";
  s.restore(done);
  WorkerThread worker(s);
  EXPECT_EQ(wait_terminal(s, "j000007"), JobState::kCompleted);
  EXPECT_EQ(calls.load(), 1);
  JobRecord rec;
  ASSERT_TRUE(s.find("j000003", &rec));
  EXPECT_EQ(rec.state, JobState::kFailed);
  // New ids continue past the recovered maximum.
  Expected<std::string> fresh = s.submit(quick_spec());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*fresh, "j000008");
}

// ------------------------------------------------------------------ runner

TEST(ServeRunner, LinJobProducesArtifact) {
  const std::string dir = test_dir("runner_lin");
  ASSERT_TRUE(JobJournal::open(dir).ok());  // reuse for mkdir
  const Layout design = make_design('a', 4, 100.0, 7);
  write_glf_file(dir + "/in.glf", design);
  JobRunner runner(RunnerOptions{});
  JobRecord rec;
  rec.id = "j000001";
  rec.spec.design = dir + "/in.glf";
  rec.spec.out = dir + "/out.glf";
  rec.spec.method = "lin";
  Expected<JobOutcome> out = runner.run(rec, Deadline(), "", nullptr);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_GT(out->dummies, 0u);
  EXPECT_FALSE(read_file(dir + "/out.glf").empty());
}

TEST(ServeRunner, UnknownMethodAndMissingDesignAreStructuredErrors) {
  JobRunner runner(RunnerOptions{});
  JobRecord rec;
  rec.id = "j000001";
  rec.spec.design = "does_not_exist.glf";
  rec.spec.out = "unused.glf";
  rec.spec.method = "quantum";
  Expected<JobOutcome> bad_method = runner.run(rec, Deadline(), "", nullptr);
  ASSERT_FALSE(bad_method.ok());
  EXPECT_EQ(bad_method.error().code, ErrorCode::kInvalidArgument);
  rec.spec.method = "lin";
  Expected<JobOutcome> missing = runner.run(rec, Deadline(), "", nullptr);
  ASSERT_FALSE(missing.ok());
}

TEST(ServeRunner, WorkerCrashFaultIsRecoverable) {
#if defined(NEURFILL_DISABLE_FAULTS)
  GTEST_SKIP() << "fault injection compiled out";
#endif
  fault::disarm_all();
  fault::arm_hit("serve.worker_crash", 1);
  JobRunner runner(RunnerOptions{});
  JobRecord rec;
  rec.id = "j000001";
  rec.spec.design = "irrelevant.glf";
  rec.spec.out = "irrelevant_out.glf";
  rec.spec.method = "lin";
  Expected<JobOutcome> out = runner.run(rec, Deadline(), "", nullptr);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, ErrorCode::kIo);  // recoverable -> retried
  EXPECT_TRUE(is_recoverable(out.error().code));
  fault::disarm_all();
}

// pkb with a quick-trained reduced surrogate: the corrupt-snapshot
// quarantine must re-solve to a byte-identical artifact, and the second
// job must hit the surrogate cache.
TEST(ServeRunner, CorruptSnapshotIsQuarantinedAndSurrogateCacheHits) {
  const std::string dir = test_dir("runner_pkb");
  ASSERT_TRUE(JobJournal::open(dir).ok());
  const Layout design = make_design('a', 4, 100.0, 7);
  write_glf_file(dir + "/in.glf", design);
  RunnerOptions opts;
  opts.default_surrogate = dir + "/missing_prefix";
  opts.sqp_max_iterations = 2;
  opts.pkb_steps = 2;
  opts.quicktrain_epochs = 1;
  opts.quicktrain_dataset = 4;
  JobRunner runner(opts);
  JobRecord rec;
  rec.id = "j000001";
  rec.spec.design = dir + "/in.glf";
  rec.spec.out = dir + "/ref.glf";
  rec.spec.method = "pkb";

  Expected<JobOutcome> ref = runner.run(rec, Deadline(), "", nullptr);
  ASSERT_TRUE(ref.ok()) << ref.error().to_string();
  EXPECT_EQ(runner.surrogate_cache_size(), 1u);

  // Garbage snapshot: the runner must warn, unlink, and re-solve fresh.
  const std::string snap = dir + "/j000002.snap";
  {
    std::ofstream s(snap, std::ios::binary);
    s << "this is not an NFCP container";
  }
  rec.id = "j000002";
  rec.spec.out = dir + "/resolved.glf";
  Expected<JobOutcome> again = runner.run(rec, Deadline(), snap, nullptr);
  ASSERT_TRUE(again.ok()) << again.error().to_string();
  EXPECT_EQ(read_file(dir + "/resolved.glf"), read_file(dir + "/ref.glf"))
      << "re-solve after snapshot quarantine is not byte-identical";
  // Same design, same (quick-trained) surrogate: cache hit, no retrain.
  EXPECT_EQ(runner.surrogate_cache_size(), 1u);
}

// ---------------------------------------------------------- daemon + socket

DaemonOptions fast_daemon_opts() {
  DaemonOptions d;
  d.scheduler.queue_capacity = 8;
  d.scheduler.backoff_base_s = 0.001;
  d.scheduler.backoff_cap_s = 0.004;
  d.drain_deadline_s = 20.0;
  return d;
}

TEST(ServeDaemon, EndToEndOverLoopbackSocket) {
  obs::set_metrics_enabled(true);
  const std::string dir = test_dir("daemon_e2e");
  const Layout design = make_design('a', 4, 100.0, 7);
  ASSERT_TRUE(JobJournal::open(dir).ok());
  write_glf_file(dir + "/in.glf", design);

  Expected<std::unique_ptr<Daemon>> daemon =
      Daemon::create(fast_daemon_opts(), dir + "/journal");
  ASSERT_TRUE(daemon.ok()) << daemon.error().to_string();
  Expected<Server> server = Server::listen(0, dir + "/port");
  ASSERT_TRUE(server.ok()) << server.error().to_string();
  const int port = server->port();
  const std::vector<char> port_bytes = read_file(dir + "/port");
  EXPECT_EQ(std::string(port_bytes.begin(), port_bytes.end()),
            std::to_string(port) + "\n");

  Daemon& d = **daemon;
  std::thread transport([&] { ASSERT_TRUE(server->run(d).ok()); });
  std::thread worker([&] { d.run_worker(); });

  Expected<Client> client = Client::connect(port);
  ASSERT_TRUE(client.ok()) << client.error().to_string();

  JsonValue submit = json_object();
  submit.object["op"] = json_string("submit");
  submit.object["design"] = json_string(dir + "/in.glf");
  submit.object["out"] = json_string(dir + "/out.glf");
  submit.object["method"] = json_string("lin");
  Expected<JsonValue> reply = client->request(submit);
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  ASSERT_TRUE(reply->get_bool("ok")) << json_render(*reply);
  const std::string id = reply->get_string("id");
  EXPECT_EQ(id, "j000001");

  // Poll status over the same connection until the job completes.
  JsonValue status = json_object();
  status.object["op"] = json_string("status");
  status.object["id"] = json_string(id);
  std::string state;
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < until) {
    Expected<JsonValue> st = client->request(status);
    ASSERT_TRUE(st.ok());
    state = st->object.at("job").get_string("state");
    if (state == "completed" || state == "failed") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(state, "completed");
  EXPECT_FALSE(read_file(dir + "/out.glf").empty());

  // /metrics is live while the daemon serves, with the serve instruments.
  Expected<std::string> metrics = Client::http_get(port, "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("serve.jobs_accepted"), std::string::npos);
  EXPECT_NE(metrics->find("serve.queue_depth"), std::string::npos);
  Expected<std::string> health = Client::http_get(port, "/healthz");
  ASSERT_TRUE(health.ok());
  Expected<JsonValue> hj = json_parse(
      health->substr(0, health->find_last_not_of('\n') + 1));
  ASSERT_TRUE(hj.ok());
  EXPECT_TRUE(hj->get_bool("ok"));
  Expected<std::string> job_page = Client::http_get(port, "/jobs/" + id);
  ASSERT_TRUE(job_page.ok());
  EXPECT_NE(job_page->find("\"completed\""), std::string::npos);

  // Unknown ops and unknown jobs are structured errors, not dropped
  // connections.
  Expected<std::string> bad = client->request_line("{\"op\":\"fry\"}");
  ASSERT_TRUE(bad.ok());
  EXPECT_NE(bad->find("invalid_argument"), std::string::npos);
  Expected<std::string> nojob =
      client->request_line("{\"op\":\"status\",\"id\":\"j999\"}");
  ASSERT_TRUE(nojob.ok());
  EXPECT_NE(nojob->find("not_found"), std::string::npos);
  Expected<std::string> garbage = client->request_line("{{{");
  ASSERT_TRUE(garbage.ok());
  EXPECT_NE(garbage->find("invalid_argument"), std::string::npos);

  // Drain over the wire: admission closes, the worker parks, both threads
  // come home, and a post-drain submission is rejected "overloaded".
  Expected<JsonValue> drained = client->request(
      [] {
        JsonValue v = json_object();
        v.object["op"] = json_string("drain");
        return v;
      }());
  ASSERT_TRUE(drained.ok());
  worker.join();
  transport.join();
  EXPECT_TRUE(d.done());
}

TEST(ServeDaemon, TransportFaultSitesDropOneConnectionNotTheDaemon) {
#if defined(NEURFILL_DISABLE_FAULTS)
  GTEST_SKIP() << "fault injection compiled out";
#endif
  fault::disarm_all();
  const std::string dir = test_dir("daemon_faults");
  ASSERT_TRUE(JobJournal::open(dir).ok());  // parent of the journal dir
  Expected<std::unique_ptr<Daemon>> daemon =
      Daemon::create(fast_daemon_opts(), dir + "/journal");
  ASSERT_TRUE(daemon.ok());
  Expected<Server> server = Server::listen(0, "");
  ASSERT_TRUE(server.ok());
  const int port = server->port();
  Daemon& d = **daemon;
  std::thread transport([&] { ASSERT_TRUE(server->run(d).ok()); });
  std::thread worker([&] { d.run_worker(); });

  // serve.accept: the faulted connection dies, the next one is served.
  fault::arm_hit("serve.accept", 1);
  {
    Expected<Client> doomed = Client::connect(port);
    // The connect itself succeeds (the kernel accepted); the daemon closes
    // it immediately, so the first request errors out.
    if (doomed.ok()) {
      Expected<std::string> r = doomed->request_line("{\"op\":\"ping\"}");
      EXPECT_FALSE(r.ok());
    }
  }
  Expected<Client> survivor = Client::connect(port);
  ASSERT_TRUE(survivor.ok());
  Expected<std::string> pong = survivor->request_line("{\"op\":\"ping\"}");
  ASSERT_TRUE(pong.ok()) << pong.error().to_string();
  EXPECT_NE(pong->find("\"ok\":true"), std::string::npos);

  // serve.reply_short_write: the reply is torn mid-write and the
  // connection dropped; a fresh connection sees consistent state.
  fault::arm_hit("serve.reply_short_write", 1);
  Expected<std::string> torn = survivor->request_line("{\"op\":\"ping\"}");
  EXPECT_FALSE(torn.ok());
  Expected<Client> after = Client::connect(port);
  ASSERT_TRUE(after.ok());
  Expected<std::string> ok_again = after->request_line("{\"op\":\"ping\"}");
  ASSERT_TRUE(ok_again.ok());
  EXPECT_NE(ok_again->find("\"ok\":true"), std::string::npos);

  fault::disarm_all();
  d.request_drain();
  worker.join();
  transport.join();
}

}  // namespace
}  // namespace neurfill::serve
