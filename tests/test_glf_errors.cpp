// Error-path coverage for the GLF reader (src/geom/glf_io.cpp): every
// malformed-input branch must throw std::runtime_error with a diagnosable
// message rather than crash, loop, or return a half-parsed layout.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "geom/glf_io.hpp"
#include "geom/layout.hpp"

namespace {

using neurfill::Layout;
using neurfill::read_glf;
using neurfill::read_glf_file;
using neurfill::write_glf;
using neurfill::write_glf_file;

Layout parse(const std::string& text) {
  std::istringstream is(text);
  return read_glf(is);
}

void expect_parse_error(const std::string& text, const std::string& what) {
  try {
    parse(text);
    FAIL() << "expected std::runtime_error mentioning '" << what << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
        << "actual message: " << e.what();
  }
}

constexpr const char* kValid =
    "GLF 1\n"
    "name chip\n"
    "size 10 10\n"
    "layers 1\n"
    "layer m1 wires 1 dummies 1\n"
    "w 0 0 1 1\n"
    "d 2 2 3 3\n";

TEST(GlfErrors, ValidInputParses) {
  const Layout layout = parse(kValid);
  ASSERT_EQ(layout.layers.size(), 1u);
  EXPECT_EQ(layout.layers[0].wires.size(), 1u);
  EXPECT_EQ(layout.layers[0].dummies.size(), 1u);
}

TEST(GlfErrors, BadMagic) { expect_parse_error("GLX 1\n", "bad magic"); }

TEST(GlfErrors, UnsupportedVersion) {
  expect_parse_error("GLF 2\n", "bad magic/version");
}

TEST(GlfErrors, MissingName) { expect_parse_error("GLF 1\n", "missing name"); }

TEST(GlfErrors, NonPositiveExtent) {
  expect_parse_error("GLF 1\nname c\nsize -5 10\n", "non-positive extents");
}

TEST(GlfErrors, NonNumericExtent) {
  expect_parse_error("GLF 1\nname c\nsize wide tall\n", "missing size");
}

TEST(GlfErrors, MissingLayerCount) {
  expect_parse_error("GLF 1\nname c\nsize 10 10\n", "missing layer count");
}

TEST(GlfErrors, ImplausibleLayerCount) {
  expect_parse_error("GLF 1\nname c\nsize 10 10\nlayers 99999999\n",
                     "implausible layer count");
}

TEST(GlfErrors, MalformedLayerHeader) {
  expect_parse_error(
      "GLF 1\nname c\nsize 10 10\nlayers 1\nlayer m1 rects 1 dummies 0\n",
      "malformed layer header");
}

TEST(GlfErrors, TruncatedRectRecord) {
  // Header promises two wires; the stream ends after one.
  expect_parse_error(
      "GLF 1\nname c\nsize 10 10\nlayers 1\nlayer m1 wires 2 dummies 0\n"
      "w 0 0 1 1\n",
      "truncated rectangle");
}

TEST(GlfErrors, BadRectCoords) {
  // x1 < x0: geometrically inverted rectangle.
  expect_parse_error(
      "GLF 1\nname c\nsize 10 10\nlayers 1\nlayer m1 wires 1 dummies 0\n"
      "w 5 0 1 1\n",
      "degenerate rectangle");
}

TEST(GlfErrors, NonNumericRectCoords) {
  expect_parse_error(
      "GLF 1\nname c\nsize 10 10\nlayers 1\nlayer m1 wires 1 dummies 0\n"
      "w a b c d\n",
      "truncated rectangle");
}

TEST(GlfErrors, WrongRecordTag) {
  // A dummy record where a wire record was promised.
  expect_parse_error(
      "GLF 1\nname c\nsize 10 10\nlayers 1\nlayer m1 wires 1 dummies 0\n"
      "d 0 0 1 1\n",
      "expected 'w'");
}

TEST(GlfErrors, HugeRectCountFailsWithoutPreallocating) {
  // A corrupt 4-billion-wire count must fail on the missing records, not by
  // attempting a multi-gigabyte reserve first.
  expect_parse_error(
      "GLF 1\nname c\nsize 10 10\nlayers 1\nlayer m1 wires 4000000000 "
      "dummies 0\n",
      "truncated rectangle");
}

TEST(GlfErrors, MissingFile) {
  EXPECT_THROW(read_glf_file("/nonexistent/dir/layout.glf"),
               std::runtime_error);
}

TEST(GlfErrors, TruncatedFileOnDisk) {
  const std::string path = testing::TempDir() + "glf_truncated.glf";
  {
    std::ofstream os(path);
    // Write only the first half of a valid file.
    const std::string text(kValid);
    os << text.substr(0, text.size() / 2);
  }
  EXPECT_THROW(read_glf_file(path), std::runtime_error);
}

TEST(GlfErrors, RoundTripStillWorks) {
  const Layout layout = parse(kValid);
  const std::string path = testing::TempDir() + "glf_roundtrip.glf";
  write_glf_file(path, layout);
  const Layout back = read_glf_file(path);
  ASSERT_EQ(back.layers.size(), layout.layers.size());
  EXPECT_EQ(back.layers[0].wires.size(), layout.layers[0].wires.size());
  EXPECT_EQ(back.layers[0].dummies.size(), layout.layers[0].dummies.size());
}

}  // namespace
