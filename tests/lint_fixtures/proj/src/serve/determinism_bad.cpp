// The serve daemon is numeric-scope code (src/serve/ is named in the
// determinism rule's prefixes): a job's artifact must be bitwise identical
// no matter which daemon run produced it, so ambient entropy and raw
// threads are flagged here exactly as in a solver file.  (The daemon's one
// transport thread lives in tools/nf_serve.cpp, outside this scope.)

void serve_entry() {
  long stamp = time(nullptr);   // LINT[determinism]
  std::thread t([] {});         // LINT[determinism]
  (void)stamp;
  t.join();
}
