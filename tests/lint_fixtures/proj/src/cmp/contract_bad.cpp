// Contract-style violations in library code.

void report_and_die(int code) {
  assert(code != 0);          // LINT[contract-style]
  printf("code=%d\n", code);  // LINT[contract-style]
  std::abort();               // LINT[contract-style]
}
