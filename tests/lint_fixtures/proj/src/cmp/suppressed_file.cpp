// File-wide suppression: determinism findings anywhere in this file are
// waived, but other rules still apply.
// nf-lint: allow-file(determinism)

void noisy() {
  srand(1);
  int x = rand();
  assert(x != 0);  // LINT[contract-style]
  (void)x;
}
