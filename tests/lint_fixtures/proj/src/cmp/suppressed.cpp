// Suppression behavior: every violation below carries an allow() and must
// produce no finding.  Trailing-comment, comment-above, and multi-rule
// forms are all exercised.

void suppressed_entry() {
  int a = rand();  // nf-lint: allow(determinism)
  // nf-lint: allow(determinism)
  srand(7);
  // nf-lint: allow(determinism, contract-style)
  assert(a != 0);
  (void)a;
}
