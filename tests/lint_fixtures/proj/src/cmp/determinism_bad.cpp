// Non-deterministic constructs in a numeric subsystem (src/cmp/): every
// marked line must be flagged, every unmarked line must not.

void numeric_entry(Fake& c) {
  int seed = rand();                 // LINT[determinism]
  srand(42);                         // LINT[determinism]
  long t = time(nullptr);            // LINT[determinism]
  std::mt19937 gen(7);               // LINT[determinism]
  std::thread worker;                // LINT[determinism]
  std::unordered_map<int, int> m;    // LINT[determinism]
  c.time(0);      // member access: some other class's time(), fine
  fake::rand();   // non-std qualifier: fine
  timer();        // 'time' must match exact identifiers only
  (void)seed;
  (void)t;
  (void)gen;
  (void)m;
}
