// Trace-hygiene violations: runtime-built names, duplicate span names, and
// one name shared across instrument kinds.

void traced(const char* dynamic_name) {
  NF_TRACE_SPAN(dynamic_name);               // LINT[trace-hygiene]
  NF_TRACE_SPAN("fixture.same_span");
  NF_TRACE_SPAN("fixture.same_span");        // LINT[trace-hygiene]
  NF_COUNTER_ADD("fixture.same_span", 1);    // LINT[trace-hygiene]
  NF_COUNTER_ADD("fixture.items", 1);
  NF_COUNTER_ADD("fixture.items", 2);  // same-kind counter reuse is fine
  obs::SpanTimer timer("fixture.timer");
  NF_GAUGE_SET("fixture.level", 3.0);
}
