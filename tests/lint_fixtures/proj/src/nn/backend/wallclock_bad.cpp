// The backend primitives carry the bitwise-determinism contract directly
// (src/nn/backend/ is named in the determinism rule's scope, not just
// inherited from src/nn/): ambient entropy in a kernel must be flagged.

void kernel_entry() {
  int jitter = rand();               // LINT[determinism]
  std::unordered_set<int> seen;      // LINT[determinism]
  (void)jitter;
  (void)seen;
}
