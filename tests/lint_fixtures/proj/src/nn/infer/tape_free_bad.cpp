// Autograd tape API leaking into the tape-free inference subsystem
// (src/nn/infer/): every marked line must be flagged, every unmarked line
// must not.  Mentioning the forward/backward relationship in comments is
// fine — comments are not tokenized.

void infer_entry(FakeNet& net, FakeTensor& x) {
  auto y = net.forward(x);           // LINT[infer-no-autograd]
  y.backward();                      // LINT[infer-no-autograd]
  float* g = x.grad();               // LINT[infer-no-autograd]
  bool rg = x.requires_grad();       // LINT[infer-no-autograd]
  TensorImpl* impl = nullptr;        // LINT[infer-no-autograd]
  net.run(x);          // the session entry point itself: fine
  forwarding(net);     // distinct identifier, exact matches only
  float gradient = 0;  // distinct identifier, exact matches only
  (void)y;
  (void)g;
  (void)rg;
  (void)impl;
  (void)gradient;
}
