#pragma once

// Expected-returning declarations with and without [[nodiscard]].

namespace neurfill {

nf::Expected<int> parse_widget(const char* text);  // LINT[expected-discard]

[[nodiscard]] nf::Expected<int> parse_gadget(const char* text);

class WidgetStore {
 public:
  Expected<void> persist(const char* path);  // LINT[expected-discard]
  [[nodiscard]] Expected<void> open(const char* path);
};

}  // namespace neurfill
