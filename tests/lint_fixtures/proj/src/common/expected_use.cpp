#include "common/expected_bad.hpp"

// Call-site discard detection.  `file.open(...)` must NOT be flagged:
// `open` is too common a member name to attribute from an unqualified call
// site (it is std::ofstream here, not WidgetStore).

namespace neurfill {

void use_widgets(WidgetStore& store, std::ofstream& file) {
  parse_widget("w");            // LINT[expected-discard]
  auto v = parse_widget("w");
  (void)parse_gadget("g");
  store.persist("/tmp/w");      // LINT[expected-discard]
  WidgetStore::open("/tmp/w");  // LINT[expected-discard]
  file.open("/tmp/other");
  (void)v;
}

}  // namespace neurfill
