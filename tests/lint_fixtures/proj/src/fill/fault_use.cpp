// Fault-catalog cross-check: demo.ok and demo.tool are catalogued,
// demo.unknown is not, and the catalog's demo.stale row has no code site.

bool fault_sites() {
  if (NF_FAULT("demo.ok")) return true;
  if (NF_FAULT("demo.unknown")) return true;  // LINT[fault-catalog]
  return false;
}
