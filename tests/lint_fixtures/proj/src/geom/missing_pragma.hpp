// LINT[pragma-once] — this header deliberately lacks the guard.
struct BareHeader {
  int x = 0;
};
