// Tools may printf (contract-style is src/-only), but their NF_FAULT sites
// still count toward the catalog.

int main() {
  printf("hello\n");
  if (NF_FAULT("demo.tool")) return 1;
  return 0;
}
