#pragma once

bool clean_fault_site();
