#include "fill/ok.hpp"

bool clean_fault_site() { return NF_FAULT("clean.ok"); }
