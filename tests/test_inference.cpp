// Tests for the tape-free inference engine (docs/inference.md): the
// InferenceSession must match the autograd module evaluation bitwise —
// fused or unfused, arena-reused or private-buffered, batched or looped,
// at any thread count — because the fill optimizer mixes both paths
// mid-line-search and relies on exact value equality.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "geom/designs.hpp"
#include "nn/backend/backend.hpp"
#include "nn/infer/session.hpp"
#include "nn/tensor.hpp"
#include "nn/unet.hpp"
#include "obs/metrics.hpp"
#include "runtime/parallel.hpp"
#include "surrogate/cmp_network.hpp"
#include "surrogate/infer.hpp"

namespace neurfill {
namespace {

using nn::InferenceOptions;
using nn::InferenceSession;
using nn::Tensor;
using nn::UNet;
using nn::UNetConfig;

::testing::AssertionResult bitwise_equal(const float* a, const float* b,
                                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t ua = 0, ub = 0;
    std::memcpy(&ua, a + i, sizeof(float));
    std::memcpy(&ub, b + i, sizeof(float));
    if (ua != ub)
      return ::testing::AssertionFailure()
             << "float mismatch at index " << i << ": " << a[i] << " vs "
             << b[i] << " (bits 0x" << std::hex << ua << " vs 0x" << ub << ")";
  }
  return ::testing::AssertionSuccess();
}

std::vector<float> random_input(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

UNetConfig small_config(bool group_norm) {
  UNetConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 1;
  cfg.base_channels = 8;
  cfg.depth = 2;
  cfg.use_group_norm = group_norm;
  return cfg;
}

/// Autograd reference: the plain module forward on a batch-1 input.
std::vector<float> module_forward(UNet& net, const std::vector<float>& input,
                                  int c, int h, int w) {
  const Tensor x = Tensor::from_data({1, c, h, w}, input);
  const Tensor y = net.forward(x);
  return std::vector<float>(y.data(), y.data() + y.numel());
}

TEST(InferenceSession, MatchesModuleBitwiseWithGroupNorm) {
  Rng rng(11);
  UNet net(small_config(true), rng);
  const int H = 16, W = 16;
  const InferenceSession session(net, H, W);
  EXPECT_EQ(session.in_channels(), 3);
  EXPECT_EQ(session.out_channels(), 1);

  const auto input = random_input(3u * H * W, 101);
  const auto ref = module_forward(net, input, 3, H, W);
  std::vector<float> out(static_cast<std::size_t>(H) * W);
  session.run(input.data(), out.data());
  EXPECT_TRUE(bitwise_equal(out.data(), ref.data(), out.size()));
}

TEST(InferenceSession, MatchesModuleBitwiseWithoutGroupNorm) {
  Rng rng(12);
  UNet net(small_config(false), rng);
  const int H = 24, W = 16;
  const InferenceSession session(net, H, W);

  const auto input = random_input(3u * H * W, 102);
  const auto ref = module_forward(net, input, 3, H, W);
  std::vector<float> out(static_cast<std::size_t>(H) * W);
  session.run(input.data(), out.data());
  EXPECT_TRUE(bitwise_equal(out.data(), ref.data(), out.size()));
}

TEST(InferenceSession, RealWeightsMatchModuleWithinTolerance) {
  // Acceptance gate: on the shipped pre-trained artifact the compiled
  // session must match the module path within 1e-4 relative — and in fact
  // matches bitwise, which the optimizer's mixed-path line search needs.
  auto loaded = load_surrogate(NF_REPO_ROOT "/data/unet_cmp");
  ASSERT_TRUE(loaded.ok()) << "missing data/unet_cmp.{meta,weights}";
  UNet& net = (*loaded)->unet();
  const UNetConfig& cfg = net.config();
  const int div = 1 << cfg.depth;
  const int H = 4 * div, W = 4 * div;
  const InferenceSession session(net, H, W);

  const auto input =
      random_input(static_cast<std::size_t>(cfg.in_channels) * H * W, 103);
  const auto ref = module_forward(net, input, cfg.in_channels, H, W);
  std::vector<float> out(ref.size());
  session.run(input.data(), out.data());

  float max_rel = 0.0f;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const float denom = std::max(std::fabs(ref[i]), 1e-6f);
    max_rel = std::max(max_rel, std::fabs(out[i] - ref[i]) / denom);
  }
  EXPECT_LE(max_rel, 1e-4f);
  EXPECT_TRUE(bitwise_equal(out.data(), ref.data(), out.size()));
}

TEST(InferenceSession, ArenaReuseMatchesPrivateBuffers) {
  // Aliasing safety: the liveness-planned arena must never hand a buffer
  // to a consumer while a live producer still owns it.  The reference is
  // the same graph with every value in a private block.
  Rng rng(13);
  UNet net(small_config(true), rng);
  const int H = 16, W = 16;
  InferenceOptions reuse, priv;
  priv.reuse_buffers = false;
  const InferenceSession fast(net, H, W, reuse);
  const InferenceSession safe(net, H, W, priv);
  EXPECT_LT(fast.arena_floats_per_sample(), safe.arena_floats_per_sample());

  const auto input = random_input(3u * H * W, 104);
  std::vector<float> a(static_cast<std::size_t>(H) * W), b(a.size());
  fast.run(input.data(), a.data());
  safe.run(input.data(), b.data());
  EXPECT_TRUE(bitwise_equal(a.data(), b.data(), a.size()));
}

TEST(InferenceSession, FusedMatchesUnfused) {
  Rng rng(14);
  UNet net(small_config(true), rng);
  const int H = 16, W = 16;
  InferenceOptions unfused;
  unfused.fuse = false;
  const InferenceSession fused(net, H, W);
  const InferenceSession chain(net, H, W, unfused);

  const auto input = random_input(3u * H * W, 105);
  std::vector<float> a(static_cast<std::size_t>(H) * W), b(a.size());
  fused.run(input.data(), a.data());
  chain.run(input.data(), b.data());
  EXPECT_TRUE(bitwise_equal(a.data(), b.data(), a.size()));
}

TEST(InferenceSession, BatchMatchesLoopedSingles) {
  Rng rng(15);
  UNet net(small_config(true), rng);
  const int H = 16, W = 16, B = 3;
  const std::size_t in_plane = 3u * H * W;
  const std::size_t out_plane = static_cast<std::size_t>(H) * W;
  const InferenceSession session(net, H, W);

  const auto input = random_input(B * in_plane, 106);
  std::vector<float> batched(B * out_plane);
  session.run(input.data(), batched.data(), B);

  std::vector<float> looped(B * out_plane);
  for (int s = 0; s < B; ++s)
    session.run(input.data() + s * in_plane, looped.data() + s * out_plane);
  EXPECT_TRUE(bitwise_equal(batched.data(), looped.data(), batched.size()));
}

TEST(InferenceSession, PrepackedWeightsMatchPackPerCall) {
  // Compile-time weight panels must be bitwise neutral against the
  // pack-per-call reference, on both the direct conv path (wide outputs)
  // and the GEMM fallback (narrow outputs, where the panel is actually
  // consumed), serial and batched.
  Rng rng(18);
  UNet net(small_config(true), rng);
  for (const int W : {16, 8}) {  // W=8 drives the deeper levels through GEMM
    const int H = 16, B = 4;
    const std::size_t in_plane = 3u * H * W;
    const std::size_t out_plane = static_cast<std::size_t>(H) * W;
    InferenceOptions nopack;
    nopack.prepack_weights = false;
    const InferenceSession packed(net, H, W);
    const InferenceSession reference(net, H, W, nopack);

    const auto input = random_input(B * in_plane, 120);
    std::vector<float> a(B * out_plane), b(a.size());
    packed.run(input.data(), a.data());
    reference.run(input.data(), b.data());
    EXPECT_TRUE(bitwise_equal(a.data(), b.data(), out_plane)) << "W=" << W;
    packed.run(input.data(), a.data(), B);
    reference.run(input.data(), b.data(), B);
    EXPECT_TRUE(bitwise_equal(a.data(), b.data(), a.size()))
        << "W=" << W << " batched";
  }
}

TEST(InferenceSession, BatchedArenaReachesZeroSteadyStateAllocation) {
  // With max_batch planned up front, the first run sizes the per-thread
  // arena once and every later run — any batch up to max_batch — performs
  // no further growth (infer.arena_grow_events counts requested-size
  // high-water increases on this thread).
  Rng rng(19);
  UNet net(small_config(true), rng);
  const int H = 16, W = 16, kMaxBatch = 8;
  InferenceOptions opt;
  opt.max_batch = kMaxBatch;
  const InferenceSession session(net, H, W, opt);
  const std::size_t in_plane = 3u * H * W;
  const std::size_t out_plane = static_cast<std::size_t>(H) * W;
  const auto input = random_input(kMaxBatch * in_plane, 121);
  std::vector<float> out(kMaxBatch * out_plane);

  const bool was_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  obs::Counter& grows = obs::counter("infer.arena_grow_events");
  session.run(input.data(), out.data(), 1);  // plans for kMaxBatch
  const std::int64_t after_first = grows.value();
  for (const int batch : {1, 2, kMaxBatch, 3}) {
    session.run(input.data(), out.data(), batch);
    EXPECT_EQ(grows.value(), after_first) << "batch " << batch;
  }
  EXPECT_GE(obs::counter("infer.samples").value(), kMaxBatch);
  obs::set_metrics_enabled(was_enabled);
}

TEST(InferenceSession, BitwiseDeterministicAcrossThreadCounts) {
  Rng rng(16);
  UNet net(small_config(true), rng);
  const int H = 32, W = 32;
  const InferenceSession session(net, H, W);
  const auto input = random_input(3u * H * W, 107);

  std::vector<float> ref(static_cast<std::size_t>(H) * W);
  runtime::set_thread_count(1);
  session.run(input.data(), ref.data());
  for (const int threads : {2, 8}) {
    runtime::set_thread_count(threads);
    std::vector<float> out(ref.size());
    session.run(input.data(), out.data());
    EXPECT_TRUE(bitwise_equal(out.data(), ref.data(), out.size()))
        << "thread count " << threads;
  }
  runtime::set_thread_count(0);  // restore the environment default
}

TEST(Backend, Conv1x1FastPathMatchesNaive) {
  // padding==0 && stride==1 1x1 convs skip im2col and feed the input
  // directly to the GEMM; the result must still be a correct convolution.
  const int B = 2, Ci = 5, Co = 3, H = 7, W = 9;
  const auto x = random_input(static_cast<std::size_t>(B) * Ci * H * W, 108);
  const auto w = random_input(static_cast<std::size_t>(Co) * Ci, 109);
  const auto bias = random_input(Co, 110);

  nn::Conv2dGeom g;
  g.batch = B;
  g.in_channels = Ci;
  g.height = H;
  g.width = W;
  g.out_channels = Co;
  g.kernel_h = 1;
  g.kernel_w = 1;
  g.stride = 1;
  g.padding = 0;
  g.out_height = H;
  g.out_width = W;
  std::vector<float> y(static_cast<std::size_t>(B) * Co * H * W);
  nn::backend().conv2d_fwd(g, x.data(), w.data(), bias.data(), y.data());

  for (int b = 0; b < B; ++b) {
    for (int co = 0; co < Co; ++co) {
      for (int p = 0; p < H * W; ++p) {
        double acc = bias[static_cast<std::size_t>(co)];
        for (int ci = 0; ci < Ci; ++ci)
          acc += static_cast<double>(w[static_cast<std::size_t>(co) * Ci + ci]) *
                 static_cast<double>(
                     x[(static_cast<std::size_t>(b) * Ci + ci) * H * W + p]);
        const float got =
            y[(static_cast<std::size_t>(b) * Co + co) * H * W + p];
        ASSERT_NEAR(got, acc, 1e-4) << "b=" << b << " co=" << co << " p=" << p;
      }
    }
  }
}

TEST(CmpNetworkFast, EvaluateMatchesModulePathBitwise) {
  // The surrogate fast path and the autograd path must agree exactly on
  // the no-grad objective: the SQP line search evaluates trials through
  // the fast path and then re-evaluates the accepted trial with gradients
  // through the module path, assuming both see the same value.
  const Layout layout = make_design('a', 8, 100.0, 3);
  const WindowExtraction ext = extract_windows(layout);
  SurrogateConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 2;
  auto fast_s = std::make_shared<CmpSurrogate>(cfg, 7);
  auto slow_s = std::make_shared<CmpSurrogate>(cfg, 7);  // same weights
  slow_s->set_fast_inference(false);
  ASSERT_TRUE(fast_s->fast_inference_enabled());
  ASSERT_FALSE(slow_s->fast_inference_enabled());

  ScoreCoefficients coeffs;
  coeffs.beta_sigma = 1000.0;
  coeffs.beta_sigma_star = 1e5;
  coeffs.beta_ol = 100.0;
  CmpNetwork fast_net(fast_s, ext, coeffs);
  CmpNetwork slow_net(slow_s, ext, coeffs);

  std::vector<GridD> x(3, GridD(8, 8, 0.0));
  Rng rng(17);
  for (auto& g : x)
    for (auto& v : g) v = rng.uniform(0.0, 0.3);

  const auto ef = fast_net.evaluate(x, false);
  const auto es = slow_net.evaluate(x, false);
  EXPECT_EQ(ef.s_plan, es.s_plan);
  EXPECT_EQ(ef.sigma, es.sigma);
  EXPECT_EQ(ef.sigma_star, es.sigma_star);
  EXPECT_EQ(ef.outliers, es.outliers);
  ASSERT_EQ(ef.heights.size(), es.heights.size());
  for (std::size_t l = 0; l < ef.heights.size(); ++l)
    for (std::size_t i = 0; i < ef.heights[l].rows(); ++i)
      for (std::size_t j = 0; j < ef.heights[l].cols(); ++j)
        EXPECT_EQ(ef.heights[l](i, j), es.heights[l](i, j));

  // predict_heights routes through the same fast path.
  const auto hf = fast_net.predict_heights(x);
  const auto hs = slow_net.predict_heights(x);
  ASSERT_EQ(hf.size(), hs.size());
  for (std::size_t l = 0; l < hf.size(); ++l)
    for (std::size_t i = 0; i < hf[l].rows(); ++i)
      for (std::size_t j = 0; j < hf[l].cols(); ++j)
        EXPECT_EQ(hf[l](i, j), hs[l](i, j));

  // With gradients requested both networks take the module path.
  const auto gf = fast_net.evaluate(x, true);
  const auto gs = slow_net.evaluate(x, true);
  EXPECT_EQ(gf.s_plan, gs.s_plan);
  EXPECT_EQ(gf.s_plan, ef.s_plan);  // mixed-path consistency
  ASSERT_EQ(gf.grad.size(), gs.grad.size());
  for (std::size_t l = 0; l < gf.grad.size(); ++l)
    for (std::size_t i = 0; i < gf.grad[l].rows(); ++i)
      for (std::size_t j = 0; j < gf.grad[l].cols(); ++j)
        EXPECT_EQ(gf.grad[l](i, j), gs.grad[l](i, j));
}

TEST(CmpNetworkFast, EvaluateBatchMatchesSerialBitwise) {
  // Cross-candidate batching: evaluate_batch must return, per candidate,
  // exactly the Eval that evaluate(x, false) returns — the NMMSO move
  // batches and the PKB sweep rely on batched and serial evaluations being
  // interchangeable mid-optimization.
  const Layout layout = make_design('a', 8, 100.0, 3);
  const WindowExtraction ext = extract_windows(layout);
  SurrogateConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 2;
  auto surrogate = std::make_shared<CmpSurrogate>(cfg, 7);
  ScoreCoefficients coeffs;
  coeffs.beta_sigma = 1000.0;
  coeffs.beta_sigma_star = 1e5;
  coeffs.beta_ol = 100.0;
  const CmpNetwork net(surrogate, ext, coeffs);

  Rng rng(21);
  for (const int B : {1, 2, 7, 32}) {
    std::vector<std::vector<GridD>> xs(
        static_cast<std::size_t>(B),
        std::vector<GridD>(3, GridD(8, 8, 0.0)));
    for (auto& x : xs)
      for (auto& g : x)
        for (auto& v : g) v = rng.uniform(0.0, 0.3);

    const std::vector<CmpNetwork::Eval> batched = net.evaluate_batch(xs);
    ASSERT_EQ(batched.size(), xs.size());
    for (int b = 0; b < B; ++b) {
      const CmpNetwork::Eval solo = net.evaluate(xs[static_cast<std::size_t>(b)],
                                                 false);
      const CmpNetwork::Eval& eb = batched[static_cast<std::size_t>(b)];
      EXPECT_EQ(eb.s_plan, solo.s_plan) << "B=" << B << " b=" << b;
      EXPECT_EQ(eb.sigma, solo.sigma);
      EXPECT_EQ(eb.sigma_star, solo.sigma_star);
      EXPECT_EQ(eb.outliers, solo.outliers);
      ASSERT_EQ(eb.heights.size(), solo.heights.size());
      for (std::size_t l = 0; l < eb.heights.size(); ++l)
        for (std::size_t i = 0; i < eb.heights[l].rows(); ++i)
          for (std::size_t j = 0; j < eb.heights[l].cols(); ++j)
            ASSERT_EQ(eb.heights[l](i, j), solo.heights[l](i, j))
                << "B=" << B << " b=" << b << " layer " << l;
    }
  }
}

TEST(SurrogateSessionCache, SharedAcrossNetworksAndKeyedByWeights) {
  clear_surrogate_inference_cache();
  const Layout layout = make_design('a', 8, 100.0, 3);
  const WindowExtraction ext = extract_windows(layout);
  SurrogateConfig cfg;
  cfg.unet.base_channels = 4;
  cfg.unet.depth = 2;
  auto surrogate = std::make_shared<CmpSurrogate>(cfg, 7);
  ScoreCoefficients coeffs;

  // Repeated constructions over one frozen surrogate + plane size (the
  // fullchip tile loop) share a single compiled session.
  const CmpNetwork a(surrogate, ext, coeffs);
  const CmpNetwork b(surrogate, ext, coeffs);
  EXPECT_EQ(surrogate_inference_cache_size(), 1u);

  // Different weights (same architecture and plane size) must miss.
  auto other = std::make_shared<CmpSurrogate>(cfg, 8);
  const CmpNetwork c(other, ext, coeffs);
  EXPECT_EQ(surrogate_inference_cache_size(), 2u);

  clear_surrogate_inference_cache();
  EXPECT_EQ(surrogate_inference_cache_size(), 0u);
}

}  // namespace
}  // namespace neurfill
