// Death tests for the NF_CHECK contract framework (src/common/check.hpp).
// These verify the macros abort with a diagnosable message — the property
// every numerical-core invariant in the repo now leans on — and that they
// are zero-cost no-ops on the happy path.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "cmp/pad_model.hpp"
#include "common/check.hpp"
#include "common/grid2d.hpp"
#include "common/stats.hpp"
#include "geom/rect.hpp"
#include "nn/tensor.hpp"

namespace {

using neurfill::GridD;

TEST(Contracts, PassingChecksAreSilent) {
  NF_CHECK(2 + 2 == 4);
  NF_CHECK(true, "with context %d", 1);
  NF_CHECK_BOUNDS(2, 3);
  NF_CHECK_FINITE(1.5);
  const std::vector<double> v{0.0, -1.0, 2.5};
  NF_CHECK_ALL_FINITE("vector", v.data(), v.size());
  SUCCEED();
}

#if !defined(NEURFILL_DISABLE_CHECKS)

TEST(ContractsDeathTest, CheckAbortsWithFormattedContext) {
  EXPECT_DEATH(NF_CHECK(1 == 2, "context value %d", 42),
               "NF_CHECK failed.*1 == 2.*context value 42");
}

TEST(ContractsDeathTest, CheckAbortsWithoutContext) {
  EXPECT_DEATH(NF_CHECK(false), "NF_CHECK failed");
}

TEST(ContractsDeathTest, BoundsAbortsAtSize) {
  EXPECT_DEATH(NF_CHECK_BOUNDS(5, 5), "NF_CHECK_BOUNDS failed.*index 5, size 5");
}

TEST(ContractsDeathTest, BoundsAbortsOnNegativeSignedIndex) {
  const int i = -1;
  EXPECT_DEATH(NF_CHECK_BOUNDS(i, 10), "NF_CHECK_BOUNDS failed");
}

TEST(ContractsDeathTest, FiniteAbortsOnNaN) {
  const double bad = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(NF_CHECK_FINITE(bad), "NF_CHECK_FINITE failed");
}

TEST(ContractsDeathTest, FiniteAbortsOnInfinity) {
  const float bad = std::numeric_limits<float>::infinity();
  EXPECT_DEATH(NF_CHECK_FINITE(bad), "NF_CHECK_FINITE failed.*value is inf");
}

TEST(ContractsDeathTest, AllFiniteReportsOffendingElement) {
  const std::vector<float> v{1.0f, 2.0f,
                             -std::numeric_limits<float>::infinity()};
  EXPECT_DEATH(NF_CHECK_ALL_FINITE("poisoned buffer", v.data(), v.size()),
               "poisoned buffer.*element 2 of 3 is -inf");
}

TEST(ContractsDeathTest, UnreachableAborts) {
  EXPECT_DEATH(NF_UNREACHABLE("impossible enum value"),
               "NF_UNREACHABLE failed.*impossible enum value");
}

// The contracts this PR wired into the containers, exercised end to end:
// the bare asserts they replaced vanished in Release, these do not.

TEST(ContractsDeathTest, Grid2DRejectsRowOutOfBounds) {
  GridD g(3, 4, 0.0);
  EXPECT_DEATH(g(3, 0), "NF_CHECK_BOUNDS failed.*index 3, size 3");
}

TEST(ContractsDeathTest, Grid2DRejectsColOutOfBounds) {
  GridD g(3, 4, 0.0);
  EXPECT_DEATH(g(0, 4), "NF_CHECK_BOUNDS failed.*index 4, size 4");
}

TEST(ContractsDeathTest, Grid2DRejectsFlatIndexOutOfBounds) {
  GridD g(3, 4, 0.0);
  EXPECT_DEATH(g[12], "NF_CHECK_BOUNDS failed.*index 12, size 12");
}

TEST(ContractsDeathTest, TensorRejectsDimOutOfRange) {
  const neurfill::nn::Tensor t({2, 3});
  EXPECT_DEATH(t.dim(2), "NF_CHECK_BOUNDS failed");
}

TEST(ContractsDeathTest, UndefinedTensorAborts) {
  const neurfill::nn::Tensor t;
  EXPECT_DEATH(t.numel(), "undefined tensor");
}

// Regression tests for invariants that used to be plain assert() — which
// -DNDEBUG silently compiled out of every Release build — and are NF_CHECK
// contracts since the contract-style lint sweep (docs/static_analysis.md).

TEST(ContractsDeathTest, RectRejectsInvertedExtent) {
  EXPECT_DEATH(neurfill::Rect(1.0, 0.0, 0.0, 2.0), "inverted extent");
}

TEST(ContractsDeathTest, PercentileRejectsEmptySample) {
  EXPECT_DEATH(neurfill::percentile({}, 50.0), "empty sample");
}

TEST(ContractsDeathTest, HistogramRejectsZeroBinsAndInvertedRange) {
  EXPECT_DEATH(neurfill::Histogram(0.0, 1.0, 0), "NF_CHECK failed");
  EXPECT_DEATH(neurfill::Histogram(1.0, 0.0, 10), "NF_CHECK failed");
}

TEST(ContractsDeathTest, AsperityPressureRejectsEmptyGrid) {
  EXPECT_DEATH(neurfill::asperity_pressure(GridD(), 0.5, 1.0),
               "empty height grid");
}

#endif  // !defined(NEURFILL_DISABLE_CHECKS)

TEST(Contracts, Grid2DInBoundsAccessWorks) {
  GridD g(3, 4, 0.0);
  g(2, 3) = 7.0;
  EXPECT_EQ(g(2, 3), 7.0);
  EXPECT_EQ(g[2 * 4 + 3], 7.0);
}

}  // namespace
