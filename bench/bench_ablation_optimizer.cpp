// Ablation: the SQP solver (L-BFGS Hessian + box-QP subproblem) versus plain
// projected gradient descent on the NeurFill objective, at an equal
// objective-evaluation budget.  Justifies DESIGN.md choice #3: the paper's
// SQP machinery earns its complexity only if it converges to better quality
// per evaluation than the trivial first-order alternative.

#include <cstdio>

#include "common/timer.hpp"
#include "fill/neurfill.hpp"

#include "bench_util.hpp"

using namespace neurfill;

namespace {

/// Plain projected gradient with Armijo backtracking.
VecD projected_gradient(const ObjectiveFn& f, VecD x, const Box& box,
                        int max_evals, long* evals) {
  box.clamp(x);
  VecD g;
  double fx = f(x, &g);
  *evals += 1;
  double step = 1.0;
  while (*evals < max_evals) {
    VecD trial(x.size());
    bool accepted = false;
    for (int bt = 0; bt < 20 && *evals < max_evals; ++bt) {
      for (std::size_t i = 0; i < x.size(); ++i)
        trial[i] = std::clamp(x[i] - step * g[i], box.lo[i], box.hi[i]);
      const double ft = f(trial, nullptr);
      *evals += 1;
      if (ft < fx) {
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;
    x = trial;
    fx = f(x, &g);
    *evals += 1;
    step *= 1.6;  // tentative growth
  }
  return x;
}

}  // namespace

int main() {
  std::printf("=== Ablation: SQP vs projected gradient (equal evaluation "
              "budget) ===\n");
  neurfill::bench::ProblemBundle b = neurfill::bench::make_bundle('b', 24);
  const Box box = b.problem.bounds();

  // Common starting point: PKB.
  long pkb_evals = 0;
  const std::vector<GridD> start = pkb_starting_point(
      b.problem.extraction(),
      [&](const std::vector<GridD>& x) {
        ++pkb_evals;
        return b.network->evaluate(x, false).s_plan;
      },
      9);
  const VecD x0 = b.problem.flatten(start);

  for (const int budget : {30, 80, 200}) {
    // SQP consumes ~3-4 evaluations per iteration (one gradient eval plus a
    // short line search), so cap iterations to land near the budget; the
    // printed eval count reports what was actually spent.
    long evals_sqp = 0;
    const ObjectiveFn obj_sqp =
        make_network_objective(b.problem, *b.network, &evals_sqp);
    SqpOptions sopt;
    sopt.max_iterations = budget / 4;
    const SqpResult r = sqp_minimize(obj_sqp, x0, box, sopt);
    const VecD x_sqp = r.x;

    long evals_pg = 0;
    const ObjectiveFn obj_pg =
        make_network_objective(b.problem, *b.network, &evals_pg);
    const VecD x_pg = projected_gradient(obj_pg, x0, box, budget, &evals_pg);

    // The optimizers minimize the *surrogate* objective, so that is the
    // apples-to-apples comparison; the simulator-true quality is reported
    // alongside (it additionally reflects surrogate bias, which affects
    // both methods equally at the same iterate).
    const ObjectiveFn probe = make_network_objective(b.problem, *b.network);
    const double f_sqp = probe(x_sqp, nullptr);
    const double f_pg = probe(x_pg, nullptr);
    const double q_sqp = b.problem.evaluate(b.problem.unflatten(x_sqp)).s_qual;
    const double q_pg = b.problem.evaluate(b.problem.unflatten(x_pg)).s_qual;
    std::printf("budget ~%3d evals: SQP surrogate-obj %.5f / true %.4f (%ld "
                "evals) | PG surrogate-obj %.5f / true %.4f (%ld evals)\n",
                budget, -f_sqp, q_sqp, evals_sqp, -f_pg, q_pg, evals_pg);
  }
  const double q0 = b.problem.evaluate(start).s_qual;
  std::printf("PKB start true quality (no refinement): %.4f\n", q0);
  std::printf("expected shape: SQP reaches a higher surrogate objective than "
              "projected gradient at every budget (the metric both optimize); "
              "true-quality differences ride on surrogate accuracy\n");
  return 0;
}
