// Full-chip tiled-driver bench (docs/fullchip.md): index a multi-tile
// design from disk, run the out-of-core pkb fill, and report per-tile solve
// cost plus the stitch-pass count.  Emits a one-line JSON summary; --json
// FILE writes the same object for the CI perf smoke, which gates
// `fullchip_tile_ms` and `fullchip_stitch_passes` (lower is better) against
// the committed BENCH_runtime.json.

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "fullchip/driver.hpp"
#include "geom/designs.hpp"
#include "geom/glf_io.hpp"
#include "runtime/parallel.hpp"
#include "surrogate/trainer.hpp"

#include "bench_util.hpp"

using namespace neurfill;

namespace {

constexpr int kWindowsX = 18;
constexpr int kWindowsY = 12;
constexpr int kTileWindows = 6;
constexpr int kHaloWindows = 2;

/// Quick-trains a reduced surrogate on the first tile's halo region and
/// saves it so every tile solve can load an independent instance (cached
/// data/unet_cmp weights are used when present).
std::string prepare_surrogate(const GlfRegionIndex& index,
                              const std::string& work_dir) {
  const std::string cached = bench::surrogate_prefix();
  if (load_surrogate(cached).ok()) return cached;

  const fullchip::TileGrid grid(kWindowsY, kWindowsX, kTileWindows,
                                kHaloWindows, 100.0);
  const Layout local =
      fullchip::load_tile_layout(index, grid.tile(0, 0), 100.0);
  const WindowExtraction ext = extract_windows(local);
  const CmpSimulator sim;
  auto surrogate = bench::load_or_quick_train(ext, sim);
  const std::string prefix = work_dir + "/surrogate";
  Expected<void> saved = save_surrogate(*surrogate, prefix);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.error().to_string().c_str());
    std::exit(1);
  }
  return prefix;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];

  std::printf("=== Full-chip tiled driver: %dx%d windows, tile %d, halo %d, "
              "%d thread(s) ===\n",
              kWindowsX, kWindowsY, kTileWindows, kHaloWindows,
              runtime::thread_count());

  const std::string work = "bench_fullchip_work";
  const std::string in_glf = work + "/chip.glf";
  const std::string out_glf = work + "/chip_filled.glf";
  if (::mkdir(work.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cannot create %s\n", work.c_str());
    return 1;
  }
  // The driver only ever reads tile regions through the index, so the
  // fixture goes to disk first like a real full-chip input.
  const Layout chip =
      make_design_rect('a', kWindowsX, kWindowsY, 100.0, /*seed=*/9);
  write_glf_file(in_glf, chip);
  const GlfRegionIndex index = GlfRegionIndex::build(in_glf, 400.0);

  fullchip::FullChipOptions opt;
  opt.method = "pkb";
  opt.tile_windows = kTileWindows;
  opt.halo_windows = kHaloWindows;
  opt.store_dir = work + "/tiles";
  const std::string prefix = prepare_surrogate(index, work);
  opt.surrogate_factory = [&prefix]() -> std::shared_ptr<const CmpSurrogate> {
    Expected<std::shared_ptr<CmpSurrogate>> s = load_surrogate(prefix);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.error().to_string().c_str());
      std::exit(1);
    }
    return std::move(*s);
  };

  fullchip::FullChipResult result;
  try {
    result = fullchip::fullchip_fill(index, opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const std::size_t dummies =
      fullchip::write_fullchip_result(index, out_glf, result, 100.0);

  const double tile_ms =
      result.tiles_solved > 0
          ? 1000.0 * result.tile_seconds /
                static_cast<double>(result.tiles_solved)
          : 0.0;
  std::printf("tiles        : %zu (%zu solved)\n", result.tiles_total,
              result.tiles_solved);
  std::printf("tile solve   : %.1f ms mean\n", tile_ms);
  std::printf("stitch passes: %d (seam %.4f, tol %.4f)\n",
              result.stitch_passes, result.final_seam, opt.stitch_tol);
  std::printf("total        : %.2f s, %zu dummies, %ld evaluations\n",
              result.runtime_s, dummies, result.evaluations);

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"fullchip\",\"fullchip_tile_ms\":%.3f,"
                "\"fullchip_stitch_passes\":%d,\"fullchip_seam\":%.5f,"
                "\"fullchip_total_s\":%.3f}",
                tile_ms, result.stitch_passes, result.final_seam,
                result.runtime_s);
  std::printf("\nJSON: %s\n", json);
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
  return 0;
}
