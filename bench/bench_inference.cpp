// Inference fast-path benchmark: single-thread UNet forward latency of the
// compiled InferenceSession vs the autograd module path, on the surrogate's
// production shape (7 input channels, base 8, depth 3, 64x64 windows).
//
// Also sweeps batched session runs (B = 1, 4, 16 printed; B = 8 gated):
// one run() call carries all B candidate samples, so per-call dispatch,
// GEMM panel packing, and epilogue setup amortize across the batch.  The
// gated key is per-sample latency at the fill loop's batch size.
//
// Emits a one-line JSON summary; --json FILE writes the same object for CI
// (tools/check_bench_regression.py gates unet_infer_ms_1t,
// infer_vs_autograd_speedup — the redesign's acceptance is >= 2x — and
// unet_infer_b8_ms_per_sample, which must stay below batch-1 latency).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "nn/infer/session.hpp"
#include "nn/tensor.hpp"
#include "nn/unet.hpp"
#include "runtime/parallel.hpp"
#include "surrogate/features.hpp"

namespace {

using namespace neurfill;

constexpr int kHeight = 64, kWidth = 64;
constexpr int kReps = 31;

// Best-of-reps: the minimum is the classic noise-robust statistic for a
// deterministic microbenchmark — scheduler preemptions and frequency dips
// only ever inflate a sample, so the floor tracks the code, not the VM.
double best_ms(const std::vector<double>& samples) {
  return *std::min_element(samples.begin(), samples.end()) * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];

  nn::UNetConfig cfg;
  cfg.in_channels = FeatureConstants::kInChannels;
  cfg.out_channels = 1;
  cfg.base_channels = 8;
  cfg.depth = 3;
  Rng rng(21);
  nn::UNet net(cfg, rng);
  const nn::InferenceSession session(net, kHeight, kWidth);

  std::vector<float> input(
      static_cast<std::size_t>(cfg.in_channels) * kHeight * kWidth);
  for (auto& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> output(static_cast<std::size_t>(kHeight) * kWidth);

  runtime::set_thread_count(1);

  // Autograd module path: tensor wrap + tape-building forward, the cost the
  // fill inner loop paid per evaluation before the redesign.
  const auto run_autograd = [&] {
    const nn::Tensor x = nn::Tensor::from_data(
        {1, cfg.in_channels, kHeight, kWidth}, input);
    const nn::Tensor y = net.forward(x);
    output[0] = y.data()[0];
  };
  const auto run_infer = [&] { session.run(input.data(), output.data()); };

  run_autograd();
  run_infer();  // warm-up (arena growth, packing buffers)
  std::vector<double> auto_s(kReps), infer_s(kReps);
  for (int r = 0; r < kReps; ++r) {
    Timer t;
    run_autograd();
    auto_s[static_cast<std::size_t>(r)] = t.elapsed_seconds();
  }
  for (int r = 0; r < kReps; ++r) {
    Timer t;
    run_infer();
    infer_s[static_cast<std::size_t>(r)] = t.elapsed_seconds();
  }
  runtime::set_thread_count(0);

  // Batched sweep: one compiled session planned for the largest batch, fed
  // with B copies of the same sample so every size reuses warm buffers.
  constexpr int kBatches[] = {1, 4, 8, 16};
  constexpr int kMaxBatch = 16;
  nn::InferenceOptions bopts;
  bopts.max_batch = kMaxBatch;
  const nn::InferenceSession bsession(net, kHeight, kWidth, bopts);
  std::vector<float> binput(input.size() * kMaxBatch);
  for (int b = 0; b < kMaxBatch; ++b)
    std::copy(input.begin(), input.end(),
              binput.begin() + static_cast<std::ptrdiff_t>(b) *
                                   static_cast<std::ptrdiff_t>(input.size()));
  std::vector<float> boutput(output.size() * kMaxBatch);
  double batch_ms[std::size(kBatches)] = {};
  for (std::size_t bi = 0; bi < std::size(kBatches); ++bi) {
    const int B = kBatches[bi];
    runtime::set_thread_count(1);
    bsession.run(binput.data(), boutput.data(), B);  // warm-up at this size
    std::vector<double> bs(kReps);
    for (int r = 0; r < kReps; ++r) {
      Timer t;
      bsession.run(binput.data(), boutput.data(), B);
      bs[static_cast<std::size_t>(r)] = t.elapsed_seconds();
    }
    batch_ms[bi] = best_ms(bs) / B;
  }
  runtime::set_thread_count(0);

  const double auto_ms = best_ms(auto_s);
  const double infer_ms = best_ms(infer_s);
  const double speedup = auto_ms / infer_ms;
  const double b8_ms = batch_ms[2];
  std::printf("=== UNet forward %dch base%d depth%d %dx%d, 1 thread ===\n",
              cfg.in_channels, cfg.base_channels, cfg.depth, kHeight, kWidth);
  std::printf("autograd module path: %8.3f ms\n", auto_ms);
  std::printf("inference session:    %8.3f ms\n", infer_ms);
  std::printf("speedup:              %8.2fx  (session graph: %zu nodes, "
              "arena %zu KiB)\n",
              speedup, session.node_count(),
              session.arena_floats_per_sample() * sizeof(float) / 1024);
  for (std::size_t bi = 0; bi < std::size(kBatches); ++bi)
    std::printf("batched run B=%-2d:     %8.3f ms/sample\n", kBatches[bi],
                batch_ms[bi]);

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"inference\",\"unet_autograd_ms_1t\":%.3f,"
                "\"unet_infer_ms_1t\":%.3f,"
                "\"infer_vs_autograd_speedup\":%.3f,"
                "\"unet_infer_b8_ms_per_sample\":%.3f}",
                auto_ms, infer_ms, speedup, b8_ms);
  std::printf("\nJSON: %s\n", json);
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
  return 0;
}
