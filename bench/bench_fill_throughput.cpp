// Fill-loop surrogate throughput: objective evaluations per second through
// the batched candidate pipeline (CmpNetwork::evaluate_batch — one session
// run per layer for the whole candidate batch) vs the serial batch-1 loop
// the fill optimizer ran before cross-candidate batching.  Both paths
// return bitwise-identical values (test-pinned), so this measures pure
// throughput on the dominant fill-loop cost.
//
// Emits a one-line JSON summary; --json FILE writes the same object for CI
// (tools/check_bench_regression.py gates fill_evals_per_s, higher is
// better).  Measured single-threaded: the batched win here is amortized
// per-evaluation overhead (per-call kernel dispatch, session setup, GEMM
// panel reuse across the deep narrow conv levels), not extra cores.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "fill/problem.hpp"
#include "geom/designs.hpp"
#include "runtime/parallel.hpp"
#include "surrogate/cmp_network.hpp"

namespace {

using namespace neurfill;

constexpr int kWindows = 16;  // the full-chip driver's default tile edge
constexpr int kBatch = 8;     // one NMMSO move batch
constexpr int kReps = 21;

double best_s(const std::vector<double>& samples) {
  return *std::min_element(samples.begin(), samples.end());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];

  const Layout layout = make_design('a', kWindows, 100.0, /*seed=*/9);
  const WindowExtraction ext = extract_windows(layout);
  const CmpSimulator sim;
  const ScoreCoefficients coeffs = make_coefficients(layout, ext, sim);
  // Production surrogate shape (7ch, base 8, depth 3); random weights are
  // fine here — throughput does not depend on the training state.
  const SurrogateConfig cfg;
  const auto surrogate = std::make_shared<CmpSurrogate>(cfg, 21);
  const CmpNetwork net(surrogate, ext, coeffs);
  const std::size_t layers = ext.num_layers();

  // A batch of candidate fills, as the NMMSO move loop produces them.
  Rng rng(31);
  std::vector<std::vector<GridD>> xs(
      kBatch, std::vector<GridD>(layers, GridD(ext.rows, ext.cols, 0.0)));
  for (auto& x : xs)
    for (auto& g : x)
      for (auto& v : g) v = rng.uniform(0.0, 0.3);

  runtime::set_thread_count(1);

  const auto run_serial = [&] {
    double acc = 0.0;
    for (const auto& x : xs) acc += net.evaluate(x, false).s_plan;
    return acc;
  };
  const auto run_batched = [&] {
    double acc = 0.0;
    for (const auto& e : net.evaluate_batch(xs)) acc += e.s_plan;
    return acc;
  };

  run_serial();
  run_batched();  // warm-up (arena growth, scratch buffers)
  std::vector<double> serial_s(kReps), batched_s(kReps);
  for (int r = 0; r < kReps; ++r) {
    Timer t;
    run_serial();
    serial_s[static_cast<std::size_t>(r)] = t.elapsed_seconds();
  }
  for (int r = 0; r < kReps; ++r) {
    Timer t;
    run_batched();
    batched_s[static_cast<std::size_t>(r)] = t.elapsed_seconds();
  }
  runtime::set_thread_count(0);

  const double serial_eps = kBatch / best_s(serial_s);
  const double batched_eps = kBatch / best_s(batched_s);
  const double speedup = batched_eps / serial_eps;
  std::printf("=== fill objective throughput, %dx%d windows, %zu layers, "
              "batch %d, 1 thread ===\n",
              kWindows, kWindows, layers, kBatch);
  std::printf("serial batch-1 loop:  %10.1f evals/s\n", serial_eps);
  std::printf("batched evaluate:     %10.1f evals/s\n", batched_eps);
  std::printf("batching speedup:     %10.2fx\n", speedup);

  char json[256];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"fill_throughput\",\"fill_evals_per_s\":%.1f,"
                "\"fill_evals_per_s_serial\":%.1f,"
                "\"fill_batch_speedup\":%.3f}",
                batched_eps, serial_eps, speedup);
  std::printf("\nJSON: %s\n", json);
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
  return 0;
}
