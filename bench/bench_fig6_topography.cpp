// Fig. 6 reproduction: the quality-score landscape of a layout with two
// fillable windows is multi-modal; NMMSO must locate the distinct peak
// regions.  Emits the 2-D score surface (CSV to stdout) plus the peaks the
// multi-modal search finds, so the figure can be re-plotted directly.

#include <cstdio>

#include "fill/problem.hpp"
#include "geom/designs.hpp"
#include "opt/nmmso.hpp"

#include "bench_util.hpp"

using namespace neurfill;

int main() {
  std::printf("=== Fig. 6: quality-score topography over two fillable "
              "windows ===\n");
  const Layout layout = make_design('a', 8, 100.0, /*seed=*/4);
  WindowExtraction ext = extract_windows(layout);
  CmpSimulator sim;
  ScoreCoefficients coeffs = make_coefficients(layout, ext, sim);
  // Tighten the overlay budget to the two-window scale so the
  // dummy-to-dummy interaction is visible in this 2-D slice (with the
  // full-chip beta_ov, two windows' overlay is invisible).
  coeffs.beta_ov = 0.6 * ext.window_area_um2();
  FillProblem problem(ext, sim, coeffs);

  // The free variables are one window position on two adjacent layers (the
  // vertical stacking is what makes the landscape multi-modal: the
  // dummy-to-dummy overlay term of Eq. 14 penalizes filling *both* layers
  // past the shared slack, carving the surface into competing basins).
  const Box full = problem.bounds();
  const std::size_t per_layer = ext.rows * ext.cols;
  std::size_t kbest = 0;
  double best_slack = -1.0;
  for (std::size_t k = 0; k < per_layer; ++k) {
    const double s = std::min(ext.layers[0].slack[k], ext.layers[1].slack[k]);
    if (s > best_slack) {
      best_slack = s;
      kbest = k;
    }
  }
  const std::size_t v1 = kbest;              // layer 0
  const std::size_t v2 = per_layer + kbest;  // layer 1, same window
  const ObjectiveFn quality2d = [&](const VecD& q, VecD*) {
    VecD v(problem.num_vars(), 0.0);
    v[v1] = q[0];
    v[v2] = q[1];
    return problem.evaluate(problem.unflatten(v)).s_qual;
  };

  // Dense surface for plotting.
  const int steps = 24;
  std::printf("\ncsv: x1,x2,quality\n");
  double best = -1e300;
  for (int i = 0; i <= steps; ++i) {
    for (int j = 0; j <= steps; ++j) {
      const VecD q{full.hi[v1] * i / steps, full.hi[v2] * j / steps};
      const double s = quality2d(q, nullptr);
      best = std::max(best, s);
      std::printf("%.4f,%.4f,%.6f\n", q[0], q[1], s);
    }
  }

  // NMMSO mode location.
  Box box2;
  box2.lo = {0.0, 0.0};
  box2.hi = {full.hi[v1], full.hi[v2]};
  NmmsoOptions opt;
  opt.max_evaluations = 1200;
  opt.merge_distance = 0.07;
  opt.seed = 9;
  Nmmso nmmso(quality2d, box2, opt);
  const std::vector<Mode> modes = nmmso.run();

  std::printf("\nNMMSO peaks (top 8 of %zu swarms):\n", modes.size());
  std::size_t strong = 0;
  for (std::size_t m = 0; m < modes.size() && m < 8; ++m) {
    std::printf("  (%.4f, %.4f) -> %.6f\n", modes[m].x[0], modes[m].x[1],
                modes[m].value);
    if (modes[m].value > 0.95 * best) ++strong;
  }
  std::printf("grid-best quality %.6f; NMMSO best %.6f (gap %.2f%%); %zu "
              "near-optimal peak(s)\n",
              best, modes.front().value,
              100.0 * (best - modes.front().value) / std::max(best, 1e-12),
              strong);
  std::printf("(under this reproduction's calibrated scoring the 2-window "
              "slice is %s; the paper's Fig. 6 landscape is benchmark-"
              "specific)\n",
              modes.size() > 1 ? "multi-modal" : "unimodal");

  // Control: the same NMMSO configuration on a landscape with two known
  // peaks must find both — this validates the multi-modal locator itself,
  // independent of how modal the fill slice happens to be.
  const ObjectiveFn control = [](const VecD& q, VecD*) {
    const double d1 =
        (q[0] - 0.25) * (q[0] - 0.25) + (q[1] - 0.3) * (q[1] - 0.3);
    const double d2 =
        (q[0] - 0.75) * (q[0] - 0.75) + (q[1] - 0.7) * (q[1] - 0.7);
    return std::exp(-d1 / 0.01) + 0.8 * std::exp(-d2 / 0.01);
  };
  Box unit;
  unit.lo = {0.0, 0.0};
  unit.hi = {1.0, 1.0};
  Nmmso control_solver(control, unit, opt);
  const std::vector<Mode> cmodes = control_solver.run();
  int found = 0;
  for (const Mode& m : cmodes) {
    if (std::hypot(m.x[0] - 0.25, m.x[1] - 0.3) < 0.1 && m.value > 0.8)
      found |= 1;
    if (std::hypot(m.x[0] - 0.75, m.x[1] - 0.7) < 0.1 && m.value > 0.6)
      found |= 2;
  }
  std::printf("control (two-Gaussian landscape): NMMSO found %s\n",
              found == 3 ? "both peaks [OK]" : "NOT all peaks [check]");
  return 0;
}
