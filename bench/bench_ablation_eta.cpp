// Ablation: the outlier-relaxation sharpness eta (Eq. 10c).  The exact
// outlier objective max(0, H - threshold) is non-differentiable; the paper
// replaces it with a sigmoid, this implementation with softplus(eta*.)/eta.
// Small eta over-smooths (the relaxed value overestimates and its gradient
// leaks everywhere); large eta approaches the exact kink (accurate value,
// but harder optimization).  This bench sweeps eta and reports the relaxed
// value's error against the exact metric plus the end-to-end quality after
// SQP refinement.

#include <cmath>
#include <cstdio>
#include <memory>

#include "fill/metrics.hpp"
#include "fill/neurfill.hpp"

#include "bench_util.hpp"

using namespace neurfill;

int main() {
  std::printf("=== Ablation: outlier relaxation sharpness eta ===\n");
  neurfill::bench::ProblemBundle base = neurfill::bench::make_bundle('a', 24);
  const std::vector<GridD> x0 = base.problem.zero_fill();

  // Exact outlier metric of the surrogate's predicted heights (so the
  // comparison isolates the relaxation, not the surrogate error).
  const std::vector<GridD> pred = base.network->predict_heights(x0);
  const PlanarityMetrics exact = compute_planarity(pred);

  std::printf("\n%8s %16s %16s %18s\n", "eta", "relaxed ol", "exact ol",
              "final quality");
  for (const double eta : {0.005, 0.02, 0.05, 0.2, 1.0}) {
    // Clone the surrogate with a different eta (weights shared via re-load
    // of config; the UNet itself is identical so predictions match).
    auto cfg = base.surrogate->config();
    cfg.outlier_eta = eta;
    auto clone = std::make_shared<CmpSurrogate>(cfg, 1);
    // Copy weights tensor-by-tensor.
    const auto src = base.surrogate->unet().named_parameters();
    const auto dst = clone->unet().named_parameters();
    for (std::size_t i = 0; i < src.size(); ++i)
      std::copy(src[i].second.data(),
                src[i].second.data() + src[i].second.numel(),
                dst[i].second.data());
    CmpNetwork network(clone, base.problem.extraction(),
                       base.problem.coefficients());

    const CmpNetwork::Eval eval = network.evaluate(x0, false);

    NeurFillOptions opt;
    opt.sqp.max_iterations = 25;
    opt.pkb_steps = 6;
    const FillRunResult run = neurfill_pkb(base.problem, network, opt);
    const double q_true = base.problem.evaluate(run.x).s_qual;

    std::printf("%8.3f %16.1f %16.1f %18.4f\n", eta, eval.outliers,
                exact.outliers, q_true);
  }
  std::printf("\nexpected shape: relaxed ol approaches the exact value as eta "
              "grows; final quality is flat over a broad middle range "
              "(the default 0.05 sits there)\n");
  return 0;
}
