// Table III reproduction: filling-quality comparison of Lin [10], Tao [11],
// Cai [12], NeurFill (PKB) and NeurFill (MM) on the three designs, scored
// with the full contest metric (Table II coefficients printed first).
//
// Scale note (see EXPERIMENTS.md): the paper runs ~100x100-window chips with
// Cai on 64 cores for hours; this bench uses 24x24-window analogues so the
// whole 15-run table regenerates in minutes on one core.  The *shape* to
// check: model-based methods beat rule-based on quality; NeurFill (PKB)
// reaches Cai-level quality orders of magnitude faster; NeurFill (MM) gets
// the best quality at the largest runtime; Lin is fastest.

#include <cstdio>
#include <iostream>

#include "common/timer.hpp"
#include "fill/neurfill.hpp"
#include "fill/report.hpp"

#include "bench_util.hpp"

using namespace neurfill;

namespace {

void run_design(char design) {
  neurfill::bench::ProblemBundle b = neurfill::bench::make_bundle(design, 24);
  const std::string name(1, static_cast<char>(std::toupper(design)));
  std::printf("\n--- Design %s (%zu windows/layer, 3 layers) ---\n",
              name.c_str(), b.problem.extraction().rows *
                                b.problem.extraction().cols);
  print_coefficients(std::cout, b.problem.coefficients());
  print_table3_header(std::cout);

  {
    const FillRunResult r = lin_rule_fill(b.problem);
    print_table3_row(std::cout, name, score_fill_result(b.problem, b.layout, r));
  }
  {
    TaoOptions opt;
    opt.sqp.max_iterations = 30;
    const FillRunResult r = tao_rule_sqp(b.problem, opt);
    print_table3_row(std::cout, name, score_fill_result(b.problem, b.layout, r));
  }
  {
    CaiOptions opt;
    opt.pkb_steps = 5;
    opt.sqp.max_iterations = 4;  // each gradient costs n+1 simulations
    const FillRunResult r = cai_model_fill(b.problem, opt);
    print_table3_row(std::cout, name, score_fill_result(b.problem, b.layout, r));
    // The paper's Cai row pays hours of runtime because each of its
    // simulator calls costs seconds on an industrial-fidelity solver; this
    // repo's asperity reference is unrealistically cheap.  Project the same
    // run onto the high-fidelity (elastic-contact) simulator cost: same
    // solution, runtime = calls x measured elastic simulation time.
    CmpProcessParams ep = b.problem.simulator().params();
    ep.pressure_model = PressureModel::kElastic;
    const CmpSimulator esim(ep);
    Timer et;
    esim.simulate_heights(b.problem.extraction(), r.x);
    const double t_elastic = et.elapsed_seconds();
    FillRunResult proj = r;
    proj.method = "Cai (hi-fi proj.)";
    proj.runtime_s = static_cast<double>(r.objective_evaluations) * t_elastic;
    print_table3_row(std::cout, name,
                     score_fill_result(b.problem, b.layout, proj));
  }
  {
    NeurFillOptions opt;
    const FillRunResult r = neurfill_pkb(b.problem, *b.network, opt);
    print_table3_row(std::cout, name, score_fill_result(b.problem, b.layout, r));
  }
  {
    NeurFillOptions opt;
    opt.nmmso.max_evaluations = 300;
    opt.mm_starts = 3;
    const FillRunResult r = neurfill_mm(b.problem, *b.network, opt);
    print_table3_row(std::cout, name, score_fill_result(b.problem, b.layout, r));
  }
}

}  // namespace

int main() {
  std::printf("=== Table III: performance comparison on three designs ===\n");
  for (const char d : {'a', 'b', 'c'}) run_design(d);
  std::printf("\nexpected shape: quality Lin <= Tao < Cai <= NeurFill(PKB) <= "
              "NeurFill(MM); runtime Lin < Tao < NeurFill(PKB) << Cai, "
              "NeurFill(MM)\n");
  return 0;
}
