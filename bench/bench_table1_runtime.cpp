// Table I reproduction: runtime of objective evaluation and gradient
// calculation — full-chip CMP simulator (measured single-core, plus an
// idealized 64-core column = measured / 64, as stated in EXPERIMENTS.md)
// versus the CMP neural network (forward / backward propagation).
//
// The paper reports 188x (objective) and 8134x (gradient, vs 64c) on a
// 100x100-window layout with a GPU.  Here both sides run on the same single
// CPU core, so the honest comparison is 1c-vs-1c; the structural claim that
// must hold is: backward propagation beats numerical gradients by a factor
// that grows linearly with the number of windows.
//
// Manual timings print the Table-I-shaped summary first; google-benchmark
// then re-times the fast operations with statistical rigor.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/timer.hpp"
#include "fill/neurfill.hpp"

#include "bench_util.hpp"

namespace {

using namespace neurfill;
using neurfill::bench::ProblemBundle;

ProblemBundle& bundle() {
  static ProblemBundle b = neurfill::bench::make_bundle('a', 32);
  return b;
}

void print_table1() {
  ProblemBundle& b = bundle();
  const std::size_t n = b.problem.num_vars();
  std::printf("\n=== Table I: runtime of objective evaluation and gradient "
              "calculation ===\n");
  std::printf("layout: 32x32 windows x 3 layers (%zu variables)\n\n", n);

  const VecD x0(n, 0.01);
  const ObjectiveFn sim_obj = b.problem.make_simulator_objective();
  long net_evals = 0;
  const ObjectiveFn net_obj =
      make_network_objective(b.problem, *b.network, &net_evals);

  // Objective evaluation: fast asperity-mode simulator (this repo's
  // production reference) and the high-fidelity elastic-contact mode (the
  // class of solver the paper's 4.7s-per-evaluation simulator belongs to).
  Timer t;
  const int reps = 5;
  for (int i = 0; i < reps; ++i) sim_obj(x0, nullptr);
  const double t_sim_obj = t.elapsed_seconds() / reps;

  CmpProcessParams eparams = b.problem.simulator().params();
  eparams.pressure_model = PressureModel::kElastic;
  const CmpSimulator elastic_sim(eparams);
  t.reset();
  elastic_sim.simulate_heights(b.problem.extraction(),
                               b.problem.unflatten(VecD(n, 0.01)));
  const double t_ela_obj = t.elapsed_seconds();

  t.reset();
  for (int i = 0; i < reps; ++i) net_obj(x0, nullptr);
  const double t_net_obj = t.elapsed_seconds() / reps;

  // Gradient calculation.  The asperity-mode numerical gradient (n+1
  // simulations) is measured outright; the elastic-mode one would take
  // (n+1) * t_ela_obj (hours), so it is projected from the measured
  // single-simulation time — the same cost structure the paper measured.
  VecD grad;
  t.reset();
  sim_obj(x0, &grad);
  const double t_sim_grad = t.elapsed_seconds();
  const double t_ela_grad = static_cast<double>(n + 1) * t_ela_obj;
  t.reset();
  net_obj(x0, &grad);
  const double t_net_grad = t.elapsed_seconds();

  std::printf("%-22s %15s %15s %15s %12s\n", "Operation", "Sim-asperity(1c)",
              "Sim-elastic(1c)", "CMP-NN(1c)", "NN-vs-elastic");
  std::printf("%-22s %15.4fs %15.4fs %15.4fs %11.0fx\n",
              "Objective evaluation", t_sim_obj, t_ela_obj, t_net_obj,
              t_ela_obj / t_net_obj);
  std::printf("%-22s %15.4fs %14.1fs* %15.4fs %11.0fx\n",
              "Gradient calculation", t_sim_grad, t_ela_grad, t_net_grad,
              t_ela_grad / t_net_grad);
  std::printf("(*) projected: (n+1) x measured elastic simulation time\n");
  std::printf("paper (100x100, GPU vs 64c): objective 188x, gradient 8134x\n");
  std::printf("shape checks: numerical gradient = %zu simulations per call "
              "vs one backward pass; gradient/objective cost ratio is ~n for "
              "the simulator (%0.0fx here, paper 7255x at n~10k) and O(1) "
              "for the network (%.1fx here, paper 2.7x).\n\n",
              n + 1, t_sim_grad / t_sim_obj, t_net_grad / t_net_obj);
}

void BM_ObjectiveEval_Simulator(benchmark::State& state) {
  ProblemBundle& b = bundle();
  const ObjectiveFn obj = b.problem.make_simulator_objective();
  const VecD x(b.problem.num_vars(), 0.01);
  for (auto _ : state) benchmark::DoNotOptimize(obj(x, nullptr));
}
BENCHMARK(BM_ObjectiveEval_Simulator)->Unit(benchmark::kMillisecond);

void BM_ObjectiveEval_Network(benchmark::State& state) {
  ProblemBundle& b = bundle();
  const ObjectiveFn obj = make_network_objective(b.problem, *b.network);
  const VecD x(b.problem.num_vars(), 0.01);
  for (auto _ : state) benchmark::DoNotOptimize(obj(x, nullptr));
}
BENCHMARK(BM_ObjectiveEval_Network)->Unit(benchmark::kMillisecond);

void BM_Gradient_NetworkBackward(benchmark::State& state) {
  ProblemBundle& b = bundle();
  const ObjectiveFn obj = make_network_objective(b.problem, *b.network);
  const VecD x(b.problem.num_vars(), 0.01);
  VecD grad;
  for (auto _ : state) {
    obj(x, &grad);
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(BM_Gradient_NetworkBackward)->Unit(benchmark::kMillisecond);

void BM_Gradient_NumericalSimulator(benchmark::State& state) {
  ProblemBundle& b = bundle();
  const ObjectiveFn obj = b.problem.make_simulator_objective();
  const VecD x(b.problem.num_vars(), 0.01);
  VecD grad;
  for (auto _ : state) {
    obj(x, &grad);
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(BM_Gradient_NumericalSimulator)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
