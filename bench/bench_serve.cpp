// Serve-path overhead bench: an in-process nf_serve daemon (journal +
// scheduler + runner + poll() transport) driven by a loopback client.
//
// Two summary numbers, both about the daemon machinery rather than the
// solver (jobs use the cheap lin method on a tiny design, so admission,
// journaling, scheduling, and the socket round-trip dominate):
//  * serve_jobs_per_s -- end-to-end completed jobs per second through
//    submit -> journal -> worker -> artifact -> status (higher is better);
//  * serve_p99_ms     -- p99 request/reply round-trip latency of a ping on
//    a live daemon (lower is better; this is what a client pays to talk to
//    the daemon at all).
//
// Emits a one-line JSON summary; --json FILE writes the same object for CI
// (tools/check_bench_regression.py gates both keys).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "geom/designs.hpp"
#include "geom/glf_io.hpp"
#include "runtime/parallel.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/server.hpp"

namespace {

using namespace neurfill;
using namespace neurfill::serve;

constexpr int kJobs = 30;
constexpr int kPings = 400;

double p99_ms(std::vector<double>& samples_s) {
  std::sort(samples_s.begin(), samples_s.end());
  const std::size_t idx = std::min(
      samples_s.size() - 1,
      static_cast<std::size_t>(0.99 *
                               static_cast<double>(samples_s.size())));
  return samples_s[idx] * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];

  const std::string work = "bench_serve_work";
  std::error_code ignored;
  std::filesystem::remove_all(work, ignored);
  std::filesystem::create_directories(work);
  write_glf_file(work + "/in.glf", make_design('a', 4, 100.0, 7));

  runtime::set_thread_count(1);
  DaemonOptions dopt;
  dopt.scheduler.queue_capacity = kJobs + 1;
  Expected<std::unique_ptr<Daemon>> daemon =
      Daemon::create(dopt, work + "/journal");
  if (!daemon.ok()) {
    std::fprintf(stderr, "error: %s\n", daemon.error().to_string().c_str());
    return 1;
  }
  Expected<Server> server = Server::listen(0, "");
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.error().to_string().c_str());
    return 1;
  }
  Daemon& d = **daemon;
  std::thread transport([&] { (void)server->run(d); });
  std::thread worker([&] { d.run_worker(); });

  Expected<Client> client = Client::connect(server->port());
  if (!client.ok()) {
    std::fprintf(stderr, "error: %s\n", client.error().to_string().c_str());
    return 1;
  }

  // Warm-up job: first solve pays one-time setup (scratch buffers etc.).
  (void)client->request_line(
      "{\"op\":\"submit\",\"design\":\"" + work + "/in.glf\",\"out\":\"" +
      work + "/warm.glf\",\"method\":\"lin\"}");

  // Throughput: submit kJobs, then poll the last one to completion (the
  // worker is FIFO, so the last completing means all completed).
  Timer jobs_timer;
  std::string last_id;
  for (int i = 0; i < kJobs; ++i) {
    Expected<std::string> reply = client->request_line(
        "{\"op\":\"submit\",\"design\":\"" + work + "/in.glf\",\"out\":\"" +
        work + "/out_" + std::to_string(i) + ".glf\",\"method\":\"lin\"}");
    if (!reply.ok() || reply->find("\"ok\":true") == std::string::npos) {
      std::fprintf(stderr, "submit %d failed: %s\n", i,
                   reply.ok() ? reply->c_str()
                              : reply.error().to_string().c_str());
      return 1;
    }
    const std::size_t at = reply->find("\"id\":\"");
    last_id = reply->substr(at + 6, reply->find('"', at + 6) - at - 6);
  }
  for (;;) {
    Expected<std::string> st = client->request_line(
        "{\"op\":\"status\",\"id\":\"" + last_id + "\"}");
    if (!st.ok()) {
      std::fprintf(stderr, "status poll failed: %s\n",
                   st.error().to_string().c_str());
      return 1;
    }
    if (st->find("\"state\":\"completed\"") != std::string::npos) break;
    if (st->find("\"state\":\"failed\"") != std::string::npos) {
      std::fprintf(stderr, "bench job failed: %s\n", st->c_str());
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double jobs_per_s = kJobs / jobs_timer.elapsed_seconds();

  // Round-trip latency on the live (now idle) daemon.
  std::vector<double> rtt_s;
  rtt_s.reserve(kPings);
  for (int i = 0; i < kPings; ++i) {
    Timer t;
    Expected<std::string> pong = client->request_line("{\"op\":\"ping\"}");
    if (!pong.ok()) {
      std::fprintf(stderr, "ping failed: %s\n",
                   pong.error().to_string().c_str());
      return 1;
    }
    rtt_s.push_back(t.elapsed_seconds());
  }
  const double p99 = p99_ms(rtt_s);

  (void)client->request_line("{\"op\":\"drain\"}");
  worker.join();
  transport.join();
  runtime::set_thread_count(0);

  std::printf("=== serve daemon overhead, %d lin jobs + %d pings ===\n",
              kJobs, kPings);
  std::printf("end-to-end throughput: %8.1f jobs/s\n", jobs_per_s);
  std::printf("ping round-trip p99:   %8.3f ms\n", p99);

  char json[160];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"serve\",\"serve_jobs_per_s\":%.1f,"
                "\"serve_p99_ms\":%.3f}",
                jobs_per_s, p99);
  std::printf("\nJSON: %s\n", json);
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
  std::filesystem::remove_all(work, ignored);
  return 0;
}
