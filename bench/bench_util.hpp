#pragma once

// Shared setup for the experiment benches: problem construction and
// surrogate loading with a quick-train fallback when the cached artifact
// (data/unet_cmp, produced by examples/train_surrogate) is absent.

#include <cstdio>
#include <exception>
#include <memory>
#include <string>

#include "fill/neurfill.hpp"
#include "fill/problem.hpp"
#include "geom/designs.hpp"
#include "surrogate/cmp_network.hpp"
#include "surrogate/trainer.hpp"

namespace neurfill::bench {

inline std::string surrogate_prefix() {
  const char* env = std::getenv("NEURFILL_SURROGATE");
  return env ? env : "data/unet_cmp";
}

struct ProblemBundle {
  Layout layout;
  FillProblem problem;
  std::shared_ptr<CmpSurrogate> surrogate;
  std::unique_ptr<CmpNetwork> network;
};

inline std::shared_ptr<CmpSurrogate> load_or_quick_train(
    const WindowExtraction& ext, const CmpSimulator& sim) {
  Expected<std::shared_ptr<CmpSurrogate>> loaded =
      load_surrogate(surrogate_prefix());
  if (loaded.ok()) return std::move(*loaded);
  std::printf("note: cached surrogate unavailable (%s); quick-training a "
              "reduced one (results will be weaker than with "
              "examples/train_surrogate output)\n",
              loaded.error().to_string().c_str());
  SurrogateConfig cfg;
  cfg.unet.base_channels = 8;
  cfg.unet.depth = 2;
  auto s = std::make_shared<CmpSurrogate>(cfg, 5);
  TrainingDataGenerator gen({ext}, sim, 17, 4);
  TrainOptions opt;
  opt.epochs = 6;
  opt.dataset_size = 60;
  opt.grid_rows = ext.rows;
  opt.grid_cols = ext.cols;
  train_surrogate(*s, gen, opt);
  return s;
}

inline ProblemBundle make_bundle(char design, int windows,
                                 std::uint64_t seed = 1) {
  Layout layout = make_design(design, windows, 100.0, seed);
  WindowExtraction ext = extract_windows(layout);
  CmpSimulator sim;
  ScoreCoefficients coeffs = make_coefficients(layout, ext, sim);
  ProblemBundle b{std::move(layout), FillProblem(ext, sim, coeffs), nullptr,
                  nullptr};
  b.surrogate = load_or_quick_train(b.problem.extraction(), sim);
  b.network = std::make_unique<CmpNetwork>(b.surrogate, b.problem.extraction(),
                                           coeffs);
  calibrate_network(*b.network, b.problem);  // two-anchor simulator fit
  return b;
}

}  // namespace neurfill::bench
