// Ablation: starting-point strategies for the SQP refinement (Section IV-C/D
// motivation).  Compares (a) zero fill, (b) random feasible points,
// (c) the prior-knowledge-based (PKB) target-density start, and (d) NMMSO
// multi-modal modes, all refined by the same SQP and judged by the true
// simulator quality.  The paper's claim: PKB gives fast good solutions but
// is not guaranteed optimal; multi-modal search buys certainty.

#include <cstdio>

#include "common/rng.hpp"
#include "fill/neurfill.hpp"

#include "bench_util.hpp"

using namespace neurfill;

int main() {
  std::printf("=== Ablation: starting-point strategy -> final quality ===\n");
  neurfill::bench::ProblemBundle b = neurfill::bench::make_bundle('c', 24);
  const Box box = b.problem.bounds();
  const ObjectiveFn obj = make_network_objective(b.problem, *b.network);
  SqpOptions sopt;
  sopt.max_iterations = 40;

  const auto refine_and_score = [&](const VecD& x0, const char* label) {
    const SqpResult r = sqp_minimize(obj, x0, box, sopt);
    const double q_true = b.problem.evaluate(b.problem.unflatten(r.x)).s_qual;
    const double q_start =
        b.problem.evaluate(b.problem.unflatten(x0)).s_qual;
    std::printf("%-28s start %.4f -> refined %.4f (surrogate obj %.4f, %d "
                "iters)\n",
                label, q_start, q_true, -r.f, r.iterations);
    return q_true;
  };

  // (a) zero start.
  refine_and_score(VecD(b.problem.num_vars(), 0.0), "zero fill");

  // (b) random feasible starts.
  Rng rng(77);
  double best_random = 0.0;
  for (int t = 0; t < 3; ++t) {
    VecD x(b.problem.num_vars());
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = rng.uniform(0.0, box.hi[i]);
    char label[32];
    std::snprintf(label, sizeof(label), "random #%d", t + 1);
    best_random = std::max(best_random, refine_and_score(x, label));
  }

  // (c) PKB.
  const std::vector<GridD> pkb = pkb_starting_point(
      b.problem.extraction(),
      [&](const std::vector<GridD>& x) {
        return b.network->evaluate(x, false).s_plan;
      },
      9);
  const double q_pkb = refine_and_score(b.problem.flatten(pkb), "PKB (Eq. 18)");

  // (d) NMMSO modes.
  NmmsoOptions nopt;
  nopt.max_evaluations = 300;
  nopt.seed = 5;
  const ObjectiveFn explore = [&](const VecD& v, VecD*) {
    return -obj(v, nullptr);
  };
  Nmmso nmmso(explore, box, nopt);
  const std::vector<Mode> modes = nmmso.run();
  double q_mm = 0.0;
  for (std::size_t m = 0; m < modes.size() && m < 3; ++m) {
    char label[32];
    std::snprintf(label, sizeof(label), "NMMSO mode #%zu", m + 1);
    q_mm = std::max(q_mm, refine_and_score(modes[m].x, label));
  }

  std::printf("\nsummary: best-random %.4f | PKB %.4f | best-NMMSO %.4f\n",
              best_random, q_pkb, q_mm);
  std::printf("expected shape: PKB and NMMSO reach at least random-start "
              "quality; the MSP pool (PKB + modes) dominates any single "
              "start\n");
  return 0;
}
