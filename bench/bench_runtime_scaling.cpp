// Runtime-subsystem scaling benchmark: throughput of the two heaviest
// parallelized kernels — the GEMM behind conv2d and the elastic contact
// solver behind the high-fidelity CMP simulator — at 1/2/4/8 threads.
//
// The manual sweep prints a table plus a machine-readable JSON summary line
// (speedup_8t is what the acceptance check reads; >= 3x is expected on a
// host with >= 8 real cores, while a 1-core container reports ~1x since the
// pool degrades gracefully to near-serial execution).  google-benchmark then
// re-times the kernels at each thread count with statistical rigor.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "cmp/contact_solver.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "nn/gemm.hpp"
#include "runtime/parallel.hpp"

namespace {

using namespace neurfill;

constexpr int kThreadCounts[] = {1, 2, 4, 8};

struct GemmProblem {
  static constexpr int M = 512, N = 512, K = 512;
  std::vector<float> A, B, C;
  GemmProblem()
      : A(static_cast<std::size_t>(M) * K),
        B(static_cast<std::size_t>(K) * N),
        C(static_cast<std::size_t>(M) * N) {
    Rng rng(5);
    for (auto& x : A) x = static_cast<float>(rng.normal());
    for (auto& x : B) x = static_cast<float>(rng.normal());
  }
  void run() { nn::gemm_nn(M, N, K, A.data(), B.data(), C.data(), false); }
  static double flops() { return 2.0 * M * N * K; }
};

struct ContactProblem {
  static constexpr std::size_t R = 64, C = 64;
  GridD height{R, C, 0.0};
  ElasticContactSolver::Options opt;
  ContactProblem() {
    Rng rng(9);
    for (auto& h : height) h = rng.uniform(0.0, 80.0);
    opt.max_iterations = 40;
  }
  void run() const {
    ElasticContactSolver solver(R, C, opt);
    benchmark::DoNotOptimize(solver.solve(height, 1.5));
  }
};

template <typename Problem>
double time_seconds(Problem& p, int reps) {
  p.run();  // warm-up (and first-use pool construction)
  Timer t;
  for (int i = 0; i < reps; ++i) p.run();
  return t.elapsed_seconds() / reps;
}

void print_scaling_summary(const std::string& json_path) {
  GemmProblem gemm;
  ContactProblem contact;
  double gemm_s[4] = {}, contact_s[4] = {};
  for (int i = 0; i < 4; ++i) {
    runtime::set_thread_count(kThreadCounts[i]);
    gemm_s[i] = time_seconds(gemm, 10);
    contact_s[i] = time_seconds(contact, 3);
  }
  runtime::set_thread_count(0);

  std::printf("\n=== Runtime scaling: GEMM %dx%dx%d and %zux%zu elastic "
              "contact solve ===\n",
              GemmProblem::M, GemmProblem::N, GemmProblem::K,
              ContactProblem::R, ContactProblem::C);
  std::printf("%-10s %14s %10s %16s %10s\n", "threads", "gemm GFLOP/s",
              "speedup", "contact ms", "speedup");
  for (int i = 0; i < 4; ++i)
    std::printf("%-10d %14.2f %10.2f %16.2f %10.2f\n", kThreadCounts[i],
                GemmProblem::flops() / gemm_s[i] * 1e-9, gemm_s[0] / gemm_s[i],
                contact_s[i] * 1e3, contact_s[0] / contact_s[i]);

  // One-line JSON for scripted consumption; --json FILE writes the same
  // object to a file (CI publishes it as BENCH_runtime.json).
  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"runtime_scaling\","
                "\"gemm_gflops_1t\":%.3f,\"gemm_speedup_2t\":%.3f,"
                "\"gemm_speedup_4t\":%.3f,\"gemm_speedup_8t\":%.3f,"
                "\"contact_ms_1t\":%.3f,\"contact_speedup_2t\":%.3f,"
                "\"contact_speedup_4t\":%.3f,\"contact_speedup_8t\":%.3f}",
                GemmProblem::flops() / gemm_s[0] * 1e-9, gemm_s[0] / gemm_s[1],
                gemm_s[0] / gemm_s[2], gemm_s[0] / gemm_s[3],
                contact_s[0] * 1e3, contact_s[0] / contact_s[1],
                contact_s[0] / contact_s[2], contact_s[0] / contact_s[3]);
  std::printf("\nJSON: %s\n\n", json);
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      std::exit(1);
    }
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
}

void BM_GemmAtThreads(benchmark::State& state) {
  runtime::set_thread_count(static_cast<int>(state.range(0)));
  GemmProblem gemm;
  for (auto _ : state) {
    gemm.run();
    benchmark::DoNotOptimize(gemm.C.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      GemmProblem::flops() * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
  runtime::set_thread_count(0);
}
BENCHMARK(BM_GemmAtThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ContactSolveAtThreads(benchmark::State& state) {
  runtime::set_thread_count(static_cast<int>(state.range(0)));
  ContactProblem contact;
  for (auto _ : state) contact.run();
  runtime::set_thread_count(0);
}
BENCHMARK(BM_ContactSolveAtThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Pre-scan for --json FILE (google-benchmark would reject the flag).
  std::string json_path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  print_scaling_summary(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
