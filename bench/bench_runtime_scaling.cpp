// Runtime-subsystem scaling benchmark: throughput of the heaviest
// parallelized kernels — the packed GEMM (all three operand layouts), the
// conv2d forward/backward path that feeds it through im2col, and the
// elastic contact solver behind the high-fidelity CMP simulator — at
// 1/2/4/8 threads.
//
// The manual sweep prints a table plus a machine-readable JSON summary line
// (speedup_8t is what the acceptance check reads; >= 3x is expected on a
// host with >= 8 real cores, while a 1-core container reports ~1x since the
// pool degrades gracefully to near-serial execution).  google-benchmark then
// re-times the kernels at each thread count with statistical rigor.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "cmp/contact_solver.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "nn/gemm.hpp"
#include "nn/ops.hpp"
#include "runtime/parallel.hpp"

namespace {

using namespace neurfill;

constexpr int kThreadCounts[] = {1, 2, 4, 8};

struct GemmProblem {
  static constexpr int M = 512, N = 512, K = 512;
  // 0 = nn, 1 = nt, 2 = tn.  All three operand layouts are 512x512, so one
  // buffer pair drives every variant.
  int variant = 0;
  std::vector<float> A, B, C;
  GemmProblem()
      : A(static_cast<std::size_t>(M) * K),
        B(static_cast<std::size_t>(K) * N),
        C(static_cast<std::size_t>(M) * N) {
    Rng rng(5);
    for (auto& x : A) x = static_cast<float>(rng.normal());
    for (auto& x : B) x = static_cast<float>(rng.normal());
  }
  void run() {
    switch (variant) {
      case 1: nn::gemm_nt(M, N, K, A.data(), B.data(), C.data(), false); break;
      case 2: nn::gemm_tn(M, N, K, A.data(), B.data(), C.data(), false); break;
      default: nn::gemm_nn(M, N, K, A.data(), B.data(), C.data(), false);
    }
  }
  static double flops() { return 2.0 * M * N * K; }
};

struct ConvProblem {
  // A UNet-encoder-sized layer: the shape the surrogate hot path actually
  // runs through conv2d -> im2col -> packed GEMM.
  static constexpr int N = 2, C = 16, H = 64, W = 64, O = 16, k = 3;
  bool backward;
  std::vector<float> xd, wd, bd;
  explicit ConvProblem(bool bwd)
      : backward(bwd),
        xd(static_cast<std::size_t>(N) * C * H * W),
        wd(static_cast<std::size_t>(O) * C * k * k),
        bd(static_cast<std::size_t>(O)) {
    Rng rng(7);
    for (auto& v : xd) v = static_cast<float>(rng.normal());
    for (auto& v : wd) v = static_cast<float>(rng.normal(0.0, 0.1));
    for (auto& v : bd) v = static_cast<float>(rng.normal());
  }
  void run() const {
    nn::Tensor x = nn::Tensor::from_data({N, C, H, W}, xd, backward);
    nn::Tensor w = nn::Tensor::from_data({O, C, k, k}, wd, backward);
    nn::Tensor b = nn::Tensor::from_data({O}, bd, backward);
    nn::Tensor y = nn::conv2d(x, w, b, /*stride=*/1, /*padding=*/1);
    if (backward) {
      nn::sum(y).backward();
      benchmark::DoNotOptimize(x.grad());
    }
    benchmark::DoNotOptimize(y.data());
  }
};

struct ContactProblem {
  static constexpr std::size_t R = 64, C = 64;
  GridD height{R, C, 0.0};
  ElasticContactSolver::Options opt;
  ContactProblem() {
    Rng rng(9);
    for (auto& h : height) h = rng.uniform(0.0, 80.0);
    opt.max_iterations = 40;
  }
  void run() const {
    ElasticContactSolver solver(R, C, opt);
    benchmark::DoNotOptimize(solver.solve(height, 1.5));
  }
};

/// Median-of-reps timing: robust against the occasional scheduler hiccup
/// that a mean would fold into the speedup ratios (on busy or 1-core hosts
/// a single preempted rep used to flip contact_speedup_4t across 1.0).
template <typename Problem>
double time_seconds(Problem& p, int reps) {
  p.run();  // warm-up (and first-use pool construction)
  std::vector<double> samples(static_cast<std::size_t>(reps));
  for (auto& s : samples) {
    Timer t;
    p.run();
    s = t.elapsed_seconds();
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void print_scaling_summary(const std::string& json_path) {
  GemmProblem gemm;
  ContactProblem contact;
  ConvProblem conv_fwd(/*bwd=*/false);
  ConvProblem conv_fb(/*bwd=*/true);
  double gemm_s[4] = {}, contact_s[4] = {}, conv_f[4] = {}, conv_b[4] = {};
  double gemm_nt_1t = 0.0, gemm_tn_1t = 0.0;
  for (int i = 0; i < 4; ++i) {
    runtime::set_thread_count(kThreadCounts[i]);
    gemm_s[i] = time_seconds(gemm, 11);
    contact_s[i] = time_seconds(contact, 3);
    conv_f[i] = time_seconds(conv_fwd, 11);
    conv_b[i] = time_seconds(conv_fb, 11);
    if (i == 0) {
      gemm.variant = 1;
      gemm_nt_1t = time_seconds(gemm, 11);
      gemm.variant = 2;
      gemm_tn_1t = time_seconds(gemm, 11);
      gemm.variant = 0;
    }
  }
  runtime::set_thread_count(0);

  std::printf("\n=== Runtime scaling: GEMM %dx%dx%d, %zux%zu elastic "
              "contact solve, conv2d %dx%dx%dx%d k%d ===\n",
              GemmProblem::M, GemmProblem::N, GemmProblem::K,
              ContactProblem::R, ContactProblem::C, ConvProblem::N,
              ConvProblem::C, ConvProblem::H, ConvProblem::W, ConvProblem::k);
  std::printf("%-8s %13s %8s %12s %8s %12s %8s %13s %8s\n", "threads",
              "gemm GFLOP/s", "speedup", "contact ms", "speedup",
              "conv fwd ms", "speedup", "conv f+b ms", "speedup");
  for (int i = 0; i < 4; ++i)
    std::printf("%-8d %13.2f %8.2f %12.2f %8.2f %12.2f %8.2f %13.2f %8.2f\n",
                kThreadCounts[i], GemmProblem::flops() / gemm_s[i] * 1e-9,
                gemm_s[0] / gemm_s[i], contact_s[i] * 1e3,
                contact_s[0] / contact_s[i], conv_f[i] * 1e3,
                conv_f[0] / conv_f[i], conv_b[i] * 1e3,
                conv_b[0] / conv_b[i]);
  std::printf("gemm variants @1t: nn %.2f  nt %.2f  tn %.2f GFLOP/s\n",
              GemmProblem::flops() / gemm_s[0] * 1e-9,
              GemmProblem::flops() / gemm_nt_1t * 1e-9,
              GemmProblem::flops() / gemm_tn_1t * 1e-9);

  // One-line JSON for scripted consumption; --json FILE writes the same
  // object to a file (CI publishes it as BENCH_runtime.json and the
  // perf-smoke job gates on gemm_gflops_1t / gemm_speedup_4t).
  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"runtime_scaling\","
                "\"gemm_gflops_1t\":%.3f,\"gemm_speedup_2t\":%.3f,"
                "\"gemm_speedup_4t\":%.3f,\"gemm_speedup_8t\":%.3f,"
                "\"gemm_nt_gflops_1t\":%.3f,\"gemm_tn_gflops_1t\":%.3f,"
                "\"contact_ms_1t\":%.3f,\"contact_speedup_2t\":%.3f,"
                "\"contact_speedup_4t\":%.3f,\"contact_speedup_8t\":%.3f,"
                "\"conv2d_fwd_ms_1t\":%.3f,\"conv2d_fwd_speedup_4t\":%.3f,"
                "\"conv2d_fwdbwd_ms_1t\":%.3f,"
                "\"conv2d_fwdbwd_speedup_4t\":%.3f}",
                GemmProblem::flops() / gemm_s[0] * 1e-9, gemm_s[0] / gemm_s[1],
                gemm_s[0] / gemm_s[2], gemm_s[0] / gemm_s[3],
                GemmProblem::flops() / gemm_nt_1t * 1e-9,
                GemmProblem::flops() / gemm_tn_1t * 1e-9,
                contact_s[0] * 1e3, contact_s[0] / contact_s[1],
                contact_s[0] / contact_s[2], contact_s[0] / contact_s[3],
                conv_f[0] * 1e3, conv_f[0] / conv_f[2], conv_b[0] * 1e3,
                conv_b[0] / conv_b[2]);
  std::printf("\nJSON: %s\n\n", json);
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      std::exit(1);
    }
    std::fprintf(f, "%s\n", json);
    std::fclose(f);
  }
}

void BM_GemmAtThreads(benchmark::State& state) {
  runtime::set_thread_count(static_cast<int>(state.range(0)));
  GemmProblem gemm;
  for (auto _ : state) {
    gemm.run();
    benchmark::DoNotOptimize(gemm.C.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      GemmProblem::flops() * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
  runtime::set_thread_count(0);
}
BENCHMARK(BM_GemmAtThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ContactSolveAtThreads(benchmark::State& state) {
  runtime::set_thread_count(static_cast<int>(state.range(0)));
  ContactProblem contact;
  for (auto _ : state) contact.run();
  runtime::set_thread_count(0);
}
BENCHMARK(BM_ContactSolveAtThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Pre-scan for --json FILE (google-benchmark would reject the flag).
  std::string json_path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  print_scaling_summary(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
