// Demonstrates the two pressure models of the CMP simulator (Fig. 2 step 2):
// the default Greenwood-Williamson asperity model and the high-fidelity
// Polonsky-Keer elastic contact solver, on the classic flat-punch and
// single-bump cases, then compares full polish results on a design.
//
// Usage: contact_solver_demo

#include <cstdio>

#include "cmp/contact_solver.hpp"
#include "cmp/pad_model.hpp"
#include "cmp/simulator.hpp"
#include "common/timer.hpp"
#include "geom/designs.hpp"

using namespace neurfill;

int main() {
  // 1. Flat punch: the elastic solver concentrates pressure at the punch
  // edges (a contact-mechanics signature the asperity model cannot show).
  const std::size_t n = 16;
  ElasticContactSolver solver(n, n);
  GridD flat(n, n, 0.0);
  const GridD p_flat = solver.solve(flat, 1.0);
  std::printf("flat punch, elastic pressure across the mid row:\n  ");
  for (std::size_t j = 0; j < n; ++j) std::printf("%5.2f ", p_flat(n / 2, j));
  std::printf("\n  (edges > centre; solved in %d CG iterations)\n\n",
              solver.last_iterations());

  // 2. Single bump: load concentrates on the protrusion.
  GridD bump(n, n, 0.0);
  bump(n / 2, n / 2) = 500.0;
  const GridD p_bump = solver.solve(bump, 1.0);
  double total = 0.0, on_bump = p_bump(n / 2, n / 2);
  for (const double v : p_bump) total += v;
  std::printf("500A bump: carries %.1f%% of the total load\n",
              100.0 * on_bump / total);
  const GridD p_asp = asperity_pressure(bump, 600.0, 1.0);
  std::printf("asperity model on the same bump: %.1f%% (softer response)\n\n",
              100.0 * p_asp(n / 2, n / 2) /
                  (1.0 * static_cast<double>(n * n)));

  // 3. Full polish with either model on a real design.
  const Layout layout = make_design('a', 16, 100.0, 1);
  const WindowExtraction ext = extract_windows(layout);
  for (const auto mode : {PressureModel::kAsperity, PressureModel::kElastic}) {
    CmpProcessParams params;
    params.pressure_model = mode;
    CmpSimulator sim(params);
    Timer t;
    const auto heights = sim.simulate_heights(ext, {});
    double lo = heights[0][0], hi = heights[0][0];
    for (const auto& h : heights)
      for (const double v : h) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    std::printf("%-8s pressure model: post-CMP range %.1fA (%.2fs)\n",
                mode == PressureModel::kAsperity ? "asperity" : "elastic",
                hi - lo, t.elapsed_seconds());
  }
  std::printf(
      "\nboth models planarize, but pure elastic contact lets low regions\n"
      "separate completely (p = 0, polishing stops), leaving a larger final\n"
      "range; real pads keep asperity contact everywhere, which is why the\n"
      "Greenwood-Williamson model is the production default and the\n"
      "elastic solver the contact-mechanics reference.\n");
  return 0;
}
