// Pre-trains the CMP surrogate (Section IV-F of the paper) and saves the
// artifact.  This is both a runnable example of the training API and the
// producer of the cached weights the benchmarks load.
//
// Usage:
//   train_surrogate [out_prefix] [grid] [dataset] [epochs] [seed]
//                   [--threads N] [--resume]
//
// Defaults reproduce the repository's cached artifact: sources are Designs A
// and B (Design C is held out for the extension-ability experiment of
// Section V-A), 32x32 training layouts assembled by the two-step random
// procedure of Fig. 8.
//
// Training checkpoints after every epoch (<prefix>.{meta,weights,train});
// SIGINT/SIGTERM stop after the current sample with the last completed
// epoch durable on disk (exit 128+signal), and `--resume` continues from
// it.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "geom/designs.hpp"
#include "layout/window_grid.hpp"
#include "runtime/parallel.hpp"
#include "surrogate/cmp_network.hpp"
#include "surrogate/eval.hpp"
#include "surrogate/trainer.hpp"

namespace {
std::atomic<bool> g_interrupt{false};
std::atomic<int> g_signal{0};
void handle_signal(int sig) {
  g_signal.store(sig);
  g_interrupt.store(true);
}
}  // namespace

int main(int argc, char** argv) {
  using namespace neurfill;
  set_log_level(LogLevel::kInfo);

  // Split flags off; the remaining arguments are positional.
  bool resume = false;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      runtime::set_thread_count(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else {
      pos.push_back(argv[i]);
    }
  }
  const std::size_t n = pos.size();
  const std::string out = n > 0 ? pos[0] : "data/unet_cmp";
  const std::size_t grid = n > 1 ? std::strtoul(pos[1], nullptr, 10) : 32;
  const int dataset = n > 2 ? std::atoi(pos[2]) : 400;
  const int epochs = n > 3 ? std::atoi(pos[3]) : 20;
  const std::uint64_t seed = n > 4 ? std::strtoull(pos[4], nullptr, 10) : 7;

  std::printf("== NeurFill surrogate pre-training ==\n");
  std::printf("sources: designs A+B at %zux%zu windows (C held out); "
              "threads=%d\n",
              grid, grid, runtime::thread_count());

  const int windows = static_cast<int>(grid);
  const Layout design_a = make_design('a', windows, 100.0, 11);
  const Layout design_b = make_design('b', windows, 100.0, 12);
  std::vector<WindowExtraction> sources{extract_windows(design_a),
                                        extract_windows(design_b)};
  CmpSimulator simulator;  // calibrated default process
  TrainingDataGenerator datagen(std::move(sources), simulator, seed);

  SurrogateConfig config;  // UNet base 8, depth 3, group norm
  CmpSurrogate surrogate(config, seed);
  std::printf("UNet parameters: %lld\n",
              static_cast<long long>(surrogate.unet().parameter_count()));

  TrainOptions opt;
  opt.epochs = epochs;
  opt.dataset_size = dataset;
  opt.grid_rows = opt.grid_cols = grid;
  opt.learning_rate = 2e-3f;
  opt.lr_decay = 0.93f;
  opt.seed = seed;
  opt.verbose = true;
  opt.checkpoint_prefix = out;  // interruption-safe: save every epoch
  opt.resume = resume;          // continue from <out>.train when present
  opt.interrupt = &g_interrupt;
  // SIGTERM and SIGINT share one checkpoint-consistent path: stop after
  // the current sample, leave the last completed epoch durable, exit
  // 128+signal (130 for SIGINT, 143 for SIGTERM — docs/robustness.md).
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  Timer timer;
  const TrainStats stats = train_surrogate(surrogate, datagen, opt);
  if (stats.start_epoch > 0)
    std::printf("resumed after epoch %d\n", stats.start_epoch);
  std::printf("trained %d samples in %.1fs; final loss %.5f\n",
              stats.samples_seen, timer.elapsed_seconds(), stats.final_loss);

  if (stats.interrupted) {
    // The in-memory weights carry a partial epoch; the on-disk pair
    // (<out>.weights + <out>.train) is the consistent last-completed-epoch
    // state, so leave it untouched for --resume.
    std::printf("interrupted; last completed epoch is durable at %s "
                "(rerun with --resume)\n",
                out.c_str());
    const int sig = g_signal.load();
    return 128 + (sig > 0 ? sig : SIGINT);
  }

  Expected<void> saved = save_surrogate(surrogate, out);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.error().to_string().c_str());
    return 1;
  }
  std::printf("saved surrogate to %s.{meta,weights}\n", out.c_str());

  // Quick held-out accuracy summary (full Fig. 9 reproduction lives in
  // bench_fig9_accuracy).
  const AccuracyReport rep =
      evaluate_surrogate_accuracy(surrogate, datagen, 10, grid, grid);
  std::printf("held-out: mean rel err %.2f%%, max window %.2f%%, %0.1f%% of "
              "windows below %.1f%%\n",
              100.0 * rep.mean_rel_error, 100.0 * rep.max_window_rel_error,
              100.0 * rep.frac_windows_below, 100.0 * rep.below_threshold);
  return 0;
}
