// Multi-modal starting-points search (Section IV-D): reproduces the spirit
// of Fig. 6 on a layout with two fillable windows, where the quality score
// has several local optima, then shows NMMSO + MSP-SQP picking the best one.
//
// Usage: multimodal_search

#include <cstdio>
#include <memory>

#include "fill/neurfill.hpp"
#include "geom/designs.hpp"
#include "opt/nmmso.hpp"
#include "surrogate/trainer.hpp"

using namespace neurfill;

int main() {
  // A tiny layout whose extraction leaves exactly two windows with large
  // slack: the quality score over (x1, x2) is a 2-D landscape we can print.
  const Layout layout = make_design('a', 8, 100.0, /*seed=*/4);
  WindowExtraction ext = extract_windows(layout);
  CmpSimulator simulator;
  const ScoreCoefficients coeffs = make_coefficients(layout, ext, simulator);
  FillProblem problem(ext, simulator, coeffs);

  // Freeze all variables except the two with the largest slack.
  const Box full = problem.bounds();
  std::size_t v1 = 0, v2 = 1;
  for (std::size_t i = 0; i < full.hi.size(); ++i) {
    if (full.hi[i] > full.hi[v1]) {
      v2 = v1;
      v1 = i;
    } else if (i != v1 && full.hi[i] > full.hi[v2]) {
      v2 = i;
    }
  }
  std::printf("free windows: #%zu (slack %.2f) and #%zu (slack %.2f)\n", v1,
              full.hi[v1], v2, full.hi[v2]);

  const ObjectiveFn quality2d = [&](const VecD& q, VecD*) {
    VecD v(problem.num_vars(), 0.0);
    v[v1] = q[0];
    v[v2] = q[1];
    return problem.evaluate(problem.unflatten(v)).s_qual;
  };

  // Print the score topography (Fig. 6 analogue) as a coarse ASCII map.
  const int steps = 12;
  std::printf("\nquality score over (x%zu, x%zu):\n", v1, v2);
  for (int i = steps; i >= 0; --i) {
    for (int j = 0; j <= steps; ++j) {
      const VecD q{full.hi[v1] * j / steps, full.hi[v2] * i / steps};
      const double s = quality2d(q, nullptr);
      std::printf("%5.3f ", s);
    }
    std::printf("\n");
  }

  // NMMSO locates the peak regions.
  Box box2;
  box2.lo = {0.0, 0.0};
  box2.hi = {full.hi[v1], full.hi[v2]};
  NmmsoOptions nopt;
  nopt.max_evaluations = 800;
  nopt.merge_distance = 0.08;
  nopt.seed = 9;
  Nmmso nmmso(quality2d, box2, nopt);
  const std::vector<Mode> modes = nmmso.run();
  std::printf("\nNMMSO located %zu mode(s):\n", modes.size());
  for (std::size_t m = 0; m < modes.size() && m < 6; ++m)
    std::printf("  mode %zu: x=(%.3f, %.3f) quality=%.4f\n", m, modes[m].x[0],
                modes[m].x[1], modes[m].value);

  // MSP-SQP refinement from the best modes.
  const ObjectiveFn neg = [&](const VecD& q, VecD* grad) {
    const double f = -quality2d(q, nullptr);
    if (grad) *grad = numerical_gradient([&](const VecD& z, VecD*) {
      return -quality2d(z, nullptr);
    }, q, 1e-5);
    return f;
  };
  std::vector<VecD> starts;
  for (std::size_t m = 0; m < modes.size() && m < 3; ++m)
    starts.push_back(modes[m].x);
  const auto refined = msp_sqp_minimize(neg, starts, box2);
  std::printf("\nafter MSP-SQP refinement, best quality = %.4f at (%.3f, %.3f)\n",
              -refined.front().f, refined.front().x[0], refined.front().x[1]);
  return 0;
}
