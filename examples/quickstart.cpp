// Quickstart: the complete NeurFill flow on a small synthetic design.
//
//   1. Generate (or load) a layout and divide it into windows.
//   2. Build the fill problem: CMP simulator + calibrated score
//      coefficients.
//   3. Load the pre-trained CMP surrogate (or train a small one on the fly
//      if the cached artifact is missing).
//   4. Run NeurFill (PKB) and report the before/after quality.
//   5. Materialize the dummies and write the filled layout as GLF.
//
// Usage: quickstart [surrogate_prefix] [windows]

#include <cstdio>
#include <exception>
#include <memory>
#include <string>

#include "fill/neurfill.hpp"
#include "fill/report.hpp"
#include "geom/designs.hpp"
#include "geom/glf_io.hpp"
#include "surrogate/trainer.hpp"

using namespace neurfill;

namespace {

std::shared_ptr<CmpSurrogate> load_or_train(const std::string& prefix,
                                            const WindowExtraction& ext,
                                            const CmpSimulator& sim) {
  Expected<std::shared_ptr<CmpSurrogate>> loaded = load_surrogate(prefix);
  if (loaded.ok()) {
    std::printf("loaded pre-trained surrogate from %s\n", prefix.c_str());
    return std::move(*loaded);
  }
  std::printf("no usable surrogate at %s (%s); training a small one (~1 min)\n",
              prefix.c_str(), loaded.error().to_string().c_str());
  SurrogateConfig cfg;
  cfg.unet.base_channels = 8;
  cfg.unet.depth = 2;
  auto s = std::make_shared<CmpSurrogate>(cfg, 5);
  TrainingDataGenerator gen({ext}, sim, 17, 4);
  TrainOptions opt;
  opt.epochs = 8;
  opt.dataset_size = 80;
  opt.grid_rows = ext.rows;
  opt.grid_cols = ext.cols;
  train_surrogate(*s, gen, opt);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "data/unet_cmp";
  const int windows = argc > 2 ? std::atoi(argv[2]) : 16;

  // 1. A CMP-test-chip-like layout (Design A analogue).
  const Layout layout = make_design('a', windows, 100.0, /*seed=*/1);
  std::printf("design %s: %.1f x %.1f mm, %zu layers, %zu wires\n",
              layout.name.c_str(), layout.width_um / 1000.0,
              layout.height_um / 1000.0, layout.num_layers(),
              layout.total_wire_count());
  const WindowExtraction ext = extract_windows(layout);
  std::printf("windows: %zu x %zu x %zu layers\n", ext.rows, ext.cols,
              ext.num_layers());

  // 2. Problem setup: simulator + contest-style coefficients (Table II).
  CmpSimulator simulator;
  const ScoreCoefficients coeffs = make_coefficients(layout, ext, simulator);
  FillProblem problem(ext, simulator, coeffs);

  // 3. The CMP neural network (Fig. 4).
  auto surrogate = load_or_train(prefix, ext, simulator);
  CmpNetwork network(surrogate, ext, coeffs);
  calibrate_network(network, problem);  // anchor relaxed metrics (2 sims)

  // 4. NeurFill (PKB).
  const QualityBreakdown before = problem.evaluate(problem.zero_fill());
  NeurFillOptions opt;
  const FillRunResult run = neurfill_pkb(problem, network, opt);
  const QualityBreakdown after = problem.evaluate(run.x);
  std::printf("\nquality before fill: %.4f  (sigma=%.0fA^2, dH via sim)\n",
              before.s_qual, before.planarity.sigma);
  std::printf("quality after  fill: %.4f  (sigma=%.0fA^2)\n", after.s_qual,
              after.planarity.sigma);
  std::printf("runtime %.1fs, %ld network evaluations, %d SQP iterations\n",
              run.runtime_s, run.objective_evaluations, run.iterations);

  // 5. Fill insertion + output.
  Layout filled = layout;
  const std::size_t dummies = insert_dummies(filled, ext, run.x);
  write_glf_file("quickstart_filled.glf", filled);
  std::printf("inserted %zu dummies; wrote quickstart_filled.glf (%zu bytes)\n",
              dummies, glf_encoded_size(filled));
  return 0;
}
