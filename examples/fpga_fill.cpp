// Domain scenario: filling an FPGA-like design (the paper's Design B).
//
// FPGA fabrics are the classic dummy-fill stress case: dense logic tiles
// next to sparse routing channels create periodic density steps that the
// CMP pad turns into surface waves.  This example compares the rule-based
// baselines against NeurFill on such a fabric and prints a Table-III-style
// summary.
//
// Usage: fpga_fill [surrogate_prefix] [windows]

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "fill/neurfill.hpp"
#include "fill/report.hpp"
#include "geom/designs.hpp"
#include "surrogate/trainer.hpp"

using namespace neurfill;

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "data/unet_cmp";
  const int windows = argc > 2 ? std::atoi(argv[2]) : 24;

  const Layout layout = make_design('b', windows, 100.0, /*seed=*/2);
  const WindowExtraction ext = extract_windows(layout);
  CmpSimulator simulator;
  const ScoreCoefficients coeffs = make_coefficients(layout, ext, simulator);
  FillProblem problem(ext, simulator, coeffs);

  std::shared_ptr<CmpSurrogate> surrogate;
  if (Expected<std::shared_ptr<CmpSurrogate>> loaded = load_surrogate(prefix)) {
    surrogate = std::move(*loaded);
  } else {
    std::printf("cached surrogate missing; training a small one\n");
    SurrogateConfig cfg;
    cfg.unet.base_channels = 8;
    cfg.unet.depth = 2;
    surrogate = std::make_shared<CmpSurrogate>(cfg, 3);
    TrainingDataGenerator gen({ext}, simulator, 9, 4);
    TrainOptions topt;
    topt.epochs = 8;
    topt.dataset_size = 80;
    topt.grid_rows = ext.rows;
    topt.grid_cols = ext.cols;
    train_surrogate(*surrogate, gen, topt);
  }
  CmpNetwork network(surrogate, ext, coeffs);
  calibrate_network(network, problem);

  std::printf("FPGA fabric: %d x %d windows, 3 layers\n", windows, windows);
  print_coefficients(std::cout, coeffs);
  print_table3_header(std::cout);

  const FillRunResult lin = lin_rule_fill(problem);
  print_table3_row(std::cout, "B", score_fill_result(problem, layout, lin));

  TaoOptions tao_opt;
  tao_opt.sqp.max_iterations = 30;
  const FillRunResult tao = tao_rule_sqp(problem, tao_opt);
  print_table3_row(std::cout, "B", score_fill_result(problem, layout, tao));

  NeurFillOptions nf_opt;
  const FillRunResult pkb = neurfill_pkb(problem, network, nf_opt);
  print_table3_row(std::cout, "B", score_fill_result(problem, layout, pkb));

  // Where did the fill go?  Report per-layer fill density in tiles vs
  // channels (rows through the middle of the fabric).
  double tile_fill = 0.0, channel_fill = 0.0;
  std::size_t tile_n = 0, channel_n = 0;
  for (std::size_t l = 0; l < ext.num_layers(); ++l) {
    for (std::size_t k = 0; k < pkb.x[l].size(); ++k) {
      const double rho = ext.layers[l].wire_density[k];
      if (rho > 0.4) {
        tile_fill += pkb.x[l][k];
        ++tile_n;
      } else if (rho < 0.2) {
        channel_fill += pkb.x[l][k];
        ++channel_n;
      }
    }
  }
  if (tile_n && channel_n)
    std::printf("\nNeurFill placed %.3f fill density in sparse channels vs "
                "%.3f in dense tiles (expected: channels >> tiles)\n",
                channel_fill / static_cast<double>(channel_n),
                tile_fill / static_cast<double>(tile_n));
  return 0;
}
