#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fill/score_coeffs.hpp"
#include "layout/window_grid.hpp"
#include "nn/unet.hpp"
#include "surrogate/features.hpp"

namespace neurfill {

class SurrogateInference;  // surrogate/infer.hpp (tape-free fast path)

/// Configuration of the trained surrogate artifact.
struct SurrogateConfig {
  nn::UNetConfig unet;  ///< in_channels must equal FeatureConstants::kInChannels
  FeatureConstants features;
  double topo_transfer = 0.8;  ///< must match the simulator's layer chaining
  /// Sharpness (1/Angstrom) of the smooth outlier relaxation: the paper's
  /// Eq. 10c replaces the non-differentiable max(0, .) with a sigmoid; we
  /// use softplus with the same role (ablated in bench_ablation_eta).
  double outlier_eta = 0.05;

  SurrogateConfig() {
    unet.in_channels = FeatureConstants::kInChannels;
    unet.out_channels = 1;
    unet.base_channels = 8;
    unet.depth = 3;
    unet.use_group_norm = true;  // stabilizes the regression (see trainer)
  }
};

/// The trained CMP surrogate: a UNet plus its feature/normalization
/// constants.  This is what pre-training produces and what checkpoints
/// store.
class CmpSurrogate {
 public:
  CmpSurrogate(const SurrogateConfig& config, std::uint64_t seed);

  nn::UNet& unet() { return *unet_; }
  const nn::UNet& unet() const { return *unet_; }
  const SurrogateConfig& config() const { return config_; }
  SurrogateConfig& mutable_config() { return config_; }

  /// Forward pass from padded feature planes: returns per-layer height
  /// tensors in Angstrom, [1,1,pr,pc], chained through the incoming
  /// topography exactly like the simulator's layer loop.  `fills` are the
  /// padded fill tensors (may require grad).
  ///
  /// `incoming_override`, when non-empty, supplies the normalized incoming
  /// topography plane per layer instead of chaining the network's own
  /// predictions (teacher forcing during pre-training: the simulator labels
  /// provide the true lower-layer topography, so early-training noise in
  /// layer l does not corrupt the regression target of layer l+1).
  std::vector<nn::Tensor> forward_heights(
      const std::vector<StaticLayerFeatures>& layers,
      const std::vector<nn::Tensor>& fills,
      const std::vector<nn::Tensor>& incoming_override = {}) const;

  /// The normalized incoming plane layer l+1 would see given layer l's
  /// height map (A); used both internally and to build teacher-forcing
  /// planes from simulator labels.
  nn::Tensor incoming_from_height(const nn::Tensor& height_ang) const;

  /// Whether no-gradient consumers (CmpNetwork's evaluate/predict paths,
  /// surrogate accuracy eval, the tools) should run through the
  /// graph-compiled InferenceSession fast path (docs/inference.md) instead
  /// of the autograd tape.  On by default; the tools' --no-fast-inference
  /// flag clears it.  Both paths produce bitwise-identical results — this
  /// switch exists for diagnosis and benchmarking, not accuracy.
  void set_fast_inference(bool enabled) { fast_inference_ = enabled; }
  bool fast_inference_enabled() const { return fast_inference_; }

 private:
  SurrogateConfig config_;
  std::shared_ptr<nn::UNet> unet_;
  bool fast_inference_ = true;
};

/// Saves/loads the surrogate as <path>.meta (text config) + <path>.weights
/// (CRC-checksummed NFCP container, written atomically).  Failures come
/// back as structured nf::Error values naming the file and, for weight
/// corruption, the failing section and expected-vs-actual checksum — tools
/// print error.to_string() and exit 1, no stack trace.
[[nodiscard]] Expected<void> save_surrogate(const CmpSurrogate& s,
                              const std::string& path_prefix);
[[nodiscard]] Expected<std::shared_ptr<CmpSurrogate>> load_surrogate(
    const std::string& path_prefix);

/// The CMP neural network of Fig. 4, bound to one extraction and one score
/// coefficient set: extraction layer -> pre-trained UNet -> objective layers
/// (Eqs. 10a-c) -> merging layer (Eq. 5b).  evaluate() runs the forward pass
/// for S_plan and, when requested, one backward propagation for
/// grad(S_plan) (Eq. 11) — the paper's 8134x-speedup path.
class CmpNetwork {
 public:
  CmpNetwork(std::shared_ptr<const CmpSurrogate> surrogate,
             const WindowExtraction& ext, ScoreCoefficients coeffs);
  ~CmpNetwork();  // out-of-line: SurrogateInference is incomplete here

  struct Eval {
    double s_plan = 0.0;
    double sigma = 0.0;        ///< relaxed Eq. 1 value (A^2)
    double sigma_star = 0.0;   ///< relaxed Eq. 2 value (A)
    double outliers = 0.0;     ///< relaxed Eq. 3 value (A)
    std::vector<GridD> heights;  ///< predicted post-CMP heights (A)
    std::vector<GridD> grad;     ///< d S_plan / d x, filled when requested
  };

  Eval evaluate(const std::vector<GridD>& x, bool with_grad) const;

  /// Value-only evaluation of B candidate fill solutions in one call: the
  /// candidate density grids are assembled into one [B, C, H, W] stack per
  /// layer and the UNet runs a single batched session forward, then the
  /// objective terms (Eqs. 10a-c) fan back out per candidate.  Each
  /// returned Eval (gradients never filled) is byte-identical to
  /// evaluate(xs[b], false) — and therefore to the autograd path — at any
  /// thread count, so batched and serial evaluations mix freely inside one
  /// optimization.  Falls back to per-candidate evaluation when the fast
  /// path is disabled.
  std::vector<Eval> evaluate_batch(const std::vector<std::vector<GridD>>& xs) const;

  /// Predicted heights only (a cheap forward; used by quality callbacks).
  std::vector<GridD> predict_heights(const std::vector<GridD>& x) const;

  /// Log-space power correction applied to a relaxed metric before scoring:
  /// corrected = exp(a) * raw^b.  A surrogate's predicted height field
  /// carries its own error variance, which biases the *absolute* sigma /
  /// sigma* / ol values (their gradients stay informative); anchoring this
  /// map on two true simulations (see calibrate_network) matches both
  /// anchors exactly and stays positive and monotone for any b > 0.
  /// Defaults are the identity (a = 0, b = 1).
  struct MetricCalibration {
    double a = 0.0;
    double b = 1.0;
  };
  void set_calibration(const MetricCalibration& sigma,
                       const MetricCalibration& sigma_star,
                       const MetricCalibration& outliers);
  const MetricCalibration& sigma_calibration() const { return cal_sigma_; }
  const MetricCalibration& sigma_star_calibration() const {
    return cal_sigma_star_;
  }
  const MetricCalibration& outlier_calibration() const { return cal_ol_; }

  const ScoreCoefficients& coefficients() const { return coeffs_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t num_layers() const { return static_.size(); }

 private:
  nn::Tensor make_fill_tensor(const GridD& x, bool requires_grad) const;
  /// Tape-free evaluate: SurrogateInference heights + flat-plane objective
  /// arithmetic replicating the autograd metric pipeline float-op-by-
  /// float-op; bitwise equal to the autograd value (the SQP line search
  /// mixes the two paths, so "within tolerance" would not be enough).
  Eval evaluate_fast(const std::vector<GridD>& x) const;
  /// Objective terms + merge from one candidate's predicted height planes
  /// (the post-inference half of evaluate_fast); thread-safe (per-thread
  /// scratch) so evaluate_batch can score candidates concurrently.
  Eval score_height_planes(const std::vector<std::vector<float>>& heights) const;

  std::shared_ptr<const CmpSurrogate> surrogate_;
  std::vector<StaticLayerFeatures> static_;
  ScoreCoefficients coeffs_;
  std::size_t rows_ = 0, cols_ = 0;
  MetricCalibration cal_sigma_, cal_sigma_star_, cal_ol_;
  /// Compiled fast path; null when disabled.  Shared through the process-
  /// wide session cache (surrogate/infer.hpp), so tile solves over the same
  /// surrogate and plane size reuse one compiled session.
  std::shared_ptr<const SurrogateInference> fast_;
};

}  // namespace neurfill
