#include "surrogate/cmp_network.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "nn/backend/backend.hpp"
#include "nn/ops.hpp"
#include "nn/serialize.hpp"
#include "runtime/parallel.hpp"
#include "surrogate/infer.hpp"

namespace neurfill {

CmpSurrogate::CmpSurrogate(const SurrogateConfig& config, std::uint64_t seed)
    : config_(config) {
  if (config.unet.in_channels != FeatureConstants::kInChannels)
    throw std::invalid_argument(
        "CmpSurrogate: UNet in_channels must match the feature planes");
  Rng rng(seed);
  unet_ = std::make_shared<nn::UNet>(config.unet, rng);
}

nn::Tensor CmpSurrogate::incoming_from_height(
    const nn::Tensor& height_ang) const {
  // Attenuated, zero-mean copy in normalized units — the same chaining rule
  // the simulator applies between layers.
  const nn::Tensor centered = nn::sub(height_ang, nn::mean(height_ang));
  return nn::mul_scalar(
      centered,
      static_cast<float>(config_.topo_transfer / config_.features.height_scale));
}

std::vector<nn::Tensor> CmpSurrogate::forward_heights(
    const std::vector<StaticLayerFeatures>& layers,
    const std::vector<nn::Tensor>& fills,
    const std::vector<nn::Tensor>& incoming_override) const {
  using nn::Tensor;
  if (layers.empty() || layers.size() != fills.size())
    throw std::invalid_argument("forward_heights: layer/fill mismatch");
  if (!incoming_override.empty() && incoming_override.size() != layers.size())
    throw std::invalid_argument("forward_heights: incoming override mismatch");
  const int pr = layers[0].padded_rows, pc = layers[0].padded_cols;
  const std::vector<int> plane{1, 1, pr, pc};
  const auto& fc = config_.features;

  std::vector<Tensor> heights;
  heights.reserve(layers.size());
  Tensor incoming = Tensor::zeros(plane);  // normalized units
  for (std::size_t l = 0; l < layers.size(); ++l) {
    if (!incoming_override.empty()) incoming = incoming_override[l];
    const Tensor input =
        assemble_layer_input(layers[l], fc, fills[l], incoming);
    const Tensor h_norm = unet_->forward(input);
    // Hard-center the prediction: every planarity objective (Eqs. 1-3) and
    // the layer chaining are invariant to a layer's mean height, so the
    // surrogate regresses *topography* (zero-mean profiles).  This removes
    // the per-sample mean-level mode — the hardest-to-learn and least
    // useful component — from the problem entirely.
    const Tensor h_centered = nn::sub(h_norm, nn::mean(h_norm));
    // Denormalize to Angstrom (offset kept for API symmetry; zero after
    // calibration).
    const Tensor h_ang = nn::add_scalar(
        nn::mul_scalar(h_centered, static_cast<float>(fc.height_scale)),
        static_cast<float>(fc.height_offset));
    heights.push_back(h_ang);
    if (l + 1 < layers.size() && incoming_override.empty())
      incoming = incoming_from_height(h_ang);
  }
  return heights;
}

[[nodiscard]] Expected<void> save_surrogate(const CmpSurrogate& s,
                              const std::string& path_prefix) {
  const std::string meta_path = path_prefix + ".meta";
  std::ofstream meta(meta_path);
  if (!meta)
    return Error(ErrorCode::kIo, "surrogate.io",
                 "'" + meta_path + "': cannot open for writing");
  const SurrogateConfig& c = s.config();
  meta << "unet " << c.unet.in_channels << ' ' << c.unet.out_channels << ' '
       << c.unet.base_channels << ' ' << c.unet.depth << ' '
       << (c.unet.use_group_norm ? 1 : 0) << '\n';
  meta << "features " << c.features.window_um << ' '
       << c.features.dummy_edge_um << ' ' << c.features.perimeter_norm << ' '
       << c.features.width_ref_um << ' ' << c.features.height_scale << ' '
       << c.features.height_offset << '\n';
  meta << "chain " << c.topo_transfer << ' ' << c.outlier_eta << '\n';
  meta.flush();
  if (!meta)
    return Error(ErrorCode::kIo, "surrogate.io",
                 "'" + meta_path + "': write failed");
  return nn::save_parameters(s.unet(), path_prefix + ".weights");
}

[[nodiscard]] Expected<std::shared_ptr<CmpSurrogate>> load_surrogate(
    const std::string& path_prefix) {
  const std::string meta_path = path_prefix + ".meta";
  std::ifstream meta(meta_path);
  if (!meta)
    return Error(ErrorCode::kNotFound, "surrogate.io",
                 "'" + meta_path + "': no such file");
  SurrogateConfig c;
  std::string kw;
  int use_norm = 0;
  if (!(meta >> kw >> c.unet.in_channels >> c.unet.out_channels >>
        c.unet.base_channels >> c.unet.depth >> use_norm) ||
      kw != "unet")
    return Error(ErrorCode::kCorrupt, "surrogate.io",
                 "'" + meta_path + "': bad meta (unet line)");
  c.unet.use_group_norm = use_norm != 0;
  if (!(meta >> kw >> c.features.window_um >> c.features.dummy_edge_um >>
        c.features.perimeter_norm >> c.features.width_ref_um >>
        c.features.height_scale >> c.features.height_offset) ||
      kw != "features")
    return Error(ErrorCode::kCorrupt, "surrogate.io",
                 "'" + meta_path + "': bad meta (features line)");
  if (!(meta >> kw >> c.topo_transfer >> c.outlier_eta) || kw != "chain")
    return Error(ErrorCode::kCorrupt, "surrogate.io",
                 "'" + meta_path + "': bad meta (chain line)");
  if (c.unet.in_channels != FeatureConstants::kInChannels)
    return Error(ErrorCode::kCorrupt, "surrogate.io",
                 "'" + meta_path + "': unet in_channels " +
                     std::to_string(c.unet.in_channels) + " != expected " +
                     std::to_string(FeatureConstants::kInChannels));
  auto s = std::make_shared<CmpSurrogate>(c, /*seed=*/0);
  Expected<void> weights =
      nn::load_parameters(s->unet(), path_prefix + ".weights");
  if (!weights.ok()) return weights.error();
  return s;
}

CmpNetwork::CmpNetwork(std::shared_ptr<const CmpSurrogate> surrogate,
                       const WindowExtraction& ext, ScoreCoefficients coeffs)
    : surrogate_(std::move(surrogate)), coeffs_(std::move(coeffs)),
      rows_(ext.rows), cols_(ext.cols) {
  if (!surrogate_) throw std::invalid_argument("CmpNetwork: null surrogate");
  const int divisor = 1 << surrogate_->config().unet.depth;
  static_ = build_static_features(ext, surrogate_->config().features, divisor);
  // Graph-compile the UNet once for this extraction's padded plane; every
  // no-gradient evaluate()/predict_heights() then runs tape-free.  Acquired
  // through the process-wide session cache, so repeated constructions over
  // the same frozen surrogate and plane size (the fullchip tile loop) share
  // one compiled session and its pre-packed weight panels.
  if (surrogate_->fast_inference_enabled())
    fast_ = acquire_surrogate_inference(*surrogate_, static_[0].padded_rows,
                                        static_[0].padded_cols);
}

CmpNetwork::~CmpNetwork() = default;

nn::Tensor CmpNetwork::make_fill_tensor(const GridD& x,
                                        bool requires_grad) const {
  const int pr = static_[0].padded_rows, pc = static_[0].padded_cols;
  std::vector<float> data(static_cast<std::size_t>(pr) * pc, 0.0f);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      data[i * static_cast<std::size_t>(pc) + j] =
          static_cast<float>(x(i, j));
  return nn::Tensor::from_data({1, 1, pr, pc}, std::move(data), requires_grad);
}

CmpNetwork::Eval CmpNetwork::evaluate(const std::vector<GridD>& x,
                                      bool with_grad) const {
  using nn::Tensor;
  if (x.size() != static_.size())
    throw std::invalid_argument("CmpNetwork::evaluate: layer count mismatch");
  // Value-only evaluations (the SQP line search, quality probes) take the
  // tape-free fast path; its result is bitwise identical to this autograd
  // pipeline, so mixing the two inside one optimization is safe.
  if (!with_grad && fast_) return evaluate_fast(x);

  std::vector<Tensor> fills;
  fills.reserve(x.size());
  for (const GridD& g : x) fills.push_back(make_fill_tensor(g, with_grad));
  const std::vector<Tensor> heights =
      surrogate_->forward_heights(static_, fills);

  // Validity mask: metrics are computed over the un-padded N x M region.
  const int pr = static_[0].padded_rows, pc = static_[0].padded_cols;
  std::vector<float> mask_data(static_cast<std::size_t>(pr) * pc, 0.0f);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      mask_data[i * static_cast<std::size_t>(pc) + j] = 1.0f;
  const Tensor mask = Tensor::from_data({1, 1, pr, pc}, std::move(mask_data));
  const float count = static_cast<float>(rows_ * cols_);

  // Objective layers (Eqs. 10a-c), masked to the valid region.
  Tensor sigma_total = Tensor::scalar(0.0f);
  Tensor sigma_star_total = Tensor::scalar(0.0f);
  Tensor ol_total = Tensor::scalar(0.0f);
  for (const Tensor& h : heights) {
    const Tensor hm = nn::mul(h, mask);
    const Tensor mean_h = nn::mul_scalar(nn::sum(hm), 1.0f / count);
    const Tensor dev = nn::mul(nn::sub(h, mean_h), mask);
    const Tensor var = nn::mul_scalar(nn::sum(nn::square(dev)), 1.0f / count);
    sigma_total = nn::add(sigma_total, var);
    // Line deviation: per-column mean over the valid rows.
    const Tensor col_mean =
        nn::mul_scalar(nn::sum_axis(hm, 2), 1.0f / static_cast<float>(rows_));
    const Tensor col_dev = nn::mul(nn::sub(h, col_mean), mask);
    sigma_star_total = nn::add(sigma_star_total, nn::sum(nn::abs_op(col_dev)));
    // Outliers: smooth max(0, H - (mean + 3*sigma_l)).
    const Tensor sig_l = nn::sqrt_op(nn::add_scalar(var, 1e-6f));
    const Tensor threshold = nn::add(mean_h, nn::mul_scalar(sig_l, 3.0f));
    const Tensor excess = nn::sub(h, threshold);
    const Tensor smooth = nn::softplus(
        excess, static_cast<float>(surrogate_->config().outlier_eta));
    ol_total = nn::add(ol_total, nn::sum(nn::mul(smooth, mask)));
  }

  // Simulator-anchored log-space corrections (identity unless calibrated):
  // corrected = exp(a) * (raw + eps)^b, computed differentiably.
  const auto apply_cal = [](const Tensor& t, const MetricCalibration& c) {
    if (c.a == 0.0 && c.b == 1.0) return t;
    const Tensor log_t = nn::log_op(nn::add_scalar(t, 1e-6f));
    return nn::exp_op(nn::add_scalar(
        nn::mul_scalar(log_t, static_cast<float>(c.b)),
        static_cast<float>(c.a)));
  };
  sigma_total = apply_cal(sigma_total, cal_sigma_);
  sigma_star_total = apply_cal(sigma_star_total, cal_sigma_star_);
  ol_total = apply_cal(ol_total, cal_ol_);

  // Merging layer (Eq. 5b) with the Eq. 6 score function (relu = max(0,.)).
  const auto score_term = [](const Tensor& t, double alpha, double beta) {
    return nn::mul_scalar(
        nn::relu(nn::add_scalar(nn::mul_scalar(t, -1.0f / static_cast<float>(beta)),
                                1.0f)),
        static_cast<float>(alpha));
  };
  Tensor s_plan =
      nn::add(score_term(sigma_total, coeffs_.alpha_sigma, coeffs_.beta_sigma),
              nn::add(score_term(sigma_star_total, coeffs_.alpha_sigma_star,
                                 coeffs_.beta_sigma_star),
                      score_term(ol_total, coeffs_.alpha_ol, coeffs_.beta_ol)));

  Eval out;
  out.s_plan = s_plan.item();
  out.sigma = sigma_total.item();
  out.sigma_star = sigma_star_total.item();
  out.outliers = ol_total.item();
  out.heights.reserve(heights.size());
  for (const Tensor& h : heights)
    out.heights.push_back(
        crop_to_grid(h, static_cast<int>(rows_), static_cast<int>(cols_)));

  if (with_grad) {
    s_plan.backward();
    out.grad.reserve(fills.size());
    for (const Tensor& f : fills) {
      GridD g(rows_, cols_, 0.0);
      if (f.has_grad()) {
        for (std::size_t i = 0; i < rows_; ++i)
          for (std::size_t j = 0; j < cols_; ++j)
            g(i, j) = f.grad()[i * static_cast<std::size_t>(pc) + j];
      }
      out.grad.push_back(std::move(g));
    }
  }
  return out;
}

void CmpNetwork::set_calibration(const MetricCalibration& sigma,
                                 const MetricCalibration& sigma_star,
                                 const MetricCalibration& outliers) {
  cal_sigma_ = sigma;
  cal_sigma_star_ = sigma_star;
  cal_ol_ = outliers;
}

namespace {

/// Pads a fill grid into a flat padded plane (zeros outside the valid
/// region — the same layout make_fill_tensor produces).
void fill_to_plane(const GridD& x, std::size_t rows, std::size_t cols, int pc,
                   std::vector<float>& plane) {
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      plane[i * static_cast<std::size_t>(pc) + j] =
          static_cast<float>(x(i, j));
}

/// Crops a padded flat plane back to rows x cols (crop_to_grid on floats).
GridD crop_plane(const std::vector<float>& plane, std::size_t rows,
                 std::size_t cols, int pc) {
  GridD g(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      g(i, j) = plane[i * static_cast<std::size_t>(pc) + j];
  return g;
}

}  // namespace

CmpNetwork::Eval CmpNetwork::evaluate_fast(const std::vector<GridD>& x) const {
  // Flat-plane mirror of the autograd objective pipeline above.  Every
  // chained multiply-add is either a backend kernel call or split into
  // single-operation statements, so no re-association or fused
  // multiply-add can change the rounding relative to the op-by-op autograd
  // evaluation (tests/test_inference.cpp pins the bitwise equality).
  const int pr = static_[0].padded_rows, pc = static_[0].padded_cols;
  const std::size_t n = static_cast<std::size_t>(pr) * pc;

  std::vector<std::vector<float>> fills(x.size());
  std::vector<const float*> fill_ptrs;
  fill_ptrs.reserve(x.size());
  for (std::size_t l = 0; l < x.size(); ++l) {
    fills[l].assign(n, 0.0f);
    fill_to_plane(x[l], rows_, cols_, pc, fills[l]);
    fill_ptrs.push_back(fills[l].data());
  }
  std::vector<std::vector<float>> heights;
  fast_->predict_heights(static_, fill_ptrs, heights);
  return score_height_planes(heights);
}

CmpNetwork::Eval CmpNetwork::score_height_planes(
    const std::vector<std::vector<float>>& heights) const {
  const int pr = static_[0].padded_rows, pc = static_[0].padded_cols;
  const std::size_t n = static_cast<std::size_t>(pr) * pc;
  const std::int64_t n64 = static_cast<std::int64_t>(n);
  nn::Backend& be = nn::backend();

  // Per-thread scratch: evaluate_batch scores candidates concurrently, and
  // repeated calls must not allocate in steady state.  The mask is rebuilt
  // each call (cheap, and rows_/cols_ differ between network instances).
  static thread_local AlignedBuffer<float> tls_score;
  float* scratch = tls_score.ensure(3 * n + static_cast<std::size_t>(pc));
  float* mask = scratch;
  float* hm = scratch + n;
  float* work = scratch + 2 * n;
  float* col = scratch + 3 * n;
  std::memset(mask, 0, n * sizeof(float));
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      mask[i * static_cast<std::size_t>(pc) + j] = 1.0f;
  const float count = static_cast<float>(rows_ * cols_);
  const float inv_count = 1.0f / count;
  const float inv_rows = 1.0f / static_cast<float>(rows_);
  const float eta = static_cast<float>(surrogate_->config().outlier_eta);

  float sigma_total = 0.0f, sigma_star_total = 0.0f, ol_total = 0.0f;
  for (const std::vector<float>& height : heights) {
    const float* h = height.data();
    be.binary_map(nn::BinaryKind::kMul, h, mask, hm, n64);
    const float mean_h =
        static_cast<float>(be.reduce_sum(hm, n64)) * inv_count;
    // var = sum(((h - mean) * mask)^2) / count
    for (std::size_t i = 0; i < n; ++i) work[i] = h[i] - mean_h;
    be.binary_map(nn::BinaryKind::kMul, work, mask, work, n64);
    be.unary_map(nn::UnaryKind::kSquare, 0.0f, work, work, n64);
    const float var =
        static_cast<float>(be.reduce_sum(work, n64)) * inv_count;
    sigma_total = sigma_total + var;
    // Line deviation: per-column mean over the valid rows (sum_axis is a
    // serial double accumulation per column, in row order).
    for (int j = 0; j < pc; ++j) {
      double acc = 0.0;
      for (int i = 0; i < pr; ++i)
        acc += static_cast<double>(
            hm[static_cast<std::size_t>(i) * pc + static_cast<std::size_t>(j)]);
      col[static_cast<std::size_t>(j)] = static_cast<float>(acc) * inv_rows;
    }
    for (int i = 0; i < pr; ++i)
      for (int j = 0; j < pc; ++j) {
        const std::size_t k =
            static_cast<std::size_t>(i) * pc + static_cast<std::size_t>(j);
        work[k] = h[k] - col[static_cast<std::size_t>(j)];
      }
    be.binary_map(nn::BinaryKind::kMul, work, mask, work, n64);
    be.unary_map(nn::UnaryKind::kAbs, 0.0f, work, work, n64);
    sigma_star_total =
        sigma_star_total + static_cast<float>(be.reduce_sum(work, n64));
    // Outliers: smooth max(0, H - (mean + 3*sigma_l)).
    const float var_eps = var + 1e-6f;
    const float sig_l = std::sqrt(var_eps);
    const float three_sig = sig_l * 3.0f;
    const float threshold = mean_h + three_sig;
    for (std::size_t i = 0; i < n; ++i) work[i] = h[i] - threshold;
    be.unary_map(nn::UnaryKind::kSoftplus, eta, work, work, n64);
    be.binary_map(nn::BinaryKind::kMul, work, mask, work, n64);
    ol_total = ol_total + static_cast<float>(be.reduce_sum(work, n64));
  }

  const auto apply_cal = [](float t, const MetricCalibration& c) {
    if (c.a == 0.0 && c.b == 1.0) return t;
    const float shifted = t + 1e-6f;
    const float log_t = std::log(shifted);
    const float scaled = log_t * static_cast<float>(c.b);
    const float biased = scaled + static_cast<float>(c.a);
    return std::exp(biased);
  };
  sigma_total = apply_cal(sigma_total, cal_sigma_);
  sigma_star_total = apply_cal(sigma_star_total, cal_sigma_star_);
  ol_total = apply_cal(ol_total, cal_ol_);

  const auto score_term = [](float t, double alpha, double beta) {
    const float scale = -1.0f / static_cast<float>(beta);
    const float scaled = t * scale;
    const float shifted = scaled + 1.0f;
    const float clipped = shifted > 0.0f ? shifted : 0.0f;
    return clipped * static_cast<float>(alpha);
  };
  const float term_sigma =
      score_term(sigma_total, coeffs_.alpha_sigma, coeffs_.beta_sigma);
  const float term_star = score_term(sigma_star_total, coeffs_.alpha_sigma_star,
                                     coeffs_.beta_sigma_star);
  const float term_ol = score_term(ol_total, coeffs_.alpha_ol, coeffs_.beta_ol);
  const float tail = term_star + term_ol;  // add(term_star, term_ol)
  const float s_plan = term_sigma + tail;

  Eval out;
  out.s_plan = s_plan;
  out.sigma = sigma_total;
  out.sigma_star = sigma_star_total;
  out.outliers = ol_total;
  out.heights.reserve(heights.size());
  for (const std::vector<float>& height : heights)
    out.heights.push_back(crop_plane(height, rows_, cols_, pc));
  return out;
}

std::vector<CmpNetwork::Eval> CmpNetwork::evaluate_batch(
    const std::vector<std::vector<GridD>>& xs) const {
  std::vector<Eval> out(xs.size());
  if (xs.empty()) return out;
  for (const std::vector<GridD>& x : xs)
    if (x.size() != static_.size())
      throw std::invalid_argument(
          "CmpNetwork::evaluate_batch: layer count mismatch");
  if (!fast_) {
    // Fast path disabled (--no-fast-inference): same values, one candidate
    // at a time through the autograd pipeline.
    for (std::size_t b = 0; b < xs.size(); ++b) out[b] = evaluate(xs[b], false);
    return out;
  }

  const int pc = static_[0].padded_cols;
  const std::size_t n =
      static_cast<std::size_t>(static_[0].padded_rows) * pc;
  const std::size_t B = xs.size();
  const std::size_t L = static_.size();

  std::vector<std::vector<float>> planes(B * L);
  std::vector<std::vector<const float*>> fill_ptrs(B);
  for (std::size_t b = 0; b < B; ++b) {
    fill_ptrs[b].reserve(L);
    for (std::size_t l = 0; l < L; ++l) {
      std::vector<float>& plane = planes[b * L + l];
      plane.assign(n, 0.0f);
      fill_to_plane(xs[b][l], rows_, cols_, pc, plane);
      fill_ptrs[b].push_back(plane.data());
    }
  }

  // One batched session run per layer for all candidates; each candidate's
  // height planes are byte-identical to a solo predict_heights.
  std::vector<std::vector<std::vector<float>>> heights;
  fast_->predict_heights_batch(static_, fill_ptrs, heights);

  // Candidates score independently (per-thread scratch); roughly 20 ns per
  // plane element across the metric passes.
  const std::size_t grain = runtime::grain_for_cost(
      20.0 * static_cast<double>(L) * static_cast<double>(n), B);
  runtime::parallel_for(grain, B, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b)
      out[b] = score_height_planes(heights[b]);
  });
  return out;
}

std::vector<GridD> CmpNetwork::predict_heights(
    const std::vector<GridD>& x) const {
  if (fast_) {
    const int pc = static_[0].padded_cols;
    const std::size_t n = static_cast<std::size_t>(static_[0].padded_rows) * pc;
    std::vector<std::vector<float>> fills(x.size());
    std::vector<const float*> fill_ptrs;
    fill_ptrs.reserve(x.size());
    for (std::size_t l = 0; l < x.size(); ++l) {
      fills[l].assign(n, 0.0f);
      fill_to_plane(x[l], rows_, cols_, pc, fills[l]);
      fill_ptrs.push_back(fills[l].data());
    }
    std::vector<std::vector<float>> heights;
    fast_->predict_heights(static_, fill_ptrs, heights);
    std::vector<GridD> out;
    out.reserve(heights.size());
    for (const std::vector<float>& h : heights)
      out.push_back(crop_plane(h, rows_, cols_, pc));
    return out;
  }
  std::vector<nn::Tensor> fills;
  fills.reserve(x.size());
  for (const GridD& g : x) fills.push_back(make_fill_tensor(g, false));
  const auto heights = surrogate_->forward_heights(static_, fills);
  std::vector<GridD> out;
  out.reserve(heights.size());
  for (const auto& h : heights)
    out.push_back(
        crop_to_grid(h, static_cast<int>(rows_), static_cast<int>(cols_)));
  return out;
}

}  // namespace neurfill
