#pragma once

#include <cstdint>
#include <vector>

#include "cmp/simulator.hpp"
#include "common/rng.hpp"
#include "layout/window_grid.hpp"

namespace neurfill {

/// One training instance for the surrogate: an assembled layout (as window
/// parameters), a random fill, and the simulator's ground-truth heights.
struct TrainingSample {
  WindowExtraction ext;
  std::vector<GridD> fill;
  std::vector<GridD> heights;
};

/// The two-step random procedure of Fig. 8:
///  (1) windows of the available source layouts are cut into blocks and
///      randomly re-assembled into layouts of the requested size (block
///      granularity preserves short-range spatial correlation, which the
///      CMP kernel cares about);
///  (2) random dummies are inserted within each window's slack (no design
///      rule violated by construction since fill never exceeds slack).
/// Every sample is then simulated by the full-chip CMP simulator to label
/// the post-CMP height profiles.
class TrainingDataGenerator {
 public:
  TrainingDataGenerator(std::vector<WindowExtraction> sources,
                        CmpSimulator simulator, std::uint64_t seed,
                        std::size_t block = 8);

  /// Generates one rows x cols sample (all source layouts must share the
  /// layer count).
  TrainingSample generate(std::size_t rows, std::size_t cols);

  /// Generates `count` samples, running their CMP simulations in parallel
  /// across the runtime's default pool.  All randomness is drawn serially
  /// from the generator's stream before the parallel phase starts, so a
  /// batch of `count` samples is byte-identical to `count` successive
  /// generate() calls at every thread count — only wall-clock changes.
  std::vector<TrainingSample> generate_batch(std::size_t count,
                                             std::size_t rows,
                                             std::size_t cols);

  std::size_t num_sources() const { return sources_.size(); }
  const CmpSimulator& simulator() const { return sim_; }

 private:
  /// Draws one sample's layout and fill (everything but the simulated
  /// heights) from a caller-owned RNG stream.
  TrainingSample assemble(Rng& rng, std::size_t rows, std::size_t cols) const;

  std::vector<WindowExtraction> sources_;
  CmpSimulator sim_;
  Rng rng_;
  std::size_t block_;
};

}  // namespace neurfill
