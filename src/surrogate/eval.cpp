#include "surrogate/eval.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "surrogate/infer.hpp"

namespace neurfill {

namespace {

/// Predicted padded height planes for one sample, through the tape-free
/// InferenceSession when the surrogate allows it (the default) or the
/// autograd module path otherwise (--no-fast-inference diagnosis).  Both
/// produce bitwise-identical planes.
std::vector<std::vector<float>> predict_sample_heights(
    const CmpSurrogate& surrogate, SurrogateInference* fast,
    const std::vector<StaticLayerFeatures>& feats,
    const std::vector<std::vector<float>>& fill_planes) {
  std::vector<std::vector<float>> pred;
  if (fast != nullptr) {
    std::vector<const float*> fill_ptrs;
    fill_ptrs.reserve(fill_planes.size());
    for (const auto& p : fill_planes) fill_ptrs.push_back(p.data());
    fast->predict_heights(feats, fill_ptrs, pred);
    return pred;
  }
  const int pr = feats[0].padded_rows, pc = feats[0].padded_cols;
  std::vector<nn::Tensor> fills;
  fills.reserve(fill_planes.size());
  for (const auto& p : fill_planes)
    fills.push_back(nn::Tensor::from_data({1, 1, pr, pc}, p));
  const auto tensors = surrogate.forward_heights(feats, fills);
  pred.reserve(tensors.size());
  for (const auto& t : tensors)
    pred.emplace_back(t.data(), t.data() + t.numel());
  return pred;
}

}  // namespace

AccuracyReport evaluate_surrogate_accuracy(const CmpSurrogate& surrogate,
                                           TrainingDataGenerator& datagen,
                                           int num_samples,
                                           std::size_t grid_rows,
                                           std::size_t grid_cols) {
  if (num_samples <= 0)
    throw std::invalid_argument("evaluate_surrogate_accuracy: no samples");
  AccuracyReport report;
  report.samples = num_samples;

  const std::size_t L = [&] {
    const TrainingSample probe = datagen.generate(grid_rows, grid_cols);
    return probe.ext.num_layers();
  }();
  // Per-window accumulated relative error (averaged over samples & layers).
  GridD window_err(grid_rows, grid_cols, 0.0);
  double total_err = 0.0;
  std::size_t total_count = 0;

  const int divisor = 1 << surrogate.config().unet.depth;
  std::unique_ptr<SurrogateInference> fast;  // compiled on the first sample
  for (int s = 0; s < num_samples; ++s) {
    const TrainingSample sample = datagen.generate(grid_rows, grid_cols);
    const auto feats =
        build_static_features(sample.ext, surrogate.config().features, divisor);
    if (surrogate.fast_inference_enabled() && !fast)
      fast = std::make_unique<SurrogateInference>(
          surrogate, feats[0].padded_rows, feats[0].padded_cols);
    std::vector<std::vector<float>> fill_planes(sample.fill.size());
    for (std::size_t l = 0; l < sample.fill.size(); ++l) {
      const int pr = feats[l].padded_rows, pc = feats[l].padded_cols;
      fill_planes[l].assign(static_cast<std::size_t>(pr) * pc, 0.0f);
      for (std::size_t i = 0; i < grid_rows; ++i)
        for (std::size_t j = 0; j < grid_cols; ++j)
          fill_planes[l][i * static_cast<std::size_t>(pc) + j] =
              static_cast<float>(sample.fill[l](i, j));
    }
    const std::vector<std::vector<float>> pred =
        predict_sample_heights(surrogate, fast.get(), feats, fill_planes);

    // The surrogate predicts centered topography, so compare against the
    // centered simulator profile.  Reference magnitude: the simulated
    // heights' peak-to-peak range per sample, the scale that matters for
    // planarity (the paper references absolute heights; our height origin
    // is arbitrary, so the range is the scale-free equivalent).
    std::vector<GridD> centered = sample.heights;
    double lo = 1e300, hi = -1e300;
    for (auto& h : centered) {
      double mean_h = 0.0;
      for (const double v : h) mean_h += v;
      mean_h /= static_cast<double>(h.size());
      for (auto& v : h) {
        v -= mean_h;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    const double ref = std::max(hi - lo, 1e-9);

    for (std::size_t l = 0; l < L; ++l) {
      const std::size_t pc = static_cast<std::size_t>(feats[l].padded_cols);
      for (std::size_t i = 0; i < grid_rows; ++i) {
        for (std::size_t j = 0; j < grid_cols; ++j) {
          const double hp = pred[l][i * pc + j];
          const double e = std::fabs(hp - centered[l](i, j)) / ref;
          window_err(i, j) += e;
          total_err += e;
          ++total_count;
        }
      }
    }
  }

  report.mean_rel_error = total_err / static_cast<double>(total_count);
  report.below_threshold = 2.2 * report.mean_rel_error;
  const double per_window_norm = 1.0 / static_cast<double>(num_samples * L);
  std::size_t below = 0;
  for (auto& v : window_err) {
    v *= per_window_norm;
    report.max_window_rel_error = std::max(report.max_window_rel_error, v);
    if (v < report.below_threshold) ++below;
    report.histogram.add(v);
  }
  report.frac_windows_below =
      static_cast<double>(below) / static_cast<double>(window_err.size());
  return report;
}

}  // namespace neurfill
