#pragma once

#include <vector>

#include "nn/infer/session.hpp"
#include "surrogate/cmp_network.hpp"
#include "surrogate/features.hpp"

namespace neurfill {

/// Tape-free surrogate evaluation: CmpSurrogate::forward_heights without
/// the autograd tensors.  The extraction-layer arithmetic (density /
/// perimeter / width / global-mean planes) runs as backend elementwise
/// kernels over flat planes, and the UNet runs through a graph-compiled
/// nn::InferenceSession, so a forward pass allocates nothing in steady
/// state and returns heights bitwise identical to the autograd path
/// (pinned by tests/test_inference.cpp — every float operation replicates
/// the op-by-op rounding of assemble_layer_input / forward_heights).
///
/// One instance is bound to one padded plane size; CmpNetwork builds one
/// per extraction, tools build one per chip (or per tile).
class SurrogateInference {
 public:
  /// Compiles the surrogate's UNet for padded_rows x padded_cols planes
  /// (must be divisible by 2^depth).  Holds shared ownership of the
  /// parameter storage; weight updates are reflected on the next call.
  SurrogateInference(const CmpSurrogate& surrogate, int padded_rows,
                     int padded_cols);

  int padded_rows() const { return rows_; }
  int padded_cols() const { return cols_; }

  /// Per-layer post-CMP heights in Angstrom, chained through the incoming
  /// topography like the simulator's layer loop.  `fills[l]` is the padded
  /// fill plane (padded_rows x padded_cols, row-major); `heights` is
  /// resized to one plane per layer.  Equivalent to forward_heights with
  /// no incoming override.
  void predict_heights(const std::vector<StaticLayerFeatures>& layers,
                       const std::vector<const float*>& fills,
                       std::vector<std::vector<float>>& heights) const;

  /// The compiled UNet (batched NCHW entry point for tools and tests).
  const nn::InferenceSession& session() const { return session_; }

 private:
  FeatureConstants features_;
  double topo_transfer_ = 0.8;
  nn::InferenceSession session_;
  int rows_ = 0, cols_ = 0;
};

}  // namespace neurfill
