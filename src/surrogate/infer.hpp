#pragma once

#include <vector>

#include "nn/infer/session.hpp"
#include "surrogate/cmp_network.hpp"
#include "surrogate/features.hpp"

namespace neurfill {

/// Tape-free surrogate evaluation: CmpSurrogate::forward_heights without
/// the autograd tensors.  The extraction-layer arithmetic (density /
/// perimeter / width / global-mean planes) runs as backend elementwise
/// kernels over flat planes, and the UNet runs through a graph-compiled
/// nn::InferenceSession, so a forward pass allocates nothing in steady
/// state and returns heights bitwise identical to the autograd path
/// (pinned by tests/test_inference.cpp — every float operation replicates
/// the op-by-op rounding of assemble_layer_input / forward_heights).
///
/// One instance is bound to one padded plane size; CmpNetwork builds one
/// per extraction, tools build one per chip (or per tile).
class SurrogateInference {
 public:
  /// Largest candidate batch the compiled session plans its arena for up
  /// front (predict_heights_batch still accepts bigger batches; the arena
  /// then grows once).  Sized for one NMMSO move batch.
  static constexpr int kDefaultMaxBatch = 32;

  /// Compiles the surrogate's UNet for padded_rows x padded_cols planes
  /// (must be divisible by 2^depth).  Holds shared ownership of the
  /// parameter storage; weights are snapshotted at compile time (packed
  /// panels) — rebuild after weight updates.
  SurrogateInference(const CmpSurrogate& surrogate, int padded_rows,
                     int padded_cols, int max_batch = kDefaultMaxBatch);

  int padded_rows() const { return rows_; }
  int padded_cols() const { return cols_; }

  /// Per-layer post-CMP heights in Angstrom, chained through the incoming
  /// topography like the simulator's layer loop.  `fills[l]` is the padded
  /// fill plane (padded_rows x padded_cols, row-major); `heights` is
  /// resized to one plane per layer.  Equivalent to forward_heights with
  /// no incoming override.
  void predict_heights(const std::vector<StaticLayerFeatures>& layers,
                       const std::vector<const float*>& fills,
                       std::vector<std::vector<float>>& heights) const;

  /// Batched predict_heights over B candidate fill solutions that share the
  /// static layer features: `fills[b][l]` is candidate b's padded fill
  /// plane for layer l, `heights[b][l]` its height plane.  Per layer, the B
  /// candidate feature stacks are assembled into one [B, C, H, W] input and
  /// the UNet runs once at batch B; extraction and the post-processing
  /// chain run per candidate slice with the identical kernel sequence, so
  /// every candidate's heights are byte-identical to a predict_heights call
  /// on that candidate alone (pinned by tests/test_inference.cpp).  The
  /// layer loop stays serial — layer l+1's incoming topography chains from
  /// layer l — batching is across candidates within a layer.
  void predict_heights_batch(
      const std::vector<StaticLayerFeatures>& layers,
      const std::vector<std::vector<const float*>>& fills,
      std::vector<std::vector<std::vector<float>>>& heights) const;

  /// The compiled UNet (batched NCHW entry point for tools and tests).
  const nn::InferenceSession& session() const { return session_; }

 private:
  FeatureConstants features_;
  double topo_transfer_ = 0.8;
  nn::InferenceSession session_;
  int rows_ = 0, cols_ = 0;
};

/// Process-wide cache of compiled SurrogateInference sessions, keyed by the
/// surrogate's architecture + extraction constants, a hash of its parameter
/// bytes, the padded plane size, and max_batch.  Compiling a session packs
/// every constant conv weight panel, which is pure overhead to repeat when
/// the fullchip driver solves hundreds of equally-sized tiles against one
/// frozen surrogate — with the cache they all share one compiled session
/// (sessions are immutable and thread-safe, so sharing is free).  Thread-
/// safe; a weight update changes the hash and naturally misses.  Emits
/// surrogate.session_cache_hits / surrogate.session_cache_misses counters.
std::shared_ptr<const SurrogateInference> acquire_surrogate_inference(
    const CmpSurrogate& surrogate, int padded_rows, int padded_cols,
    int max_batch = SurrogateInference::kDefaultMaxBatch);

/// Number of cached sessions (tests/diagnostics).
std::size_t surrogate_inference_cache_size();

/// Drops every cached session (tests; in-flight shared_ptrs stay valid).
void clear_surrogate_inference_cache();

}  // namespace neurfill
