#include "surrogate/features.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/ops.hpp"

namespace neurfill {

std::vector<float> pad_replicate(const GridD& g, int pr, int pc) {
  const int R = static_cast<int>(g.rows()), C = static_cast<int>(g.cols());
  if (pr < R || pc < C)
    throw std::invalid_argument("pad_replicate: target smaller than source");
  std::vector<float> out(static_cast<std::size_t>(pr) * pc);
  for (int i = 0; i < pr; ++i) {
    const int si = std::min(i, R - 1);
    for (int j = 0; j < pc; ++j) {
      const int sj = std::min(j, C - 1);
      out[static_cast<std::size_t>(i) * pc + j] =
          static_cast<float>(g(static_cast<std::size_t>(si),
                               static_cast<std::size_t>(sj)));
    }
  }
  return out;
}

GridD crop_to_grid(const nn::Tensor& t, int rows, int cols) {
  if (t.ndim() != 4 || t.dim(0) != 1 || t.dim(1) != 1)
    throw std::invalid_argument("crop_to_grid: need [1,1,H,W]");
  if (t.dim(2) < rows || t.dim(3) < cols)
    throw std::invalid_argument("crop_to_grid: tensor smaller than target");
  GridD g(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  const int pc = t.dim(3);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j)
      g(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          t.data()[i * pc + j];
  return g;
}

std::vector<StaticLayerFeatures> build_static_features(
    const WindowExtraction& ext, const FeatureConstants& consts, int divisor) {
  if (divisor < 1)
    throw std::invalid_argument("build_static_features: bad divisor");
  const int R = static_cast<int>(ext.rows), C = static_cast<int>(ext.cols);
  const int pr = ((R + divisor - 1) / divisor) * divisor;
  const int pc = ((C + divisor - 1) / divisor) * divisor;

  std::vector<StaticLayerFeatures> out;
  out.reserve(ext.num_layers());
  for (const auto& layer : ext.layers) {
    StaticLayerFeatures f;
    f.rows = R;
    f.cols = C;
    f.padded_rows = pr;
    f.padded_cols = pc;
    f.wire_density = pad_replicate(layer.density(), pr, pc);

    GridD perim(layer.perimeter_um.rows(), layer.perimeter_um.cols());
    GridD wnum(perim.rows(), perim.cols());
    for (std::size_t k = 0; k < perim.size(); ++k) {
      perim[k] = layer.perimeter_um[k] / consts.perimeter_norm;
      const double w = layer.avg_width_um[k];
      const double rho = layer.wire_density[k] + layer.dummy_density[k];
      // Numerator of the width-blend: existing pattern's contribution.
      wnum[k] = rho * (w / (w + consts.width_ref_um));
    }
    f.perimeter = pad_replicate(perim, pr, pc);
    f.width_blend_num = pad_replicate(wnum, pr, pc);
    f.slack = pad_replicate(layer.slack, pr, pc);
    out.push_back(std::move(f));
  }
  return out;
}

nn::Tensor assemble_layer_input(const StaticLayerFeatures& layer,
                                const FeatureConstants& consts,
                                const nn::Tensor& fill,
                                const nn::Tensor& incoming) {
  using nn::Tensor;
  const int pr = layer.padded_rows, pc = layer.padded_cols;
  const std::vector<int> plane_shape{1, 1, pr, pc};
  if (fill.shape() != plane_shape || incoming.shape() != plane_shape)
    throw std::invalid_argument("assemble_layer_input: plane shape mismatch");

  const Tensor rho = Tensor::from_data(plane_shape, layer.wire_density);
  const Tensor perim0 = Tensor::from_data(plane_shape, layer.perimeter);
  const Tensor wnum0 = Tensor::from_data(plane_shape, layer.width_blend_num);
  const Tensor slack = Tensor::from_data(plane_shape, layer.slack);

  // DSH-model pattern update w.r.t. fill x (all differentiable):
  //   density' = rho + x
  const Tensor density = nn::add(rho, fill);
  //   perimeter' = perimeter + x * (4 * wa / edge) / norm  (square tiles of
  //   area x*wa contribute 4*sqrt(area_tile)*count = 4*x*wa/edge)
  const double wa = consts.window_um * consts.window_um;
  const float dperim = static_cast<float>(
      4.0 * wa / consts.dummy_edge_um / consts.perimeter_norm);
  const Tensor perim = nn::add(perim0, nn::mul_scalar(fill, dperim));
  //   width' = (rho*w/(w+ref) + x*e/(e+ref)) / (rho + x + eps): the mean
  //   width blends the dummies' tile width into the pattern.
  const float wdum = static_cast<float>(
      consts.dummy_edge_um / (consts.dummy_edge_um + consts.width_ref_um));
  const Tensor width =
      nn::div(nn::add(wnum0, nn::mul_scalar(fill, wdum)),
              nn::add_scalar(density, 1e-3f));

  // Global mean density, broadcast to a full plane (differentiable in x).
  const Tensor global_mean = nn::mean(density);
  const Tensor global_plane = nn::mul(Tensor::ones(plane_shape), global_mean);

  Tensor input = nn::concat_channels(density, perim);
  input = nn::concat_channels(input, width);
  input = nn::concat_channels(input, incoming);
  input = nn::concat_channels(input, slack);
  input = nn::concat_channels(input, global_plane);
  input = nn::concat_channels(input, Tensor::ones(plane_shape));
  return input;
}

}  // namespace neurfill
