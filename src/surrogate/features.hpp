#pragma once

#include <vector>

#include "common/grid2d.hpp"
#include "layout/window_grid.hpp"
#include "nn/tensor.hpp"

namespace neurfill {

/// Static (fill-independent) per-layer feature planes plus the constants of
/// the differentiable extraction layer (Fig. 4's first stage).  The CMP
/// neural network input L has kInChannels channels per layer:
///   0: total pattern density (wire + dummy + fill)        [fill-dependent]
///   1: normalized perimeter density                       [fill-dependent]
///   2: normalized mean feature width                      [fill-dependent]
///   3: incoming topography, normalized                    [chained]
///   4: fillable slack                                     [static]
///   5: global mean density, broadcast                     [fill-dependent]
///   6: nominal pressure plane (process knob)              [static]
/// Channel 5 exists because the pad's load balance couples every window to
/// the chip-mean density — a global effect a local convolutional receptive
/// field cannot otherwise see.
struct FeatureConstants {
  static constexpr int kInChannels = 7;

  double window_um = 100.0;
  double dummy_edge_um = 10.0;    ///< dummy tile edge used by insertion
  double perimeter_norm = 1.0;    ///< divides raw perimeter (um) per window
  double width_ref_um = 40.0;     ///< width channel: w / (w + width_ref)
  double height_scale = 750.0;    ///< Angstrom; normalizes heights
  double height_offset = 0.0;     ///< Angstrom; subtracted before scaling
};

/// Fill-independent planes for one layer, stored as flat row-major floats of
/// the padded network size.
struct StaticLayerFeatures {
  int rows = 0, cols = 0;          ///< original grid
  int padded_rows = 0, padded_cols = 0;
  std::vector<float> wire_density;   ///< rho (wires + pre-existing dummies)
  std::vector<float> perimeter;      ///< normalized
  std::vector<float> width_blend_num;///< rho * w/(w+ref) numerator constant
  std::vector<float> slack;
};

/// Precomputes the static planes for every layer, padded (edge-replicated)
/// to dimensions divisible by `divisor` (the UNet's 2^depth requirement).
std::vector<StaticLayerFeatures> build_static_features(
    const WindowExtraction& ext, const FeatureConstants& consts, int divisor);

/// Assembles the network input tensor [1, kInChannels, pr, pc] for one
/// layer.  `fill` is the (padded) fill-fraction tensor with gradient
/// tracking; `incoming` is the normalized incoming-topography tensor (may be
/// a constant zeros tensor for the bottom layer).  All arithmetic runs
/// through nn ops so d(input)/d(fill) flows by backward propagation — this
/// *is* the extraction layer of Fig. 4.
nn::Tensor assemble_layer_input(const StaticLayerFeatures& layer,
                                const FeatureConstants& consts,
                                const nn::Tensor& fill,
                                const nn::Tensor& incoming);

/// Pads a grid to (pr, pc) with edge replication and returns the flat data.
std::vector<float> pad_replicate(const GridD& g, int pr, int pc);

/// Crops a padded [1,1,pr,pc] tensor's data back to rows x cols.
GridD crop_to_grid(const nn::Tensor& t, int rows, int cols);

}  // namespace neurfill
