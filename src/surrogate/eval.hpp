#pragma once

#include "common/stats.hpp"
#include "surrogate/cmp_network.hpp"
#include "surrogate/datagen.hpp"

namespace neurfill {

/// Accuracy of the pre-trained surrogate against the simulator (Section V-A
/// and Fig. 9).  Relative error of a window is |H_n - H_s| / |H_s| (heights
/// are strictly positive in our unit system after the offset shift the
/// report applies: errors are measured on the absolute Angstrom profiles,
/// referenced to the mean simulated height magnitude per sample).
struct AccuracyReport {
  double mean_rel_error = 0.0;        ///< over all windows and samples
  double max_window_rel_error = 0.0;  ///< worst per-window average (Fig. 9)
  double frac_windows_below = 0.0;    ///< fraction of windows with avg error
                                      ///< below `below_threshold`
  /// Set adaptively to 2.2x the measured mean error — the scale-free analogue
  /// of the paper's "90% of windows < 1.3%" (their 1.3% = 2.2x their 0.6%
  /// mean).  The histogram provides the full distribution regardless.
  double below_threshold = 0.0;
  Histogram histogram{0.0, 0.05, 25}; ///< distribution of per-window errors
  int samples = 0;
};

/// Evaluates on freshly generated samples of the given grid size.
AccuracyReport evaluate_surrogate_accuracy(const CmpSurrogate& surrogate,
                                           TrainingDataGenerator& datagen,
                                           int num_samples,
                                           std::size_t grid_rows,
                                           std::size_t grid_cols);

}  // namespace neurfill
