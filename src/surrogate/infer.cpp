#include "surrogate/infer.hpp"

#include <cstring>
#include <stdexcept>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "nn/backend/backend.hpp"

namespace neurfill {

SurrogateInference::SurrogateInference(const CmpSurrogate& surrogate,
                                       int padded_rows, int padded_cols)
    : features_(surrogate.config().features),
      topo_transfer_(surrogate.config().topo_transfer),
      session_(surrogate.unet(), padded_rows, padded_cols),
      rows_(padded_rows),
      cols_(padded_cols) {
  if (surrogate.config().unet.in_channels != FeatureConstants::kInChannels)
    throw std::invalid_argument(
        "SurrogateInference: UNet in_channels must match the feature planes");
}

void SurrogateInference::predict_heights(
    const std::vector<StaticLayerFeatures>& layers,
    const std::vector<const float*>& fills,
    std::vector<std::vector<float>>& heights) const {
  if (layers.empty() || layers.size() != fills.size())
    throw std::invalid_argument("predict_heights: layer/fill mismatch");
  const std::size_t n =
      static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
  const std::int64_t n64 = static_cast<std::int64_t>(n);
  // mean() multiplies the blocked-double sum by a float reciprocal; keep
  // the identical two-step rounding.
  const float inv_n = 1.0f / static_cast<float>(n64);
  const auto& fc = features_;
  const float dperim = static_cast<float>(4.0 * fc.window_um * fc.window_um /
                                          fc.dummy_edge_um /
                                          fc.perimeter_norm);
  const float wdum = static_cast<float>(
      fc.dummy_edge_um / (fc.dummy_edge_um + fc.width_ref_um));
  const float height_scale = static_cast<float>(fc.height_scale);
  const float height_offset = static_cast<float>(fc.height_offset);
  const float chain_k =
      static_cast<float>(topo_transfer_ / fc.height_scale);

  // Grow-only per-thread scratch: the 7-channel input plane, the network
  // output, the chained incoming plane, and one temporary.
  static thread_local AlignedBuffer<float> tls_scratch;
  float* scratch = tls_scratch.ensure((FeatureConstants::kInChannels + 3) * n);
  float* input = scratch;
  float* h_norm = scratch + FeatureConstants::kInChannels * n;
  float* incoming = h_norm + n;
  float* tmp = incoming + n;
  std::memset(incoming, 0, n * sizeof(float));  // bottom layer sees a plane

  heights.resize(layers.size());  // re-used capacity on repeated calls
  nn::Backend& be = nn::backend();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const StaticLayerFeatures& layer = layers[l];
    NF_CHECK(layer.padded_rows == rows_ && layer.padded_cols == cols_,
             "SurrogateInference: layer %zu padded to %dx%d, session compiled "
             "for %dx%d",
             l, layer.padded_rows, layer.padded_cols, rows_, cols_);
    const float* fill = fills[l];

    // Extraction layer (assemble_layer_input), channel by channel.  Chained
    // elementwise steps go through the backend maps with materialized
    // intermediates — the same kernels, in the same order, as the autograd
    // ops, so each plane is rounded identically (no re-association or
    // fused-multiply-add differences between the two paths).
    float* density = input;
    float* perim = input + n;
    float* width = input + 2 * n;
    float* chan_incoming = input + 3 * n;
    float* chan_slack = input + 4 * n;
    float* global_plane = input + 5 * n;
    float* pressure = input + 6 * n;
    // density = rho + fill
    be.binary_map(nn::BinaryKind::kAdd, layer.wire_density.data(), fill,
                  density, n64);
    // perim = perim0 + fill * dperim
    be.unary_map(nn::UnaryKind::kMulScalar, dperim, fill, perim, n64);
    be.binary_map(nn::BinaryKind::kAdd, layer.perimeter.data(), perim, perim,
                  n64);
    // width = (wnum0 + fill * wdum) / (density + 1e-3)
    be.unary_map(nn::UnaryKind::kMulScalar, wdum, fill, width, n64);
    be.binary_map(nn::BinaryKind::kAdd, layer.width_blend_num.data(), width,
                  width, n64);
    be.unary_map(nn::UnaryKind::kAddScalar, 1e-3f, density, tmp, n64);
    be.binary_map(nn::BinaryKind::kDiv, width, tmp, width, n64);
    std::memcpy(chan_incoming, incoming, n * sizeof(float));
    std::memcpy(chan_slack, layer.slack.data(), n * sizeof(float));
    // Global mean density, broadcast (ones * mean is exactly the mean).
    const float global_mean =
        static_cast<float>(be.reduce_sum(density, n64)) * inv_n;
    for (std::size_t i = 0; i < n; ++i) global_plane[i] = global_mean;
    for (std::size_t i = 0; i < n; ++i) pressure[i] = 1.0f;

    session_.run(input, h_norm, /*batch=*/1);

    // Hard-center, denormalize to Angstrom (forward_heights' arithmetic).
    std::vector<float>& h_ang = heights[l];
    h_ang.resize(n);
    const float mean_h =
        static_cast<float>(be.reduce_sum(h_norm, n64)) * inv_n;
    for (std::size_t i = 0; i < n; ++i) h_ang[i] = h_norm[i] - mean_h;
    be.unary_map(nn::UnaryKind::kMulScalar, height_scale, h_ang.data(),
                 h_ang.data(), n64);
    be.unary_map(nn::UnaryKind::kAddScalar, height_offset, h_ang.data(),
                 h_ang.data(), n64);

    // Chain: incoming_{l+1} = (h_ang - mean(h_ang)) * topo_transfer/scale.
    if (l + 1 < layers.size()) {
      const float mean_ang =
          static_cast<float>(be.reduce_sum(h_ang.data(), n64)) * inv_n;
      for (std::size_t i = 0; i < n; ++i) incoming[i] = h_ang[i] - mean_ang;
      be.unary_map(nn::UnaryKind::kMulScalar, chain_k, incoming, incoming,
                   n64);
    }
  }
}

}  // namespace neurfill
