#include "surrogate/infer.hpp"

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "nn/backend/backend.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

namespace neurfill {

namespace {

/// Extraction-layer constants derived once per call; float-cast exactly as
/// assemble_layer_input does.
struct ExtractConsts {
  float inv_n;
  float dperim;
  float wdum;
  float height_scale;
  float height_offset;
  float chain_k;
};

ExtractConsts make_consts(const FeatureConstants& fc, double topo_transfer,
                          std::size_t n) {
  ExtractConsts c;
  // mean() multiplies the blocked-double sum by a float reciprocal; keep
  // the identical two-step rounding.
  c.inv_n = 1.0f / static_cast<float>(static_cast<std::int64_t>(n));
  c.dperim = static_cast<float>(4.0 * fc.window_um * fc.window_um /
                                fc.dummy_edge_um / fc.perimeter_norm);
  c.wdum = static_cast<float>(fc.dummy_edge_um /
                              (fc.dummy_edge_um + fc.width_ref_um));
  c.height_scale = static_cast<float>(fc.height_scale);
  c.height_offset = static_cast<float>(fc.height_offset);
  c.chain_k = static_cast<float>(topo_transfer / fc.height_scale);
  return c;
}

/// Extraction layer (assemble_layer_input) for ONE candidate layer: fills
/// the 7 feature planes of `input` from the static features, the candidate
/// fill, and the chained incoming plane.  Chained elementwise steps go
/// through the backend maps with materialized intermediates — the same
/// kernels, in the same order, as the autograd ops, so each plane is
/// rounded identically (no re-association or fused-multiply-add
/// differences between the paths).  `tmp` is one n-float scratch plane.
void assemble_input_planes(nn::Backend& be, const StaticLayerFeatures& layer,
                           const float* fill, const float* incoming,
                           float* input, float* tmp, std::size_t n,
                           const ExtractConsts& c) {
  const std::int64_t n64 = static_cast<std::int64_t>(n);
  float* density = input;
  float* perim = input + n;
  float* width = input + 2 * n;
  float* chan_incoming = input + 3 * n;
  float* chan_slack = input + 4 * n;
  float* global_plane = input + 5 * n;
  float* pressure = input + 6 * n;
  // density = rho + fill
  be.binary_map(nn::BinaryKind::kAdd, layer.wire_density.data(), fill, density,
                n64);
  // perim = perim0 + fill * dperim
  be.unary_map(nn::UnaryKind::kMulScalar, c.dperim, fill, perim, n64);
  be.binary_map(nn::BinaryKind::kAdd, layer.perimeter.data(), perim, perim,
                n64);
  // width = (wnum0 + fill * wdum) / (density + 1e-3)
  be.unary_map(nn::UnaryKind::kMulScalar, c.wdum, fill, width, n64);
  be.binary_map(nn::BinaryKind::kAdd, layer.width_blend_num.data(), width,
                width, n64);
  be.unary_map(nn::UnaryKind::kAddScalar, 1e-3f, density, tmp, n64);
  be.binary_map(nn::BinaryKind::kDiv, width, tmp, width, n64);
  std::memcpy(chan_incoming, incoming, n * sizeof(float));
  std::memcpy(chan_slack, layer.slack.data(), n * sizeof(float));
  // Global mean density, broadcast (ones * mean is exactly the mean).
  const float global_mean =
      static_cast<float>(be.reduce_sum(density, n64)) * c.inv_n;
  for (std::size_t i = 0; i < n; ++i) global_plane[i] = global_mean;
  for (std::size_t i = 0; i < n; ++i) pressure[i] = 1.0f;
}

/// Hard-center and denormalize one candidate's network output to Angstrom
/// (forward_heights' arithmetic), then — when `incoming` is non-null —
/// write the next layer's chained incoming plane:
/// incoming_{l+1} = (h_ang - mean(h_ang)) * topo_transfer/scale.
void postprocess_heights(nn::Backend& be, const float* h_norm, float* h_ang,
                         float* incoming, std::size_t n,
                         const ExtractConsts& c) {
  const std::int64_t n64 = static_cast<std::int64_t>(n);
  const float mean_h = static_cast<float>(be.reduce_sum(h_norm, n64)) * c.inv_n;
  for (std::size_t i = 0; i < n; ++i) h_ang[i] = h_norm[i] - mean_h;
  be.unary_map(nn::UnaryKind::kMulScalar, c.height_scale, h_ang, h_ang, n64);
  be.unary_map(nn::UnaryKind::kAddScalar, c.height_offset, h_ang, h_ang, n64);
  if (incoming != nullptr) {
    const float mean_ang =
        static_cast<float>(be.reduce_sum(h_ang, n64)) * c.inv_n;
    for (std::size_t i = 0; i < n; ++i) incoming[i] = h_ang[i] - mean_ang;
    be.unary_map(nn::UnaryKind::kMulScalar, c.chain_k, incoming, incoming,
                 n64);
  }
}

}  // namespace

SurrogateInference::SurrogateInference(const CmpSurrogate& surrogate,
                                       int padded_rows, int padded_cols,
                                       int max_batch)
    : features_(surrogate.config().features),
      topo_transfer_(surrogate.config().topo_transfer),
      session_(surrogate.unet(), padded_rows, padded_cols,
               nn::InferenceOptions{/*reuse_buffers=*/true, /*fuse=*/true,
                                    /*prepack_weights=*/true,
                                    /*max_batch=*/max_batch}),
      rows_(padded_rows),
      cols_(padded_cols) {
  if (surrogate.config().unet.in_channels != FeatureConstants::kInChannels)
    throw std::invalid_argument(
        "SurrogateInference: UNet in_channels must match the feature planes");
}

void SurrogateInference::predict_heights(
    const std::vector<StaticLayerFeatures>& layers,
    const std::vector<const float*>& fills,
    std::vector<std::vector<float>>& heights) const {
  if (layers.empty() || layers.size() != fills.size())
    throw std::invalid_argument("predict_heights: layer/fill mismatch");
  const std::size_t n =
      static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
  const ExtractConsts c = make_consts(features_, topo_transfer_, n);

  // Grow-only per-thread scratch: the 7-channel input plane, the network
  // output, the chained incoming plane, and one temporary.
  static thread_local AlignedBuffer<float> tls_scratch;
  float* scratch = tls_scratch.ensure((FeatureConstants::kInChannels + 3) * n);
  float* input = scratch;
  float* h_norm = scratch + FeatureConstants::kInChannels * n;
  float* incoming = h_norm + n;
  float* tmp = incoming + n;
  std::memset(incoming, 0, n * sizeof(float));  // bottom layer sees a plane

  heights.resize(layers.size());  // re-used capacity on repeated calls
  nn::Backend& be = nn::backend();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const StaticLayerFeatures& layer = layers[l];
    NF_CHECK(layer.padded_rows == rows_ && layer.padded_cols == cols_,
             "SurrogateInference: layer %zu padded to %dx%d, session compiled "
             "for %dx%d",
             l, layer.padded_rows, layer.padded_cols, rows_, cols_);
    assemble_input_planes(be, layer, fills[l], incoming, input, tmp, n, c);

    session_.run(input, h_norm, /*batch=*/1);

    std::vector<float>& h_ang = heights[l];
    h_ang.resize(n);
    postprocess_heights(be, h_norm, h_ang.data(),
                        l + 1 < layers.size() ? incoming : nullptr, n, c);
  }
}

void SurrogateInference::predict_heights_batch(
    const std::vector<StaticLayerFeatures>& layers,
    const std::vector<std::vector<const float*>>& fills,
    std::vector<std::vector<std::vector<float>>>& heights) const {
  heights.resize(fills.size());
  if (fills.empty()) return;
  if (layers.empty())
    throw std::invalid_argument("predict_heights_batch: no layers");
  for (const auto& candidate : fills)
    if (candidate.size() != layers.size())
      throw std::invalid_argument("predict_heights_batch: layer/fill mismatch");
  NF_TRACE_SPAN("surrogate.predict_batch");

  const std::size_t B = fills.size();
  const std::size_t n =
      static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
  const std::size_t in_stride = FeatureConstants::kInChannels * n;
  const ExtractConsts c = make_consts(features_, topo_transfer_, n);

  // Caller-thread scratch: [B, C, n] input stack, [B, n] network output,
  // [B, n] chained incoming planes.  The per-candidate `tmp` plane lives in
  // worker-thread scratch inside the loops below, because candidates are
  // processed concurrently.
  static thread_local AlignedBuffer<float> tls_batch_scratch;
  float* scratch =
      tls_batch_scratch.ensure(B * (in_stride + 2 * n));
  float* input_all = scratch;
  float* h_norm_all = scratch + B * in_stride;
  float* incoming_all = h_norm_all + B * n;
  std::memset(incoming_all, 0, B * n * sizeof(float));

  for (std::size_t b = 0; b < B; ++b) heights[b].resize(layers.size());

  nn::Backend& be = nn::backend();
  // Extraction costs ~10 ns per element across the seven channel passes.
  const std::size_t cand_grain =
      runtime::grain_for_cost(10.0 * static_cast<double>(n), B);
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const StaticLayerFeatures& layer = layers[l];
    NF_CHECK(layer.padded_rows == rows_ && layer.padded_cols == cols_,
             "SurrogateInference: layer %zu padded to %dx%d, session compiled "
             "for %dx%d",
             l, layer.padded_rows, layer.padded_cols, rows_, cols_);
    // Candidates are independent within a layer: extraction writes disjoint
    // [C, n] slices of the batched input, with the identical kernel
    // sequence a solo predict_heights would run on that candidate — so the
    // outer decomposition never changes any candidate's bytes.
    runtime::parallel_for(cand_grain, B, [&, l](std::size_t b0,
                                                std::size_t b1) {
      static thread_local AlignedBuffer<float> tls_tmp;
      float* tmp = tls_tmp.ensure(n);
      for (std::size_t b = b0; b < b1; ++b)
        assemble_input_planes(be, layer, fills[b][l], incoming_all + b * n,
                              input_all + b * in_stride, tmp, n, c);
    });

    // One batched UNet forward for all candidates; batch-B output is
    // byte-identical to B batch-1 runs sample for sample (session
    // contract, pinned by tests/test_inference.cpp).
    session_.run(input_all, h_norm_all, static_cast<int>(B));

    const bool chain = l + 1 < layers.size();
    runtime::parallel_for(cand_grain, B, [&, l, chain](std::size_t b0,
                                                       std::size_t b1) {
      for (std::size_t b = b0; b < b1; ++b) {
        std::vector<float>& h_ang = heights[b][l];
        h_ang.resize(n);
        postprocess_heights(be, h_norm_all + b * n, h_ang.data(),
                            chain ? incoming_all + b * n : nullptr, n, c);
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Session cache
// ---------------------------------------------------------------------------

namespace {

std::uint64_t fnv1a(const void* bytes, std::size_t len, std::uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(bytes);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t double_bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

/// Every input that shapes a compiled session, flattened to integers; the
/// lexicographic std::map order is the cache order.
std::vector<std::uint64_t> make_cache_key(const CmpSurrogate& surrogate,
                                          int padded_rows, int padded_cols,
                                          int max_batch) {
  const SurrogateConfig& cfg = surrogate.config();
  std::uint64_t wh = 1469598103934665603ull;  // FNV offset basis
  for (const nn::Tensor& p : surrogate.unet().parameters()) {
    const std::int64_t numel = p.numel();
    wh = fnv1a(&numel, sizeof(numel), wh);
    wh = fnv1a(p.data(), static_cast<std::size_t>(numel) * sizeof(float), wh);
  }
  return {
      wh,
      static_cast<std::uint64_t>(cfg.unet.in_channels),
      static_cast<std::uint64_t>(cfg.unet.out_channels),
      static_cast<std::uint64_t>(cfg.unet.base_channels),
      static_cast<std::uint64_t>(cfg.unet.depth),
      static_cast<std::uint64_t>(cfg.unet.use_group_norm ? 1 : 0),
      double_bits(cfg.features.window_um),
      double_bits(cfg.features.dummy_edge_um),
      double_bits(cfg.features.perimeter_norm),
      double_bits(cfg.features.width_ref_um),
      double_bits(cfg.features.height_scale),
      double_bits(cfg.features.height_offset),
      double_bits(cfg.topo_transfer),
      static_cast<std::uint64_t>(padded_rows),
      static_cast<std::uint64_t>(padded_cols),
      static_cast<std::uint64_t>(max_batch),
  };
}

struct SessionCache {
  std::mutex mu;
  std::map<std::vector<std::uint64_t>, std::shared_ptr<const SurrogateInference>>
      entries;
};

SessionCache& session_cache() {
  static SessionCache cache;  // never destroyed before last user in practice
  return cache;
}

}  // namespace

std::shared_ptr<const SurrogateInference> acquire_surrogate_inference(
    const CmpSurrogate& surrogate, int padded_rows, int padded_cols,
    int max_batch) {
  std::vector<std::uint64_t> key =
      make_cache_key(surrogate, padded_rows, padded_cols, max_batch);
  SessionCache& cache = session_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end()) {
      NF_COUNTER_ADD("surrogate.session_cache_hits", 1);
      return it->second;
    }
  }
  // Compile outside the lock: tile solves run concurrently and compilation
  // (weight packing, arena planning) is the expensive part.  Two threads
  // racing on a cold key both compile; the first insert wins the map and
  // the loser's session just serves its own caller — identical bytes either
  // way, since compilation is a pure function of the key.
  auto session = std::make_shared<const SurrogateInference>(
      surrogate, padded_rows, padded_cols, max_batch);
  NF_COUNTER_ADD("surrogate.session_cache_misses", 1);
  std::lock_guard<std::mutex> lock(cache.mu);
  auto [it, inserted] = cache.entries.emplace(std::move(key), std::move(session));
  return it->second;
}

std::size_t surrogate_inference_cache_size() {
  SessionCache& cache = session_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.entries.size();
}

void clear_surrogate_inference_cache() {
  SessionCache& cache = session_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.entries.clear();
}

}  // namespace neurfill
