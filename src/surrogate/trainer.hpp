#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/deadline.hpp"
#include "surrogate/cmp_network.hpp"
#include "surrogate/datagen.hpp"

namespace neurfill {

struct TrainOptions {
  int epochs = 4;
  int samples_per_epoch = 200;
  /// When positive, a fixed dataset of this many samples is generated once
  /// and epochs iterate over it in shuffled order (the paper's regime:
  /// 20 000 layouts x 20 epochs).  When zero, every sample is drawn fresh
  /// (pure online learning).
  int dataset_size = 0;
  std::size_t grid_rows = 64;  ///< training layout size (paper: 100x100)
  std::size_t grid_cols = 64;
  float learning_rate = 2e-3f;
  float lr_decay = 0.9f;      ///< learning-rate multiplier per epoch
  int grad_accumulation = 2;  ///< samples per optimizer step
  int calibration_samples = 4;  ///< used to fit the height normalization
  std::uint64_t seed = 1;
  bool verbose = false;
  /// When non-empty, the surrogate is checkpointed (save_surrogate) to this
  /// prefix after every epoch, plus a `<prefix>.train` optimizer-state
  /// checkpoint, so long trainings are interruption-safe.
  std::string checkpoint_prefix;
  /// Resume an interrupted training from `<prefix>.train` (epoch-granular;
  /// requires checkpoint_prefix and the fixed-dataset regime,
  /// dataset_size > 0, so the replayed dataset is deterministic).  A
  /// missing, corrupt, or mismatched checkpoint logs a warning and trains
  /// from scratch.
  bool resume = false;
  /// When set, training stops after the current sample once *interrupt is
  /// true (e.g. from a SIGINT handler); the last checkpoint stays valid.
  const std::atomic<bool>* interrupt = nullptr;
  /// Wall-clock budget; when it expires training stops after the current
  /// sample and stats.timed_out is set.
  Deadline deadline;
};

struct TrainStats {
  std::vector<double> epoch_loss;  ///< mean normalized MSE per epoch
  double final_loss = 0.0;
  int samples_seen = 0;
  int start_epoch = 0;       ///< first epoch actually run (>0 after resume)
  bool interrupted = false;  ///< stopped early by options.interrupt
  bool timed_out = false;    ///< stopped early by options.deadline
};

/// Pre-training of the UNet (Section IV-F, Eq. 20): minimizes the MSE
/// between the network's height prediction and the simulator's label over
/// two-step-random generated layouts.  Also calibrates the surrogate's
/// height normalization (offset/scale) from a few samples before training.
TrainStats train_surrogate(CmpSurrogate& surrogate,
                           TrainingDataGenerator& datagen,
                           const TrainOptions& options = TrainOptions());

/// Per-sample loss (normalized MSE summed over layers) without updating
/// weights; used for validation curves.
double surrogate_sample_loss(const CmpSurrogate& surrogate,
                             const TrainingSample& sample);

}  // namespace neurfill
