#include "surrogate/datagen.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

namespace neurfill {

TrainingDataGenerator::TrainingDataGenerator(
    std::vector<WindowExtraction> sources, CmpSimulator simulator,
    std::uint64_t seed, std::size_t block)
    : sources_(std::move(sources)), sim_(std::move(simulator)), rng_(seed),
      block_(block) {
  if (sources_.empty())
    throw std::invalid_argument("TrainingDataGenerator: no sources");
  if (block_ == 0) throw std::invalid_argument("TrainingDataGenerator: block=0");
  const std::size_t L = sources_[0].num_layers();
  for (const auto& s : sources_) {
    if (s.num_layers() != L)
      throw std::invalid_argument(
          "TrainingDataGenerator: sources differ in layer count");
    if (s.rows < block_ || s.cols < block_)
      throw std::invalid_argument(
          "TrainingDataGenerator: source smaller than block");
  }
}

TrainingSample TrainingDataGenerator::generate(std::size_t rows,
                                               std::size_t cols) {
  TrainingSample s = assemble(rng_, rows, cols);
  s.heights = sim_.simulate_heights(s.ext, s.fill);
  return s;
}

std::vector<TrainingSample> TrainingDataGenerator::generate_batch(
    std::size_t count, std::size_t rows, std::size_t cols) {
  NF_TRACE_SPAN("datagen.batch");
  NF_COUNTER_ADD("datagen.samples", count);
  // Serial phase: draw every sample's layout and fill from the generator's
  // single stream, in sample order.  Assembly is cheap (block copies plus
  // one uniform per cell) and consuming the stream serially makes a batch
  // of n samples byte-identical to n successive generate() calls — and
  // therefore identical at every thread count.
  std::vector<TrainingSample> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    samples.push_back(assemble(rng_, rows, cols));

  // Parallel phase: the CMP simulations labelling the samples, which is
  // where virtually all the time goes.  The simulator is copied per block
  // because simulate_heights mutates per-solve statistics.
  runtime::parallel_for(1, count, [&](std::size_t s0, std::size_t s1) {
    const CmpSimulator sim_local = sim_;
    for (std::size_t s = s0; s < s1; ++s)
      samples[s].heights = sim_local.simulate_heights(samples[s].ext,
                                                      samples[s].fill);
  });
  return samples;
}

TrainingSample TrainingDataGenerator::assemble(Rng& rng, std::size_t rows,
                                               std::size_t cols) const {
  const std::size_t L = sources_[0].num_layers();
  TrainingSample s;
  s.ext.window_um = sources_[0].window_um;
  s.ext.rows = rows;
  s.ext.cols = cols;
  s.ext.layers.resize(L);
  for (auto& layer : s.ext.layers) {
    layer.wire_density = GridD(rows, cols, 0.0);
    layer.dummy_density = GridD(rows, cols, 0.0);
    layer.perimeter_um = GridD(rows, cols, 0.0);
    layer.avg_width_um = GridD(rows, cols, 0.0);
    layer.slack = GridD(rows, cols, 0.0);
    for (auto& st : layer.slack_type) st = GridD(rows, cols, 0.0);
    layer.nonoverlap_slack = GridD(rows, cols, 1.0);
  }

  // Step 1: tile the target grid with random source blocks.  The same block
  // location is copied across all layers so inter-layer density correlation
  // survives the shuffle.
  for (std::size_t bi = 0; bi < rows; bi += block_) {
    for (std::size_t bj = 0; bj < cols; bj += block_) {
      const auto& src =
          sources_[static_cast<std::size_t>(rng.uniform_index(sources_.size()))];
      const std::size_t oi = static_cast<std::size_t>(
          rng.uniform_index(src.rows - block_ + 1));
      const std::size_t oj = static_cast<std::size_t>(
          rng.uniform_index(src.cols - block_ + 1));
      for (std::size_t l = 0; l < L; ++l) {
        const auto& sl = src.layers[l];
        auto& dl = s.ext.layers[l];
        for (std::size_t di = 0; di < block_ && bi + di < rows; ++di) {
          for (std::size_t dj = 0; dj < block_ && bj + dj < cols; ++dj) {
            const std::size_t ti = bi + di, tj = bj + dj;
            const std::size_t si = oi + di, sj = oj + dj;
            dl.wire_density(ti, tj) = sl.wire_density(si, sj);
            dl.dummy_density(ti, tj) = sl.dummy_density(si, sj);
            dl.perimeter_um(ti, tj) = sl.perimeter_um(si, sj);
            dl.avg_width_um(ti, tj) = sl.avg_width_um(si, sj);
            dl.slack(ti, tj) = sl.slack(si, sj);
            for (int t = 0; t < 4; ++t)
              dl.slack_type[static_cast<std::size_t>(t)](ti, tj) =
                  sl.slack_type[static_cast<std::size_t>(t)](si, sj);
            dl.nonoverlap_slack(ti, tj) = sl.nonoverlap_slack(si, sj);
          }
        }
      }
    }
  }

  // Step 2: random dummies.  A per-sample global level plus per-window
  // jitter covers the whole range the optimizer will explore, from empty to
  // saturated fill.
  s.fill.assign(L, GridD(rows, cols, 0.0));
  for (std::size_t l = 0; l < L; ++l) {
    const double level = rng.uniform();
    for (std::size_t k = 0; k < s.fill[l].size(); ++k) {
      const double u =
          std::clamp(level + rng.uniform(-0.3, 0.3), 0.0, 1.0);
      s.fill[l][k] = u * s.ext.layers[l].slack[k];
    }
  }

  return s;
}

}  // namespace neurfill
