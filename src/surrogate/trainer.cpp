#include "surrogate/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "obs/trace.hpp"
#include "nn/ops.hpp"
#include "nn/optim.hpp"

namespace neurfill {

namespace {

/// Builds the padded fill tensors of a sample (no gradient tracking).
std::vector<nn::Tensor> sample_fill_tensors(
    const std::vector<StaticLayerFeatures>& feats,
    const std::vector<GridD>& fill) {
  std::vector<nn::Tensor> out;
  out.reserve(fill.size());
  for (std::size_t l = 0; l < fill.size(); ++l) {
    const int pr = feats[l].padded_rows, pc = feats[l].padded_cols;
    std::vector<float> data(static_cast<std::size_t>(pr) * pc, 0.0f);
    for (std::size_t i = 0; i < fill[l].rows(); ++i)
      for (std::size_t j = 0; j < fill[l].cols(); ++j)
        data[i * static_cast<std::size_t>(pc) + j] =
            static_cast<float>(fill[l](i, j));
    out.push_back(nn::Tensor::from_data({1, 1, pr, pc}, std::move(data)));
  }
  return out;
}

/// Normalized-MSE loss tensor of one sample against simulator labels, with
/// teacher forcing: each layer's incoming topography comes from the
/// *simulator's* lower-layer height labels, so early-training noise in one
/// layer's prediction does not corrupt the next layer's regression target.
nn::Tensor sample_loss_tensor(const CmpSurrogate& surrogate,
                              const TrainingSample& sample) {
  const auto& fc = surrogate.config().features;
  const int divisor = 1 << surrogate.config().unet.depth;
  const auto feats = build_static_features(sample.ext, fc, divisor);
  const auto fills = sample_fill_tensors(feats, sample.fill);
  std::vector<nn::Tensor> incoming;
  incoming.reserve(feats.size());
  for (std::size_t l = 0; l < feats.size(); ++l) {
    const int pr = feats[l].padded_rows, pc = feats[l].padded_cols;
    if (l == 0) {
      incoming.push_back(nn::Tensor::zeros({1, 1, pr, pc}));
    } else {
      const nn::Tensor label = nn::Tensor::from_data(
          {1, 1, pr, pc}, pad_replicate(sample.heights[l - 1], pr, pc));
      incoming.push_back(surrogate.incoming_from_height(label));
    }
  }
  const auto heights = surrogate.forward_heights(feats, fills, incoming);

  const float inv_scale = 1.0f / static_cast<float>(fc.height_scale);
  nn::Tensor loss = nn::Tensor::scalar(0.0f);
  for (std::size_t l = 0; l < heights.size(); ++l) {
    const int pr = feats[l].padded_rows, pc = feats[l].padded_cols;
    // Targets: *centered* simulator heights (the surrogate regresses
    // topography; see CmpSurrogate::forward_heights), replicated into the
    // padding so the border pixels see a consistent regression target.
    double mean_h = 0.0;
    for (const double v : sample.heights[l]) mean_h += v;
    mean_h /= static_cast<double>(sample.heights[l].size());
    GridD centered = sample.heights[l];
    for (auto& v : centered) v -= mean_h;
    std::vector<float> target = pad_replicate(centered, pr, pc);
    for (auto& v : target) v *= inv_scale;
    const nn::Tensor t = nn::Tensor::from_data({1, 1, pr, pc}, std::move(target));
    const nn::Tensor pred_norm = nn::mul_scalar(heights[l], inv_scale);
    loss = nn::add(loss, nn::mse_loss(pred_norm, t));
  }
  return loss;
}

}  // namespace

double surrogate_sample_loss(const CmpSurrogate& surrogate,
                             const TrainingSample& sample) {
  return sample_loss_tensor(surrogate, sample).item();
}

TrainStats train_surrogate(CmpSurrogate& surrogate,
                           TrainingDataGenerator& datagen,
                           const TrainOptions& options) {
  NF_TRACE_SPAN("train.run");
  TrainStats stats;

  // Calibrate the height normalization from a few samples so the regression
  // target is O(1).
  {
    std::vector<double> values;
    const std::vector<TrainingSample> calib = datagen.generate_batch(
        static_cast<std::size_t>(std::max(options.calibration_samples, 0)),
        options.grid_rows, options.grid_cols);
    for (const TrainingSample& s : calib) {
      for (const auto& h : s.heights) {
        double mean_h = 0.0;
        for (const double v : h) mean_h += v;
        mean_h /= static_cast<double>(h.size());
        for (const double v : h) values.push_back(v - mean_h);
      }
    }
    const Summary sum = summarize(values);
    auto& fc = surrogate.mutable_config().features;
    fc.height_offset = 0.0;  // the surrogate predicts centered topography
    fc.height_scale = std::max(sum.stddev * 3.0, 10.0);
    LOG_INFO("surrogate calibration: offset=%.1fA scale=%.1fA", fc.height_offset,
             fc.height_scale);
  }

  // Optional fixed dataset (the paper's regime); otherwise pure online.
  // Batched so the CMP simulations labelling the samples run in parallel.
  std::vector<TrainingSample> dataset = datagen.generate_batch(
      static_cast<std::size_t>(std::max(options.dataset_size, 0)),
      options.grid_rows, options.grid_cols);
  Rng shuffle_rng(options.seed ^ 0x5EEDull);
  std::vector<std::size_t> order(dataset.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  nn::Adam opt(surrogate.unet().parameters(), options.learning_rate);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    obs::SpanTimer epoch_timer("train.epoch");
    opt.set_learning_rate(options.learning_rate *
                          std::pow(options.lr_decay, static_cast<float>(epoch)));
    if (!dataset.empty()) shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    int in_batch = 0;
    opt.zero_grad();
    const int steps = dataset.empty() ? options.samples_per_epoch
                                      : static_cast<int>(dataset.size());
    for (int i = 0; i < steps; ++i) {
      const TrainingSample sample =
          dataset.empty()
              ? datagen.generate(options.grid_rows, options.grid_cols)
              : dataset[order[static_cast<std::size_t>(i)]];
      nn::Tensor loss = [&] {
        NF_TRACE_SPAN("train.sample");
        nn::Tensor l = sample_loss_tensor(surrogate, sample);
        l.backward();
        return l;
      }();
      epoch_loss += static_cast<double>(loss.item());
      ++stats.samples_seen;
      NF_COUNTER_ADD("train.samples", 1);
      if (++in_batch >= options.grad_accumulation) {
        opt.step();
        opt.zero_grad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      opt.step();
      opt.zero_grad();
    }
    epoch_loss /= static_cast<double>(std::max(steps, 1));
    stats.epoch_loss.push_back(epoch_loss);
    NF_COUNTER_ADD("train.epochs", 1);
    NF_GAUGE_SET("train.epoch_loss", epoch_loss);
    NF_GAUGE_SET("train.epoch_time_s", epoch_timer.stop_seconds());
    if (options.verbose)
      LOG_INFO("epoch %d/%d: loss=%.5f", epoch + 1, options.epochs, epoch_loss);
    if (!options.checkpoint_prefix.empty())
      save_surrogate(surrogate, options.checkpoint_prefix);
  }
  stats.final_loss = stats.epoch_loss.empty() ? 0.0 : stats.epoch_loss.back();
  return stats;
}

}  // namespace neurfill
