#include "surrogate/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "common/checkpoint.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "nn/ops.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "obs/trace.hpp"

namespace neurfill {

namespace {

/// Builds the padded fill tensors of a sample (no gradient tracking).
std::vector<nn::Tensor> sample_fill_tensors(
    const std::vector<StaticLayerFeatures>& feats,
    const std::vector<GridD>& fill) {
  std::vector<nn::Tensor> out;
  out.reserve(fill.size());
  for (std::size_t l = 0; l < fill.size(); ++l) {
    const int pr = feats[l].padded_rows, pc = feats[l].padded_cols;
    std::vector<float> data(static_cast<std::size_t>(pr) * pc, 0.0f);
    for (std::size_t i = 0; i < fill[l].rows(); ++i)
      for (std::size_t j = 0; j < fill[l].cols(); ++j)
        data[i * static_cast<std::size_t>(pc) + j] =
            static_cast<float>(fill[l](i, j));
    out.push_back(nn::Tensor::from_data({1, 1, pr, pc}, std::move(data)));
  }
  return out;
}

/// Normalized-MSE loss tensor of one sample against simulator labels, with
/// teacher forcing: each layer's incoming topography comes from the
/// *simulator's* lower-layer height labels, so early-training noise in one
/// layer's prediction does not corrupt the next layer's regression target.
nn::Tensor sample_loss_tensor(const CmpSurrogate& surrogate,
                              const TrainingSample& sample) {
  const auto& fc = surrogate.config().features;
  const int divisor = 1 << surrogate.config().unet.depth;
  const auto feats = build_static_features(sample.ext, fc, divisor);
  const auto fills = sample_fill_tensors(feats, sample.fill);
  std::vector<nn::Tensor> incoming;
  incoming.reserve(feats.size());
  for (std::size_t l = 0; l < feats.size(); ++l) {
    const int pr = feats[l].padded_rows, pc = feats[l].padded_cols;
    if (l == 0) {
      incoming.push_back(nn::Tensor::zeros({1, 1, pr, pc}));
    } else {
      const nn::Tensor label = nn::Tensor::from_data(
          {1, 1, pr, pc}, pad_replicate(sample.heights[l - 1], pr, pc));
      incoming.push_back(surrogate.incoming_from_height(label));
    }
  }
  const auto heights = surrogate.forward_heights(feats, fills, incoming);

  const float inv_scale = 1.0f / static_cast<float>(fc.height_scale);
  nn::Tensor loss = nn::Tensor::scalar(0.0f);
  for (std::size_t l = 0; l < heights.size(); ++l) {
    const int pr = feats[l].padded_rows, pc = feats[l].padded_cols;
    // Targets: *centered* simulator heights (the surrogate regresses
    // topography; see CmpSurrogate::forward_heights), replicated into the
    // padding so the border pixels see a consistent regression target.
    double mean_h = 0.0;
    for (const double v : sample.heights[l]) mean_h += v;
    mean_h /= static_cast<double>(sample.heights[l].size());
    GridD centered = sample.heights[l];
    for (auto& v : centered) v -= mean_h;
    std::vector<float> target = pad_replicate(centered, pr, pc);
    for (auto& v : target) v *= inv_scale;
    const nn::Tensor t = nn::Tensor::from_data({1, 1, pr, pc}, std::move(target));
    const nn::Tensor pred_norm = nn::mul_scalar(heights[l], inv_scale);
    loss = nn::add(loss, nn::mse_loss(pred_norm, t));
  }
  return loss;
}

constexpr std::uint32_t kTrainStateVersion = 1;

/// Writes `<prefix>.train`: the optimizer/shuffle/progress state that,
/// together with the `<prefix>` surrogate checkpoint, lets a later run
/// resume after the last completed epoch (docs/robustness.md).  Failures
/// are logged and swallowed — a missed checkpoint must not kill training.
void save_train_state(const std::string& prefix, const TrainOptions& options,
                      const TrainStats& stats, int epochs_done,
                      const nn::Adam& opt, const Rng& shuffle_rng,
                      const std::vector<std::size_t>& order,
                      const FeatureConstants& fc) {
  CheckpointWriter w;
  ByteWriter meta;
  meta.u32(kTrainStateVersion);
  meta.u32(static_cast<std::uint32_t>(epochs_done));
  meta.i64(stats.samples_seen);
  meta.u32(static_cast<std::uint32_t>(std::max(options.dataset_size, 0)));
  meta.u64(options.seed);
  meta.f64(fc.height_offset);
  meta.f64(fc.height_scale);
  w.add_section("meta", meta.take());
  ByteWriter el;
  el.f64_vec(stats.epoch_loss);
  w.add_section("epoch_loss", el.take());
  ByteWriter ad;
  const nn::Adam::State st = opt.export_state();
  ad.i64(st.t);
  ad.u32(static_cast<std::uint32_t>(st.m.size()));
  for (const auto& m : st.m) ad.f32_vec(m);
  for (const auto& v : st.v) ad.f32_vec(v);
  w.add_section("adam", ad.take());
  ByteWriter rw;
  const Rng::State rs = shuffle_rng.state();
  for (int i = 0; i < 4; ++i) rw.u64(rs.s[i]);
  rw.u32(rs.has_cached_normal ? 1u : 0u);
  rw.f64(rs.cached_normal);
  w.add_section("rng", rw.take());
  // The epoch shuffle permutes `order` in place, so each epoch's order is
  // the composition of every shuffle before it.  The RNG state alone cannot
  // reproduce that from a fresh identity order — persist the array itself.
  ByteWriter ow;
  ow.u64(order.size());
  for (std::size_t idx : order) ow.u64(idx);
  w.add_section("order", ow.take());
  Expected<void> res = w.commit(prefix + ".train");
  if (!res.ok())
    LOG_WARN("training state checkpoint failed: %s",
             res.error().to_string().c_str());
}

/// Restores training state from `<prefix>.train` + `<prefix>.weights`.
/// Returns the epoch to start from (0 = fresh start).  Every failure mode
/// (missing file, CRC mismatch, option mismatch, layout drift) degrades to
/// a warning and a from-scratch run — resume is an optimization, never a
/// correctness gate.
int resume_train_state(const std::string& prefix, const TrainOptions& options,
                       CmpSurrogate& surrogate, nn::Adam& opt,
                       Rng& shuffle_rng, std::vector<std::size_t>& order,
                       TrainStats& stats) {
  const std::string path = prefix + ".train";
  Expected<CheckpointReader> reader = CheckpointReader::open(path);
  if (!reader.ok()) {
    if (reader.error().code == ErrorCode::kNotFound)
      LOG_INFO("no training checkpoint at '%s', starting fresh", path.c_str());
    else
      LOG_WARN("ignoring training checkpoint: %s",
               reader.error().to_string().c_str());
    return 0;
  }
  for (const char* name : {"meta", "epoch_loss", "adam", "rng", "order"}) {
    if (!reader->has_section(name)) {
      LOG_WARN("training checkpoint '%s' missing section '%s', starting fresh",
               path.c_str(), name);
      return 0;
    }
  }
  ByteReader meta(**reader->section("meta"));
  const std::uint32_t version = meta.u32();
  const int epochs_done = static_cast<int>(meta.u32());
  const std::int64_t samples_seen = meta.i64();
  const int dataset_size = static_cast<int>(meta.u32());
  const std::uint64_t seed = meta.u64();
  const double height_offset = meta.f64();
  const double height_scale = meta.f64();
  if (!meta.ok() || !meta.at_end() || version != kTrainStateVersion) {
    LOG_WARN("training checkpoint '%s' has incompatible meta, starting fresh",
             path.c_str());
    return 0;
  }
  if (dataset_size != options.dataset_size || seed != options.seed) {
    LOG_WARN(
        "training checkpoint '%s' was written with dataset_size=%d seed=%llu "
        "(current: %d/%llu), starting fresh",
        path.c_str(), dataset_size, static_cast<unsigned long long>(seed),
        options.dataset_size, static_cast<unsigned long long>(options.seed));
    return 0;
  }
  ByteReader el(**reader->section("epoch_loss"));
  std::vector<double> epoch_loss = el.f64_vec();
  ByteReader ad(**reader->section("adam"));
  nn::Adam::State st;
  st.t = ad.i64();
  const std::uint32_t n_params = ad.u32();
  st.m.resize(n_params);
  st.v.resize(n_params);
  for (auto& m : st.m) m = ad.f32_vec();
  for (auto& v : st.v) v = ad.f32_vec();
  ByteReader rw(**reader->section("rng"));
  Rng::State rs;
  for (int i = 0; i < 4; ++i) rs.s[i] = rw.u64();
  rs.has_cached_normal = rw.u32() != 0;
  rs.cached_normal = rw.f64();
  ByteReader ow(**reader->section("order"));
  const std::uint64_t order_n = ow.u64();
  std::vector<std::size_t> saved_order;
  bool order_valid = order_n == order.size();
  if (order_valid) {
    saved_order.reserve(order.size());
    for (std::uint64_t i = 0; i < order_n; ++i) {
      const std::uint64_t idx = ow.u64();
      if (idx >= order_n) order_valid = false;
      saved_order.push_back(static_cast<std::size_t>(idx));
    }
  }
  if (!el.ok() || !ad.ok() || !ad.at_end() || !rw.ok() || !rw.at_end() ||
      !ow.ok() || !ow.at_end() || !order_valid ||
      epoch_loss.size() != static_cast<std::size_t>(epochs_done)) {
    LOG_WARN("training checkpoint '%s' has malformed sections, starting fresh",
             path.c_str());
    return 0;
  }
  Expected<void> weights =
      nn::load_parameters(surrogate.unet(), prefix + ".weights");
  if (!weights.ok()) {
    LOG_WARN("cannot restore surrogate weights for resume (%s), starting fresh",
             weights.error().to_string().c_str());
    return 0;
  }
  if (!opt.restore_state(st)) {
    LOG_WARN(
        "training checkpoint '%s' optimizer state does not match the model, "
        "starting fresh",
        path.c_str());
    return 0;
  }
  shuffle_rng.set_state(rs);
  order = std::move(saved_order);
  auto& fc = surrogate.mutable_config().features;
  fc.height_offset = height_offset;
  fc.height_scale = height_scale;
  stats.epoch_loss = std::move(epoch_loss);
  stats.samples_seen = static_cast<int>(samples_seen);
  LOG_INFO("resuming training from '%s' after %d completed epoch(s)",
           path.c_str(), epochs_done);
  return epochs_done;
}

}  // namespace

double surrogate_sample_loss(const CmpSurrogate& surrogate,
                             const TrainingSample& sample) {
  return sample_loss_tensor(surrogate, sample).item();
}

TrainStats train_surrogate(CmpSurrogate& surrogate,
                           TrainingDataGenerator& datagen,
                           const TrainOptions& options) {
  NF_TRACE_SPAN("train.run");
  TrainStats stats;

  // Calibrate the height normalization from a few samples so the regression
  // target is O(1).
  {
    std::vector<double> values;
    const std::vector<TrainingSample> calib = datagen.generate_batch(
        static_cast<std::size_t>(std::max(options.calibration_samples, 0)),
        options.grid_rows, options.grid_cols);
    for (const TrainingSample& s : calib) {
      for (const auto& h : s.heights) {
        double mean_h = 0.0;
        for (const double v : h) mean_h += v;
        mean_h /= static_cast<double>(h.size());
        for (const double v : h) values.push_back(v - mean_h);
      }
    }
    const Summary sum = summarize(values);
    auto& fc = surrogate.mutable_config().features;
    fc.height_offset = 0.0;  // the surrogate predicts centered topography
    fc.height_scale = std::max(sum.stddev * 3.0, 10.0);
    LOG_INFO("surrogate calibration: offset=%.1fA scale=%.1fA", fc.height_offset,
             fc.height_scale);
  }

  // Optional fixed dataset (the paper's regime); otherwise pure online.
  // Batched so the CMP simulations labelling the samples run in parallel.
  std::vector<TrainingSample> dataset = datagen.generate_batch(
      static_cast<std::size_t>(std::max(options.dataset_size, 0)),
      options.grid_rows, options.grid_cols);
  Rng shuffle_rng(options.seed ^ 0x5EEDull);
  std::vector<std::size_t> order(dataset.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  nn::Adam opt(surrogate.unet().parameters(), options.learning_rate);

  int start_epoch = 0;
  if (options.resume) {
    if (options.checkpoint_prefix.empty()) {
      LOG_WARN("resume requested without checkpoint_prefix, starting fresh");
    } else if (options.dataset_size <= 0) {
      // Online samples are consumed from the datagen stream, so a resumed
      // run cannot replay them; only the fixed-dataset regime is resumable.
      LOG_WARN("resume is only supported with dataset_size > 0, starting fresh");
    } else {
      start_epoch = resume_train_state(options.checkpoint_prefix, options,
                                       surrogate, opt, shuffle_rng, order,
                                       stats);
    }
  }
  stats.start_epoch = start_epoch;

  bool stopped = false;
  for (int epoch = start_epoch; epoch < options.epochs && !stopped; ++epoch) {
    obs::SpanTimer epoch_timer("train.epoch");
    opt.set_learning_rate(options.learning_rate *
                          std::pow(options.lr_decay, static_cast<float>(epoch)));
    if (!dataset.empty()) shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    int in_batch = 0;
    opt.zero_grad();
    const int steps = dataset.empty() ? options.samples_per_epoch
                                      : static_cast<int>(dataset.size());
    for (int i = 0; i < steps; ++i) {
      if (options.interrupt &&
          options.interrupt->load(std::memory_order_relaxed)) {
        stats.interrupted = true;
        stopped = true;
        break;
      }
      if (options.deadline.expired()) {
        stats.timed_out = true;
        stopped = true;
        break;
      }
      const TrainingSample sample =
          dataset.empty()
              ? datagen.generate(options.grid_rows, options.grid_cols)
              : dataset[order[static_cast<std::size_t>(i)]];
      nn::Tensor loss = [&] {
        NF_TRACE_SPAN("train.sample");
        nn::Tensor l = sample_loss_tensor(surrogate, sample);
        l.backward();
        return l;
      }();
      epoch_loss += static_cast<double>(loss.item());
      ++stats.samples_seen;
      NF_COUNTER_ADD("train.samples", 1);
      if (++in_batch >= options.grad_accumulation) {
        opt.step();
        opt.zero_grad();
        in_batch = 0;
      }
    }
    // A partially run epoch is discarded: the checkpoint pair on disk still
    // describes the last *completed* epoch, which is what resume replays.
    if (stopped) break;
    if (in_batch > 0) {
      opt.step();
      opt.zero_grad();
    }
    epoch_loss /= static_cast<double>(std::max(steps, 1));
    stats.epoch_loss.push_back(epoch_loss);
    NF_COUNTER_ADD("train.epochs", 1);
    NF_GAUGE_SET("train.epoch_loss", epoch_loss);
    NF_GAUGE_SET("train.epoch_time_s", epoch_timer.stop_seconds());
    if (options.verbose)
      LOG_INFO("epoch %d/%d: loss=%.5f", epoch + 1, options.epochs, epoch_loss);
    if (!options.checkpoint_prefix.empty()) {
      Expected<void> saved = save_surrogate(surrogate, options.checkpoint_prefix);
      if (!saved.ok()) {
        LOG_WARN("surrogate checkpoint failed: %s",
                 saved.error().to_string().c_str());
      } else {
        save_train_state(options.checkpoint_prefix, options, stats, epoch + 1,
                         opt, shuffle_rng, order,
                         surrogate.config().features);
      }
    }
  }
  stats.final_loss = stats.epoch_loss.empty() ? 0.0 : stats.epoch_loss.back();
  return stats;
}

}  // namespace neurfill
