#pragma once

#include <cstddef>
#include <vector>

#include "common/grid2d.hpp"
#include "geom/layout.hpp"
#include "layout/window_grid.hpp"

namespace neurfill {

/// Design rules for DRC-aware fill insertion.
struct DrcRules {
  double min_edge_um = 4.0;    ///< minimum manufacturable dummy edge
  double max_edge_um = 28.0;   ///< maximum dummy edge (thermal/stress rule)
  double spacing_um = 2.0;     ///< required spacing dummy <-> wire / dummy
  int sites_per_axis = 5;      ///< candidate placement grid per window
};

/// Outcome accounting of a DRC-aware insertion.
struct DrcInsertStats {
  std::size_t placed = 0;          ///< dummies inserted
  std::size_t blocked_sites = 0;   ///< candidate sites rejected by geometry
  double requested_um2 = 0.0;      ///< total fill area asked for
  double realized_um2 = 0.0;       ///< total dummy area actually placed
};

/// Fill insertion with real geometry checks: each window's fill amount is
/// realized by square dummies placed on a candidate-site grid, where a site
/// is used only if the dummy (grown by the spacing halo) intersects no wire
/// and no previously placed dummy on the same layer.  Unlike the fast
/// `insert_dummies` (which relies on the extraction-time slack already
/// discounting wire area statistically), this walks the exact rectangles —
/// the "filling insertion" phase of the paper's two-phase flow.
///
/// Wires are bucketed per window once, so the cost is
/// O(windows * sites + wires).
DrcInsertStats insert_dummies_drc(Layout& layout, const WindowExtraction& ext,
                                  const std::vector<GridD>& x,
                                  const DrcRules& rules = DrcRules());

/// Verification helper: true when no dummy violates spacing against any
/// wire or other dummy of the same layer (used by tests and available to
/// users as a lightweight DRC).
bool fill_is_drc_clean(const Layout& layout, double spacing_um);

}  // namespace neurfill
