#include "layout/fill_insertion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neurfill {

namespace {

/// Buckets wire indices per window so the per-site checks only look at
/// local geometry.
std::vector<std::vector<const Rect*>> bucket_wires(const Layout& layout,
                                                   std::size_t layer,
                                                   const WindowExtraction& ext,
                                                   double halo) {
  std::vector<std::vector<const Rect*>> buckets(ext.rows * ext.cols);
  const double w = ext.window_um;
  for (const Rect& r : layout.layers[layer].wires) {
    const auto j0 = static_cast<std::size_t>(
        std::max(0.0, std::floor((r.x0 - halo) / w)));
    const auto i0 = static_cast<std::size_t>(
        std::max(0.0, std::floor((r.y0 - halo) / w)));
    const auto j1 = std::min(
        ext.cols - 1,
        static_cast<std::size_t>(std::max(0.0, std::floor((r.x1 + halo) / w))));
    const auto i1 = std::min(
        ext.rows - 1,
        static_cast<std::size_t>(std::max(0.0, std::floor((r.y1 + halo) / w))));
    for (std::size_t i = i0; i <= i1; ++i)
      for (std::size_t j = j0; j <= j1; ++j)
        buckets[i * ext.cols + j].push_back(&r);
  }
  return buckets;
}

bool clear_of(const Rect& candidate, const std::vector<const Rect*>& wires,
              const std::vector<Rect>& placed, double spacing) {
  const Rect grown(candidate.x0 - spacing, candidate.y0 - spacing,
                   candidate.x1 + spacing, candidate.y1 + spacing);
  for (const Rect* w : wires)
    if (grown.intersects(*w)) return false;
  for (const Rect& d : placed)
    if (grown.intersects(d)) return false;
  return true;
}

}  // namespace

DrcInsertStats insert_dummies_drc(Layout& layout, const WindowExtraction& ext,
                                  const std::vector<GridD>& x,
                                  const DrcRules& rules) {
  if (x.size() != ext.num_layers() || x.size() != layout.num_layers())
    throw std::invalid_argument("insert_dummies_drc: layer count mismatch");
  if (rules.sites_per_axis < 1 || rules.min_edge_um <= 0.0 ||
      rules.max_edge_um < rules.min_edge_um)
    throw std::invalid_argument("insert_dummies_drc: bad rules");

  DrcInsertStats stats;
  const double wa = ext.window_area_um2();
  const double pitch = ext.window_um / rules.sites_per_axis;

  for (std::size_t l = 0; l < ext.num_layers(); ++l) {
    if (!x[l].same_shape(ext.layers[l].slack))
      throw std::invalid_argument("insert_dummies_drc: grid shape mismatch");
    const auto buckets = bucket_wires(layout, l, ext, rules.spacing_um);
    auto& dummies = layout.layers[l].dummies;

    for (std::size_t i = 0; i < ext.rows; ++i) {
      for (std::size_t j = 0; j < ext.cols; ++j) {
        const double target = std::clamp(x[l](i, j), 0.0, 1.0) * wa;
        stats.requested_um2 += target;
        if (target < rules.min_edge_um * rules.min_edge_um) continue;

        const auto& wires = buckets[i * ext.cols + j];
        // Per-site target area; edges adapt but stay within rules.
        const int sites = rules.sites_per_axis * rules.sites_per_axis;
        double per_site = target / sites;
        double edge = std::clamp(std::sqrt(per_site), rules.min_edge_um,
                                 std::min(rules.max_edge_um,
                                          pitch - rules.spacing_um));
        std::vector<Rect> placed_here;
        double realized = 0.0;
        for (int s = 0; s < sites && realized < target; ++s) {
          const int si = s / rules.sites_per_axis;
          const int sj = s % rules.sites_per_axis;
          const double cx = static_cast<double>(j) * ext.window_um + (sj + 0.5) * pitch;
          const double cy = static_cast<double>(i) * ext.window_um + (si + 0.5) * pitch;
          const Rect cand(cx - edge / 2, cy - edge / 2, cx + edge / 2,
                          cy + edge / 2);
          if (!clear_of(cand, wires, placed_here, rules.spacing_um)) {
            ++stats.blocked_sites;
            continue;
          }
          placed_here.push_back(cand);
          realized += cand.area();
        }
        for (const Rect& d : placed_here) dummies.push_back(d);
        stats.placed += placed_here.size();
        stats.realized_um2 += realized;
      }
    }
  }
  return stats;
}

bool fill_is_drc_clean(const Layout& layout, double spacing_um) {
  for (const auto& layer : layout.layers) {
    for (std::size_t a = 0; a < layer.dummies.size(); ++a) {
      const Rect& d = layer.dummies[a];
      const Rect grown(d.x0 - spacing_um, d.y0 - spacing_um,
                       d.x1 + spacing_um, d.y1 + spacing_um);
      for (const Rect& w : layer.wires)
        if (grown.intersects(w)) return false;
      for (std::size_t b2 = a + 1; b2 < layer.dummies.size(); ++b2)
        if (grown.intersects(layer.dummies[b2])) return false;
    }
  }
  return true;
}

}  // namespace neurfill
