#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/grid2d.hpp"
#include "geom/layout.hpp"

namespace neurfill {

/// Options controlling window extraction.
struct ExtractOptions {
  double window_um = 100.0;   ///< uniform window edge (paper: 100um x 100um)
  double max_density = 0.85;  ///< foundry max metal density rule
  /// Spacing a dummy must keep from existing geometry; converts wire
  /// perimeter into lost fillable area.
  double fill_spacing_um = 2.0;
  /// Fraction of the geometrically free area that is actually fillable
  /// (accounts for min-size/min-space quantization of dummy shapes).
  double fill_utilization = 0.92;
};

/// Per-layer window parameters extracted from the layout.  All densities and
/// slacks are *fractions of the window area*, i.e. the optimization variable
/// x_{l,i,j} lives in [0, slack(i,j)] in these units; multiply by
/// window_um^2 for um^2 amounts.
struct LayerWindowData {
  GridD wire_density;   ///< design wires only
  GridD dummy_density;  ///< previously inserted dummies
  GridD perimeter_um;   ///< total wire perimeter inside the window (um)
  GridD avg_width_um;   ///< area/perimeter-based mean feature width (um)
  GridD slack;          ///< fillable fraction s_{l,i,j}

  /// Four-type fillable-region split of `slack` (Fig. 5).  Index 0..3 map to
  /// types 1..4: {below,above} = {slack,slack}, {slack,wire}, {wire,slack},
  /// {wire,wire}.  The four grids sum to `slack`.
  std::array<GridD, 4> slack_type;

  /// s*_{l,i,j}: slack fraction shared with layer l+1 (slack-over-slack
  /// region), bounding dummy-to-dummy overlay (Eq. 14).  Zero on the top
  /// layer.
  GridD nonoverlap_slack;

  GridD density() const;  ///< wire + dummy density
};

/// The result of dividing a layout into uniform windows and extracting the
/// pattern parameters the CMP model and the filling objectives consume.
struct WindowExtraction {
  double window_um = 0.0;
  std::size_t rows = 0;  ///< N (y direction)
  std::size_t cols = 0;  ///< M (x direction)
  std::vector<LayerWindowData> layers;

  std::size_t num_layers() const { return layers.size(); }
  std::size_t num_windows() const { return layers.size() * rows * cols; }
  double window_area_um2() const { return window_um * window_um; }
};

/// Divides the layout into ceil(extent / window_um) windows per axis and
/// extracts densities, perimeters, widths, slack and its four-type split.
/// Rectangles are clipped exactly against window boundaries.
WindowExtraction extract_windows(const Layout& layout,
                                 const ExtractOptions& opt = {});

/// Fill-insertion phase: materialize per-window fill amounts `x` (fraction
/// units, one grid per layer, same shape as the extraction) as dummy
/// rectangles in the layout.  Each window receives at most a 3x3 grid of
/// square tiles whose edge adapts to realize the requested area exactly
/// (down to `min_edge_um`, the minimum manufacturable dummy), keeping the
/// output file compact.  Returns the number of dummies inserted.
std::size_t insert_dummies(Layout& layout, const WindowExtraction& ext,
                           const std::vector<GridD>& x,
                           double min_edge_um = 4.0);

/// The per-window realization kernel insert_dummies is built on, exposed so
/// the fullchip streaming writer emits exactly the same dummy geometry
/// window by window without materializing a full-chip Layout.  Appends the
/// (at most 3x3) square tiles realizing fill fraction `amount_frac` of
/// window (i, j) to `out` and returns how many were appended.  Window
/// indices are in whatever grid the caller addresses — coordinates come out
/// as (j, i) * window_um plus the in-window site offsets.
std::size_t append_window_dummies(std::vector<Rect>& out, std::size_t i,
                                  std::size_t j, double window_um,
                                  double amount_frac, double min_edge_um = 4.0);

}  // namespace neurfill
