#include "layout/window_grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace neurfill {

GridD LayerWindowData::density() const {
  GridD d = wire_density;
  for (std::size_t k = 0; k < d.size(); ++k) d[k] += dummy_density[k];
  return d;
}

namespace {

/// Accumulate one rectangle set into density/perimeter grids.
void accumulate_rects(const std::vector<Rect>& rects, double window_um,
                      std::size_t rows, std::size_t cols, GridD& density,
                      GridD* perimeter) {
  const double inv_area = 1.0 / (window_um * window_um);
  for (const Rect& r : rects) {
    if (r.empty()) continue;
    const auto j0 = static_cast<std::size_t>(
        std::max(0.0, std::floor(r.x0 / window_um)));
    const auto i0 = static_cast<std::size_t>(
        std::max(0.0, std::floor(r.y0 / window_um)));
    // Closed-open rects: a rect ending exactly on a boundary does not touch
    // the next window.
    const auto j1 = std::min(
        cols - 1,
        static_cast<std::size_t>(std::max(0.0, std::ceil(r.x1 / window_um) - 1.0)));
    const auto i1 = std::min(
        rows - 1,
        static_cast<std::size_t>(std::max(0.0, std::ceil(r.y1 / window_um) - 1.0)));
    for (std::size_t i = i0; i <= i1; ++i) {
      for (std::size_t j = j0; j <= j1; ++j) {
        const double wx = static_cast<double>(j) * window_um;
        const double wy = static_cast<double>(i) * window_um;
        const Rect win(wx, wy, wx + window_um, wy + window_um);
        const Rect clip = r.intersect(win);
        if (clip.empty()) continue;
        density(i, j) += clip.area() * inv_area;
        if (perimeter) (*perimeter)(i, j) += perimeter_inside(r, win);
      }
    }
  }
}

}  // namespace

WindowExtraction extract_windows(const Layout& layout,
                                 const ExtractOptions& opt) {
  if (opt.window_um <= 0.0)
    throw std::invalid_argument("extract_windows: window_um must be positive");
  if (layout.width_um <= 0.0 || layout.height_um <= 0.0)
    throw std::invalid_argument("extract_windows: layout has no extent");

  WindowExtraction ext;
  ext.window_um = opt.window_um;
  ext.cols = static_cast<std::size_t>(std::ceil(layout.width_um / opt.window_um));
  ext.rows = static_cast<std::size_t>(std::ceil(layout.height_um / opt.window_um));
  ext.layers.resize(layout.num_layers());

  const std::size_t L = layout.num_layers();
  for (std::size_t l = 0; l < L; ++l) {
    LayerWindowData& d = ext.layers[l];
    d.wire_density = GridD(ext.rows, ext.cols, 0.0);
    d.dummy_density = GridD(ext.rows, ext.cols, 0.0);
    d.perimeter_um = GridD(ext.rows, ext.cols, 0.0);
    d.avg_width_um = GridD(ext.rows, ext.cols, 0.0);
    d.slack = GridD(ext.rows, ext.cols, 0.0);
    accumulate_rects(layout.layers[l].wires, opt.window_um, ext.rows, ext.cols,
                     d.wire_density, &d.perimeter_um);
    accumulate_rects(layout.layers[l].dummies, opt.window_um, ext.rows,
                     ext.cols, d.dummy_density, nullptr);

    const double wa = ext.window_area_um2();
    for (std::size_t k = 0; k < d.wire_density.size(); ++k) {
      // Overlapping generator rects can push clipped density slightly past
      // the physical bound; clamp to 1.
      d.wire_density[k] = std::min(d.wire_density[k], 1.0);
      d.dummy_density[k] = std::min(d.dummy_density[k], 1.0 - d.wire_density[k]);
      const double area_um2 = d.wire_density[k] * wa;
      // Mean feature width of a set of rects ~ 2*area/perimeter (exact for
      // long lines of width w: 2*w*L/(2L) = w).
      d.avg_width_um[k] =
          d.perimeter_um[k] > 1e-12 ? 2.0 * area_um2 / d.perimeter_um[k] : 0.0;
      // Fillable slack: free area derated by utilization, minus the keep-out
      // halo around existing geometry (perimeter * spacing), capped by the
      // max-density rule.
      const double rho = d.wire_density[k] + d.dummy_density[k];
      const double halo = d.perimeter_um[k] * opt.fill_spacing_um / wa;
      const double geometric = std::max(0.0, (1.0 - rho) * opt.fill_utilization - halo);
      const double rule = std::max(0.0, opt.max_density - rho);
      d.slack[k] = std::min(geometric, rule);
    }
  }

  // Four-type split (Fig. 5) and s* (Eq. 14).  Without per-shape alignment
  // information we estimate the split by assuming geometry on adjacent
  // layers is uncorrelated within a window, so the slack under/over wire
  // fractions follow the neighbour layers' densities.  Boundary layers treat
  // the missing neighbour as all-slack (no overlay possible).
  for (std::size_t l = 0; l < L; ++l) {
    LayerWindowData& d = ext.layers[l];
    for (auto& g : d.slack_type) g = GridD(ext.rows, ext.cols, 0.0);
    d.nonoverlap_slack = GridD(ext.rows, ext.cols, 0.0);
    for (std::size_t k = 0; k < d.slack.size(); ++k) {
      const double rho_up =
          (l + 1 < L) ? std::min(1.0, ext.layers[l + 1].wire_density[k] +
                                          ext.layers[l + 1].dummy_density[k])
                      : 0.0;
      const double rho_dn =
          (l > 0) ? std::min(1.0, ext.layers[l - 1].wire_density[k] +
                                      ext.layers[l - 1].dummy_density[k])
                  : 0.0;
      const double s = d.slack[k];
      d.slack_type[0][k] = s * (1.0 - rho_up) * (1.0 - rho_dn);  // type 1
      d.slack_type[1][k] = s * rho_up * (1.0 - rho_dn);          // type 2
      d.slack_type[2][k] = s * (1.0 - rho_up) * rho_dn;          // type 3
      d.slack_type[3][k] = s * rho_up * rho_dn;                  // type 4
      // Slack-over-slack region shared with layer l+1: both layers can place
      // type-1 dummies here, so their combined amount beyond s* overlays.
      d.nonoverlap_slack[k] = (l + 1 < L)
                                  ? (1.0 - rho_up) * (1.0 - rho_dn) *
                                        (1.0 - rho_up)  // heuristic shared pool
                                  : 1.0;
      if (l + 1 < L) {
        // Use the tighter, symmetric estimate: free area common to l, l+1.
        const double rho_l = std::min(
            1.0, d.wire_density[k] + d.dummy_density[k]);
        d.nonoverlap_slack[k] = std::max(0.0, (1.0 - rho_l) * (1.0 - rho_up));
      }
    }
  }
  return ext;
}

std::size_t insert_dummies(Layout& layout, const WindowExtraction& ext,
                           const std::vector<GridD>& x, double min_edge_um) {
  if (x.size() != ext.num_layers())
    throw std::invalid_argument("insert_dummies: layer count mismatch");
  if (min_edge_um <= 0.0 || min_edge_um > ext.window_um / 3.0)
    throw std::invalid_argument("insert_dummies: bad minimum dummy edge");
  std::size_t inserted = 0;
  for (std::size_t l = 0; l < ext.num_layers(); ++l) {
    if (!x[l].same_shape(ext.layers[l].slack))
      throw std::invalid_argument("insert_dummies: grid shape mismatch");
    auto& dummies = layout.layers[l].dummies;
    for (std::size_t i = 0; i < ext.rows; ++i)
      for (std::size_t j = 0; j < ext.cols; ++j)
        inserted += append_window_dummies(dummies, i, j, ext.window_um,
                                          x[l](i, j), min_edge_um);
  }
  return inserted;
}

std::size_t append_window_dummies(std::vector<Rect>& out, std::size_t i,
                                  std::size_t j, double window_um,
                                  double amount_frac, double min_edge_um) {
  const double wa = window_um * window_um;
  const double pitch = window_um / 3.0;  // 3x3 tile sites per window
  // A tile must leave some spacing inside its site.
  const double max_edge = pitch * 0.94;
  const double amount = std::clamp(amount_frac, 0.0, 1.0) * wa;
  if (amount < min_edge_um * min_edge_um) return 0;
  // Use as few tiles as possible while respecting the max edge; edge
  // then realizes the exact area.
  std::size_t count = 9;
  for (std::size_t c = 1; c <= 9; ++c) {
    const double e = std::sqrt(amount / static_cast<double>(c));
    if (e <= max_edge) {
      count = c;
      break;
    }
  }
  double edge = std::sqrt(amount / static_cast<double>(count));
  edge = std::min(edge, max_edge);  // saturated windows under-realize
  for (std::size_t t = 0; t < count; ++t) {
    const std::size_t ti = t / 3, tj = t % 3;
    const double cx = static_cast<double>(j) * window_um +
                      (static_cast<double>(tj) + 0.5) * pitch;
    const double cy = static_cast<double>(i) * window_um +
                      (static_cast<double>(ti) + 0.5) * pitch;
    out.emplace_back(cx - edge / 2, cy - edge / 2, cx + edge / 2,
                     cy + edge / 2);
  }
  return count;
}

}  // namespace neurfill
