#pragma once

namespace neurfill {

/// Density-step-height (DSH) removal-rate model [Cai, MIT PhD 2007].
///
/// Within a window the surface has "up" areas (over metal, fraction =
/// effective density rho) and "down" areas (trenches), separated by the step
/// height h.  The pad first contacts the up areas; as h shrinks it
/// progressively touches the down areas too.  The contact fraction on the
/// down area decays exponentially with h against the critical step height
/// h_c, which keeps the model smooth (and therefore learnable by the
/// surrogate):
///
///   phi(h)   = exp(-h / h_c)
///   share    = rho + (1 - rho) * phi(h)     (pressure-carrying fraction)
///   rr_up    = preston_k * p * v / share
///   rr_down  = phi(h) * rr_up
///
/// Mass balance: rho*rr_up + (1-rho)*rr_down = preston_k*p*v * (rho +
/// (1-rho)phi)/share = blanket rate, so total removal always matches the
/// Preston equation [Cook 1990].
struct DshRates {
  double up = 0.0;    ///< removal rate of the up (metal) surface
  double down = 0.0;  ///< removal rate of the down (trench) surface
};

struct DshParams {
  double critical_step = 400.0;  ///< h_c, Angstrom
  double preston_k = 1.0;        ///< Preston coefficient (A per unit p*v*t)
  double velocity = 1.0;         ///< pad/wafer relative velocity
};

/// rho is the *effective* (character-length smoothed) density in (0, 1];
/// h >= 0 is the local step height; p the window pressure.
DshRates dsh_removal_rates(double rho, double h, double p,
                           const DshParams& params);

}  // namespace neurfill
