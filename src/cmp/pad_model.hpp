#pragma once

#include "common/grid2d.hpp"

namespace neurfill {

/// Builds a normalized (sums to 1) Gaussian smoothing kernel whose standard
/// deviation equals the CMP character length.  The rough polishing pad
/// averages pattern effects over 20-100 um [Feng 2009]; with 100 um windows
/// the kernel spans a handful of windows.
GridD make_character_kernel(double char_length_um, double window_um);

/// Greenwood-Williamson style asperity contact: the pad's asperity summit
/// heights follow an exponential distribution with scale `lambda`, so the
/// local contact pressure depends exponentially on how far the (pad-bending
/// smoothed) surface protrudes:
///
///   p_i = c * exp((z_i - z_max) / lambda),   mean(p) = nominal_pressure.
///
/// Higher regions carry exponentially more pressure, which is the
/// planarization driver of CMP.
///
/// `smoothed_height` must already include pad bending (character-length
/// smoothing).  Heights in Angstrom, pressure in arbitrary consistent units.
GridD asperity_pressure(const GridD& smoothed_height, double lambda,
                        double nominal_pressure);

}  // namespace neurfill
