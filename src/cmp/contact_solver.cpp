#include "cmp/contact_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

namespace neurfill {

namespace {
/// Measured cost of one cell update in the Polonsky-Keer loops (predicated
/// load + multiply-add over doubles), from bench_runtime_scaling traces.
/// Feeds runtime::grain_for_cost, so the per-block work is ~25 us and whole
/// loops under ~50 us run as one inline block; the derived grain is a pure
/// function of the grid shape (never the thread count), so the blocked
/// reductions below combine in the same order at every thread count — the
/// solver's pressure field is bitwise identical serial vs. parallel.
constexpr double kCellCostNs = 3.0;

/// Grids at or below this many cells run the *entire* solve inside a
/// runtime SerialRegion.  Profiling with --trace showed a 64x64 solve
/// spending ~97% of its time in 128x128 FFT passes chopped into ~16-block
/// jobs of a few hundred microseconds: at 4-8 threads the fork/join
/// handshakes cost more than the parallel FFT saves, and on an
/// oversubscribed host they made 4t *slower* than 1t (0.96x in the old
/// BENCH_runtime.json baseline).  Because the parallel primitives are
/// bitwise-deterministic, forcing serial execution changes scheduling only,
/// never results.
constexpr std::size_t kSerialSolveCells = 64 * 64;

/// Deterministic blocked sum over f(k) for k in [0, n).
template <typename F>
double blocked_sum(std::size_t grain, std::size_t n, F&& f) {
  return runtime::parallel_reduce(
      grain, n, 0.0,
      [&](std::size_t k0, std::size_t k1) {
        double s = 0.0;
        for (std::size_t k = k0; k < k1; ++k) s += f(k);
        return s;
      },
      [](double a, double b) { return a + b; });
}
}  // namespace

GridD ElasticContactSolver::make_green_kernel(std::size_t rows,
                                              std::size_t cols,
                                              const Options& opt) {
  // Deflection influence of a unit uniform pressure patch (window) on the
  // centre of another window, Boussinesq half-space:
  //   self:  u = c0 * a / E*,  c0 = 4 ln(1+sqrt(2)) / pi  (square patch)
  //   far:   u = a^2 / (pi E* d)
  // Build on a doubled grid so the circular convolution acts as a linear
  // (zero-padded) one for in-range outputs.
  const double a = opt.window_um;
  const double estar = opt.effective_modulus;
  const double c0 = 4.0 * std::log(1.0 + std::sqrt(2.0)) / M_PI;
  const std::size_t R = 2 * rows, C = 2 * cols;
  GridD k(R, C, 0.0);
  for (std::size_t i = 0; i < R; ++i) {
    const double di =
        (i < rows) ? static_cast<double>(i) : static_cast<double>(i) - static_cast<double>(R);
    for (std::size_t j = 0; j < C; ++j) {
      const double dj =
          (j < cols) ? static_cast<double>(j) : static_cast<double>(j) - static_cast<double>(C);
      const double d = std::hypot(di, dj) * a;
      k(i, j) = (d < 0.5 * a) ? c0 * a / estar : a * a / (M_PI * estar * d);
    }
  }
  return k;
}

ElasticContactSolver::ElasticContactSolver(std::size_t rows, std::size_t cols,
                                           const Options& opt)
    : rows_(rows), cols_(cols), opt_(opt), green_([&] {
        // Same small-grid rule as solve(): the constructor's kernel FFT on
        // the doubled grid is not worth a fork/join either.
        std::optional<runtime::ThreadPool::SerialRegion> serial;
        if (rows * cols <= kSerialSolveCells) serial.emplace();
        return CircularConvolver(make_green_kernel(rows, cols, opt));
      }()) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("ElasticContactSolver: empty grid");
  if (opt.effective_modulus <= 0.0)
    throw std::invalid_argument("ElasticContactSolver: E* must be positive");
}

GridD ElasticContactSolver::deflection(const GridD& pressure) const {
  NF_CHECK(pressure.rows() == rows_ && pressure.cols() == cols_,
           "deflection: pressure grid %zu x %zu, solver %zu x %zu",
           pressure.rows(), pressure.cols(), rows_, cols_);
  return green_.apply(pressure);
}

GridD ElasticContactSolver::solve(const GridD& height,
                                  double nominal_pressure) const {
  ContactDiag diag;
  Expected<GridD> res = try_solve(height, nominal_pressure, &diag);
  if (res.ok()) return std::move(*res);
  // Legacy semantics: a non-converged run yields the final iterate (it
  // passed the physicality postconditions); numeric poison escalates.
  if (res.error().code == ErrorCode::kNonConverged)
    return std::move(diag.final_pressure);
  throw ErrorException(res.error());
}

[[nodiscard]] Expected<GridD> ElasticContactSolver::try_solve(const GridD& height,
                                                double nominal_pressure,
                                                ContactDiag* diag) const {
  if (height.rows() != rows_ || height.cols() != cols_)
    throw std::invalid_argument("ElasticContactSolver: shape mismatch");
  if (nominal_pressure <= 0.0)
    throw std::invalid_argument("ElasticContactSolver: pressure must be positive");
  NF_TRACE_SPAN("contact.solve");
  NF_COUNTER_ADD("contact.solves", 1);
  const std::size_t n = rows_ * cols_;
  // Small solves run entirely serial (cell loops *and* the nested FFT
  // passes inside green_.apply degrade inline); see kSerialSolveCells.
  // The guard depends only on the grid shape, so results are unchanged.
  std::optional<runtime::ThreadPool::SerialRegion> serial;
  if (n <= kSerialSolveCells) serial.emplace();
  const std::size_t cell_grain = runtime::grain_for_cost(kCellCostNs, n);
  const double total_load = nominal_pressure * static_cast<double>(n);

  // Polonsky-Keer: minimize complementarity energy with CG restricted to the
  // current contact set, re-projecting after each step.
  GridD p(rows_, cols_, nominal_pressure);
  GridD d(rows_, cols_, 0.0);   // CG direction
  GridD r(rows_, cols_, 0.0);   // residual (gap deviation on contact set)
  double g_old = 1.0;
  bool restart_cg = true;

  const double href = [&] {
    double lo = height[0], hi = height[0];
    for (const double h : height) {
      lo = std::min(lo, h);
      hi = std::max(hi, h);
    }
    return std::max(hi - lo, 1e-12);
  }();

  last_iterations_ = 0;
  bool converged = false;
  double last_rms = std::numeric_limits<double>::quiet_NaN();
  double best_rms = std::numeric_limits<double>::infinity();
  const char* stall = "iteration budget exhausted";
  for (int it = 0; it < opt_.max_iterations; ++it) {
    ++last_iterations_;
    NF_TRACE_SPAN("contact.iteration");
    NF_COUNTER_ADD("contact.iterations", 1);
    GridD u = green_.apply(p);
    if (NF_FAULT("contact.nan"))
      u[0] = std::numeric_limits<double>::quiet_NaN();
    // The FFT-applied Green's operator must return finite deflections; a
    // NaN here would silently poison the whole pressure field on the next
    // projection.  This is a routine event under injection (and plausible
    // on pathological inputs), so it reports rather than aborts — p still
    // holds the last good projected iterate.
    for (std::size_t k = 0; k < n; ++k) {
      if (!std::isfinite(u[k])) [[unlikely]] {
        if (diag) {
          diag->converged = false;
          diag->iterations = last_iterations_;
          diag->final_pressure = std::move(p);
        }
        char msg[160];
        std::snprintf(msg, sizeof(msg),
                      "non-finite deflection %g at cell %zu on iteration %d",
                      u[k], k, last_iterations_);
        return Error(ErrorCode::kNumericPoison, "cmp.contact", msg);
      }
    }
    // Gap up to the unknown rigid approach delta: g_i = u_i - h_i.  On the
    // contact set g should be constant (= -delta); use its contact-set mean
    // as the working delta estimate.
    // Contact-set mean gap: a blocked two-component reduction (sum, count)
    // combined in fixed block order.
    struct GapStat {
      double sum = 0.0;
      std::size_t count = 0;
    };
    const GapStat gap = runtime::parallel_reduce(
        cell_grain, n, GapStat{},
        [&](std::size_t k0, std::size_t k1) {
          GapStat s;
          for (std::size_t k = k0; k < k1; ++k) {
            if (p[k] > 0.0) {
              s.sum += u[k] - height[k];
              ++s.count;
            }
          }
          return s;
        },
        [](GapStat a, const GapStat& b) {
          a.sum += b.sum;
          a.count += b.count;
          return a;
        });
    const std::size_t nc = gap.count;
    if (nc == 0) {
      converged = true;  // degenerate full-separation state; legacy accept
      break;
    }
    const double gbar = gap.sum / static_cast<double>(nc);
    NF_CHECK_FINITE(gbar);

    // Residual update writes r (disjoint per cell) while reducing |r|^2.
    const double g_new = blocked_sum(cell_grain, n, [&](std::size_t k) {
      r[k] = (p[k] > 0.0) ? (u[k] - height[k] - gbar) : 0.0;
      return r[k] * r[k];
    });
    last_rms = std::sqrt(g_new / static_cast<double>(nc));
    NF_GAUGE_SET("contact.residual_rms", last_rms);
    if (diag) {
      diag->residual_trail.push_back(last_rms);
      if (last_rms < best_rms) {
        best_rms = last_rms;
        diag->best_residual_rms = last_rms;
        diag->best_pressure = p;
      }
    }
    // contact.stall suppresses the convergence accept (the && short-circuit
    // means the site is hit exactly when the solve would have converged).
    if (last_rms < opt_.tolerance * href && !NF_FAULT("contact.stall")) {
      converged = true;
      break;
    }

    const double beta = restart_cg ? 0.0 : g_new / g_old;
    restart_cg = false;
    g_old = g_new;
    runtime::parallel_for(cell_grain, n, [&](std::size_t k0, std::size_t k1) {
      for (std::size_t k = k0; k < k1; ++k)
        d[k] = (p[k] > 0.0) ? (-r[k] + beta * d[k]) : 0.0;
    });

    // Step length along d: alpha = (r.r) / (d.(G d)) over the contact set.
    const GridD Gd = green_.apply(d);
    const double denom = blocked_sum(
        cell_grain, n,
        [&](std::size_t k) { return p[k] > 0.0 ? d[k] * Gd[k] : 0.0; });
    if (std::abs(denom) < 1e-300) {
      stall = "conjugate-gradient stagnation (step denominator underflow)";
      break;
    }
    const double alpha = g_new / denom;
    NF_CHECK_FINITE(alpha);
    NF_CHECK(g_new >= 0.0, "contact solver: negative residual norm %g", g_new);

    // Take the step and project to p >= 0.  Points whose pressure hits zero
    // leave the contact set; CG restarts when the set changes.
    // Both projection passes write disjoint cells and reduce an "any cell
    // left/entered the contact set" flag (order-independent OR).
    bool set_changed = runtime::parallel_reduce(
        cell_grain, n, false,
        [&](std::size_t k0, std::size_t k1) {
          bool changed = false;
          for (std::size_t k = k0; k < k1; ++k) {
            if (p[k] <= 0.0) continue;
            const double np = p[k] + alpha * d[k];
            if (np <= 0.0) {
              p[k] = 0.0;
              changed = true;
            } else {
              p[k] = np;
            }
          }
          return changed;
        },
        [](bool a, bool b) { return a || b; });

    // Points outside contact that penetrate (gap < -delta) re-enter.
    const GridD u2 = green_.apply(p);
    set_changed = runtime::parallel_reduce(
        cell_grain, n, set_changed,
        [&](std::size_t k0, std::size_t k1) {
          bool changed = false;
          for (std::size_t k = k0; k < k1; ++k) {
            if (p[k] == 0.0 && u2[k] - height[k] < gbar) {
              p[k] = 1e-6 * nominal_pressure;
              changed = true;
            }
          }
          return changed;
        },
        [](bool a, bool b) { return a || b; });
    if (set_changed) restart_cg = true;

    // Load balance.
    const double sum = blocked_sum(cell_grain, n, [&](std::size_t k) { return p[k]; });
    if (sum <= 0.0) {
      p.fill(nominal_pressure);
      restart_cg = true;
      continue;
    }
    const double scale = total_load / sum;
    runtime::parallel_for(cell_grain, n, [&](std::size_t k0, std::size_t k1) {
      for (std::size_t k = k0; k < k1; ++k) p[k] *= scale;
    });
  }
  // Postconditions: the iterate is a physical pressure field (this holds
  // for non-converged exits too — projection keeps p >= 0 throughout).
  for (std::size_t k = 0; k < n; ++k)
    NF_CHECK(p[k] >= 0.0, "contact solver: negative pressure %g at %zu", p[k],
             k);
  NF_CHECK_ALL_FINITE("contact solver: pressure field", p.data(), p.size());
  if (diag) {
    diag->converged = converged;
    diag->iterations = last_iterations_;
  }
  if (converged) {
    if (diag) diag->final_pressure = p;
    return p;
  }
  if (diag) diag->final_pressure = std::move(p);
  char msg[192];
  std::snprintf(msg, sizeof(msg),
                "%s: residual rms %.3g (accept threshold %.3g) after %d "
                "iterations",
                stall, last_rms, opt_.tolerance * href, last_iterations_);
  return Error(ErrorCode::kNonConverged, "cmp.contact", msg);
}

}  // namespace neurfill
