#include "cmp/pad_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"

namespace neurfill {

GridD make_character_kernel(double char_length_um, double window_um) {
  if (char_length_um <= 0.0 || window_um <= 0.0)
    throw std::invalid_argument("make_character_kernel: non-positive length");
  const double sigma = char_length_um / window_um;  // in window units
  // 3-sigma support, always at least a 3x3 kernel so some coupling exists.
  const auto radius = std::max<std::ptrdiff_t>(
      1, static_cast<std::ptrdiff_t>(std::ceil(3.0 * sigma)));
  const std::size_t n = static_cast<std::size_t>(2 * radius + 1);
  GridD k(n, n, 0.0);
  double sum = 0.0;
  for (std::ptrdiff_t di = -radius; di <= radius; ++di) {
    for (std::ptrdiff_t dj = -radius; dj <= radius; ++dj) {
      const double r2 = static_cast<double>(di * di + dj * dj);
      const double v = std::exp(-r2 / (2.0 * sigma * sigma));
      k(static_cast<std::size_t>(di + radius),
        static_cast<std::size_t>(dj + radius)) = v;
      sum += v;
    }
  }
  for (auto& v : k) v /= sum;
  return k;
}

GridD asperity_pressure(const GridD& smoothed_height, double lambda,
                        double nominal_pressure) {
  if (lambda <= 0.0)
    throw std::invalid_argument("asperity_pressure: lambda must be positive");
  NF_CHECK(!smoothed_height.empty(), "asperity_pressure: empty height grid");
  const double zmax =
      *std::max_element(smoothed_height.begin(), smoothed_height.end());
  GridD p(smoothed_height.rows(), smoothed_height.cols(), 0.0);
  double mean = 0.0;
  for (std::size_t k = 0; k < p.size(); ++k) {
    p[k] = std::exp((smoothed_height[k] - zmax) / lambda);
    mean += p[k];
  }
  mean /= static_cast<double>(p.size());
  // Load balance: total applied force is fixed, so scale to the nominal
  // mean pressure.
  const double scale = nominal_pressure / mean;
  for (auto& v : p) v *= scale;
  return p;
}

}  // namespace neurfill
