#pragma once

#include "common/fft.hpp"
#include "common/grid2d.hpp"

namespace neurfill {

/// Reference elastic contact solver (Polonsky & Keer style) for the pad /
/// wafer interface: given the surface height profile, find the contact
/// pressure distribution p >= 0 such that
///
///   u = G * p            (elastic half-space deflection, convolution)
///   u_i - h_i = -delta   where p_i > 0   (contact)
///   u_i - h_i >= -delta  where p_i = 0   (separation)
///   mean(p) = nominal    (load balance; delta is the rigid approach)
///
/// G is the Boussinesq kernel g(r) ~ 1 / (pi E* r) discretized per window.
/// The complementarity problem is solved with projected conjugate gradients,
/// using FFT circular convolution on a zero-padded grid.
///
/// This is the "solve the PDEs of contact mechanics" step of Fig. 2 in its
/// full form; the production simulator defaults to the cheaper asperity
/// model (pad_model.hpp) and this solver serves as the high-fidelity option
/// and cross-check.
class ElasticContactSolver {
 public:
  struct Options {
    double effective_modulus = 1.0;  ///< E* of the pad (pressure/height unit)
    double window_um = 100.0;        ///< discretization pitch
    int max_iterations = 400;
    double tolerance = 1e-8;  ///< relative complementarity residual
  };

  ElasticContactSolver(std::size_t rows, std::size_t cols, const Options& opt);
  ElasticContactSolver(std::size_t rows, std::size_t cols)
      : ElasticContactSolver(rows, cols, Options()) {}

  /// Heights in the same length unit used by `effective_modulus`; returns
  /// the pressure grid with mean equal to `nominal_pressure`.
  GridD solve(const GridD& height, double nominal_pressure) const;

  /// Deflection field for a given pressure (exposed for testing).
  GridD deflection(const GridD& pressure) const;

  int last_iterations() const { return last_iterations_; }

 private:
  std::size_t rows_, cols_;
  Options opt_;
  CircularConvolver green_;
  mutable int last_iterations_ = 0;

  static GridD make_green_kernel(std::size_t rows, std::size_t cols,
                                 const Options& opt);
};

}  // namespace neurfill
