#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/fft.hpp"
#include "common/grid2d.hpp"

namespace neurfill {

/// Diagnostics of one contact solve (docs/robustness.md).  On failure the
/// caller can inspect how the solve went wrong (residual trail) and degrade
/// to the best iterate seen instead of aborting.
struct ContactDiag {
  bool converged = false;
  int iterations = 0;
  /// Complementarity residual RMS per iteration, in order.
  std::vector<double> residual_trail;
  /// Lowest residual RMS seen and the pressure field that produced it
  /// (empty until the first completed iteration).
  double best_residual_rms = 0.0;
  GridD best_pressure;
  /// Pressure field at exit (what the legacy solve() returned on a
  /// non-converged run).
  GridD final_pressure;
};

/// Reference elastic contact solver (Polonsky & Keer style) for the pad /
/// wafer interface: given the surface height profile, find the contact
/// pressure distribution p >= 0 such that
///
///   u = G * p            (elastic half-space deflection, convolution)
///   u_i - h_i = -delta   where p_i > 0   (contact)
///   u_i - h_i >= -delta  where p_i = 0   (separation)
///   mean(p) = nominal    (load balance; delta is the rigid approach)
///
/// G is the Boussinesq kernel g(r) ~ 1 / (pi E* r) discretized per window.
/// The complementarity problem is solved with projected conjugate gradients,
/// using FFT circular convolution on a zero-padded grid.
///
/// This is the "solve the PDEs of contact mechanics" step of Fig. 2 in its
/// full form; the production simulator defaults to the cheaper asperity
/// model (pad_model.hpp) and this solver serves as the high-fidelity option
/// and cross-check.
class ElasticContactSolver {
 public:
  struct Options {
    double effective_modulus = 1.0;  ///< E* of the pad (pressure/height unit)
    double window_um = 100.0;        ///< discretization pitch
    int max_iterations = 400;
    double tolerance = 1e-8;  ///< relative complementarity residual
  };

  ElasticContactSolver(std::size_t rows, std::size_t cols, const Options& opt);
  ElasticContactSolver(std::size_t rows, std::size_t cols)
      : ElasticContactSolver(rows, cols, Options()) {}

  /// Heights in the same length unit used by `effective_modulus`; returns
  /// the pressure grid with mean equal to `nominal_pressure`.
  ///
  /// Legacy strict interface: a non-converged solve returns the final
  /// iterate (matching the original behavior); a NaN-poisoned solve throws
  /// ErrorException(kNumericPoison).  Callers that want to retry or degrade
  /// use try_solve.
  GridD solve(const GridD& height, double nominal_pressure) const;

  /// Recoverable interface.  On success returns the converged pressure
  /// field.  On failure returns a structured error — kNonConverged when the
  /// iteration budget ran out, kNumericPoison when a non-finite deflection
  /// appeared — and, when `diag` is non-null, fills it with the residual
  /// trail plus the best and final iterates so the caller can degrade
  /// gracefully.  Fault sites: contact.stall (suppresses convergence),
  /// contact.nan (poisons the deflection field).
  [[nodiscard]] Expected<GridD> try_solve(const GridD& height, double nominal_pressure,
                            ContactDiag* diag = nullptr) const;

  /// Deflection field for a given pressure (exposed for testing).
  GridD deflection(const GridD& pressure) const;

  int last_iterations() const { return last_iterations_; }

 private:
  std::size_t rows_, cols_;
  Options opt_;
  CircularConvolver green_;
  mutable int last_iterations_ = 0;

  static GridD make_green_kernel(std::size_t rows, std::size_t cols,
                                 const Options& opt);
};

}  // namespace neurfill
