#include "cmp/dsh_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neurfill {

DshRates dsh_removal_rates(double rho, double h, double p,
                           const DshParams& params) {
  if (params.critical_step <= 0.0)
    throw std::invalid_argument("dsh: critical_step must be positive");
  // Effective density floor: the pad's long-range bending plus asperity
  // compliance mean even a nominally empty window shares load with its
  // surroundings, so the removal-rate amplification 1/rho saturates.  A
  // floor of 0.15 caps the contrast at ~6.7x blanket, which is the regime
  // foundry-calibrated models operate in (unfloored, an empty calibration
  // block would erode thousands of Angstrom and no real chip does that).
  rho = std::clamp(rho, 0.15, 1.0);
  h = std::max(h, 0.0);
  const double phi = std::exp(-h / params.critical_step);
  const double share = rho + (1.0 - rho) * phi;
  const double blanket = params.preston_k * p * params.velocity;
  DshRates r;
  r.up = blanket / share;
  r.down = phi * r.up;
  return r;
}

}  // namespace neurfill
