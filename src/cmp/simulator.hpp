#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "common/deadline.hpp"
#include "common/fft.hpp"
#include "common/grid2d.hpp"
#include "layout/window_grid.hpp"

namespace neurfill {

/// Degradation ledger of a simulator (docs/robustness.md).  Counters are
/// atomics because layer simulations run concurrently (NMMSO batch
/// evaluation); the ledger lives behind a shared_ptr so the copies the fill
/// problem makes of its simulator all account to one ledger — a degraded
/// solve anywhere in a run is visible from the report at the end.
struct SimulatorHealth {
  std::atomic<long> contact_retries{0};   ///< contact solves retried
  std::atomic<long> contact_degraded{0};  ///< solves that fell back (damped
                                          ///< restart / best-iterate /
                                          ///< asperity substitute)
  std::atomic<long> contact_poisoned{0};  ///< NaN-poisoned solves observed

  bool any_degraded() const {
    return contact_degraded.load(std::memory_order_relaxed) > 0;
  }
};

/// Pressure-distribution model used inside the simulator (Fig. 2 step 2).
enum class PressureModel {
  kAsperity,  ///< Greenwood-Williamson exponential asperity contact (default)
  kElastic,   ///< full Polonsky-Keer half-space contact solve (reference)
};

/// Process parameters of the full-chip CMP simulator.  Heights in Angstrom,
/// times in seconds; pressure and velocity are in consistent arbitrary units
/// absorbed by the Preston coefficient.
struct CmpProcessParams {
  double window_um = 100.0;       ///< simulation window edge
  double char_length_um = 60.0;   ///< pad character length (20-100 um)
  double nominal_pressure = 5.0;  ///< applied down-force per window
  double velocity = 1.0;          ///< relative pad velocity
  double preston_k = 8.0;         ///< Angstrom removed per unit p*v*s
  double critical_step = 400.0;   ///< DSH h_c (A)
  double trench_depth = 3000.0;   ///< post-deposition step height (A)
  double asperity_lambda = 1200.0; ///< asperity height scale (A)
  double polish_time_s = 60.0;    ///< total polish time per layer
  double dt_s = 2.0;              ///< integration step
  /// Fraction of a layer's post-CMP topography that propagates into the next
  /// layer's envelope (incoming topography).
  double topo_transfer = 0.8;
  /// Dishing: recess of the metal surface, growing with feature width.
  double dish_coeff = 120.0;      ///< A at the width saturation limit
  double dish_ref_width_um = 40.0;
  PressureModel pressure_model = PressureModel::kAsperity;
};

/// Per-layer simulator input: everything the CMP model knows about a layer.
struct LayerSimInput {
  GridD density;          ///< total pattern density incl. dummies and fill
  GridD avg_width_um;     ///< mean feature width per window
  GridD perimeter_um;     ///< wire perimeter per window
  GridD incoming_height;  ///< topography inherited from the layer below (A)
};

/// Per-layer simulator output.
struct LayerSimResult {
  GridD height;      ///< average post-CMP surface height per window (A)
  GridD dishing;     ///< metal recess per window (A)
  GridD erosion;     ///< oxide/metal loss vs. the chip's highest window (A)
  GridD final_step;  ///< residual step height (A)
};

/// Full-chip CMP simulator (Fig. 2): envelope heights -> contact pressure ->
/// DSH removal rates -> Preston-equation time stepping, iterated until the
/// polish time is reached, then chained across layers bottom-up.
class CmpSimulator {
 public:
  explicit CmpSimulator(const CmpProcessParams& params = {});

  const CmpProcessParams& params() const { return params_; }

  /// Simulates one layer's polish.
  LayerSimResult simulate_layer(const LayerSimInput& input) const;

  /// Simulates all layers of an extracted layout with additional fill `x`
  /// (fraction units, one grid per layer; pass {} for no fill).  Returns the
  /// per-layer results, bottom layer first.
  std::vector<LayerSimResult> simulate(const WindowExtraction& ext,
                                       const std::vector<GridD>& x) const;

  /// Convenience: just the height profiles (the metric inputs).
  std::vector<GridD> simulate_heights(const WindowExtraction& ext,
                                      const std::vector<GridD>& x) const;

  /// Degradation ledger, shared across copies of this simulator.
  SimulatorHealth& health() const { return *health_; }

  /// Deadline for subsequent simulate calls (default: infinite).  An
  /// expired deadline raises ErrorException(kDeadlineExceeded) at the next
  /// polish step; optimizer loops catch it and return their best-so-far.
  void set_deadline(const Deadline& deadline) { deadline_ = deadline; }

 private:
  CmpProcessParams params_;
  GridD kernel_;  ///< character-length smoothing kernel
  Deadline deadline_;
  std::shared_ptr<SimulatorHealth> health_ =
      std::make_shared<SimulatorHealth>();
};

}  // namespace neurfill
