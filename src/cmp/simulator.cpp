#include "cmp/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "cmp/contact_solver.hpp"
#include "cmp/dsh_model.hpp"
#include "cmp/pad_model.hpp"
#include "common/error.hpp"
#include "obs/trace.hpp"

namespace neurfill {

namespace {

/// Contrast-damped copy of an envelope: heights pulled halfway toward their
/// mean.  Used for the damped-restart retry — a solve that stalls on a
/// high-contrast surface usually converges on the damped one, and a
/// slightly smoothed pressure field beats aborting the whole fill run.
GridD damp_toward_mean(const GridD& z) {
  double mean = 0.0;
  for (const double v : z) mean += v;
  mean /= static_cast<double>(z.size());
  GridD damped = z;
  for (std::size_t k = 0; k < damped.size(); ++k)
    damped[k] = mean + 0.5 * (z[k] - mean);
  return damped;
}

}  // namespace

CmpSimulator::CmpSimulator(const CmpProcessParams& params)
    : params_(params),
      kernel_(make_character_kernel(params.char_length_um, params.window_um)) {
  if (params.polish_time_s <= 0.0 || params.dt_s <= 0.0)
    throw std::invalid_argument("CmpSimulator: non-positive polish time/step");
  if (params.trench_depth <= 0.0)
    throw std::invalid_argument("CmpSimulator: non-positive trench depth");
}

LayerSimResult CmpSimulator::simulate_layer(const LayerSimInput& input) const {
  NF_TRACE_SPAN("cmp.simulate_layer");
  NF_COUNTER_ADD("cmp.layer_sims", 1);
  const std::size_t rows = input.density.rows(), cols = input.density.cols();
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("simulate_layer: empty grid");
  if (!input.incoming_height.same_shape(input.density) ||
      !input.avg_width_um.same_shape(input.density))
    throw std::invalid_argument("simulate_layer: grid shape mismatch");

  // Effective density: the pad averages pattern density over the character
  // length; it is constant over the polish (pattern does not change).
  const GridD rho_eff =
      convolve_small(input.density, kernel_, /*normalize_boundary=*/true);

  // Post-deposition state: the envelope (up-area surface) sits one trench
  // depth above the incoming topography; conformal deposition makes the
  // initial step height the trench depth everywhere there is pattern.
  GridD z_up(rows, cols, 0.0);
  GridD h(rows, cols, 0.0);
  for (std::size_t k = 0; k < z_up.size(); ++k) {
    z_up[k] = input.incoming_height[k] + params_.trench_depth;
    h[k] = params_.trench_depth;
  }

  DshParams dsh;
  dsh.critical_step = params_.critical_step;
  dsh.preston_k = params_.preston_k;
  dsh.velocity = params_.velocity;

  std::unique_ptr<ElasticContactSolver> elastic;
  if (params_.pressure_model == PressureModel::kElastic) {
    ElasticContactSolver::Options eopt;
    eopt.window_um = params_.window_um;
    // E* such that the pad's self-deflection under the nominal pressure is a
    // quarter of the trench depth: compliant enough to keep most of the
    // surface in contact (a stiffer pad would load only the highest window
    // and the explicit time stepping would sawtooth).
    const double c0 = 4.0 * std::log(1.0 + std::sqrt(2.0)) / M_PI;
    eopt.effective_modulus = c0 * params_.window_um *
                             params_.nominal_pressure /
                             (0.25 * params_.trench_depth);
    elastic = std::make_unique<ElasticContactSolver>(rows, cols, eopt);
  }

  // Contact solve with graceful degradation (docs/robustness.md): retry a
  // failed solve once against a contrast-damped envelope, then fall back to
  // the best iterate seen, then to the asperity model.  Every path yields a
  // physical pressure field; the health ledger records that quality
  // degraded so the final report can say so honestly.
  const auto elastic_pressure = [&](const GridD& z) -> GridD {
    ContactDiag diag;
    Expected<GridD> first = elastic->try_solve(z, params_.nominal_pressure,
                                               &diag);
    if (first.ok()) return std::move(*first);
    if (first.error().code == ErrorCode::kNumericPoison)
      health_->contact_poisoned.fetch_add(1, std::memory_order_relaxed);
    health_->contact_retries.fetch_add(1, std::memory_order_relaxed);
    NF_COUNTER_ADD("cmp.contact_retries", 1);
    ContactDiag retry_diag;
    Expected<GridD> retry = elastic->try_solve(
        damp_toward_mean(z), params_.nominal_pressure, &retry_diag);
    health_->contact_degraded.fetch_add(1, std::memory_order_relaxed);
    NF_COUNTER_ADD("cmp.contact_degraded", 1);
    if (retry.ok()) return std::move(*retry);
    if (diag.best_pressure.size() > 0) return std::move(diag.best_pressure);
    if (retry_diag.best_pressure.size() > 0)
      return std::move(retry_diag.best_pressure);
    return asperity_pressure(z, params_.asperity_lambda,
                             params_.nominal_pressure);
  };

  const int steps =
      static_cast<int>(std::ceil(params_.polish_time_s / params_.dt_s));
  for (int s = 0; s < steps; ++s) {
    NF_TRACE_SPAN("cmp.polish_step");
    if (deadline_.expired())
      throw ErrorException(Error(
          ErrorCode::kDeadlineExceeded, "cmp.simulate",
          "run deadline expired during a polish step"));
    const double dt =
        std::min(params_.dt_s, params_.polish_time_s - s * params_.dt_s);
    // Pad bending: the pad cannot follow window-scale detail, so the
    // pressure responds to the character-length smoothed envelope.
    const GridD z_smooth =
        convolve_small(z_up, kernel_, /*normalize_boundary=*/true);
    const GridD p =
        (params_.pressure_model == PressureModel::kAsperity)
            ? asperity_pressure(z_smooth, params_.asperity_lambda,
                                params_.nominal_pressure)
            : elastic_pressure(z_smooth);
    for (std::size_t k = 0; k < z_up.size(); ++k) {
      const DshRates r = dsh_removal_rates(rho_eff[k], h[k], p[k], dsh);
      z_up[k] -= r.up * dt;
      h[k] = std::max(0.0, h[k] - (r.up - r.down) * dt);
    }
  }

  LayerSimResult out;
  out.final_step = h;
  out.dishing = GridD(rows, cols, 0.0);
  out.height = GridD(rows, cols, 0.0);
  out.erosion = GridD(rows, cols, 0.0);
  double zmax = z_up[0];
  for (std::size_t k = 0; k < z_up.size(); ++k) {
    // Dishing: wide soft-metal features recess below the surrounding oxide;
    // saturates with width.
    const double w = input.avg_width_um[k];
    out.dishing[k] = params_.dish_coeff * w / (w + params_.dish_ref_width_um);
    // Average surface height: density-weighted mix of the (dished) up
    // surface and the trench surface.
    const double rho = std::clamp(input.density[k], 0.0, 1.0);
    out.height[k] = rho * (z_up[k] - out.dishing[k]) + (1.0 - rho) * (z_up[k] - h[k]);
    zmax = std::max(zmax, z_up[k]);
  }
  for (std::size_t k = 0; k < z_up.size(); ++k)
    out.erosion[k] = zmax - z_up[k];
  return out;
}

std::vector<LayerSimResult> CmpSimulator::simulate(
    const WindowExtraction& ext, const std::vector<GridD>& x) const {
  NF_TRACE_SPAN("cmp.simulate");
  NF_COUNTER_ADD("cmp.simulations", 1);
  if (!x.empty() && x.size() != ext.num_layers())
    throw std::invalid_argument("simulate: fill layer count mismatch");
  std::vector<LayerSimResult> results;
  results.reserve(ext.num_layers());
  GridD incoming(ext.rows, ext.cols, 0.0);
  for (std::size_t l = 0; l < ext.num_layers(); ++l) {
    const LayerWindowData& d = ext.layers[l];
    LayerSimInput in;
    in.density = d.wire_density;
    for (std::size_t k = 0; k < in.density.size(); ++k) {
      in.density[k] += d.dummy_density[k];
      if (!x.empty()) in.density[k] += std::max(0.0, x[l][k]);
      in.density[k] = std::min(in.density[k], 1.0);
    }
    in.avg_width_um = d.avg_width_um;
    in.perimeter_um = d.perimeter_um;
    in.incoming_height = incoming;
    results.push_back(simulate_layer(in));
    // Pattern transfer: the next layer inherits an attenuated, zero-mean
    // copy of this layer's topography.
    const LayerSimResult& r = results.back();
    double mean = 0.0;
    for (const double v : r.height) mean += v;
    mean /= static_cast<double>(r.height.size());
    for (std::size_t k = 0; k < incoming.size(); ++k)
      incoming[k] = params_.topo_transfer * (r.height[k] - mean);
  }
  return results;
}

std::vector<GridD> CmpSimulator::simulate_heights(
    const WindowExtraction& ext, const std::vector<GridD>& x) const {
  std::vector<GridD> heights;
  for (auto& r : simulate(ext, x)) heights.push_back(std::move(r.height));
  return heights;
}

}  // namespace neurfill
