#include "serve/daemon.hpp"

#include <sstream>

#include "common/log.hpp"
#include "obs/export.hpp"

namespace neurfill::serve {

Daemon::Daemon(const DaemonOptions& options, JobJournal journal)
    : opts_(options),
      journal_(std::make_unique<JobJournal>(std::move(journal))),
      runner_(options.runner) {
  JobJournal* journal_ptr = journal_.get();
  scheduler_ = std::make_unique<Scheduler>(
      opts_.scheduler,
      [this](const JobRecord& rec, const Deadline& deadline,
             const std::string& snapshot_path,
             const std::atomic<bool>* interrupt) {
        return runner_.run(rec, deadline, snapshot_path, interrupt);
      },
      [journal_ptr](const JobRecord& rec) { return journal_ptr->write(rec); },
      [journal_ptr](const std::string& id) {
        return journal_ptr->snapshot_path(id);
      });
}

[[nodiscard]] Expected<std::unique_ptr<Daemon>> Daemon::create(
    const DaemonOptions& options, const std::string& journal_dir) {
  Expected<JobJournal> journal = JobJournal::open(journal_dir);
  if (!journal.ok()) return journal.error();
  Expected<JobJournal::Recovery> recovery = journal->recover();
  if (!recovery.ok()) return recovery.error();
  std::unique_ptr<Daemon> d(new Daemon(options, std::move(*journal)));
  d->quarantined_ = recovery->quarantined;
  for (JobRecord& rec : recovery->records) {
    const bool runnable = rec.state == JobState::kQueued ||
                          rec.state == JobState::kRunning;
    if (runnable) ++d->recovered_;
    d->scheduler_->restore(std::move(rec));
  }
  if (d->recovered_ > 0 || d->quarantined_ > 0)
    LOG_INFO("serve.daemon: recovered %zu pending job(s) from '%s' "
             "(%zu corrupt record(s) quarantined)",
             d->recovered_, journal_dir.c_str(), d->quarantined_);
  return d;
}

void Daemon::run_worker() {
  scheduler_->run_worker();
  worker_parked_.store(true, std::memory_order_release);
}

void Daemon::request_drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  {
    std::lock_guard<std::mutex> lock(drain_m_);
    drain_deadline_ = opts_.drain_deadline_s > 0.0
                          ? Deadline::after_seconds(opts_.drain_deadline_s)
                          : Deadline();
  }
  LOG_INFO("serve.daemon: draining (deadline %.1fs); admission closed",
           opts_.drain_deadline_s);
  scheduler_->begin_drain();
}

void Daemon::stop() { scheduler_->stop(); }

void Daemon::tick() {
  if (drain_flag_ != nullptr &&
      drain_flag_->load(std::memory_order_relaxed) &&
      !draining_.load(std::memory_order_relaxed))
    request_drain();
  if (!draining_.load(std::memory_order_relaxed)) return;
  bool expired = false;
  {
    std::lock_guard<std::mutex> lock(drain_m_);
    expired = drain_deadline_.expired();
  }
  if (expired && !drain_escalated_.exchange(true)) {
    LOG_WARN("serve.daemon: drain deadline expired; asking the in-flight "
             "solve to checkpoint and stop");
    scheduler_->interrupt_running();
  }
}

bool Daemon::done() const {
  return worker_parked_.load(std::memory_order_acquire);
}

std::string Daemon::handle_submit(const JsonValue& req) {
  JobSpec spec;
  spec.design = req.get_string("design");
  spec.out = req.get_string("out");
  spec.method = req.get_string("method", "pkb");
  spec.surrogate = req.get_string("surrogate");
  spec.window_um = req.get_number("window", 100.0);
  spec.deadline_s = req.get_number("deadline_s", 0.0);
  spec.max_attempts = static_cast<int>(req.get_number("max_attempts", 0.0));
  Expected<std::string> id = scheduler_->submit(std::move(spec));
  if (!id.ok()) return error_reply(id.error());
  JsonValue v = json_object();
  v.object["ok"] = json_bool(true);
  v.object["id"] = json_string(*id);
  return json_render(v);
}

std::string Daemon::handle_status(const JsonValue& req) {
  const std::string id = req.get_string("id");
  JobRecord rec;
  if (!scheduler_->find(id, &rec))
    return error_reply(Error(ErrorCode::kNotFound, "serve.daemon",
                             "no job with id '" + id + "'"));
  JsonValue v = json_object();
  v.object["ok"] = json_bool(true);
  v.object["job"] = rec.to_json();
  return json_render(v);
}

std::string Daemon::handle_cancel(const JsonValue& req) {
  const std::string id = req.get_string("id");
  JsonValue v = json_object();
  v.object["ok"] = json_bool(true);
  v.object["cancelled"] = json_bool(scheduler_->cancel(id));
  return json_render(v);
}

std::string Daemon::handle_line(const std::string& line) {
  Expected<JsonValue> req = json_parse(line);
  if (!req.ok()) return error_reply(req.error());
  const std::string op = req->get_string("op");
  if (op == "submit") return handle_submit(*req);
  if (op == "status") return handle_status(*req);
  if (op == "cancel") return handle_cancel(*req);
  if (op == "drain") {
    request_drain();
    JsonValue v = json_object();
    v.object["ok"] = json_bool(true);
    v.object["draining"] = json_bool(true);
    return json_render(v);
  }
  if (op == "ping") {
    const Scheduler::Stats stats = scheduler_->stats();
    JsonValue v = json_object();
    v.object["ok"] = json_bool(true);
    v.object["draining"] = json_bool(stats.draining);
    v.object["queued"] = json_number(static_cast<double>(stats.queued));
    v.object["running"] = json_bool(stats.running);
    return json_render(v);
  }
  return error_reply(Error(ErrorCode::kInvalidArgument, "serve.daemon",
                           "unknown op '" + op +
                               "' (expected submit|status|cancel|ping|drain)"));
}

std::string Daemon::handle_get(const std::string& path) {
  if (path == "/metrics") {
    std::ostringstream os;
    obs::write_metrics_json(os);
    return http_response(200, "application/json", os.str());
  }
  if (path == "/healthz") {
    const Scheduler::Stats stats = scheduler_->stats();
    JsonValue v = json_object();
    v.object["ok"] = json_bool(true);
    v.object["draining"] = json_bool(stats.draining);
    v.object["queued"] = json_number(static_cast<double>(stats.queued));
    return http_response(200, "application/json", json_render(v) + "\n");
  }
  if (path.rfind("/jobs/", 0) == 0) {
    const std::string id = path.substr(6);
    JobRecord rec;
    if (scheduler_->find(id, &rec)) {
      JsonValue v = rec.to_json();
      return http_response(200, "application/json", json_render(v) + "\n");
    }
    JsonValue v = json_object();
    v.object["ok"] = json_bool(false);
    v.object["error"] = json_string("no job with id '" + id + "'");
    return http_response(404, "application/json", json_render(v) + "\n");
  }
  JsonValue v = json_object();
  v.object["ok"] = json_bool(false);
  v.object["error"] =
      json_string("unknown path (try /metrics, /healthz, /jobs/<id>)");
  return http_response(404, "application/json", json_render(v) + "\n");
}

}  // namespace neurfill::serve
