#include "serve/journal.hpp"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <system_error>

#include "common/fault.hpp"
#include "common/log.hpp"
#include "obs/trace.hpp"

namespace neurfill::serve {
namespace {

std::string errno_message() {
  return std::error_code(errno, std::generic_category()).message();
}

}  // namespace

[[nodiscard]] Expected<JobJournal> JobJournal::open(const std::string& dir) {
  if (dir.empty())
    return Error(ErrorCode::kInvalidArgument, "serve.journal",
                 "journal directory must not be empty");
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    return Error(ErrorCode::kIo, "serve.journal",
                 "cannot create journal directory '" + dir +
                     "': " + errno_message());
  struct stat st{};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
    return Error(ErrorCode::kIo, "serve.journal",
                 "journal path '" + dir + "' is not a directory");
  return JobJournal(dir);
}

std::string JobJournal::record_path(const std::string& id) const {
  return dir_ + "/job_" + id + ".nfcp";
}

std::string JobJournal::snapshot_path(const std::string& id) const {
  return dir_ + "/" + id + ".snap";
}

[[nodiscard]] Expected<void> JobJournal::write(const JobRecord& rec) const {
  NF_TRACE_SPAN("serve.journal_commit");
  if (NF_FAULT("serve.journal_write"))
    return Error(ErrorCode::kIo, "serve.journal",
                 "injected journal-write failure for job " + rec.id);
  CheckpointWriter w;
  w.add_section("job", rec.serialize());
  return w.commit(record_path(rec.id));
}

void JobJournal::remove(const std::string& id) const {
  std::remove(record_path(id).c_str());
  std::remove(snapshot_path(id).c_str());
}

[[nodiscard]] Expected<JobJournal::Recovery> JobJournal::recover() const {
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr)
    return Error(ErrorCode::kIo, "serve.journal",
                 "cannot scan journal directory '" + dir_ +
                     "': " + errno_message());
  std::vector<std::string> names;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() > 9 && name.rfind("job_", 0) == 0 &&
        name.compare(name.size() - 5, 5, ".nfcp") == 0)
      names.push_back(name);
  }
  ::closedir(d);
  // Directory order is filesystem-dependent; id order is the deterministic
  // recovery order (ids are assigned monotonically at admission).
  std::sort(names.begin(), names.end());

  Recovery out;
  for (const std::string& name : names) {
    const std::string path = dir_ + "/" + name;
    const auto quarantine = [&](const Error& err) {
      LOG_WARN("serve.journal: quarantining corrupt record %s: %s",
               path.c_str(), err.to_string().c_str());
      std::rename(path.c_str(), (path + ".corrupt").c_str());
      ++out.quarantined;
    };
    Expected<CheckpointReader> reader = CheckpointReader::open(path);
    if (!reader.ok()) {
      quarantine(reader.error());
      continue;
    }
    Expected<const std::vector<char>*> payload = reader->section("job");
    if (!payload.ok()) {
      quarantine(payload.error());
      continue;
    }
    Expected<JobRecord> rec = JobRecord::deserialize(**payload);
    if (!rec.ok()) {
      quarantine(rec.error());
      continue;
    }
    // The filename must agree with the record it holds: a record copied
    // over another job's file would otherwise resurrect under a wrong id.
    if (record_path(rec->id) != path) {
      quarantine(Error(ErrorCode::kCorrupt, "serve.journal",
                       "record in '" + path + "' claims id '" + rec->id +
                           "'"));
      continue;
    }
    out.records.push_back(std::move(*rec));
  }
  return out;
}

}  // namespace neurfill::serve
