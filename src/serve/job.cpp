#include "serve/job.hpp"

namespace neurfill::serve {
namespace {

constexpr std::uint32_t kJobFormatVersion = 1;

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::vector<char> JobRecord::serialize() const {
  ByteWriter w;
  w.u32(kJobFormatVersion);
  w.str(id);
  w.str(spec.design);
  w.str(spec.out);
  w.str(spec.method);
  w.str(spec.surrogate);
  w.f64(spec.window_um);
  w.f64(spec.deadline_s);
  w.u32(static_cast<std::uint32_t>(spec.max_attempts));
  w.u32(static_cast<std::uint32_t>(state));
  w.u32(static_cast<std::uint32_t>(attempts.size()));
  for (const JobAttempt& a : attempts) {
    w.u32(a.ok ? 1u : 0u);
    w.u32(static_cast<std::uint32_t>(a.code));
    w.str(a.message);
    w.f64(a.runtime_s);
  }
  w.u64(outcome.dummies);
  w.f64(outcome.runtime_s);
  w.i64(outcome.evaluations);
  w.u32(outcome.timed_out ? 1u : 0u);
  w.u32(outcome.degraded ? 1u : 0u);
  w.str(final_error);
  return w.take();
}

[[nodiscard]] Expected<JobRecord> JobRecord::deserialize(const std::vector<char>& payload) {
  ByteReader r(payload);
  const std::uint32_t version = r.u32();
  if (r.ok() && version != kJobFormatVersion)
    return Error(ErrorCode::kCorrupt, "serve.journal",
                 "job record format version " + std::to_string(version) +
                     " (expected " + std::to_string(kJobFormatVersion) + ")");
  JobRecord rec;
  rec.id = r.str();
  rec.spec.design = r.str();
  rec.spec.out = r.str();
  rec.spec.method = r.str();
  rec.spec.surrogate = r.str();
  rec.spec.window_um = r.f64();
  rec.spec.deadline_s = r.f64();
  rec.spec.max_attempts = static_cast<int>(r.u32());
  const std::uint32_t state_raw = r.u32();
  const std::uint32_t attempt_count = r.u32();
  // Bounded before allocation: a corrupt count must not drive a giant
  // reserve (each attempt is at least 16 payload bytes).
  if (r.ok() && attempt_count > payload.size() / 16)
    return Error(ErrorCode::kCorrupt, "serve.journal",
                 "job record claims " + std::to_string(attempt_count) +
                     " attempts in " + std::to_string(payload.size()) +
                     " bytes");
  for (std::uint32_t i = 0; r.ok() && i < attempt_count; ++i) {
    JobAttempt a;
    a.ok = r.u32() != 0;
    a.code = static_cast<ErrorCode>(r.u32());
    a.message = r.str();
    a.runtime_s = r.f64();
    rec.attempts.push_back(a);
  }
  rec.outcome.dummies = r.u64();
  rec.outcome.runtime_s = r.f64();
  rec.outcome.evaluations = r.i64();
  rec.outcome.timed_out = r.u32() != 0;
  rec.outcome.degraded = r.u32() != 0;
  rec.final_error = r.str();
  if (!r.ok() || !r.at_end())
    return Error(ErrorCode::kCorrupt, "serve.journal",
                 "job record payload is truncated or carries trailing bytes");
  if (state_raw > static_cast<std::uint32_t>(JobState::kCancelled))
    return Error(ErrorCode::kCorrupt, "serve.journal",
                 "job record state " + std::to_string(state_raw) +
                     " is out of range");
  rec.state = static_cast<JobState>(state_raw);
  return rec;
}

JsonValue JobRecord::to_json() const {
  JsonValue v = json_object();
  v.object["id"] = json_string(id);
  v.object["state"] = json_string(job_state_name(state));
  v.object["design"] = json_string(spec.design);
  v.object["out"] = json_string(spec.out);
  v.object["method"] = json_string(spec.method);
  if (!spec.surrogate.empty())
    v.object["surrogate"] = json_string(spec.surrogate);
  v.object["window"] = json_number(spec.window_um);
  if (spec.deadline_s > 0.0)
    v.object["deadline_s"] = json_number(spec.deadline_s);
  v.object["max_attempts"] = json_number(spec.max_attempts);
  JsonValue attempts_json;
  attempts_json.kind = JsonValue::Kind::kArray;
  for (const JobAttempt& a : attempts) {
    JsonValue aj = json_object();
    aj.object["ok"] = json_bool(a.ok);
    if (!a.ok) {
      aj.object["code"] = json_string(error_code_name(a.code));
      aj.object["error"] = json_string(a.message);
    }
    aj.object["runtime_s"] = json_number(a.runtime_s);
    attempts_json.array.push_back(std::move(aj));
  }
  v.object["attempts"] = std::move(attempts_json);
  if (state == JobState::kCompleted) {
    JsonValue oj = json_object();
    oj.object["dummies"] = json_number(static_cast<double>(outcome.dummies));
    oj.object["runtime_s"] = json_number(outcome.runtime_s);
    oj.object["evaluations"] =
        json_number(static_cast<double>(outcome.evaluations));
    oj.object["timed_out"] = json_bool(outcome.timed_out);
    oj.object["degraded"] = json_bool(outcome.degraded);
    v.object["outcome"] = std::move(oj);
  }
  if (state == JobState::kFailed)
    v.object["error"] = json_string(final_error);
  return v;
}

}  // namespace neurfill::serve
