#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "serve/protocol.hpp"

namespace neurfill::serve {
namespace {

// One request line (or HTTP request head) may not exceed this; a client
// sending more gets a structured error and is dropped.  Replies are small
// (status JSON), so the output cap only guards a non-draining peer.
constexpr std::size_t kMaxInBytes = 1 << 20;
constexpr std::size_t kMaxOutBytes = 4u << 20;
constexpr int kTickMs = 50;

std::string errno_message() {
  return std::error_code(errno, std::generic_category()).message();
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

[[nodiscard]] Expected<Server> Server::listen(int port, const std::string& port_file) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Error(ErrorCode::kIo, "serve.net",
                 "socket() failed: " + errno_message());
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string msg = errno_message();
    ::close(fd);
    return Error(ErrorCode::kIo, "serve.net",
                 "cannot bind 127.0.0.1:" + std::to_string(port) + ": " + msg);
  }
  if (::listen(fd, 64) != 0) {
    const std::string msg = errno_message();
    ::close(fd);
    return Error(ErrorCode::kIo, "serve.net", "listen() failed: " + msg);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string msg = errno_message();
    ::close(fd);
    return Error(ErrorCode::kIo, "serve.net", "getsockname() failed: " + msg);
  }
  const int bound_port = ntohs(bound.sin_port);
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return Error(ErrorCode::kIo, "serve.net",
                 "cannot make the listening socket non-blocking");
  }
  if (!port_file.empty()) {
    const std::string text = std::to_string(bound_port) + "\n";
    Expected<void> wrote =
        atomic_write_file(port_file, text.data(), text.size(), "serve.net");
    if (!wrote.ok()) {
      ::close(fd);
      return wrote.error();
    }
  }
  return Server(fd, bound_port);
}

Server::Server(Server&& other) noexcept
    : listen_fd_(other.listen_fd_),
      port_(other.port_),
      conns_(std::move(other.conns_)) {
  other.listen_fd_ = -1;
}

Server::~Server() {
  for (const auto& [fd, conn] : conns_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::accept_new() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or a transient accept failure: keep serving
    if (NF_FAULT("serve.accept")) {
      LOG_WARN("serve.net: injected accept failure; dropping connection");
      ::close(fd);
      continue;
    }
    if (!set_nonblocking(fd)) {
      LOG_WARN("serve.net: cannot make an accepted socket non-blocking");
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, Conn{});
  }
}

bool Server::read_some(int fd, Conn& c, Handler& handler) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    c.in.append(buf, static_cast<std::size_t>(n));
    if (c.in.size() > kMaxInBytes) {
      c.out += error_reply(Error(ErrorCode::kInvalidArgument, "serve.net",
                                 "request exceeds " +
                                     std::to_string(kMaxInBytes) + " bytes"));
      c.out += '\n';
      c.close_after_flush = true;
      return true;
    }
  }
  if (!c.http && c.in.size() >= 4 && c.in.compare(0, 4, "GET ") == 0)
    c.http = true;
  if (c.http) {
    // Serve the GET as soon as the request line is complete; the remaining
    // headers are irrelevant to this minimal endpoint set.
    const std::size_t eol = c.in.find('\n');
    if (eol == std::string::npos) return true;
    std::string line = c.in.substr(0, eol);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t sp = line.find(' ', 4);
    const std::string path =
        sp == std::string::npos ? line.substr(4) : line.substr(4, sp - 4);
    c.out += handler.handle_get(path);
    c.close_after_flush = true;
    c.in.clear();
    return true;
  }
  std::size_t start = 0;
  for (;;) {
    const std::size_t eol = c.in.find('\n', start);
    if (eol == std::string::npos) break;
    std::string line = c.in.substr(start, eol - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    start = eol + 1;
    if (line.empty()) continue;
    c.out += handler.handle_line(line);
    c.out += '\n';
    if (c.out.size() > kMaxOutBytes) c.close_after_flush = true;
  }
  c.in.erase(0, start);
  return true;
}

bool Server::write_some(int fd, Conn& c) {
  while (!c.out.empty()) {
    std::size_t want = c.out.size();
    if (NF_FAULT("serve.reply_short_write")) {
      // A torn reply: half the bytes go out, then the connection drops.
      // Job state is unaffected — replies are sent only after the journal
      // commit — so the client retries its query and sees the truth.
      want = want / 2;
      if (want > 0) (void)::send(fd, c.out.data(), want, MSG_NOSIGNAL);
      LOG_WARN("serve.net: injected short write; dropping connection");
      return false;
    }
    const ssize_t n = ::send(fd, c.out.data(), want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    c.out.erase(0, static_cast<std::size_t>(n));
  }
  return !c.close_after_flush;
}

[[nodiscard]] Expected<void> Server::run(Handler& handler) {
  while (!handler.done()) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(), kTickMs);
    if (rc < 0 && errno != EINTR)
      return Error(ErrorCode::kIo, "serve.net",
                   "poll() failed: " + errno_message());
    handler.tick();
    if (rc <= 0) continue;
    if (fds[0].revents & POLLIN) accept_new();
    std::vector<int> drop;
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& c = it->second;
      bool alive = true;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) alive = false;
      if (alive && (fds[i].revents & POLLIN))
        alive = read_some(fd, c, handler);
      if (alive && !c.out.empty()) alive = write_some(fd, c);
      if (alive && c.out.empty() && c.close_after_flush) alive = false;
      if (!alive) drop.push_back(fd);
    }
    for (const int fd : drop) {
      ::close(fd);
      conns_.erase(fd);
    }
  }
  return Expected<void>();
}

}  // namespace neurfill::serve
