#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

namespace neurfill::serve {
namespace {

std::string errno_message() {
  return std::error_code(errno, std::generic_category()).message();
}

[[nodiscard]] Expected<int> connect_fd(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Error(ErrorCode::kIo, "serve.client",
                 "socket() failed: " + errno_message());
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string msg = errno_message();
    ::close(fd);
    return Error(ErrorCode::kIo, "serve.client",
                 "cannot connect to 127.0.0.1:" + std::to_string(port) +
                     ": " + msg);
  }
  return fd;
}

[[nodiscard]] Expected<void> send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error(ErrorCode::kIo, "serve.client",
                   "send() failed: " + errno_message());
    }
    off += static_cast<std::size_t>(n);
  }
  return Expected<void>();
}

}  // namespace

[[nodiscard]] Expected<Client> Client::connect(int port) {
  Expected<int> fd = connect_fd(port);
  if (!fd.ok()) return fd.error();
  return Client(*fd);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

[[nodiscard]] Expected<std::string> Client::request_line(const std::string& line) {
  Expected<void> sent = send_all(fd_, line + "\n");
  if (!sent.ok()) return sent.error();
  for (;;) {
    const std::size_t eol = buf_.find('\n');
    if (eol != std::string::npos) {
      std::string reply = buf_.substr(0, eol);
      buf_.erase(0, eol + 1);
      if (!reply.empty() && reply.back() == '\r') reply.pop_back();
      return reply;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0)
      return Error(ErrorCode::kIo, "serve.client",
                   "daemon closed the connection mid-reply");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error(ErrorCode::kIo, "serve.client",
                   "recv() failed: " + errno_message());
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

[[nodiscard]] Expected<JsonValue> Client::request(const JsonValue& req) {
  Expected<std::string> reply = request_line(json_render(req));
  if (!reply.ok()) return reply.error();
  return json_parse(*reply);
}

[[nodiscard]] Expected<std::string> Client::http_get(int port, const std::string& path) {
  Expected<int> fd = connect_fd(port);
  if (!fd.ok()) return fd.error();
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  Expected<void> sent = send_all(*fd, req);
  if (!sent.ok()) {
    ::close(*fd);
    return sent.error();
  }
  std::string all;
  for (;;) {
    char chunk[4096];
    const ssize_t n = ::recv(*fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    all.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(*fd);
  const std::size_t sep = all.find("\r\n\r\n");
  if (sep == std::string::npos)
    return Error(ErrorCode::kIo, "serve.client",
                 "malformed HTTP response (no header terminator)");
  return all.substr(sep + 4);
}

}  // namespace neurfill::serve
