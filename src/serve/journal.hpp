#pragma once

// Crash-safe write-ahead job journal (docs/serving.md).
//
// One NFCP checkpoint file per job — `<dir>/job_<id>.nfcp`, single "job"
// section — committed through the atomic temp+fsync+rename path, so every
// journaled transition is durable before it takes effect and a SIGKILL at
// any instant leaves either the previous record or the new one, never a
// torn one.  Snapshots of in-flight solves live next to the records as
// `<dir>/<id>.snap` (the nf_fill snapshot machinery), giving a restarted
// daemon mid-attempt resume for free.
//
// Recovery scans the directory once: a record that fails CRC validation or
// parsing is *quarantined* (renamed to `<name>.corrupt`) and skipped — the
// daemon never acts on, or serves, a mangled record.  `tests/
// test_serve.cpp` proves this for a truncation at every byte prefix and a
// bit flip at every byte.
//
// Fault site: `serve.journal_write` fails the record commit (on top of the
// io.short_write/io.rename sites inside the shared atomic-file path).  At
// admission the caller rejects the submission — the write-ahead contract
// forbids accepting a job that is not durable; on later transitions the
// caller logs and continues, losing only that transition's resume
// granularity (docs/robustness.md).

#include <string>
#include <vector>

#include "common/error.hpp"
#include "serve/job.hpp"

namespace neurfill::serve {

class JobJournal {
 public:
  /// Creates `dir` when missing.  Fails with a structured error when the
  /// directory cannot be created or is not writable.
  [[nodiscard]] static Expected<JobJournal> open(const std::string& dir);

  const std::string& dir() const { return dir_; }

  /// Durably records `rec` (atomic commit; NF_FAULT("serve.journal_write")).
  [[nodiscard]] Expected<void> write(const JobRecord& rec) const;

  /// Removes a job's record and snapshot (reaping; best-effort).
  void remove(const std::string& id) const;

  /// The solve-snapshot path that rides next to the record.
  std::string snapshot_path(const std::string& id) const;
  /// The record path for `id`.
  std::string record_path(const std::string& id) const;

  struct Recovery {
    std::vector<JobRecord> records;  ///< every valid record, sorted by id
    std::size_t quarantined = 0;     ///< corrupt files renamed *.corrupt
  };

  /// Scans the journal directory.  Corrupt records are quarantined, never
  /// returned; the daemon re-queues queued/running records and keeps
  /// terminal ones for status queries.
  [[nodiscard]] Expected<Recovery> recover() const;

 private:
  explicit JobJournal(std::string dir) : dir_(std::move(dir)) {}
  std::string dir_;
};

}  // namespace neurfill::serve
