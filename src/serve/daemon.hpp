#pragma once

// The nf_serve daemon assembled from its parts (docs/serving.md): the
// write-ahead journal (serve/journal.hpp), the admission/retry scheduler
// (serve/scheduler.hpp), the job runner (serve/runner.hpp), and the
// protocol Handler the transport loop (serve/server.hpp) drives.
//
// Lifecycle:
//  1. create() opens the journal and replays it: queued and running
//     records re-enter the durable queue (a running record means the
//     previous process died mid-attempt; its solve resumes from the
//     snapshot riding next to the record), terminal records stay
//     queryable, corrupt files are quarantined.
//  2. The transport thread runs Server::run(daemon) while the main thread
//     sits in run_worker(), executing jobs one at a time.
//  3. request_drain() (SIGTERM/SIGINT) closes admission and arms the drain
//     deadline; tick() escalates to interrupt_running() when the deadline
//     expires, so a long solve checkpoints and re-queues instead of
//     holding up the exit.  done() turns true once the worker has parked,
//     the transport loop exits, and the process exits 0 with every
//     accepted job completed or durably checkpointed.
//
// Wire protocol — one JSON object per line:
//   {"op":"submit","design":D,"out":O,"method":M, ...}  -> {"ok":true,"id":I}
//   {"op":"status","id":I}   -> {"ok":true,"job":{...}}
//   {"op":"cancel","id":I}   -> {"ok":true,"cancelled":B}
//   {"op":"ping"}            -> {"ok":true,"draining":B,"queued":N}
//   {"op":"drain"}           -> {"ok":true}  (same path as SIGTERM)
// plus HTTP GET /metrics, /healthz, /jobs/<id>.
// Errors: {"ok":false,"code":"overloaded",...} (docs/robustness.md codes).

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "serve/journal.hpp"
#include "serve/runner.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"

namespace neurfill::serve {

struct DaemonOptions {
  SchedulerOptions scheduler;
  RunnerOptions runner;
  /// Seconds request_drain() waits for the in-flight job before asking it
  /// to checkpoint and stop.
  double drain_deadline_s = 30.0;
};

class Daemon : public Handler {
 public:
  /// Opens (creating if missing) the journal at `journal_dir` and replays
  /// it into the scheduler.
  [[nodiscard]] static Expected<std::unique_ptr<Daemon>> create(
      const DaemonOptions& options, const std::string& journal_dir);

  /// Jobs recovered into the queue by create() (logging/tests).
  std::size_t recovered_jobs() const { return recovered_; }
  std::size_t quarantined_records() const { return quarantined_; }

  /// Occupies the calling thread executing jobs until the drain (or
  /// stop()) completes.
  void run_worker();

  /// SIGTERM/SIGINT path: stop admission, arm the drain deadline.  Safe to
  /// call from any thread; idempotent.  (Not async-signal-safe — signal
  /// handlers set a flag and the tick() loop calls this.)
  void request_drain();

  /// Test/bench escape hatch: park the worker after the current job
  /// without the drain protocol.
  void stop();

  Scheduler& scheduler() { return *scheduler_; }
  JobRunner& runner() { return runner_; }
  const JobJournal& journal() const { return *journal_; }

  // Handler:
  std::string handle_line(const std::string& line) override;
  std::string handle_get(const std::string& path) override;
  void tick() override;
  bool done() const override;

  /// When set, tick() watches the flag and starts the drain once it flips
  /// true — the bridge from a signal handler to the drain protocol.
  void watch_drain_flag(const std::atomic<bool>* flag) { drain_flag_ = flag; }

 private:
  Daemon(const DaemonOptions& options, JobJournal journal);

  std::string handle_submit(const JsonValue& req);
  std::string handle_status(const JsonValue& req);
  std::string handle_cancel(const JsonValue& req);

  DaemonOptions opts_;
  std::unique_ptr<JobJournal> journal_;
  JobRunner runner_;
  std::unique_ptr<Scheduler> scheduler_;
  std::size_t recovered_ = 0;
  std::size_t quarantined_ = 0;
  const std::atomic<bool>* drain_flag_ = nullptr;
  std::atomic<bool> draining_{false};
  std::atomic<bool> drain_escalated_{false};
  std::atomic<bool> worker_parked_{false};
  mutable std::mutex drain_m_;
  Deadline drain_deadline_;  ///< armed by request_drain(); read by tick()
};

}  // namespace neurfill::serve
