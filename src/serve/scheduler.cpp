#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace neurfill::serve {
namespace {

// EMA smoothing for the per-job wall-time estimate that drives the
// predicted-wait admission model.
constexpr double kMeanAlpha = 0.2;

std::string format_job_id(std::uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "j%06llu",
                static_cast<unsigned long long>(n));
  return buf;
}

}  // namespace

double retry_delay_s(int failures, double base_s, double cap_s) {
  if (failures <= 0) return 0.0;
  // 2^(failures-1), saturating well before the cap can overflow.
  double delay = base_s;
  for (int i = 1; i < failures && delay < cap_s; ++i) delay *= 2.0;
  return std::min(delay, cap_s);
}

bool is_recoverable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kIo:
    case ErrorCode::kNonConverged:
    case ErrorCode::kNumericPoison:
    case ErrorCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

Scheduler::Scheduler(SchedulerOptions options, ExecuteFn execute,
                     PersistFn persist, SnapshotPathFn snapshot_path)
    : opts_(options),
      execute_(std::move(execute)),
      persist_(std::move(persist)),
      snapshot_path_(std::move(snapshot_path)) {}

void Scheduler::persist_or_warn(const JobRecord& rec) {
  Expected<void> ok = persist_(rec);
  if (!ok.ok())
    LOG_WARN("serve.scheduler: journal write for job %s failed (%s); "
             "continuing with reduced resume granularity",
             rec.id.c_str(), ok.error().to_string().c_str());
}

[[nodiscard]] Expected<std::string> Scheduler::submit(JobSpec spec) {
  std::lock_guard<std::mutex> lock(m_);
  if (draining_ || stop_) {
    NF_COUNTER_ADD("serve.jobs_rejected", 1);
    return Error(ErrorCode::kOverloaded, "serve.admission",
                 "daemon is draining; not accepting jobs");
  }
  if (spec.design.empty() || spec.out.empty())
    return Error(ErrorCode::kInvalidArgument, "serve.admission",
                 "job spec requires non-empty 'design' and 'out' paths");
  if (queue_.size() >= opts_.queue_capacity) {
    NF_COUNTER_ADD("serve.jobs_rejected", 1);
    return Error(ErrorCode::kOverloaded, "serve.admission",
                 "queue full (" + std::to_string(queue_.size()) + "/" +
                     std::to_string(opts_.queue_capacity) + " jobs waiting)");
  }
  if (records_.size() >= opts_.max_records) {
    NF_COUNTER_ADD("serve.jobs_rejected", 1);
    return Error(ErrorCode::kQueueFull, "serve.admission",
                 "job table full (" + std::to_string(records_.size()) +
                     " records); reap completed jobs first");
  }
  // Load shedding: reject now what the backlog estimate already dooms,
  // instead of queueing it to time out a deadline later.
  const double backlog = static_cast<double>(queue_.size()) +
                         (running_id_.empty() ? 0.0 : 1.0);
  const double predicted_wait_s = backlog * mean_job_s_;
  if (spec.deadline_s > 0.0 && predicted_wait_s > spec.deadline_s) {
    NF_COUNTER_ADD("serve.jobs_rejected", 1);
    return Error(ErrorCode::kOverloaded, "serve.admission",
                 "predicted queue wait " + std::to_string(predicted_wait_s) +
                     "s exceeds the job deadline " +
                     std::to_string(spec.deadline_s) + "s");
  }
  if (opts_.admit_wait_cap_s > 0.0 &&
      predicted_wait_s > opts_.admit_wait_cap_s) {
    NF_COUNTER_ADD("serve.jobs_rejected", 1);
    return Error(ErrorCode::kOverloaded, "serve.admission",
                 "predicted queue wait " + std::to_string(predicted_wait_s) +
                     "s exceeds the admission cap " +
                     std::to_string(opts_.admit_wait_cap_s) + "s");
  }

  Entry e;
  e.rec.id = format_job_id(next_id_);
  e.rec.spec = std::move(spec);
  if (e.rec.spec.max_attempts <= 0)
    e.rec.spec.max_attempts = opts_.default_max_attempts;
  e.rec.state = JobState::kQueued;
  if (e.rec.spec.deadline_s > 0.0)
    e.deadline = Deadline::after_seconds(e.rec.spec.deadline_s);

  // Write-ahead: the job is accepted only once its record is durable.
  Expected<void> journaled = persist_(e.rec);
  if (!journaled.ok()) {
    NF_COUNTER_ADD("serve.jobs_rejected", 1);
    return Error(journaled.error().code, "serve.admission",
                 "cannot journal job before admission: " +
                     journaled.error().to_string());
  }
  ++next_id_;
  const std::string id = e.rec.id;
  queue_.push_back(id);
  records_.emplace(id, std::move(e));
  NF_COUNTER_ADD("serve.jobs_accepted", 1);
  NF_GAUGE_SET("serve.queue_depth", queue_.size());
  cv_.notify_all();
  return id;
}

void Scheduler::restore(JobRecord rec) {
  std::lock_guard<std::mutex> lock(m_);
  // Ids are "j%06u"; keep the counter ahead of everything recovered.
  if (rec.id.size() > 1 && rec.id[0] == 'j') {
    const std::uint64_t n = std::strtoull(rec.id.c_str() + 1, nullptr, 10);
    next_id_ = std::max(next_id_, n + 1);
  }
  Entry e;
  // A record persisted as running means the previous daemon died mid
  // attempt: re-queue it, and let the solve resume from its snapshot.
  if (rec.state == JobState::kRunning) {
    rec.state = JobState::kQueued;
    persist_or_warn(rec);
  }
  const bool runnable = rec.state == JobState::kQueued;
  if (runnable && rec.spec.deadline_s > 0.0)
    e.deadline = Deadline::after_seconds(rec.spec.deadline_s);
  const std::string id = rec.id;
  e.rec = std::move(rec);
  records_.insert_or_assign(id, std::move(e));
  if (runnable) {
    queue_.push_back(id);
    NF_GAUGE_SET("serve.queue_depth", queue_.size());
    cv_.notify_all();
  }
}

bool Scheduler::cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(m_);
  auto it = records_.find(id);
  if (it == records_.end() || it->second.rec.state != JobState::kQueued)
    return false;
  queue_.erase(std::remove(queue_.begin(), queue_.end(), id), queue_.end());
  it->second.rec.state = JobState::kCancelled;
  persist_or_warn(it->second.rec);
  NF_GAUGE_SET("serve.queue_depth", queue_.size());
  return true;
}

bool Scheduler::find(const std::string& id, JobRecord* out) const {
  std::lock_guard<std::mutex> lock(m_);
  auto it = records_.find(id);
  if (it == records_.end()) return false;
  *out = it->second.rec;
  return true;
}

void Scheduler::begin_drain() {
  std::lock_guard<std::mutex> lock(m_);
  draining_ = true;
  cv_.notify_all();
}

bool Scheduler::draining() const {
  std::lock_guard<std::mutex> lock(m_);
  return draining_;
}

void Scheduler::interrupt_running() {
  interrupt_.store(true, std::memory_order_relaxed);
}

void Scheduler::stop() {
  std::lock_guard<std::mutex> lock(m_);
  stop_ = true;
  cv_.notify_all();
}

Scheduler::Stats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(m_);
  Stats s;
  s.queued = queue_.size();
  s.records = records_.size();
  s.running = !running_id_.empty();
  s.draining = draining_;
  return s;
}

bool Scheduler::next_runnable(std::string* id, double* wait_s) {
  *wait_s = std::numeric_limits<double>::infinity();
  for (const std::string& cand : queue_) {
    auto it = records_.find(cand);
    if (it == records_.end()) continue;
    const Deadline& due = it->second.retry_due;
    if (due.is_infinite() || due.expired()) {
      *id = cand;
      return true;
    }
    *wait_s = std::min(*wait_s, due.remaining_seconds());
  }
  return false;
}

void Scheduler::finish_attempt(Entry& e, const Expected<JobOutcome>& result) {
  // Called with the lock held, after the (unlocked) execute returned.
  if (result.ok()) {
    e.rec.state = JobState::kCompleted;
    e.rec.outcome = *result;
    persist_or_warn(e.rec);
    NF_COUNTER_ADD("serve.jobs_completed", 1);
    return;
  }
  const Error& err = result.error();
  if (err.code == ErrorCode::kInterrupted) {
    // Drain checkpoint: the solve wrote its snapshot and stopped.  The job
    // goes back to the durable queue with no attempt consumed, and the
    // restarted daemon resumes it bitwise (docs/serving.md).
    if (!e.rec.attempts.empty()) e.rec.attempts.pop_back();
    e.rec.state = JobState::kQueued;
    persist_or_warn(e.rec);
    queue_.push_front(e.rec.id);
    return;
  }
  const int failures = static_cast<int>(e.rec.attempts.size());
  if (is_recoverable(err.code) && failures < e.rec.spec.max_attempts) {
    e.rec.state = JobState::kQueued;
    persist_or_warn(e.rec);
    e.retry_due = Deadline::after_seconds(
        retry_delay_s(failures, opts_.backoff_base_s, opts_.backoff_cap_s));
    queue_.push_back(e.rec.id);
    NF_COUNTER_ADD("serve.jobs_retried", 1);
    return;
  }
  e.rec.state = JobState::kFailed;
  if (is_recoverable(err.code)) {
    e.rec.final_error =
        Error(ErrorCode::kRetryExhausted, "serve.scheduler",
              std::to_string(failures) + " attempts failed; last: " +
                  err.to_string())
            .to_string();
  } else {
    e.rec.final_error = err.to_string();
  }
  persist_or_warn(e.rec);
  NF_COUNTER_ADD("serve.jobs_failed", 1);
}

void Scheduler::run_worker() {
  std::unique_lock<std::mutex> lock(m_);
  for (;;) {
    if (stop_) return;
    // Drain parks the worker before it can start (or re-start) anything:
    // the in-flight job already got its chance to finish or checkpoint,
    // and every queued job — including one just re-queued by an
    // interrupt-checkpoint — stays durably journaled for the next start.
    if (draining_) return;
    std::string id;
    double wait_s = 0.0;
    if (!next_runnable(&id, &wait_s)) {
      if (std::isinf(wait_s)) {
        cv_.wait(lock);
      } else {
        cv_.wait_for(lock, std::chrono::duration<double>(
                               std::max(wait_s, 1e-3)));
      }
      continue;
    }
    auto it = records_.find(id);
    queue_.erase(std::remove(queue_.begin(), queue_.end(), id), queue_.end());
    NF_GAUGE_SET("serve.queue_depth", queue_.size());
    if (it == records_.end()) continue;
    Entry& e = it->second;

    // Cheap reject: a deadline that expired while the job sat in the queue
    // fails in microseconds instead of starting a doomed solve.
    if (e.deadline.expired()) {
      e.rec.state = JobState::kFailed;
      e.rec.final_error =
          Error(ErrorCode::kDeadlineExceeded, "serve.scheduler",
                "deadline expired while queued")
              .to_string();
      persist_or_warn(e.rec);
      NF_COUNTER_ADD("serve.jobs_failed", 1);
      continue;
    }

    e.rec.state = JobState::kRunning;
    JobAttempt attempt;
    e.rec.attempts.push_back(attempt);
    persist_or_warn(e.rec);
    running_id_ = id;
    interrupt_.store(false, std::memory_order_relaxed);
    const JobRecord rec_copy = e.rec;
    const Deadline deadline = e.deadline;
    const std::string snap = snapshot_path_(id);

    lock.unlock();
    const auto t0 = std::chrono::steady_clock::now();
    Expected<JobOutcome> result = [&]() -> Expected<JobOutcome> {
      NF_TRACE_SPAN("serve.job_run");
      return execute_(rec_copy, deadline, snap, &interrupt_);
    }();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    lock.lock();

    running_id_.clear();
    auto it2 = records_.find(id);
    if (it2 != records_.end()) {
      Entry& e2 = it2->second;
      if (!e2.rec.attempts.empty()) {
        JobAttempt& a = e2.rec.attempts.back();
        a.ok = result.ok();
        a.runtime_s = elapsed_s;
        if (!result.ok()) {
          a.code = result.error().code;
          a.message = result.error().to_string();
        }
      }
      mean_job_s_ = mean_job_s_ <= 0.0
                        ? elapsed_s
                        : (1.0 - kMeanAlpha) * mean_job_s_ +
                              kMeanAlpha * elapsed_s;
      finish_attempt(e2, result);
      NF_GAUGE_SET("serve.queue_depth", queue_.size());
    }
    cv_.notify_all();
  }
}

}  // namespace neurfill::serve
