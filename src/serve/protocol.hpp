#pragma once

// Wire protocol of the nf_serve daemon (docs/serving.md).
//
// Two surfaces share one TCP port:
//  * line-delimited JSON commands — one request object per line, one
//    response object per line, pipelining allowed ({"op":"submit",...},
//    {"op":"status","id":...}, {"op":"cancel","id":...}, {"op":"ping"});
//  * a minimal HTTP/1.0 GET surface for observability (`/metrics`,
//    `/healthz`, `/jobs/<id>`) so a browser or curl can watch a live
//    daemon without a JSON client.
//
// The JSON value model here is deliberately tiny: objects, arrays, strings,
// numbers, booleans, null — everything the job protocol needs and nothing
// more.  Parsing failures are structured kInvalidArgument errors, never
// exceptions, so a malformed request line costs one error reply and the
// connection survives.

#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace neurfill::serve {

/// Minimal JSON document node.  Object keys are kept in sorted order
/// (std::map) so rendering is deterministic.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) != 0;
  }
  /// Typed field accessors with defaults; a missing key or a kind mismatch
  /// returns the fallback (the request validator reports absences).
  std::string get_string(const std::string& key,
                         const std::string& fallback = std::string()) const;
  double get_number(const std::string& key, double fallback = 0.0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;
};

/// Parses one JSON document (the whole string must be consumed apart from
/// trailing whitespace).  Depth- and size-bounded: a hostile request cannot
/// recurse the parser to death.
[[nodiscard]] Expected<JsonValue> json_parse(const std::string& text);

/// Renders `v` compactly (no whitespace), escaping strings per RFC 8259.
std::string json_render(const JsonValue& v);

/// Escapes `s` for embedding in a JSON string literal (no quotes added).
std::string json_escape(const std::string& s);

/// Convenience builders for response assembly.
JsonValue json_string(std::string s);
JsonValue json_number(double n);
JsonValue json_bool(bool b);
JsonValue json_object();

/// One-line error response: {"ok":false,"code":"<name>","error":"<full>"}.
std::string error_reply(const Error& err);

/// Minimal HTTP/1.0 response with Content-Length and Connection: close.
std::string http_response(int status, const std::string& content_type,
                          const std::string& body);

}  // namespace neurfill::serve
