#pragma once

// Job scheduler of the nf_serve daemon (docs/serving.md): admission
// control, a bounded FIFO run queue, retry with deterministic exponential
// backoff, and graceful drain.
//
// Robustness by construction:
//  * Admission rejects cheap-to-reject *early* instead of timing out late:
//    a full queue, a closed (draining) daemon, a job whose deadline the
//    backlog estimate already dooms, or a predicted wait beyond the
//    queue-wide admission cap all return a structured error in
//    microseconds — kOverloaded for backpressure/shedding, kQueueFull for
//    the bounded job table (docs/robustness.md taxonomy).
//  * Every state transition is persisted write-ahead through the injected
//    `persist` callback before it takes effect; a persist failure at
//    admission rejects the submission (an un-journaled job must never be
//    accepted), later failures degrade to a warning.
//  * Retries are *jitter-free*: the backoff delay is the pure function
//    retry_delay_s(attempt) = min(base * 2^(attempt-1), cap), so a retry
//    schedule is reproducible from the attempt history alone.
//  * The worker loop runs jobs one at a time — each solve parallelizes
//    internally through the deterministic runtime pool, which keeps
//    results independent of daemon load (bitwise the same as nf_fill).
//
// Threading: every public method is safe to call from any thread (one
// mutex); run_worker() occupies its calling thread until stop() or a
// completed drain.  The scheduler itself spawns no threads — the daemon's
// transport thread lives in tools/nf_serve.cpp.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "serve/job.hpp"

namespace neurfill::serve {

/// The deterministic retry schedule: min(base * 2^(failures-1), cap)
/// seconds before attempt `failures + 1`.  Pure — no jitter, no clock.
double retry_delay_s(int failures, double base_s, double cap_s);

/// True when a failed attempt with this code should be retried (transient
/// I/O, degraded numerics); permanent input errors and expired deadlines
/// fail the job immediately.
bool is_recoverable(ErrorCode code);

struct SchedulerOptions {
  std::size_t queue_capacity = 32;  ///< waiting jobs before backpressure
  std::size_t max_records = 4096;   ///< tracked records before kQueueFull
  int default_max_attempts = 3;
  double backoff_base_s = 0.25;
  double backoff_cap_s = 30.0;
  /// Queue-wide admission deadline: when > 0, a submission whose predicted
  /// queue wait (backlog x mean job seconds) exceeds this is shed with
  /// kOverloaded even if the job itself carries no deadline.
  double admit_wait_cap_s = 0.0;
};

class Scheduler {
 public:
  /// `execute` runs one attempt (blocking; internally parallel) and returns
  /// the outcome or a structured error.  `persist` durably journals a
  /// record and is called with the scheduler mutex HELD — it must not call
  /// back into the scheduler.
  using ExecuteFn = std::function<Expected<JobOutcome>(
      const JobRecord& rec, const Deadline& deadline,
      const std::string& snapshot_path, const std::atomic<bool>* interrupt)>;
  using PersistFn = std::function<Expected<void>(const JobRecord& rec)>;
  /// Maps a job id to its solve-snapshot path (journal layout).
  using SnapshotPathFn = std::function<std::string(const std::string& id)>;

  Scheduler(SchedulerOptions options, ExecuteFn execute, PersistFn persist,
            SnapshotPathFn snapshot_path);

  /// Admission.  On success the job is journaled, queued, and its id
  /// returned; on rejection nothing is retained.
  [[nodiscard]] Expected<std::string> submit(JobSpec spec);

  /// Re-installs a recovered record: queued/running records re-enter the
  /// queue (a running record means the previous process died mid-attempt),
  /// terminal ones stay queryable.  Call before run_worker().
  void restore(JobRecord rec);

  /// Cancels a queued job (running jobs are not preempted).  False when
  /// the id is unknown or the job is not queued.
  bool cancel(const std::string& id);

  /// Snapshot of a job record; false when the id is unknown.
  bool find(const std::string& id, JobRecord* out) const;

  /// Stops admission; run_worker returns once the running job has finished
  /// (or checkpointed, once interrupt_running() fires at the drain
  /// deadline).  Queued jobs stay durably journaled for the next start.
  void begin_drain();
  bool draining() const;

  /// Asks the in-flight solve to checkpoint and stop (the drain-deadline
  /// path; pkb/mm write a final snapshot and re-queue).
  void interrupt_running();

  /// Blocks running jobs until stop() or a completed drain.
  void run_worker();

  /// Immediate stop for tests: the worker returns after the current job.
  void stop();

  struct Stats {
    std::size_t queued = 0;
    std::size_t records = 0;
    bool running = false;
    bool draining = false;
  };
  Stats stats() const;

 private:
  struct Entry {
    JobRecord rec;
    Deadline deadline;   ///< armed at admission from spec.deadline_s
    Deadline retry_due;  ///< infinite = runnable now
  };

  /// Journals with the lock held; admission failures propagate, later
  /// transitions degrade to a warning (docs/serving.md).
  void persist_or_warn(const JobRecord& rec);
  /// Picks the first runnable queued id, honoring retry_due.  Returns
  /// false when none is runnable; *wait_s is the seconds until the nearest
  /// retry becomes due (infinity when the queue is empty).
  bool next_runnable(std::string* id, double* wait_s);
  void finish_attempt(Entry& e, const Expected<JobOutcome>& result);

  SchedulerOptions opts_;
  ExecuteFn execute_;
  PersistFn persist_;
  SnapshotPathFn snapshot_path_;

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::map<std::string, Entry> records_;
  std::deque<std::string> queue_;
  std::uint64_t next_id_ = 1;
  std::string running_id_;
  bool draining_ = false;
  bool stop_ = false;
  double mean_job_s_ = 0.0;  ///< EMA of attempt wall time (admission model)
  std::atomic<bool> interrupt_{false};
};

}  // namespace neurfill::serve
