#pragma once

// Minimal blocking loopback client for the nf_serve daemon: the test
// suite's and bench's way to speak the line-delimited JSON protocol and
// the GET surface without shelling out.  One connection per Client;
// requests are synchronous (send one line, read one line).  Not part of
// the daemon's own robustness surface — failures come back as structured
// errors and the caller decides.

#include <string>

#include "common/error.hpp"
#include "serve/protocol.hpp"

namespace neurfill::serve {

class Client {
 public:
  /// Connects to 127.0.0.1:`port`.
  [[nodiscard]] static Expected<Client> connect(int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request line and reads one reply line.
  [[nodiscard]] Expected<std::string> request_line(const std::string& line);

  /// request_line + JSON parsing of the reply.
  [[nodiscard]] Expected<JsonValue> request(const JsonValue& req);

  /// One-shot HTTP GET on a fresh connection (the daemon closes after a
  /// GET); returns the body, dropping status line and headers.
  [[nodiscard]] static Expected<std::string> http_get(int port,
                                                      const std::string& path);

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
  std::string buf_;  ///< bytes read past the last returned line
};

}  // namespace neurfill::serve
