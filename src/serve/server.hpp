#pragma once

// The transport of the nf_serve daemon (docs/serving.md): a single-threaded
// poll() event loop over one loopback listening socket, speaking two
// protocols sniffed from the first bytes of each connection:
//  * line-delimited JSON — one request object per line, one reply line per
//    request, connections stay open for pipelining;
//  * minimal HTTP GET (HTTP/1.0, Connection: close) — for /metrics,
//    /healthz and /jobs/<id>, so a curl or a scraper needs no client.
//
// Robustness by construction: every fd is non-blocking, so one stalled
// client can never wedge the daemon; per-connection input and output
// buffers are capped (an over-long line is answered with a structured
// error and the connection dropped); accept/read/write errors degrade to
// dropping that one connection.  The loop calls Handler::tick() every poll
// timeout (~50 ms), which is where drain-deadline bookkeeping lives — the
// transport itself never blocks longer than one tick.
//
// Fault sites (docs/robustness.md): `serve.accept` fails an incoming
// accept (the daemon logs and keeps serving); `serve.reply_short_write`
// truncates a reply mid-write and drops the connection (the client sees a
// torn reply; job state is untouched because replies are written only
// after the journal commit).

#include <cstddef>
#include <map>
#include <string>

#include "common/error.hpp"

namespace neurfill::serve {

/// What the daemon plugs into the event loop.  Handlers run on the loop
/// thread; they must not block (job execution happens on the worker).
class Handler {
 public:
  virtual ~Handler() = default;
  /// One JSON request line (without the newline) -> one reply line.
  virtual std::string handle_line(const std::string& line) = 0;
  /// One HTTP GET -> a complete HTTP response (see http_response()).
  virtual std::string handle_get(const std::string& path) = 0;
  /// Called once per poll timeout; drain bookkeeping lives here.
  virtual void tick() = 0;
  /// True once the loop should exit (drain finished / fatal).
  virtual bool done() const = 0;
};

class Server {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral).  When
  /// `port_file` is non-empty the bound port is published there via the
  /// atomic write path, so scripts can wait for the file and race nothing.
  [[nodiscard]] static Expected<Server> listen(int port,
                                               const std::string& port_file);

  Server(Server&& other) noexcept;
  Server& operator=(Server&&) = delete;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  int port() const { return port_; }

  /// Runs the event loop until handler.done().  Returns an error only for
  /// a fatal transport failure (the listening socket dying); per-
  /// connection failures are handled inside the loop.
  [[nodiscard]] Expected<void> run(Handler& handler);

 private:
  explicit Server(int listen_fd, int port)
      : listen_fd_(listen_fd), port_(port) {}

  struct Conn {
    std::string in;
    std::string out;
    bool http = false;         ///< sniffed "GET " prefix
    bool close_after_flush = false;
  };

  void accept_new();
  /// False when the connection should be dropped.
  bool read_some(int fd, Conn& c, Handler& handler);
  bool write_some(int fd, Conn& c);

  int listen_fd_ = -1;
  int port_ = 0;
  std::map<int, Conn> conns_;
};

}  // namespace neurfill::serve
