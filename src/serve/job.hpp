#pragma once

// Job model of the nf_serve daemon (docs/serving.md).
//
// A job is one fill/simulate request: a design in, an artifact out, a
// method, and robustness budgets (deadline, attempts).  The JobRecord is
// the single source of truth for a job's lifecycle; every state transition
// is journaled (serve/journal.hpp) *before* it takes effect, so a SIGKILL
// at any instant leaves a record the restarted daemon can act on.
//
// Lifecycle state machine:
//
//   queued ──start──▶ running ──ok──▶ completed
//     ▲                 │ recoverable error, attempts left
//     └──retry/backoff──┘
//                       │ attempts exhausted / permanent error ──▶ failed
//   queued ──cancel──▶ cancelled
//
// A `running` record on disk means the daemon died mid-attempt: recovery
// re-queues it, and the solve resumes from its snapshot (bitwise-identical
// results, the PR-5 contract).

#include <cstdint>
#include <string>
#include <vector>

#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "serve/protocol.hpp"

namespace neurfill::serve {

/// What the client asked for.  Paths are daemon-side (the daemon and its
/// clients share a filesystem, the chiploop-style job-dir contract).
struct JobSpec {
  std::string design;     ///< input GLF path
  std::string out;        ///< output GLF path (written atomically)
  std::string method;     ///< lin | tao | cai | pkb | mm
  std::string surrogate;  ///< weight prefix ("" = daemon default)
  double window_um = 100.0;
  double deadline_s = 0.0;  ///< per-job wall budget from admission (0 = none)
  int max_attempts = 0;     ///< 0 = daemon default
};

enum class JobState : std::uint32_t {
  kQueued = 0,
  kRunning = 1,
  kCompleted = 2,
  kFailed = 3,
  kCancelled = 4,
};

const char* job_state_name(JobState s);

/// One execution attempt: how it ended.  `code` is meaningful only when
/// `ok` is false.
struct JobAttempt {
  bool ok = false;
  ErrorCode code = ErrorCode::kIo;
  std::string message;   ///< structured one-liner (Error::to_string)
  double runtime_s = 0.0;
};

/// Result summary of a completed job (mirrors the nf_fill stderr line).
struct JobOutcome {
  std::uint64_t dummies = 0;
  double runtime_s = 0.0;
  std::int64_t evaluations = 0;
  bool timed_out = false;
  bool degraded = false;
};

/// The durable job record: spec + state + attempt history + outcome.
struct JobRecord {
  std::string id;  ///< "j000001"-style, assigned at admission
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::vector<JobAttempt> attempts;
  JobOutcome outcome;       ///< valid when state == kCompleted
  std::string final_error;  ///< valid when state == kFailed

  /// Serialization into one NFCP "job" section payload and back.  The
  /// reader validates the format version and rejects trailing bytes, so a
  /// record that passed the container's CRC still cannot half-parse.
  std::vector<char> serialize() const;
  [[nodiscard]] static Expected<JobRecord> deserialize(
      const std::vector<char>& payload);

  /// Client-facing JSON rendering (status replies, the /jobs/<id> page).
  JsonValue to_json() const;
};

}  // namespace neurfill::serve
