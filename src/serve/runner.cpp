#include "serve/runner.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <utility>

#include "common/checkpoint.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "fill/neurfill.hpp"
#include "geom/glf_io.hpp"
#include "layout/fill_insertion.hpp"
#include "obs/metrics.hpp"
#include "surrogate/trainer.hpp"

namespace neurfill::serve {
namespace {

/// FNV-1a over the file's bytes; 0 when the file cannot be read (callers
/// treat that as a mandatory cache miss).
std::uint64_t fnv1a_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::uint64_t h = 1469598103934665603ull;
  char buf[4096];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    const std::streamsize n = in.gcount();
    for (std::streamsize i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(buf[i]);
      h *= 1099511628211ull;
    }
    if (n < static_cast<std::streamsize>(sizeof(buf))) break;
  }
  return h;
}

bool known_method(const std::string& m) {
  return m == "lin" || m == "tao" || m == "cai" || m == "pkb" || m == "mm";
}

}  // namespace

std::size_t JobRunner::surrogate_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_m_);
  return cache_.size();
}

[[nodiscard]] Expected<std::shared_ptr<CmpSurrogate>> JobRunner::surrogate_for(
    const std::string& prefix, const WindowExtraction& ext,
    const CmpSimulator& sim) {
  const std::string weights = prefix + ".weights";
  struct stat st{};
  const bool on_disk = ::stat(weights.c_str(), &st) == 0;
  // Quick-trained fallbacks are keyed per plane size: the training windows
  // follow the design's extraction grid.
  const std::string key =
      on_disk ? prefix
              : prefix + "#quicktrain:" + std::to_string(ext.rows) + "x" +
                    std::to_string(ext.cols);
  const std::int64_t mtime = on_disk ? static_cast<std::int64_t>(st.st_mtime)
                                     : 0;
  const std::uint64_t size = on_disk ? static_cast<std::uint64_t>(st.st_size)
                                     : 0;
  const std::uint64_t hash = on_disk ? fnv1a_file(weights) : 0;
  {
    std::lock_guard<std::mutex> lock(cache_m_);
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.mtime == mtime &&
        it->second.size == size && it->second.hash == hash &&
        (!on_disk || hash != 0)) {
      NF_COUNTER_ADD("serve.surrogate_cache_hits", 1);
      return it->second.surrogate;
    }
  }
  NF_COUNTER_ADD("serve.surrogate_cache_misses", 1);

  std::shared_ptr<CmpSurrogate> surrogate;
  Expected<std::shared_ptr<CmpSurrogate>> loaded = load_surrogate(prefix);
  if (loaded.ok()) {
    surrogate = std::move(*loaded);
  } else if (loaded.error().code != ErrorCode::kNotFound) {
    // Present but unreadable/corrupt weights are a hard input error.
    return loaded.error();
  } else {
    // The documented quick-train fallback: a reduced surrogate trained on
    // the fly, deterministic (fixed seed + the deterministic pool), so
    // every daemon restart re-derives the same weights.
    LOG_WARN("serve.runner: no surrogate at '%s'; training a reduced one",
             prefix.c_str());
    SurrogateConfig cfg;
    cfg.unet.base_channels = 8;
    cfg.unet.depth = 2;
    surrogate = std::make_shared<CmpSurrogate>(cfg, 5);
    TrainingDataGenerator gen({ext}, sim, 17, 4);
    TrainOptions opt;
    opt.epochs = opts_.quicktrain_epochs;
    opt.dataset_size = opts_.quicktrain_dataset;
    opt.grid_rows = ext.rows;
    opt.grid_cols = ext.cols;
    train_surrogate(*surrogate, gen, opt);
  }
  surrogate->set_fast_inference(opts_.fast_inference);
  std::lock_guard<std::mutex> lock(cache_m_);
  cache_[key] = CachedSurrogate{mtime, size, hash, surrogate};
  return surrogate;
}

[[nodiscard]] Expected<JobOutcome> JobRunner::run(const JobRecord& rec,
                                    const Deadline& deadline,
                                    const std::string& snapshot_path,
                                    const std::atomic<bool>* interrupt) {
  if (NF_FAULT("serve.worker_crash"))
    return Error(ErrorCode::kIo, "serve.runner",
                 "injected worker crash on job " + rec.id);
  const JobSpec& spec = rec.spec;
  if (!known_method(spec.method))
    return Error(ErrorCode::kInvalidArgument, "serve.runner",
                 "unknown method '" + spec.method +
                     "' (expected lin|tao|cai|pkb|mm)");
  try {
    Layout layout = read_glf_file(spec.design);
    ExtractOptions eopt;
    eopt.window_um = spec.window_um;
    const WindowExtraction ext = extract_windows(layout, eopt);
    CmpProcessParams params;
    params.window_um = eopt.window_um;
    CmpSimulator sim(params);
    const ScoreCoefficients coeffs = make_coefficients(layout, ext, sim);
    FillProblem problem(ext, sim, coeffs);

    FillRunResult result;
    if (spec.method == "lin") {
      result = lin_rule_fill(problem);
    } else if (spec.method == "tao") {
      TaoOptions topt;
      topt.sqp.deadline = deadline;
      if (opts_.sqp_max_iterations > 0)
        topt.sqp.max_iterations = opts_.sqp_max_iterations;
      result = tao_rule_sqp(problem, topt);
    } else if (spec.method == "cai") {
      CaiOptions copt;
      copt.sqp.deadline = deadline;
      if (opts_.sqp_max_iterations > 0)
        copt.sqp.max_iterations = opts_.sqp_max_iterations;
      result = cai_model_fill(problem, copt);
    } else {  // pkb or mm
      const std::string prefix =
          spec.surrogate.empty() ? opts_.default_surrogate : spec.surrogate;
      Expected<std::shared_ptr<CmpSurrogate>> surrogate =
          surrogate_for(prefix, ext, sim);
      if (!surrogate.ok()) return surrogate.error();
      CmpNetwork network(*surrogate, ext, coeffs);
      calibrate_network(network, problem);
      NeurFillOptions nopt;
      nopt.deadline = deadline;
      nopt.snapshot_path = snapshot_path;
      nopt.snapshot_every = opts_.snapshot_every;
      nopt.interrupt = interrupt;
      if (opts_.sqp_max_iterations > 0)
        nopt.sqp.max_iterations = opts_.sqp_max_iterations;
      if (opts_.pkb_steps > 0) nopt.pkb_steps = opts_.pkb_steps;
      if (opts_.nmmso_max_evaluations > 0)
        nopt.nmmso.max_evaluations = opts_.nmmso_max_evaluations;
      if (opts_.mm_starts > 0) nopt.mm_starts = opts_.mm_starts;
      if (!snapshot_path.empty()) {
        // Resume from an earlier attempt's snapshot when one exists; a
        // snapshot that fails CRC validation is quarantined and the solve
        // restarts fresh — deterministically, so the artifact is still
        // byte-identical to an uninterrupted run.
        struct stat st{};
        if (::stat(snapshot_path.c_str(), &st) == 0) {
          Expected<CheckpointReader> probe =
              CheckpointReader::open(snapshot_path);
          if (probe.ok()) {
            nopt.resume = true;
          } else {
            LOG_WARN("serve.runner: snapshot '%s' is corrupt (%s); "
                     "re-solving job %s from scratch",
                     snapshot_path.c_str(),
                     probe.error().to_string().c_str(), rec.id.c_str());
            std::remove(snapshot_path.c_str());
          }
        }
      }
      result = spec.method == "pkb" ? neurfill_pkb(problem, network, nopt)
                                    : neurfill_mm(problem, network, nopt);
    }

    JobOutcome outcome;
    outcome.dummies = insert_dummies(layout, ext, result.x);
    write_glf_file(spec.out, layout);
    outcome.runtime_s = result.runtime_s;
    outcome.evaluations = result.objective_evaluations;
    outcome.timed_out = result.timed_out;
    outcome.degraded = result.degraded;
    return outcome;
  } catch (const ErrorException& e) {
    return e.err;
  } catch (const std::exception& e) {
    return Error(ErrorCode::kIo, "serve.runner",
                 std::string("unstructured failure: ") + e.what());
  }
}

}  // namespace neurfill::serve
