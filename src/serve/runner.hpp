#pragma once

// Job execution for the nf_serve daemon: one JobRecord in, one fill
// artifact out (docs/serving.md).
//
// The runner mirrors the nf_fill tool path — read GLF, extract windows,
// solve with the requested method, insert dummies, write the output
// atomically — with the daemon-grade robustness wrapped around it:
//  * pkb/mm solves snapshot to the journal-adjacent `<id>.snap` path and
//    *resume* from it, so a SIGKILL mid-attempt costs only the work since
//    the last snapshot and the restarted result is bitwise identical
//    (tests/serve_kill_restart_test.sh).  A snapshot that fails CRC
//    validation is quarantined (unlinked after a warning) and the solve
//    restarts fresh — deterministically, so the artifact is still
//    byte-identical to an uninterrupted run.
//  * Surrogate weights are cached across jobs keyed by (path, mtime, size,
//    content hash): a daemon serving many jobs against one frozen
//    surrogate loads and verifies it once, and an updated weight file on
//    disk naturally misses.  Counters: serve.surrogate_cache_hits/_misses.
//  * Every failure — missing design, corrupt weights, poisoned solve — is
//    returned as a structured nf::Error for the scheduler's retry policy;
//    nothing escapes as an uncaught exception.
//
// Fault site: `serve.worker_crash` fails an attempt at its start with a
// recoverable kIo error, exercising the retry/backoff path end to end.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "cmp/simulator.hpp"
#include "common/deadline.hpp"
#include "common/error.hpp"
#include "serve/job.hpp"
#include "surrogate/cmp_network.hpp"

namespace neurfill::serve {

struct RunnerOptions {
  /// Surrogate weight prefix used when a job does not name one.
  std::string default_surrogate = "data/unet_cmp";
  bool fast_inference = true;
  int snapshot_every = 1;  ///< SQP iterations between mid-start snapshots
  /// Optimization budget overrides, 0 = library default.  Tests and the
  /// serve bench shrink these so a job takes milliseconds, not minutes.
  int sqp_max_iterations = 0;
  int pkb_steps = 0;
  int nmmso_max_evaluations = 0;
  int mm_starts = 0;
  /// Quick-train fallback budget when no surrogate exists on disk
  /// (mirrors nf_fill's reduced on-the-fly surrogate).
  int quicktrain_epochs = 6;
  int quicktrain_dataset = 60;
};

class JobRunner {
 public:
  explicit JobRunner(RunnerOptions options) : opts_(std::move(options)) {}

  /// Runs one attempt of `rec` to completion (blocking; internally
  /// parallel through the runtime pool).  `snapshot_path` is where a
  /// pkb/mm solve checkpoints and resumes; `interrupt`, when it flips
  /// true, checkpoints and returns kInterrupted (the drain path).
  [[nodiscard]] Expected<JobOutcome> run(const JobRecord& rec,
                                         const Deadline& deadline,
                                         const std::string& snapshot_path,
                                         const std::atomic<bool>* interrupt);

  /// Cache statistics (tests).
  std::size_t surrogate_cache_size() const;

 private:
  struct CachedSurrogate {
    std::int64_t mtime = 0;
    std::uint64_t size = 0;
    std::uint64_t hash = 0;  ///< FNV-1a over the .weights bytes
    std::shared_ptr<CmpSurrogate> surrogate;
  };

  /// Loads (or quick-trains) the surrogate for `prefix`, through the
  /// keyed cache.  `rows`/`cols` size the quick-train fallback.
  [[nodiscard]] Expected<std::shared_ptr<CmpSurrogate>> surrogate_for(
      const std::string& prefix, const WindowExtraction& ext,
      const CmpSimulator& sim);

  RunnerOptions opts_;
  mutable std::mutex cache_m_;
  std::map<std::string, CachedSurrogate> cache_;
};

}  // namespace neurfill::serve
