#include "serve/protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace neurfill::serve {
namespace {

constexpr int kMaxDepth = 16;  // the protocol is ~2 levels deep in practice

struct Parser {
  const std::string& s;
  std::size_t pos = 0;
  bool failed = false;
  std::string why;

  void fail(std::string message) {
    if (!failed) {
      failed = true;
      why = std::move(message) + " at byte " + std::to_string(pos);
    }
  }
  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                              s[pos] == '\r' || s[pos] == '\n'))
      ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    std::size_t i = 0;
    while (word[i] != '\0') {
      if (pos + i >= s.size() || s[pos + i] != word[i]) return false;
      ++i;
    }
    pos += i;
    return true;
  }

  JsonValue value(int depth) {
    JsonValue v;
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return v;
    }
    skip_ws();
    if (pos >= s.size()) {
      fail("unexpected end of input");
      return v;
    }
    const char c = s[pos];
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.string = string_body();
      return v;
    }
    if (literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (literal("null")) return v;
    return number_value();
  }

  JsonValue object(int depth) {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    eat('{');
    skip_ws();
    if (eat('}')) return v;
    while (!failed) {
      skip_ws();
      if (pos >= s.size() || s[pos] != '"') {
        fail("expected object key");
        break;
      }
      std::string key = string_body();
      if (!eat(':')) {
        fail("expected ':' after key");
        break;
      }
      v.object[key] = value(depth + 1);
      if (eat(',')) continue;
      if (eat('}')) break;
      fail("expected ',' or '}'");
    }
    return v;
  }

  JsonValue array(int depth) {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    eat('[');
    skip_ws();
    if (eat(']')) return v;
    while (!failed) {
      v.array.push_back(value(depth + 1));
      if (eat(',')) continue;
      if (eat(']')) break;
      fail("expected ',' or ']'");
    }
    return v;
  }

  std::string string_body() {
    std::string out;
    ++pos;  // opening quote
    while (pos < s.size()) {
      const char c = s[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= s.size()) break;
        const char e = s[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Basic-multilingual-plane escapes only; enough for the paths
            // and method names the protocol carries.  Encoded as UTF-8.
            if (pos + 4 > s.size()) {
              fail("truncated \\u escape");
              return out;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape digit");
                return out;
              }
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
            return out;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return out;
  }

  JsonValue number_value() {
    JsonValue v;
    const char* start = s.c_str() + pos;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start || !std::isfinite(d)) {
      fail("expected a JSON value");
      return v;
    }
    pos += static_cast<std::size_t>(end - start);
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }
};

void render_to(const JsonValue& v, std::string& out) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      out += "null";
      break;
    case JsonValue::Kind::kBool:
      out += v.boolean ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber: {
      char buf[32];
      // Integral values render without a fraction so ids/counters stay
      // readable; everything else gets round-trippable precision.
      if (v.number == static_cast<double>(static_cast<long long>(v.number)) &&
          std::abs(v.number) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v.number));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v.number);
      }
      out += buf;
      break;
    }
    case JsonValue::Kind::kString:
      out += '"';
      out += json_escape(v.string);
      out += '"';
      break;
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& kv : v.object) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(kv.first);
        out += "\":";
        render_to(kv.second, out);
      }
      out += '}';
      break;
    }
    case JsonValue::Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i != 0) out += ',';
        render_to(v.array[i], out);
      }
      out += ']';
      break;
    }
  }
}

}  // namespace

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = object.find(key);
  if (it == object.end() || it->second.kind != Kind::kString) return fallback;
  return it->second.string;
}

double JsonValue::get_number(const std::string& key, double fallback) const {
  const auto it = object.find(key);
  if (it == object.end() || it->second.kind != Kind::kNumber) return fallback;
  return it->second.number;
}

bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  const auto it = object.find(key);
  if (it == object.end() || it->second.kind != Kind::kBool) return fallback;
  return it->second.boolean;
}

[[nodiscard]] Expected<JsonValue> json_parse(const std::string& text) {
  Parser p{text, 0, false, std::string()};
  JsonValue v = p.value(0);
  p.skip_ws();
  if (!p.failed && p.pos != text.size()) p.fail("trailing bytes after value");
  if (p.failed)
    return Error(ErrorCode::kInvalidArgument, "serve.protocol",
                 "malformed JSON: " + p.why);
  return v;
}

std::string json_render(const JsonValue& v) {
  std::string out;
  render_to(v, out);
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonValue json_string(std::string s) {
  JsonValue v;
  v.kind = JsonValue::Kind::kString;
  v.string = std::move(s);
  return v;
}

JsonValue json_number(double n) {
  JsonValue v;
  v.kind = JsonValue::Kind::kNumber;
  v.number = n;
  return v;
}

JsonValue json_bool(bool b) {
  JsonValue v;
  v.kind = JsonValue::Kind::kBool;
  v.boolean = b;
  return v;
}

JsonValue json_object() {
  JsonValue v;
  v.kind = JsonValue::Kind::kObject;
  return v;
}

std::string error_reply(const Error& err) {
  JsonValue v = json_object();
  v.object["ok"] = json_bool(false);
  v.object["code"] = json_string(error_code_name(err.code));
  v.object["error"] = json_string(err.to_string());
  return json_render(v);
}

std::string http_response(int status, const std::string& content_type,
                          const std::string& body) {
  const char* reason = status == 200 ? "OK"
                       : status == 404 ? "Not Found"
                       : status == 400 ? "Bad Request"
                                       : "Internal Server Error";
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace neurfill::serve
