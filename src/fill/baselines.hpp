#pragma once

#include <string>

#include "fill/problem.hpp"
#include "opt/sqp.hpp"

namespace neurfill {

/// Outcome of one filling method run, with the bookkeeping Table III needs.
struct FillRunResult {
  std::string method;
  std::vector<GridD> x;
  double runtime_s = 0.0;
  int iterations = 0;
  long objective_evaluations = 0;  ///< simulator or network calls
  /// The run deadline expired before the optimization finished; x is the
  /// honest best feasible fill found so far (docs/robustness.md).
  bool timed_out = false;
  /// Numeric poison (NaN/Inf) was survived along the way — backtracked,
  /// dropped, or degraded to a fallback — so quality may be reduced.
  bool degraded = false;
  int numeric_recoveries = 0;  ///< poisoned evaluations recovered in SQP
};

/// Lin [10]-style rule-based filler: a linear search of the per-layer target
/// density picks the density assignment minimizing post-fill density
/// variance with minimum fill as tie-break, then Eq. 18 realizes it.  Pure
/// rule: no CMP simulation at all, which is why it runs in seconds and why
/// its planarity lags the model-based methods.
FillRunResult lin_rule_fill(const FillProblem& problem, int steps = 33);

/// Tao [11]-style rule-based SQP: minimizes a rule objective (density
/// variance + spatial density gradient + fill amount) with analytic
/// gradients using the same SQP engine, starting from the Lin solution.
struct TaoOptions {
  double weight_variance = 1.0;
  double weight_gradient = 0.25;
  double weight_fill = 0.02;
  SqpOptions sqp;
};
FillRunResult tao_rule_sqp(const FillProblem& problem,
                           const TaoOptions& options = TaoOptions());

/// Cai [12]-style model-based flow: PKB starting point judged by the true
/// simulator, then SQP where each gradient is obtained **numerically**
/// through the full-chip CMP simulator (one simulation per variable) — the
/// conventional expensive flow NeurFill accelerates.
struct CaiOptions {
  int pkb_steps = 5;
  SqpOptions sqp;  ///< keep max_iterations small; gradients cost n sims each
  CaiOptions() { sqp.max_iterations = 6; }
};
FillRunResult cai_model_fill(const FillProblem& problem,
                             const CaiOptions& options = CaiOptions());

}  // namespace neurfill
