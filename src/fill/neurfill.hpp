#pragma once

#include <atomic>
#include <string>

#include "common/deadline.hpp"
#include "fill/baselines.hpp"
#include "fill/problem.hpp"
#include "opt/nmmso.hpp"
#include "opt/sqp.hpp"
#include "surrogate/cmp_network.hpp"

namespace neurfill {

/// Options of the NeurFill framework (Fig. 7).
struct NeurFillOptions {
  SqpOptions sqp;
  int pkb_steps = 9;      ///< linear-search samples of the PKB start
  NmmsoOptions nmmso;     ///< multi-modal search budget (MM variant)
  int mm_starts = 4;      ///< top modes refined by MSP-SQP
  /// Wall-clock budget for the whole optimization (docs/robustness.md):
  /// expiry stops the MSP drive and returns the best feasible fill with
  /// FillRunResult::timed_out set.
  Deadline deadline;
  /// When non-empty, the MSP drive state is snapshotted here (atomically,
  /// CRC-checksummed) at every completed start and every snapshot_every-th
  /// SQP iteration, so a killed run can continue with --resume.
  std::string snapshot_path;
  int snapshot_every = 1;  ///< SQP iterations between mid-start snapshots
  /// Continue from snapshot_path (missing file = fresh run; a mismatched
  /// method/dimension or corrupt snapshot throws ErrorException).  Resumed
  /// runs produce bitwise-identical fills to uninterrupted ones.
  bool resume = false;
  /// Operator interrupt (borrowed, e.g. from a SIGINT handler): a final
  /// snapshot is written (when snapshot_path is set) and
  /// ErrorException(kInterrupted) is thrown.
  const std::atomic<bool>* interrupt = nullptr;
  NeurFillOptions() {
    sqp.max_iterations = 40;
    nmmso.max_evaluations = 400;
  }
};

/// Anchors the network's relaxed planarity metrics to the true simulator on
/// two fills (zero and full slack): fits a log-space power correction
/// (exp(a) * raw^b) per metric through the two anchor points and installs
/// it on the network.  Costs exactly two simulator runs; exponents are
/// clamped to [0.1, 10] so a degenerate anchor pair (or a surrogate blind
/// to fill) cannot flip or explode the gradients.  Rationale: the
/// surrogate's height-prediction error adds a nearly fill-independent bias
/// to the quadratic sigma metric, which distorts the planarity-vs-PD trade
/// even when the gradients are sound; the anchored correction restores the
/// absolute scale while preserving monotonicity.
void calibrate_network(CmpNetwork& network, const FillProblem& problem);

/// The differentiable objective of the framework: value = -(S_plan + S_PD)
/// where S_plan and grad(S_plan) come from one forward/backward pass of the
/// CMP neural network (Eq. 11) and S_PD and grad(S_PD) are analytic
/// (Eq. 17).  `eval_counter`, when non-null, counts network evaluations.
ObjectiveFn make_network_objective(const FillProblem& problem,
                                   const CmpNetwork& network,
                                   long* eval_counter = nullptr);

/// Batched, value-only counterpart of make_network_objective: all B
/// candidate points go through one CmpNetwork::evaluate_batch call (one
/// batched UNet forward per layer) plus per-candidate analytic PD scores.
/// Returns exactly the values the scalar objective would for the same
/// points — NMMSO installs this via set_batch_objective and mixes it with
/// scalar calls.  `eval_counter` advances by B per call.
BatchObjectiveFn make_network_batch_objective(const FillProblem& problem,
                                              const CmpNetwork& network,
                                              long* eval_counter = nullptr);

/// NeurFill (PKB): prior-knowledge-based starting point (judged by the
/// network's quality) followed by SQP with backward-propagation gradients.
FillRunResult neurfill_pkb(const FillProblem& problem,
                           const CmpNetwork& network,
                           const NeurFillOptions& options = NeurFillOptions());

/// NeurFill (MM): NMMSO multi-modal starting-points search over the quality
/// landscape, then MSP-SQP refinement of the best modes; returns the best
/// local optimum found (Section IV-D/E).
FillRunResult neurfill_mm(const FillProblem& problem, const CmpNetwork& network,
                          const NeurFillOptions& options = NeurFillOptions());

}  // namespace neurfill
