#pragma once

#include <string>

namespace neurfill {

/// Benchmark-related score-function coefficients (Table II of the paper).
/// Every objective t is folded into a score by f(t) = max(0, 1 - t/beta)
/// (Eq. 6) and weighted by its alpha; alphas sum to 1 across the overall
/// score's terms.
///
/// The planarity terms (sigma, sigma*, ol) and the performance-degradation
/// terms (ov, fa) form the *quality* score (Eq. 5); file size, runtime and
/// memory complete the *overall* score, mirroring the ICCAD-2014 contest
/// metric the paper modifies.
struct ScoreCoefficients {
  std::string design_name;

  double alpha_ov = 0.15;
  double beta_ov = 1.0;  ///< um^2 of overlay area
  double alpha_fa = 0.05;
  double beta_fa = 1.0;  ///< um^2 of fill amount
  double alpha_sigma = 0.2;
  double beta_sigma = 1.0;  ///< A^2 height variance
  double alpha_sigma_star = 0.2;
  double beta_sigma_star = 1.0;  ///< A line deviation
  double alpha_ol = 0.15;
  double beta_ol = 1.0;  ///< A outliers
  double alpha_fs = 0.05;
  double beta_fs = 1.0;  ///< bytes of output file size
  double alpha_t = 0.15;
  double beta_t = 1200.0;  ///< seconds of runtime (paper: 20 min)
  double alpha_m = 0.05;
  double beta_m = 8.0 * 1024.0 * 1024.0 * 1024.0;  ///< bytes of memory (8G)

  /// Eq. 6: the generalized score function.
  static double score(double t, double beta) {
    const double s = 1.0 - t / beta;
    return s > 0.0 ? s : 0.0;
  }
};

}  // namespace neurfill
