#include "fill/report.hpp"

#include <iomanip>
#include <ostream>

#include "common/resource.hpp"
#include "geom/glf_io.hpp"

namespace neurfill {

MethodReport score_fill_result(const FillProblem& problem,
                               const Layout& layout,
                               const FillRunResult& result) {
  MethodReport rep;
  rep.method = result.method;
  rep.runtime_s = result.runtime_s;
  rep.objective_evaluations = result.objective_evaluations;
  rep.timed_out = result.timed_out;
  rep.degraded = result.degraded;

  const QualityBreakdown q = problem.evaluate(result.x);
  rep.truth = q.planarity;
  // Contact-solver retries/degradations during the truth simulation also
  // taint the row: the score was computed on a degraded surface.
  if (problem.simulator().health().any_degraded()) rep.degraded = true;

  // The file-size criterion measures the *fill output* file (the dummies a
  // downstream tool would merge into the design), matching the contest
  // metric where beta_fs is 2x the input size yet good fillers score >0.9.
  Layout fill_only = layout;
  for (auto& l : fill_only.layers) l.wires.clear();
  insert_dummies(fill_only, problem.extraction(), result.x);
  rep.file_size_bytes = static_cast<double>(glf_encoded_size(fill_only));
  rep.memory_bytes = static_cast<double>(peak_rss_bytes());

  rep.score = assemble_overall(q, rep.file_size_bytes, rep.runtime_s,
                               rep.memory_bytes, problem.coefficients());
  return rep;
}

void print_table3_header(std::ostream& os) {
  os << std::left << std::setw(9) << "Design" << std::setw(17) << "Method"
     << std::right << std::setw(8) << "dH(A)" << std::setw(7) << "Perf"
     << std::setw(7) << "Var" << std::setw(7) << "LineD" << std::setw(7)
     << "Outl" << std::setw(7) << "FSize" << std::setw(15) << "Runtime"
     << std::setw(7) << "Mem" << std::setw(9) << "Quality" << std::setw(9)
     << "Overall" << '\n';
}

void print_table3_row(std::ostream& os, const std::string& design,
                      const MethodReport& r) {
  const auto& q = r.score.quality;
  // "Performance" in Table III aggregates the PD terms normalized to their
  // alpha budget (1.0 when no overlay/fill cost is incurred).
  const double perf_budget = 0.15 + 0.05;  // alpha_ov + alpha_fa
  std::ostringstream runtime;
  runtime << ' ' << std::fixed << std::setprecision(2) << r.score.s_t << " ("
          << std::setprecision(1) << r.runtime_s << "s)";
  os << std::left << std::setw(9) << design << std::setw(17) << r.method
     << std::right << std::fixed << std::setprecision(0) << std::setw(8)
     << r.truth.delta_h << std::setprecision(3) << std::setw(7)
     << q.s_pd / perf_budget << std::setw(7) << q.s_sigma << std::setw(7)
     << q.s_sigma_star << std::setw(7) << q.s_ol << std::setw(7) << r.score.s_fs
     << std::setw(15) << runtime.str() << std::setw(7) << r.score.s_m
     << std::setw(9) << q.s_qual << std::setw(9) << r.score.overall;
  if (r.timed_out) os << " [timed-out]";
  if (r.degraded) os << " [degraded]";
  os << '\n';
}

void print_coefficients(std::ostream& os, const ScoreCoefficients& c) {
  os << "coefficients[" << c.design_name << "]: "
     << "beta_sigma=" << c.beta_sigma << " beta_sigma*=" << c.beta_sigma_star
     << " beta_ol=" << c.beta_ol << " beta_ov=" << c.beta_ov
     << " beta_fa=" << c.beta_fa << " beta_fs=" << c.beta_fs
     << " beta_t=" << c.beta_t << "s beta_m=" << c.beta_m / (1 << 30) << "G\n";
}

}  // namespace neurfill
