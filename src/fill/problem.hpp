#pragma once

#include <functional>
#include <vector>

#include "cmp/simulator.hpp"
#include "fill/metrics.hpp"
#include "fill/pd_model.hpp"
#include "fill/score_coeffs.hpp"
#include "geom/layout.hpp"
#include "layout/window_grid.hpp"
#include "opt/objective.hpp"

namespace neurfill {

/// Bundles everything a filling algorithm needs: the extracted windows, the
/// reference CMP simulator, and the score coefficients.  Provides the
/// flattening between per-layer fill grids and the optimizer's variable
/// vector, the bound constraints (Eq. 5d), and the ground-truth quality
/// evaluation through the simulator.
class FillProblem {
 public:
  FillProblem(WindowExtraction ext, CmpSimulator simulator,
              ScoreCoefficients coeffs);

  const WindowExtraction& extraction() const { return ext_; }
  const CmpSimulator& simulator() const { return sim_; }
  const ScoreCoefficients& coefficients() const { return coeffs_; }

  std::size_t num_vars() const { return ext_.num_windows(); }
  /// Bounds 0 <= x <= slack for every window (Eq. 5d), unless overridden.
  Box bounds() const;

  /// Replaces the slack-derived box with an explicit one (same size).  The
  /// fullchip stitcher uses this to pin halo windows to the committed
  /// neighbour solution (lo == hi) while core windows stay free; SQP clamps
  /// every iterate (including the start) into the box, so pinned variables
  /// hold their value exactly.
  void set_bounds_override(Box box);

  VecD flatten(const std::vector<GridD>& x) const;
  std::vector<GridD> unflatten(const VecD& v) const;
  std::vector<GridD> zero_fill() const;

  /// Ground-truth quality of a fill solution: simulate, compute metrics,
  /// assemble scores.
  QualityBreakdown evaluate(const std::vector<GridD>& x) const;

  /// The black-box objective of the conventional model-based flow (Cai
  /// [12]): value = -S_qual via a full simulation; when a gradient is
  /// requested it is computed **numerically** for the planarity part (2n
  /// extra simulations) plus the analytic PD gradient — exactly the cost
  /// structure Table I measures.
  ObjectiveFn make_simulator_objective() const;

  /// Count of simulator invocations made through objectives created above
  /// (diagnostics for the runtime benches).
  long simulator_calls() const { return sim_calls_; }

 private:
  WindowExtraction ext_;
  CmpSimulator sim_;
  ScoreCoefficients coeffs_;
  Box bounds_override_;  ///< empty = derive from slack
  mutable long sim_calls_ = 0;
};

/// Derives benchmark-dependent score coefficients the way the contest
/// benchmarks fix Table II: the planarity betas are the *unfilled* layout's
/// metric values (so the unfilled design scores 0 and improvements map to
/// (0,1]); the amount betas are half the total slack; the file-size beta is
/// twice the input GLF size (Table II uses 2x the input GDS size); runtime
/// and memory betas are the paper's 20 min / 8 GB.
ScoreCoefficients make_coefficients(const Layout& layout,
                                    const WindowExtraction& ext,
                                    const CmpSimulator& sim);

/// Prior-knowledge-based starting point (Section IV-C): for a target layer
/// density td, Eq. 18 gives the max-uniformity fill; a linear search over td
/// (per layer, `steps` samples spanning the feasible density range) keeps
/// the solution with the best quality according to `quality`.
std::vector<GridD> pkb_starting_point(
    const WindowExtraction& ext,
    const std::function<double(const std::vector<GridD>&)>& quality,
    int steps = 9);

/// Batched-quality variant of pkb_starting_point: all `steps` candidate
/// fills are generated up front and judged in one `quality_batch` call (one
/// batched surrogate inference), then the same linear-search selection runs
/// over the returned values (first strictly-better candidate wins, in step
/// order).  Given a quality_batch that returns exactly what the scalar
/// quality would per candidate, the chosen start is identical to
/// pkb_starting_point's.
std::vector<GridD> pkb_starting_point_batched(
    const WindowExtraction& ext,
    const std::function<
        std::vector<double>(const std::vector<std::vector<GridD>>&)>&
        quality_batch,
    int steps = 9);

/// Eq. 18 for a fixed per-layer target density.
std::vector<GridD> target_density_fill(const WindowExtraction& ext,
                                       const std::vector<double>& td);

}  // namespace neurfill
