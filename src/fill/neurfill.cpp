#include "fill/neurfill.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

namespace neurfill {

void calibrate_network(CmpNetwork& network, const FillProblem& problem) {
  const WindowExtraction& ext = problem.extraction();
  std::vector<GridD> zero(ext.num_layers(), GridD(ext.rows, ext.cols, 0.0));
  std::vector<GridD> full;
  full.reserve(ext.num_layers());
  for (const auto& l : ext.layers) full.push_back(l.slack);

  const CmpSimulator& sim = problem.simulator();
  const PlanarityMetrics t0 = compute_planarity(sim.simulate_heights(ext, zero));
  const PlanarityMetrics t1 = compute_planarity(sim.simulate_heights(ext, full));
  const CmpNetwork::Eval n0 = network.evaluate(zero, false);
  const CmpNetwork::Eval n1 = network.evaluate(full, false);

  // Log-space power fit through the two anchors: exp(a) * raw^b.  Falls
  // back to identity when an anchor is non-positive or the network shows no
  // usable (same-sign, non-degenerate) response between the anchors.
  const auto fit = [](double true0, double true1, double net0,
                      double net1) -> CmpNetwork::MetricCalibration {
    CmpNetwork::MetricCalibration c;
    const double eps = 1e-6;
    if (true0 <= eps || true1 <= eps || net0 <= eps || net1 <= eps) return c;
    const double dn = std::log(net0 + eps) - std::log(net1 + eps);
    const double dt = std::log(true0) - std::log(true1);
    if (std::fabs(dn) < 1e-9 || dt * dn <= 0.0) return c;
    c.b = std::clamp(dt / dn, 0.1, 10.0);
    c.a = std::log(true0) - c.b * std::log(net0 + eps);
    return c;
  };
  network.set_calibration(fit(t0.sigma, t1.sigma, n0.sigma, n1.sigma),
                          fit(t0.sigma_star, t1.sigma_star, n0.sigma_star,
                              n1.sigma_star),
                          fit(t0.outliers, t1.outliers, n0.outliers,
                              n1.outliers));
}

ObjectiveFn make_network_objective(const FillProblem& problem,
                                   const CmpNetwork& network,
                                   long* eval_counter) {
  return [&problem, &network, eval_counter](const VecD& v,
                                            VecD* grad) -> double {
    if (eval_counter) ++*eval_counter;
    const std::vector<GridD> x = problem.unflatten(v);
    const CmpNetwork::Eval net =
        network.evaluate(x, /*with_grad=*/grad != nullptr);
    const PdScore pd =
        pd_score_and_gradient(problem.extraction(), x, problem.coefficients());
    if (grad) {
      grad->assign(v.size(), 0.0);
      std::size_t k = 0;
      for (std::size_t l = 0; l < net.grad.size(); ++l)
        for (std::size_t w = 0; w < net.grad[l].size(); ++w, ++k)
          (*grad)[k] = -(net.grad[l][w] + pd.grad[l][w]);
    }
    return -(net.s_plan + pd.s_pd);
  };
}

namespace {

/// Network-based quality callback for starting-point generation.
double network_quality(const FillProblem& problem, const CmpNetwork& network,
                       const std::vector<GridD>& x, long* eval_counter) {
  if (eval_counter) ++*eval_counter;
  const CmpNetwork::Eval net = network.evaluate(x, false);
  const PdScore pd =
      pd_score_and_gradient(problem.extraction(), x, problem.coefficients());
  return net.s_plan + pd.s_pd;
}

}  // namespace

FillRunResult neurfill_pkb(const FillProblem& problem,
                           const CmpNetwork& network,
                           const NeurFillOptions& options) {
  // The method span doubles as the stopwatch: the reported runtime_s and
  // the trace event come from the same clock reads (see obs::SpanTimer).
  obs::SpanTimer timer("fill.neurfill_pkb");
  long evals = 0;
  const std::vector<GridD> start = pkb_starting_point(
      problem.extraction(),
      [&](const std::vector<GridD>& x) {
        return network_quality(problem, network, x, &evals);
      },
      options.pkb_steps);
  const ObjectiveFn obj = make_network_objective(problem, network, &evals);
  const SqpResult sqp =
      sqp_minimize(obj, problem.flatten(start), problem.bounds(), options.sqp);

  FillRunResult res;
  res.method = "NeurFill (PKB)";
  res.x = problem.unflatten(sqp.x);
  res.iterations = sqp.iterations;
  res.objective_evaluations = evals;
  NF_COUNTER_ADD("fill.objective_evaluations", evals);
  res.runtime_s = timer.stop_seconds();
  return res;
}

FillRunResult neurfill_mm(const FillProblem& problem, const CmpNetwork& network,
                          const NeurFillOptions& options) {
  obs::SpanTimer timer("fill.neurfill_mm");
  long evals = 0;
  const ObjectiveFn obj = make_network_objective(problem, network, &evals);

  // Multi-modal exploration maximizes the quality score (value only).  The
  // explore objective carries no shared mutable state (its evaluations are
  // tallied from the optimizer afterwards), so NMMSO may run its per-swarm
  // evaluation batches on the thread pool.
  const ObjectiveFn net_obj = make_network_objective(problem, network, nullptr);
  const ObjectiveFn explore = [&net_obj](const VecD& v, VecD*) -> double {
    return -net_obj(v, nullptr);  // NMMSO maximizes
  };
  NmmsoOptions nmmso_opt = options.nmmso;
  nmmso_opt.parallel_evaluations = true;
  Nmmso nmmso(explore, problem.bounds(), nmmso_opt);
  const std::vector<Mode> modes = nmmso.run();
  evals += nmmso.evaluations_used();

  // MSP-SQP over a diverse pool: the best NMMSO modes, the PKB start, and a
  // spread of target-density fills (the structured corners of the landscape
  // the paper's multi-modal search is meant to cover — distinct basins of
  // the quality score reached from different fill levels).
  std::vector<VecD> starts;
  for (const Mode& m : modes) {
    if (static_cast<int>(starts.size()) >= options.mm_starts) break;
    starts.push_back(m.x);
  }
  const std::vector<GridD> pkb = pkb_starting_point(
      problem.extraction(),
      [&](const std::vector<GridD>& x) {
        return network_quality(problem, network, x, &evals);
      },
      options.pkb_steps);
  starts.push_back(problem.flatten(pkb));
  {
    const WindowExtraction& ext = problem.extraction();
    std::vector<double> lo(ext.num_layers(), 1.0), hi(ext.num_layers(), 0.0);
    for (std::size_t l = 0; l < ext.num_layers(); ++l) {
      const auto& d = ext.layers[l];
      double mean_rho = 0.0;
      for (std::size_t k = 0; k < d.slack.size(); ++k) {
        const double rho = d.wire_density[k] + d.dummy_density[k];
        mean_rho += rho;
        hi[l] = std::max(hi[l], rho + d.slack[k]);
      }
      lo[l] = mean_rho / static_cast<double>(d.slack.size());
    }
    for (const double t : {0.25, 0.55, 0.85}) {
      std::vector<double> td(ext.num_layers());
      for (std::size_t l = 0; l < td.size(); ++l)
        td[l] = lo[l] + t * (hi[l] - lo[l]);
      starts.push_back(problem.flatten(target_density_fill(ext, td)));
    }
  }

  const std::vector<SqpResult> results =
      msp_sqp_minimize(obj, starts, problem.bounds(), options.sqp);

  FillRunResult res;
  res.method = "NeurFill (MM)";
  res.x = problem.unflatten(results.front().x);
  res.iterations = 0;
  for (const auto& r : results) res.iterations += r.iterations;
  res.objective_evaluations = evals;
  NF_COUNTER_ADD("fill.objective_evaluations", evals);
  res.runtime_s = timer.stop_seconds();
  return res;
}

}  // namespace neurfill
