#include "fill/neurfill.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/log.hpp"
#include "fill/snapshot.hpp"
#include "obs/trace.hpp"

namespace neurfill {

void calibrate_network(CmpNetwork& network, const FillProblem& problem) {
  const WindowExtraction& ext = problem.extraction();
  std::vector<GridD> zero(ext.num_layers(), GridD(ext.rows, ext.cols, 0.0));
  std::vector<GridD> full;
  full.reserve(ext.num_layers());
  for (const auto& l : ext.layers) full.push_back(l.slack);

  const CmpSimulator& sim = problem.simulator();
  const PlanarityMetrics t0 = compute_planarity(sim.simulate_heights(ext, zero));
  const PlanarityMetrics t1 = compute_planarity(sim.simulate_heights(ext, full));
  const CmpNetwork::Eval n0 = network.evaluate(zero, false);
  const CmpNetwork::Eval n1 = network.evaluate(full, false);

  // Log-space power fit through the two anchors: exp(a) * raw^b.  Falls
  // back to identity when an anchor is non-positive or the network shows no
  // usable (same-sign, non-degenerate) response between the anchors.
  const auto fit = [](double true0, double true1, double net0,
                      double net1) -> CmpNetwork::MetricCalibration {
    CmpNetwork::MetricCalibration c;
    const double eps = 1e-6;
    if (true0 <= eps || true1 <= eps || net0 <= eps || net1 <= eps) return c;
    const double dn = std::log(net0 + eps) - std::log(net1 + eps);
    const double dt = std::log(true0) - std::log(true1);
    if (std::fabs(dn) < 1e-9 || dt * dn <= 0.0) return c;
    c.b = std::clamp(dt / dn, 0.1, 10.0);
    c.a = std::log(true0) - c.b * std::log(net0 + eps);
    return c;
  };
  network.set_calibration(fit(t0.sigma, t1.sigma, n0.sigma, n1.sigma),
                          fit(t0.sigma_star, t1.sigma_star, n0.sigma_star,
                              n1.sigma_star),
                          fit(t0.outliers, t1.outliers, n0.outliers,
                              n1.outliers));
}

ObjectiveFn make_network_objective(const FillProblem& problem,
                                   const CmpNetwork& network,
                                   long* eval_counter) {
  return [&problem, &network, eval_counter](const VecD& v,
                                            VecD* grad) -> double {
    if (eval_counter) ++*eval_counter;
    const std::vector<GridD> x = problem.unflatten(v);
    const CmpNetwork::Eval net =
        network.evaluate(x, /*with_grad=*/grad != nullptr);
    const PdScore pd =
        pd_score_and_gradient(problem.extraction(), x, problem.coefficients());
    if (grad) {
      grad->assign(v.size(), 0.0);
      std::size_t k = 0;
      for (std::size_t l = 0; l < net.grad.size(); ++l)
        for (std::size_t w = 0; w < net.grad[l].size(); ++w, ++k)
          (*grad)[k] = -(net.grad[l][w] + pd.grad[l][w]);
    }
    return -(net.s_plan + pd.s_pd);
  };
}

BatchObjectiveFn make_network_batch_objective(const FillProblem& problem,
                                              const CmpNetwork& network,
                                              long* eval_counter) {
  return [&problem, &network,
          eval_counter](const std::vector<VecD>& vs) -> std::vector<double> {
    if (eval_counter) *eval_counter += static_cast<long>(vs.size());
    std::vector<std::vector<GridD>> xs;
    xs.reserve(vs.size());
    for (const VecD& v : vs) xs.push_back(problem.unflatten(v));
    const std::vector<CmpNetwork::Eval> nets = network.evaluate_batch(xs);
    std::vector<double> out(vs.size());
    for (std::size_t b = 0; b < vs.size(); ++b) {
      const PdScore pd = pd_score_and_gradient(problem.extraction(), xs[b],
                                               problem.coefficients());
      out[b] = -(nets[b].s_plan + pd.s_pd);
    }
    return out;
  };
}

namespace {

/// Batched network quality (maximization) for starting-point generation:
/// per candidate, S_plan + S_PD — the values network-objective callers
/// negate — via one evaluate_batch call.
std::vector<double> network_batch_quality(
    const FillProblem& problem, const CmpNetwork& network,
    const std::vector<std::vector<GridD>>& xs, long* eval_counter) {
  if (eval_counter) *eval_counter += static_cast<long>(xs.size());
  const std::vector<CmpNetwork::Eval> nets = network.evaluate_batch(xs);
  std::vector<double> q(xs.size());
  for (std::size_t b = 0; b < xs.size(); ++b) {
    const PdScore pd = pd_score_and_gradient(problem.extraction(), xs[b],
                                             problem.coefficients());
    q[b] = nets[b].s_plan + pd.s_pd;
  }
  return q;
}

void persist_snapshot(const FillSnapshot& snap, const std::string& path) {
  const Expected<void> res = save_fill_snapshot(snap, path);
  // A failed snapshot must not kill the optimization it protects.
  if (!res.ok())
    LOG_WARN("fill snapshot failed: %s", res.error().to_string().c_str());
}

/// Loads + validates a resume snapshot for `method`; returns false (fresh
/// run) when the file does not exist.  A corrupt or mismatched snapshot is
/// a hard error: silently recomputing would violate the byte-identical
/// resume contract.
bool load_resume_snapshot(const NeurFillOptions& options,
                          const std::string& method, std::size_t dims,
                          FillSnapshot* snap) {
  if (!options.resume) return false;
  if (options.snapshot_path.empty())
    throw ErrorException(Error(ErrorCode::kInvalidArgument, "fill.snapshot",
                               "resume requested without a snapshot path"));
  Expected<FillSnapshot> loaded = load_fill_snapshot(options.snapshot_path);
  if (!loaded.ok()) {
    if (loaded.error().code == ErrorCode::kNotFound) {
      LOG_INFO("no snapshot at '%s', starting fresh",
               options.snapshot_path.c_str());
      return false;
    }
    throw ErrorException(loaded.error());
  }
  if (loaded->method != method)
    throw ErrorException(Error(
        ErrorCode::kInvalidArgument, "fill.snapshot",
        "'" + options.snapshot_path + "' was written by method '" +
            loaded->method + "', not '" + method + "'"));
  if (loaded->dims != dims)
    throw ErrorException(Error(
        ErrorCode::kInvalidArgument, "fill.snapshot",
        "'" + options.snapshot_path + "' has " +
            std::to_string(loaded->dims) + " variables, the problem has " +
            std::to_string(dims)));
  *snap = std::move(*loaded);
  LOG_INFO("resuming from '%s': %zu/%zu starts done%s",
           options.snapshot_path.c_str(), snap->completed.size(),
           snap->starts.size(),
           snap->has_sqp_state ? ", one mid-flight" : "");
  return true;
}

struct MspDrive {
  std::vector<SqpResult> results;  ///< sorted best (lowest f) first
  bool timed_out = false;
};

/// Runs SQP over the MSP start list with per-iteration snapshotting and a
/// shared deadline; continues from `resumed` when non-null.  Deterministic:
/// an interrupted + resumed drive visits the exact same iterates as an
/// uninterrupted one.
MspDrive drive_msp(const ObjectiveFn& obj, const std::string& method,
                   const std::vector<VecD>& starts, const Box& box,
                   const NeurFillOptions& options, long* evals,
                   const FillSnapshot* resumed) {
  MspDrive out;
  SqpState resume_state;
  bool use_resume = false;
  if (resumed) {
    out.results = resumed->completed;
    if (resumed->has_sqp_state) {
      resume_state = resumed->sqp;
      use_resume = true;
    }
  }
  const auto make_snapshot = [&](bool mid_flight, const SqpState* st) {
    FillSnapshot snap;
    snap.method = method;
    snap.dims = box.size();
    snap.evaluations = *evals;
    snap.starts = starts;
    snap.completed = out.results;
    snap.has_sqp_state = mid_flight;
    if (mid_flight) snap.sqp = *st;
    return snap;
  };
  for (std::size_t i = out.results.size(); i < starts.size(); ++i) {
    SqpOptions so = options.sqp;
    so.deadline = options.deadline;
    if (use_resume) {
      so.resume = &resume_state;
      use_resume = false;
    }
    if (!options.snapshot_path.empty() || options.interrupt) {
      so.checkpoint_hook = [&](const SqpState& st) {
        const bool interrupted =
            options.interrupt &&
            options.interrupt->load(std::memory_order_relaxed);
        if (!options.snapshot_path.empty() &&
            (interrupted || options.snapshot_every <= 1 ||
             st.iteration % options.snapshot_every == 0))
          persist_snapshot(make_snapshot(true, &st), options.snapshot_path);
        if (interrupted)
          throw ErrorException(Error(
              ErrorCode::kInterrupted, "fill",
              options.snapshot_path.empty()
                  ? std::string("interrupt acknowledged")
                  : "interrupt acknowledged; snapshot saved to '" +
                        options.snapshot_path + "'"));
      };
    }
    out.results.push_back(sqp_minimize(obj, starts[i], box, so));
    if (!options.snapshot_path.empty())
      persist_snapshot(make_snapshot(false, nullptr), options.snapshot_path);
    if (out.results.back().timed_out) {
      out.timed_out = true;
      break;
    }
  }
  std::sort(out.results.begin(), out.results.end(),
            [](const SqpResult& a, const SqpResult& b) { return a.f < b.f; });
  return out;
}

/// Folds an MSP drive into the FillRunResult bookkeeping shared by the pkb
/// and mm drivers.
void fold_drive(const FillProblem& problem, const MspDrive& drive,
                FillRunResult* res) {
  res->x = problem.unflatten(drive.results.front().x);
  res->iterations = 0;
  res->timed_out = res->timed_out || drive.timed_out;
  for (const SqpResult& r : drive.results) {
    res->iterations += r.iterations;
    res->numeric_recoveries += r.numeric_recoveries;
    if (r.poisoned) res->degraded = true;
  }
  if (res->numeric_recoveries > 0) res->degraded = true;
}

}  // namespace

FillRunResult neurfill_pkb(const FillProblem& problem,
                           const CmpNetwork& network,
                           const NeurFillOptions& options) {
  // The method span doubles as the stopwatch: the reported runtime_s and
  // the trace event come from the same clock reads (see obs::SpanTimer).
  obs::SpanTimer timer("fill.neurfill_pkb");
  long evals = 0;
  FillSnapshot resumed;
  const bool have_resume = load_resume_snapshot(
      options, "pkb", problem.bounds().size(), &resumed);

  std::vector<VecD> starts;
  if (have_resume) {
    // The snapshot stores the start list, so the PKB linear search (and its
    // evaluation count) is not replayed.
    starts = resumed.starts;
    evals = resumed.evaluations;
  } else {
    // All `pkb_steps` sweep candidates are judged in one batched network
    // evaluation; the chosen start (and the evaluation count) is identical
    // to the serial sweep.
    const std::vector<GridD> start = pkb_starting_point_batched(
        problem.extraction(),
        [&](const std::vector<std::vector<GridD>>& xs) {
          return network_batch_quality(problem, network, xs, &evals);
        },
        options.pkb_steps);
    starts.push_back(problem.flatten(start));
  }

  const ObjectiveFn obj = make_network_objective(problem, network, &evals);
  const MspDrive drive = drive_msp(obj, "pkb", starts, problem.bounds(),
                                   options, &evals, have_resume ? &resumed
                                                                : nullptr);

  FillRunResult res;
  res.method = "NeurFill (PKB)";
  fold_drive(problem, drive, &res);
  res.objective_evaluations = evals;
  NF_COUNTER_ADD("fill.objective_evaluations", evals);
  res.runtime_s = timer.stop_seconds();
  return res;
}

FillRunResult neurfill_mm(const FillProblem& problem, const CmpNetwork& network,
                          const NeurFillOptions& options) {
  obs::SpanTimer timer("fill.neurfill_mm");
  long evals = 0;
  const ObjectiveFn obj = make_network_objective(problem, network, &evals);
  FillSnapshot resumed;
  const bool have_resume = load_resume_snapshot(
      options, "mm", problem.bounds().size(), &resumed);

  std::vector<VecD> starts;
  bool explore_timed_out = false;
  if (have_resume) {
    // NMMSO is checkpointed only at phase completion (its mid-run state is
    // not persisted), so a snapshot implies the start list is final.
    starts = resumed.starts;
    evals = resumed.evaluations;
  } else {
    // Multi-modal exploration maximizes the quality score (value only).
    // The explore objective carries no shared mutable state (its
    // evaluations are tallied from the optimizer afterwards), so NMMSO may
    // run its per-swarm evaluation batches on the thread pool.
    const ObjectiveFn net_obj =
        make_network_objective(problem, network, nullptr);
    const ObjectiveFn explore = [&net_obj](const VecD& v, VecD*) -> double {
      return -net_obj(v, nullptr);  // NMMSO maximizes
    };
    NmmsoOptions nmmso_opt = options.nmmso;
    nmmso_opt.parallel_evaluations = true;
    nmmso_opt.deadline = options.deadline;
    nmmso_opt.interrupt = options.interrupt;
    Nmmso nmmso(explore, problem.bounds(), nmmso_opt);
    // Each iteration's move batch runs as one batched network evaluation
    // (negated to match `explore`'s maximization sign); out-of-batch
    // evaluations (midpoints, hive-offs, immigrants) stay scalar.  Values
    // are bitwise identical either way, so the located modes don't change.
    const BatchObjectiveFn batch_obj =
        make_network_batch_objective(problem, network, nullptr);
    nmmso.set_batch_objective(
        [batch_obj](const std::vector<VecD>& xs) -> std::vector<double> {
          std::vector<double> v = batch_obj(xs);
          for (double& q : v) q = -q;
          return v;
        });
    const std::vector<Mode> modes = nmmso.run();
    evals += nmmso.evaluations_used();
    explore_timed_out = nmmso.timed_out();

    // MSP-SQP over a diverse pool: the best NMMSO modes, the PKB start, and
    // a spread of target-density fills (the structured corners of the
    // landscape the paper's multi-modal search is meant to cover — distinct
    // basins of the quality score reached from different fill levels).
    for (const Mode& m : modes) {
      if (static_cast<int>(starts.size()) >= options.mm_starts) break;
      starts.push_back(m.x);
    }
    const std::vector<GridD> pkb = pkb_starting_point_batched(
        problem.extraction(),
        [&](const std::vector<std::vector<GridD>>& xs) {
          return network_batch_quality(problem, network, xs, &evals);
        },
        options.pkb_steps);
    starts.push_back(problem.flatten(pkb));
    {
      const WindowExtraction& ext = problem.extraction();
      std::vector<double> lo(ext.num_layers(), 1.0), hi(ext.num_layers(), 0.0);
      for (std::size_t l = 0; l < ext.num_layers(); ++l) {
        const auto& d = ext.layers[l];
        double mean_rho = 0.0;
        for (std::size_t k = 0; k < d.slack.size(); ++k) {
          const double rho = d.wire_density[k] + d.dummy_density[k];
          mean_rho += rho;
          hi[l] = std::max(hi[l], rho + d.slack[k]);
        }
        lo[l] = mean_rho / static_cast<double>(d.slack.size());
      }
      for (const double t : {0.25, 0.55, 0.85}) {
        std::vector<double> td(ext.num_layers());
        for (std::size_t l = 0; l < td.size(); ++l)
          td[l] = lo[l] + t * (hi[l] - lo[l]);
        starts.push_back(problem.flatten(target_density_fill(ext, td)));
      }
    }
    // Exploration phase complete: persist the start list so a later resume
    // skips NMMSO entirely.
    if (!options.snapshot_path.empty()) {
      FillSnapshot snap;
      snap.method = "mm";
      snap.dims = problem.bounds().size();
      snap.evaluations = evals;
      snap.starts = starts;
      persist_snapshot(snap, options.snapshot_path);
    }
  }

  const MspDrive drive = drive_msp(obj, "mm", starts, problem.bounds(),
                                   options, &evals, have_resume ? &resumed
                                                                : nullptr);

  FillRunResult res;
  res.method = "NeurFill (MM)";
  res.timed_out = explore_timed_out;
  fold_drive(problem, drive, &res);
  res.objective_evaluations = evals;
  NF_COUNTER_ADD("fill.objective_evaluations", evals);
  res.runtime_s = timer.stop_seconds();
  return res;
}

}  // namespace neurfill
