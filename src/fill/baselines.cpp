#include "fill/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

namespace neurfill {

namespace {

/// Post-fill density variance of one layer under target density td (Eq. 18
/// applied analytically, no grids materialized).
double td_variance(const LayerWindowData& d, double td, double* fill_out) {
  const std::size_t n = d.slack.size();
  double mean = 0.0, fill = 0.0;
  std::vector<double> dens(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double rho = d.wire_density[k] + d.dummy_density[k];
    const double x = std::clamp(td - rho, 0.0, d.slack[k]);
    dens[k] = rho + x;
    fill += x;
    mean += dens[k];
  }
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const double v : dens) var += (v - mean) * (v - mean);
  if (fill_out) *fill_out = fill;
  return var / static_cast<double>(n);
}

}  // namespace

FillRunResult lin_rule_fill(const FillProblem& problem, int steps) {
  // Method spans double as the stopwatch feeding runtime_s, so the Table
  // III runtime column and a --trace capture can never disagree.
  obs::SpanTimer timer("fill.lin");
  const WindowExtraction& ext = problem.extraction();
  FillRunResult res;
  res.method = "Lin";
  std::vector<double> td(ext.num_layers(), 0.0);
  for (std::size_t l = 0; l < ext.num_layers(); ++l) {
    const auto& d = ext.layers[l];
    double lo = 1.0, hi = 0.0;
    for (std::size_t k = 0; k < d.slack.size(); ++k) {
      const double rho = d.wire_density[k] + d.dummy_density[k];
      lo = std::min(lo, rho);
      hi = std::max(hi, rho + d.slack[k]);
    }
    double best_var = 1e300, best_fill = 1e300, best_td = lo;
    for (int s = 0; s < steps; ++s) {
      const double t = lo + (hi - lo) * static_cast<double>(s) /
                                static_cast<double>(steps - 1);
      double fill = 0.0;
      const double var = td_variance(d, t, &fill);
      // Minimize variance; among near-ties (within 2%), prefer less fill.
      const bool better = var < best_var * 0.98 ||
                          (var < best_var * 1.02 && fill < best_fill);
      if (better) {
        best_var = std::min(var, best_var);
        best_fill = fill;
        best_td = t;
      }
      ++res.objective_evaluations;
    }
    td[l] = best_td;
  }
  res.x = target_density_fill(ext, td);
  res.iterations = steps;
  res.runtime_s = timer.stop_seconds();
  return res;
}

FillRunResult tao_rule_sqp(const FillProblem& problem,
                           const TaoOptions& options) {
  obs::SpanTimer timer("fill.tao");
  const WindowExtraction& ext = problem.extraction();
  const std::size_t L = ext.num_layers();
  const std::size_t R = ext.rows, C = ext.cols;
  const std::size_t per_layer = R * C;
  long evals = 0;

  // Rule objective with analytic gradient: per layer,
  //   w_v * Var(rho + x) + w_g * sum of squared 4-neighbour density
  //   differences / n + w_f * mean(x).
  const ObjectiveFn rule = [&](const VecD& v, VecD* grad) -> double {
    ++evals;
    if (grad) grad->assign(v.size(), 0.0);
    double total = 0.0;
    const double inv_n = 1.0 / static_cast<double>(per_layer);
    for (std::size_t l = 0; l < L; ++l) {
      const auto& d = ext.layers[l];
      const std::size_t off = l * per_layer;
      std::vector<double> dens(per_layer);
      double mean = 0.0;
      for (std::size_t k = 0; k < per_layer; ++k) {
        dens[k] = d.wire_density[k] + d.dummy_density[k] + v[off + k];
        mean += dens[k];
      }
      mean *= inv_n;
      double var = 0.0;
      for (const double x : dens) var += (x - mean) * (x - mean);
      var *= inv_n;
      total += options.weight_variance * var;
      if (grad)
        for (std::size_t k = 0; k < per_layer; ++k)
          (*grad)[off + k] +=
              options.weight_variance * 2.0 * inv_n * (dens[k] - mean);
      // Spatial gradient smoothness (right and down neighbours).
      double sg = 0.0;
      for (std::size_t i = 0; i < R; ++i) {
        for (std::size_t j = 0; j < C; ++j) {
          const std::size_t k = i * C + j;
          if (j + 1 < C) {
            const double diff = dens[k] - dens[k + 1];
            sg += diff * diff;
            if (grad) {
              (*grad)[off + k] += options.weight_gradient * 2.0 * diff * inv_n;
              (*grad)[off + k + 1] -=
                  options.weight_gradient * 2.0 * diff * inv_n;
            }
          }
          if (i + 1 < R) {
            const double diff = dens[k] - dens[k + C];
            sg += diff * diff;
            if (grad) {
              (*grad)[off + k] += options.weight_gradient * 2.0 * diff * inv_n;
              (*grad)[off + k + C] -=
                  options.weight_gradient * 2.0 * diff * inv_n;
            }
          }
        }
      }
      total += options.weight_gradient * sg * inv_n;
      for (std::size_t k = 0; k < per_layer; ++k) {
        total += options.weight_fill * v[off + k] * inv_n;
        if (grad) (*grad)[off + k] += options.weight_fill * inv_n;
      }
    }
    return total;
  };

  const FillRunResult lin = lin_rule_fill(problem);
  const SqpResult sqp =
      sqp_minimize(rule, problem.flatten(lin.x), problem.bounds(), options.sqp);

  FillRunResult res;
  res.method = "Tao";
  res.x = problem.unflatten(sqp.x);
  res.iterations = sqp.iterations;
  res.objective_evaluations = evals;
  res.runtime_s = timer.stop_seconds();
  return res;
}

FillRunResult cai_model_fill(const FillProblem& problem,
                             const CaiOptions& options) {
  obs::SpanTimer timer("fill.cai");
  const long sims_before = problem.simulator_calls();
  // PKB starting point judged by the true simulator quality.
  const std::vector<GridD> start = pkb_starting_point(
      problem.extraction(),
      [&problem](const std::vector<GridD>& x) {
        return problem.evaluate(x).s_qual;
      },
      options.pkb_steps);
  const ObjectiveFn obj = problem.make_simulator_objective();
  const SqpResult sqp =
      sqp_minimize(obj, problem.flatten(start), problem.bounds(), options.sqp);

  FillRunResult res;
  res.method = "Cai";
  res.x = problem.unflatten(sqp.x);
  res.iterations = sqp.iterations;
  res.objective_evaluations = problem.simulator_calls() - sims_before;
  res.runtime_s = timer.stop_seconds();
  return res;
}

}  // namespace neurfill
