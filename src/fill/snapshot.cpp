#include "fill/snapshot.hpp"

#include <cstdint>

#include "common/checkpoint.hpp"

namespace neurfill {

namespace {

constexpr std::uint32_t kVersion = 1;

// SqpResult flag bits in the "completed" section.
constexpr std::uint32_t kFlagConverged = 1u << 0;
constexpr std::uint32_t kFlagTimedOut = 1u << 1;
constexpr std::uint32_t kFlagPoisoned = 1u << 2;

Error corrupt(const std::string& path, const std::string& what) {
  return Error(ErrorCode::kCorrupt, "fill.snapshot",
               "'" + path + "': " + what);
}

}  // namespace

[[nodiscard]] Expected<void> save_fill_snapshot(const FillSnapshot& snap,
                                  const std::string& path) {
  CheckpointWriter w;
  ByteWriter meta;
  meta.u32(kVersion);
  meta.str(snap.method);
  meta.u64(snap.dims);
  meta.i64(snap.evaluations);
  meta.u32(static_cast<std::uint32_t>(snap.starts.size()));
  meta.u32(static_cast<std::uint32_t>(snap.completed.size()));
  meta.u32(snap.has_sqp_state ? 1u : 0u);
  w.add_section("meta", meta.take());

  ByteWriter starts;
  for (const VecD& s : snap.starts) starts.f64_vec(s);
  w.add_section("starts", starts.take());

  ByteWriter done;
  for (const SqpResult& r : snap.completed) {
    done.f64_vec(r.x);
    done.f64(r.f);
    done.u32(static_cast<std::uint32_t>(r.iterations));
    done.u32(static_cast<std::uint32_t>(r.function_evaluations));
    std::uint32_t flags = 0;
    if (r.converged) flags |= kFlagConverged;
    if (r.timed_out) flags |= kFlagTimedOut;
    if (r.poisoned) flags |= kFlagPoisoned;
    done.u32(flags);
    done.u32(static_cast<std::uint32_t>(r.numeric_recoveries));
  }
  w.add_section("completed", done.take());

  if (snap.has_sqp_state) {
    ByteWriter s;
    s.f64_vec(snap.sqp.x);
    s.f64_vec(snap.sqp.g);
    s.f64(snap.sqp.f);
    s.u32(static_cast<std::uint32_t>(snap.sqp.iteration));
    s.u32(static_cast<std::uint32_t>(snap.sqp.function_evaluations));
    s.f64(snap.sqp.lbfgs_sigma);
    s.u32(static_cast<std::uint32_t>(snap.sqp.lbfgs_pairs.size()));
    for (const auto& [sv, yv] : snap.sqp.lbfgs_pairs) {
      s.f64_vec(sv);
      s.f64_vec(yv);
    }
    w.add_section("sqp", s.take());
  }
  return w.commit(path);
}

[[nodiscard]] Expected<FillSnapshot> load_fill_snapshot(const std::string& path) {
  Expected<CheckpointReader> reader = CheckpointReader::open(path);
  if (!reader.ok()) return reader.error();
  for (const char* name : {"meta", "starts", "completed"})
    if (!reader->has_section(name))
      return corrupt(path, std::string("missing section '") + name + "'");

  FillSnapshot snap;
  ByteReader meta(**reader->section("meta"));
  const std::uint32_t version = meta.u32();
  snap.method = meta.str();
  snap.dims = static_cast<std::size_t>(meta.u64());
  snap.evaluations = static_cast<long>(meta.i64());
  const std::uint32_t n_starts = meta.u32();
  const std::uint32_t n_completed = meta.u32();
  snap.has_sqp_state = meta.u32() != 0;
  if (!meta.ok() || !meta.at_end())
    return corrupt(path, "malformed 'meta' section");
  if (version != kVersion)
    return corrupt(path, "snapshot version " + std::to_string(version) +
                             " (supported: " + std::to_string(kVersion) + ")");
  if (n_completed > n_starts)
    return corrupt(path, "more completed results than starts");

  ByteReader starts(**reader->section("starts"));
  snap.starts.resize(n_starts);
  for (auto& s : snap.starts) s = starts.f64_vec();
  if (!starts.ok() || !starts.at_end())
    return corrupt(path, "malformed 'starts' section");

  ByteReader done(**reader->section("completed"));
  snap.completed.resize(n_completed);
  for (auto& r : snap.completed) {
    r.x = done.f64_vec();
    r.f = done.f64();
    r.iterations = static_cast<int>(done.u32());
    r.function_evaluations = static_cast<int>(done.u32());
    const std::uint32_t flags = done.u32();
    r.converged = (flags & kFlagConverged) != 0;
    r.timed_out = (flags & kFlagTimedOut) != 0;
    r.poisoned = (flags & kFlagPoisoned) != 0;
    r.numeric_recoveries = static_cast<int>(done.u32());
  }
  if (!done.ok() || !done.at_end())
    return corrupt(path, "malformed 'completed' section");

  if (snap.has_sqp_state) {
    if (!reader->has_section("sqp"))
      return corrupt(path, "missing section 'sqp'");
    ByteReader s(**reader->section("sqp"));
    snap.sqp.x = s.f64_vec();
    snap.sqp.g = s.f64_vec();
    snap.sqp.f = s.f64();
    snap.sqp.iteration = static_cast<int>(s.u32());
    snap.sqp.function_evaluations = static_cast<int>(s.u32());
    snap.sqp.lbfgs_sigma = s.f64();
    const std::uint32_t n_pairs = s.u32();
    snap.sqp.lbfgs_pairs.resize(n_pairs);
    for (auto& [sv, yv] : snap.sqp.lbfgs_pairs) {
      sv = s.f64_vec();
      yv = s.f64_vec();
    }
    if (!s.ok() || !s.at_end())
      return corrupt(path, "malformed 'sqp' section");
  }
  return snap;
}

}  // namespace neurfill
