#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fill/baselines.hpp"
#include "fill/metrics.hpp"
#include "fill/problem.hpp"
#include "geom/layout.hpp"

namespace neurfill {

/// One row of the Table III reproduction: a filling method's solution scored
/// against the ground-truth simulator with the full contest metric.
struct MethodReport {
  std::string method;
  PlanarityMetrics truth;  ///< simulator-evaluated planarity of the solution
  OverallScore score;
  double runtime_s = 0.0;
  double file_size_bytes = 0.0;
  double memory_bytes = 0.0;
  long objective_evaluations = 0;
  /// Honest-quality flags (docs/robustness.md), folded from the run result
  /// and the scoring simulator's health ledger; printed as a row suffix.
  bool timed_out = false;  ///< the run deadline cut the optimization short
  bool degraded = false;   ///< numeric poison was survived along the way
};

/// Scores a fill result: simulates the filled layout, assembles quality,
/// materializes the dummies into a copy of the layout for the output
/// file-size term, and reads the process peak RSS for the memory term.
MethodReport score_fill_result(const FillProblem& problem,
                               const Layout& layout,
                               const FillRunResult& result);

/// Pretty-printers used by the benches and examples.
void print_table3_header(std::ostream& os);
void print_table3_row(std::ostream& os, const std::string& design,
                      const MethodReport& report);
void print_coefficients(std::ostream& os, const ScoreCoefficients& coeffs);

}  // namespace neurfill
