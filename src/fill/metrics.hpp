#pragma once

#include <vector>

#include "common/grid2d.hpp"
#include "fill/score_coeffs.hpp"

namespace neurfill {

/// The raw planarity objectives of Eqs. (1)-(3), computed from per-layer
/// post-CMP height profiles (Angstrom).
struct PlanarityMetrics {
  double sigma = 0.0;        ///< Eq. 1: summed per-layer height variance (A^2)
  double sigma_star = 0.0;   ///< Eq. 2: line deviation (A)
  double outliers = 0.0;     ///< Eq. 3: above 3*sigma_l excess (A)
  double delta_h = 0.0;      ///< max-min height range over all layers (A),
                             ///< the Delta-H column of Table III
};

PlanarityMetrics compute_planarity(const std::vector<GridD>& heights);

/// Score assembly (Eq. 5): S_plan from the planarity metrics, S_PD from
/// overlay/fill amounts (um^2), S_qual = S_plan + S_PD.
struct QualityBreakdown {
  PlanarityMetrics planarity;
  double overlay_um2 = 0.0;
  double fill_um2 = 0.0;
  double s_sigma = 0.0;
  double s_sigma_star = 0.0;
  double s_ol = 0.0;
  double s_ov = 0.0;
  double s_fa = 0.0;
  double s_plan = 0.0;
  double s_pd = 0.0;
  double s_qual = 0.0;
};

QualityBreakdown assemble_quality(const PlanarityMetrics& pm,
                                  double overlay_um2, double fill_um2,
                                  const ScoreCoefficients& coeffs);

/// The full Table III row: quality plus file-size / runtime / memory scores.
struct OverallScore {
  QualityBreakdown quality;
  double s_fs = 0.0;
  double s_t = 0.0;
  double s_m = 0.0;
  double overall = 0.0;
};

OverallScore assemble_overall(const QualityBreakdown& quality,
                              double file_size_bytes, double runtime_s,
                              double memory_bytes,
                              const ScoreCoefficients& coeffs);

}  // namespace neurfill
