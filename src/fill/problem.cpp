#include "fill/problem.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geom/glf_io.hpp"

namespace neurfill {

FillProblem::FillProblem(WindowExtraction ext, CmpSimulator simulator,
                         ScoreCoefficients coeffs)
    : ext_(std::move(ext)), sim_(std::move(simulator)),
      coeffs_(std::move(coeffs)) {
  if (ext_.num_layers() == 0)
    throw std::invalid_argument("FillProblem: empty extraction");
}

void FillProblem::set_bounds_override(Box box) {
  if (box.lo.size() != num_vars() || box.hi.size() != num_vars())
    throw std::invalid_argument("set_bounds_override: size mismatch");
  bounds_override_ = std::move(box);
}

Box FillProblem::bounds() const {
  if (!bounds_override_.lo.empty()) return bounds_override_;
  Box b;
  b.lo.assign(num_vars(), 0.0);
  b.hi.reserve(num_vars());
  for (const auto& layer : ext_.layers)
    for (const double s : layer.slack) b.hi.push_back(std::max(0.0, s));
  return b;
}

VecD FillProblem::flatten(const std::vector<GridD>& x) const {
  if (x.size() != ext_.num_layers())
    throw std::invalid_argument("flatten: layer count mismatch");
  VecD v;
  v.reserve(num_vars());
  for (const auto& g : x) {
    if (g.rows() != ext_.rows || g.cols() != ext_.cols)
      throw std::invalid_argument("flatten: grid shape mismatch");
    v.insert(v.end(), g.begin(), g.end());
  }
  return v;
}

std::vector<GridD> FillProblem::unflatten(const VecD& v) const {
  if (v.size() != num_vars())
    throw std::invalid_argument("unflatten: size mismatch");
  std::vector<GridD> x(ext_.num_layers(), GridD(ext_.rows, ext_.cols, 0.0));
  std::size_t k = 0;
  for (auto& g : x)
    for (auto& val : g) val = v[k++];
  return x;
}

std::vector<GridD> FillProblem::zero_fill() const {
  return std::vector<GridD>(ext_.num_layers(), GridD(ext_.rows, ext_.cols, 0.0));
}

QualityBreakdown FillProblem::evaluate(const std::vector<GridD>& x) const {
  ++sim_calls_;
  const std::vector<GridD> heights = sim_.simulate_heights(ext_, x);
  const PlanarityMetrics pm = compute_planarity(heights);
  const PdEstimate pd = estimate_pd(ext_, x);
  return assemble_quality(pm, pd.overlay_um2, pd.fill_um2, coeffs_);
}

ObjectiveFn FillProblem::make_simulator_objective() const {
  return [this](const VecD& v, VecD* grad) -> double {
    const std::vector<GridD> x = unflatten(v);
    const QualityBreakdown q = evaluate(x);
    if (grad) {
      // Planarity part: black-box numerical gradient (the expensive path of
      // the conventional flow — one simulation per variable with forward
      // differences).
      grad->assign(v.size(), 0.0);
      const double eps = 1e-4;
      VecD vp = v;
      for (std::size_t i = 0; i < v.size(); ++i) {
        const double orig = vp[i];
        vp[i] = orig + eps;
        const QualityBreakdown qp = evaluate(unflatten(vp));
        vp[i] = orig;
        (*grad)[i] = -(qp.s_plan - q.s_plan) / eps;
      }
      // PD part: analytic (Eq. 17).
      const PdScore pd = pd_score_and_gradient(ext_, x, coeffs_);
      std::size_t k = 0;
      for (const auto& g : pd.grad)
        for (const double gv : g) (*grad)[k++] -= gv;
    }
    return -q.s_qual;
  };
}

ScoreCoefficients make_coefficients(const Layout& layout,
                                    const WindowExtraction& ext,
                                    const CmpSimulator& sim) {
  ScoreCoefficients c;
  c.design_name = layout.name;
  const std::vector<GridD> h0 = sim.simulate_heights(
      ext, std::vector<GridD>(ext.num_layers(), GridD(ext.rows, ext.cols, 0.0)));
  const PlanarityMetrics pm = compute_planarity(h0);
  // Floors keep betas positive even for a nearly-flat unfilled design.
  c.beta_sigma = std::max(pm.sigma, 1.0);
  c.beta_sigma_star = std::max(pm.sigma_star, 1.0);
  // The unfilled design often has zero outlier mass; floor the budget at a
  // small fraction of the line-deviation scale so the outlier score stays a
  // graded signal instead of a 0/1 cliff.
  c.beta_ol = std::max(pm.outliers, 0.01 * c.beta_sigma_star);
  double total_slack_um2 = 0.0;
  for (const auto& l : ext.layers)
    for (const double s : l.slack) total_slack_um2 += s;
  total_slack_um2 *= ext.window_area_um2();
  c.beta_fa = std::max(0.5 * total_slack_um2, 1.0);
  c.beta_ov = c.beta_fa;  // Table II uses beta_ov == beta_fa
  // File-size budget.  The paper uses 2x the input GDS, which works because
  // industrial designs dwarf their fill files; synthetic designs are small,
  // so the budget is the larger of that and the size of a worst-case
  // (full-slack) fill file — keeping the score a graded signal here too.
  {
    Layout full_fill = layout;
    for (auto& l : full_fill.layers) {
      l.wires.clear();
      l.dummies.clear();
    }
    std::vector<GridD> full;
    full.reserve(ext.num_layers());
    for (const auto& l : ext.layers) full.push_back(l.slack);
    insert_dummies(full_fill, ext, full);
    c.beta_fs = std::max(2.0 * static_cast<double>(glf_encoded_size(layout)),
                         static_cast<double>(glf_encoded_size(full_fill)));
  }
  c.beta_t = 1200.0;
  c.beta_m = 8.0 * 1024.0 * 1024.0 * 1024.0;
  return c;
}

std::vector<GridD> target_density_fill(const WindowExtraction& ext,
                                       const std::vector<double>& td) {
  if (td.size() != ext.num_layers())
    throw std::invalid_argument("target_density_fill: layer count mismatch");
  std::vector<GridD> x(ext.num_layers(), GridD(ext.rows, ext.cols, 0.0));
  for (std::size_t l = 0; l < ext.num_layers(); ++l) {
    const auto& d = ext.layers[l];
    for (std::size_t k = 0; k < d.slack.size(); ++k) {
      const double rho = d.wire_density[k] + d.dummy_density[k];
      const double s = d.slack[k];
      // Eq. 18.
      if (td[l] < rho) {
        x[l][k] = 0.0;
      } else if (td[l] > rho + s) {
        x[l][k] = s;
      } else {
        x[l][k] = td[l] - rho;
      }
    }
  }
  return x;
}

namespace {

/// Feasible target-density range per layer: from the mean density (no fill
/// below it changes anything) to the max achievable density.
void pkb_density_range(const WindowExtraction& ext, std::vector<double>& lo,
                       std::vector<double>& hi) {
  const std::size_t L = ext.num_layers();
  lo.assign(L, 1.0);
  hi.assign(L, 0.0);
  for (std::size_t l = 0; l < L; ++l) {
    const auto& d = ext.layers[l];
    double mean_rho = 0.0;
    for (std::size_t k = 0; k < d.slack.size(); ++k) {
      const double rho = d.wire_density[k] + d.dummy_density[k];
      mean_rho += rho;
      hi[l] = std::max(hi[l], rho + d.slack[k]);
    }
    lo[l] = mean_rho / static_cast<double>(d.slack.size());
  }
}

/// The step-s candidate of the coupled linear sweep: the same td step index
/// is applied to all layers (the paper searches each layer's td by a linear
/// sweep; the coupled sweep keeps the search O(steps) simulations instead
/// of steps^L).
std::vector<GridD> pkb_candidate(const WindowExtraction& ext,
                                 const std::vector<double>& lo,
                                 const std::vector<double>& hi, int s,
                                 int steps) {
  const double t = static_cast<double>(s) / static_cast<double>(steps - 1);
  std::vector<double> td(lo.size());
  for (std::size_t l = 0; l < td.size(); ++l)
    td[l] = lo[l] + t * (hi[l] - lo[l]);
  return target_density_fill(ext, td);
}

}  // namespace

std::vector<GridD> pkb_starting_point(
    const WindowExtraction& ext,
    const std::function<double(const std::vector<GridD>&)>& quality,
    int steps) {
  if (steps < 2) throw std::invalid_argument("pkb_starting_point: steps < 2");
  std::vector<double> lo, hi;
  pkb_density_range(ext, lo, hi);
  double best_q = -1e300;
  std::vector<GridD> best;
  for (int s = 0; s < steps; ++s) {
    std::vector<GridD> x = pkb_candidate(ext, lo, hi, s, steps);
    const double q = quality(x);
    if (q > best_q) {
      best_q = q;
      best = std::move(x);
    }
  }
  return best;
}

std::vector<GridD> pkb_starting_point_batched(
    const WindowExtraction& ext,
    const std::function<
        std::vector<double>(const std::vector<std::vector<GridD>>&)>&
        quality_batch,
    int steps) {
  if (steps < 2)
    throw std::invalid_argument("pkb_starting_point_batched: steps < 2");
  std::vector<double> lo, hi;
  pkb_density_range(ext, lo, hi);
  std::vector<std::vector<GridD>> candidates;
  candidates.reserve(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s)
    candidates.push_back(pkb_candidate(ext, lo, hi, s, steps));
  const std::vector<double> q = quality_batch(candidates);
  if (q.size() != candidates.size())
    throw std::invalid_argument(
        "pkb_starting_point_batched: quality count mismatch");
  // Same selection rule as the serial sweep: first strictly-better wins.
  double best_q = -1e300;
  std::size_t best = 0;
  for (std::size_t s = 0; s < q.size(); ++s) {
    if (q[s] > best_q) {
      best_q = q[s];
      best = s;
    }
  }
  return std::move(candidates[best]);
}

}  // namespace neurfill
