#pragma once

#include <vector>

#include "common/grid2d.hpp"
#include "fill/score_coeffs.hpp"
#include "layout/window_grid.hpp"

namespace neurfill {

/// Four-type region insertion (Fig. 5): a window's fill amount x is placed
/// into its four slack types by priority 1..4 (type 1 has neither wire above
/// nor below, so it causes no dummy-to-wire overlay).
struct FourTypeSplit {
  double x1 = 0.0, x2 = 0.0, x3 = 0.0, x4 = 0.0;
};

/// Splits a fill fraction into the four types given the window's type
/// capacities (all in window-area fraction units).
FourTypeSplit split_four_type(double x, double s1, double s2, double s3,
                              double s4);

/// Overlay and fill-amount estimate (Eqs. 4, 13-15) for a full fill
/// solution.  Amounts are converted to um^2 with the extraction's window
/// area so they are comparable with the beta coefficients.
struct PdEstimate {
  double overlay_um2 = 0.0;
  double fill_um2 = 0.0;
  /// d(overlay_um2) / d x_{l,i,j} with x in fraction units: the analytic
  /// subgradient of Eq. 16 scaled by the window area.
  std::vector<GridD> grad_overlay;
};

PdEstimate estimate_pd(const WindowExtraction& ext,
                       const std::vector<GridD>& x);

/// S_PD (Eq. 5c) and its analytic gradient w.r.t. x (Eq. 17).  The gradient
/// accounts for the max(0, .) clamp of the score function: a term whose
/// objective already exceeds beta contributes zero gradient.
struct PdScore {
  double s_pd = 0.0;
  double overlay_um2 = 0.0;
  double fill_um2 = 0.0;
  std::vector<GridD> grad;  ///< d S_PD / d x_{l,i,j}
};

PdScore pd_score_and_gradient(const WindowExtraction& ext,
                              const std::vector<GridD>& x,
                              const ScoreCoefficients& coeffs);

}  // namespace neurfill
