#include "fill/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neurfill {

PlanarityMetrics compute_planarity(const std::vector<GridD>& heights) {
  if (heights.empty())
    throw std::invalid_argument("compute_planarity: no layers");
  PlanarityMetrics m;
  double global_min = heights[0][0], global_max = heights[0][0];
  for (const GridD& h : heights) {
    const std::size_t N = h.rows(), M = h.cols();
    const double inv_nm = 1.0 / static_cast<double>(N * M);
    double mean = 0.0;
    for (const double v : h) {
      mean += v;
      global_min = std::min(global_min, v);
      global_max = std::max(global_max, v);
    }
    mean *= inv_nm;
    // Eq. 1: per-layer variance (averaged over windows), summed over layers.
    double var = 0.0;
    for (const double v : h) var += (v - mean) * (v - mean);
    var *= inv_nm;
    m.sigma += var;
    // Eq. 2: |H_ij - column mean| summed.  H-bar_{l,j} is the average height
    // of column j in layer l.
    std::vector<double> col_mean(M, 0.0);
    for (std::size_t i = 0; i < N; ++i)
      for (std::size_t j = 0; j < M; ++j) col_mean[j] += h(i, j);
    for (auto& c : col_mean) c /= static_cast<double>(N);
    for (std::size_t i = 0; i < N; ++i)
      for (std::size_t j = 0; j < M; ++j)
        m.sigma_star += std::fabs(h(i, j) - col_mean[j]);
    // Eq. 3: mass above mean + 3*sigma_l of the layer.  (The paper writes
    // H - 3*sigma_l; heights are absolute so the mean offset is included to
    // make the threshold scale-invariant, matching the contest intent of
    // penalizing high outlier windows.)
    const double sig_l = std::sqrt(var);
    const double threshold = mean + 3.0 * sig_l;
    for (const double v : h) m.outliers += std::max(0.0, v - threshold);
  }
  m.delta_h = global_max - global_min;
  return m;
}

QualityBreakdown assemble_quality(const PlanarityMetrics& pm,
                                  double overlay_um2, double fill_um2,
                                  const ScoreCoefficients& c) {
  QualityBreakdown q;
  q.planarity = pm;
  q.overlay_um2 = overlay_um2;
  q.fill_um2 = fill_um2;
  q.s_sigma = ScoreCoefficients::score(pm.sigma, c.beta_sigma);
  q.s_sigma_star = ScoreCoefficients::score(pm.sigma_star, c.beta_sigma_star);
  q.s_ol = ScoreCoefficients::score(pm.outliers, c.beta_ol);
  q.s_ov = ScoreCoefficients::score(overlay_um2, c.beta_ov);
  q.s_fa = ScoreCoefficients::score(fill_um2, c.beta_fa);
  q.s_plan = c.alpha_sigma * q.s_sigma + c.alpha_sigma_star * q.s_sigma_star +
             c.alpha_ol * q.s_ol;
  q.s_pd = c.alpha_ov * q.s_ov + c.alpha_fa * q.s_fa;
  q.s_qual = q.s_plan + q.s_pd;
  return q;
}

OverallScore assemble_overall(const QualityBreakdown& quality,
                              double file_size_bytes, double runtime_s,
                              double memory_bytes,
                              const ScoreCoefficients& c) {
  OverallScore o;
  o.quality = quality;
  o.s_fs = ScoreCoefficients::score(file_size_bytes, c.beta_fs);
  o.s_t = ScoreCoefficients::score(runtime_s, c.beta_t);
  o.s_m = ScoreCoefficients::score(memory_bytes, c.beta_m);
  o.overall = quality.s_qual + c.alpha_fs * o.s_fs + c.alpha_t * o.s_t +
              c.alpha_m * o.s_m;
  return o;
}

}  // namespace neurfill
