#pragma once

// Optimization snapshot for interruption-safe NeurFill runs
// (docs/robustness.md): the complete MSP-SQP drive state of a pkb/mm run —
// the start list, every finished start's result, and the loop-top SqpState
// of the start in progress.  nf_fill writes one periodically (--snapshot)
// and `--resume` continues from it; because SQP is deterministic from its
// loop-top state, a resumed run produces a fill bitwise identical to the
// uninterrupted one (tests/resume_kill_test.sh).

#include <string>
#include <vector>

#include "common/error.hpp"
#include "opt/sqp.hpp"

namespace neurfill {

struct FillSnapshot {
  std::string method;    ///< "pkb" | "mm"; resume refuses a mismatch
  std::size_t dims = 0;  ///< flattened variable count; resume refuses a mismatch
  long evaluations = 0;  ///< objective-evaluation counter at capture time
  std::vector<VecD> starts;          ///< full MSP start list (phase complete)
  std::vector<SqpResult> completed;  ///< finished starts, in start order
  bool has_sqp_state = false;        ///< a start is mid-flight
  SqpState sqp;  ///< loop-top state of start #completed.size()
};

/// Atomic (write-temp + rename), CRC-checksummed NFCP write.
[[nodiscard]] Expected<void> save_fill_snapshot(const FillSnapshot& snap,
                                  const std::string& path);

/// kNotFound when absent, kCorrupt (naming file/section) on damage.
[[nodiscard]] Expected<FillSnapshot> load_fill_snapshot(const std::string& path);

}  // namespace neurfill
