#include "fill/pd_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neurfill {

FourTypeSplit split_four_type(double x, double s1, double s2, double s3,
                              double s4) {
  FourTypeSplit r;
  x = std::max(0.0, x);
  r.x1 = std::min(x, std::max(0.0, s1));
  x -= r.x1;
  r.x2 = std::min(x, std::max(0.0, s2));
  x -= r.x2;
  r.x3 = std::min(x, std::max(0.0, s3));
  x -= r.x3;
  r.x4 = std::min(x, std::max(0.0, s4));
  return r;
}

PdEstimate estimate_pd(const WindowExtraction& ext,
                       const std::vector<GridD>& x) {
  if (x.size() != ext.num_layers())
    throw std::invalid_argument("estimate_pd: layer count mismatch");
  const std::size_t L = ext.num_layers();
  const double wa = ext.window_area_um2();

  PdEstimate out;
  out.grad_overlay.assign(L, GridD(ext.rows, ext.cols, 0.0));

  // First pass: four-type split per window (x1 of every layer is needed for
  // the dummy-to-dummy term of the layer below).
  std::vector<GridD> x1(L, GridD(ext.rows, ext.cols, 0.0));
  std::vector<GridD> marginal_type(L, GridD(ext.rows, ext.cols, 0.0));
  for (std::size_t l = 0; l < L; ++l) {
    const auto& d = ext.layers[l];
    if (!x[l].same_shape(d.slack))
      throw std::invalid_argument("estimate_pd: grid shape mismatch");
    for (std::size_t k = 0; k < d.slack.size(); ++k) {
      const FourTypeSplit s =
          split_four_type(x[l][k], d.slack_type[0][k], d.slack_type[1][k],
                          d.slack_type[2][k], d.slack_type[3][k]);
      x1[l][k] = s.x1;
      out.fill_um2 += x[l][k] * wa;
      // Eq. 13: dummy-to-wire overlay.
      out.overlay_um2 += (s.x2 + s.x3 + 2.0 * s.x4) * wa;
      // Which type would the *next* unit of fill land in?  That determines
      // the subgradient (Eq. 16's structure).
      const double remaining = x[l][k] - (s.x1 + s.x2 + s.x3 + s.x4);
      double t = 0.0;
      if (remaining > 1e-15) {
        t = 4.0;  // saturated: treated as type 4 for gradient purposes
      } else if (s.x1 < d.slack_type[0][k] - 1e-15) {
        t = 1.0;
      } else if (s.x2 < d.slack_type[1][k] - 1e-15) {
        t = 2.0;
      } else if (s.x3 < d.slack_type[2][k] - 1e-15) {
        t = 3.0;
      } else {
        t = 4.0;
      }
      marginal_type[l][k] = t;
    }
  }

  // Second pass: dummy-to-dummy overlay (Eq. 14) and gradients.  x1 of
  // layer l participates in two d-d terms: its own (with layer l+1) and the
  // one of the layer below (where l is the upper layer), so the type-1
  // subgradient counts both active terms — a refinement of Eq. 16's cases.
  for (std::size_t l = 0; l < L; ++l) {
    const auto& d = ext.layers[l];
    for (std::size_t k = 0; k < d.slack.size(); ++k) {
      bool dd_upper_active = false;  // term of layer l (shares with l+1)
      if (l + 1 < L) {
        const double excess = x1[l][k] + x1[l + 1][k] - d.nonoverlap_slack[k];
        if (excess > 0.0) {
          out.overlay_um2 += excess * wa;
          dd_upper_active = true;
        }
      }
      bool dd_lower_active = false;  // term of layer l-1 (shares with l)
      if (l > 0) {
        dd_lower_active = x1[l - 1][k] + x1[l][k] -
                              ext.layers[l - 1].nonoverlap_slack[k] >
                          0.0;
      }
      const double t = marginal_type[l][k];
      double g = 0.0;
      if (t == 1.0) {
        g = (dd_upper_active ? 1.0 : 0.0) + (dd_lower_active ? 1.0 : 0.0);
      } else if (t == 2.0 || t == 3.0) {
        g = 1.0;
      } else {
        g = 2.0;
      }
      out.grad_overlay[l](k / ext.cols, k % ext.cols) = g * wa;
    }
  }
  return out;
}

PdScore pd_score_and_gradient(const WindowExtraction& ext,
                              const std::vector<GridD>& x,
                              const ScoreCoefficients& c) {
  PdEstimate est = estimate_pd(ext, x);
  PdScore out;
  out.overlay_um2 = est.overlay_um2;
  out.fill_um2 = est.fill_um2;
  const double s_ov = ScoreCoefficients::score(est.overlay_um2, c.beta_ov);
  const double s_fa = ScoreCoefficients::score(est.fill_um2, c.beta_fa);
  out.s_pd = c.alpha_ov * s_ov + c.alpha_fa * s_fa;

  const double wa = ext.window_area_um2();
  // Eq. 17 with the score clamp: once a term bottoms out at 0 its gradient
  // vanishes.
  const double g_ov = est.overlay_um2 < c.beta_ov ? -c.alpha_ov / c.beta_ov : 0.0;
  const double g_fa = est.fill_um2 < c.beta_fa ? -c.alpha_fa / c.beta_fa : 0.0;
  out.grad.assign(ext.num_layers(), GridD(ext.rows, ext.cols, 0.0));
  for (std::size_t l = 0; l < ext.num_layers(); ++l)
    for (std::size_t k = 0; k < out.grad[l].size(); ++k)
      out.grad[l][k] = g_ov * est.grad_overlay[l][k] + g_fa * wa;
  return out;
}

}  // namespace neurfill
