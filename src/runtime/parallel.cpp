#include "runtime/parallel.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "common/check.hpp"

namespace neurfill::runtime {

namespace {

/// Environment/hardware default: NEURFILL_THREADS wins when set to a
/// positive integer; otherwise the hardware concurrency (1 on a 1-core
/// host, which makes every primitive degrade to inline serial execution).
int env_default_threads() {
  // Read once while single-threaded, before the pool exists.
  if (const char* env = std::getenv("NEURFILL_THREADS")) {  // NOLINT(concurrency-mt-unsafe)
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

ThreadPool& default_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(env_default_threads());
  return *g_pool;
}

int thread_count() { return default_pool().threads(); }

void set_thread_count(int threads) {
  NF_CHECK(!ThreadPool::inside_worker(),
           "set_thread_count called from inside a parallel region");
  const int effective = threads == 0 ? env_default_threads() : threads;
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  // Destroying the old pool joins its (idle) workers; for_blocks callers
  // hold a reference only for the duration of one call, and the API forbids
  // resizing from inside one, so tear-down here is safe.
  g_pool = std::make_unique<ThreadPool>(effective < 1 ? 1 : effective);
}

}  // namespace neurfill::runtime
