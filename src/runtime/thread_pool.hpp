#pragma once

// Fixed-size thread pool with lock-free block claiming: the execution
// substrate under every parallel primitive in src/runtime/parallel.hpp.
//
// Design constraints (see docs/runtime.md):
//  * One data-parallel job at a time.  The pool exists to run blocked loops
//    (parallel_for / parallel_reduce) from the main thread; concurrent
//    callers serialize on an internal mutex rather than interleaving jobs.
//  * The calling thread participates: a pool constructed with `threads = T`
//    spawns T-1 workers, so `threads = 1` means zero workers and every job
//    runs inline on the caller (the serial degrade path for 1-core hosts or
//    NEURFILL_THREADS=1).
//  * Atomic chunk claiming: inside a job every participant claims block
//    indices from a single shared atomic counter (one fetch_add per block,
//    ~10 ns).  Scheduling order varies between runs — primitives that need
//    determinism (parallel_reduce) fix the block decomposition and combine
//    per-block results in block order, never in completion order.
//  * Spin-before-park: idle workers spin briefly on the job-generation
//    atomic before parking on a condition variable, so back-to-back jobs
//    (the common shape: one parallel region per GEMM slab / solver step)
//    are picked up without a futex round-trip.  The caller likewise spins
//    briefly for completion before parking.
//  * Exceptions thrown by a block are caught, the job is cancelled (the
//    remaining blocks are skipped), and the first exception is rethrown on
//    the calling thread after every participant has quiesced.
//  * Nested use is rejected by degrading: calling for_blocks from inside a
//    worker runs the nested job inline and serially on that worker, so
//    nesting can never deadlock the pool or oversubscribe the machine.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace neurfill::runtime {

class ThreadPool {
 public:
  /// `threads` is the total concurrency including the calling thread; the
  /// pool spawns `threads - 1` workers.  Values < 1 are clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the participating caller).
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(b) for every block index b in [0, num_blocks) across the
  /// pool and the calling thread; returns when all blocks completed.  The
  /// first exception thrown by any block cancels the remaining blocks and
  /// is rethrown here.  Safe (but serial) when called from inside a worker.
  void for_blocks(std::size_t num_blocks,
                  const std::function<void(std::size_t)>& body);

  /// True when the current thread is a worker of *any* ThreadPool, i.e. a
  /// nested parallel primitive would degrade to serial execution.
  static bool inside_worker();

  /// RAII scope that forces every parallel primitive issued by the current
  /// thread to run inline and serially (the same degrade path as nested
  /// parallelism).  Because the primitives are bitwise-deterministic, a
  /// SerialRegion never changes results — only scheduling.  Hot paths use
  /// it to opt whole small problems out of fork/join entirely (e.g. the
  /// contact solver on small grids, where per-iteration joins would cost
  /// more than they save; see docs/runtime.md).
  class SerialRegion {
   public:
    SerialRegion();
    ~SerialRegion();
    SerialRegion(const SerialRegion&) = delete;
    SerialRegion& operator=(const SerialRegion&) = delete;

   private:
    bool prev_;
  };

 private:
  void worker_loop(std::size_t worker_index);
  /// One CAS on next_block_ that simultaneously checks the claimant still
  /// works on generation `my_gen` and reserves the next block index.
  /// Returns false when the job has no blocks left (or is not current).
  bool claim(std::uint64_t my_gen, std::size_t& block);
  /// Claims blocks for generation `my_gen` and runs them until the job is
  /// exhausted.  Called by the job owner and by every worker that observed
  /// the job's generation.
  void run_participant(std::uint64_t my_gen);

  // Job state.  Everything a participant touches per block is an atomic;
  // the mutex below is only taken to publish a job, to record the first
  // exception, and around condition-variable park/unpark.  body_ is
  // deliberately non-atomic: it is written under m_ before the counter's
  // release-store publishes the job and only ever read after a successful
  // generation-checked claim (see thread_pool.cpp for the full argument).
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::atomic<std::size_t> blocks_total_{0};
  /// Packed (generation << 40 | next block index) claim counter.
  std::atomic<std::uint64_t> next_block_{0};
  std::atomic<std::size_t> blocks_done_{0};  ///< retired (run/skipped) blocks
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> stop_{false};
  int spin_iterations_ = 1;  ///< spin-before-park budget (1 when oversubscribed)

  std::mutex m_;  ///< guards job publication, first_error_, and cv waits
  std::condition_variable work_cv_;  ///< parks workers between jobs
  std::condition_variable done_cv_;  ///< parks the caller until completion
  std::exception_ptr first_error_;

  std::mutex job_mutex_;  ///< serializes concurrent for_blocks callers
  std::vector<std::thread> workers_;
};

}  // namespace neurfill::runtime
