#pragma once

// Fixed-size work-stealing thread pool: the execution substrate under every
// parallel primitive in src/runtime/parallel.hpp.
//
// Design constraints (see docs/runtime.md):
//  * One data-parallel job at a time.  The pool exists to run blocked loops
//    (parallel_for / parallel_reduce) from the main thread; concurrent
//    callers serialize on an internal mutex rather than interleaving jobs.
//  * The calling thread participates: a pool constructed with `threads = T`
//    spawns T-1 workers, so `threads = 1` means zero workers and every job
//    runs inline on the caller (the serial degrade path for 1-core hosts or
//    NEURFILL_THREADS=1).
//  * Work stealing over block indices: each participant owns a contiguous
//    shard of the block range and pops from its front; an idle participant
//    steals single blocks from the *back* of the fullest remaining shard.
//    Scheduling order therefore varies between runs — primitives that need
//    determinism (parallel_reduce) fix the block decomposition and combine
//    per-block results in block order, never in completion order.
//  * Exceptions thrown by a block are caught, the job is cancelled (the
//    remaining blocks are skipped), and the first exception is rethrown on
//    the calling thread after every participant has quiesced.
//  * Nested use is rejected by degrading: calling for_blocks from inside a
//    worker runs the nested job inline and serially on that worker, so
//    nesting can never deadlock the pool or oversubscribe the machine.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace neurfill::runtime {

class ThreadPool {
 public:
  /// `threads` is the total concurrency including the calling thread; the
  /// pool spawns `threads - 1` workers.  Values < 1 are clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the participating caller).
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(b) for every block index b in [0, num_blocks) across the
  /// pool and the calling thread; returns when all blocks completed.  The
  /// first exception thrown by any block cancels the remaining blocks and
  /// is rethrown here.  Safe (but serial) when called from inside a worker.
  void for_blocks(std::size_t num_blocks,
                  const std::function<void(std::size_t)>& body);

  /// True when the current thread is a worker of *any* ThreadPool, i.e. a
  /// nested parallel primitive would degrade to serial execution.
  static bool inside_worker();

 private:
  /// Remaining blocks [next, end) owned by one participant.
  struct Shard {
    std::size_t next = 0;
    std::size_t end = 0;
  };

  void worker_loop(std::size_t shard_index);
  /// Claims one block for `self` (own front first, then steal from the
  /// back of the fullest other shard).  Returns false when the job has no
  /// blocks left anywhere.
  bool claim_block(std::size_t self, std::size_t& block);
  void run_participant(std::size_t shard_index);

  // All job state below is guarded by m_.  Blocks are coarse by design
  // (grain-sized chunks of work, microseconds to milliseconds each), so a
  // single mutex around the index bookkeeping is both TSan-clean and cheap
  // relative to the work it schedules.
  std::mutex m_;
  std::condition_variable work_cv_;  ///< wakes workers for a new job
  std::condition_variable done_cv_;  ///< wakes the caller on completion
  std::vector<Shard> shards_;        ///< one per participant; [0] = caller
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t job_generation_ = 0;
  std::size_t blocks_total_ = 0;
  std::size_t blocks_claimed_ = 0;
  std::size_t blocks_done_ = 0;
  bool cancelled_ = false;
  std::exception_ptr first_error_;
  bool stop_ = false;

  std::mutex job_mutex_;  ///< serializes concurrent for_blocks callers
  std::vector<std::thread> workers_;
};

}  // namespace neurfill::runtime
