#pragma once

// Data-parallel primitives over the process-wide default ThreadPool.
//
// Determinism contract (docs/runtime.md): the block decomposition of every
// primitive is a pure function of (grain, n) — never of the thread count —
// and parallel_reduce combines per-block partials in ascending block order
// on the calling thread.  A loop whose blocks write disjoint outputs, or a
// reduction built from these primitives, therefore produces *bitwise
// identical* results at 1, 2, or N threads; the only nondeterminism in the
// pool is scheduling, which these primitives never observe.
//
// Grain guidance: `grain` is the maximum number of iterations per block.
// Pick it so one block is >= ~10 microseconds of work (mutex-based
// scheduling costs ~1 us per block); make it depend on the problem shape if
// useful, but never on thread_count() — that would silently break the
// determinism contract.

#include <cstddef>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace neurfill::runtime {

/// The process-wide pool.  Lazily constructed on first use with
/// `NEURFILL_THREADS` (env) threads, else std::thread::hardware_concurrency.
ThreadPool& default_pool();

/// Total concurrency of the default pool (>= 1).
int thread_count();

/// Rebuilds the default pool with `threads` threads (clamped to >= 1);
/// `threads == 0` restores the environment/hardware default.  Tools expose
/// this as --threads.  Must not be called from inside a parallel region.
void set_thread_count(int threads);

// Grain derivation from measured per-iteration cost.  The constants come
// from bench/bench_runtime_scaling on the committed baseline hardware:
// publishing a job (wake + claims + completion handshake) costs a handful
// of microseconds, and one atomic block claim ~50 ns, so blocks of ~25 us
// keep scheduling under 1% while still splitting finely enough for load
// balance.  Loops whose *total* cost is under ~50 us are not worth forking
// at all — the fork/join handshake would rival the work — and run as a
// single inline block.
constexpr double kTargetBlockCostNs = 25000.0;
constexpr double kSerialBelowNs = 50000.0;

/// Iterations per block for a loop of `n` iterations costing roughly
/// `ns_per_item` nanoseconds each.  Returns `n` (one inline block, no
/// scheduling) when the whole loop is cheaper than the fork/join handshake.
/// A pure function of its arguments — never of the thread count — so using
/// it preserves the determinism contract below.
inline std::size_t grain_for_cost(double ns_per_item, std::size_t n) {
  if (n == 0) return 1;
  if (!(ns_per_item > 0.0)) return n;
  if (ns_per_item * static_cast<double>(n) <= kSerialBelowNs) return n;
  const double g = kTargetBlockCostNs / ns_per_item;
  if (g <= 1.0) return 1;
  if (g >= static_cast<double>(n)) return n;
  return static_cast<std::size_t>(g);
}

/// Runs fn(begin, end) over [0, n) in blocks of at most `grain` iterations.
/// Blocks may run concurrently and in any order; fn must write only state
/// disjoint per iteration (or per block).  Exceptions propagate to the
/// caller (first thrown wins); remaining blocks are skipped on error.
template <typename Fn>
void parallel_for(std::size_t grain, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t num_blocks = (n + grain - 1) / grain;
  if (num_blocks == 1) {  // common small-loop path: no scheduling at all
    fn(std::size_t{0}, n);
    return;
  }
  default_pool().for_blocks(num_blocks, [&](std::size_t b) {
    const std::size_t begin = b * grain;
    const std::size_t end = begin + grain < n ? begin + grain : n;
    fn(begin, end);
  });
}

/// Blocked deterministic reduction: partial[b] = block_fn(begin, end) for
/// each fixed block, then acc = combine(acc, partial[b]) in ascending block
/// order starting from `identity`.  Because the decomposition depends only
/// on (grain, n) and the combination order is fixed, the result is bitwise
/// identical for every thread count (including pure serial execution).
template <typename T, typename BlockFn, typename CombineFn>
T parallel_reduce(std::size_t grain, std::size_t n, T identity,
                  BlockFn&& block_fn, CombineFn&& combine) {
  if (n == 0) return identity;
  if (grain == 0) grain = 1;
  const std::size_t num_blocks = (n + grain - 1) / grain;
  if (num_blocks == 1) return combine(identity, block_fn(std::size_t{0}, n));
  std::vector<T> partial(num_blocks, identity);
  default_pool().for_blocks(num_blocks, [&](std::size_t b) {
    const std::size_t begin = b * grain;
    const std::size_t end = begin + grain < n ? begin + grain : n;
    partial[b] = block_fn(begin, end);
  });
  T acc = identity;
  for (std::size_t b = 0; b < num_blocks; ++b)
    acc = combine(acc, partial[b]);
  return acc;
}

}  // namespace neurfill::runtime
