#include "runtime/thread_pool.hpp"

#include <string>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace neurfill::runtime {

namespace {
/// Set while a thread executes blocks for some pool, including the caller
/// participating in its own job.  Nested primitives check this to degrade.
thread_local bool tls_inside_worker = false;
}  // namespace

bool ThreadPool::inside_worker() { return tls_inside_worker; }

ThreadPool::ThreadPool(int threads) {
  const std::size_t total = threads < 1 ? 1 : static_cast<std::size_t>(threads);
  shards_.resize(total);
  workers_.reserve(total - 1);
  for (std::size_t i = 1; i < total; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::claim_block(std::size_t self, std::size_t& block) {
  std::lock_guard<std::mutex> lock(m_);
  if (cancelled_) return false;
  Shard& own = shards_[self];
  if (own.next < own.end) {  // owner pops from the front of its shard
    block = own.next++;
    ++blocks_claimed_;
    return true;
  }
  // Steal one block from the back of the fullest remaining shard.
  std::size_t victim = self, victim_left = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::size_t left = shards_[i].end - shards_[i].next;
    if (i != self && left > victim_left) {
      victim = i;
      victim_left = left;
    }
  }
  if (victim_left == 0) return false;
  block = --shards_[victim].end;
  ++blocks_claimed_;
  return true;
}

void ThreadPool::run_participant(std::size_t shard_index) {
  const bool was_inside = tls_inside_worker;
  tls_inside_worker = true;
  std::size_t block = 0;
  while (claim_block(shard_index, block)) {
    try {
      (*body_)(block);
    } catch (...) {
      std::lock_guard<std::mutex> lock(m_);
      if (!first_error_) first_error_ = std::current_exception();
      cancelled_ = true;  // claim_block refuses further blocks
    }
    std::lock_guard<std::mutex> lock(m_);
    ++blocks_done_;
  }
  tls_inside_worker = was_inside;
}

void ThreadPool::worker_loop(std::size_t shard_index) {
  // Stable trace-track identity: spans recorded from this worker (including
  // nested NF_TRACE_SPANs inside user blocks) land on a per-worker track
  // named by the shard it owns.
  obs::set_current_thread_name("pool-worker-" + std::to_string(shard_index));
  std::size_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(m_);
      work_cv_.wait(lock, [&] {
        return stop_ || job_generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = job_generation_;
    }
    {
      // One span per job participation, so the trace shows exactly when
      // each worker was busy and how evenly the blocks balanced.
      NF_TRACE_SPAN("runtime.participate");
      run_participant(shard_index);
    }
    // Each participant notifies after its final done-increment, so the true
    // last finisher always wakes the caller; earlier notifies are harmless
    // (the caller re-checks the completion predicate under the lock).
    done_cv_.notify_one();
  }
}

void ThreadPool::for_blocks(std::size_t num_blocks,
                            const std::function<void(std::size_t)>& body) {
  if (num_blocks == 0) return;
  NF_TRACE_SPAN("runtime.for_blocks");
  NF_COUNTER_ADD("runtime.jobs", 1);
  NF_COUNTER_ADD("runtime.blocks", num_blocks);
  // Nested call from inside any pool's worker: degrade to serial inline
  // execution (never park a worker on another job — that can deadlock).
  if (tls_inside_worker || workers_.empty()) {
    for (std::size_t b = 0; b < num_blocks; ++b) body(b);
    return;
  }

  std::lock_guard<std::mutex> job_lock(job_mutex_);
  {
    std::lock_guard<std::mutex> lock(m_);
    body_ = &body;
    blocks_total_ = num_blocks;
    blocks_claimed_ = 0;
    blocks_done_ = 0;
    cancelled_ = false;
    first_error_ = nullptr;
    // Deal contiguous shards (remainder spread over the first shards).
    const std::size_t parts = shards_.size();
    const std::size_t q = num_blocks / parts, r = num_blocks % parts;
    std::size_t begin = 0;
    for (std::size_t i = 0; i < parts; ++i) {
      const std::size_t len = q + (i < r ? 1 : 0);
      shards_[i].next = begin;
      shards_[i].end = begin + len;
      begin += len;
    }
    ++job_generation_;
  }
  work_cv_.notify_all();

  run_participant(0);  // the caller works its own shard and then steals

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(m_);
    done_cv_.wait(lock, [&] {
      // Normal completion: every block executed.  After a cancel no new
      // claims happen, so waiting for claimed == done means every in-flight
      // block has quiesced and no participant still holds `body`.
      return blocks_done_ == blocks_total_ ||
             (cancelled_ && blocks_done_ == blocks_claimed_);
    });
    err = first_error_;
    body_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace neurfill::runtime
