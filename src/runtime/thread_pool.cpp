#include "runtime/thread_pool.hpp"

#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace neurfill::runtime {

namespace {
/// Set while a thread executes blocks for some pool, including the caller
/// participating in its own job.  Nested primitives check this to degrade.
thread_local bool tls_inside_worker = false;

// The claim counter packs (generation, next block index) into one 64-bit
// atomic so a single compare-exchange both validates that the claimant is
// working on the current job and reserves the next block.  A participant
// that went to sleep during job G and wakes during job G+k can therefore
// never claim (or execute) a block of the wrong job: its CAS carries G in
// the generation bits and fails against the republished counter.
constexpr int kIndexBits = 40;
constexpr std::uint64_t kIndexMask = (std::uint64_t{1} << kIndexBits) - 1;
/// "No job" index: >= every legal blocks_total_, so claims always fail.
constexpr std::uint64_t kIdleIndex = kIndexMask;

constexpr std::uint64_t pack(std::uint64_t gen, std::uint64_t index) {
  return (gen << kIndexBits) | index;
}
constexpr std::uint64_t gen_of(std::uint64_t v) { return v >> kIndexBits; }
constexpr std::uint64_t index_of(std::uint64_t v) { return v & kIndexMask; }

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}
}  // namespace

bool ThreadPool::inside_worker() { return tls_inside_worker; }

ThreadPool::SerialRegion::SerialRegion() : prev_(tls_inside_worker) {
  tls_inside_worker = true;
}

ThreadPool::SerialRegion::~SerialRegion() { tls_inside_worker = prev_; }

ThreadPool::ThreadPool(int threads) {
  const std::size_t total = threads < 1 ? 1 : static_cast<std::size_t>(threads);
  next_block_.store(pack(0, kIdleIndex), std::memory_order_relaxed);
  // Spinning only pays when a waiter has a core to itself; on an
  // oversubscribed host (more participants than cores, e.g. the TSan CI
  // job or a 1-core container) a spinning waiter steals cycles from the
  // thread it is waiting on, so park almost immediately instead.
  const unsigned hw = std::thread::hardware_concurrency();
  spin_iterations_ = (hw >= total) ? 4096 : 1;
  workers_.reserve(total - 1);
  for (std::size_t i = 1; i < total; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_.store(true, std::memory_order_release);
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::claim(std::uint64_t my_gen, std::size_t& block) {
  std::uint64_t cur = next_block_.load(std::memory_order_acquire);
  while (gen_of(cur) == my_gen) {
    // The acquire load of blocks_total_ pairs with its release store in
    // for_blocks: a participant that observes a job's total also observes
    // the preceding retirement of the previous job's counter, so the CAS
    // below can never resurrect a completed generation (see for_blocks).
    if (index_of(cur) >= blocks_total_.load(std::memory_order_acquire))
      return false;
    if (next_block_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      block = static_cast<std::size_t>(index_of(cur));
      return true;
    }
  }
  return false;
}

void ThreadPool::run_participant(std::uint64_t my_gen) {
  const bool was_inside = tls_inside_worker;
  tls_inside_worker = true;
  std::size_t block = 0;
  while (claim(my_gen, block)) {
    // A successful claim happens-after the job's publication and holds the
    // job open (the caller waits for this block's done-increment), so the
    // plain reads of body_ and blocks_total_ here are race-free.
    if (!cancelled_.load(std::memory_order_acquire)) {
      try {
        (*body_)(block);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(m_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        // Claiming continues (the counter must still drain to total so the
        // completion condition stays a single comparison), but every block
        // claimed after this store is skipped, not executed.
        cancelled_.store(true, std::memory_order_release);
      }
    }
    const std::size_t done =
        blocks_done_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == blocks_total_.load(std::memory_order_acquire)) {
      // Empty critical section: serializes with the caller's predicate
      // check so the notify cannot slip into the window between the
      // caller's last check and its wait.
      { std::lock_guard<std::mutex> lock(m_); }
      done_cv_.notify_one();
    }
  }
  tls_inside_worker = was_inside;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  // Stable trace-track identity: spans recorded from this worker (including
  // nested NF_TRACE_SPANs inside user blocks) land on a per-worker track.
  obs::set_current_thread_name("pool-worker-" + std::to_string(worker_index));
  std::uint64_t seen = 0;
  int spins = spin_iterations_;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    const std::uint64_t gen =
        gen_of(next_block_.load(std::memory_order_acquire));
    if (gen != seen) {
      seen = gen;
      {
        // One span per job participation, so the trace shows exactly when
        // each worker was busy and how evenly the blocks balanced.
        NF_TRACE_SPAN("runtime.participate");
        run_participant(gen);
      }
      spins = spin_iterations_;
      continue;
    }
    if (--spins > 0) {
      cpu_pause();
      continue;
    }
    std::unique_lock<std::mutex> lock(m_);
    work_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             gen_of(next_block_.load(std::memory_order_relaxed)) != seen;
    });
    spins = spin_iterations_;
  }
}

void ThreadPool::for_blocks(std::size_t num_blocks,
                            const std::function<void(std::size_t)>& body) {
  if (num_blocks == 0) return;
  NF_TRACE_SPAN("runtime.for_blocks");
  NF_COUNTER_ADD("runtime.jobs", 1);
  NF_COUNTER_ADD("runtime.blocks", num_blocks);
  // A one-block job has no parallelism to extract: run it inline rather
  // than waking workers for a handshake (cost-model grains collapse whole
  // small loops into exactly one block to hit this path).
  if (num_blocks == 1) {
    const bool was_inside = tls_inside_worker;
    tls_inside_worker = true;
    try {
      body(0);
    } catch (...) {
      tls_inside_worker = was_inside;
      throw;
    }
    tls_inside_worker = was_inside;
    return;
  }
  // Nested call from inside any pool's worker: degrade to serial inline
  // execution (never park a worker on another job — that can deadlock).
  if (tls_inside_worker || workers_.empty()) {
    for (std::size_t b = 0; b < num_blocks; ++b) body(b);
    return;
  }
  NF_CHECK(num_blocks < kIdleIndex, "for_blocks: %zu blocks overflow the "
           "claim counter's index field", num_blocks);

  std::lock_guard<std::mutex> job_lock(job_mutex_);
  std::uint64_t my_gen;
  {
    std::lock_guard<std::mutex> lock(m_);
    body_ = &body;
    first_error_ = nullptr;
    cancelled_.store(false, std::memory_order_relaxed);
    blocks_done_.store(0, std::memory_order_relaxed);
    blocks_total_.store(num_blocks, std::memory_order_release);
    my_gen = gen_of(next_block_.load(std::memory_order_relaxed)) + 1;
    // Publication: the release store is what participants acquire before
    // touching any of the job state written above.
    next_block_.store(pack(my_gen, 0), std::memory_order_release);
  }
  work_cv_.notify_all();

  run_participant(my_gen);  // the caller claims blocks like any worker

  // Completion: every block was claimed exactly once and its done-increment
  // retired (exception-cancelled blocks are claimed and skipped, so done
  // still drains to total).  Spin briefly — jobs are typically back to
  // back — then park on the condition variable.
  if (blocks_done_.load(std::memory_order_acquire) != num_blocks) {
    for (int spin = spin_iterations_; spin > 0; --spin) {
      cpu_pause();
      if (blocks_done_.load(std::memory_order_acquire) == num_blocks) break;
    }
  }
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(m_);
    done_cv_.wait(lock, [&] {
      return blocks_done_.load(std::memory_order_acquire) == num_blocks;
    });
    err = first_error_;
    first_error_ = nullptr;
    body_ = nullptr;
    // Retire the counter to the idle sentinel *before* this mutex section
    // ends: the next publication's release store of blocks_total_ then
    // carries the retirement to any late-waking participant, whose claim
    // CAS consequently fails on the generation bits instead of reviving
    // this job's counter.
    next_block_.store(pack(my_gen + 1, kIdleIndex), std::memory_order_release);
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace neurfill::runtime
