#include "opt/objective.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"

namespace neurfill {

void Box::clamp(VecD& x) const {
  if (x.size() != lo.size())
    throw std::invalid_argument("Box::clamp: size mismatch");
  NF_CHECK(lo.size() == hi.size(), "Box: lo has %zu entries, hi has %zu",
           lo.size(), hi.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    NF_CHECK(lo[i] <= hi[i], "Box: inverted bounds [%g, %g] at %zu", lo[i],
             hi[i], i);
    x[i] = std::clamp(x[i], lo[i], hi[i]);
  }
}

bool Box::contains(const VecD& x, double tol) const {
  if (x.size() != lo.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i)
    if (x[i] < lo[i] - tol || x[i] > hi[i] + tol) return false;
  return true;
}

VecD numerical_gradient(const ObjectiveFn& f, const VecD& x, double eps) {
  VecD g(x.size(), 0.0);
  VecD xp = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double orig = xp[i];
    xp[i] = orig + eps;
    const double fp = f(xp, nullptr);
    xp[i] = orig - eps;
    const double fm = f(xp, nullptr);
    xp[i] = orig;
    // Poison detector: non-finite samples would hide inside the central
    // difference as a plausible-looking garbage gradient entry.
    NF_CHECK_FINITE(fp);
    NF_CHECK_FINITE(fm);
    g[i] = (fp - fm) / (2.0 * eps);
  }
  return g;
}

}  // namespace neurfill
