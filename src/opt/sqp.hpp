#pragma once

#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "common/deadline.hpp"
#include "opt/box_qp.hpp"
#include "opt/objective.hpp"

namespace neurfill {

/// Limited-memory BFGS approximation of the *direct* Hessian B (not its
/// inverse), kept as B = sigma*I plus a sum of rank-2 terms so that
/// Hessian-vector products for the box-QP subproblem cost O(m n).
/// Powell damping keeps B positive definite when curvature is poor.
class LbfgsHessian {
 public:
  explicit LbfgsHessian(int memory = 8) : memory_(memory) {}

  void reset();
  /// Feeds the step s = x_{k+1} - x_k and gradient change y = g_{k+1} - g_k.
  void update(const VecD& s, const VecD& y);
  /// out = B * v.
  void apply(const VecD& v, VecD& out) const;
  bool empty() const { return raw_.empty(); }

  /// Checkpoint support (docs/robustness.md): the raw (s, y) history plus
  /// sigma fully determine the Hessian — restore_state rebuilds the damped
  /// terms from them, bitwise identically to the original incremental
  /// construction.
  void export_state(double* sigma,
                    std::vector<std::pair<VecD, VecD>>* pairs) const;
  void restore_state(double sigma,
                     const std::vector<std::pair<VecD, VecD>>& pairs);

 private:
  struct Pair {
    VecD s, y;
  };
  struct Term {
    VecD y, Bs;
    double sy = 0.0, sBs = 0.0;
  };
  void rebuild();

  int memory_;
  double sigma_ = 1.0;
  std::deque<Pair> raw_;
  std::vector<Term> terms_;
};

/// Complete loop-top state of an SQP run: everything needed to continue the
/// iteration bitwise-identically after a process restart.  Captured by
/// SqpOptions::checkpoint_hook at the top of every iteration; fed back via
/// SqpOptions::resume.
struct SqpState {
  VecD x;                 ///< current iterate (last accepted point)
  VecD g;                 ///< gradient at x
  double f = 0.0;         ///< objective at x
  int iteration = 0;      ///< 0-based index of the iteration about to run
  int function_evaluations = 0;
  double lbfgs_sigma = 1.0;
  std::vector<std::pair<VecD, VecD>> lbfgs_pairs;  ///< raw (s, y) history
};

struct SqpOptions {
  int max_iterations = 100;
  double tolerance = 1e-6;  ///< on the projected-gradient infinity norm
  int lbfgs_memory = 8;
  double armijo_c1 = 1e-4;
  int max_line_search = 30;
  BoxQpOptions qp;
  /// Expiry returns the best-so-far iterate with timed_out set.
  Deadline deadline;
  /// Called at the top of every iteration with the loop-top state.
  std::function<void(const SqpState&)> checkpoint_hook;
  /// When non-null, skip the initial evaluation and continue from this
  /// state (borrowed; must outlive the call).
  const SqpState* resume = nullptr;
};

struct SqpResult {
  VecD x;
  double f = 0.0;
  int iterations = 0;
  int function_evaluations = 0;
  bool converged = false;
  bool timed_out = false;  ///< deadline expired; x is the best-so-far point
  /// The run hit unrecoverable numeric poison: x/f are the last good
  /// iterate (or the clamped start with f = +inf when the very first
  /// evaluation was poisoned, so MSP sorting drops the start).
  bool poisoned = false;
  /// Poisoned evaluations recovered by backtracking (exponential shrink).
  int numeric_recoveries = 0;
};

/// Bound-constrained SQP (the optimizer of the NeurFill framework, Fig. 7):
/// at each iterate a quadratic model with L-BFGS Hessian is minimized over
/// the shifted box (the QP subproblem, Eq. 5d being the only constraints),
/// followed by an Armijo backtracking line search.  Minimizes f; callers
/// maximizing a score pass its negation.
SqpResult sqp_minimize(const ObjectiveFn& f, VecD x0, const Box& box,
                       const SqpOptions& options = SqpOptions());

/// Multiple-starting-points driver (the "MSP" of MSP-SQP): runs SQP from
/// every start and returns the results sorted best (lowest f) first.
std::vector<SqpResult> msp_sqp_minimize(const ObjectiveFn& f,
                                        const std::vector<VecD>& starts,
                                        const Box& box,
                                        const SqpOptions& options = SqpOptions());

}  // namespace neurfill
