#pragma once

#include <deque>

#include "opt/box_qp.hpp"
#include "opt/objective.hpp"

namespace neurfill {

/// Limited-memory BFGS approximation of the *direct* Hessian B (not its
/// inverse), kept as B = sigma*I plus a sum of rank-2 terms so that
/// Hessian-vector products for the box-QP subproblem cost O(m n).
/// Powell damping keeps B positive definite when curvature is poor.
class LbfgsHessian {
 public:
  explicit LbfgsHessian(int memory = 8) : memory_(memory) {}

  void reset();
  /// Feeds the step s = x_{k+1} - x_k and gradient change y = g_{k+1} - g_k.
  void update(const VecD& s, const VecD& y);
  /// out = B * v.
  void apply(const VecD& v, VecD& out) const;
  bool empty() const { return raw_.empty(); }

 private:
  struct Pair {
    VecD s, y;
  };
  struct Term {
    VecD y, Bs;
    double sy = 0.0, sBs = 0.0;
  };
  void rebuild();

  int memory_;
  double sigma_ = 1.0;
  std::deque<Pair> raw_;
  std::vector<Term> terms_;
};

struct SqpOptions {
  int max_iterations = 100;
  double tolerance = 1e-6;  ///< on the projected-gradient infinity norm
  int lbfgs_memory = 8;
  double armijo_c1 = 1e-4;
  int max_line_search = 30;
  BoxQpOptions qp;
};

struct SqpResult {
  VecD x;
  double f = 0.0;
  int iterations = 0;
  int function_evaluations = 0;
  bool converged = false;
};

/// Bound-constrained SQP (the optimizer of the NeurFill framework, Fig. 7):
/// at each iterate a quadratic model with L-BFGS Hessian is minimized over
/// the shifted box (the QP subproblem, Eq. 5d being the only constraints),
/// followed by an Armijo backtracking line search.  Minimizes f; callers
/// maximizing a score pass its negation.
SqpResult sqp_minimize(const ObjectiveFn& f, VecD x0, const Box& box,
                       const SqpOptions& options = SqpOptions());

/// Multiple-starting-points driver (the "MSP" of MSP-SQP): runs SQP from
/// every start and returns the results sorted best (lowest f) first.
std::vector<SqpResult> msp_sqp_minimize(const ObjectiveFn& f,
                                        const std::vector<VecD>& starts,
                                        const Box& box,
                                        const SqpOptions& options = SqpOptions());

}  // namespace neurfill
