#include "opt/box_qp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neurfill {

namespace {

double dot(const VecD& a, const VecD& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double quad_value(const HessVec& B, const VecD& g, const VecD& d, VecD& tmp) {
  B(d, tmp);
  return 0.5 * dot(d, tmp) + dot(g, d);
}

}  // namespace

BoxQpResult solve_box_qp(const HessVec& B, const VecD& g, const Box& box,
                         const BoxQpOptions& options) {
  const std::size_t n = g.size();
  if (box.lo.size() != n || box.hi.size() != n)
    throw std::invalid_argument("solve_box_qp: box size mismatch");
  for (std::size_t i = 0; i < n; ++i)
    if (box.lo[i] > box.hi[i])
      throw std::invalid_argument("solve_box_qp: empty box");

  BoxQpResult res;
  res.d.assign(n, 0.0);
  box.clamp(res.d);

  VecD grad(n), tmp(n), pg(n);
  VecD r(n), p(n), Bp(n);
  std::vector<bool> active(n, false);

  const double gscale = std::max(1.0, std::sqrt(dot(g, g)));

  for (int outer = 0; outer < options.max_outer; ++outer) {
    res.outer_iterations = outer + 1;
    // Gradient of the quadratic at d.
    B(res.d, grad);
    for (std::size_t i = 0; i < n; ++i) grad[i] += g[i];
    // Projected gradient: zero where the bound blocks descent.
    const double tol_b = 1e-12;
    for (std::size_t i = 0; i < n; ++i) {
      pg[i] = grad[i];
      if (res.d[i] <= box.lo[i] + tol_b && grad[i] > 0.0) pg[i] = 0.0;
      if (res.d[i] >= box.hi[i] - tol_b && grad[i] < 0.0) pg[i] = 0.0;
    }
    const double pgnorm = std::sqrt(dot(pg, pg));
    if (pgnorm < options.tolerance * gscale) break;

    // --- Cauchy phase: projected steepest-descent step with backtracking.
    B(pg, tmp);
    const double curv = dot(pg, tmp);
    double alpha = curv > 0.0 ? dot(pg, pg) / curv : 1.0;
    const double q0 = quad_value(B, g, res.d, tmp);
    VecD trial(n);
    for (int bt = 0; bt < 20; ++bt) {
      for (std::size_t i = 0; i < n; ++i)
        trial[i] = std::clamp(res.d[i] - alpha * pg[i], box.lo[i], box.hi[i]);
      if (quad_value(B, g, trial, tmp) < q0) break;
      alpha *= 0.5;
    }
    res.d = trial;

    // --- Active set at the Cauchy point.
    for (std::size_t i = 0; i < n; ++i)
      active[i] = (res.d[i] <= box.lo[i] + tol_b) ||
                  (res.d[i] >= box.hi[i] - tol_b);

    // --- CG in the free subspace, truncated at the box boundary.
    B(res.d, r);
    for (std::size_t i = 0; i < n; ++i)
      r[i] = active[i] ? 0.0 : -(r[i] + g[i]);  // residual = -grad on free set
    double rr = dot(r, r);
    if (rr < 1e-30) continue;
    p = r;
    for (int cg = 0; cg < options.max_cg; ++cg) {
      B(p, Bp);
      for (std::size_t i = 0; i < n; ++i)
        if (active[i]) Bp[i] = 0.0;
      const double pBp = dot(p, Bp);
      if (pBp <= 1e-30) break;  // nonconvex or flat direction: stop CG
      double step = rr / pBp;
      // Truncate the step at the first bound hit.
      double max_step = step;
      for (std::size_t i = 0; i < n; ++i) {
        if (active[i] || p[i] == 0.0) continue;
        const double limit = p[i] > 0.0 ? (box.hi[i] - res.d[i]) / p[i]
                                        : (box.lo[i] - res.d[i]) / p[i];
        max_step = std::min(max_step, limit);
      }
      const bool hit_bound = max_step < step;
      step = std::max(0.0, std::min(step, max_step));
      for (std::size_t i = 0; i < n; ++i) res.d[i] += step * p[i];
      if (hit_bound) break;  // active set changed: restart outer loop
      double rr_new = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        r[i] -= step * Bp[i];
        rr_new += r[i] * r[i];
      }
      if (rr_new < options.tolerance * options.tolerance * gscale * gscale)
        break;
      const double beta = rr_new / rr;
      rr = rr_new;
      for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    }
    box.clamp(res.d);
  }
  res.objective = quad_value(B, g, res.d, tmp);
  return res;
}

}  // namespace neurfill
