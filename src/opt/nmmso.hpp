#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/deadline.hpp"
#include "common/rng.hpp"
#include "opt/objective.hpp"

namespace neurfill {

/// One located peak region of the objective.
struct Mode {
  VecD x;
  double value = 0.0;  ///< objective value (maximization)
};

struct NmmsoOptions {
  int max_evaluations = 4000;
  int swarm_size = 10;          ///< particle cap per swarm
  int max_evolutions = 8;       ///< swarms advanced per iteration
  double merge_distance = 0.05; ///< normalized gbest distance triggering merge checks
  double immigrant_prob = 0.1;  ///< chance of seeding a fresh random swarm
  double inertia = 0.5;         ///< PSO w
  double cognitive = 1.5;       ///< PSO c1
  double social = 1.5;          ///< PSO c2
  std::uint64_t seed = 1;
  /// Evaluate each iteration's batch of per-swarm objective calls on the
  /// runtime's thread pool.  The returned modes are identical either way
  /// (the batch is planned before any evaluation and applied in a fixed
  /// order); enable only if the objective is safe to call concurrently.
  bool parallel_evaluations = false;
  /// Expiry stops the search and returns the modes found so far (checked
  /// between iterations, where the swarm state is consistent).
  Deadline deadline;
  /// Operator interrupt (borrowed, e.g. from a SIGINT handler).  Checked
  /// between iterations; when set, run() throws ErrorException(kInterrupted)
  /// — partial multi-modal state is not checkpointable, so the caller
  /// restarts the (deterministic) search on resume.
  const std::atomic<bool>* interrupt = nullptr;
};

/// Niching Migratory Multi-Swarm Optimiser [Fieldsend, CEC 2014], the
/// multi-modal starting-points search of NeurFill (Section IV-D).  The
/// optimizer *maximizes* f over the box and returns one mode per surviving
/// swarm: the potential peak regions of the quality score, each of which the
/// MSP-SQP framework then refines.
///
/// Faithful to the reference algorithm in its essential mechanics: swarms
/// are seeded from a single random particle; swarms whose gbests are close
/// or fail the midpoint valley test merge; swarms evolve by PSO velocity
/// updates (new particles are sampled inside the nearest-swarm half-radius
/// while a swarm is below its particle cap); improved particles that are
/// separated from their gbest by a valley hive off into new swarms; random
/// immigrants keep exploring.
class Nmmso {
 public:
  /// `f` is evaluated without gradients (multi-modal search is derivative
  /// free); pass nullptr-tolerant objectives.
  Nmmso(ObjectiveFn f, Box box, const NmmsoOptions& options = NmmsoOptions());

  /// Installs a batched value objective: each iteration's planned move
  /// batch then goes through one call instead of per-move `f` calls.  The
  /// batch function must return exactly the values `f` would for the same
  /// points (the search mixes both paths — out-of-batch evaluations such as
  /// merge midpoints, hive-off tests, and immigrants stay scalar — so the
  /// located modes are identical with or without it).  Overrides
  /// NmmsoOptions::parallel_evaluations for the move batch; the callee
  /// decides its own parallelism.
  void set_batch_objective(BatchObjectiveFn batch_f) {
    batch_f_ = std::move(batch_f);
  }

  /// Runs until the evaluation budget is exhausted; returns the located
  /// modes sorted best first.
  std::vector<Mode> run();

  int evaluations_used() const { return evaluations_; }

  /// True when the last run() stopped on an expired deadline; the returned
  /// modes are the honest best-so-far.
  bool timed_out() const { return timed_out_; }

  /// Poisoned (non-finite) evaluations observed and dropped: the poisoned
  /// member is discarded (spawn) or barred from pbest/gbest (PSO move)
  /// instead of failing the batch (docs/robustness.md).
  long poisoned_drops() const {
    return poisoned_drops_.load(std::memory_order_relaxed);
  }

 private:
  struct Particle {
    VecD x, v;
    VecD pbest_x;
    double pbest_val = 0.0;
  };
  struct Swarm {
    std::vector<Particle> particles;
    VecD gbest_x;
    double gbest_val = 0.0;
    bool just_changed = true;  ///< flags merge re-checks
  };

  /// One planned swarm advance: every random draw is made (serially) at
  /// planning time, the objective call is deferred so a whole iteration's
  /// moves can be evaluated as a batch, and the state change is applied
  /// afterwards in planning order.  Swarm/particle indices stay valid
  /// between phases because each iteration plans at most one move per
  /// (distinct) swarm and merges only happen between iterations.
  struct PlannedMove {
    std::size_t swarm = 0;
    bool spawn = false;        ///< below-cap spawn vs. PSO update
    std::size_t particle = 0;  ///< PSO only: index of the moved particle
    VecD x;                    ///< new position = the evaluation point
    VecD v;                    ///< PSO only: updated velocity
    double value = 0.0;        ///< filled by evaluate_moves()
  };

  double evaluate(const VecD& x);
  double sanitize_value(double v);
  VecD random_point();
  double normalized_distance(const VecD& a, const VecD& b) const;
  void try_merges();
  PlannedMove plan_evolution(std::size_t swarm_index);
  void evaluate_moves(std::vector<PlannedMove>& moves);
  void apply_move(const PlannedMove& move);
  Swarm make_swarm(VecD x, double val);

  ObjectiveFn f_;
  BatchObjectiveFn batch_f_;  ///< optional; see set_batch_objective
  Box box_;
  NmmsoOptions opt_;
  Rng rng_;
  std::vector<Swarm> swarms_;
  int evaluations_ = 0;
  bool timed_out_ = false;
  std::atomic<long> poisoned_drops_{0};  ///< batch evals run concurrently
};

}  // namespace neurfill
