#include "opt/nmmso.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

namespace neurfill {

Nmmso::Nmmso(ObjectiveFn f, Box box, const NmmsoOptions& options)
    : f_(std::move(f)), box_(std::move(box)), opt_(options), rng_(options.seed) {
  if (box_.lo.empty() || box_.lo.size() != box_.hi.size())
    throw std::invalid_argument("Nmmso: bad box");
  for (std::size_t i = 0; i < box_.lo.size(); ++i)
    if (box_.hi[i] < box_.lo[i])
      throw std::invalid_argument("Nmmso: empty box");
}

double Nmmso::evaluate(const VecD& x) {
  ++evaluations_;
  return sanitize_value(f_(x, nullptr));
}

double Nmmso::sanitize_value(double v) {
  if (NF_FAULT("nmmso.poison")) v = std::numeric_limits<double>::quiet_NaN();
  if (!std::isfinite(v)) [[unlikely]] {
    // Poisoned member: map to -inf so it can never become a pbest/gbest
    // (and a poisoned spawn is discarded in apply_move) — the rest of the
    // batch proceeds untouched.
    poisoned_drops_.fetch_add(1, std::memory_order_relaxed);
    NF_COUNTER_ADD("opt.nmmso_poison_drops", 1);
    return -std::numeric_limits<double>::infinity();
  }
  return v;
}

VecD Nmmso::random_point() {
  VecD x(box_.lo.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = rng_.uniform(box_.lo[i], box_.hi[i]);
  return x;
}

double Nmmso::normalized_distance(const VecD& a, const VecD& b) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double range = std::max(box_.hi[i] - box_.lo[i], 1e-300);
    const double d = (a[i] - b[i]) / range;
    d2 += d * d;
  }
  return std::sqrt(d2 / static_cast<double>(a.size()));
}

Nmmso::Swarm Nmmso::make_swarm(VecD x, double val) {
  Swarm s;
  Particle p;
  p.x = x;
  p.v.assign(x.size(), 0.0);
  p.pbest_x = x;
  p.pbest_val = val;
  s.particles.push_back(std::move(p));
  s.gbest_x = std::move(x);
  s.gbest_val = val;
  s.just_changed = true;
  return s;
}

void Nmmso::try_merges() {
  // For every flagged swarm find its nearest neighbour; merge if the gbests
  // are within the merge distance, or if the midpoint between them is at
  // least as fit as the worse gbest (no valley: same peak region).
  bool merged_any = true;
  while (merged_any && swarms_.size() > 1) {
    merged_any = false;
    for (std::size_t i = 0; i < swarms_.size() && !merged_any; ++i) {
      if (!swarms_[i].just_changed) continue;
      swarms_[i].just_changed = false;
      double best_d = std::numeric_limits<double>::infinity();
      std::size_t nearest = i;
      for (std::size_t j = 0; j < swarms_.size(); ++j) {
        if (j == i) continue;
        const double d =
            normalized_distance(swarms_[i].gbest_x, swarms_[j].gbest_x);
        if (d < best_d) {
          best_d = d;
          nearest = j;
        }
      }
      if (nearest == i) continue;
      bool do_merge = best_d < opt_.merge_distance;
      if (!do_merge && evaluations_ < opt_.max_evaluations) {
        VecD mid(box_.lo.size());
        for (std::size_t k = 0; k < mid.size(); ++k)
          mid[k] = 0.5 * (swarms_[i].gbest_x[k] + swarms_[nearest].gbest_x[k]);
        const double mid_val = evaluate(mid);
        const double worse =
            std::min(swarms_[i].gbest_val, swarms_[nearest].gbest_val);
        do_merge = mid_val >= worse;
      }
      if (do_merge) {
        Swarm& keep = swarms_[i].gbest_val >= swarms_[nearest].gbest_val
                          ? swarms_[i]
                          : swarms_[nearest];
        Swarm& drop = swarms_[i].gbest_val >= swarms_[nearest].gbest_val
                          ? swarms_[nearest]
                          : swarms_[i];
        for (auto& p : drop.particles) keep.particles.push_back(std::move(p));
        // Keep the fittest particles up to the cap.
        std::sort(keep.particles.begin(), keep.particles.end(),
                  [](const Particle& a, const Particle& b) {
                    return a.pbest_val > b.pbest_val;
                  });
        if (static_cast<int>(keep.particles.size()) > opt_.swarm_size)
          keep.particles.resize(static_cast<std::size_t>(opt_.swarm_size));
        keep.just_changed = true;
        const std::size_t drop_idx =
            static_cast<std::size_t>(&drop - swarms_.data());
        swarms_.erase(swarms_.begin() + static_cast<std::ptrdiff_t>(drop_idx));
        merged_any = true;
      }
    }
  }
}

Nmmso::PlannedMove Nmmso::plan_evolution(std::size_t swarm_index) {
  const Swarm& swarm = swarms_[swarm_index];
  const std::size_t dims = box_.lo.size();
  PlannedMove move;
  move.swarm = swarm_index;
  if (static_cast<int>(swarm.particles.size()) < opt_.swarm_size) {
    // Below the cap: sample a new particle around the gbest, within half the
    // normalized distance to the nearest other swarm (Fieldsend's
    // initialization sphere), so the swarm stays inside its niche.
    move.spawn = true;
    double radius = 0.1;
    for (const Swarm& other : swarms_) {
      if (&other == &swarm) continue;
      radius = std::min(
          radius, 0.5 * normalized_distance(swarm.gbest_x, other.gbest_x));
    }
    move.x.resize(dims);
    for (std::size_t i = 0; i < dims; ++i) {
      const double range = box_.hi[i] - box_.lo[i];
      move.x[i] =
          std::clamp(swarm.gbest_x[i] + rng_.normal(0.0, radius) * range,
                     box_.lo[i], box_.hi[i]);
    }
    return move;
  }
  // At the cap: PSO velocity update of a random particle.
  move.particle = static_cast<std::size_t>(
      rng_.uniform_index(swarm.particles.size()));
  const Particle& p = swarm.particles[move.particle];
  move.v.resize(dims);
  move.x.resize(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    move.v[i] = opt_.inertia * p.v[i] +
                opt_.cognitive * rng_.uniform() * (p.pbest_x[i] - p.x[i]) +
                opt_.social * rng_.uniform() * (swarm.gbest_x[i] - p.x[i]);
    move.x[i] = std::clamp(p.x[i] + move.v[i], box_.lo[i], box_.hi[i]);
  }
  return move;
}

void Nmmso::evaluate_moves(std::vector<PlannedMove>& moves) {
  NF_TRACE_SPAN("opt.nmmso_batch");
  NF_COUNTER_ADD("opt.nmmso_evaluations", moves.size());
  if (batch_f_ && !moves.empty()) {
    // One call evaluates the whole iteration's move batch (one batched
    // surrogate forward); values are contractually identical to per-move
    // scalar calls, so sanitize and budget-account exactly as below.
    NF_TRACE_SPAN("opt.nmmso_batch_objective");
    std::vector<VecD> xs;
    xs.reserve(moves.size());
    for (const PlannedMove& m : moves) xs.push_back(m.x);
    const std::vector<double> values = batch_f_(xs);
    if (values.size() != moves.size())
      throw std::logic_error("Nmmso: batch objective returned wrong count");
    for (std::size_t m = 0; m < moves.size(); ++m)
      moves[m].value = sanitize_value(values[m]);
    evaluations_ += static_cast<int>(moves.size());
    return;
  }
  if (opt_.parallel_evaluations && moves.size() > 1) {
    PlannedMove* pm = moves.data();
    const ObjectiveFn& f = f_;
    runtime::parallel_for(1, moves.size(), [this, &f, pm](std::size_t m0,
                                                          std::size_t m1) {
      for (std::size_t m = m0; m < m1; ++m)
        pm[m].value = sanitize_value(f(pm[m].x, nullptr));
    });
    evaluations_ += static_cast<int>(moves.size());
  } else {
    for (PlannedMove& m : moves) m.value = evaluate(m.x);
  }
}

void Nmmso::apply_move(const PlannedMove& move) {
  Swarm& swarm = swarms_[move.swarm];
  const std::size_t dims = box_.lo.size();
  const double val = move.value;
  if (move.spawn) {
    // A poisoned spawn is dropped outright: admitting a -inf member would
    // only pad the swarm toward its cap with dead weight.
    if (val == -std::numeric_limits<double>::infinity()) return;
    Particle p;
    p.x = move.x;
    p.v.assign(dims, 0.0);
    p.pbest_x = move.x;
    p.pbest_val = val;
    if (val > swarm.gbest_val) {
      swarm.gbest_val = val;
      swarm.gbest_x = move.x;
      swarm.just_changed = true;
    }
    swarm.particles.push_back(std::move(p));
    return;
  }
  Particle& p = swarm.particles[move.particle];
  const VecD old_x = p.x;
  p.v = move.v;
  p.x = move.x;
  if (val > p.pbest_val) {
    p.pbest_val = val;
    p.pbest_x = p.x;
  }
  if (val > swarm.gbest_val) {
    // Hive-off test: if there is a valley between the improved particle and
    // the previous gbest, the particle has found a *different* peak and
    // seeds a new swarm; otherwise it becomes the new gbest.
    bool hive = false;
    if (evaluations_ < opt_.max_evaluations &&
        normalized_distance(p.x, swarm.gbest_x) > opt_.merge_distance) {
      VecD mid(dims);
      for (std::size_t i = 0; i < dims; ++i)
        mid[i] = 0.5 * (p.x[i] + swarm.gbest_x[i]);
      const double mid_val = evaluate(mid);
      hive = mid_val < std::min(val, swarm.gbest_val);
    }
    if (hive) {
      Swarm fresh = make_swarm(p.x, val);
      p.x = old_x;  // the particle stays home; the new peak gets the swarm
      swarms_.push_back(std::move(fresh));
    } else {
      swarm.gbest_val = val;
      swarm.gbest_x = p.x;
      swarm.just_changed = true;
    }
  }
}

std::vector<Mode> Nmmso::run() {
  NF_TRACE_SPAN("opt.nmmso");
  swarms_.clear();
  evaluations_ = 0;
  timed_out_ = false;
  // A deadline raised from inside the objective (reference-simulator runs)
  // lands between state mutations, so the swarms remain a consistent
  // best-so-far set to report from.
  try {
  {
    VecD x = random_point();
    const double v = evaluate(x);
    swarms_.push_back(make_swarm(std::move(x), v));
  }
  while (evaluations_ < opt_.max_evaluations) {
    if (opt_.interrupt && opt_.interrupt->load(std::memory_order_relaxed))
      throw ErrorException(Error(ErrorCode::kInterrupted, "opt.nmmso",
                                 "interrupt acknowledged between iterations"));
    if (opt_.deadline.expired()) {
      timed_out_ = true;
      break;
    }
    try_merges();
    // Evolve a random subset of swarms, always including the fittest.
    std::vector<std::size_t> order(swarms_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::size_t best = 0;
    for (std::size_t i = 1; i < swarms_.size(); ++i)
      if (swarms_[i].gbest_val > swarms_[best].gbest_val) best = i;
    rng_.shuffle(order);
    std::vector<std::size_t> chosen{best};
    for (const std::size_t i : order) {
      if (static_cast<int>(chosen.size()) >= opt_.max_evolutions) break;
      if (i != best) chosen.push_back(i);
    }
    // Plan one move per chosen swarm (all RNG draws, serial), evaluate the
    // whole batch — in parallel when the objective allows it — then apply in
    // planning order.  Indices stay valid: apply_move() only appends swarms
    // and particles.  Each planned move reserves one primary evaluation so
    // the batch never overruns the budget.
    std::vector<PlannedMove> moves;
    moves.reserve(chosen.size());
    for (const std::size_t i : chosen) {
      if (evaluations_ + static_cast<int>(moves.size()) >=
          opt_.max_evaluations)
        break;
      moves.push_back(plan_evolution(i));
    }
    evaluate_moves(moves);
    for (const PlannedMove& m : moves) apply_move(m);
    if (rng_.bernoulli(opt_.immigrant_prob) &&
        evaluations_ < opt_.max_evaluations) {
      VecD x = random_point();
      const double v = evaluate(x);
      swarms_.push_back(make_swarm(std::move(x), v));
    }
  }
  } catch (const ErrorException& e) {
    if (e.err.code != ErrorCode::kDeadlineExceeded) throw;
    timed_out_ = true;
  }
  std::vector<Mode> modes;
  modes.reserve(swarms_.size());
  for (const Swarm& s : swarms_) modes.push_back({s.gbest_x, s.gbest_val});
  std::sort(modes.begin(), modes.end(),
            [](const Mode& a, const Mode& b) { return a.value > b.value; });
  return modes;
}

}  // namespace neurfill
