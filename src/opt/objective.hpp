#pragma once

#include <functional>
#include <vector>

namespace neurfill {

using VecD = std::vector<double>;

/// A smooth objective for *maximization* is wrapped by callers as negated
/// minimization; all solvers in this library minimize.
///
/// The function returns f(x) and, when `grad` is non-null, fills it with
/// the gradient (same size as x).  Implementations may be expensive (a CMP
/// simulation) so solvers economize on calls with gradients.
using ObjectiveFn = std::function<double(const VecD& x, VecD* grad)>;

/// Batched value-only evaluation: returns {f(xs[0]), ..., f(xs[B-1])} in one
/// call, letting implementations amortize fixed per-call cost over the whole
/// batch (the CMP surrogate assembles all B candidates into one batched
/// network forward).  Implementations must return exactly the values the
/// scalar ObjectiveFn would — solvers mix the two paths freely and rely on
/// bitwise agreement for reproducibility.
using BatchObjectiveFn =
    std::function<std::vector<double>(const std::vector<VecD>& xs)>;

/// Simple box constraints lo <= x <= hi (elementwise).
struct Box {
  VecD lo;
  VecD hi;

  std::size_t size() const { return lo.size(); }
  void clamp(VecD& x) const;
  bool contains(const VecD& x, double tol = 1e-12) const;
};

/// Central-difference numerical gradient: 2n extra function evaluations.
/// This is exactly what the conventional model-based flow (Cai [12]) must
/// do against a black-box CMP simulator, and what Table I's "gradient
/// calculation" row measures for the simulator column.
VecD numerical_gradient(const ObjectiveFn& f, const VecD& x,
                        double eps = 1e-6);

}  // namespace neurfill
