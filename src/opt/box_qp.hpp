#pragma once

#include <functional>

#include "opt/objective.hpp"

namespace neurfill {

/// Hessian-vector product: out = B * v (caller guarantees symmetry and
/// positive definiteness on the feasible cone).
using HessVec = std::function<void(const VecD& v, VecD& out)>;

struct BoxQpOptions {
  int max_outer = 25;        ///< active-set refresh rounds
  int max_cg = 50;           ///< CG iterations per free-subspace solve
  double tolerance = 1e-8;   ///< on the projected gradient norm
};

struct BoxQpResult {
  VecD d;            ///< the minimizer
  double objective;  ///< q(d)
  int outer_iterations = 0;
};

/// Minimizes q(d) = 0.5 d'Bd + g'd subject to lo <= d <= hi using the
/// More-Toraldo scheme: a projected-gradient (Cauchy point) phase fixes the
/// active set, then conjugate gradients minimize in the free subspace;
/// alternate until the projected gradient vanishes.  This is the QP
/// subproblem solver of the SQP optimizer (Eq. 5d's bounds are the only
/// constraints of the filling problem).
BoxQpResult solve_box_qp(const HessVec& B, const VecD& g, const Box& box,
                         const BoxQpOptions& options = BoxQpOptions());

}  // namespace neurfill
