#include "opt/sqp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace neurfill {

namespace {
double dot(const VecD& a, const VecD& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}
}  // namespace

void LbfgsHessian::reset() {
  raw_.clear();
  terms_.clear();
  sigma_ = 1.0;
}

void LbfgsHessian::update(const VecD& s, const VecD& y) {
  const double sy = dot(s, y);
  const double ss = dot(s, s);
  if (ss <= 1e-300) return;  // zero step: nothing to learn
  raw_.push_back({s, y});
  while (static_cast<int>(raw_.size()) > memory_) raw_.pop_front();
  // Scale B0 to the newest curvature when it is positive.
  if (sy > 1e-12 * ss) sigma_ = dot(y, y) / sy;
  rebuild();
}

void LbfgsHessian::rebuild() {
  terms_.clear();
  terms_.reserve(raw_.size());
  VecD Bs;
  for (const Pair& p : raw_) {
    // Bs = B_current * s via the terms accumulated so far.
    apply(p.s, Bs);
    const double sBs = dot(p.s, Bs);
    if (sBs <= 1e-300) continue;
    double sy = dot(p.s, p.y);
    VecD y = p.y;
    // Powell damping: blend y toward Bs when curvature is weak/negative so
    // the update keeps B positive definite.
    if (sy < 0.2 * sBs) {
      const double theta = 0.8 * sBs / (sBs - sy);
      for (std::size_t i = 0; i < y.size(); ++i)
        y[i] = theta * p.y[i] + (1.0 - theta) * Bs[i];
      sy = dot(p.s, y);
    }
    Term t;
    t.y = std::move(y);
    t.Bs = std::move(Bs);
    Bs = VecD();
    t.sy = sy;
    t.sBs = sBs;
    terms_.push_back(std::move(t));
  }
}

void LbfgsHessian::apply(const VecD& v, VecD& out) const {
  out.assign(v.size(), 0.0);
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = sigma_ * v[i];
  for (const Term& t : terms_) {
    const double yv = dot(t.y, v) / t.sy;
    const double bv = dot(t.Bs, v) / t.sBs;
    for (std::size_t i = 0; i < v.size(); ++i)
      out[i] += t.y[i] * yv - t.Bs[i] * bv;
  }
}

SqpResult sqp_minimize(const ObjectiveFn& f, VecD x0, const Box& box,
                       const SqpOptions& options) {
  NF_TRACE_SPAN("opt.sqp");
  const std::size_t n = x0.size();
  if (box.lo.size() != n)
    throw std::invalid_argument("sqp_minimize: box size mismatch");
  SqpResult res;
  box.clamp(x0);
  res.x = std::move(x0);

  VecD g(n), g_new(n);
  double fx = f(res.x, &g);
  ++res.function_evaluations;
  // Poison detector: the objective gradient usually comes out of the
  // surrogate's backward pass.  A single NaN here would propagate through
  // the L-BFGS pairs into every later iterate, so fail at the source.
  NF_CHECK_FINITE(fx);
  NF_CHECK(g.size() == n, "sqp: gradient size %zu, expected %zu", g.size(), n);
  NF_CHECK_ALL_FINITE("sqp: objective gradient", g.data(), g.size());

  LbfgsHessian hessian(options.lbfgs_memory);
  VecD trial(n), s(n), y(n);

  for (int it = 0; it < options.max_iterations; ++it) {
    res.iterations = it + 1;
    NF_TRACE_SPAN("opt.sqp_step");
    NF_COUNTER_ADD("opt.sqp_iterations", 1);
    // Convergence: projected gradient (KKT residual for box constraints).
    double pg_inf = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double pg = g[i];
      if (res.x[i] <= box.lo[i] + 1e-12 && pg > 0.0) pg = 0.0;
      if (res.x[i] >= box.hi[i] - 1e-12 && pg < 0.0) pg = 0.0;
      pg_inf = std::max(pg_inf, std::fabs(pg));
    }
    if (pg_inf < options.tolerance) {
      res.converged = true;
      break;
    }

    // QP subproblem over the shifted box lo-x <= d <= hi-x.
    Box shifted;
    shifted.lo.resize(n);
    shifted.hi.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      shifted.lo[i] = box.lo[i] - res.x[i];
      shifted.hi[i] = box.hi[i] - res.x[i];
    }
    const HessVec Bv = [&hessian](const VecD& v, VecD& out) {
      hessian.apply(v, out);
    };
    const BoxQpResult qp = solve_box_qp(Bv, g, shifted, options.qp);
    const VecD& d = qp.d;
    const double gd = dot(g, d);
    double dnorm = 0.0;
    for (const double v : d) dnorm = std::max(dnorm, std::fabs(v));
    if (dnorm < 1e-14 || gd > -1e-16) {
      // No descent available from the quadratic model.
      res.converged = pg_inf < 10.0 * options.tolerance;
      break;
    }

    // Armijo backtracking along the (feasible) SQP direction.
    double alpha = 1.0;
    double f_trial = fx;
    bool accepted = false;
    for (int ls = 0; ls < options.max_line_search; ++ls) {
      for (std::size_t i = 0; i < n; ++i) trial[i] = res.x[i] + alpha * d[i];
      box.clamp(trial);  // guard rounding
      f_trial = f(trial, nullptr);
      ++res.function_evaluations;
      if (f_trial <= fx + options.armijo_c1 * alpha * gd) {
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    if (!accepted) break;  // line search failed: stationary to our accuracy

    const double f_old = fx;
    fx = f(trial, &g_new);
    ++res.function_evaluations;
    NF_CHECK_FINITE(fx);
    NF_CHECK(g_new.size() == n, "sqp: gradient size %zu, expected %zu",
             g_new.size(), n);
    NF_CHECK_ALL_FINITE("sqp: objective gradient", g_new.data(),
                        g_new.size());
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = trial[i] - res.x[i];
      y[i] = g_new[i] - g[i];
    }
    hessian.update(s, y);
    res.x = trial;
    g = g_new;
    if (std::fabs(f_old - fx) <
        1e-12 * std::max(1.0, std::fabs(f_old))) {
      res.converged = true;
      break;
    }
  }
  res.f = fx;
  NF_COUNTER_ADD("opt.sqp_evaluations", res.function_evaluations);
  return res;
}

std::vector<SqpResult> msp_sqp_minimize(const ObjectiveFn& f,
                                        const std::vector<VecD>& starts,
                                        const Box& box,
                                        const SqpOptions& options) {
  std::vector<SqpResult> results;
  results.reserve(starts.size());
  for (const VecD& x0 : starts)
    results.push_back(sqp_minimize(f, x0, box, options));
  std::sort(results.begin(), results.end(),
            [](const SqpResult& a, const SqpResult& b) { return a.f < b.f; });
  return results;
}

}  // namespace neurfill
