#include "opt/sqp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/check.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "obs/trace.hpp"

namespace neurfill {

namespace {
double dot(const VecD& a, const VecD& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

bool all_finite(const VecD& v) {
  for (const double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

/// Bounded exponential-shrink retries after a poisoned evaluation.
constexpr int kMaxPoisonShrinks = 5;
}  // namespace

void LbfgsHessian::reset() {
  raw_.clear();
  terms_.clear();
  sigma_ = 1.0;
}

void LbfgsHessian::update(const VecD& s, const VecD& y) {
  const double sy = dot(s, y);
  const double ss = dot(s, s);
  if (ss <= 1e-300) return;  // zero step: nothing to learn
  raw_.push_back({s, y});
  while (static_cast<int>(raw_.size()) > memory_) raw_.pop_front();
  // Scale B0 to the newest curvature when it is positive.
  if (sy > 1e-12 * ss) sigma_ = dot(y, y) / sy;
  rebuild();
}

void LbfgsHessian::rebuild() {
  terms_.clear();
  terms_.reserve(raw_.size());
  VecD Bs;
  for (const Pair& p : raw_) {
    // Bs = B_current * s via the terms accumulated so far.
    apply(p.s, Bs);
    const double sBs = dot(p.s, Bs);
    if (sBs <= 1e-300) continue;
    double sy = dot(p.s, p.y);
    VecD y = p.y;
    // Powell damping: blend y toward Bs when curvature is weak/negative so
    // the update keeps B positive definite.
    if (sy < 0.2 * sBs) {
      const double theta = 0.8 * sBs / (sBs - sy);
      for (std::size_t i = 0; i < y.size(); ++i)
        y[i] = theta * p.y[i] + (1.0 - theta) * Bs[i];
      sy = dot(p.s, y);
    }
    Term t;
    t.y = std::move(y);
    t.Bs = std::move(Bs);
    Bs = VecD();
    t.sy = sy;
    t.sBs = sBs;
    terms_.push_back(std::move(t));
  }
}

void LbfgsHessian::export_state(
    double* sigma, std::vector<std::pair<VecD, VecD>>* pairs) const {
  *sigma = sigma_;
  pairs->clear();
  pairs->reserve(raw_.size());
  for (const Pair& p : raw_) pairs->emplace_back(p.s, p.y);
}

void LbfgsHessian::restore_state(
    double sigma, const std::vector<std::pair<VecD, VecD>>& pairs) {
  raw_.clear();
  for (const auto& [s, y] : pairs) raw_.push_back({s, y});
  while (static_cast<int>(raw_.size()) > memory_) raw_.pop_front();
  sigma_ = sigma;
  rebuild();
}

void LbfgsHessian::apply(const VecD& v, VecD& out) const {
  out.assign(v.size(), 0.0);
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = sigma_ * v[i];
  for (const Term& t : terms_) {
    const double yv = dot(t.y, v) / t.sy;
    const double bv = dot(t.Bs, v) / t.sBs;
    for (std::size_t i = 0; i < v.size(); ++i)
      out[i] += t.y[i] * yv - t.Bs[i] * bv;
  }
}

SqpResult sqp_minimize(const ObjectiveFn& f, VecD x0, const Box& box,
                       const SqpOptions& options) {
  NF_TRACE_SPAN("opt.sqp");
  const std::size_t n = x0.size();
  if (box.lo.size() != n)
    throw std::invalid_argument("sqp_minimize: box size mismatch");
  SqpResult res;
  box.clamp(x0);
  res.x = std::move(x0);

  // Every objective evaluation funnels through here so the sqp.poison
  // fault site can poison any chosen evaluation.
  const auto eval = [&](const VecD& x, VecD* grad) -> double {
    double v = f(x, grad);
    ++res.function_evaluations;
    if (NF_FAULT("sqp.poison")) v = std::numeric_limits<double>::quiet_NaN();
    return v;
  };

  LbfgsHessian hessian(options.lbfgs_memory);
  VecD g(n), g_new(n);
  VecD trial(n), s(n), y(n);
  double fx = std::numeric_limits<double>::infinity();
  int start_it = 0;

  // The objective may run the reference simulator, whose deadline raises
  // ErrorException(kDeadlineExceeded) mid-evaluation.  res.x always holds
  // the last *accepted* iterate, so catching here degrades to an honest
  // best-so-far result instead of tearing down the run.
  try {
    if (options.resume) {
      const SqpState& st = *options.resume;
      NF_CHECK(st.x.size() == n && st.g.size() == n,
               "sqp resume: state dimension %zu/%zu, expected %zu",
               st.x.size(), st.g.size(), n);
      res.x = st.x;
      g = st.g;
      fx = st.f;
      start_it = st.iteration;
      res.iterations = st.iteration;
      res.function_evaluations = st.function_evaluations;
      hessian.restore_state(st.lbfgs_sigma, st.lbfgs_pairs);
    } else {
      fx = eval(res.x, &g);
      NF_CHECK(g.size() == n, "sqp: gradient size %zu, expected %zu", g.size(),
               n);
      // A poisoned *first* evaluation leaves nothing to backtrack to: the
      // start is abandoned with f = +inf so MSP sorting drops it (the
      // NMMSO analogue drops the poisoned swarm member).
      if (!std::isfinite(fx) || !all_finite(g)) {
        res.poisoned = true;
        res.f = std::numeric_limits<double>::infinity();
        return res;
      }
    }

  for (int it = start_it; it < options.max_iterations; ++it) {
    // Loop-top snapshot: with this state a restarted process re-runs
    // iteration `it` bitwise-identically (docs/robustness.md).
    if (options.checkpoint_hook) {
      SqpState st;
      st.x = res.x;
      st.g = g;
      st.f = fx;
      st.iteration = it;
      st.function_evaluations = res.function_evaluations;
      hessian.export_state(&st.lbfgs_sigma, &st.lbfgs_pairs);
      options.checkpoint_hook(st);
    }
    if (options.deadline.expired()) {
      res.timed_out = true;
      break;
    }
    res.iterations = it + 1;
    NF_TRACE_SPAN("opt.sqp_step");
    NF_COUNTER_ADD("opt.sqp_iterations", 1);
    // Convergence: projected gradient (KKT residual for box constraints).
    double pg_inf = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double pg = g[i];
      if (res.x[i] <= box.lo[i] + 1e-12 && pg > 0.0) pg = 0.0;
      if (res.x[i] >= box.hi[i] - 1e-12 && pg < 0.0) pg = 0.0;
      pg_inf = std::max(pg_inf, std::fabs(pg));
    }
    if (pg_inf < options.tolerance) {
      res.converged = true;
      break;
    }

    // QP subproblem over the shifted box lo-x <= d <= hi-x.
    Box shifted;
    shifted.lo.resize(n);
    shifted.hi.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      shifted.lo[i] = box.lo[i] - res.x[i];
      shifted.hi[i] = box.hi[i] - res.x[i];
    }
    const HessVec Bv = [&hessian](const VecD& v, VecD& out) {
      hessian.apply(v, out);
    };
    const BoxQpResult qp = solve_box_qp(Bv, g, shifted, options.qp);
    const VecD& d = qp.d;
    const double gd = dot(g, d);
    double dnorm = 0.0;
    for (const double v : d) dnorm = std::max(dnorm, std::fabs(v));
    if (dnorm < 1e-14 || gd > -1e-16) {
      // No descent available from the quadratic model.
      res.converged = pg_inf < 10.0 * options.tolerance;
      break;
    }

    // Armijo backtracking along the (feasible) SQP direction.
    double alpha = 1.0;
    double f_trial = fx;
    bool accepted = false;
    for (int ls = 0; ls < options.max_line_search; ++ls) {
      for (std::size_t i = 0; i < n; ++i) trial[i] = res.x[i] + alpha * d[i];
      box.clamp(trial);  // guard rounding
      f_trial = eval(trial, nullptr);
      // A NaN trial value fails the Armijo comparison below, so a poisoned
      // line-search evaluation already degrades to "shrink and retry" —
      // just account for it.
      if (!std::isfinite(f_trial)) ++res.numeric_recoveries;
      if (f_trial <= fx + options.armijo_c1 * alpha * gd) {
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    if (!accepted) break;  // line search failed: stationary to our accuracy

    const double f_old = fx;
    double f_new = eval(trial, &g_new);
    NF_CHECK(g_new.size() == n, "sqp: gradient size %zu, expected %zu",
             g_new.size(), n);
    // Poisoned value/gradient mid-run: back off toward the last accepted
    // iterate with exponentially shrinking steps (bounded retries) instead
    // of aborting — one NaN would otherwise propagate through the L-BFGS
    // pairs into every later iterate.
    int shrinks = 0;
    while ((!std::isfinite(f_new) || !all_finite(g_new)) &&
           shrinks < kMaxPoisonShrinks) {
      ++shrinks;
      ++res.numeric_recoveries;
      alpha *= 0.25;
      for (std::size_t i = 0; i < n; ++i) trial[i] = res.x[i] + alpha * d[i];
      box.clamp(trial);
      f_new = eval(trial, &g_new);
    }
    if (!std::isfinite(f_new) || !all_finite(g_new)) {
      res.poisoned = true;  // unrecoverable: keep the last good iterate
      break;
    }
    // In a clean run f_new re-evaluates the accepted trial (deterministic,
    // so <= f_old by Armijo); after poison shrinks the landing point can be
    // uphill, in which case stop at the best-so-far instead of accepting.
    if (f_new > f_old) break;
    fx = f_new;
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = trial[i] - res.x[i];
      y[i] = g_new[i] - g[i];
    }
    hessian.update(s, y);
    res.x = trial;
    g = g_new;
    if (std::fabs(f_old - fx) <
        1e-12 * std::max(1.0, std::fabs(f_old))) {
      res.converged = true;
      break;
    }
  }
  } catch (const ErrorException& e) {
    if (e.err.code != ErrorCode::kDeadlineExceeded) throw;
    res.timed_out = true;
  }
  res.f = fx;
  NF_COUNTER_ADD("opt.sqp_evaluations", res.function_evaluations);
  return res;
}

std::vector<SqpResult> msp_sqp_minimize(const ObjectiveFn& f,
                                        const std::vector<VecD>& starts,
                                        const Box& box,
                                        const SqpOptions& options) {
  std::vector<SqpResult> results;
  results.reserve(starts.size());
  for (const VecD& x0 : starts)
    results.push_back(sqp_minimize(f, x0, box, options));
  std::sort(results.begin(), results.end(),
            [](const SqpResult& a, const SqpResult& b) { return a.f < b.f; });
  return results;
}

}  // namespace neurfill
