#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace neurfill::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

/// One registry per instrument kind.  std::map keeps references stable
/// across inserts; the registry itself is a leaky singleton so instrument
/// references handed out to static locals outlive every user.
template <typename T>
struct Registry {
  std::mutex m;
  std::map<std::string, std::unique_ptr<T>> items;

  T& get(const std::string& name) {
    std::lock_guard<std::mutex> lock(m);
    auto it = items.find(name);
    if (it == items.end())
      it = items.emplace(name, std::make_unique<T>()).first;
    return *it->second;
  }
};

Registry<Counter>& counters() {
  static auto* r = new Registry<Counter>;
  return *r;
}
Registry<Gauge>& gauges() {
  static auto* r = new Registry<Gauge>;
  return *r;
}
Registry<SpanStat>& span_stats() {
  static auto* r = new Registry<SpanStat>;
  return *r;
}

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

Counter& counter(const std::string& name) { return counters().get(name); }
Gauge& gauge(const std::string& name) { return gauges().get(name); }
SpanStat& span_stat(const std::string& name) {
  return span_stats().get(name);
}

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(counters().m);
    for (const auto& [name, c] : counters().items)
      snap.counters.push_back({name, c->value()});
  }
  {
    std::lock_guard<std::mutex> lock(gauges().m);
    for (const auto& [name, g] : gauges().items)
      snap.gauges.push_back({name, g->value()});
  }
  {
    std::lock_guard<std::mutex> lock(span_stats().m);
    for (const auto& [name, s] : span_stats().items)
      snap.spans.push_back({name, s->count(), s->total_seconds()});
  }
  return snap;  // std::map iteration is already name-sorted
}

void reset_metrics() {
  {
    std::lock_guard<std::mutex> lock(counters().m);
    for (auto& [name, c] : counters().items) c->reset();
  }
  {
    std::lock_guard<std::mutex> lock(gauges().m);
    for (auto& [name, g] : gauges().items) g->reset();
  }
  {
    std::lock_guard<std::mutex> lock(span_stats().m);
    for (auto& [name, s] : span_stats().items) s->reset();
  }
}

}  // namespace neurfill::obs
