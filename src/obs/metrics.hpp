#pragma once

// Named metric instruments: monotonic counters, last-value gauges, and
// per-span-site duration aggregates.  Instruments live in a process-wide
// registry (leaky singleton, so references stay valid for the process
// lifetime) and update with relaxed atomics, so hot paths pay one atomic
// RMW per update and nothing else.  Collection is snapshot-based: the
// exporters in obs/export.hpp read a consistent-enough view without ever
// blocking writers.
//
// Runtime gating: every NF_COUNTER_ADD / NF_GAUGE_SET site checks
// metrics_enabled() (one relaxed atomic load) first; with metrics off the
// cost is that load plus a predicted branch.  Compile-time gating: building
// with NEURFILL_DISABLE_TRACING turns the macros into no-ops that evaluate
// nothing (the obs library itself still compiles, so non-macro callers such
// as SpanTimer keep working).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace neurfill::obs {

/// Process-wide runtime switch for counters/gauges/span stats.
bool metrics_enabled();
void set_metrics_enabled(bool on);

/// Monotonic counter (solver iterations, FLOPs, objective evaluations).
class Counter {
 public:
  void add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-value gauge (latest residual, latest epoch loss).
class Gauge {
 public:
  void set(double value) { v_.store(value, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Count + total duration of one span name, fed by SpanGuard/SpanTimer so
/// the --metrics summary shows where wall-clock went even without a trace.
class SpanStat {
 public:
  void add(std::uint64_t duration_ns) {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(static_cast<std::int64_t>(duration_ns),
                        std::memory_order_relaxed);
  }
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_seconds() const {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  void reset() {
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> total_ns_{0};
};

/// Registry lookup, inserting on first use.  The returned reference is valid
/// for the rest of the process; hot paths cache it in a static local (the
/// NF_COUNTER_ADD / NF_TRACE_SPAN macros do this automatically).
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
SpanStat& span_stat(const std::string& name);

/// Name-sorted snapshot of every registered instrument.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct SpanValue {
    std::string name;
    std::int64_t count = 0;
    double total_s = 0.0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<SpanValue> spans;
};
MetricsSnapshot metrics_snapshot();

/// Zeroes every registered instrument (instruments stay registered).  For
/// tests and benches that measure one phase at a time; must not race with
/// concurrent updates the caller cares about.
void reset_metrics();

#define NF_OBS_CONCAT_INNER(a, b) a##b
#define NF_OBS_CONCAT(a, b) NF_OBS_CONCAT_INNER(a, b)

#if !defined(NEURFILL_DISABLE_TRACING)

/// Adds `delta` to the named counter when metrics are enabled.  `name` must
/// be a compile-time constant; the registry lookup happens once per site.
#define NF_COUNTER_ADD(name, delta)                                          \
  do {                                                                       \
    if (::neurfill::obs::metrics_enabled()) {                                \
      static ::neurfill::obs::Counter& NF_OBS_CONCAT(nf_obs_ctr_,            \
                                                     __LINE__) =             \
          ::neurfill::obs::counter(name);                                    \
      NF_OBS_CONCAT(nf_obs_ctr_, __LINE__)                                   \
          .add(static_cast<std::int64_t>(delta));                            \
    }                                                                        \
  } while (0)

/// Stores `value` into the named gauge when metrics are enabled.
#define NF_GAUGE_SET(name, value)                                            \
  do {                                                                       \
    if (::neurfill::obs::metrics_enabled()) {                                \
      static ::neurfill::obs::Gauge& NF_OBS_CONCAT(nf_obs_gauge_,            \
                                                   __LINE__) =               \
          ::neurfill::obs::gauge(name);                                      \
      NF_OBS_CONCAT(nf_obs_gauge_, __LINE__)                                 \
          .set(static_cast<double>(value));                                  \
    }                                                                        \
  } while (0)

#else  // NEURFILL_DISABLE_TRACING

#define NF_COUNTER_ADD(name, delta) static_cast<void>(0)
#define NF_GAUGE_SET(name, value) static_cast<void>(0)

#endif  // NEURFILL_DISABLE_TRACING

}  // namespace neurfill::obs
