#include "obs/trace.hpp"

#include <chrono>
#include <memory>
#include <mutex>

namespace neurfill::obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};

/// Events one thread can hold before dropping (32 B each -> 8 MiB/thread,
/// allocated lazily on the thread's first recorded span).  Sized so a full
/// nf_fill run including on-the-fly surrogate training (~100k main-thread
/// events) keeps its late-phase opt/fill spans.
constexpr std::size_t kTraceCapacity = std::size_t{1} << 18;

/// Single-writer event buffer.  The owning thread appends; the exporter
/// reads the first `size_` slots after an acquire load.  `thread_name` is
/// guarded by the registry mutex (set rarely, never on the record path).
class ThreadTraceBuffer {
 public:
  explicit ThreadTraceBuffer(int tid) : tid_(tid), events_(kTraceCapacity) {}

  void push(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
    const std::size_t n = size_.load(std::memory_order_relaxed);
    if (n >= kTraceCapacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events_[n] = {name, begin_ns, end_ns};
    size_.store(n + 1, std::memory_order_release);
  }

  ThreadTrace snapshot(const std::string& name) const {
    ThreadTrace t;
    t.thread_name = name;
    t.tid = tid_;
    const std::size_t n = size_.load(std::memory_order_acquire);
    t.events.assign(events_.begin(),
                    events_.begin() + static_cast<std::ptrdiff_t>(n));
    t.dropped = dropped_.load(std::memory_order_relaxed);
    return t;
  }

  void clear() {
    size_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
  }

  int tid() const { return tid_; }

 private:
  int tid_;
  std::vector<TraceEvent> events_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

struct RegisteredBuffer {
  std::shared_ptr<ThreadTraceBuffer> buffer;
  std::string name;
};

/// Leaky singleton: buffers of exited threads stay alive (held here) so a
/// trace written after worker joins still shows their activity.
struct TraceRegistry {
  std::mutex m;
  std::vector<RegisteredBuffer> buffers;
  int next_tid = 0;
};

TraceRegistry& registry() {
  static auto* r = new TraceRegistry;
  return *r;
}

/// Name requested via set_current_thread_name before the thread recorded
/// its first span (so no buffer exists yet to rename).
thread_local std::string tls_pending_name;
/// The calling thread's buffer, created lazily on its first recorded span.
thread_local std::shared_ptr<ThreadTraceBuffer> tls_buffer;

ThreadTraceBuffer& local_buffer() {
  if (!tls_buffer) {
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.m);
    tls_buffer = std::make_shared<ThreadTraceBuffer>(reg.next_tid++);
    std::string name =
        tls_pending_name.empty()
            ? (tls_buffer->tid() == 0
                   ? std::string("main")
                   : "thread-" + std::to_string(tls_buffer->tid()))
            : tls_pending_name;
    reg.buffers.push_back({tls_buffer, std::move(name)});
  }
  return *tls_buffer;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t trace_epoch_ns() {
  static const std::uint64_t epoch = steady_ns();
  return epoch;
}

}  // namespace

bool tracing_enabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool on) {
  if (on) trace_epoch_ns();  // pin the epoch before the first span
  g_tracing_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() { return steady_ns() - trace_epoch_ns(); }

void set_current_thread_name(const std::string& name) {
  tls_pending_name = name;
  // No buffer yet (the common case — workers name themselves at startup,
  // before tracing is even enabled): the pending name is applied when the
  // buffer is created.  Otherwise rename the registered track in place.
  if (!tls_buffer) return;
  TraceRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.m);
  for (RegisteredBuffer& rb : reg.buffers)
    if (rb.buffer == tls_buffer) rb.name = name;
}

void record_span(const char* name, std::uint64_t begin_ns,
                 std::uint64_t end_ns) {
  if (!tracing_enabled()) return;
  local_buffer().push(name, begin_ns, end_ns);
}

std::vector<ThreadTrace> trace_snapshot() {
  std::vector<RegisteredBuffer> copies;
  {
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.m);
    copies = reg.buffers;
  }
  std::vector<ThreadTrace> out;
  out.reserve(copies.size());
  for (const RegisteredBuffer& rb : copies)
    out.push_back(rb.buffer->snapshot(rb.name));
  return out;
}

void reset_trace() {
  TraceRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.m);
  for (RegisteredBuffer& rb : reg.buffers) rb.buffer->clear();
}

SpanTimer::SpanTimer(const char* name)
    : name_(name), stat_(&span_stat(name)), begin_ns_(trace_now_ns()) {}

SpanTimer::~SpanTimer() {
  if (!stopped_) stop_seconds();
}

double SpanTimer::stop_seconds() {
  if (!stopped_) {
    stopped_ = true;
    end_ns_ = trace_now_ns();
    if (metrics_enabled()) stat_->add(end_ns_ - begin_ns_);
    if (tracing_enabled()) record_span(name_, begin_ns_, end_ns_);
  }
  return static_cast<double>(end_ns_ - begin_ns_) * 1e-9;
}

}  // namespace neurfill::obs
