#pragma once

// Exporters over the obs trace/metric stores:
//  * write_chrome_trace — chrome://tracing (or Perfetto / about:tracing)
//    JSON with one track per recorded thread; load the file via the
//    viewer's "Load" button.  Tools expose this as --trace FILE.
//  * write_metrics_text — human-readable counter/gauge/span summary, the
//    tools' --metrics output.
//  * write_metrics_json — machine-readable equivalent for benches and CI.

#include <iosfwd>

namespace neurfill::obs {

/// Writes every recorded span as a chrome://tracing "X" (complete) event,
/// plus thread-name metadata.  Safe to call while tracing is still enabled;
/// the output reflects a point-in-time snapshot.
void write_chrome_trace(std::ostream& os);

/// Flat text summary: counters, gauges, and span aggregates with
/// count/total/mean columns.
void write_metrics_text(std::ostream& os);

/// Single JSON object: {"counters":{...},"gauges":{...},"spans":{name:
/// {"count":N,"total_s":S}}}.
void write_metrics_json(std::ostream& os);

}  // namespace neurfill::obs
