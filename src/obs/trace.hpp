#pragma once

// Hierarchical tracing spans recorded into per-thread lock-free buffers.
//
// Recording model: NF_TRACE_SPAN("cmp.solve") opens a RAII span; its
// destructor appends one completed event (name, begin, end) to the calling
// thread's buffer.  Each buffer has a single writer (its owning thread) and
// publishes new events with a release store of the size counter, so the
// exporter can snapshot all buffers concurrently with an acquire load and
// no locks on the hot path.  Buffers have fixed capacity (kTraceCapacity
// events); once full, further events are counted as dropped rather than
// reallocating under a writer.
//
// Nesting needs no bookkeeping: chrome://tracing infers the hierarchy from
// time containment of complete ("X") events on the same thread track, and
// the per-thread buffers keep worker activity (runtime::ThreadPool shards)
// on separate tracks.
//
// Gating:
//  * runtime: set_tracing_enabled(true) — off by default; a disabled span
//    costs two relaxed atomic loads and a branch.
//  * compile time: -DNEURFILL_DISABLE_TRACING (CMake option
//    NEURFILL_ENABLE_TRACING=OFF) empties the macros entirely.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace neurfill::obs {

/// Process-wide runtime switch for span event recording.
bool tracing_enabled();
void set_tracing_enabled(bool on);

/// Nanoseconds since the process-wide trace epoch (steady clock; the epoch
/// is fixed on first use so timestamps are comparable across threads).
std::uint64_t trace_now_ns();

/// Names the calling thread's trace track ("main", "pool-worker-3", ...).
/// Safe to call before any span; the name applies when (and if) the thread
/// records its first event, and renames the track if one already exists.
void set_current_thread_name(const std::string& name);

/// One completed span on some thread.  `name` must point at static-storage
/// text (the macros pass string literals).
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
};

/// Appends a completed span to the calling thread's buffer.  No-op unless
/// tracing_enabled().  Prefer the NF_TRACE_SPAN macro.
void record_span(const char* name, std::uint64_t begin_ns,
                 std::uint64_t end_ns);

/// Snapshot of one thread's buffer, in recording (i.e. span-end) order.
struct ThreadTrace {
  std::string thread_name;
  int tid = 0;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

/// Copies every thread buffer.  Runs concurrently with recording; events
/// whose release store has not landed yet are simply not included.
std::vector<ThreadTrace> trace_snapshot();

/// Empties every thread buffer (buffers and thread names stay registered).
/// Must not race with threads actively recording spans.
void reset_trace();

/// RAII span: measures on construction/destruction, feeds the trace buffer
/// (when tracing is on) and the span's duration aggregate (when metrics
/// are on).  Instantiate through NF_TRACE_SPAN.
class SpanGuard {
 public:
  SpanGuard(const char* name, SpanStat& stat)
      : name_(name), stat_(&stat), tracing_(tracing_enabled()),
        metrics_(metrics_enabled()) {
    if (tracing_ || metrics_) begin_ns_ = trace_now_ns();
  }
  ~SpanGuard() {
    if (!tracing_ && !metrics_) return;
    const std::uint64_t end_ns = trace_now_ns();
    if (metrics_) stat_->add(end_ns - begin_ns_);
    if (tracing_) record_span(name_, begin_ns_, end_ns);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_;
  SpanStat* stat_;
  bool tracing_;
  bool metrics_;
  std::uint64_t begin_ns_ = 0;
};

/// Span that is also a stopwatch: stop_seconds() ends the span and returns
/// its duration, so a reported runtime (e.g. FillRunResult::runtime_s) and
/// the trace event are computed from the same two clock reads and cannot
/// disagree.  Unlike SpanGuard it always measures — timing is its return
/// value — but still only *records* under the runtime gates.
class SpanTimer {
 public:
  explicit SpanTimer(const char* name);
  ~SpanTimer();
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  /// Ends the span (recording it if tracing/metrics are on) and returns its
  /// duration in seconds.  Further calls return the same duration.
  double stop_seconds();

 private:
  const char* name_;
  SpanStat* stat_;
  std::uint64_t begin_ns_;
  std::uint64_t end_ns_ = 0;
  bool stopped_ = false;
};

#if !defined(NEURFILL_DISABLE_TRACING)

/// Opens a span covering the rest of the enclosing scope.  `name` must be a
/// string literal (or other static-storage string).
#define NF_TRACE_SPAN(name)                                                  \
  static ::neurfill::obs::SpanStat& NF_OBS_CONCAT(nf_obs_site_, __LINE__) =  \
      ::neurfill::obs::span_stat(name);                                      \
  const ::neurfill::obs::SpanGuard NF_OBS_CONCAT(nf_obs_span_, __LINE__) {   \
    name, NF_OBS_CONCAT(nf_obs_site_, __LINE__)                              \
  }

#else  // NEURFILL_DISABLE_TRACING

#define NF_TRACE_SPAN(name) static_cast<void>(0)

#endif  // NEURFILL_DISABLE_TRACING

}  // namespace neurfill::obs
