#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace neurfill::obs {

namespace {

/// JSON string escaping for names (span names are literals under our
/// control, but thread names and future counter names may not be).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prints a double with enough digits to round-trip, without iostream
/// locale/precision state leaking in.
std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  std::vector<ThreadTrace> threads = trace_snapshot();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const ThreadTrace& t : threads) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << t.tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << json_escape(t.thread_name) << "\"}}";
    // Sort by begin time: viewers tolerate unsorted events, but sorted
    // output diffs cleanly and streams better into Perfetto.
    std::vector<TraceEvent> events = t.events;
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns
                                                : a.end_ns > b.end_ns;
              });
    for (const TraceEvent& e : events) {
      // Timestamps in microseconds with nanosecond resolution kept in the
      // fraction, as chrome://tracing expects.
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
                    "\"ts\":%" PRIu64 ".%03u,\"dur\":%" PRIu64 ".%03u}",
                    t.tid, json_escape(e.name).c_str(), e.begin_ns / 1000,
                    static_cast<unsigned>(e.begin_ns % 1000),
                    (e.end_ns - e.begin_ns) / 1000,
                    static_cast<unsigned>((e.end_ns - e.begin_ns) % 1000));
      os << buf;
    }
    if (t.dropped > 0) {
      os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << t.tid
         << ",\"name\":\"process_labels\",\"args\":{\"labels\":\"dropped "
         << t.dropped << " events\"}}";
    }
  }
  os << "\n]}\n";
}

void write_metrics_text(std::ostream& os) {
  const MetricsSnapshot snap = metrics_snapshot();
  char buf[256];
  os << "== metrics ==\n";
  if (!snap.counters.empty()) {
    os << "counters:\n";
    for (const auto& c : snap.counters) {
      std::snprintf(buf, sizeof(buf), "  %-36s %20lld\n", c.name.c_str(),
                    static_cast<long long>(c.value));
      os << buf;
    }
  }
  if (!snap.gauges.empty()) {
    os << "gauges:\n";
    for (const auto& g : snap.gauges) {
      std::snprintf(buf, sizeof(buf), "  %-36s %20.6g\n", g.name.c_str(),
                    g.value);
      os << buf;
    }
  }
  if (!snap.spans.empty()) {
    os << "spans:                                    count      total       "
          "mean\n";
    for (const auto& s : snap.spans) {
      const double mean =
          s.count > 0 ? s.total_s / static_cast<double>(s.count) : 0.0;
      std::snprintf(buf, sizeof(buf), "  %-36s %9lld %9.3fs %9.6fs\n",
                    s.name.c_str(), static_cast<long long>(s.count),
                    s.total_s, mean);
      os << buf;
    }
  }
}

void write_metrics_json(std::ostream& os) {
  const MetricsSnapshot snap = metrics_snapshot();
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << json_escape(snap.counters[i].name)
       << "\":" << snap.counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << json_escape(snap.gauges[i].name)
       << "\":" << json_double(snap.gauges[i].value);
  }
  os << "},\"spans\":{";
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << json_escape(snap.spans[i].name) << "\":{\"count\":"
       << snap.spans[i].count << ",\"total_s\":"
       << json_double(snap.spans[i].total_s) << '}';
  }
  os << "}}\n";
}

}  // namespace neurfill::obs
