#include "geom/layout.hpp"

namespace neurfill {

std::size_t Layout::total_wire_count() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.wires.size();
  return n;
}

std::size_t Layout::total_dummy_count() const {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.dummies.size();
  return n;
}

double Layout::total_wire_area() const {
  double a = 0.0;
  for (const auto& l : layers)
    for (const auto& r : l.wires) a += r.area();
  return a;
}

}  // namespace neurfill
