#include "geom/rect.hpp"

namespace neurfill {

namespace {
// Overlap length of [a0, a1) with [b0, b1).
double overlap(double a0, double a1, double b0, double b1) {
  const double lo = std::max(a0, b0);
  const double hi = std::min(a1, b1);
  return hi > lo ? hi - lo : 0.0;
}
}  // namespace

double perimeter_inside(const Rect& r, const Rect& clip) {
  if (r.empty() || clip.empty()) return 0.0;
  double total = 0.0;
  // Vertical edges of r (at x0 and x1) contribute their y-overlap with the
  // clip window when the edge's x coordinate is inside [clip.x0, clip.x1).
  const double yov = overlap(r.y0, r.y1, clip.y0, clip.y1);
  if (r.x0 >= clip.x0 && r.x0 < clip.x1) total += yov;
  if (r.x1 > clip.x0 && r.x1 <= clip.x1) total += yov;
  // Horizontal edges at y0 and y1.
  const double xov = overlap(r.x0, r.x1, clip.x0, clip.x1);
  if (r.y0 >= clip.y0 && r.y0 < clip.y1) total += xov;
  if (r.y1 > clip.y0 && r.y1 <= clip.y1) total += xov;
  return total;
}

}  // namespace neurfill
