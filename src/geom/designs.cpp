#include "geom/designs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace neurfill {

namespace {

/// Fill the block [bx0,by0,bx1,by1] on `layer` with parallel lines of the
/// given pitch and duty cycle.  `horizontal` selects the line direction.
/// Lines are segmented with random gaps so perimeter varies independently of
/// density.
void add_line_array(Layer& layer, const Rect& block, double pitch,
                    double duty, bool horizontal, Rng& rng,
                    double segment_gap_prob = 0.15) {
  if (block.empty() || pitch <= 0.0 || duty <= 0.0) return;
  duty = std::min(duty, 1.0);
  const double line_w = pitch * duty;
  if (horizontal) {
    for (double y = block.y0; y + line_w <= block.y1 + 1e-9; y += pitch) {
      // Break the line into segments to create realistic perimeter.
      double x = block.x0;
      while (x < block.x1 - 1e-9) {
        const double max_len = block.x1 - x;
        double len = std::min(max_len, rng.uniform(0.3, 1.0) * (block.x1 - block.x0));
        if (rng.bernoulli(segment_gap_prob)) {
          x += std::min(max_len, pitch * rng.uniform(0.5, 2.0));
          continue;
        }
        len = std::max(len, std::min(max_len, line_w));
        layer.wires.emplace_back(x, y, x + len, std::min(y + line_w, block.y1));
        x += len + pitch * rng.uniform(0.0, 0.5);
      }
    }
  } else {
    for (double x = block.x0; x + line_w <= block.x1 + 1e-9; x += pitch) {
      double y = block.y0;
      while (y < block.y1 - 1e-9) {
        const double max_len = block.y1 - y;
        double len = std::min(max_len, rng.uniform(0.3, 1.0) * (block.y1 - block.y0));
        if (rng.bernoulli(segment_gap_prob)) {
          y += std::min(max_len, pitch * rng.uniform(0.5, 2.0));
          continue;
        }
        len = std::max(len, std::min(max_len, line_w));
        layer.wires.emplace_back(x, y, std::min(x + line_w, block.x1), y + len);
        y += len + pitch * rng.uniform(0.0, 0.5);
      }
    }
  }
}

/// Scatter random non-overlapping-ish small rects to a target density.
/// Overlaps are tolerated (density extraction clips per window and the
/// generator keeps attempts sparse enough that the error is small).
void add_random_logic(Layer& layer, const Rect& block, double target_density,
                      double feature_um, Rng& rng) {
  const double area = block.area();
  double placed = 0.0;
  const double want = target_density * area;
  int guard = 0;
  while (placed < want && guard++ < 200000) {
    const double w = feature_um * rng.uniform(0.5, 2.0);
    const double h = feature_um * rng.uniform(0.5, 2.0);
    const double x = rng.uniform(block.x0, std::max(block.x0, block.x1 - w));
    const double y = rng.uniform(block.y0, std::max(block.y0, block.y1 - h));
    Rect r(x, y, std::min(x + w, block.x1), std::min(y + h, block.y1));
    if (r.empty()) continue;
    layer.wires.push_back(r);
    placed += r.area();
  }
}

Layout make_base(const std::string& name, double width_um, double height_um,
                 int num_layers) {
  if (width_um <= 0.0 || height_um <= 0.0 || num_layers <= 0)
    throw std::invalid_argument("design generator: bad chip size/layer count");
  Layout layout;
  layout.name = name;
  layout.width_um = width_um;
  layout.height_um = height_um;
  layout.layers.resize(static_cast<std::size_t>(num_layers));
  for (int l = 0; l < num_layers; ++l)
    layout.layers[static_cast<std::size_t>(l)].name = "m" + std::to_string(l + 1);
  return layout;
}

}  // namespace

Layout make_design_a(double width_um, double height_um, int num_layers,
                     std::uint64_t seed) {
  Layout layout = make_base("designA", width_um, height_um, num_layers);
  Rng rng(seed ^ 0xA0A0A0A0ull);
  // Test-chip: a grid of square calibration blocks.  Density ramps smoothly
  // from sparse to dense across the diagonal; ~12% of blocks are left empty.
  // On a rectangular die the block pitch follows the short side, so the
  // column/row counts scale with each extent and blocks tile it exactly.
  const double bs = std::min(width_um, height_um) / 8.0;
  const int nbx = static_cast<int>(std::round(width_um / bs));
  const int nby = static_cast<int>(std::round(height_um / bs));
  const double bsx = width_um / nbx;
  const double bsy = height_um / nby;
  for (int l = 0; l < num_layers; ++l) {
    Layer& layer = layout.layers[static_cast<std::size_t>(l)];
    const bool horiz = (l % 2 == 0);
    Rng lrng = rng.split();
    for (int bi = 0; bi < nby; ++bi) {
      for (int bj = 0; bj < nbx; ++bj) {
        if (lrng.bernoulli(0.12)) continue;  // empty calibration block
        const Rect block(bj * bsx + 4.0, bi * bsy + 4.0, (bj + 1) * bsx - 4.0,
                         (bi + 1) * bsy - 4.0);
        // Ramp: duty from 0.10 to 0.70 along the diagonal plus jitter.
        const double t =
            (bi + bj) / static_cast<double>((nbx - 1) + (nby - 1));
        const double duty =
            std::clamp(0.10 + 0.60 * t + lrng.uniform(-0.05, 0.05), 0.05, 0.8);
        const double pitch = lrng.uniform(20.0, 60.0);
        add_line_array(layer, block, pitch, duty, horiz, lrng);
      }
    }
  }
  return layout;
}

Layout make_design_b(double width_um, double height_um, int num_layers,
                     std::uint64_t seed) {
  Layout layout = make_base("designB", width_um, height_um, num_layers);
  Rng rng(seed ^ 0xB1B1B1B1ull);
  // FPGA fabric: dense logic tiles in a periodic array, thin sparse routing
  // channels between them, and a sparse IO ring around the edge.
  const double ring = std::min(width_um, height_um) * 0.05;
  const double tile = 420.0;
  const double channel = 120.0;
  const double period = tile + channel;
  for (int l = 0; l < num_layers; ++l) {
    Layer& layer = layout.layers[static_cast<std::size_t>(l)];
    const bool horiz = (l % 2 == 0);
    Rng lrng = rng.split();
    // Logic tiles.
    for (double y = ring; y + tile <= height_um - ring; y += period) {
      for (double x = ring; x + tile <= width_um - ring; x += period) {
        const Rect block(x, y, x + tile, y + tile);
        const double duty = std::clamp(0.55 + lrng.uniform(-0.06, 0.06), 0.1, 0.8);
        add_line_array(layer, block, lrng.uniform(25.0, 45.0), duty, horiz, lrng,
                       /*segment_gap_prob=*/0.05);
      }
    }
    // Routing channels: sparse long lines spanning the fabric.
    for (double y = ring + tile; y + channel <= height_um - ring; y += period) {
      const Rect ch(ring, y, width_um - ring, y + channel);
      add_line_array(layer, ch, 60.0, 0.15, /*horizontal=*/true, lrng, 0.3);
    }
    for (double x = ring + tile; x + channel <= width_um - ring; x += period) {
      const Rect ch(x, ring, x + channel, height_um - ring);
      add_line_array(layer, ch, 60.0, 0.15, /*horizontal=*/false, lrng, 0.3);
    }
    // IO ring: very sparse pads.
    add_random_logic(layer, Rect(0, 0, width_um, ring), 0.08, 50.0, lrng);
    add_random_logic(layer, Rect(0, height_um - ring, width_um, height_um),
                     0.08, 50.0, lrng);
  }
  return layout;
}

Layout make_design_c(double width_um, double height_um, int num_layers,
                     std::uint64_t seed) {
  Layout layout = make_base("designC", width_um, height_um, num_layers);
  Rng rng(seed ^ 0xC2C2C2C2ull);
  // CPU-like floorplan with fixed macro fractions of the die; fractions are
  // of each axis, so the floorplan stretches with a rectangular die.
  const double W = width_um;
  const double H = height_um;
  const Rect datapath(0.05 * W, 0.45 * H, 0.55 * W, 0.95 * H);   // dense
  const Rect icache(0.60 * W, 0.55 * H, 0.95 * W, 0.95 * H);     // regular
  const Rect dcache(0.60 * W, 0.10 * H, 0.95 * W, 0.50 * H);     // regular
  const Rect control(0.05 * W, 0.10 * H, 0.55 * W, 0.40 * H);    // random
  const Rect analog(0.0, 0.0, 0.35 * W, 0.08 * H);               // near-empty
  for (int l = 0; l < num_layers; ++l) {
    Layer& layer = layout.layers[static_cast<std::size_t>(l)];
    const bool horiz = (l % 2 == 0);
    Rng lrng = rng.split();
    add_line_array(layer, datapath, lrng.uniform(22.0, 35.0), 0.65, horiz, lrng,
                   0.08);
    add_line_array(layer, icache, 40.0, 0.55, horiz, lrng, 0.02);
    add_line_array(layer, dcache, 40.0, 0.55, horiz, lrng, 0.02);
    add_random_logic(layer, control, 0.35, 30.0, lrng);
    add_random_logic(layer, analog, 0.05, 60.0, lrng);
    // Top-level routing over the whole die keeps inter-macro regions from
    // being perfectly empty.
    add_line_array(layer, Rect(0, 0, W, H), 400.0, 0.04, horiz, lrng, 0.5);
  }
  return layout;
}

Layout make_design_a(double chip_um, int num_layers, std::uint64_t seed) {
  return make_design_a(chip_um, chip_um, num_layers, seed);
}

Layout make_design_b(double chip_um, int num_layers, std::uint64_t seed) {
  return make_design_b(chip_um, chip_um, num_layers, seed);
}

Layout make_design_c(double chip_um, int num_layers, std::uint64_t seed) {
  return make_design_c(chip_um, chip_um, num_layers, seed);
}

Layout make_design_rect(char which, int windows_x, int windows_y,
                        double window_um, std::uint64_t seed) {
  const double w = windows_x * window_um;
  const double h = windows_y * window_um;
  switch (which) {
    case 'a':
    case 'A':
      return make_design_a(w, h, 3, seed);
    case 'b':
    case 'B':
      return make_design_b(w, h, 3, seed);
    case 'c':
    case 'C':
      return make_design_c(w, h, 3, seed);
    default:
      throw std::invalid_argument("make_design: unknown design id");
  }
}

Layout make_design(char which, int windows, double window_um,
                   std::uint64_t seed) {
  return make_design_rect(which, windows, windows, window_um, seed);
}

}  // namespace neurfill
