#pragma once

#include <cstdint>

#include "geom/layout.hpp"

namespace neurfill {

/// Synthetic stand-ins for the paper's three proprietary layout designs.
/// The filling flow consumes per-window densities / perimeters / slacks, so
/// each generator reproduces the *density character* of its counterpart:
///
///  * Design A — CMP test chip: blocks of parallel-line test structures whose
///    pitch and duty cycle ramp across the die (smooth density gradients plus
///    deliberately empty calibration blocks).
///  * Design B — FPGA: a periodic fabric of dense logic tiles separated by
///    sparse routing channels, with a sparse IO ring.
///  * Design C — RISC-V CPU: heterogeneous macros (dense datapath, regular
///    cache arrays, random-logic control, nearly-empty analog/IO corners).
///
/// All generators are deterministic given the seed.  `num_layers` metal
/// layers are produced with alternating preferred routing direction.  The
/// rectangular forms take the die extents directly; the `chip_um` forms are
/// the square convenience (width == height == chip_um) and produce exactly
/// the same layout as the rectangular form with equal extents.
Layout make_design_a(double width_um, double height_um, int num_layers,
                     std::uint64_t seed);
Layout make_design_b(double width_um, double height_um, int num_layers,
                     std::uint64_t seed);
Layout make_design_c(double width_um, double height_um, int num_layers,
                     std::uint64_t seed);
Layout make_design_a(double chip_um, int num_layers, std::uint64_t seed);
Layout make_design_b(double chip_um, int num_layers, std::uint64_t seed);
Layout make_design_c(double chip_um, int num_layers, std::uint64_t seed);

/// Convenience: designs at the default experiment scale (see DESIGN.md) —
/// `windows` x `windows` filling windows of `window_um` each.
Layout make_design(char which, int windows = 64, double window_um = 100.0,
                   std::uint64_t seed = 1);

/// Paper-scale rectangular variant (`nf_gen --windows WxH`): a die of
/// `windows_x` x `windows_y` filling windows.
Layout make_design_rect(char which, int windows_x, int windows_y,
                        double window_um = 100.0, std::uint64_t seed = 1);

}  // namespace neurfill
