#pragma once

#include <string>
#include <vector>

#include "geom/rect.hpp"

namespace neurfill {

/// One metal layer: a bag of non-overlapping wire rectangles plus the dummy
/// rectangles inserted by filling.  Wires and dummies are kept separate so
/// scoring can distinguish design geometry from fill.
struct Layer {
  std::string name;
  std::vector<Rect> wires;
  std::vector<Rect> dummies;
};

/// A multi-layer Manhattan layout.  Dimensions are in micrometres.  This is
/// the stand-in for a GDSII design database: the filling flow only needs
/// per-layer rectangle sets.
struct Layout {
  std::string name;
  double width_um = 0.0;
  double height_um = 0.0;
  std::vector<Layer> layers;

  std::size_t num_layers() const { return layers.size(); }
  Rect bbox() const { return Rect{0.0, 0.0, width_um, height_um}; }

  std::size_t total_wire_count() const;
  std::size_t total_dummy_count() const;
  /// Sum of wire areas across layers (um^2).
  double total_wire_area() const;
};

}  // namespace neurfill
