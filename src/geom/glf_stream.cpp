#include "geom/glf_stream.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.hpp"
#include "common/check.hpp"

namespace neurfill {

namespace {

/// Parses "w x0 y0 x1 y1" / "d x0 y0 x1 y1" without stream overhead; record
/// lines dominate a full-chip file so this is the hot path of both the index
/// build and every region load.
bool parse_rect_line(const std::string& line, char* tag, Rect* out) {
  const char* p = line.c_str();
  if ((p[0] != 'w' && p[0] != 'd') || p[1] != ' ') return false;
  *tag = p[0];
  char* end = nullptr;
  const char* cur = p + 1;
  double v[4];
  for (double& x : v) {
    x = std::strtod(cur, &end);
    if (end == cur) return false;
    cur = end;
  }
  if (v[2] < v[0] || v[3] < v[1]) return false;
  out->x0 = v[0];
  out->y0 = v[1];
  out->x1 = v[2];
  out->y1 = v[3];
  return true;
}

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("GLF: " + what);
}

}  // namespace

std::size_t GlfRegionIndex::bucket_of(double v, double extent) const {
  const double clamped = std::min(std::max(v, 0.0), extent);
  std::size_t b = static_cast<std::size_t>(clamped / bucket_um_);
  const std::size_t nb = static_cast<std::size_t>(
      std::ceil(extent / bucket_um_));
  if (b >= nb && nb > 0) b = nb - 1;
  return b;
}

GlfRegionIndex GlfRegionIndex::build(const std::string& path,
                                     double bucket_um) {
  NF_CHECK(bucket_um > 0.0, "GlfRegionIndex: bucket_um %g must be positive",
           bucket_um);
  std::ifstream is(path, std::ios::binary);
  if (!is) bad("cannot open for read: " + path);

  GlfRegionIndex index;
  index.path_ = path;
  index.bucket_um_ = bucket_um;

  std::uint64_t offset = 0;
  std::string line;
  // Each getline consumes the line plus its '\n'; write_glf always
  // terminates every line, so the running offset stays exact.
  auto next_line = [&](const char* what) {
    if (!std::getline(is, line)) bad(std::string("truncated before ") + what);
    const std::uint64_t at = offset;
    offset += line.size() + 1;
    return at;
  };

  next_line("magic");
  {
    std::istringstream hs(line);
    std::string kw;
    int version = 0;
    if (!(hs >> kw >> version) || kw != "GLF" || version != 1)
      bad("bad magic/version");
  }
  next_line("name");
  {
    std::istringstream hs(line);
    std::string kw;
    if (!(hs >> kw >> index.name_) || kw != "name") bad("missing name");
  }
  next_line("size");
  {
    std::istringstream hs(line);
    std::string kw;
    if (!(hs >> kw >> index.width_um_ >> index.height_um_) || kw != "size")
      bad("missing size");
    if (index.width_um_ <= 0.0 || index.height_um_ <= 0.0)
      bad("non-positive extents");
  }
  std::size_t nlayers = 0;
  next_line("layer count");
  {
    std::istringstream hs(line);
    std::string kw;
    if (!(hs >> kw >> nlayers) || kw != "layers") bad("missing layer count");
    if (nlayers > 1024) bad("implausible layer count");
  }

  index.nbx_ = static_cast<std::size_t>(
      std::ceil(index.width_um_ / bucket_um));
  index.nby_ = static_cast<std::size_t>(
      std::ceil(index.height_um_ / bucket_um));
  if (index.nbx_ == 0) index.nbx_ = 1;
  if (index.nby_ == 0) index.nby_ = 1;

  index.layers_.resize(nlayers);
  for (LayerIndex& layer : index.layers_) {
    next_line("layer header");
    {
      std::istringstream hs(line);
      std::string kw, kw2;
      if (!(hs >> kw >> layer.name >> kw2 >> layer.wires) || kw != "layer" ||
          kw2 != "wires")
        bad("malformed layer header");
      if (!(hs >> kw2 >> layer.dummies) || kw2 != "dummies")
        bad("malformed layer header (dummies)");
    }
    layer.buckets.assign(index.nbx_ * index.nby_, {});
    layer.records_begin = offset;
    const std::size_t nrecords = layer.wires + layer.dummies;
    for (std::size_t i = 0; i < nrecords; ++i) {
      const std::uint64_t at = next_line("rectangle record");
      char tag = 0;
      Rect r;
      if (!parse_rect_line(line, &tag, &r)) bad("malformed rectangle record");
      const char expect = i < layer.wires ? 'w' : 'd';
      if (tag != expect)
        bad(std::string("expected '") + expect + "' record, got '" + tag +
            "'");
      const std::size_t bx0 = index.bucket_of(r.x0, index.width_um_);
      const std::size_t bx1 = index.bucket_of(r.x1, index.width_um_);
      const std::size_t by0 = index.bucket_of(r.y0, index.height_um_);
      const std::size_t by1 = index.bucket_of(r.y1, index.height_um_);
      for (std::size_t by = by0; by <= by1; ++by)
        for (std::size_t bx = bx0; bx <= bx1; ++bx)
          layer.buckets[by * index.nbx_ + bx].push_back(at);
    }
    layer.records_end = offset;
  }
  return index;
}

Layout GlfRegionIndex::load_region(const Rect& region) const {
  std::ifstream is(path_, std::ios::binary);
  if (!is) bad("cannot open for read: " + path_);

  Layout layout;
  layout.name = name_;
  layout.width_um = width_um_;
  layout.height_um = height_um_;
  layout.layers.resize(layers_.size());

  const std::size_t bx0 = bucket_of(region.x0, width_um_);
  const std::size_t bx1 = bucket_of(region.x1, width_um_);
  const std::size_t by0 = bucket_of(region.y0, height_um_);
  const std::size_t by1 = bucket_of(region.y1, height_um_);

  std::vector<std::uint64_t> offsets;
  std::string line;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const LayerIndex& src = layers_[l];
    Layer& dst = layout.layers[l];
    dst.name = src.name;

    offsets.clear();
    for (std::size_t by = by0; by <= by1; ++by)
      for (std::size_t bx = bx0; bx <= bx1; ++bx) {
        const auto& bucket = src.buckets[by * nbx_ + bx];
        offsets.insert(offsets.end(), bucket.begin(), bucket.end());
      }
    // Sorted ascending = file order, so identical queries yield identical
    // rect sequences no matter how the buckets were walked.
    std::sort(offsets.begin(), offsets.end());
    offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());

    for (const std::uint64_t at : offsets) {
      is.clear();
      is.seekg(static_cast<std::streamoff>(at));
      if (!std::getline(is, line)) bad("truncated rectangle record");
      char tag = 0;
      Rect r;
      if (!parse_rect_line(line, &tag, &r)) bad("malformed rectangle record");
      if (!r.intersects(region)) continue;  // bucket pitch is coarse
      if (tag == 'w')
        dst.wires.push_back(r);
      else
        dst.dummies.push_back(r);
    }
  }
  return layout;
}

void GlfRegionIndex::copy_layer_records(std::istream& src, std::ostream& os,
                                        std::size_t l,
                                        std::vector<char>& buf) const {
  NF_CHECK_BOUNDS(l, layers_.size());
  const LayerIndex& layer = layers_[l];
  src.clear();
  src.seekg(static_cast<std::streamoff>(layer.records_begin));
  std::uint64_t left = layer.records_end - layer.records_begin;
  while (left > 0) {
    const std::streamsize chunk = static_cast<std::streamsize>(
        std::min<std::uint64_t>(left, buf.size()));
    src.read(buf.data(), chunk);
    if (src.gcount() != chunk) bad("truncated while copying records");
    os.write(buf.data(), chunk);
    left -= static_cast<std::uint64_t>(chunk);
  }
}

void write_glf_with_dummies(const GlfRegionIndex& index,
                            const std::string& out_path,
                            DummySource& source) {
  std::ifstream src(index.path(), std::ios::binary);
  if (!src) bad("cannot open for read: " + index.path());

  AtomicFileWriter writer(out_path, "geom.glf");
  if (!writer.ok()) bad("cannot open for write: " + out_path);
  std::ostream& os = writer.stream();
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "GLF 1\n";
  os << "name " << (index.name().empty() ? "unnamed" : index.name()) << '\n';
  os << "size " << index.width_um() << ' ' << index.height_um() << '\n';
  os << "layers " << index.num_layers() << '\n';

  std::vector<char> buf(std::size_t{1} << 16);
  for (std::size_t l = 0; l < index.num_layers(); ++l) {
    os << "layer "
       << (index.layer_name(l).empty() ? "m" : index.layer_name(l))
       << " wires " << index.wire_count(l) << " dummies "
       << index.dummy_count(l) + source.count(l) << '\n';
    // Copy the original record bytes verbatim: untouched geometry stays
    // byte-identical across a read -> fill -> write cycle.
    index.copy_layer_records(src, os, l, buf);
    source.emit(l, [&os](const Rect& r) {
      os << 'd' << ' ' << r.x0 << ' ' << r.y0 << ' ' << r.x1 << ' ' << r.y1
         << '\n';
    });
  }
  Expected<void> committed = writer.commit();
  if (!committed) bad(committed.error().to_string());
}

namespace {

/// Adapter for the pre-materialized form.
class VectorDummySource final : public DummySource {
 public:
  explicit VectorDummySource(const std::vector<std::vector<Rect>>& d)
      : dummies_(d) {}
  std::size_t count(std::size_t layer) override {
    return dummies_[layer].size();
  }
  void emit(std::size_t layer,
            const std::function<void(const Rect&)>& sink) override {
    for (const Rect& r : dummies_[layer]) sink(r);
  }

 private:
  const std::vector<std::vector<Rect>>& dummies_;
};

}  // namespace

void write_glf_with_dummies(
    const GlfRegionIndex& index, const std::string& out_path,
    const std::vector<std::vector<Rect>>& extra_dummies) {
  NF_CHECK(extra_dummies.size() == index.num_layers(),
           "write_glf_with_dummies: %zu dummy sets for %zu layers",
           extra_dummies.size(), index.num_layers());
  VectorDummySource source(extra_dummies);
  write_glf_with_dummies(index, out_path, source);
}

}  // namespace neurfill
