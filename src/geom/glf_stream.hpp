#pragma once

// Out-of-core GLF access (docs/fullchip.md).
//
// A full-chip GLF at paper scale (256x256 .. 1000x1000 windows) is too large
// to hold as a parsed Layout while dozens of tiles are in flight.  This
// module provides the two streaming primitives the fullchip driver needs:
//
//  * GlfRegionIndex — one sequential pass over the file records the byte
//    offset of every rectangle line, bucketed on a coarse spatial grid.
//    load_region() then reads back only the records whose rectangle
//    intersects a query region.  Returned rects are UNCLIPPED: a wire that
//    straddles a tile edge is returned whole, which is what keeps tiled
//    window extraction bitwise-equal to monolithic extraction (density
//    clipping and perimeter attribution both use original rect coords).
//  * write_glf_with_dummies() — streams a fill result to disk by copying
//    the original file's record bytes verbatim (so untouched geometry stays
//    byte-identical) and appending the newly synthesized dummies per layer,
//    all through the crash-safe AtomicFileWriter.
//
// Memory: the index holds ~8 bytes per record per bucket touched, never the
// parsed rectangles, so resident size is bounded by record *count*, not by
// the O(rects) Layout representation plus per-tile duplication.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "geom/layout.hpp"

namespace neurfill {

/// Spatial index over one GLF file.  Build once (single sequential pass),
/// then issue any number of region loads.  All methods throw
/// std::runtime_error on malformed input, matching read_glf.
class GlfRegionIndex {
 public:
  /// Indexes `path`, bucketing record offsets on a `bucket_um`-pitch grid.
  /// Pick the tile core size (or the window size) as the bucket pitch; the
  /// exact value only affects load_region scan cost, never its result.
  static GlfRegionIndex build(const std::string& path, double bucket_um);

  const std::string& path() const { return path_; }
  const std::string& name() const { return name_; }
  double width_um() const { return width_um_; }
  double height_um() const { return height_um_; }
  std::size_t num_layers() const { return layers_.size(); }
  const std::string& layer_name(std::size_t l) const {
    return layers_[l].name;
  }
  std::size_t wire_count(std::size_t l) const { return layers_[l].wires; }
  std::size_t dummy_count(std::size_t l) const { return layers_[l].dummies; }

  /// Loads every wire/dummy whose rectangle intersects `region` (unclipped,
  /// chip coordinates).  The returned Layout keeps the full-chip name and
  /// extents; only its rect population is regional.  Within each layer,
  /// rects appear in file order, so identical queries produce identical
  /// Layouts regardless of thread count or load order.
  Layout load_region(const Rect& region) const;

  /// Copies layer l's record lines byte-for-byte from `src` (an open stream
  /// over path()) to `os`, using `buf` as the chunk buffer.  Used by
  /// write_glf_with_dummies to keep untouched geometry byte-identical.
  void copy_layer_records(std::istream& src, std::ostream& os, std::size_t l,
                          std::vector<char>& buf) const;

 private:
  struct LayerIndex {
    std::string name;
    std::size_t wires = 0;
    std::size_t dummies = 0;
    // Byte range of this layer's record lines in the source file
    // (first wire line .. one past the last dummy line).
    std::uint64_t records_begin = 0;
    std::uint64_t records_end = 0;
    // buckets[by * nbx + bx] -> offsets of record lines whose rect
    // intersects that bucket.  A rect spanning buckets appears in each;
    // load_region dedupes by sorting.
    std::vector<std::vector<std::uint64_t>> buckets;
  };

  std::size_t bucket_of(double v, double extent) const;

  std::string path_;
  std::string name_;
  double width_um_ = 0.0;
  double height_um_ = 0.0;
  double bucket_um_ = 0.0;
  std::size_t nbx_ = 0;
  std::size_t nby_ = 0;
  std::vector<LayerIndex> layers_;
};

/// Streams `index`'s source file to `out_path`, appending `extra_dummies[l]`
/// to layer l.  Original record lines are copied byte-for-byte; appended
/// dummies are formatted at full round-trip precision.  The write is atomic
/// and crash-safe (temp + fsync + rename).  Throws std::runtime_error on IO
/// failure; `extra_dummies` must have one entry per layer.
void write_glf_with_dummies(const GlfRegionIndex& index,
                            const std::string& out_path,
                            const std::vector<std::vector<Rect>>& extra_dummies);

/// Generator interface for the streaming form below: the writer asks for
/// the per-layer dummy count up front (the GLF layer header carries counts
/// before records), then has the source push each dummy through `sink`.
/// emit(l) must produce exactly count(l) rects, deterministically.
class DummySource {
 public:
  virtual ~DummySource() = default;
  virtual std::size_t count(std::size_t layer) = 0;
  virtual void emit(std::size_t layer,
                    const std::function<void(const Rect&)>& sink) = 0;
};

/// Streaming form of write_glf_with_dummies: dummies are produced window by
/// window instead of being accumulated, so writing a full-chip fill result
/// needs O(1) memory beyond the index.  Same atomicity and byte-identity
/// guarantees.
void write_glf_with_dummies(const GlfRegionIndex& index,
                            const std::string& out_path, DummySource& source);

}  // namespace neurfill
