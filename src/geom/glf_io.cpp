#include "geom/glf_io.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.hpp"

namespace neurfill {

namespace {
void write_rect(std::ostream& os, char tag, const Rect& r) {
  os << tag << ' ' << r.x0 << ' ' << r.y0 << ' ' << r.x1 << ' ' << r.y1
     << '\n';
}

Rect read_rect(std::istream& is, char expected_tag) {
  std::string tag;
  Rect r;
  if (!(is >> tag >> r.x0 >> r.y0 >> r.x1 >> r.y1))
    throw std::runtime_error("GLF: truncated rectangle record");
  if (tag.size() != 1 || tag[0] != expected_tag)
    throw std::runtime_error("GLF: expected '" + std::string(1, expected_tag) +
                             "' record, got '" + tag + "'");
  if (r.x1 < r.x0 || r.y1 < r.y0)
    throw std::runtime_error("GLF: degenerate rectangle");
  return r;
}

/// std::streambuf that only counts bytes; lets glf_encoded_size reuse the
/// writer without materializing the text.
class CountingBuf : public std::streambuf {
 public:
  std::size_t count() const { return count_; }

 protected:
  int overflow(int ch) override {
    ++count_;
    return ch;
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    count_ += static_cast<std::size_t>(n);
    return n;
  }

 private:
  std::size_t count_ = 0;
};
}  // namespace

void write_glf(std::ostream& os, const Layout& layout) {
  // Full round-trip precision: layout coordinates must survive
  // write -> read exactly enough for window extraction to be stable.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "GLF 1\n";
  os << "name " << (layout.name.empty() ? "unnamed" : layout.name) << '\n';
  os << "size " << layout.width_um << ' ' << layout.height_um << '\n';
  os << "layers " << layout.layers.size() << '\n';
  for (const auto& layer : layout.layers) {
    os << "layer " << (layer.name.empty() ? "m" : layer.name) << " wires "
       << layer.wires.size() << " dummies " << layer.dummies.size() << '\n';
    for (const auto& r : layer.wires) write_rect(os, 'w', r);
    for (const auto& r : layer.dummies) write_rect(os, 'd', r);
  }
}

void write_glf_file(const std::string& path, const Layout& layout) {
  // Crash-safe: stream into <path>.tmp, fsync, rename.  A SIGKILL mid-write
  // leaves the previous file intact instead of a truncated GLF.
  AtomicFileWriter writer(path, "geom.glf");
  if (!writer.ok())
    throw std::runtime_error("GLF: cannot open for write: " + path);
  write_glf(writer.stream(), layout);
  Expected<void> committed = writer.commit();
  if (!committed)
    throw std::runtime_error("GLF: " + committed.error().to_string());
}

Layout read_glf(std::istream& is) {
  std::string kw;
  int version = 0;
  if (!(is >> kw >> version) || kw != "GLF" || version != 1)
    throw std::runtime_error("GLF: bad magic/version");
  Layout layout;
  if (!(is >> kw >> layout.name) || kw != "name")
    throw std::runtime_error("GLF: missing name");
  if (!(is >> kw >> layout.width_um >> layout.height_um) || kw != "size")
    throw std::runtime_error("GLF: missing size");
  if (layout.width_um <= 0.0 || layout.height_um <= 0.0)
    throw std::runtime_error("GLF: non-positive extents");
  std::size_t nlayers = 0;
  if (!(is >> kw >> nlayers) || kw != "layers")
    throw std::runtime_error("GLF: missing layer count");
  // Sanity bound: real stacks have tens of layers.  Rejecting absurd counts
  // here keeps a corrupt header from turning into a giant allocation.
  if (nlayers > 1024)
    throw std::runtime_error("GLF: implausible layer count");
  layout.layers.resize(nlayers);
  for (auto& layer : layout.layers) {
    std::size_t nw = 0, nd = 0;
    std::string kw2;
    if (!(is >> kw >> layer.name >> kw2 >> nw) || kw != "layer" ||
        kw2 != "wires")
      throw std::runtime_error("GLF: malformed layer header");
    if (!(is >> kw2 >> nd) || kw2 != "dummies")
      throw std::runtime_error("GLF: malformed layer header (dummies)");
    // Cap the preallocation: a corrupt count still fails (truncated record)
    // but without first reserving gigabytes.  push_back grows past the cap
    // naturally if the file really does hold that many rects.
    constexpr std::size_t kMaxReserve = std::size_t{1} << 20;
    layer.wires.reserve(std::min(nw, kMaxReserve));
    layer.dummies.reserve(std::min(nd, kMaxReserve));
    for (std::size_t i = 0; i < nw; ++i) layer.wires.push_back(read_rect(is, 'w'));
    for (std::size_t i = 0; i < nd; ++i)
      layer.dummies.push_back(read_rect(is, 'd'));
  }
  return layout;
}

Layout read_glf_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("GLF: cannot open for read: " + path);
  return read_glf(is);
}

std::size_t glf_encoded_size(const Layout& layout) {
  CountingBuf buf;
  std::ostream os(&buf);
  write_glf(os, layout);
  os.flush();
  return buf.count();
}

}  // namespace neurfill
