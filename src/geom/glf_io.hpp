#pragma once

#include <iosfwd>
#include <string>

#include "geom/layout.hpp"

namespace neurfill {

/// GLF ("grid layout format") is this project's lightweight stand-in for
/// GDSII: a line-oriented text format holding the layout extents, layers and
/// rectangles.  It exists so that (a) examples can exchange layouts with the
/// library, and (b) the file-size score term fs of the contest metric has a
/// concrete artifact to measure.
///
/// Format:
///   GLF 1
///   name <string-without-spaces>
///   size <width_um> <height_um>
///   layers <L>
///   layer <name> wires <n> dummies <m>
///   w <x0> <y0> <x1> <y1>     (n lines)
///   d <x0> <y0> <x1> <y1>     (m lines)
///   ... repeated per layer
void write_glf(std::ostream& os, const Layout& layout);
void write_glf_file(const std::string& path, const Layout& layout);

/// Throws std::runtime_error on malformed input.
Layout read_glf(std::istream& is);
Layout read_glf_file(const std::string& path);

/// Size in bytes the layout would occupy as a GLF file (streams to a
/// counting sink; no file is written).  Used for the file-size score.
std::size_t glf_encoded_size(const Layout& layout);

}  // namespace neurfill
